package netcl

import (
	"fmt"
	"runtime"
	"strings"

	"netcl/internal/apps"
)

// Production-churn benchmark: the four timeline scenarios from
// internal/apps/churn.go — aggregator crash with pool-state failover,
// P4xos coordinator re-election, hot-key churn, rolling reconfig — run
// under live open-loop load and scored against SLOs, emitted as
// BENCH_churn.json by `nclbench -churn`. Every scenario must finish
// with zero errors (churn may lose requests, never corrupt results),
// the AGG failover must return to at least its baseline availability,
// and the stateful timelines must replay hash-chain-identical under
// partitioned execution.

// ChurnIdentity is one partitioned scenario run pinned against the
// serial delivery hash chain.
type ChurnIdentity struct {
	Scenario   string `json:"scenario"`
	Partitions int    `json:"partitions"`
	TraceHash  uint64 `json:"trace_hash"`
	Matches    bool   `json:"matches_serial"`
}

// ChurnReport is the churn benchmark.
type ChurnReport struct {
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Smoke      bool                `json:"smoke,omitempty"`
	Scenarios  []*apps.ChurnResult `json:"scenarios"`
	// Identity pins the two register-stateful timelines (failover and
	// cache churn) at k ∈ {2,4} to their serial hash chains.
	Identity []*ChurnIdentity `json:"identity"`
}

// BenchChurn runs the four churn scenarios and the determinism
// identity runs. smoke shrinks every scenario (the CI variant).
func BenchChurn(smoke bool) (*ChurnReport, error) {
	rep := &ChurnReport{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Smoke: smoke}

	scenarios := []struct {
		name string
		run  func(apps.ChurnConfig) (*apps.ChurnResult, error)
	}{
		{"agg-failover", apps.RunChurnAggFailover},
		{"paxos-reelect", apps.RunChurnPaxosReelect},
		{"cache-churn", apps.RunChurnCacheChurn},
		{"rolling-reconfig", apps.RunChurnRolling},
	}
	for _, sc := range scenarios {
		res, err := sc.run(apps.ChurnConfig{Smoke: smoke})
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", sc.name, err)
		}
		if res.Errors != 0 {
			return nil, fmt.Errorf("churn %s: %d errors (corrupted results under churn)", sc.name, res.Errors)
		}
		if res.SLO == nil || !res.SLO.Recovered {
			return nil, fmt.Errorf("churn %s: never recovered to baseline p99", sc.name)
		}
		if sc.name == "agg-failover" && res.SLO.AfterAvailability < res.SLO.BaselineAvailability-0.01 {
			return nil, fmt.Errorf("churn %s: after-availability %.3f below baseline %.3f",
				sc.name, res.SLO.AfterAvailability, res.SLO.BaselineAvailability)
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}

	// Determinism witness: the failover and cache-churn timelines —
	// both move register state mid-run — must replay bit-identically
	// under partitioned execution.
	for _, id := range []struct {
		name string
		run  func(apps.ChurnConfig) (*apps.ChurnResult, error)
	}{
		{"agg-failover", apps.RunChurnAggFailover},
		{"cache-churn", apps.RunChurnCacheChurn},
	} {
		serial, err := id.run(apps.ChurnConfig{Smoke: true, Trace: true})
		if err != nil {
			return nil, fmt.Errorf("churn identity %s serial: %w", id.name, err)
		}
		for _, k := range []int{2, 4} {
			res, err := id.run(apps.ChurnConfig{Smoke: true, Trace: true, Partitions: k})
			if err != nil {
				return nil, fmt.Errorf("churn identity %s k=%d: %w", id.name, k, err)
			}
			ident := &ChurnIdentity{
				Scenario: id.name, Partitions: res.Partitions,
				TraceHash: res.TraceHash, Matches: res.TraceHash == serial.TraceHash,
			}
			if !ident.Matches {
				return nil, fmt.Errorf("churn identity %s k=%d: trace hash %#x != serial %#x",
					id.name, k, res.TraceHash, serial.TraceHash)
			}
			rep.Identity = append(rep.Identity, ident)
		}
	}
	return rep, nil
}

// FormatChurn renders the benchmark as text.
func FormatChurn(rep *ChurnReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CHURN — timeline scenarios under SLO (GOMAXPROCS=%d)\n", rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%-18s %5s %5s %5s %4s %7s %7s %7s %10s %10s\n",
		"SCENARIO", "REQ", "DONE", "LOST", "ERR", "AVAIL-B", "AVAIL-D", "AVAIL-A", "P99-D(ns)", "RECOV(µs)")
	for _, s := range rep.Scenarios {
		slo := s.SLO
		fmt.Fprintf(&b, "%-18s %5d %5d %5d %4d %7.3f %7.3f %7.3f %10.0f %10.1f\n",
			s.Name, s.Requests, s.Completed, s.Lost, s.Errors,
			slo.BaselineAvailability, slo.DuringAvailability, slo.AfterAvailability,
			slo.During.P99Ns, slo.RecoveryNs/1000)
	}
	for _, id := range rep.Identity {
		fmt.Fprintf(&b, "identity: %s k=%d trace=%#x matches_serial=%v\n",
			id.Scenario, id.Partitions, id.TraceHash, id.Matches)
	}
	return b.String()
}
