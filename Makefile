# NetCL build and test entry points.
#
# tier1 is the fast correctness gate (vet + build + test); tier2 and
# race run the race detector over the concurrent code (sharded engine,
# UDP backend, drivers, chaos tests); bench emits the interpreter
# hot-path measurement, bench-reliability the goodput-under-loss one,
# bench-loadgen the shard-count sweep of the flow-parallel data plane,
# bench-host the window sweep of the pipelined host channel plus the
# send-path allocation check, bench-ctrl the transactional control
# plane (batched vs single-op CRUD, plus data-path p99 under a
# control-plane storm), bench-fabric the hierarchical-aggregation
# sweep over multi-tier fabrics (goodput and top-tier ingress bytes at
# 1/2/3 tiers, partition-invariance pinned), bench-churn the four
# production-churn timelines (crash/failover, re-election, hot-key
# churn, rolling reconfig) scored against SLOs.

GO ?= go

.PHONY: all tier1 tier2 race bench bench-reliability bench-loadgen bench-host bench-ctrl bench-netsim bench-netsim-smoke bench-fabric bench-fabric-smoke bench-churn bench-churn-smoke examples clean

all: tier1

tier1:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test ./...

tier2: race

race:
	$(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -run TestCompiledBurstAllocs -v ./internal/bmv2
	$(GO) test -run xxx -bench BenchmarkInterpHotPath -benchmem .
	$(GO) run ./cmd/nclbench -interp -out BENCH_interp.json

bench-reliability:
	$(GO) run ./cmd/nclbench -reliability -out BENCH_reliability.json

bench-loadgen:
	$(GO) run ./cmd/nclbench -loadgen -out BENCH_loadgen.json

bench-host:
	$(GO) test -run xxx -bench BenchmarkHostSendPath -benchmem .
	$(GO) run ./cmd/nclbench -hostpath -out BENCH_hostpath.json

bench-ctrl:
	$(GO) run ./cmd/nclbench -ctrl -out BENCH_ctrl.json

bench-netsim:
	$(GO) run ./cmd/nclbench -netsim -out BENCH_netsim.json

bench-netsim-smoke:
	$(GO) run ./cmd/nclbench -netsim -smoke -out BENCH_netsim_smoke.json

bench-fabric:
	$(GO) run ./cmd/nclbench -fabric -out BENCH_fabric.json

bench-fabric-smoke:
	$(GO) run ./cmd/nclbench -fabric -smoke -out BENCH_fabric_smoke.json

bench-churn:
	$(GO) run ./cmd/nclbench -churn -out BENCH_churn.json

bench-churn-smoke:
	$(GO) run ./cmd/nclbench -churn -smoke -out BENCH_churn_smoke.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/allreduce
	$(GO) run ./examples/kvcache
	$(GO) run ./examples/paxos

clean:
	rm -f BENCH_reliability.json BENCH_interp.json BENCH_loadgen.json BENCH_hostpath.json BENCH_ctrl.json BENCH_netsim_smoke.json BENCH_fabric_smoke.json BENCH_churn_smoke.json
