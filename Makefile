# NetCL build and test entry points.
#
# tier1 is the fast correctness gate; tier2 adds vet and the race
# detector over the concurrent code (UDP backend, drivers, chaos
# tests); bench-reliability emits the goodput-under-loss measurement.

GO ?= go

.PHONY: all tier1 tier2 bench-reliability examples clean

all: tier1

tier1:
	$(GO) build ./... && $(GO) test ./...

tier2:
	$(GO) vet ./... && $(GO) test -race ./...

bench-reliability:
	$(GO) run ./cmd/nclbench -reliability -out BENCH_reliability.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/allreduce
	$(GO) run ./examples/kvcache
	$(GO) run ./examples/paxos

clean:
	rm -f BENCH_reliability.json
