package wire

// Reliability extension: the seq field of the extended Fig. 10 header.
//
// The NetCL wire format reserves a payload region after the kernel
// arguments (header | data | payload). The reliability layer uses it
// for a fixed-size trailer carrying a per-message sequence number, so
// devices — whose generated parsers extract only the header and data —
// forward and reflect it untouched. End hosts use the sequence number
// for ack/retransmit matching and receiver-side duplicate suppression;
// messages without the trailer are processed exactly as before, which
// keeps the base wire format unchanged.
const (
	// SeqMagic0/SeqMagic1 open the trailer ("NS": NetCL Seq).
	SeqMagic0 = 0x4E
	SeqMagic1 = 0x53
	// SeqVersion is the trailer layout version.
	SeqVersion = 1
	// SeqBytes is the trailer size: magic (2), version (1), flags (1),
	// seq (4), all big endian.
	SeqBytes = 8
)

// Seq trailer flags.
const (
	// SeqFlagWantAck asks the receiving host to acknowledge this
	// message (one-way reliable delivery).
	SeqFlagWantAck = 1 << 0
	// SeqFlagAck marks the message as an acknowledgement of Seq.
	SeqFlagAck = 1 << 1
)

// Seq is the parsed reliability trailer.
type Seq struct {
	Seq   uint32
	Flags uint8
}

// Append serializes the trailer after msg into a fresh buffer.
func (s Seq) Append(msg []byte) []byte {
	return s.AppendTo(append(make([]byte, 0, len(msg)+SeqBytes), msg...))
}

// AppendTo serializes the trailer in place at the end of msg, growing
// it like the append builtin: no allocation when msg has SeqBytes of
// spare capacity. The zero-alloc send path pairs it with PackAppend
// over pooled buffers.
func (s Seq) AppendTo(msg []byte) []byte {
	return append(msg,
		SeqMagic0, SeqMagic1, SeqVersion, s.Flags,
		byte(s.Seq>>24), byte(s.Seq>>16), byte(s.Seq>>8), byte(s.Seq),
	)
}

// ParseSeq splits a message into its body and trailer. ok is false if
// the message carries no reliability trailer.
func ParseSeq(msg []byte) (body []byte, s Seq, ok bool) {
	if len(msg) < HeaderBytes+SeqBytes {
		return msg, Seq{}, false
	}
	t := msg[len(msg)-SeqBytes:]
	if t[0] != SeqMagic0 || t[1] != SeqMagic1 || t[2] != SeqVersion {
		return msg, Seq{}, false
	}
	s.Flags = t[3]
	s.Seq = uint32(t[4])<<24 | uint32(t[5])<<16 | uint32(t[6])<<8 | uint32(t[7])
	return msg[:len(msg)-SeqBytes], s, true
}
