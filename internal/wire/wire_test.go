package wire

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Src: 1, Dst: 2, From: None, To: 7, Comp: 3, Act: ActReflect, Arg: 42}
	buf := h.Marshal(nil)
	if len(buf) != HeaderBytes {
		t.Fatalf("marshal size %d, want %d", len(buf), HeaderBytes)
	}
	var out Header
	rest, ok := out.Unmarshal(buf)
	if !ok || len(rest) != 0 {
		t.Fatal("unmarshal failed")
	}
	if out != h {
		t.Fatalf("round trip: %+v != %+v", out, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(src, dst, from, to, arg uint16, comp, act uint8) bool {
		h := Header{Src: src, Dst: dst, From: from, To: to, Comp: comp, Act: act, Arg: arg}
		var out Header
		_, ok := out.Unmarshal(h.Marshal(nil))
		return ok && out == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderShortBuffer(t *testing.T) {
	var h Header
	if _, ok := h.Unmarshal(make([]byte, HeaderBytes-1)); ok {
		t.Error("short buffer must fail")
	}
}

func TestActionNames(t *testing.T) {
	for code, want := range map[int]string{
		ActPass: "pass", ActDrop: "drop", ActSendHost: "send_to_host",
		ActSendDevice: "send_to_device", ActMulticast: "multicast",
		ActReflect: "reflect", ActReflectLong: "reflect_long",
	} {
		if got := ActionName(code); got != want {
			t.Errorf("ActionName(%d) = %q, want %q", code, got, want)
		}
	}
	if ActionName(99) != "unknown" {
		t.Error("unknown code")
	}
}
