package wire

import (
	"bytes"
	"testing"
)

func msgWithHeader(data []byte) []byte {
	h := Header{Src: 7, Dst: 9, From: None, To: 1, Comp: 1}
	return append(h.Marshal(nil), data...)
}

func TestSeqRoundTrip(t *testing.T) {
	msg := msgWithHeader([]byte{1, 2, 3, 4})
	for _, s := range []Seq{
		{Seq: 0},
		{Seq: 1, Flags: SeqFlagWantAck},
		{Seq: 0xDEADBEEF, Flags: SeqFlagAck},
		{Seq: 42, Flags: SeqFlagWantAck | SeqFlagAck},
	} {
		out := s.Append(msg)
		if len(out) != len(msg)+SeqBytes {
			t.Fatalf("trailer size: %d", len(out)-len(msg))
		}
		body, got, ok := ParseSeq(out)
		if !ok {
			t.Fatalf("trailer %+v not recognized", s)
		}
		if got != s {
			t.Errorf("round trip: got %+v want %+v", got, s)
		}
		if !bytes.Equal(body, msg) {
			t.Errorf("body mangled: %x vs %x", body, msg)
		}
	}
}

// TestSeqAppendDoesNotAliasInput guards the retransmission path: the
// same request buffer is sent repeatedly, so Append must not share
// backing storage with its input.
func TestSeqAppendDoesNotAliasInput(t *testing.T) {
	msg := msgWithHeader(make([]byte, 4, 64)) // spare capacity invites aliasing
	out := Seq{Seq: 5}.Append(msg)
	out[HeaderBytes] = 0xFF
	if msg[HeaderBytes] == 0xFF {
		t.Error("Append aliased its input buffer")
	}
}

func TestSeqPassthrough(t *testing.T) {
	// No trailer: short messages, plain messages, and payloads that are
	// long enough but lack the magic must all pass through unchanged.
	cases := [][]byte{
		{},
		{1, 2, 3},
		msgWithHeader(nil),
		msgWithHeader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), // right length, no magic
	}
	for _, msg := range cases {
		body, _, ok := ParseSeq(msg)
		if ok {
			t.Errorf("%x misparsed as trailered", msg)
		}
		if !bytes.Equal(body, msg) {
			t.Errorf("passthrough mangled %x -> %x", msg, body)
		}
	}
}

func TestSeqRejectsWrongVersion(t *testing.T) {
	out := Seq{Seq: 9}.Append(msgWithHeader([]byte{1, 2, 3, 4}))
	out[len(out)-SeqBytes+2] = SeqVersion + 1
	if _, _, ok := ParseSeq(out); ok {
		t.Error("future trailer version accepted")
	}
}
