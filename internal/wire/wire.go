// Package wire defines the NetCL-over-UDP wire format (paper Fig. 10)
// shared by the compiler's generated P4 code, the host runtime, and the
// network simulator:
//
//	ETH | IP | UDP | NetCL header | NetCL data (kernel args) | payload
//
// The NetCL header carries the 4-tuple (src, dst, from, to), the
// computation id, and the action/argument pair the device runtime uses
// to steer forwarding (§VI-C). The reliability layer extends the
// format with an optional seq trailer in the payload region (see
// seq.go): devices forward it untouched, end hosts use it for
// ack/retransmit and duplicate suppression.
package wire

// NetCLPort is the default UDP destination port identifying NetCL
// messages (the base program uses a configurable port range; one port
// suffices here).
const NetCLPort = 0x4E43 // "NC"

// None marks an absent node id in the from/to fields.
const None = 0xFFFF

// AnyDevice in the to field marks a multicast message that requests
// computation at every receiving device (e.g. a Paxos leader's 2A
// message fanned out to the acceptor group).
const AnyDevice = 0xFFFE

// Action codes stored in the NetCL header's act field by generated
// kernel code (Table II).
const (
	ActPass        = 0
	ActDrop        = 1
	ActSendHost    = 2
	ActSendDevice  = 3
	ActMulticast   = 4
	ActReflect     = 5
	ActReflectLong = 6
)

// ActionName returns the ncl:: name for an action code.
func ActionName(code int) string {
	switch code {
	case ActPass:
		return "pass"
	case ActDrop:
		return "drop"
	case ActSendHost:
		return "send_to_host"
	case ActSendDevice:
		return "send_to_device"
	case ActMulticast:
		return "multicast"
	case ActReflect:
		return "reflect"
	case ActReflectLong:
		return "reflect_long"
	}
	return "unknown"
}

// NetCL header field sizes, in bits.
const (
	SrcBits  = 16
	DstBits  = 16
	FromBits = 16
	ToBits   = 16
	CompBits = 8
	ActBits  = 8
	ArgBits  = 16
)

// HeaderBytes is the NetCL header size on the wire.
const HeaderBytes = (SrcBits + DstBits + FromBits + ToBits + CompBits + ActBits + ArgBits) / 8

// ECMPBuckets is the number of hash buckets in the generated ECMP
// spreader table: the flow hash over (src, dst) is folded to
// hash & (ECMPBuckets-1), and the control plane installs one
// (group, bucket) → port entry per bucket. Part of the data-plane
// contract between codegen and route installers, hence declared here.
// Must be a power of two.
const ECMPBuckets = 16

// Header is the parsed NetCL header.
type Header struct {
	Src  uint16 // source host
	Dst  uint16 // destination host
	From uint16 // previous computing device (None if source host)
	To   uint16 // next device requested to compute (None if n/a)
	Comp uint8  // computation id
	Act  uint8  // action selected by the last kernel execution
	Arg  uint16 // action argument (host/device/group id)
}

// Marshal appends the header in network byte order.
func (h *Header) Marshal(dst []byte) []byte {
	return append(dst,
		byte(h.Src>>8), byte(h.Src),
		byte(h.Dst>>8), byte(h.Dst),
		byte(h.From>>8), byte(h.From),
		byte(h.To>>8), byte(h.To),
		h.Comp, h.Act,
		byte(h.Arg>>8), byte(h.Arg),
	)
}

// Unmarshal parses a header from b, returning the remaining bytes and
// false if b is too short.
func (h *Header) Unmarshal(b []byte) ([]byte, bool) {
	if len(b) < HeaderBytes {
		return b, false
	}
	h.Src = uint16(b[0])<<8 | uint16(b[1])
	h.Dst = uint16(b[2])<<8 | uint16(b[3])
	h.From = uint16(b[4])<<8 | uint16(b[5])
	h.To = uint16(b[6])<<8 | uint16(b[7])
	h.Comp = b[8]
	h.Act = b[9]
	h.Arg = uint16(b[10])<<8 | uint16(b[11])
	return b[HeaderBytes:], true
}
