package lang

import "strings"

// Parser is a recursive-descent parser for NetCL-C. It operates over a
// pre-lexed token slice, which makes speculative parsing (casts vs.
// parenthesized expressions) a matter of saving and restoring an index.
type Parser struct {
	toks  []Token
	pos   int
	diags *Diagnostics
	fname string
}

// typeIdents maps identifier spellings to canonical scalar type names.
var typeIdents = map[string]string{
	"uint8_t": "u8", "uint16_t": "u16", "uint32_t": "u32", "uint64_t": "u64",
	"int8_t": "i8", "int16_t": "i16", "int32_t": "i32", "int64_t": "i64",
	"u8": "u8", "u16": "u16", "u32": "u32", "u64": "u64",
	"size_t": "u32", "uint": "u32",
}

// templateBuiltins are device-library names that accept template
// arguments in angle brackets (e.g. crc32<16>, rand<u8>).
var templateBuiltins = map[string]bool{
	"crc16": true, "crc32": true, "crc64": true, "xor16": true,
	"identity": true, "rand": true, "hash": true, "csum16": true,
	"csum16r": true,
}

// NewParser returns a parser for src. Definitions in defs are
// preprocessor-style constants injected before parsing.
func NewParser(file, src string, defs map[string]uint64, diags *Diagnostics) *Parser {
	lx := NewLexer(file, src, diags)
	for k, v := range defs {
		lx.Define(k, v)
	}
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return &Parser{toks: toks, diags: diags, fname: file}
}

// ParseFile parses src into a File. Errors are recorded in diags; the
// returned File contains whatever was successfully parsed.
func ParseFile(file, src string, defs map[string]uint64, diags *Diagnostics) *File {
	p := NewParser(file, src, defs, diags)
	return p.File()
}

func (p *Parser) tok() Token { return p.toks[p.pos] }
func (p *Parser) kind() Kind { return p.toks[p.pos].Kind }
func (p *Parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k Kind) bool { return p.kind() == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) Token {
	if p.at(k) {
		return p.next()
	}
	p.diags.Errorf(p.tok().Pos, "expected %q, found %s", k.String(), p.tok().String())
	return Token{Kind: k, Pos: p.tok().Pos}
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *Parser) sync() {
	depth := 0
	for !p.at(EOF) {
		switch p.kind() {
		case LBrace:
			depth++
		case RBrace:
			if depth == 0 {
				p.next()
				return
			}
			depth--
		case Semi:
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

// File parses the whole translation unit.
func (p *Parser) File() *File {
	f := &File{Name: p.fname}
	for !p.at(EOF) {
		before := p.pos
		d := p.topDecl()
		if d != nil {
			f.Decls = append(f.Decls, d...)
		}
		if p.pos == before { // no progress: recover
			p.diags.Errorf(p.tok().Pos, "unexpected %s at top level", p.tok().String())
			p.sync()
		}
	}
	return f
}

// specs holds the declaration specifiers collected before a type.
type specs struct {
	kernel  bool
	comp    Expr
	net     bool
	managed bool
	lookup  bool
	konst   bool
	static  bool
	at      []Expr
	pos     Pos
	any     bool
}

func (p *Parser) parseSpecs() specs {
	var s specs
	s.pos = p.tok().Pos
	for {
		switch p.kind() {
		case KwKernel:
			p.next()
			p.expect(LParen)
			s.comp = p.expr()
			p.expect(RParen)
			s.kernel, s.any = true, true
		case KwNet:
			p.next()
			s.net, s.any = true, true
		case KwManaged:
			p.next()
			s.managed, s.any = true, true
		case KwLookup:
			p.next()
			s.lookup, s.any = true, true
		case KwAt:
			p.next()
			p.expect(LParen)
			for {
				s.at = append(s.at, p.expr())
				if !p.accept(Comma) {
					break
				}
			}
			p.expect(RParen)
			s.any = true
		case KwConst:
			p.next()
			s.konst, s.any = true, true
		case KwStatic:
			p.next()
			s.static, s.any = true, true
		default:
			return s
		}
	}
}

// isTypeStart reports whether the current token begins a type.
func (p *Parser) isTypeStart() bool {
	switch p.kind() {
	case KwVoid, KwChar, KwBool, KwShort, KwInt, KwLong, KwUnsigned, KwSigned, KwAuto:
		return true
	case IDENT:
		name := p.tok().Text
		if _, ok := typeIdents[name]; ok {
			return true
		}
		if name == "kv" || name == "rv" {
			return true
		}
		if name == "ncl" && p.peek(1).Kind == ColonCol && p.peek(2).Kind == IDENT {
			n2 := p.peek(2).Text
			return n2 == "kv" || n2 == "rv"
		}
	}
	return false
}

// parseType parses a type. Returns nil (with a diagnostic) on failure.
func (p *Parser) parseType() *TypeExpr {
	pos := p.tok().Pos
	switch p.kind() {
	case KwVoid:
		p.next()
		return &TypeExpr{TypePos: pos, Name: "void"}
	case KwBool:
		p.next()
		return &TypeExpr{TypePos: pos, Name: "bool"}
	case KwAuto:
		p.next()
		return &TypeExpr{TypePos: pos, Name: "auto"}
	case KwChar:
		p.next()
		return &TypeExpr{TypePos: pos, Name: "i8"}
	case KwShort:
		p.next()
		p.accept(KwInt)
		return &TypeExpr{TypePos: pos, Name: "i16"}
	case KwInt:
		p.next()
		return &TypeExpr{TypePos: pos, Name: "i32"}
	case KwLong:
		p.next()
		p.accept(KwLong)
		p.accept(KwInt)
		return &TypeExpr{TypePos: pos, Name: "i64"}
	case KwSigned:
		p.next()
		t := p.parseSignedBase(pos, false)
		return t
	case KwUnsigned:
		p.next()
		t := p.parseSignedBase(pos, true)
		return t
	case IDENT:
		name := p.tok().Text
		if name == "ncl" && p.peek(1).Kind == ColonCol {
			p.next()
			p.next()
			name = p.tok().Text
		}
		if canon, ok := typeIdents[name]; ok {
			p.next()
			return &TypeExpr{TypePos: pos, Name: canon}
		}
		if name == "kv" || name == "rv" {
			p.next()
			t := &TypeExpr{TypePos: pos, Name: name}
			p.expect(Lt)
			t.Args = append(t.Args, p.parseType())
			p.expect(Comma)
			t.Args = append(t.Args, p.parseType())
			p.expect(Gt)
			return t
		}
	}
	p.diags.Errorf(pos, "expected type, found %s", p.tok().String())
	p.next()
	return &TypeExpr{TypePos: pos, Name: "i32"}
}

// parseSignedBase handles the tail after "signed"/"unsigned".
func (p *Parser) parseSignedBase(pos Pos, unsigned bool) *TypeExpr {
	name := "i32"
	switch p.kind() {
	case KwChar:
		p.next()
		name = "i8"
	case KwShort:
		p.next()
		p.accept(KwInt)
		name = "i16"
	case KwInt:
		p.next()
		name = "i32"
	case KwLong:
		p.next()
		p.accept(KwLong)
		p.accept(KwInt)
		name = "i64"
	}
	if unsigned {
		name = "u" + name[1:]
	}
	return &TypeExpr{TypePos: pos, Name: name}
}

// topDecl parses one top-level declaration (possibly expanding to
// several VarDecls for comma-separated declarators).
func (p *Parser) topDecl() []Decl {
	if p.accept(Semi) {
		return nil
	}
	s := p.parseSpecs()
	if !p.isTypeStart() {
		if s.any {
			p.diags.Errorf(p.tok().Pos, "expected type after declaration specifiers")
			p.sync()
		}
		return nil
	}
	typ := p.parseType()
	name := p.expect(IDENT)

	if p.at(LParen) {
		fd := &FuncDecl{
			DeclPos: s.pos, Kernel: s.kernel, Comp: s.comp, Net: s.net,
			At: s.at, Ret: typ, Name: name.Text,
		}
		if s.managed || s.lookup {
			p.diags.Errorf(s.pos, "_managed_/_lookup_ may not be applied to functions")
		}
		p.next() // (
		if !p.at(RParen) {
			for {
				fd.Params = append(fd.Params, p.parseParam())
				if !p.accept(Comma) {
					break
				}
			}
		}
		p.expect(RParen)
		if p.at(LBrace) {
			fd.Body = p.block()
		} else {
			p.expect(Semi)
		}
		return []Decl{fd}
	}

	var out []Decl
	for {
		vd := &VarDecl{
			DeclPos: s.pos, Net: s.net, Managed: s.managed, Lookup: s.lookup,
			Const: s.konst, Static: s.static, At: s.at, Type: typ, Name: name.Text,
		}
		p.parseDims(vd)
		if p.accept(Assign) {
			vd.Init = p.initializer()
		}
		out = append(out, vd)
		if !p.accept(Comma) {
			break
		}
		name = p.expect(IDENT)
	}
	p.expect(Semi)
	return out
}

func (p *Parser) parseDims(vd *VarDecl) {
	for p.at(LBracket) {
		p.next()
		if p.at(RBracket) {
			vd.Dims = append(vd.Dims, nil)
		} else {
			vd.Dims = append(vd.Dims, p.expr())
		}
		p.expect(RBracket)
	}
}

func (p *Parser) parseParam() *Param {
	pos := p.tok().Pos
	pr := &Param{ParamPos: pos}
	p.accept(KwConst)
	pr.Type = p.parseType()
	if p.at(KwSpec) {
		p.next()
		p.expect(LParen)
		pr.Spec = p.expr()
		p.expect(RParen)
	}
	for {
		if p.accept(Star) {
			pr.Ptr = true
			continue
		}
		if p.accept(Amp) {
			pr.ByRef = true
			continue
		}
		break
	}
	if p.at(IDENT) {
		pr.Name = p.next().Text
	}
	for p.at(LBracket) {
		p.next()
		if p.at(RBracket) {
			pr.Dims = append(pr.Dims, nil)
		} else {
			pr.Dims = append(pr.Dims, p.expr())
		}
		p.expect(RBracket)
	}
	return pr
}

// Statements ----------------------------------------------------------

func (p *Parser) block() *BlockStmt {
	b := &BlockStmt{LBracePos: p.tok().Pos}
	p.expect(LBrace)
	for !p.at(RBrace) && !p.at(EOF) {
		before := p.pos
		b.Stmts = append(b.Stmts, p.stmts()...)
		if p.pos == before {
			p.diags.Errorf(p.tok().Pos, "unexpected %s in block", p.tok().String())
			p.sync()
		}
	}
	p.expect(RBrace)
	return b
}

// stmts parses one statement, which may expand to several (multi-
// declarator local declarations).
func (p *Parser) stmts() []Stmt {
	switch p.kind() {
	case LBrace:
		return []Stmt{p.block()}
	case Semi:
		pos := p.next().Pos
		return []Stmt{&EmptyStmt{SemiPos: pos}}
	case KwIf:
		return []Stmt{p.ifStmt()}
	case KwFor:
		return []Stmt{p.forStmt()}
	case KwWhile:
		return []Stmt{p.whileStmt()}
	case KwReturn:
		pos := p.next().Pos
		r := &ReturnStmt{RetPos: pos}
		if !p.at(Semi) {
			r.X = p.expr()
		}
		p.expect(Semi)
		return []Stmt{r}
	case KwBreak:
		pos := p.next().Pos
		p.expect(Semi)
		return []Stmt{&BreakStmt{KwPos: pos}}
	case KwContinue:
		pos := p.next().Pos
		p.expect(Semi)
		return []Stmt{&ContinueStmt{KwPos: pos}}
	case KwGoto:
		p.diags.Errorf(p.tok().Pos, "goto is not supported in NetCL device code")
		p.sync()
		return []Stmt{&EmptyStmt{SemiPos: p.tok().Pos}}
	case KwConst, KwStatic:
		return p.localDecl()
	default:
		if p.isTypeStart() && !p.castAhead() {
			return p.localDecl()
		}
		x := p.expr()
		p.expect(Semi)
		return []Stmt{&ExprStmt{X: x}}
	}
}

// castAhead distinguishes "unsigned(...)" style casts (not supported)
// from declarations; it exists for future-proofing and currently always
// returns false because a type-start token in statement position always
// begins a declaration in NetCL-C.
func (p *Parser) castAhead() bool { return false }

func (p *Parser) localDecl() []Stmt {
	s := p.parseSpecs()
	if s.kernel || s.net || s.managed || s.at != nil {
		p.diags.Errorf(s.pos, "NetCL specifiers are not allowed on local declarations (except static _net_)")
	}
	typ := p.parseType()
	var out []Stmt
	for {
		name := p.expect(IDENT)
		vd := &VarDecl{
			DeclPos: s.pos, Const: s.konst, Static: s.static,
			Lookup: s.lookup, Type: typ, Name: name.Text,
		}
		if !s.any {
			vd.DeclPos = typ.TypePos
		}
		p.parseDims(vd)
		if p.accept(Assign) {
			vd.Init = p.initializer()
		}
		out = append(out, &DeclStmt{D: vd})
		if !p.accept(Comma) {
			break
		}
	}
	p.expect(Semi)
	return out
}

func (p *Parser) ifStmt() *IfStmt {
	pos := p.expect(KwIf).Pos
	p.expect(LParen)
	cond := p.expr()
	p.expect(RParen)
	st := &IfStmt{IfPos: pos, Cond: cond, Then: p.oneStmt()}
	if p.accept(KwElse) {
		st.Else = p.oneStmt()
	}
	return st
}

// oneStmt parses a single statement, wrapping multi-statement
// expansions in a block.
func (p *Parser) oneStmt() Stmt {
	ss := p.stmts()
	if len(ss) == 1 {
		return ss[0]
	}
	return &BlockStmt{LBracePos: ss[0].Pos(), Stmts: ss}
}

func (p *Parser) forStmt() *ForStmt {
	pos := p.expect(KwFor).Pos
	p.expect(LParen)
	st := &ForStmt{ForPos: pos}
	if !p.at(Semi) {
		if p.isTypeStart() || p.at(KwConst) {
			ds := p.localDecl() // consumes ';'
			if len(ds) == 1 {
				st.Init = ds[0]
			} else {
				st.Init = &BlockStmt{LBracePos: pos, Stmts: ds}
			}
		} else {
			st.Init = &ExprStmt{X: p.expr()}
			p.expect(Semi)
		}
	} else {
		p.expect(Semi)
	}
	if !p.at(Semi) {
		st.Cond = p.expr()
	}
	p.expect(Semi)
	if !p.at(RParen) {
		st.Post = &ExprStmt{X: p.expr()}
	}
	p.expect(RParen)
	st.Body = p.oneStmt()
	return st
}

func (p *Parser) whileStmt() *WhileStmt {
	pos := p.expect(KwWhile).Pos
	p.expect(LParen)
	cond := p.expr()
	p.expect(RParen)
	return &WhileStmt{WhilePos: pos, Cond: cond, Body: p.oneStmt()}
}

// Expressions ---------------------------------------------------------

// initializer parses either a braced initializer list or an expression.
func (p *Parser) initializer() Expr {
	if p.at(LBrace) {
		il := &InitList{LBracePos: p.next().Pos}
		if !p.at(RBrace) {
			for {
				il.Elems = append(il.Elems, p.initializer())
				if !p.accept(Comma) {
					break
				}
				if p.at(RBrace) { // trailing comma
					break
				}
			}
		}
		p.expect(RBrace)
		return il
	}
	return p.assign()
}

// expr parses a full expression (assignment level, no comma operator).
func (p *Parser) expr() Expr { return p.assign() }

// Expr parses a standalone expression; it is exported for tools and
// tests that need to parse expression fragments.
func (p *Parser) Expr() Expr { return p.expr() }

func isAssignOp(k Kind) bool {
	switch k {
	case Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq, AmpEq, PipeEq, CaretEq, ShlEq, ShrEq:
		return true
	}
	return false
}

func (p *Parser) assign() Expr {
	lhs := p.ternary()
	if isAssignOp(p.kind()) {
		op := p.next()
		rhs := p.assign()
		return &AssignExpr{Op: op.Kind, LHS: lhs, RHS: rhs, OpPos: op.Pos}
	}
	return lhs
}

func (p *Parser) ternary() Expr {
	cond := p.binary(0)
	if p.at(Question) {
		q := p.next()
		then := p.assign()
		p.expect(Colon)
		els := p.assign()
		return &CondExpr{Cond: cond, Then: then, Else: els, QPos: q.Pos}
	}
	return cond
}

// binPrec returns the binding power of a binary operator, or -1.
func binPrec(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case EqEq, NotEq:
		return 6
	case Lt, Gt, Le, Ge:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return -1
}

func (p *Parser) binary(minPrec int) Expr {
	lhs := p.unary()
	for {
		prec := binPrec(p.kind())
		if prec < 0 || prec < minPrec {
			return lhs
		}
		op := p.next()
		rhs := p.binary(prec + 1)
		lhs = &BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, OpPos: op.Pos}
	}
}

func (p *Parser) unary() Expr {
	switch p.kind() {
	case Minus, Tilde, Not, Amp, Star, Inc, Dec:
		op := p.next()
		x := p.unary()
		return &UnaryExpr{Op: op.Kind, X: x, OpPos: op.Pos}
	case Plus:
		p.next()
		return p.unary()
	case LParen:
		// Try a cast: "(type) unary-expr".
		save := p.pos
		lp := p.next()
		if p.isTypeStart() {
			t := p.parseType()
			if p.accept(RParen) {
				return &CastExpr{LParenPos: lp.Pos, Type: t, X: p.unary()}
			}
		}
		p.pos = save
		return p.postfix()
	default:
		return p.postfix()
	}
}

func (p *Parser) postfix() Expr {
	x := p.primary()
	for {
		switch p.kind() {
		case LBracket:
			lb := p.next()
			idx := p.expr()
			p.expect(RBracket)
			x = &IndexExpr{X: x, Index: idx, LBrack: lb.Pos}
		case Dot:
			dot := p.next()
			sel := p.expect(IDENT)
			x = &MemberExpr{X: x, Sel: sel.Text, Dot: dot.Pos}
		case Inc, Dec:
			op := p.next()
			x = &PostfixExpr{Op: op.Kind, X: x, OpPos: op.Pos}
		default:
			return x
		}
	}
}

func (p *Parser) primary() Expr {
	switch p.kind() {
	case INT:
		t := p.next()
		return &IntLit{LitPos: t.Pos, Val: t.Val}
	case KwTrue:
		t := p.next()
		return &BoolLit{LitPos: t.Pos, Val: true}
	case KwFalse:
		t := p.next()
		return &BoolLit{LitPos: t.Pos, Val: false}
	case LParen:
		p.next()
		x := p.expr()
		p.expect(RParen)
		return x
	case IDENT:
		return p.qualified()
	case KwSizeof:
		p.diags.Errorf(p.tok().Pos, "sizeof is not supported in NetCL device code")
		p.next()
		return &IntLit{LitPos: p.tok().Pos}
	default:
		p.diags.Errorf(p.tok().Pos, "expected expression, found %s", p.tok().String())
		t := p.next()
		return &IntLit{LitPos: t.Pos}
	}
}

// qualified parses "a::b::c" names, template arguments, and calls.
func (p *Parser) qualified() Expr {
	first := p.expect(IDENT)
	parts := []string{first.Text}
	for p.at(ColonCol) && p.peek(1).Kind == IDENT {
		p.next()
		parts = append(parts, p.next().Text)
	}
	if parts[0] == "ncl" {
		parts = parts[1:]
	}
	if len(parts) == 0 {
		p.diags.Errorf(first.Pos, "incomplete qualified name")
		return &IntLit{LitPos: first.Pos}
	}
	name := parts[len(parts)-1]
	ns := strings.Join(parts[:len(parts)-1], "::")
	id := &Ident{NamePos: first.Pos, NS: ns, Name: name}

	var targs []Expr
	if p.at(Lt) && templateBuiltins[name] {
		p.next()
		for {
			// Parse above relational precedence so the closing '>' is
			// not consumed as a comparison operator.
			targs = append(targs, p.binary(8))
			if !p.accept(Comma) {
				break
			}
		}
		p.expect(Gt)
	}
	if p.at(LParen) {
		p.next()
		call := &CallExpr{Fun: id, TArgs: targs}
		if !p.at(RParen) {
			for {
				call.Args = append(call.Args, p.expr())
				if !p.accept(Comma) {
					break
				}
			}
		}
		p.expect(RParen)
		return call
	}
	if targs != nil {
		p.diags.Errorf(first.Pos, "template arguments require a call")
	}
	return id
}
