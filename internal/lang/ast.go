package lang

// This file defines the NetCL-C abstract syntax tree. All nodes carry a
// source position for diagnostics. Types appearing in declarations are
// kept as syntactic TypeExpr values; resolution to semantic types is the
// job of package sema.

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
}

// File is a parsed NetCL-C translation unit.
type File struct {
	Name  string
	Decls []Decl
}

// Pos returns the position of the first declaration.
func (f *File) Pos() Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return Pos{File: f.Name, Line: 1, Col: 1}
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	decl()
}

// TypeExpr is a syntactic type. Name is canonicalized by the parser to
// one of: void, bool, i8, u8, i16, u16, i32, u32, i64, u64, auto, kv, rv.
// For kv/rv, Args holds the two template arguments.
type TypeExpr struct {
	TypePos Pos
	Name    string
	Args    []*TypeExpr
}

// Pos implements Node.
func (t *TypeExpr) Pos() Pos { return t.TypePos }

// String renders the canonical type name.
func (t *TypeExpr) String() string {
	if len(t.Args) == 0 {
		return t.Name
	}
	s := t.Name + "<"
	for i, a := range t.Args {
		if i > 0 {
			s += ","
		}
		s += a.String()
	}
	return s + ">"
}

// VarDecl declares a global or local variable. A global may carry NetCL
// memory specifiers; array dimensions are expressions (folded by sema).
// A nil entry in Dims means an inferred dimension ("[]").
type VarDecl struct {
	DeclPos Pos
	Net     bool // _net_
	Managed bool // _managed_
	Lookup  bool // _lookup_
	Const   bool
	Static  bool
	At      []Expr // _at(...) location list, nil if absent
	Type    *TypeExpr
	Name    string
	Dims    []Expr
	Init    Expr // may be nil
}

func (d *VarDecl) decl() {}

// Pos implements Node.
func (d *VarDecl) Pos() Pos { return d.DeclPos }

// IsGlobalMemory reports whether the declaration names device global
// memory (carries _net_ or _managed_).
func (d *VarDecl) IsGlobalMemory() bool { return d.Net || d.Managed }

// Param is a single kernel or net-function parameter.
type Param struct {
	ParamPos Pos
	Type     *TypeExpr
	Name     string
	ByRef    bool   // declared with &
	Ptr      bool   // declared with *
	Spec     Expr   // _spec(n) argument, nil if absent
	Dims     []Expr // array dims, e.g. v[8]; nil entry means []
}

// Pos implements Node.
func (p *Param) Pos() Pos { return p.ParamPos }

// FuncDecl declares a kernel (_kernel(c)) or a net function (_net_).
type FuncDecl struct {
	DeclPos Pos
	Kernel  bool
	Comp    Expr // computation id, kernels only
	Net     bool
	At      []Expr
	Ret     *TypeExpr
	Name    string
	Params  []*Param
	Body    *BlockStmt
}

func (d *FuncDecl) decl() {}

// Pos implements Node.
func (d *FuncDecl) Pos() Pos { return d.DeclPos }

// Statements ----------------------------------------------------------

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is a braced statement list.
type BlockStmt struct {
	LBracePos Pos
	Stmts     []Stmt
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct{ D *VarDecl }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ X Expr }

// IfStmt is if/else.
type IfStmt struct {
	IfPos Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// ForStmt is a C for loop; the compiler requires it to be fully
// unrollable on device targets.
type ForStmt struct {
	ForPos Pos
	Init   Stmt // may be nil
	Cond   Expr // may be nil
	Post   Stmt // may be nil
	Body   Stmt
}

// WhileStmt is a while loop (must also be fully unrollable).
type WhileStmt struct {
	WhilePos Pos
	Cond     Expr
	Body     Stmt
}

// ReturnStmt returns from a kernel or net function. In kernels, X is
// either nil (implicit pass()), an action call, or a ternary of such.
type ReturnStmt struct {
	RetPos Pos
	X      Expr // may be nil
}

// BreakStmt is parsed but rejected for device code (feed-forward
// pipelines cannot express early loop exits).
type BreakStmt struct{ KwPos Pos }

// ContinueStmt is parsed but rejected for device code.
type ContinueStmt struct{ KwPos Pos }

// EmptyStmt is a stray semicolon.
type EmptyStmt struct{ SemiPos Pos }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*EmptyStmt) stmt()    {}

// Pos implements Node.
func (s *BlockStmt) Pos() Pos { return s.LBracePos }

// Pos implements Node.
func (s *DeclStmt) Pos() Pos { return s.D.DeclPos }

// Pos implements Node.
func (s *ExprStmt) Pos() Pos { return s.X.Pos() }

// Pos implements Node.
func (s *IfStmt) Pos() Pos { return s.IfPos }

// Pos implements Node.
func (s *ForStmt) Pos() Pos { return s.ForPos }

// Pos implements Node.
func (s *WhileStmt) Pos() Pos { return s.WhilePos }

// Pos implements Node.
func (s *ReturnStmt) Pos() Pos { return s.RetPos }

// Pos implements Node.
func (s *BreakStmt) Pos() Pos { return s.KwPos }

// Pos implements Node.
func (s *ContinueStmt) Pos() Pos { return s.KwPos }

// Pos implements Node.
func (s *EmptyStmt) Pos() Pos { return s.SemiPos }

// Expressions ---------------------------------------------------------

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// Ident is a name reference, optionally namespace-qualified (NS "ncl",
// or a target namespace like "tna"/"v1" for intrinsics).
type Ident struct {
	NamePos Pos
	NS      string
	Name    string
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos Pos
	Val    uint64
}

// BoolLit is true/false.
type BoolLit struct {
	LitPos Pos
	Val    bool
}

// BinaryExpr is a binary operation. Op is one of the operator token
// kinds (Plus..OrOr).
type BinaryExpr struct {
	Op    Kind
	X, Y  Expr
	OpPos Pos
}

// UnaryExpr is a prefix operation: - ~ ! & (address-of) * (deref)
// ++ -- (pre-increment/decrement).
type UnaryExpr struct {
	Op    Kind
	X     Expr
	OpPos Pos
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op    Kind
	X     Expr
	OpPos Pos
}

// AssignExpr is simple or compound assignment. Op is Assign or one of
// the compound-assignment kinds.
type AssignExpr struct {
	Op       Kind
	LHS, RHS Expr
	OpPos    Pos
}

// CondExpr is the ternary operator.
type CondExpr struct {
	Cond, Then, Else Expr
	QPos             Pos
}

// CallExpr is a function or builtin call. TArgs holds template
// arguments (e.g. crc32<16>); for type-valued template arguments the
// element is an Ident naming the type.
type CallExpr struct {
	Fun   *Ident
	TArgs []Expr
	Args  []Expr
}

// IndexExpr is array indexing a[i].
type IndexExpr struct {
	X, Index Expr
	LBrack   Pos
}

// MemberExpr selects a builtin struct field (device.id, msg.src, ...).
type MemberExpr struct {
	X   Expr
	Sel string
	Dot Pos
}

// CastExpr is a C-style cast "(type)x".
type CastExpr struct {
	LParenPos Pos
	Type      *TypeExpr
	X         Expr
}

// InitList is a braced initializer {a, b, {c, d}}.
type InitList struct {
	LBracePos Pos
	Elems     []Expr
}

func (*Ident) expr()       {}
func (*IntLit) expr()      {}
func (*BoolLit) expr()     {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*PostfixExpr) expr() {}
func (*AssignExpr) expr()  {}
func (*CondExpr) expr()    {}
func (*CallExpr) expr()    {}
func (*IndexExpr) expr()   {}
func (*MemberExpr) expr()  {}
func (*CastExpr) expr()    {}
func (*InitList) expr()    {}

// Pos implements Node.
func (e *Ident) Pos() Pos { return e.NamePos }

// Pos implements Node.
func (e *IntLit) Pos() Pos { return e.LitPos }

// Pos implements Node.
func (e *BoolLit) Pos() Pos { return e.LitPos }

// Pos implements Node.
func (e *BinaryExpr) Pos() Pos { return e.X.Pos() }

// Pos implements Node.
func (e *UnaryExpr) Pos() Pos { return e.OpPos }

// Pos implements Node.
func (e *PostfixExpr) Pos() Pos { return e.X.Pos() }

// Pos implements Node.
func (e *AssignExpr) Pos() Pos { return e.LHS.Pos() }

// Pos implements Node.
func (e *CondExpr) Pos() Pos { return e.Cond.Pos() }

// Pos implements Node.
func (e *CallExpr) Pos() Pos { return e.Fun.Pos() }

// Pos implements Node.
func (e *IndexExpr) Pos() Pos { return e.X.Pos() }

// Pos implements Node.
func (e *MemberExpr) Pos() Pos { return e.X.Pos() }

// Pos implements Node.
func (e *CastExpr) Pos() Pos { return e.LParenPos }

// Pos implements Node.
func (e *InitList) Pos() Pos { return e.LBracePos }

// Walk calls fn for every node in the subtree rooted at n, parents
// before children. If fn returns false the node's children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Walk(d, fn)
		}
	case *VarDecl:
		for _, d := range x.Dims {
			if d != nil {
				Walk(d, fn)
			}
		}
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *FuncDecl:
		for _, p := range x.Params {
			Walk(p, fn)
		}
		if x.Body != nil {
			Walk(x.Body, fn)
		}
	case *Param:
		if x.Spec != nil {
			Walk(x.Spec, fn)
		}
		for _, d := range x.Dims {
			if d != nil {
				Walk(d, fn)
			}
		}
	case *BlockStmt:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *DeclStmt:
		Walk(x.D, fn)
	case *ExprStmt:
		Walk(x.X, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
		if x.Post != nil {
			Walk(x.Post, fn)
		}
		Walk(x.Body, fn)
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, fn)
		}
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *PostfixExpr:
		Walk(x.X, fn)
	case *AssignExpr:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	case *CondExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *CallExpr:
		Walk(x.Fun, fn)
		for _, a := range x.TArgs {
			Walk(a, fn)
		}
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *IndexExpr:
		Walk(x.X, fn)
		Walk(x.Index, fn)
	case *MemberExpr:
		Walk(x.X, fn)
	case *CastExpr:
		Walk(x.X, fn)
	case *InitList:
		for _, e := range x.Elems {
			Walk(e, fn)
		}
	}
}
