package lang

import "testing"

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	var d Diagnostics
	toks := Tokenize("test.ncl", src, &d)
	if d.HasErrors() {
		t.Fatalf("lex errors: %s", d.String())
	}
	return toks
}

func TestLexBasicTokens(t *testing.T) {
	toks := lexAll(t, "unsigned x = 0x2A + 7;")
	want := []Kind{KwUnsigned, IDENT, Assign, INT, Plus, INT, Semi, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("hex literal: got %d, want 42", toks[3].Val)
	}
}

func TestLexOperators(t *testing.T) {
	cases := []struct {
		src  string
		want Kind
	}{
		{"<<", Shl}, {">>", Shr}, {"<<=", ShlEq}, {">>=", ShrEq},
		{"&&", AndAnd}, {"||", OrOr}, {"==", EqEq}, {"!=", NotEq},
		{"<=", Le}, {">=", Ge}, {"++", Inc}, {"--", Dec},
		{"+=", PlusEq}, {"-=", MinusEq}, {"::", ColonCol}, {"->", Arrow},
		{"&=", AmpEq}, {"|=", PipeEq}, {"^=", CaretEq}, {"%=", PercentEq},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		if toks[0].Kind != c.want {
			t.Errorf("%q: got %v, want %v", c.src, toks[0].Kind, c.want)
		}
	}
}

func TestLexKeywordsAndSpecifiers(t *testing.T) {
	toks := lexAll(t, "_kernel _net_ _managed_ _lookup_ _at _spec if else for return")
	want := []Kind{KwKernel, KwNet, KwManaged, KwLookup, KwAt, KwSpec, KwIf, KwElse, KwFor, KwReturn, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "a /* block\ncomment */ b // line\nc")
	var names []string
	for _, tk := range toks {
		if tk.Kind == IDENT {
			names = append(names, tk.Text)
		}
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("got idents %v, want [a b c]", names)
	}
}

func TestLexDefineExpansion(t *testing.T) {
	src := "#define THRESH 512\n#define N THRESH\nunsigned x = N;"
	toks := lexAll(t, src)
	var lit *Token
	for i := range toks {
		if toks[i].Kind == INT {
			lit = &toks[i]
		}
	}
	if lit == nil || lit.Val != 512 {
		t.Fatalf("macro expansion failed: %v", toks)
	}
}

func TestLexDefineMultiToken(t *testing.T) {
	src := "#define TWO_N (2*21)\nint x = TWO_N;"
	toks := lexAll(t, src)
	want := []Kind{KwInt, IDENT, Assign, LParen, INT, Star, INT, RParen, Semi, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexPredefine(t *testing.T) {
	var d Diagnostics
	lx := NewLexer("t", "x = NUM_WORKERS;", &d)
	lx.Define("NUM_WORKERS", 6)
	var vals []uint64
	for {
		tk := lx.Next()
		if tk.Kind == EOF {
			break
		}
		if tk.Kind == INT {
			vals = append(vals, tk.Val)
		}
	}
	if len(vals) != 1 || vals[0] != 6 {
		t.Errorf("predefine: got %v, want [6]", vals)
	}
}

func TestLexCharLiteral(t *testing.T) {
	toks := lexAll(t, "'a' '\\n' '\\0'")
	if toks[0].Val != 'a' || toks[1].Val != '\n' || toks[2].Val != 0 {
		t.Errorf("char literals: got %d %d %d", toks[0].Val, toks[1].Val, toks[2].Val)
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexIntegerSuffixes(t *testing.T) {
	toks := lexAll(t, "1u 2UL 3ull 0x10L")
	vals := []uint64{1, 2, 3, 16}
	for i, v := range vals {
		if toks[i].Kind != INT || toks[i].Val != v {
			t.Errorf("token %d: got %v val %d, want %d", i, toks[i].Kind, toks[i].Val, v)
		}
	}
}

func TestLexErrorUnterminatedChar(t *testing.T) {
	var d Diagnostics
	Tokenize("t", "'a", &d)
	if !d.HasErrors() {
		t.Error("expected error for unterminated char literal")
	}
}

func TestLexFunctionLikeMacroRejected(t *testing.T) {
	var d Diagnostics
	Tokenize("t", "#define F(x) x\n", &d)
	if !d.HasErrors() {
		t.Error("expected error for function-like macro")
	}
}
