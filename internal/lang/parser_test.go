package lang

import "testing"

// fig4 is the NetCL device code of the paper's Figure 4 (in-network
// read-only cache with a count-min sketch).
const fig4 = `
#define CMS_HASHES 3
#define THRESH 512
#define GET_REQ 1

_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
`

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	var d Diagnostics
	f := ParseFile("test.ncl", src, nil, &d)
	if d.HasErrors() {
		t.Fatalf("parse errors:\n%s", d.String())
	}
	return f
}

func TestParseFig4(t *testing.T) {
	f := parseOK(t, fig4)
	if len(f.Decls) != 4 {
		t.Fatalf("got %d decls, want 4", len(f.Decls))
	}
	cms, ok := f.Decls[0].(*VarDecl)
	if !ok || cms.Name != "cms" || !cms.Managed {
		t.Fatalf("decl 0: got %#v", f.Decls[0])
	}
	if len(cms.Dims) != 2 {
		t.Errorf("cms dims: got %d, want 2", len(cms.Dims))
	}
	sketch, ok := f.Decls[1].(*FuncDecl)
	if !ok || sketch.Name != "sketch" || !sketch.Net || sketch.Kernel {
		t.Fatalf("decl 1: got %#v", f.Decls[1])
	}
	if len(sketch.Params) != 2 || !sketch.Params[1].ByRef {
		t.Errorf("sketch params wrong: %+v", sketch.Params)
	}
	cache, ok := f.Decls[2].(*VarDecl)
	if !ok || !cache.Lookup || !cache.Net || cache.Type.Name != "kv" {
		t.Fatalf("decl 2: got %#v", f.Decls[2])
	}
	if len(cache.Dims) != 1 || cache.Dims[0] != nil {
		t.Errorf("cache should have one inferred dim")
	}
	q, ok := f.Decls[3].(*FuncDecl)
	if !ok || !q.Kernel || q.Name != "query" {
		t.Fatalf("decl 3: got %#v", f.Decls[3])
	}
	if c, ok := q.Comp.(*IntLit); !ok || c.Val != 1 {
		t.Errorf("kernel computation id: got %#v", q.Comp)
	}
	if len(q.At) != 1 {
		t.Errorf("kernel _at: got %d locations", len(q.At))
	}
	if len(q.Params) != 5 {
		t.Errorf("query params: got %d, want 5", len(q.Params))
	}
}

// fig7 is the paper's Figure 7 (reliable in-network AllReduce).
const fig7 = `
#define NUM_SLOTS 1024
#define SLOT_SIZE 32
#define NUM_WORKERS 4

_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce( uint8_t ver, uint16_t bmp_idx,
                           uint16_t agg_idx, uint16_t mask,
                           uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }

  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(&Agg[i][agg_idx], !seen, v[i]);

    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
`

func TestParseFig7(t *testing.T) {
	f := parseOK(t, fig7)
	if len(f.Decls) != 4 {
		t.Fatalf("got %d decls, want 4", len(f.Decls))
	}
	k, ok := f.Decls[3].(*FuncDecl)
	if !ok || !k.Kernel || k.Name != "allreduce" {
		t.Fatalf("kernel decl: %#v", f.Decls[3])
	}
	v := k.Params[4]
	if !v.Ptr || v.Spec == nil {
		t.Errorf("param v should be a pointer with _spec: %+v", v)
	}
	if spec, ok := v.Spec.(*IntLit); !ok || spec.Val != 32 {
		t.Errorf("spec should expand to 32 via #define: %#v", v.Spec)
	}
}

func TestParseMultiDeclarator(t *testing.T) {
	f := parseOK(t, "_net_ int m1[42], m2[42];")
	if len(f.Decls) != 2 {
		t.Fatalf("got %d decls, want 2", len(f.Decls))
	}
	for i, name := range []string{"m1", "m2"} {
		vd := f.Decls[i].(*VarDecl)
		if vd.Name != name || !vd.Net || len(vd.Dims) != 1 {
			t.Errorf("decl %d: %+v", i, vd)
		}
	}
}

func TestParseMultiLocationAt(t *testing.T) {
	f := parseOK(t, "_at(1,2) _net_ uint16_t Round[65536];")
	vd := f.Decls[0].(*VarDecl)
	if len(vd.At) != 2 {
		t.Fatalf("at list: got %d, want 2", len(vd.At))
	}
}

func TestParseRangeLookup(t *testing.T) {
	f := parseOK(t, "_net_ _lookup_ ncl::rv<int,int> b[] = { {{1,10},1}, {{11,20},2} };")
	vd := f.Decls[0].(*VarDecl)
	if vd.Type.Name != "rv" || len(vd.Type.Args) != 2 {
		t.Fatalf("type: %v", vd.Type)
	}
	il := vd.Init.(*InitList)
	if len(il.Elems) != 2 {
		t.Fatalf("init entries: got %d", len(il.Elems))
	}
	first := il.Elems[0].(*InitList)
	if len(first.Elems) != 2 {
		t.Fatalf("rv entry should be {range, value}")
	}
	if _, ok := first.Elems[0].(*InitList); !ok {
		t.Error("rv range should itself be an init list")
	}
}

func TestParseTernaryActionReturn(t *testing.T) {
	f := parseOK(t, `_kernel(1) void k(char hit) { return hit ? ncl::reflect() : ncl::drop(); }`)
	fd := f.Decls[0].(*FuncDecl)
	ret := fd.Body.Stmts[0].(*ReturnStmt)
	ce, ok := ret.X.(*CondExpr)
	if !ok {
		t.Fatalf("return expr: %#v", ret.X)
	}
	if call, ok := ce.Then.(*CallExpr); !ok || call.Fun.Name != "reflect" {
		t.Errorf("then branch: %#v", ce.Then)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := parseOK(t, "_net_ void f(int a, int b, int c) { int x = a + b * c; int y = a << 2 | b & c; }")
	fd := f.Decls[0].(*FuncDecl)
	x := fd.Body.Stmts[0].(*DeclStmt).D.Init.(*BinaryExpr)
	if x.Op != Plus {
		t.Errorf("a+b*c should parse as a+(b*c), got top op %v", x.Op)
	}
	if inner, ok := x.Y.(*BinaryExpr); !ok || inner.Op != Star {
		t.Errorf("rhs should be b*c: %#v", x.Y)
	}
	y := fd.Body.Stmts[1].(*DeclStmt).D.Init.(*BinaryExpr)
	if y.Op != Pipe {
		t.Errorf("| should bind loosest of <<, &: got %v", y.Op)
	}
}

func TestParseMemberAndDeviceID(t *testing.T) {
	f := parseOK(t, "_kernel(1) void k(int x) { if (device.id == 2) { x = 1; } }")
	fd := f.Decls[0].(*FuncDecl)
	ifs := fd.Body.Stmts[0].(*IfStmt)
	cmp := ifs.Cond.(*BinaryExpr)
	m, ok := cmp.X.(*MemberExpr)
	if !ok || m.Sel != "id" {
		t.Fatalf("device.id: %#v", cmp.X)
	}
}

func TestParseCast(t *testing.T) {
	f := parseOK(t, "_net_ void f(int a) { unsigned x = (unsigned)a; int y = (a); }")
	fd := f.Decls[0].(*FuncDecl)
	if _, ok := fd.Body.Stmts[0].(*DeclStmt).D.Init.(*CastExpr); !ok {
		t.Error("(unsigned)a should be a cast")
	}
	if _, ok := fd.Body.Stmts[1].(*DeclStmt).D.Init.(*Ident); !ok {
		t.Error("(a) should be a parenthesized ident")
	}
}

func TestParseTargetIntrinsicNamespace(t *testing.T) {
	f := parseOK(t, "_net_ void f(unsigned k, unsigned &o) { o = ncl::tna::crc64(k); }")
	fd := f.Decls[0].(*FuncDecl)
	as := fd.Body.Stmts[0].(*ExprStmt).X.(*AssignExpr)
	call := as.RHS.(*CallExpr)
	if call.Fun.NS != "tna" || call.Fun.Name != "crc64" {
		t.Errorf("intrinsic: NS=%q Name=%q", call.Fun.NS, call.Fun.Name)
	}
}

func TestParseGotoRejected(t *testing.T) {
	var d Diagnostics
	ParseFile("t", "_net_ void f() { goto done; }", nil, &d)
	if !d.HasErrors() {
		t.Error("goto should be rejected")
	}
}

func TestParseErrorRecovery(t *testing.T) {
	var d Diagnostics
	f := ParseFile("t", "_net_ int x = @; _net_ int y = 2;", nil, &d)
	if !d.HasErrors() {
		t.Error("expected a parse error")
	}
	// The second declaration should still be parsed.
	found := false
	for _, decl := range f.Decls {
		if vd, ok := decl.(*VarDecl); ok && vd.Name == "y" {
			found = true
		}
	}
	if !found {
		t.Error("parser did not recover to parse decl y")
	}
}

func TestParseCompoundAssignAndIncDec(t *testing.T) {
	f := parseOK(t, "_net_ void f(int a) { a += 2; a <<= 1; a++; --a; }")
	fd := f.Decls[0].(*FuncDecl)
	if as := fd.Body.Stmts[0].(*ExprStmt).X.(*AssignExpr); as.Op != PlusEq {
		t.Errorf("a += 2: op %v", as.Op)
	}
	if as := fd.Body.Stmts[1].(*ExprStmt).X.(*AssignExpr); as.Op != ShlEq {
		t.Errorf("a <<= 1: op %v", as.Op)
	}
	if px := fd.Body.Stmts[2].(*ExprStmt).X.(*PostfixExpr); px.Op != Inc {
		t.Errorf("a++: op %v", px.Op)
	}
	if ux := fd.Body.Stmts[3].(*ExprStmt).X.(*UnaryExpr); ux.Op != Dec {
		t.Errorf("--a: op %v", ux.Op)
	}
}

func TestWalkVisitsAllKernelCalls(t *testing.T) {
	f := parseOK(t, fig4)
	calls := 0
	Walk(f, func(n Node) bool {
		if _, ok := n.(*CallExpr); ok {
			calls++
		}
		return true
	})
	if calls < 7 {
		t.Errorf("Walk found %d calls, want >= 7", calls)
	}
}
