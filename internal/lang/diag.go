package lang

import (
	"fmt"
	"sort"
	"strings"
)

// Diagnostic is a single compiler message attached to a source position.
type Diagnostic struct {
	Pos  Pos
	Msg  string
	Warn bool // warning rather than error
}

// Error implements error.
func (d *Diagnostic) Error() string {
	sev := "error"
	if d.Warn {
		sev = "warning"
	}
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s: %s", d.Pos, sev, d.Msg)
	}
	return fmt.Sprintf("%s: %s", sev, d.Msg)
}

// Diagnostics collects compiler messages. The zero value is ready to use.
type Diagnostics struct {
	List []*Diagnostic
}

// Errorf records an error at pos.
func (ds *Diagnostics) Errorf(pos Pos, format string, args ...interface{}) {
	ds.List = append(ds.List, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Warnf records a warning at pos.
func (ds *Diagnostics) Warnf(pos Pos, format string, args ...interface{}) {
	ds.List = append(ds.List, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...), Warn: true})
}

// HasErrors reports whether any non-warning diagnostic was recorded.
func (ds *Diagnostics) HasErrors() bool {
	for _, d := range ds.List {
		if !d.Warn {
			return true
		}
	}
	return false
}

// Sort orders diagnostics by source position.
func (ds *Diagnostics) Sort() {
	sort.SliceStable(ds.List, func(i, j int) bool {
		a, b := ds.List[i].Pos, ds.List[j].Pos
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}

// Err returns an error summarizing all recorded errors, or nil if none.
func (ds *Diagnostics) Err() error {
	if !ds.HasErrors() {
		return nil
	}
	var b strings.Builder
	n := 0
	for _, d := range ds.List {
		if d.Warn {
			continue
		}
		if n > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
		n++
	}
	return fmt.Errorf("%s", b.String())
}

// String renders every diagnostic, one per line.
func (ds *Diagnostics) String() string {
	var b strings.Builder
	for i, d := range ds.List {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return b.String()
}
