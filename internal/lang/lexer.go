package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer turns NetCL-C source text into tokens. It performs a minimal
// preprocessing step: object-like "#define NAME tokens" macros are
// recorded and expanded at use sites (non-recursively), and #include
// lines are skipped. This covers the preprocessor usage in the paper's
// listings (constants like CMS_HASHES, SLOT_SIZE, NUM_WORKERS).
type Lexer struct {
	src     string
	file    string
	off     int
	line    int
	col     int
	diags   *Diagnostics
	defines map[string][]Token
	pending []Token // expansion buffer (FIFO)
}

// NewLexer returns a lexer over src. file is used in positions.
// diags must be non-nil.
func NewLexer(file, src string, diags *Diagnostics) *Lexer {
	return &Lexer{
		src:     src,
		file:    file,
		line:    1,
		col:     1,
		diags:   diags,
		defines: make(map[string][]Token),
	}
}

// Define predefines an object-like macro, as if "#define name value"
// appeared before the source. It is used to inject compile-time
// parameters (e.g. -DNUM_WORKERS=4).
func (lx *Lexer) Define(name string, value uint64) {
	lx.defines[name] = []Token{{Kind: INT, Val: value, Text: strconv.FormatUint(value, 10)}}
}

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByteAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// skipSpace consumes whitespace, comments, and preprocessor lines.
func (lx *Lexer) skipSpace() {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByteAt(1) == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByteAt(1) == '*':
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		case c == '#' && lx.col == 1:
			lx.directive()
		default:
			return
		}
	}
}

// directive consumes a preprocessor line starting at '#'.
func (lx *Lexer) directive() {
	pos := lx.pos()
	start := lx.off
	for lx.off < len(lx.src) && lx.peekByte() != '\n' {
		// Support line continuation with backslash-newline.
		if lx.peekByte() == '\\' && lx.peekByteAt(1) == '\n' {
			lx.advance()
			lx.advance()
			continue
		}
		lx.advance()
	}
	text := lx.src[start:lx.off]
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return
	}
	switch fields[0] {
	case "#include", "#pragma", "#":
		// Ignored: the NetCL device library is built in.
	case "#define":
		rest := strings.TrimPrefix(text, "#define")
		rest = strings.TrimSpace(rest)
		i := 0
		for i < len(rest) && isIdentCont(rest[i]) {
			i++
		}
		if i == 0 {
			lx.diags.Errorf(pos, "malformed #define")
			return
		}
		name := rest[:i]
		if i < len(rest) && rest[i] == '(' {
			lx.diags.Errorf(pos, "function-like macro %q is not supported", name)
			return
		}
		body := strings.TrimSpace(rest[i:])
		sub := NewLexer(lx.file, body, lx.diags)
		sub.line = pos.Line
		sub.defines = lx.defines
		var toks []Token
		for {
			t := sub.Next()
			if t.Kind == EOF {
				break
			}
			toks = append(toks, t)
		}
		lx.defines[name] = toks
	case "#undef":
		if len(fields) >= 2 {
			delete(lx.defines, fields[1])
		}
	default:
		lx.diags.Errorf(pos, "unsupported preprocessor directive %q", fields[0])
	}
}

// Next returns the next token, expanding macros.
func (lx *Lexer) Next() Token {
	if len(lx.pending) > 0 {
		t := lx.pending[0]
		lx.pending = lx.pending[1:]
		return t
	}
	lx.skipSpace()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		word := lx.src[start:lx.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Text: word, Pos: pos}
		}
		if body, ok := lx.defines[word]; ok {
			if len(body) == 0 {
				return lx.Next()
			}
			for _, t := range body {
				t.Pos = pos
				lx.pending = append(lx.pending, t)
			}
			return lx.Next()
		}
		return Token{Kind: IDENT, Text: word, Pos: pos}
	case isDigit(c):
		return lx.number(pos)
	case c == '\'':
		return lx.charLit(pos)
	case c == '"':
		return lx.stringLit(pos)
	default:
		return lx.punct(pos)
	}
}

func (lx *Lexer) number(pos Pos) Token {
	start := lx.off
	base := 10
	if lx.peekByte() == '0' && (lx.peekByteAt(1) == 'x' || lx.peekByteAt(1) == 'X') {
		base = 16
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peekByte()) {
			lx.advance()
		}
	} else if lx.peekByte() == '0' && lx.peekByteAt(1) == 'b' {
		base = 2
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && (lx.peekByte() == '0' || lx.peekByte() == '1') {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
	}
	text := lx.src[start:lx.off]
	digits := text
	switch base {
	case 16, 2:
		digits = text[2:]
	}
	// Consume integer suffixes (u, l, ul, ull, ...).
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			lx.advance()
		} else {
			break
		}
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		lx.diags.Errorf(pos, "invalid integer literal %q", text)
	}
	return Token{Kind: INT, Text: text, Val: v, Pos: pos}
}

func (lx *Lexer) charLit(pos Pos) Token {
	lx.advance() // opening quote
	var v uint64
	if lx.off < len(lx.src) && lx.peekByte() == '\\' {
		lx.advance()
		c := lx.advance()
		switch c {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\', '\'':
			v = uint64(c)
		default:
			lx.diags.Errorf(pos, "unsupported escape sequence '\\%c'", c)
		}
	} else if lx.off < len(lx.src) {
		v = uint64(lx.advance())
	}
	if lx.off < len(lx.src) && lx.peekByte() == '\'' {
		lx.advance()
	} else {
		lx.diags.Errorf(pos, "unterminated character literal")
	}
	return Token{Kind: INT, Text: fmt.Sprintf("%d", v), Val: v, Pos: pos}
}

func (lx *Lexer) stringLit(pos Pos) Token {
	lx.advance() // opening quote
	start := lx.off
	for lx.off < len(lx.src) && lx.peekByte() != '"' && lx.peekByte() != '\n' {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if lx.off < len(lx.src) && lx.peekByte() == '"' {
		lx.advance()
	} else {
		lx.diags.Errorf(pos, "unterminated string literal")
	}
	return Token{Kind: STRING, Text: text, Pos: pos}
}

// punct lexes operators and punctuation, longest match first.
func (lx *Lexer) punct(pos Pos) Token {
	two := func(k Kind) Token {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Pos: pos}
	}
	three := func(k Kind) Token {
		lx.advance()
		lx.advance()
		lx.advance()
		return Token{Kind: k, Pos: pos}
	}
	one := func(k Kind) Token {
		lx.advance()
		return Token{Kind: k, Pos: pos}
	}
	a, b, c := lx.peekByte(), lx.peekByteAt(1), lx.peekByteAt(2)
	switch a {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ';':
		return one(Semi)
	case ',':
		return one(Comma)
	case '.':
		return one(Dot)
	case '?':
		return one(Question)
	case ':':
		if b == ':' {
			return two(ColonCol)
		}
		return one(Colon)
	case '~':
		return one(Tilde)
	case '+':
		if b == '+' {
			return two(Inc)
		}
		if b == '=' {
			return two(PlusEq)
		}
		return one(Plus)
	case '-':
		if b == '-' {
			return two(Dec)
		}
		if b == '=' {
			return two(MinusEq)
		}
		if b == '>' {
			return two(Arrow)
		}
		return one(Minus)
	case '*':
		if b == '=' {
			return two(StarEq)
		}
		return one(Star)
	case '/':
		if b == '=' {
			return two(SlashEq)
		}
		return one(Slash)
	case '%':
		if b == '=' {
			return two(PercentEq)
		}
		return one(Percent)
	case '&':
		if b == '&' {
			return two(AndAnd)
		}
		if b == '=' {
			return two(AmpEq)
		}
		return one(Amp)
	case '|':
		if b == '|' {
			return two(OrOr)
		}
		if b == '=' {
			return two(PipeEq)
		}
		return one(Pipe)
	case '^':
		if b == '=' {
			return two(CaretEq)
		}
		return one(Caret)
	case '!':
		if b == '=' {
			return two(NotEq)
		}
		return one(Not)
	case '<':
		if b == '<' && c == '=' {
			return three(ShlEq)
		}
		if b == '<' {
			return two(Shl)
		}
		if b == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if b == '>' && c == '=' {
			return three(ShrEq)
		}
		if b == '>' {
			return two(Shr)
		}
		if b == '=' {
			return two(Ge)
		}
		return one(Gt)
	case '=':
		if b == '=' {
			return two(EqEq)
		}
		return one(Assign)
	}
	lx.diags.Errorf(pos, "unexpected character %q", string(a))
	lx.advance()
	return lx.Next()
}

// Tokenize lexes the whole input and returns all tokens up to and
// including EOF.
func Tokenize(file, src string, diags *Diagnostics) []Token {
	lx := NewLexer(file, src, diags)
	var out []Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == EOF {
			return out
		}
	}
}
