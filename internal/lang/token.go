// Package lang implements the NetCL-C source language: tokens, lexer,
// abstract syntax tree, and parser.
//
// NetCL-C is the C subset used throughout the NetCL paper (SC'24,
// Figures 4, 6, 7, 11) extended with the NetCL specifiers _kernel,
// _net_, _managed_, _lookup_, _at and _spec, the lookup types kv<K,V>
// and rv<R,V>, and the ncl:: device library. The lexer includes a tiny
// preprocessor handling #define of object-like constant macros, which
// replaces the only preprocessor usage found in the paper's listings.
package lang

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Punctuation kinds are named after their symbol.
const (
	EOF Kind = iota
	IDENT
	INT    // 123, 0x7B, 'a'
	STRING // "..." (used only in diagnostics pragmas)

	// Keywords.
	KwVoid
	KwChar
	KwBool
	KwShort
	KwInt
	KwLong
	KwUnsigned
	KwSigned
	KwAuto
	KwConst
	KwStatic
	KwIf
	KwElse
	KwFor
	KwWhile
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwGoto
	KwTrue
	KwFalse
	KwStruct
	KwEnum
	KwSizeof

	// NetCL specifiers.
	KwKernel  // _kernel
	KwNet     // _net_
	KwManaged // _managed_
	KwLookup  // _lookup_
	KwAt      // _at
	KwSpec    // _spec

	// Punctuation and operators.
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	Semi      // ;
	Comma     // ,
	Dot       // .
	Arrow     // ->
	ColonCol  // ::
	Question  // ?
	Colon     // :
	Assign    // =
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Percent   // %
	Amp       // &
	Pipe      // |
	Caret     // ^
	Tilde     // ~
	Not       // !
	Shl       // <<
	Shr       // >>
	Lt        // <
	Gt        // >
	Le        // <=
	Ge        // >=
	EqEq      // ==
	NotEq     // !=
	AndAnd    // &&
	OrOr      // ||
	PlusEq    // +=
	MinusEq   // -=
	StarEq    // *=
	SlashEq   // /=
	PercentEq // %=
	AmpEq     // &=
	PipeEq    // |=
	CaretEq   // ^=
	ShlEq     // <<=
	ShrEq     // >>=
	Inc       // ++
	Dec       // --
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer literal", STRING: "string literal",
	KwVoid: "void", KwChar: "char", KwBool: "bool", KwShort: "short", KwInt: "int",
	KwLong: "long", KwUnsigned: "unsigned", KwSigned: "signed", KwAuto: "auto",
	KwConst: "const", KwStatic: "static", KwIf: "if", KwElse: "else", KwFor: "for",
	KwWhile: "while", KwDo: "do", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue", KwGoto: "goto", KwTrue: "true", KwFalse: "false",
	KwStruct: "struct", KwEnum: "enum", KwSizeof: "sizeof",
	KwKernel: "_kernel", KwNet: "_net_", KwManaged: "_managed_", KwLookup: "_lookup_",
	KwAt: "_at", KwSpec: "_spec",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[", RBracket: "]",
	Semi: ";", Comma: ",", Dot: ".", Arrow: "->", ColonCol: "::", Question: "?",
	Colon: ":", Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Not: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=", EqEq: "==",
	NotEq: "!=", AndAnd: "&&", OrOr: "||", PlusEq: "+=", MinusEq: "-=",
	StarEq: "*=", SlashEq: "/=", PercentEq: "%=", AmpEq: "&=", PipeEq: "|=",
	CaretEq: "^=", ShlEq: "<<=", ShrEq: ">>=", Inc: "++", Dec: "--",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"void": KwVoid, "char": KwChar, "bool": KwBool, "short": KwShort,
	"int": KwInt, "long": KwLong, "unsigned": KwUnsigned, "signed": KwSigned,
	"auto": KwAuto, "const": KwConst, "static": KwStatic, "if": KwIf,
	"else": KwElse, "for": KwFor, "while": KwWhile, "do": KwDo,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"goto": KwGoto, "true": KwTrue, "false": KwFalse, "struct": KwStruct,
	"enum": KwEnum, "sizeof": KwSizeof,
	"_kernel": KwKernel, "_net_": KwNet, "_managed_": KwManaged,
	"_lookup_": KwLookup, "_at": KwAt, "_spec": KwSpec,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT, STRING; normalized for INT
	Val  uint64 // value for INT
	Pos  Pos
}

// String returns a readable rendering of the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INT:
		return fmt.Sprintf("integer %d", t.Val)
	case STRING:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}
