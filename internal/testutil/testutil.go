// Package testutil provides shared helpers for the internal packages'
// tests: a one-call NetCL-C → P4 compilation chain that avoids
// importing the public root package (which would create import
// cycles).
package testutil

import (
	"fmt"

	"netcl/internal/codegen"
	"netcl/internal/ir"
	"netcl/internal/lang"
	"netcl/internal/lower"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/sema"
)

// CompileOne compiles NetCL-C source for one device and target.
func CompileOne(src string, target passes.Target, device uint16) (*p4.Program, *ir.Module, error) {
	var diags lang.Diagnostics
	file := lang.ParseFile("test.ncl", src, nil, &diags)
	prog := sema.Check(file, &diags)
	if err := diags.Err(); err != nil {
		return nil, nil, err
	}
	mod := lower.Module(prog, device, lower.Options{}, &diags)
	if err := diags.Err(); err != nil {
		return nil, nil, err
	}
	if mod == nil {
		return nil, nil, fmt.Errorf("no module for device %d", device)
	}
	if _, err := passes.Run(mod, passes.DefaultOptions(target)); err != nil {
		return nil, nil, err
	}
	p4prog, err := codegen.Generate(mod, codegen.Options{Target: p4.Target(target), ECMP: true})
	if err != nil {
		return nil, nil, err
	}
	return p4prog, mod, nil
}

// EchoKernel is a tiny NetCL program: computation 1 increments its
// argument and reflects the message to its sender.
const EchoKernel = `
_kernel(1) void echo(unsigned &x) {
  x = x + 1;
  return ncl::reflect();
}
`

// CounterKernel exposes a managed counter bumped per message.
const CounterKernel = `
_managed_ unsigned hits[16];
_kernel(1) void bump(unsigned slot, unsigned &count) {
  count = ncl::atomic_add_new(&hits[slot], 1);
  return ncl::reflect();
}
`
