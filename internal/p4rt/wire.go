package p4rt

// wire.go is the compact encoding of a write batch's op list. The
// request/response frames stay gob (self-describing, versioned), but a
// batch's ops ride inside the frame as one hand-packed byte string:
// gob's per-field reflection over []Op — five struct types deep — cost
// about half the per-op budget of a batched TCP write, and all of it
// is avoidable because the op vocabulary is closed. Varint packing
// also shrinks NetCache-scale churn frames several-fold on the wire.
//
// Table, register, and action names repeat in every op of a control
// stream, so the decoder interns them: a 10k-op churn burst allocates
// each name once, not 10k times.

import (
	"encoding/binary"
	"fmt"
	"sync"

	"netcl/internal/p4"
)

// opList carries request.Ops through gob via the custom codec below.
type opList []Op

// GobEncode packs the op list into one byte string.
func (ops opList) GobEncode() ([]byte, error) {
	// Sized for small key/arg tuples; AppendUvarint grows as needed.
	b := make([]byte, 0, 16+24*len(ops))
	b = binary.AppendUvarint(b, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		b = append(b, byte(op.Kind))
		switch op.Kind {
		case OpInsert, OpModify:
			b = appendStr(b, op.Table)
			b = appendEntry(b, op.Entry)
		case OpDelete:
			b = appendStr(b, op.Table)
			b = appendU64s(b, op.Keys)
		case OpRegisterWrite:
			b = appendStr(b, op.Reg)
			b = binary.AppendUvarint(b, uint64(op.Idx))
			b = binary.AppendUvarint(b, op.Val)
		case OpSetDefault:
			b = appendStr(b, op.Table)
			b = appendStr(b, op.Action)
			b = appendU64s(b, op.Args)
		default:
			return nil, fmt.Errorf("p4rt: encode unknown op kind %d", op.Kind)
		}
	}
	return b, nil
}

// GobDecode unpacks an op list; it is the inverse of GobEncode.
func (ops *opList) GobDecode(b []byte) error {
	d := wireReader{b: b}
	n := d.uvarint()
	if n <= uint64(len(d.b)) { // each op costs at least one byte
		// Entries and tuples for the whole batch come from shared
		// arenas: a few allocations per frame instead of four per op.
		d.ents = make([]p4.Entry, 0, n)
		d.acts = make([]p4.ActionCall, 0, n)
	}
	out := make([]Op, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		op := Op{Kind: OpKind(d.byte())}
		switch op.Kind {
		case OpInsert, OpModify:
			op.Table = d.name()
			op.Entry = d.entry()
		case OpDelete:
			op.Table = d.name()
			op.Keys = d.u64s()
		case OpRegisterWrite:
			op.Reg = d.name()
			op.Idx = int(d.uvarint())
			op.Val = d.uvarint()
		case OpSetDefault:
			op.Table = d.name()
			op.Action = d.name()
			op.Args = d.u64s()
		default:
			if d.err == nil {
				d.err = fmt.Errorf("p4rt: decode unknown op kind %d", op.Kind)
			}
		}
		out = append(out, op)
	}
	*ops = out
	return d.err
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendU64s(b []byte, vs []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func appendEntry(b []byte, e *p4.Entry) []byte {
	if e == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(len(e.Keys)))
	for i := range e.Keys {
		k := &e.Keys[i]
		b = binary.AppendUvarint(b, k.Value)
		b = binary.AppendUvarint(b, k.Mask)
		b = binary.AppendUvarint(b, k.Hi)
		b = binary.AppendVarint(b, int64(k.PrefixLen))
	}
	b = binary.AppendVarint(b, int64(e.Priority))
	if e.Action == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendStr(b, e.Action.Name)
	return appendU64s(b, e.Action.Args)
}

// wireReader decodes the packed form, latching the first error so the
// per-op code stays straight-line. The arenas batch-allocate the
// decoded object graph; growing one reallocates, which is safe because
// already-handed-out subslices keep the old backing array alive and
// nothing mutates a decoded value afterwards.
type wireReader struct {
	b   []byte
	err error

	ents []p4.Entry
	acts []p4.ActionCall
	kvs  []p4.KeyValue
	u64a []uint64
}

func (d *wireReader) keyvals(n int) []p4.KeyValue {
	if cap(d.kvs)-len(d.kvs) < n {
		d.kvs = make([]p4.KeyValue, 0, max(64, n))
	}
	s := len(d.kvs)
	d.kvs = d.kvs[:s+n]
	return d.kvs[s : s+n : s+n]
}

func (d *wireReader) uint64s(n int) []uint64 {
	if cap(d.u64a)-len(d.u64a) < n {
		d.u64a = make([]uint64, 0, max(64, n))
	}
	s := len(d.u64a)
	d.u64a = d.u64a[:s+n]
	return d.u64a[s : s+n : s+n]
}

func (d *wireReader) newEntry() *p4.Entry {
	if len(d.ents) == cap(d.ents) {
		d.ents = make([]p4.Entry, 0, max(8, 2*cap(d.ents)))
	}
	d.ents = d.ents[:len(d.ents)+1]
	return &d.ents[len(d.ents)-1]
}

func (d *wireReader) newAction() *p4.ActionCall {
	if len(d.acts) == cap(d.acts) {
		d.acts = make([]p4.ActionCall, 0, max(8, 2*cap(d.acts)))
	}
	d.acts = d.acts[:len(d.acts)+1]
	return &d.acts[len(d.acts)-1]
}

func (d *wireReader) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("p4rt: truncated op list")
	}
}

func (d *wireReader) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *wireReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *wireReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// name decodes a string through the intern pool.
func (d *wireReader) name() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := internName(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *wireReader) u64s() []uint64 {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.b)) { // each value costs at least one byte
		d.fail()
		return nil
	}
	out := d.uint64s(int(n))
	for i := range out {
		out[i] = d.uvarint()
	}
	return out
}

func (d *wireReader) entry() *p4.Entry {
	if d.byte() == 0 {
		return nil
	}
	e := d.newEntry()
	nk := d.uvarint()
	if d.err != nil || nk > uint64(len(d.b)) {
		d.fail()
		return e
	}
	if nk > 0 {
		e.Keys = d.keyvals(int(nk))
		for i := range e.Keys {
			k := &e.Keys[i]
			k.Value = d.uvarint()
			k.Mask = d.uvarint()
			k.Hi = d.uvarint()
			k.PrefixLen = int(d.varint())
		}
	}
	e.Priority = int(d.varint())
	if d.byte() == 1 {
		a := d.newAction()
		a.Name = d.name()
		a.Args = d.u64s()
		e.Action = a
	}
	return e
}

// internName returns a canonical string for b. Control streams repeat
// the same few table/register/action names in every op; the pool is
// bounded by the number of distinct names the programs use.
var (
	internMu sync.RWMutex
	interned = map[string]string{}
)

func internName(b []byte) string {
	internMu.RLock()
	s, ok := interned[string(b)] // no alloc: map lookup keyed by []byte
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	interned[s] = s
	internMu.Unlock()
	return s
}
