// Package p4rt is the control-plane interface of NetCL devices, in the
// spirit of the P4Runtime API the paper's host runtime uses for
// _managed_ memory (§V-B, requirement R6): register access and table
// entry management, over a direct in-process binding or a TCP
// transport for real deployments.
package p4rt

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
)

// Client is the control-plane surface used by the host runtime.
type Client interface {
	RegisterRead(name string, idx int) (uint64, error)
	RegisterWrite(name string, idx int, v uint64) error
	InsertEntry(table string, e *p4.Entry) error
	DeleteEntry(table string, keyVal uint64) (int, error)
}

// Direct is an in-process client bound to a behavioral-model switch.
type Direct struct {
	SW *bmv2.Switch
	mu sync.Mutex
}

// RegisterRead implements Client.
func (d *Direct) RegisterRead(name string, idx int) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.RegisterRead(name, idx)
}

// RegisterWrite implements Client.
func (d *Direct) RegisterWrite(name string, idx int, v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.RegisterWrite(name, idx, v)
}

// InsertEntry implements Client.
func (d *Direct) InsertEntry(table string, e *p4.Entry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.InsertEntry(table, e)
}

// DeleteEntry implements Client.
func (d *Direct) DeleteEntry(table string, keyVal uint64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.DeleteEntry(table, keyVal), nil
}

// Wire protocol (gob-encoded request/response over TCP).

type request struct {
	Op     string // "rread", "rwrite", "insert", "delete"
	Name   string
	Idx    int
	Val    uint64
	KeyVal uint64
	Entry  *p4.Entry
}

type response struct {
	Val     uint64
	Removed int
	Err     string
}

// Server exposes a switch's control plane on a TCP listener.
type Server struct {
	lis net.Listener
	cl  Client
	wg  sync.WaitGroup
}

// Serve starts a control-plane server on addr (e.g. "127.0.0.1:0").
func Serve(addr string, cl Client) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{lis: lis, cl: cl}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Op {
		case "rread":
			v, err := s.cl.RegisterRead(req.Name, req.Idx)
			resp.Val = v
			resp.Err = errString(err)
		case "rwrite":
			resp.Err = errString(s.cl.RegisterWrite(req.Name, req.Idx, req.Val))
		case "insert":
			resp.Err = errString(s.cl.InsertEntry(req.Name, req.Entry))
		case "delete":
			n, err := s.cl.DeleteEntry(req.Name, req.KeyVal)
			resp.Removed = n
			resp.Err = errString(err)
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TCPClient is a Client over a TCP control-plane connection.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a device control plane.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }

func (c *TCPClient) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return &resp, fmt.Errorf("%s", resp.Err)
	}
	return &resp, nil
}

// RegisterRead implements Client.
func (c *TCPClient) RegisterRead(name string, idx int) (uint64, error) {
	resp, err := c.roundTrip(&request{Op: "rread", Name: name, Idx: idx})
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

// RegisterWrite implements Client.
func (c *TCPClient) RegisterWrite(name string, idx int, v uint64) error {
	_, err := c.roundTrip(&request{Op: "rwrite", Name: name, Idx: idx, Val: v})
	return err
}

// InsertEntry implements Client.
func (c *TCPClient) InsertEntry(table string, e *p4.Entry) error {
	_, err := c.roundTrip(&request{Op: "insert", Name: table, Entry: e})
	return err
}

// DeleteEntry implements Client.
func (c *TCPClient) DeleteEntry(table string, keyVal uint64) (int, error) {
	resp, err := c.roundTrip(&request{Op: "delete", Name: table, KeyVal: keyVal})
	if err != nil {
		return 0, err
	}
	return resp.Removed, nil
}
