// Package p4rt is the control-plane interface of NetCL devices, in the
// spirit of the P4Runtime API the paper's host runtime uses for
// _managed_ memory (§V-B, requirement R6): register access and
// transactional table/register write batches, over a direct in-process
// binding or a TCP transport for real deployments.
//
// The write surface is batch-first: a WriteBatch carries entry
// inserts/modifies/deletes, register writes, and default-action
// changes as one all-or-nothing unit, applied atomically by the device
// (a packet observes all of the batch or none of it) and carried over
// the wire in a single versioned request frame. The legacy single-op
// calls remain as thin wrappers around one-op batches.
package p4rt

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
)

// Batch vocabulary, shared with the switch implementation (bmv2 owns
// the types so the in-process binding and the wire encoding agree).
type (
	// WriteBatch accumulates ops for one transactional Write.
	WriteBatch = bmv2.WriteBatch
	// WriteResult reports per-op outcomes of a committed batch.
	WriteResult = bmv2.WriteResult
	// BatchError names the op that failed a Write.
	BatchError = bmv2.BatchError
	// Op is one batch operation.
	Op = bmv2.Op
	// OpKind discriminates batch operations.
	OpKind = bmv2.OpKind
)

// Re-exported op kinds.
const (
	OpInsert        = bmv2.OpInsert
	OpModify        = bmv2.OpModify
	OpDelete        = bmv2.OpDelete
	OpRegisterWrite = bmv2.OpRegisterWrite
	OpSetDefault    = bmv2.OpSetDefault
)

// NewWriteBatch returns an empty batch.
func NewWriteBatch() *WriteBatch { return bmv2.NewWriteBatch() }

// Client is the control-plane surface used by the host runtime:
// register reads plus transactional write batches. The single-op
// methods are deprecated wrappers — each is a one-op batch — kept so
// existing drivers compile; new code should accumulate a WriteBatch
// and call Write once.
type Client interface {
	RegisterRead(name string, idx int) (uint64, error)
	Write(b *WriteBatch) (*WriteResult, error)

	// Deprecated: single-op wrappers around Write.
	RegisterWrite(name string, idx int, v uint64) error
	InsertEntry(table string, e *p4.Entry) error
	DeleteEntry(table string, keys ...uint64) (int, error)
}

// Direct is an in-process client bound to a behavioral-model switch.
type Direct struct {
	SW *bmv2.Switch
	mu sync.Mutex
}

// RegisterRead implements Client.
func (d *Direct) RegisterRead(name string, idx int) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.RegisterRead(name, idx)
}

// Write implements Client: the batch applies transactionally on the
// switch and publishes one rule-set generation.
func (d *Direct) Write(b *WriteBatch) (*WriteResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.Write(b)
}

// RegisterWrite implements Client as a one-op batch.
func (d *Direct) RegisterWrite(name string, idx int, v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.RegisterWrite(name, idx, v)
}

// InsertEntry implements Client as a one-op batch.
func (d *Direct) InsertEntry(table string, e *p4.Entry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.InsertEntry(table, e)
}

// DeleteEntry implements Client as a one-op batch: entries are removed
// only when every key value matches the full tuple.
func (d *Direct) DeleteEntry(table string, keys ...uint64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.SW.DeleteEntry(table, keys...), nil
}

// Wire protocol (gob-encoded request/response frames over TCP).
//
// Version 2 made a request either a register read or one whole write
// batch — the entire transaction rides in a single frame, so a
// NetCache-scale churn burst costs one round trip instead of one per
// op. Version 3 packs the op list itself (see wire.go): the frame is
// still gob, but the batch crosses as one varint-packed byte string
// instead of reflection-encoded structs. Versioning is explicit; a
// server rejects frames whose version it does not speak instead of
// misreading them.

// wireVersion is the protocol revision this package speaks.
const wireVersion = 3

type request struct {
	Ver  int
	Op   string // "rread", "write"
	Name string // rread: register name
	Idx  int    // rread: cell index
	Ops  opList // write: the batch
}

type response struct {
	Val      uint64 // rread result
	Removed  []int  // write: per-op removed counts
	FailedOp int    // write: index of the failed op, -1 otherwise
	Err      string
}

// Server exposes a switch's control plane on a TCP listener.
type Server struct {
	lis net.Listener
	cl  Client
	wg  sync.WaitGroup
}

// Serve starts a control-plane server on addr (e.g. "127.0.0.1:0").
func Serve(addr string, cl Client) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{lis: lis, cl: cl}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := response{FailedOp: -1}
		switch {
		case req.Ver != wireVersion:
			resp.Err = fmt.Sprintf("unsupported wire version %d (speak %d)", req.Ver, wireVersion)
		case req.Op == "rread":
			v, err := s.cl.RegisterRead(req.Name, req.Idx)
			resp.Val = v
			resp.Err = errString(err)
		case req.Op == "write":
			res, err := s.cl.Write(&WriteBatch{Ops: []Op(req.Ops)})
			if err != nil {
				resp.Err = errString(err)
				if be, ok := err.(*BatchError); ok {
					resp.FailedOp = be.Index
					resp.Err = errString(be.Err)
				}
			} else {
				resp.Removed = res.Removed
			}
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TCPClient is a Client over a TCP control-plane connection.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a device control plane.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }

func (c *TCPClient) roundTrip(req *request) (*response, error) {
	req.Ver = wireVersion
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		err := fmt.Errorf("%s", resp.Err)
		if resp.FailedOp >= 0 {
			err = &BatchError{Index: resp.FailedOp, Err: err}
		}
		return &resp, err
	}
	return &resp, nil
}

// RegisterRead implements Client.
func (c *TCPClient) RegisterRead(name string, idx int) (uint64, error) {
	resp, err := c.roundTrip(&request{Op: "rread", Name: name, Idx: idx})
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

// Write implements Client: the whole batch crosses the wire in one
// frame and applies transactionally on the device. A failed batch
// comes back as a *BatchError carrying the remote op index.
func (c *TCPClient) Write(b *WriteBatch) (*WriteResult, error) {
	if b == nil || len(b.Ops) == 0 {
		return &WriteResult{}, nil
	}
	resp, err := c.roundTrip(&request{Op: "write", Ops: opList(b.Ops)})
	if err != nil {
		return nil, err
	}
	return &WriteResult{Removed: resp.Removed}, nil
}

// RegisterWrite implements Client as a one-op batch.
func (c *TCPClient) RegisterWrite(name string, idx int, v uint64) error {
	_, err := c.Write(NewWriteBatch().RegisterWrite(name, idx, v))
	return unwrapBatch(err)
}

// InsertEntry implements Client as a one-op batch.
func (c *TCPClient) InsertEntry(table string, e *p4.Entry) error {
	_, err := c.Write(NewWriteBatch().Insert(table, e))
	return unwrapBatch(err)
}

// DeleteEntry implements Client as a one-op batch: entries are removed
// only when every key value matches the full tuple, so multi-key
// deletes over TCP no longer match on the first key alone.
func (c *TCPClient) DeleteEntry(table string, keys ...uint64) (int, error) {
	res, err := c.Write(NewWriteBatch().Delete(table, keys...))
	if err != nil {
		return 0, unwrapBatch(err)
	}
	return res.Removed[0], nil
}

// unwrapBatch strips the op index off a single-op batch failure, so
// the deprecated wrappers keep returning plain errors.
func unwrapBatch(err error) error {
	if be, ok := err.(*BatchError); ok {
		return be.Err
	}
	return err
}
