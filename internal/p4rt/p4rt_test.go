package p4rt

import (
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"testing"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/testutil"
)

func newSwitch(t *testing.T) *bmv2.Switch {
	t.Helper()
	prog, _, err := testutil.CompileOne(testutil.CounterKernel, passes.TargetTNA, 1)
	if err != nil {
		t.Fatal(err)
	}
	return bmv2.New(prog)
}

func TestDirectClient(t *testing.T) {
	sw := newSwitch(t)
	var cl Client = &Direct{SW: sw}
	if err := cl.RegisterWrite("reg_hits", 3, 42); err != nil {
		t.Fatal(err)
	}
	v, err := cl.RegisterRead("reg_hits", 3)
	if err != nil || v != 42 {
		t.Fatalf("read: %d %v", v, err)
	}
	if _, err := cl.RegisterRead("nope", 0); err == nil {
		t.Error("unknown register must fail")
	}
	if err := cl.InsertEntry("netcl_fwd", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: 5}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{2}},
	}); err != nil {
		t.Fatal(err)
	}
	n, err := cl.DeleteEntry("netcl_fwd", 5)
	if err != nil || n != 1 {
		t.Fatalf("delete: %d %v", n, err)
	}
}

func TestTCPControlPlane(t *testing.T) {
	sw := newSwitch(t)
	srv, err := Serve("127.0.0.1:0", &Direct{SW: sw})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.RegisterWrite("reg_hits", 7, 1234); err != nil {
		t.Fatal(err)
	}
	v, err := cl.RegisterRead("reg_hits", 7)
	if err != nil || v != 1234 {
		t.Fatalf("tcp read: %d %v", v, err)
	}
	// Errors cross the wire.
	if _, err := cl.RegisterRead("bogus", 0); err == nil {
		t.Error("remote error not propagated")
	}
	// Entries cross the wire (gob round trip of p4.Entry).
	if err := cl.InsertEntry("netcl_fwd", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: 9, PrefixLen: -1}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{4}},
	}); err != nil {
		t.Fatal(err)
	}
	got := sw.Entries("netcl_fwd")
	if len(got) != 1 || got[0].Action.Args[0] != 4 {
		t.Fatalf("entry did not arrive: %+v", got)
	}
	n, err := cl.DeleteEntry("netcl_fwd", 9)
	if err != nil || n != 1 {
		t.Fatalf("tcp delete: %d %v", n, err)
	}
}

func fwdEntry(key, port uint64) *p4.Entry {
	return &p4.Entry{
		Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{port}},
	}
}

func TestBatchOverTCP(t *testing.T) {
	sw := newSwitch(t)
	srv, err := Serve("127.0.0.1:0", &Direct{SW: sw})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A whole mixed batch rides in one request frame.
	b := NewWriteBatch().
		Insert("netcl_fwd", fwdEntry(1, 10)).
		Insert("netcl_fwd", fwdEntry(2, 20)).
		RegisterWrite("reg_hits", 0, 99).
		Delete("netcl_fwd", 1).
		SetDefault("netcl_fwd", "set_port", []uint64{7})
	res, err := cl.Write(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 5 || res.Removed[3] != 1 {
		t.Fatalf("removed counts: %v", res.Removed)
	}
	if got := sw.Entries("netcl_fwd"); len(got) != 1 || got[0].Keys[0].Value != 2 {
		t.Fatalf("post-batch entries: %+v", got)
	}
	if v, _ := cl.RegisterRead("reg_hits", 0); v != 99 {
		t.Errorf("register write lost: %d", v)
	}

	// A failed batch reports the op index across the wire and leaves
	// the device untouched.
	bad := NewWriteBatch().
		Insert("netcl_fwd", fwdEntry(3, 30)).
		RegisterWrite("no_such_reg", 0, 1)
	if _, err := cl.Write(bad); err == nil {
		t.Fatal("bad batch must fail")
	} else {
		var be *BatchError
		if !errors.As(err, &be) || be.Index != 1 {
			t.Fatalf("want BatchError index 1, got %v", err)
		}
	}
	if got := sw.Entries("netcl_fwd"); len(got) != 1 {
		t.Fatalf("failed batch leaked state: %+v", got)
	}
}

func TestTCPDeleteFullTuple(t *testing.T) {
	// Multi-key deletes over TCP must match the full tuple — the old
	// wire protocol silently matched the first key only.
	prog, _, err := testutil.CompileOne(testutil.CounterKernel, passes.TargetTNA, 1)
	if err != nil {
		t.Fatal(err)
	}
	sw := bmv2.New(prog)
	if err := sw.InsertEntry("netcl_fwd", fwdEntry(5, 1)); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", &Direct{SW: sw})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Wrong arity removes nothing.
	if n, err := cl.DeleteEntry("netcl_fwd", 5, 6); err != nil || n != 0 {
		t.Fatalf("arity-mismatched delete: %d %v", n, err)
	}
	// Exact tuple removes the entry.
	if n, err := cl.DeleteEntry("netcl_fwd", 5); err != nil || n != 1 {
		t.Fatalf("full-tuple delete: %d %v", n, err)
	}
}

func TestWireVersionRejected(t *testing.T) {
	sw := newSwitch(t)
	srv, err := Serve("127.0.0.1:0", &Direct{SW: sw})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(&request{Ver: 1, Op: "rread", Name: "reg_hits"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "wire version") {
		t.Fatalf("stale version accepted: %+v", resp)
	}
}
