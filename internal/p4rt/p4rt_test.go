package p4rt

import (
	"testing"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/testutil"
)

func newSwitch(t *testing.T) *bmv2.Switch {
	t.Helper()
	prog, _, err := testutil.CompileOne(testutil.CounterKernel, passes.TargetTNA, 1)
	if err != nil {
		t.Fatal(err)
	}
	return bmv2.New(prog)
}

func TestDirectClient(t *testing.T) {
	sw := newSwitch(t)
	var cl Client = &Direct{SW: sw}
	if err := cl.RegisterWrite("reg_hits", 3, 42); err != nil {
		t.Fatal(err)
	}
	v, err := cl.RegisterRead("reg_hits", 3)
	if err != nil || v != 42 {
		t.Fatalf("read: %d %v", v, err)
	}
	if _, err := cl.RegisterRead("nope", 0); err == nil {
		t.Error("unknown register must fail")
	}
	if err := cl.InsertEntry("netcl_fwd", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: 5}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{2}},
	}); err != nil {
		t.Fatal(err)
	}
	n, err := cl.DeleteEntry("netcl_fwd", 5)
	if err != nil || n != 1 {
		t.Fatalf("delete: %d %v", n, err)
	}
}

func TestTCPControlPlane(t *testing.T) {
	sw := newSwitch(t)
	srv, err := Serve("127.0.0.1:0", &Direct{SW: sw})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.RegisterWrite("reg_hits", 7, 1234); err != nil {
		t.Fatal(err)
	}
	v, err := cl.RegisterRead("reg_hits", 7)
	if err != nil || v != 1234 {
		t.Fatalf("tcp read: %d %v", v, err)
	}
	// Errors cross the wire.
	if _, err := cl.RegisterRead("bogus", 0); err == nil {
		t.Error("remote error not propagated")
	}
	// Entries cross the wire (gob round trip of p4.Entry).
	if err := cl.InsertEntry("netcl_fwd", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: 9, PrefixLen: -1}},
		Action: &p4.ActionCall{Name: "set_port", Args: []uint64{4}},
	}); err != nil {
		t.Fatal(err)
	}
	got := sw.Entries("netcl_fwd")
	if len(got) != 1 || got[0].Action.Args[0] != 4 {
		t.Fatalf("entry did not arrive: %+v", got)
	}
	n, err := cl.DeleteEntry("netcl_fwd", 9)
	if err != nil || n != 1 {
		t.Fatalf("tcp delete: %d %v", n, err)
	}
}
