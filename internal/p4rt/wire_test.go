package p4rt

import (
	"reflect"
	"testing"

	"netcl/internal/p4"
)

// TestOpListRoundTrip pushes every op kind — including the awkward
// corners: nil entries, nil actions, lpm prefix -1, ternary masks,
// priorities, empty key tuples — through the packed wire codec.
func TestOpListRoundTrip(t *testing.T) {
	in := opList{
		{Kind: OpInsert, Table: "fwd", Entry: &p4.Entry{
			Keys:   []p4.KeyValue{{Value: 7, PrefixLen: -1}, {Value: 9, Mask: 0xFF, Hi: 12, PrefixLen: 24}},
			Action: &p4.ActionCall{Name: "set_out", Args: []uint64{1, 1 << 60}},
		}},
		{Kind: OpModify, Table: "fwd", Entry: &p4.Entry{
			Keys:     []p4.KeyValue{{Value: 3, PrefixLen: -1}},
			Priority: -5,
		}},
		{Kind: OpInsert, Table: "fwd"}, // nil entry (server rejects, wire must carry)
		{Kind: OpDelete, Table: "fwd", Keys: []uint64{7, 9}},
		{Kind: OpDelete, Table: "other"}, // empty tuple
		{Kind: OpRegisterWrite, Reg: "r0", Idx: 3, Val: ^uint64(0)},
		{Kind: OpSetDefault, Table: "fwd", Action: "miss", Args: []uint64{42}},
		{Kind: OpSetDefault, Table: "fwd", Action: "drop"},
	}
	b, err := in.GobEncode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out opList
	if err := out.GobDecode(b); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}

	// Truncation at any prefix must error, not panic or misread.
	for i := 0; i < len(b); i++ {
		var tr opList
		if err := tr.GobDecode(b[:i]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", i, len(b))
		}
	}
}

func TestOpListEncodeUnknownKind(t *testing.T) {
	if _, err := (opList{{Kind: OpKind(99)}}).GobEncode(); err == nil {
		t.Fatal("want error for unknown op kind")
	}
	var out opList
	if err := out.GobDecode([]byte{1, 99}); err == nil {
		t.Fatal("want error decoding unknown op kind")
	}
}
