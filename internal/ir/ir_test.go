package ir

import "testing"

// diamond builds entry -> (a|b) -> join, returning the four blocks.
func diamond(t *testing.T) (*Func, *Block, *Block, *Block, *Block) {
	t.Helper()
	f := NewFunc("k", 1)
	entry := f.NewBlock("entry")
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	join := f.NewBlock("join")
	cond := entry.Append(&Instr{Op: OpICmp, Ty: I1, Pred: PredNE,
		Args: []Value{ConstOf(U32, 1), ConstOf(U32, 0)}})
	entry.Append(&Instr{Op: OpBr, Args: []Value{cond}, Targets: []*Block{a, b}})
	a.Append(&Instr{Op: OpJmp, Targets: []*Block{join}})
	b.Append(&Instr{Op: OpJmp, Targets: []*Block{join}})
	join.Append(&Instr{Op: OpRetAction, ActionKind: ActPass})
	return f, entry, a, b, join
}

func TestTypeWrap(t *testing.T) {
	cases := []struct {
		ty   Type
		in   int64
		want int64
	}{
		{U8, 256, 0},
		{U8, 255, 255},
		{U8, -1, 255},
		{S8, 255, -1},
		{S8, 127, 127},
		{S8, 128, -128},
		{U16, 65536 + 7, 7},
		{S16, 0x8000, -32768},
		{I1, 3, 1},
		{U64, -1, -1},
	}
	for _, c := range cases {
		if got := c.ty.Wrap(c.in); got != c.want {
			t.Errorf("%v.Wrap(%d) = %d, want %d", c.ty, c.in, got, c.want)
		}
	}
}

func TestRPOAndDominators(t *testing.T) {
	f, entry, a, b, join := diamond(t)
	rpo := RPO(f)
	if len(rpo) != 4 || rpo[0] != entry || rpo[3] != join {
		t.Fatalf("rpo: %v", names(rpo))
	}
	dt := BuildDomTree(f)
	if dt.IDom(a) != entry || dt.IDom(b) != entry || dt.IDom(join) != entry {
		t.Errorf("idoms wrong: a=%s b=%s join=%s", dt.IDom(a).Name, dt.IDom(b).Name, dt.IDom(join).Name)
	}
	if !dt.Dominates(entry, join) || dt.Dominates(a, join) {
		t.Error("dominance queries wrong")
	}
	if dt.NCA(a, b) != entry {
		t.Errorf("NCA(a,b) = %s", dt.NCA(a, b).Name)
	}
}

func TestDominanceFrontiers(t *testing.T) {
	f, _, a, b, join := diamond(t)
	df := BuildDomTree(f).Frontiers()
	if len(df[a]) != 1 || df[a][0] != join {
		t.Errorf("DF(a) = %v", names(df[a]))
	}
	if len(df[b]) != 1 || df[b][0] != join {
		t.Errorf("DF(b) = %v", names(df[b]))
	}
	_ = f
}

func TestPostDominators(t *testing.T) {
	f, entry, a, b, join := diamond(t)
	pt := BuildPostDomTree(f)
	if pt.IPDom(entry) != join {
		t.Errorf("ipdom(entry) should be join, got %v", blockName(pt.IPDom(entry)))
	}
	if pt.IPDom(a) != join || pt.IPDom(b) != join {
		t.Error("ipdom of branches should be join")
	}
	if pt.IPDom(join) != nil {
		t.Errorf("ipdom(join) should be the virtual exit")
	}
	if !pt.PostDominates(join, entry) || pt.PostDominates(a, entry) {
		t.Error("PostDominates queries wrong")
	}
	_ = f
}

func TestPostDominatorsMultiExit(t *testing.T) {
	// entry -> (a: ret | b: ret): no real block postdominates entry.
	f := NewFunc("k", 1)
	entry := f.NewBlock("entry")
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	cond := entry.Append(&Instr{Op: OpICmp, Ty: I1, Pred: PredNE,
		Args: []Value{ConstOf(U32, 1), ConstOf(U32, 0)}})
	entry.Append(&Instr{Op: OpBr, Args: []Value{cond}, Targets: []*Block{a, b}})
	a.Append(&Instr{Op: OpRetAction, ActionKind: ActDrop})
	b.Append(&Instr{Op: OpRetAction, ActionKind: ActPass})
	pt := BuildPostDomTree(f)
	if pt.IPDom(entry) != nil {
		t.Errorf("ipdom(entry) should be virtual exit, got %s", pt.IPDom(entry).Name)
	}
}

func TestVerifyDAGDetectsCycle(t *testing.T) {
	f := NewFunc("k", 1)
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	a.Append(&Instr{Op: OpJmp, Targets: []*Block{b}})
	b.Append(&Instr{Op: OpJmp, Targets: []*Block{a}})
	if err := VerifyDAG(f); err == nil {
		t.Error("expected cycle detection error")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	f := NewFunc("k", 1)
	blk := f.NewBlock("entry")
	blk.Append(&Instr{Op: OpAdd, Ty: U32, Args: []Value{ConstOf(U32, 1), ConstOf(U32, 2)}})
	if err := Verify(f); err == nil {
		t.Error("expected missing-terminator error")
	}
}

func TestReplaceAllUsesAndNumUses(t *testing.T) {
	f := NewFunc("k", 1)
	blk := f.NewBlock("entry")
	a := blk.Append(&Instr{Op: OpAdd, Ty: U32, Args: []Value{ConstOf(U32, 1), ConstOf(U32, 2)}})
	b := blk.Append(&Instr{Op: OpMul, Ty: U32, Args: []Value{a, a}})
	blk.Append(&Instr{Op: OpRetAction, ActionKind: ActPass})
	if f.NumUses(a) != 2 {
		t.Fatalf("NumUses(a) = %d", f.NumUses(a))
	}
	c := ConstOf(U32, 3)
	f.ReplaceAllUses(a, c)
	if f.NumUses(a) != 0 || b.Args[0] != Value(c) {
		t.Error("ReplaceAllUses failed")
	}
}

func TestPredHelpers(t *testing.T) {
	if PredULT.Invert() != PredUGE || PredULT.Swap() != PredUGT {
		t.Error("pred helpers wrong")
	}
	if PredEQ.Invert() != PredNE || PredEQ.Swap() != PredEQ {
		t.Error("eq helpers wrong")
	}
}

func names(bs []*Block) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b.Name)
	}
	return out
}

func blockName(b *Block) string {
	if b == nil {
		return "<exit>"
	}
	return b.Name
}
