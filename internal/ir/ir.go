// Package ir defines the NetCL compiler's intermediate representation:
// a typed, CFG-based IR with load/store locals that is promoted to SSA
// for optimization (mem2reg) and demoted again (φ-elimination) before
// P4 code generation — mirroring the LLVM-based pipeline of the paper
// (§VI, Fig. 8).
package ir

import (
	"fmt"
	"strings"
)

// Type is an integer value type. The IR uses explicit bit widths; i1 is
// the type of comparison results and conditions.
type Type struct {
	Bits   int
	Signed bool
}

// Common types.
var (
	I1  = Type{Bits: 1}
	U8  = Type{Bits: 8}
	U16 = Type{Bits: 16}
	U32 = Type{Bits: 32}
	U64 = Type{Bits: 64}
	S8  = Type{Bits: 8, Signed: true}
	S16 = Type{Bits: 16, Signed: true}
	S32 = Type{Bits: 32, Signed: true}
	S64 = Type{Bits: 64, Signed: true}
)

// String renders the type (u32, i16, i1, ...).
func (t Type) String() string {
	if t.Bits == 1 {
		return "i1"
	}
	if t.Signed {
		return fmt.Sprintf("s%d", t.Bits)
	}
	return fmt.Sprintf("u%d", t.Bits)
}

// Mask returns the bit mask for the type's width.
func (t Type) Mask() uint64 {
	if t.Bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(t.Bits)) - 1
}

// Wrap truncates v to the type's width and, for signed types,
// sign-extends the result back to 64 bits.
func (t Type) Wrap(v int64) int64 {
	u := uint64(v) & t.Mask()
	if t.Signed && t.Bits < 64 && u>>(uint(t.Bits)-1) != 0 {
		return int64(u | ^t.Mask())
	}
	return int64(u)
}

// MaxUnsigned returns the largest unsigned value of this width.
func (t Type) MaxUnsigned() uint64 { return t.Mask() }

// Value is an SSA value: a constant or an instruction result.
type Value interface {
	Type() Type
	// Ref is the short textual reference used in printed IR.
	Ref() string
}

// Const is an integer constant value.
type Const struct {
	Ty  Type
	Val int64 // stored wrapped to Ty
}

// ConstOf builds a constant of the given type, wrapping the value.
func ConstOf(t Type, v int64) *Const { return &Const{Ty: t, Val: t.Wrap(v)} }

// Type implements Value.
func (c *Const) Type() Type { return c.Ty }

// Ref implements Value.
func (c *Const) Ref() string { return fmt.Sprintf("%d:%s", c.Val, c.Ty) }

// Uint returns the constant as an unsigned bit pattern of its width.
func (c *Const) Uint() uint64 { return uint64(c.Val) & c.Ty.Mask() }

// Op enumerates IR operations.
type Op int

// Operations.
const (
	OpInvalid Op = iota

	// Binary arithmetic/logic. Args: [a, b].
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpSDiv
	OpURem
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	OpSAddSat // unsigned saturating add
	OpSSubSat // unsigned saturating sub (floor at 0)
	OpMin
	OpMax

	// Comparison. Args: [a, b]; Pred field. Result i1.
	OpICmp

	// Select. Args: [cond(i1), a, b].
	OpSelect

	// Width conversions. Args: [x].
	OpTrunc
	OpZExt
	OpSExt

	// Local (thread-private) memory.
	OpAlloca // no args; Elem/Count fields
	OpLoad   // Args: [alloca, index]
	OpStore  // Args: [alloca, index, value]

	// Message (kernel argument) memory.
	OpLoadMsg  // Args: [index]; Param field
	OpStoreMsg // Args: [index, value]; Param field
	OpMsgField // no args; Field is one of src,dst,from,to,comp

	// Global (device) memory. G field names the object.
	// Args: indices... [, cond][, operands...] per AOp.
	OpAtomicRMW

	// Lookup memory. Args: [key]; G field. Result i1.
	OpLookup
	// LookupVal extracts the matched value. Args: [lookup-instr].
	OpLookupVal

	// Special operations.
	OpHash     // Args: fields...; HashKind
	OpRand     // no args
	OpByteSwap // Args: [x]
	OpCLZ      // Args: [x]
	OpCTZ      // Args: [x]

	// SSA φ-node. Args parallel In blocks.
	OpPhi

	// Terminators.
	OpBr        // Args: [cond(i1)]; Targets: [then, else]
	OpJmp       // Targets: [next]
	OpRetAction // ActionKind; Args: action operand (host/device/group id)
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv", OpSDiv: "sdiv",
	OpURem: "urem", OpSRem: "srem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr", OpSAddSat: "sadd.sat",
	OpSSubSat: "ssub.sat", OpMin: "min", OpMax: "max", OpICmp: "icmp",
	OpSelect: "select", OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store",
	OpLoadMsg: "loadmsg", OpStoreMsg: "storemsg", OpMsgField: "msgfield",
	OpAtomicRMW: "atomicrmw", OpLookup: "lookup", OpLookupVal: "lookupval",
	OpHash: "hash", OpRand: "rand", OpByteSwap: "bswap", OpCLZ: "clz",
	OpCTZ: "ctz", OpPhi: "phi", OpBr: "br", OpJmp: "jmp", OpRetAction: "ret",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Pred is an integer comparison predicate.
type Pred int

// Comparison predicates.
const (
	PredEQ Pred = iota
	PredNE
	PredULT
	PredULE
	PredUGT
	PredUGE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
)

var predNames = [...]string{"eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"}

// String implements fmt.Stringer.
func (p Pred) String() string { return predNames[p] }

// Swap returns the predicate with operand order reversed.
func (p Pred) Swap() Pred {
	switch p {
	case PredULT:
		return PredUGT
	case PredULE:
		return PredUGE
	case PredUGT:
		return PredULT
	case PredUGE:
		return PredULE
	case PredSLT:
		return PredSGT
	case PredSLE:
		return PredSGE
	case PredSGT:
		return PredSLT
	case PredSGE:
		return PredSLE
	}
	return p
}

// Invert returns the logical negation of the predicate.
func (p Pred) Invert() Pred {
	switch p {
	case PredEQ:
		return PredNE
	case PredNE:
		return PredEQ
	case PredULT:
		return PredUGE
	case PredULE:
		return PredUGT
	case PredUGT:
		return PredULE
	case PredUGE:
		return PredULT
	case PredSLT:
		return PredSGE
	case PredSLE:
		return PredSGT
	case PredSGT:
		return PredSLE
	case PredSGE:
		return PredSLT
	}
	return p
}

// LookupKind identifies the match kind of a lookup memory object.
type LookupKind int

// Lookup kinds.
const (
	LookupNone  LookupKind = iota // not lookup memory
	LookupSet                     // scalar membership
	LookupExact                   // kv<K,V>
	LookupRange                   // rv<R,V>
)

// MemRef describes a global memory object (a post-partitioning unit
// that maps 1:1 to a P4 Register or MAT).
type MemRef struct {
	Name    string
	Elem    Type // scalar element type (for kv/rv: the value type)
	Dims    []int
	Managed bool
	LKind   LookupKind
	KeyType Type // lookup key/range type
	// Init is the flattened initializer: for LookupSet the keys; for
	// LookupExact (k,v) pairs; for LookupRange (lo,hi,v) triples;
	// otherwise element values.
	Init []int64
}

// NumElems is the flattened element count.
func (m *MemRef) NumElems() int {
	n := 1
	for _, d := range m.Dims {
		n *= d
	}
	return n
}

// IsLookup reports whether the object is lookup memory.
func (m *MemRef) IsLookup() bool { return m.LKind != LookupNone }

// MsgParam is a kernel argument backed by message data.
type MsgParam struct {
	Name  string
	Ty    Type
	Count int // specification (element count)
	// Out marks in/out parameters (by-ref and pointer arguments).
	Out bool
	// Offset is the byte offset of the argument in the message data.
	Offset int
	Index  int
}

// ActionKind names a Table II forwarding action.
type ActionKind string

// Forwarding actions.
const (
	ActDrop        ActionKind = "drop"
	ActSendHost    ActionKind = "send_to_host"
	ActSendDevice  ActionKind = "send_to_device"
	ActMulticast   ActionKind = "multicast"
	ActReflect     ActionKind = "reflect"
	ActReflectLong ActionKind = "reflect_long"
	ActPass        ActionKind = "pass"
)

// Instr is an IR instruction; value-producing instructions implement
// Value.
type Instr struct {
	Op   Op
	Ty   Type
	Args []Value

	// Op-specific fields.
	Pred       Pred
	G          *MemRef
	Param      *MsgParam
	AOp        string // atomic op: add,sadd,sub,ssub,or,and,xor,min,max,swap,inc,dec,cas,read,write
	Cond       bool   // atomic conditional variant
	RetNew     bool   // atomic returns post-op value
	HashKind   string
	Field      string
	ActionKind ActionKind
	Elem       Type // alloca element type
	Count      int  // alloca element count
	NIdx       int  // number of leading index args (OpAtomicRMW)
	// TargetNS restricts an instruction to one backend ("tna"/"v1").
	TargetNS string
	// PhiVar marks allocas introduced by φ-elimination: all stores
	// precede any load on every path, so code generators may read the
	// variable in place instead of copying it.
	PhiVar  bool
	Targets []*Block
	In      []*Block // phi incoming blocks (parallel to Args)

	// Name is an optional human-readable hint (source variable name).
	Name string

	ID  int
	blk *Block
}

// Type implements Value.
func (i *Instr) Type() Type { return i.Ty }

// Ref implements Value.
func (i *Instr) Ref() string {
	if i.Name != "" {
		return fmt.Sprintf("%%%d.%s", i.ID, i.Name)
	}
	return fmt.Sprintf("%%%d", i.ID)
}

// Block returns the containing basic block.
func (i *Instr) Block() *Block { return i.blk }

// IsTerminator reports whether the instruction ends a block.
func (i *Instr) IsTerminator() bool {
	switch i.Op {
	case OpBr, OpJmp, OpRetAction:
		return true
	}
	return false
}

// HasSideEffects reports whether the instruction writes memory or
// affects control (and therefore must not be removed by DCE).
func (i *Instr) HasSideEffects() bool {
	switch i.Op {
	case OpStore, OpStoreMsg, OpBr, OpJmp, OpRetAction:
		return true
	case OpAtomicRMW:
		return i.AOp != "read"
	}
	return false
}

// Pure reports whether the instruction computes a value without
// reading or writing any memory (candidates for CSE and speculation).
func (i *Instr) Pure() bool {
	switch i.Op {
	case OpAdd, OpSub, OpMul, OpUDiv, OpSDiv, OpURem, OpSRem, OpAnd, OpOr,
		OpXor, OpShl, OpLShr, OpAShr, OpSAddSat, OpSSubSat, OpMin, OpMax,
		OpICmp, OpSelect, OpTrunc, OpZExt, OpSExt, OpHash, OpByteSwap,
		OpCLZ, OpCTZ, OpMsgField:
		return true
	}
	return false
}

// Block is a basic block.
type Block struct {
	Name   string
	Instrs []*Instr
	fn     *Func
	// Index is the position in Func.Blocks (maintained by Renumber).
	Index int
}

// Func returns the containing function.
func (b *Block) Func() *Func { return b.fn }

// Term returns the block terminator, or nil if the block is unfinished.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Preds computes predecessor blocks (by scanning; small CFGs).
func (b *Block) Preds() []*Block {
	var out []*Block
	for _, blk := range b.fn.Blocks {
		for _, s := range blk.Succs() {
			if s == b {
				out = append(out, blk)
				break
			}
		}
	}
	return out
}

// Append adds an instruction to the end of the block (before nothing;
// callers must keep terminators last).
func (b *Block) Append(i *Instr) *Instr {
	i.ID = b.fn.nextID
	b.fn.nextID++
	i.blk = b
	b.Instrs = append(b.Instrs, i)
	return i
}

// InsertBeforeTerm inserts an instruction before the block terminator
// (or at the end if there is none).
func (b *Block) InsertBeforeTerm(i *Instr) *Instr {
	i.ID = b.fn.nextID
	b.fn.nextID++
	i.blk = b
	if t := b.Term(); t != nil {
		b.Instrs = append(b.Instrs[:len(b.Instrs)-1], i, t)
	} else {
		b.Instrs = append(b.Instrs, i)
	}
	return i
}

// Adopt reassigns an instruction's containing block; callers must also
// move the instruction between the blocks' Instrs slices.
func (b *Block) Adopt(i *Instr) { i.blk = b }

// Remove deletes an instruction from the block.
func (b *Block) Remove(i *Instr) {
	for n, x := range b.Instrs {
		if x == i {
			b.Instrs = append(b.Instrs[:n], b.Instrs[n+1:]...)
			i.blk = nil
			return
		}
	}
}

// Func is a lowered kernel.
type Func struct {
	Name   string
	Comp   uint8
	Params []*MsgParam
	Blocks []*Block
	nextID int
}

// NewFunc creates an empty function.
func NewFunc(name string, comp uint8) *Func {
	return &Func{Name: name, Comp: comp, nextID: 1}
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new empty block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: fmt.Sprintf("%s%d", name, len(f.Blocks)), fn: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Renumber reassigns block indices after structural changes.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// RemoveBlock deletes a block from the function.
func (f *Func) RemoveBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			f.Renumber()
			return
		}
	}
}

// ReplaceAllUses substitutes new for old in every instruction argument
// of the function.
func (f *Func) ReplaceAllUses(old, new Value) {
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			for n, a := range i.Args {
				if a == old {
					i.Args[n] = new
				}
			}
		}
	}
}

// NumUses counts argument references to v.
func (f *Func) NumUses(v Value) int {
	n := 0
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			for _, a := range i.Args {
				if a == v {
					n++
				}
			}
		}
	}
	return n
}

// Instrs iterates all instructions in block order.
func (f *Func) Instrs(fn func(b *Block, i *Instr) bool) {
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if !fn(b, i) {
				return
			}
		}
	}
}

// Module is the unit of device compilation: all kernels and memory for
// one device location.
type Module struct {
	Name     string
	DeviceID uint16
	Mems     []*MemRef
	Funcs    []*Func
}

// MemByName finds a memory object.
func (m *Module) MemByName(name string) *MemRef {
	for _, g := range m.Mems {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// String prints the whole module (see print.go for details).
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (device %d)\n", m.Name, m.DeviceID)
	for _, g := range m.Mems {
		b.WriteString(printMem(g))
		b.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}
