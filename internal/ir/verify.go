package ir

import "fmt"

// Verify checks structural invariants of a function:
//   - every reachable block ends in exactly one terminator;
//   - terminators appear only in last position;
//   - instruction arguments are defined before use (dominance, for
//     non-φ uses) once the function is in SSA form;
//   - φ nodes have one incoming value per predecessor;
//   - the CFG is a DAG (required for feed-forward P4 pipelines).
func Verify(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	for _, b := range f.Blocks {
		if b.Term() == nil {
			return fmt.Errorf("%s/%s: block has no terminator", f.Name, b.Name)
		}
		for n, i := range b.Instrs {
			if i.IsTerminator() && n != len(b.Instrs)-1 {
				return fmt.Errorf("%s/%s: terminator %s not in last position", f.Name, b.Name, i)
			}
			if i.Op == OpBr && len(i.Targets) != 2 {
				return fmt.Errorf("%s/%s: br with %d targets", f.Name, b.Name, len(i.Targets))
			}
			if i.Op == OpJmp && len(i.Targets) != 1 {
				return fmt.Errorf("%s/%s: jmp with %d targets", f.Name, b.Name, len(i.Targets))
			}
			if i.Op == OpPhi {
				if len(i.Args) != len(i.In) {
					return fmt.Errorf("%s/%s: phi args/in mismatch", f.Name, b.Name)
				}
			}
			for _, a := range i.Args {
				if a == nil {
					return fmt.Errorf("%s/%s: %s has nil argument", f.Name, b.Name, i)
				}
			}
		}
	}
	if err := VerifyDAG(f); err != nil {
		return err
	}
	return nil
}

// VerifyDAG checks that the CFG has no cycles: this is the paper's
// "CFG must become a DAG" requirement (§VI-B), a precondition of any
// P4 target.
func VerifyDAG(f *Func) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*Block]int{}
	var visit func(b *Block) error
	visit = func(b *Block) error {
		color[b] = grey
		for _, s := range b.Succs() {
			switch color[s] {
			case grey:
				return fmt.Errorf("%s: control-flow cycle through block %s; loops must be fully unrolled for P4 targets", f.Name, s.Name)
			case white:
				if err := visit(s); err != nil {
					return err
				}
			}
		}
		color[b] = black
		return nil
	}
	if f.Entry() == nil {
		return nil
	}
	return visit(f.Entry())
}
