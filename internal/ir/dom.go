package ir

// Dominator analysis using the Cooper-Harvey-Kennedy iterative
// algorithm over reverse postorder, plus dominance frontiers (for
// mem2reg φ placement) and postdominators (for structured codegen).

// RPO returns the blocks of f in reverse postorder from the entry.
// Unreachable blocks are omitted.
func RPO(f *Func) []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if f.Entry() != nil {
		dfs(f.Entry())
	}
	out := make([]*Block, len(post))
	for i, b := range post {
		out[len(post)-1-i] = b
	}
	return out
}

// DomTree holds immediate dominators and related queries.
type DomTree struct {
	f     *Func
	idom  map[*Block]*Block
	order map[*Block]int // RPO index
	rpo   []*Block
	// children of each block in the dominator tree
	kids map[*Block][]*Block
}

// BuildDomTree computes the dominator tree of f.
func BuildDomTree(f *Func) *DomTree {
	rpo := RPO(f)
	order := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	idom := map[*Block]*Block{}
	entry := f.Entry()
	idom[entry] = entry
	preds := predMap(f)

	intersect := func(a, b *Block) *Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range preds[b] {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	t := &DomTree{f: f, idom: idom, order: order, rpo: rpo, kids: map[*Block][]*Block{}}
	for b, d := range idom {
		if b != d {
			t.kids[d] = append(t.kids[d], b)
		}
	}
	return t
}

func predMap(f *Func) map[*Block][]*Block {
	m := map[*Block][]*Block{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			m[s] = append(m[s], b)
		}
	}
	return m
}

// IDom returns the immediate dominator of b (entry returns itself).
func (t *DomTree) IDom(b *Block) *Block { return t.idom[b] }

// Dominates reports whether a dominates b (reflexive).
func (t *DomTree) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		d := t.idom[b]
		if d == nil || d == b {
			return false
		}
		b = d
	}
}

// Children returns the dominator-tree children of b.
func (t *DomTree) Children(b *Block) []*Block { return t.kids[b] }

// RPO returns the blocks in reverse postorder.
func (t *DomTree) RPO() []*Block { return t.rpo }

// NCA returns the nearest common ancestor of a and b in the dominator
// tree.
func (t *DomTree) NCA(a, b *Block) *Block {
	depth := func(x *Block) int {
		d := 0
		for t.idom[x] != x {
			x = t.idom[x]
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = t.idom[a]
		da--
	}
	for db > da {
		b = t.idom[b]
		db--
	}
	for a != b {
		a = t.idom[a]
		b = t.idom[b]
	}
	return a
}

// Frontiers computes the dominance frontier of every block.
func (t *DomTree) Frontiers() map[*Block][]*Block {
	df := map[*Block][]*Block{}
	preds := predMap(t.f)
	for _, b := range t.rpo {
		if len(preds[b]) < 2 {
			continue
		}
		for _, p := range preds[b] {
			runner := p
			for runner != t.idom[b] && runner != nil {
				if !containsBlock(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
				next := t.idom[runner]
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// PostDomTree computes immediate postdominators. Because kernels end
// with RetAction terminators there may be multiple exits, a virtual
// exit node (represented by nil) unifies them. NetCL CFGs are small, so
// a direct set-based fixpoint is used for clarity and robustness.
type PostDomTree struct {
	ipdom map[*Block]*Block // nil means the virtual exit
}

// BuildPostDomTree computes the postdominator tree of f, considering
// only blocks reachable from the entry.
func BuildPostDomTree(f *Func) *PostDomTree {
	blocks := RPO(f)
	n := len(blocks)
	idx := make(map[*Block]int, n)
	for i, b := range blocks {
		idx[b] = i
	}
	// pdom[i] is the set of blocks postdominating blocks[i], as a
	// bitset; the virtual exit is implicit (postdominates everything).
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	pdom := make([][]bool, n)
	for i, b := range blocks {
		if len(b.Succs()) == 0 {
			s := make([]bool, n)
			s[i] = true
			pdom[i] = s
		} else {
			s := make([]bool, n)
			copy(s, full)
			pdom[i] = s
		}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := blocks[i]
			succs := b.Succs()
			if len(succs) == 0 {
				continue
			}
			s := make([]bool, n)
			copy(s, full)
			for _, sb := range succs {
				j, ok := idx[sb]
				if !ok {
					continue
				}
				for k := 0; k < n; k++ {
					s[k] = s[k] && pdom[j][k]
				}
			}
			s[i] = true
			for k := 0; k < n; k++ {
				if s[k] != pdom[i][k] {
					pdom[i] = s
					changed = true
					break
				}
			}
		}
	}
	// ipdom(b): the x in pdom(b)\{b} with |pdom(x)| == |pdom(b)|-1.
	size := func(s []bool) int {
		c := 0
		for _, v := range s {
			if v {
				c++
			}
		}
		return c
	}
	t := &PostDomTree{ipdom: map[*Block]*Block{}}
	for i, b := range blocks {
		want := size(pdom[i]) - 1
		var found *Block
		for k := 0; k < n; k++ {
			if k != i && pdom[i][k] && size(pdom[k]) == want {
				found = blocks[k]
				break
			}
		}
		t.ipdom[b] = found // nil = virtual exit
	}
	return t
}

// IPDom returns the immediate postdominator of b, or nil when b's only
// postdominator is the virtual exit.
func (t *PostDomTree) IPDom(b *Block) *Block { return t.ipdom[b] }

// PostDominates reports whether a postdominates b (reflexive); a nil a
// denotes the virtual exit, which postdominates everything.
func (t *PostDomTree) PostDominates(a, b *Block) bool {
	if a == nil {
		return true
	}
	for b != nil {
		if a == b {
			return true
		}
		b = t.ipdom[b]
	}
	return false
}
