package ir

import (
	"strings"
	"testing"
)

func TestPrintModule(t *testing.T) {
	m := &Module{Name: "demo", DeviceID: 3}
	m.Mems = []*MemRef{
		{Name: "cnt", Elem: U32, Dims: []int{16}, Managed: true, Init: []int64{1, 2}},
		{Name: "tbl", Elem: U32, KeyType: U32, Dims: []int{4}, LKind: LookupExact},
		{Name: "rng", Elem: U16, KeyType: U16, Dims: []int{4}, LKind: LookupRange},
		{Name: "set", Elem: U8, KeyType: U8, Dims: []int{4}, LKind: LookupSet},
	}
	f := NewFunc("k", 1)
	p := &MsgParam{Name: "x", Ty: U32, Count: 1, Out: true}
	f.Params = []*MsgParam{p}
	b := f.NewBlock("entry")
	ld := b.Append(&Instr{Op: OpLoadMsg, Ty: U32, Param: p, Args: []Value{ConstOf(U32, 0)}})
	add := b.Append(&Instr{Op: OpAdd, Ty: U32, Args: []Value{ld, ConstOf(U32, 1)}, Name: "sum"})
	b.Append(&Instr{Op: OpAtomicRMW, Ty: U32, G: m.Mems[0], AOp: "add", Cond: true, RetNew: true,
		Args: []Value{ConstOf(U32, 2), ConstOf(I1, 1), add}, NIdx: 1})
	lk := b.Append(&Instr{Op: OpLookup, Ty: I1, G: m.Mems[1], Args: []Value{add}})
	b.Append(&Instr{Op: OpLookupVal, Ty: U32, G: m.Mems[1], Args: []Value{lk}})
	b.Append(&Instr{Op: OpHash, Ty: U16, HashKind: "crc16", Args: []Value{add}})
	b.Append(&Instr{Op: OpMsgField, Ty: U16, Field: "src"})
	b.Append(&Instr{Op: OpStoreMsg, Param: p, Args: []Value{ConstOf(U32, 0), add}})
	b.Append(&Instr{Op: OpRetAction, ActionKind: ActMulticast, Args: []Value{ConstOf(U16, 7)}})
	m.Funcs = []*Func{f}

	out := m.String()
	for _, want := range []string{
		"module demo (device 3)",
		"mem cnt u32[16] managed init=[1 2]",
		"lookup.kv tbl key:u32 val:u32",
		"lookup.rv rng key:u16 val:u16",
		"lookup.set set key:u8",
		"func k comp=1",
		"x u32 x1 inout",
		"atomic.add.cond.new @cnt",
		"lookup @tbl",
		"hash.crc16",
		"msgfield.src",
		"storemsg @x",
		"ret multicast",
		"%2.sum",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed module missing %q:\n%s", want, out)
		}
	}
	if m.MemByName("cnt") == nil || m.MemByName("zzz") != nil {
		t.Error("MemByName")
	}
	if m.Mems[0].NumElems() != 16 {
		t.Error("NumElems")
	}
}

func TestInsertBeforeTermAndRemove(t *testing.T) {
	f := NewFunc("k", 1)
	b := f.NewBlock("entry")
	term := b.Append(&Instr{Op: OpRetAction, ActionKind: ActPass})
	i := b.InsertBeforeTerm(&Instr{Op: OpAdd, Ty: U32, Args: []Value{ConstOf(U32, 1), ConstOf(U32, 2)}})
	if b.Instrs[0] != i || b.Term() != term {
		t.Fatal("InsertBeforeTerm placement")
	}
	b.Remove(i)
	if len(b.Instrs) != 1 {
		t.Fatal("Remove")
	}
	// Insert into a block with no terminator appends.
	b2 := f.NewBlock("b2")
	j := b2.InsertBeforeTerm(&Instr{Op: OpAdd, Ty: U32, Args: []Value{ConstOf(U32, 1), ConstOf(U32, 2)}})
	if b2.Instrs[0] != j {
		t.Fatal("InsertBeforeTerm without terminator")
	}
}

func TestRemoveBlockAndRenumber(t *testing.T) {
	f := NewFunc("k", 1)
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	c := f.NewBlock("c")
	a.Append(&Instr{Op: OpJmp, Targets: []*Block{c}})
	c.Append(&Instr{Op: OpRetAction, ActionKind: ActPass})
	b.Append(&Instr{Op: OpRetAction, ActionKind: ActDrop})
	f.RemoveBlock(b)
	if len(f.Blocks) != 2 || f.Blocks[1] != c || c.Index != 1 {
		t.Error("RemoveBlock/Renumber")
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsBadShapes(t *testing.T) {
	// Terminator not last.
	f := NewFunc("k", 1)
	b := f.NewBlock("entry")
	b.Append(&Instr{Op: OpRetAction, ActionKind: ActPass})
	b.Instrs = append(b.Instrs, &Instr{Op: OpAdd, Ty: U32, Args: []Value{ConstOf(U32, 1), ConstOf(U32, 1)}})
	if err := Verify(f); err == nil {
		t.Error("terminator-not-last accepted")
	}
	// Nil argument.
	f2 := NewFunc("k", 1)
	b2 := f2.NewBlock("entry")
	b2.Append(&Instr{Op: OpAdd, Ty: U32, Args: []Value{nil, ConstOf(U32, 1)}})
	b2.Append(&Instr{Op: OpRetAction, ActionKind: ActPass})
	if err := Verify(f2); err == nil {
		t.Error("nil argument accepted")
	}
	// Br with one target.
	f3 := NewFunc("k", 1)
	b3 := f3.NewBlock("entry")
	b3.Append(&Instr{Op: OpBr, Args: []Value{ConstOf(I1, 1)}, Targets: []*Block{b3}})
	if err := Verify(f3); err == nil {
		t.Error("malformed br accepted")
	}
	// Empty function.
	if err := Verify(NewFunc("empty", 1)); err == nil {
		t.Error("empty function accepted")
	}
}

func TestConstHelpers(t *testing.T) {
	c := ConstOf(U8, 300)
	if c.Val != 44 || c.Uint() != 44 {
		t.Errorf("wrapping constant: %d", c.Val)
	}
	s := ConstOf(S8, 200)
	if s.Val != -56 || s.Uint() != 200 {
		t.Errorf("signed constant: %d / %d", s.Val, s.Uint())
	}
	if !strings.Contains(c.Ref(), "44") {
		t.Error("const ref")
	}
	if U16.MaxUnsigned() != 0xFFFF {
		t.Error("MaxUnsigned")
	}
}

func TestInstrPredicates(t *testing.T) {
	st := &Instr{Op: OpStore}
	if !st.HasSideEffects() || st.Pure() {
		t.Error("store predicates")
	}
	rd := &Instr{Op: OpAtomicRMW, AOp: "read"}
	if rd.HasSideEffects() {
		t.Error("atomic read has no side effects")
	}
	wr := &Instr{Op: OpAtomicRMW, AOp: "add"}
	if !wr.HasSideEffects() {
		t.Error("atomic rmw writes memory")
	}
	if !(&Instr{Op: OpHash}).Pure() || (&Instr{Op: OpLoadMsg}).Pure() {
		t.Error("purity")
	}
	if !(&Instr{Op: OpJmp}).IsTerminator() || (&Instr{Op: OpAdd}).IsTerminator() {
		t.Error("terminators")
	}
}
