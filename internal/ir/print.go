package ir

import (
	"fmt"
	"strings"
)

// printMem renders a memory declaration.
func printMem(g *MemRef) string {
	var b strings.Builder
	switch g.LKind {
	case LookupSet:
		fmt.Fprintf(&b, "lookup.set %s key:%s", g.Name, g.KeyType)
	case LookupExact:
		fmt.Fprintf(&b, "lookup.kv %s key:%s val:%s", g.Name, g.KeyType, g.Elem)
	case LookupRange:
		fmt.Fprintf(&b, "lookup.rv %s key:%s val:%s", g.Name, g.KeyType, g.Elem)
	default:
		fmt.Fprintf(&b, "mem %s %s", g.Name, g.Elem)
	}
	for _, d := range g.Dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	if g.Managed {
		b.WriteString(" managed")
	}
	if len(g.Init) > 0 {
		fmt.Fprintf(&b, " init=%v", g.Init)
	}
	return b.String()
}

// String renders the function body in a textual IR form.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s comp=%d (", f.Name, f.Comp)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		dir := "in"
		if p.Out {
			dir = "inout"
		}
		fmt.Fprintf(&b, "%s %s x%d %s", p.Name, p.Ty, p.Count, dir)
	}
	b.WriteString(") {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, i := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", i.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one instruction.
func (i *Instr) String() string {
	var b strings.Builder
	producesValue := true
	switch i.Op {
	case OpStore, OpStoreMsg, OpBr, OpJmp, OpRetAction:
		producesValue = false
	case OpAtomicRMW:
		if i.AOp == "write" {
			producesValue = false
		}
	}
	if producesValue {
		fmt.Fprintf(&b, "%s = ", i.Ref())
	}
	switch i.Op {
	case OpICmp:
		fmt.Fprintf(&b, "icmp %s", i.Pred)
	case OpAtomicRMW:
		fmt.Fprintf(&b, "atomic.%s", i.AOp)
		if i.Cond {
			b.WriteString(".cond")
		}
		if i.RetNew {
			b.WriteString(".new")
		}
		fmt.Fprintf(&b, " @%s", i.G.Name)
	case OpLookup:
		fmt.Fprintf(&b, "lookup @%s", i.G.Name)
	case OpHash:
		fmt.Fprintf(&b, "hash.%s", i.HashKind)
	case OpMsgField:
		fmt.Fprintf(&b, "msgfield.%s", i.Field)
	case OpLoadMsg, OpStoreMsg:
		fmt.Fprintf(&b, "%s @%s", i.Op, i.Param.Name)
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s x%d", i.Elem, i.Count)
	case OpRetAction:
		fmt.Fprintf(&b, "ret %s", i.ActionKind)
	case OpBr:
		b.WriteString("br")
	case OpJmp:
		b.WriteString("jmp")
	case OpPhi:
		b.WriteString("phi")
	default:
		b.WriteString(i.Op.String())
	}
	if i.Op == OpPhi {
		for n, a := range i.Args {
			blkName := "?"
			if n < len(i.In) {
				blkName = i.In[n].Name
			}
			fmt.Fprintf(&b, " [%s, %s]", a.Ref(), blkName)
		}
	} else {
		for _, a := range i.Args {
			if a == nil {
				b.WriteString(" <nil>")
				continue
			}
			fmt.Fprintf(&b, " %s", a.Ref())
		}
	}
	for _, t := range i.Targets {
		fmt.Fprintf(&b, " ->%s", t.Name)
	}
	if producesValue {
		fmt.Fprintf(&b, " : %s", i.Ty)
	}
	return b.String()
}
