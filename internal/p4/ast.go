// Package p4 models the P4-16 subset that NetCL generates and that the
// handwritten baseline applications use: headers, parsers, match-action
// tables, registers and register actions (TNA), hash externs, and
// imperative control bodies. One AST serves three consumers: the
// pretty-printer (P4 source output), the P4-16 subset parser (baseline
// input), and the bmv2-style interpreter (execution).
package p4

import "fmt"

// Target identifies the P4 architecture flavor of a program.
type Target string

// Architectures (paper §VI: TNA and v1model were chosen as opposite
// extremes).
const (
	TargetTNA     Target = "tna"
	TargetV1Model Target = "v1model"
)

// Program is a P4 program.
type Program struct {
	Name    string
	Target  Target
	Headers []*HeaderDecl
	// Metadata fields (bridged/user metadata, flattened).
	Metadata []*Field
	Parser   *Parser
	// Ingress is the main control; NetCL embeds generated code there.
	Ingress *Control
	// Egress is optional (TNA offers an egress stage).
	Egress *Control
}

// HeaderDecl declares a packet header type/instance (one combined
// notion: every header type is instantiated exactly once, by name).
type HeaderDecl struct {
	Name   string
	Fields []*Field
}

// Bits returns the total header width.
func (h *HeaderDecl) Bits() int {
	n := 0
	for _, f := range h.Fields {
		n += f.Bits
	}
	return n
}

// FieldByName returns the field, or nil.
func (h *HeaderDecl) FieldByName(name string) *Field {
	for _, f := range h.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Field is a header or metadata field.
type Field struct {
	Name string
	Bits int
}

// Parser is the parse graph.
type Parser struct {
	Name   string
	States []*ParserState
}

// StateByName returns the named state, or nil.
func (p *Parser) StateByName(name string) *ParserState {
	for _, s := range p.States {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ParserState extracts headers and transitions.
type ParserState struct {
	Name     string
	Extracts []string // header names, in order
	// Select is nil for unconditional transitions.
	Select *Select
	// Next is the unconditional next state ("accept"/"reject" allowed).
	Next string
}

// Select is a transition select over a field.
type Select struct {
	Key   Expr
	Cases []SelectCase
	// Default is the fallthrough state ("accept", "reject", ...).
	Default string
}

// SelectCase maps one value (with optional mask) to a state.
type SelectCase struct {
	Value uint64
	Mask  uint64 // 0 = exact
	State string
}

// Control is a P4 control block.
type Control struct {
	Name      string
	Locals    []*Field // control-scope variables (bit<N> x;)
	Registers []*Register
	RegActs   []*RegisterAction
	Hashes    []*HashDecl
	Actions   []*ActionDecl
	Tables    []*Table
	Apply     []Stmt
}

// ActionByName returns the named action, or nil.
func (c *Control) ActionByName(name string) *ActionDecl {
	for _, a := range c.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// TableByName returns the named table, or nil.
func (c *Control) TableByName(name string) *Table {
	for _, t := range c.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// RegisterByName returns the named register, or nil.
func (c *Control) RegisterByName(name string) *Register {
	for _, r := range c.Registers {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// RegActByName returns the named register action, or nil.
func (c *Control) RegActByName(name string) *RegisterAction {
	for _, r := range c.RegActs {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Register is stateful memory (TNA Register extern / v1model register).
type Register struct {
	Name string
	Bits int
	Size int
	Init []int64
}

// RegisterAction is a TNA SALU microprogram: a small body over the
// memory cell ("m") producing an optional output ("o"). On v1model the
// same semantics are emitted as read/modify/write sequences.
type RegisterAction struct {
	Name     string
	Register string
	// Params are run-time inputs referenced by the body (PHV operands).
	Params []*Field
	Body   []Stmt
}

// HashDecl declares a hash extern instance.
type HashDecl struct {
	Name string
	Algo string // crc16, crc32, xor16, identity, crc64, csum16
	Bits int
}

// ActionDecl is a P4 action.
type ActionDecl struct {
	Name   string
	Params []*Field
	Body   []Stmt
}

// MatchKind is a table key match type.
type MatchKind string

// Match kinds.
const (
	MatchExact   MatchKind = "exact"
	MatchTernary MatchKind = "ternary"
	MatchLPM     MatchKind = "lpm"
	MatchRange   MatchKind = "range"
)

// TableKey is one table key element.
type TableKey struct {
	Expr  Expr
	Match MatchKind
}

// Table is a match-action table.
type Table struct {
	Name    string
	Keys    []*TableKey
	Actions []string
	Default *ActionCall
	Entries []*Entry
	Size    int
	// Const marks compile-time entries (non-managed lookup memory).
	Const bool
}

// Entry is a static or runtime-installed table entry.
type Entry struct {
	Keys   []KeyValue
	Action *ActionCall
	// Priority orders ternary/range entries (lower wins).
	Priority int
}

// KeyValue is a matched value for one key element.
type KeyValue struct {
	Value uint64
	Mask  uint64 // ternary mask (0 = exact)
	Hi    uint64 // range upper bound (range match: Value..Hi)
	// PrefixLen for lpm (bits); -1 = not lpm.
	PrefixLen int
}

// ActionCall invokes an action with constant arguments.
type ActionCall struct {
	Name string
	Args []uint64
}

// Expressions ----------------------------------------------------------

// Expr is a P4 expression.
type Expr interface{ exprNode() }

// FieldRef references a header/metadata field, local, or action param
// by dotted path (e.g. ["hdr","netcl","comp"] or ["tmp1"]).
type FieldRef struct {
	Parts []string
}

// String joins the path.
func (f *FieldRef) String() string {
	s := ""
	for i, p := range f.Parts {
		if i > 0 {
			s += "."
		}
		s += p
	}
	return s
}

// FR builds a FieldRef.
func FR(parts ...string) *FieldRef { return &FieldRef{Parts: parts} }

// IntLit is a numeric literal; Bits 0 means unsized.
type IntLit struct {
	Val  uint64
	Bits int
}

// Bin is a binary operation. Op is the P4 operator token, including
// the saturating |+| and |-|.
type Bin struct {
	Op   string
	X, Y Expr
}

// Un is a unary operation: ~ ! -.
type Un struct {
	Op string
	X  Expr
}

// Cast converts to bit<Bits>; Signed casts sign-extend (printed as an
// int<N> round-trip).
type Cast struct {
	Bits   int
	Signed bool
	X      Expr
}

// CallExpr is an extern method call used as a value: hash.get({...}),
// ra.execute(idx), reg.read(idx), tbl.apply().hit.
type CallExpr struct {
	Recv   string // extern instance or table name
	Method string // get, execute, read, apply_hit
	Args   []Expr
}

// TernaryExpr is cond ? a : b — used only inside RegisterAction bodies
// where Tofino SALU predication supports it.
type TernaryExpr struct {
	Cond, A, B Expr
}

func (*FieldRef) exprNode()    {}
func (*IntLit) exprNode()      {}
func (*Bin) exprNode()         {}
func (*Un) exprNode()          {}
func (*Cast) exprNode()        {}
func (*CallExpr) exprNode()    {}
func (*TernaryExpr) exprNode() {}

// Statements -----------------------------------------------------------

// Stmt is a P4 statement.
type Stmt interface{ stmtNode() }

// Assign is lhs = rhs.
type Assign struct {
	LHS *FieldRef
	RHS Expr
}

// If is a conditional.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ApplyTable applies a table; when HitVar is non-empty the hit result
// is stored into that local (bool encoded as bit<1>).
type ApplyTable struct {
	Table  string
	HitVar string
}

// CallStmt is an expression statement: action invocation, reg.write,
// extern call with side effects.
type CallStmt struct {
	Recv   string // empty for plain action calls
	Method string // action name when Recv is empty
	Args   []Expr
}

// SetValid marks a header valid/invalid.
type SetValid struct {
	Header string
	Valid  bool
}

// Exit aborts the control.
type Exit struct{}

// Comment carries a comment line through printing (ignored in
// execution); used to annotate generated code.
type Comment struct {
	Text string
}

func (*Assign) stmtNode()     {}
func (*If) stmtNode()         {}
func (*ApplyTable) stmtNode() {}
func (*CallStmt) stmtNode()   {}
func (*SetValid) stmtNode()   {}
func (*Exit) stmtNode()       {}
func (*Comment) stmtNode()    {}

// Walk visits every statement in a body, parents before children.
func Walk(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		if ifs, ok := s.(*If); ok {
			Walk(ifs.Then, fn)
			Walk(ifs.Else, fn)
		}
	}
}

// WalkExprs visits every expression in a statement body.
func WalkExprs(body []Stmt, fn func(Expr)) {
	var visitExpr func(e Expr)
	visitExpr = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch x := e.(type) {
		case *Bin:
			visitExpr(x.X)
			visitExpr(x.Y)
		case *Un:
			visitExpr(x.X)
		case *Cast:
			visitExpr(x.X)
		case *CallExpr:
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *TernaryExpr:
			visitExpr(x.Cond)
			visitExpr(x.A)
			visitExpr(x.B)
		}
	}
	Walk(body, func(s Stmt) {
		switch st := s.(type) {
		case *Assign:
			visitExpr(st.LHS)
			visitExpr(st.RHS)
		case *If:
			visitExpr(st.Cond)
		case *CallStmt:
			for _, a := range st.Args {
				visitExpr(a)
			}
		}
	})
}

// ExprRefs visits every FieldRef inside one expression (the expression
// analog of WalkExprs); used by interpreter compilation to compute the
// free names of table keys and action bodies.
func ExprRefs(e Expr, fn func(*FieldRef)) {
	switch x := e.(type) {
	case nil:
		return
	case *FieldRef:
		fn(x)
	case *Bin:
		ExprRefs(x.X, fn)
		ExprRefs(x.Y, fn)
	case *Un:
		ExprRefs(x.X, fn)
	case *Cast:
		ExprRefs(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			ExprRefs(a, fn)
		}
	case *TernaryExpr:
		ExprRefs(x.Cond, fn)
		ExprRefs(x.A, fn)
		ExprRefs(x.B, fn)
	}
}

// AllExact reports whether every key of the table is an exact match —
// such tables are eligible for hash-index dispatch.
func (t *Table) AllExact() bool {
	for _, k := range t.Keys {
		if k.Match != MatchExact {
			return false
		}
	}
	return true
}

// SingleLPM reports whether the table has exactly one key, matched by
// longest prefix — eligible for sorted-prefix dispatch.
func (t *Table) SingleLPM() bool {
	return len(t.Keys) == 1 && t.Keys[0].Match == MatchLPM
}

// Controls returns the program's control blocks in pipeline order
// (ingress, then egress when present).
func (p *Program) Controls() []*Control {
	if p.Egress == nil {
		return []*Control{p.Ingress}
	}
	return []*Control{p.Ingress, p.Egress}
}

// HeaderByName finds a header declaration in the program.
func (p *Program) HeaderByName(name string) *HeaderDecl {
	for _, h := range p.Headers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Validate performs basic structural checks useful to codegen tests.
func (p *Program) Validate() error {
	if p.Ingress == nil {
		return fmt.Errorf("%s: missing ingress control", p.Name)
	}
	if p.Parser == nil {
		return fmt.Errorf("%s: missing parser", p.Name)
	}
	if p.Parser.StateByName("start") == nil {
		return fmt.Errorf("%s: parser has no start state", p.Name)
	}
	controls := []*Control{p.Ingress}
	if p.Egress != nil {
		controls = append(controls, p.Egress)
	}
	for _, c := range controls {
		for _, t := range c.Tables {
			for _, an := range t.Actions {
				if an != "NoAction" && c.ActionByName(an) == nil {
					return fmt.Errorf("%s: table %s references unknown action %s", p.Name, t.Name, an)
				}
			}
		}
		for _, ra := range c.RegActs {
			if c.RegisterByName(ra.Register) == nil {
				return fmt.Errorf("%s: register action %s references unknown register %s", p.Name, ra.Name, ra.Register)
			}
		}
	}
	return nil
}
