package p4

import (
	"fmt"
	"strings"
)

// LineCat classifies a printed P4 line by construct, following the
// categories of the paper's Figure 12 code-breakdown.
type LineCat string

// Line categories.
const (
	CatHeader    LineCat = "header"    // header definitions
	CatParser    LineCat = "parser"    // parser states and deparsers
	CatMAT       LineCat = "mat"       // tables and their actions
	CatRegAction LineCat = "regaction" // registers, register actions, hashes
	CatControl   LineCat = "control"   // apply blocks and control locals
	CatOther     LineCat = "other"     // includes, structs, pipeline decls
	CatBlank     LineCat = "blank"
)

// printer accumulates categorized lines.
type printer struct {
	lines []string
	cats  []LineCat
	ind   int
}

func (pr *printer) w(cat LineCat, format string, args ...interface{}) {
	pr.lines = append(pr.lines, strings.Repeat("    ", pr.ind)+fmt.Sprintf(format, args...))
	pr.cats = append(pr.cats, cat)
}

func (pr *printer) blank() {
	pr.lines = append(pr.lines, "")
	pr.cats = append(pr.cats, CatBlank)
}

// Print renders the program as P4-16 source for its target.
func Print(p *Program) string {
	text, _ := PrintClassified(p)
	return text
}

// PrintClassified renders the program and reports each line's
// construct category (for the Figure 12 breakdown).
func PrintClassified(p *Program) (string, []LineCat) {
	pr := &printer{}
	pr.w(CatOther, "// Generated or handwritten P4-16 program %q for %s.", p.Name, p.Target)
	pr.w(CatOther, "#include <core.p4>")
	if p.Target == TargetTNA {
		pr.w(CatOther, "#include <tna.p4>")
	} else {
		pr.w(CatOther, "#include <v1model.p4>")
	}
	pr.blank()

	for _, h := range p.Headers {
		pr.w(CatHeader, "header %s_t {", h.Name)
		pr.ind++
		for _, f := range h.Fields {
			pr.w(CatHeader, "bit<%d> %s;", f.Bits, f.Name)
		}
		pr.ind--
		pr.w(CatHeader, "}")
	}
	pr.blank()

	pr.w(CatOther, "struct headers_t {")
	pr.ind++
	for _, h := range p.Headers {
		pr.w(CatOther, "%s_t %s;", h.Name, h.Name)
	}
	pr.ind--
	pr.w(CatOther, "}")
	pr.w(CatOther, "struct metadata_t {")
	pr.ind++
	for _, f := range p.Metadata {
		pr.w(CatOther, "bit<%d> %s;", f.Bits, f.Name)
	}
	pr.ind--
	pr.w(CatOther, "}")
	pr.blank()

	printParser(pr, p)
	pr.blank()
	printControl(pr, p, p.Ingress)
	if p.Egress != nil {
		pr.blank()
		printControl(pr, p, p.Egress)
	}
	pr.blank()
	printDeparser(pr, p)
	pr.blank()
	if p.Target == TargetTNA {
		pr.w(CatOther, "Pipeline(IgParser(), %s(), IgDeparser(), EgParser(), %s(), EgDeparser()) pipe;",
			p.Ingress.Name, egressName(p))
		pr.w(CatOther, "Switch(pipe) main;")
	} else {
		pr.w(CatOther, "V1Switch(IgParser(), verifyChecksum(), %s(), %s(), computeChecksum(), IgDeparser()) main;",
			p.Ingress.Name, egressName(p))
	}
	return strings.Join(pr.lines, "\n") + "\n", pr.cats
}

func egressName(p *Program) string {
	if p.Egress != nil {
		return p.Egress.Name
	}
	return "EmptyEgress"
}

func printParser(pr *printer, p *Program) {
	if p.Target == TargetTNA {
		pr.w(CatParser, "parser IgParser(packet_in pkt, out headers_t hdr, out metadata_t meta,")
		pr.w(CatParser, "                out ingress_intrinsic_metadata_t ig_intr_md) {")
	} else {
		pr.w(CatParser, "parser IgParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,")
		pr.w(CatParser, "                inout standard_metadata_t standard_metadata) {")
	}
	pr.ind++
	for _, s := range p.Parser.States {
		pr.w(CatParser, "state %s {", s.Name)
		pr.ind++
		for _, ext := range s.Extracts {
			pr.w(CatParser, "pkt.extract(hdr.%s);", ext)
		}
		if s.Select != nil {
			pr.w(CatParser, "transition select(%s) {", exprString(s.Select.Key))
			pr.ind++
			for _, c := range s.Select.Cases {
				if c.Mask != 0 {
					pr.w(CatParser, "0x%x &&& 0x%x : %s;", c.Value, c.Mask, c.State)
				} else {
					pr.w(CatParser, "%d : %s;", c.Value, c.State)
				}
			}
			pr.w(CatParser, "default : %s;", s.Select.Default)
			pr.ind--
			pr.w(CatParser, "}")
		} else {
			next := s.Next
			if next == "" {
				next = "accept"
			}
			pr.w(CatParser, "transition %s;", next)
		}
		pr.ind--
		pr.w(CatParser, "}")
	}
	pr.ind--
	pr.w(CatParser, "}")
}

func printDeparser(pr *printer, p *Program) {
	pr.w(CatParser, "control IgDeparser(packet_out pkt, inout headers_t hdr) {")
	pr.ind++
	pr.w(CatParser, "apply {")
	pr.ind++
	for _, h := range p.Headers {
		pr.w(CatParser, "pkt.emit(hdr.%s);", h.Name)
	}
	pr.ind--
	pr.w(CatParser, "}")
	pr.ind--
	pr.w(CatParser, "}")
}

func printControl(pr *printer, p *Program, c *Control) {
	if p.Target == TargetTNA {
		pr.w(CatControl, "control %s(inout headers_t hdr, inout metadata_t meta,", c.Name)
		pr.w(CatControl, "        in ingress_intrinsic_metadata_t ig_intr_md,")
		pr.w(CatControl, "        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {")
	} else {
		pr.w(CatControl, "control %s(inout headers_t hdr, inout metadata_t meta,", c.Name)
		pr.w(CatControl, "        inout standard_metadata_t standard_metadata) {")
	}
	pr.ind++
	for _, l := range c.Locals {
		pr.w(CatControl, "bit<%d> %s;", l.Bits, l.Name)
	}
	for _, h := range c.Hashes {
		if h.Algo == "random" {
			pr.w(CatRegAction, "Random<bit<%d>>() %s;", h.Bits, h.Name)
		} else if p.Target == TargetTNA {
			pr.w(CatRegAction, "Hash<bit<%d>>(HashAlgorithm_t.%s) %s;", h.Bits, strings.ToUpper(h.Algo), h.Name)
		} else {
			pr.w(CatRegAction, "Hash<bit<%d>>(HashAlgorithm.%s) %s;", h.Bits, h.Algo, h.Name)
		}
	}
	for _, r := range c.Registers {
		if p.Target == TargetTNA {
			pr.w(CatRegAction, "Register<bit<%d>, bit<32>>(%d) %s;", r.Bits, r.Size, r.Name)
		} else {
			pr.w(CatRegAction, "register<bit<%d>>(%d) %s;", r.Bits, r.Size, r.Name)
		}
	}
	for _, ra := range c.RegActs {
		printRegAct(pr, p, c, ra)
	}
	for _, a := range c.Actions {
		var params []string
		for _, f := range a.Params {
			params = append(params, fmt.Sprintf("bit<%d> %s", f.Bits, f.Name))
		}
		pr.w(CatMAT, "action %s(%s) {", a.Name, strings.Join(params, ", "))
		pr.ind++
		printStmts(pr, CatMAT, a.Body)
		pr.ind--
		pr.w(CatMAT, "}")
	}
	for _, t := range c.Tables {
		printTable(pr, t)
	}
	pr.w(CatControl, "apply {")
	pr.ind++
	printStmts(pr, CatControl, c.Apply)
	pr.ind--
	pr.w(CatControl, "}")
	pr.ind--
	pr.w(CatControl, "}")
}

func printRegAct(pr *printer, p *Program, c *Control, ra *RegisterAction) {
	reg := c.RegisterByName(ra.Register)
	bits := 32
	if reg != nil {
		bits = reg.Bits
	}
	if p.Target == TargetTNA {
		pr.w(CatRegAction, "RegisterAction<bit<%d>, bit<32>, bit<%d>>(%s) %s = {", bits, bits, ra.Register, ra.Name)
		pr.ind++
		pr.w(CatRegAction, "void apply(inout bit<%d> m, out bit<%d> o) {", bits, bits)
		pr.ind++
		printStmts(pr, CatRegAction, ra.Body)
		pr.ind--
		pr.w(CatRegAction, "}")
		pr.ind--
		pr.w(CatRegAction, "};")
	} else {
		pr.w(CatRegAction, "// register action %s over %s (expanded to read/modify/write)", ra.Name, ra.Register)
	}
}

func printTable(pr *printer, t *Table) {
	pr.w(CatMAT, "table %s {", t.Name)
	pr.ind++
	if len(t.Keys) > 0 {
		pr.w(CatMAT, "key = {")
		pr.ind++
		for _, k := range t.Keys {
			pr.w(CatMAT, "%s : %s;", exprString(k.Expr), k.Match)
		}
		pr.ind--
		pr.w(CatMAT, "}")
	}
	pr.w(CatMAT, "actions = { %s; }", strings.Join(t.Actions, "; "))
	if len(t.Entries) > 0 {
		kw := "entries"
		if t.Const {
			kw = "const entries"
		}
		pr.w(CatMAT, "%s = {", kw)
		pr.ind++
		for _, e := range t.Entries {
			pr.w(CatMAT, "%s : %s;", entryKeyString(e), actionCallString(e.Action))
		}
		pr.ind--
		pr.w(CatMAT, "}")
	}
	if t.Default != nil {
		pr.w(CatMAT, "default_action = %s;", actionCallString(t.Default))
	}
	if t.Size > 0 {
		pr.w(CatMAT, "size = %d;", t.Size)
	}
	pr.ind--
	pr.w(CatMAT, "}")
}

func entryKeyString(e *Entry) string {
	var parts []string
	for _, kv := range e.Keys {
		switch {
		case kv.Mask != 0:
			parts = append(parts, fmt.Sprintf("0x%x &&& 0x%x", kv.Value, kv.Mask))
		case kv.Hi != 0 && kv.Hi != kv.Value:
			parts = append(parts, fmt.Sprintf("%d..%d", kv.Value, kv.Hi))
		case kv.PrefixLen > 0:
			parts = append(parts, fmt.Sprintf("0x%x/%d", kv.Value, kv.PrefixLen))
		default:
			parts = append(parts, fmt.Sprintf("%d", kv.Value))
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func actionCallString(a *ActionCall) string {
	var args []string
	for _, v := range a.Args {
		args = append(args, fmt.Sprintf("%d", v))
	}
	return fmt.Sprintf("%s(%s)", a.Name, strings.Join(args, ", "))
}

func printStmts(pr *printer, cat LineCat, body []Stmt) {
	for _, s := range body {
		switch st := s.(type) {
		case *Assign:
			pr.w(cat, "%s = %s;", st.LHS.String(), exprString(st.RHS))
		case *If:
			pr.w(cat, "if (%s) {", exprString(st.Cond))
			pr.ind++
			printStmts(pr, cat, st.Then)
			pr.ind--
			if len(st.Else) > 0 {
				pr.w(cat, "} else {")
				pr.ind++
				printStmts(pr, cat, st.Else)
				pr.ind--
			}
			pr.w(cat, "}")
		case *ApplyTable:
			if st.HitVar != "" {
				pr.w(cat, "%s = (bit<1>)(%s.apply().hit ? 1w1 : 1w0);", st.HitVar, st.Table)
			} else {
				pr.w(cat, "%s.apply();", st.Table)
			}
		case *CallStmt:
			var args []string
			for _, a := range st.Args {
				args = append(args, exprString(a))
			}
			if st.Recv != "" {
				pr.w(cat, "%s.%s(%s);", st.Recv, st.Method, strings.Join(args, ", "))
			} else {
				pr.w(cat, "%s(%s);", st.Method, strings.Join(args, ", "))
			}
		case *SetValid:
			m := "setInvalid"
			if st.Valid {
				m = "setValid"
			}
			pr.w(cat, "hdr.%s.%s();", st.Header, m)
		case *Exit:
			pr.w(cat, "exit;")
		case *Comment:
			pr.w(cat, "// %s", st.Text)
		}
	}
}

func exprString(e Expr) string {
	switch x := e.(type) {
	case *FieldRef:
		return x.String()
	case *IntLit:
		if x.Bits > 0 {
			return fmt.Sprintf("%dw%d", x.Bits, x.Val)
		}
		return fmt.Sprintf("%d", x.Val)
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", exprString(x.X), x.Op, exprString(x.Y))
	case *Un:
		return fmt.Sprintf("(%s%s)", x.Op, exprString(x.X))
	case *Cast:
		if x.Signed {
			return fmt.Sprintf("(bit<%d>)(int<%d>)%s", x.Bits, x.Bits, exprString(x.X))
		}
		return fmt.Sprintf("(bit<%d>)%s", x.Bits, exprString(x.X))
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, exprString(a))
		}
		if x.Method == "apply_hit" {
			return fmt.Sprintf("%s.apply().hit", x.Recv)
		}
		return fmt.Sprintf("%s.%s(%s)", x.Recv, x.Method, strings.Join(args, ", "))
	case *TernaryExpr:
		return fmt.Sprintf("(%s ? %s : %s)", exprString(x.Cond), exprString(x.A), exprString(x.B))
	}
	return "/*?*/"
}
