package p4

import (
	"fmt"
	"strings"
)

// block parses "{ stmt* }".
func (p *pparser) block() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
	return out, nil
}

func (p *pparser) stmt() (Stmt, error) {
	switch {
	case p.isIdent("if"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		var then, els []Stmt
		if p.isPunct("{") {
			then, err = p.block()
		} else {
			var s Stmt
			s, err = p.stmt()
			then = []Stmt{s}
		}
		if err != nil {
			return nil, err
		}
		if p.accept("else") {
			if p.isPunct("{") {
				els, err = p.block()
			} else {
				var s Stmt
				s, err = p.stmt()
				els = []Stmt{s}
			}
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil

	case p.isIdent("exit"):
		p.next()
		p.accept(";")
		return &Exit{}, nil

	case p.isPunct(";"):
		p.next()
		return nil, nil
	}

	// Path-based statement: assignment, call, or table apply.
	path, err := p.fieldPath()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.accept(";")
		return assignOrApply(path, rhs), nil
	}
	if p.isPunct("(") {
		// Method or action call.
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var args []Expr
		for !p.accept(")") {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			p.accept(",")
		}
		p.accept(";")
		return callFromPath(path, args)
	}
	return nil, fmt.Errorf("line %d: unexpected statement near %q", p.tok().line, path.String())
}

// assignOrApply reconstructs the ApplyTable-with-hit form printed as
// "x = tbl.apply().hit ? 1w1 : 1w0;".
func assignOrApply(lhs *FieldRef, rhs Expr) Stmt {
	if t, ok := rhs.(*TernaryExpr); ok {
		if call, ok2 := t.Cond.(*CallExpr); ok2 && call.Method == "apply_hit" {
			a, aok := t.A.(*IntLit)
			b, bok := t.B.(*IntLit)
			if aok && bok && a.Val == 1 && b.Val == 0 && len(lhs.Parts) == 1 {
				return &ApplyTable{Table: call.Recv, HitVar: lhs.Parts[0]}
			}
		}
	}
	// Strip a cast around the same pattern.
	if c, ok := rhs.(*Cast); ok {
		if s := assignOrApply(lhs, c.X); s != nil {
			if at, ok2 := s.(*ApplyTable); ok2 {
				return at
			}
		}
	}
	return &Assign{LHS: lhs, RHS: rhs}
}

// callFromPath classifies a parsed "a.b.c(args)" statement.
func callFromPath(path *FieldRef, args []Expr) (Stmt, error) {
	parts := path.Parts
	last := parts[len(parts)-1]
	recv := strings.Join(parts[:len(parts)-1], ".")
	switch last {
	case "apply":
		return &ApplyTable{Table: recv}, nil
	case "setValid", "setInvalid":
		hdrName := recv
		hdrName = strings.TrimPrefix(hdrName, "hdr.")
		return &SetValid{Header: hdrName, Valid: last == "setValid"}, nil
	}
	if len(parts) == 1 {
		// Plain action invocation.
		return &CallStmt{Method: last, Args: args}, nil
	}
	return &CallStmt{Recv: recv, Method: last, Args: args}, nil
}

// Expressions.

func (p *pparser) expr() (Expr, error) { return p.ternaryExpr() }

func (p *pparser) ternaryExpr() (Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		a, err := p.ternaryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.ternaryExpr()
		if err != nil {
			return nil, err
		}
		return &TernaryExpr{Cond: c, A: a, B: b}, nil
	}
	return c, nil
}

var p4Prec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7, "s<": 7, "s<=": 7, "s>": 7, "s>=": 7,
	"<<": 8, ">>": 8, "s>>": 8,
	"+": 9, "-": 9, "|+|": 9, "|-|": 9,
	"*": 10, "/": 10, "%": 10, "s/": 10, "s%": 10,
}

func (p *pparser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok().kind != "punct" {
			return lhs, nil
		}
		op := p.tok().text
		prec, ok := p4Prec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		// '>' could close a template; tables/types never reach here.
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Bin{Op: op, X: lhs, Y: rhs}
	}
}

func (p *pparser) unaryExpr() (Expr, error) {
	if p.isPunct("~") || p.isPunct("!") || p.isPunct("-") {
		op := p.next().text
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Un{Op: op, X: x}, nil
	}
	return p.primaryExpr()
}

func (p *pparser) primaryExpr() (Expr, error) {
	t := p.tok()
	switch {
	case t.kind == "int":
		p.next()
		return &IntLit{Val: t.val, Bits: t.bits}, nil
	case p.isPunct("("):
		// Cast "(bit<N>)x" / "(int<N>)x" or parenthesized expression.
		save := p.pos
		p.next()
		if p.isIdent("bit") || p.isIdent("int") {
			signed := p.isIdent("int")
			if w, err := p.bitType(); err == nil {
				if p.accept(")") {
					x, err := p.unaryExpr()
					if err != nil {
						return nil, err
					}
					// Collapse the printed (bit<N>)(int<N>)x pattern.
					if inner, ok := x.(*Cast); ok && inner.Signed && inner.Bits == w && !signed {
						return inner, nil
					}
					return &Cast{Bits: w, Signed: signed, X: x}, nil
				}
			}
			p.pos = save
			p.next()
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == "ident":
		path, err := p.fieldPath()
		if err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			p.next()
			var args []Expr
			for !p.accept(")") {
				// Field lists {a, b} used by hash .get calls.
				if p.accept("{") {
					for !p.accept("}") {
						a, err := p.expr()
						if err != nil {
							return nil, err
						}
						args = append(args, a)
						p.accept(",")
					}
				} else {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
				}
				p.accept(",")
			}
			parts := path.Parts
			method := parts[len(parts)-1]
			recv := strings.Join(parts[:len(parts)-1], ".")
			call := &CallExpr{Recv: recv, Method: method, Args: args}
			// "t.apply().hit" → apply_hit.
			if method == "apply" && p.isPunct(".") {
				p.next()
				sel, err := p.ident()
				if err != nil {
					return nil, err
				}
				if sel == "hit" {
					return &CallExpr{Recv: recv, Method: "apply_hit"}, nil
				}
				if sel == "miss" {
					return &Un{Op: "!", X: &CallExpr{Recv: recv, Method: "apply_hit"}}, nil
				}
				return nil, fmt.Errorf("line %d: unsupported apply().%s", t.line, sel)
			}
			return call, nil
		}
		return path, nil
	}
	return nil, fmt.Errorf("line %d: unexpected token %q in expression", t.line, t.text)
}

// fieldPath parses a dotted identifier path.
func (p *pparser) fieldPath() (*FieldRef, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	fr := &FieldRef{Parts: []string{first}}
	for p.isPunct(".") {
		// Stop before method call segments handled by callers? No:
		// include them; callers split the last segment as needed.
		save := p.pos
		p.next()
		if p.tok().kind != "ident" {
			p.pos = save
			break
		}
		fr.Parts = append(fr.Parts, p.next().text)
		if p.isPunct("(") {
			break
		}
	}
	return fr, nil
}
