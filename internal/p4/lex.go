package p4

import (
	"fmt"
	"strconv"
	"strings"
)

// tok is a P4 lexer token.
type tok struct {
	kind string // "ident", "int", "punct", "eof"
	text string
	val  uint64
	bits int // for sized literals like 16w42
	line int
}

// lexP4 tokenizes P4-16 source. Preprocessor lines and comments are
// skipped; annotations (@pragma, @name) are skipped through their
// argument list.
func lexP4(src string) ([]tok, error) {
	var out []tok
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '@':
			// Skip annotation name and optional (...) argument.
			i++
			for i < n && (isP4IdentChar(src[i])) {
				i++
			}
			for i < n && (src[i] == ' ' || src[i] == '\t') {
				i++
			}
			if i < n && src[i] == '(' {
				depth := 0
				for i < n {
					if src[i] == '(' {
						depth++
					}
					if src[i] == ')' {
						depth--
						if depth == 0 {
							i++
							break
						}
					}
					if src[i] == '\n' {
						line++
					}
					i++
				}
			}
		case isP4IdentStart(c):
			start := i
			for i < n && isP4IdentChar(src[i]) {
				i++
			}
			out = append(out, tok{kind: "ident", text: src[start:i], line: line})
		case c >= '0' && c <= '9':
			t, ni, err := lexP4Number(src, i, line)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
			i = ni
		case c == '"':
			i++
			start := i
			for i < n && src[i] != '"' {
				i++
			}
			out = append(out, tok{kind: "string", text: src[start:i], line: line})
			i++
		default:
			// Multi-char operators, longest first.
			ops := []string{"|+|", "|-|", "&&&", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "..", "++"}
			matched := false
			for _, op := range ops {
				if strings.HasPrefix(src[i:], op) {
					out = append(out, tok{kind: "punct", text: op, line: line})
					i += len(op)
					matched = true
					break
				}
			}
			if !matched {
				out = append(out, tok{kind: "punct", text: string(c), line: line})
				i++
			}
		}
	}
	out = append(out, tok{kind: "eof", line: line})
	return out, nil
}

func isP4IdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isP4IdentChar(c byte) bool { return isP4IdentStart(c) || (c >= '0' && c <= '9') }

// lexP4Number handles decimal, hex, and width-prefixed (16w42, 8w0xFF)
// literals.
func lexP4Number(src string, i, line int) (tok, int, error) {
	n := len(src)
	start := i
	for i < n && (src[i] >= '0' && src[i] <= '9') {
		i++
	}
	// Width prefix?
	if i < n && (src[i] == 'w' || src[i] == 's') {
		bits, err := strconv.Atoi(src[start:i])
		if err != nil {
			return tok{}, i, fmt.Errorf("line %d: bad width %q", line, src[start:i])
		}
		i++ // w
		vstart := i
		base := 10
		if i+1 < n && src[i] == '0' && (src[i+1] == 'x' || src[i+1] == 'X') {
			base = 16
			i += 2
			vstart = i
			for i < n && isHex(src[i]) {
				i++
			}
		} else {
			for i < n && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
		}
		v, err := strconv.ParseUint(src[vstart:i], base, 64)
		if err != nil {
			return tok{}, i, fmt.Errorf("line %d: bad literal", line)
		}
		return tok{kind: "int", val: v, bits: bits, line: line}, i, nil
	}
	// Hex?
	if i-start == 1 && src[start] == '0' && i < n && (src[i] == 'x' || src[i] == 'X') {
		i++
		vstart := i
		for i < n && isHex(src[i]) {
			i++
		}
		v, err := strconv.ParseUint(src[vstart:i], 16, 64)
		if err != nil {
			return tok{}, i, fmt.Errorf("line %d: bad hex literal", line)
		}
		return tok{kind: "int", val: v, line: line}, i, nil
	}
	v, err := strconv.ParseUint(src[start:i], 10, 64)
	if err != nil {
		return tok{}, i, fmt.Errorf("line %d: bad literal %q", line, src[start:i])
	}
	return tok{kind: "int", val: v, line: line}, i, nil
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
