package p4

import (
	"strings"
	"testing"
)

// small builds a tiny but feature-complete program by hand.
func small(target Target) *Program {
	prog := &Program{Name: "small", Target: target}
	prog.Headers = []*HeaderDecl{
		{Name: "ethernet", Fields: []*Field{
			{Name: "dst_addr", Bits: 48}, {Name: "src_addr", Bits: 48}, {Name: "ether_type", Bits: 16},
		}},
		{Name: "demo", Fields: []*Field{{Name: "k", Bits: 32}, {Name: "v", Bits: 32}}},
	}
	prog.Metadata = []*Field{{Name: "nexthop", Bits: 16}, {Name: "drop_flag", Bits: 1},
		{Name: "mcast_grp", Bits: 16}, {Name: "egress_port", Bits: 16}}
	prog.Parser = &Parser{Name: "IgParser", States: []*ParserState{
		{Name: "start", Next: "parse_ethernet"},
		{Name: "parse_ethernet", Extracts: []string{"ethernet"},
			Select: &Select{Key: FR("hdr", "ethernet", "ether_type"),
				Cases:   []SelectCase{{Value: 0x1234, State: "parse_demo"}},
				Default: "accept"}},
		{Name: "parse_demo", Extracts: []string{"demo"}, Next: "accept"},
	}}
	ctl := &Control{Name: "In"}
	ctl.Locals = []*Field{{Name: "tmp", Bits: 32}, {Name: "hit1", Bits: 1}}
	ctl.Registers = []*Register{{Name: "cnt", Bits: 32, Size: 16}}
	ctl.RegActs = []*RegisterAction{{
		Name: "ra_inc", Register: "cnt",
		Body: []Stmt{
			&Assign{LHS: FR("m"), RHS: &Bin{Op: "|+|", X: FR("m"), Y: &IntLit{Val: 1, Bits: 32}}},
			&Assign{LHS: FR("o"), RHS: FR("m")},
		},
	}}
	ctl.Hashes = []*HashDecl{{Name: "h0", Algo: "crc16", Bits: 16}}
	ctl.Actions = []*ActionDecl{
		{Name: "set_v", Params: []*Field{{Name: "v", Bits: 32}},
			Body: []Stmt{&Assign{LHS: FR("hdr", "demo", "v"), RHS: FR("v")}}},
		{Name: "mark_drop",
			Body: []Stmt{&Assign{LHS: FR("meta", "drop_flag"), RHS: &IntLit{Val: 1, Bits: 1}}}},
	}
	ctl.Tables = []*Table{{
		Name:    "kv",
		Keys:    []*TableKey{{Expr: FR("hdr", "demo", "k"), Match: MatchExact}},
		Actions: []string{"NoAction", "set_v"},
		Default: &ActionCall{Name: "NoAction"},
		Const:   true,
		Entries: []*Entry{
			{Keys: []KeyValue{{Value: 1, PrefixLen: -1}}, Action: &ActionCall{Name: "set_v", Args: []uint64{42}}},
			{Keys: []KeyValue{{Value: 2, PrefixLen: -1}}, Action: &ActionCall{Name: "set_v", Args: []uint64{43}}},
		},
	}}
	ctl.Apply = []Stmt{
		&If{
			Cond: &CallExpr{Recv: "hdr.demo", Method: "isValid"},
			Then: []Stmt{
				&ApplyTable{Table: "kv", HitVar: "hit1"},
				&Assign{LHS: FR("tmp"), RHS: &CallExpr{Recv: "ra_inc", Method: "execute",
					Args: []Expr{&Cast{Bits: 32, X: FR("hdr", "demo", "k")}}}},
				&If{Cond: &Bin{Op: "==", X: FR("hit1"), Y: &IntLit{Val: 0, Bits: 1}},
					Then: []Stmt{&Assign{LHS: FR("hdr", "demo", "v"), RHS: FR("tmp")}}},
			},
			Else: []Stmt{&Assign{LHS: FR("meta", "drop_flag"), RHS: &IntLit{Val: 1, Bits: 1}}},
		},
	}
	prog.Ingress = ctl
	return prog
}

func TestValidate(t *testing.T) {
	if err := small(TargetTNA).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := small(TargetTNA)
	bad.Ingress.Tables[0].Actions = append(bad.Ingress.Tables[0].Actions, "missing")
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for unknown action")
	}
}

func TestPrintClassified(t *testing.T) {
	text, cats := PrintClassified(small(TargetTNA))
	if len(strings.Split(text, "\n")) != len(cats)+1 {
		t.Fatalf("line/category count mismatch")
	}
	counts := map[LineCat]int{}
	for _, c := range cats {
		counts[c]++
	}
	for _, cat := range []LineCat{CatHeader, CatParser, CatMAT, CatRegAction, CatControl, CatOther} {
		if counts[cat] == 0 {
			t.Errorf("no lines classified as %s", cat)
		}
	}
}

func TestRoundTripTNA(t *testing.T) {
	roundTrip(t, small(TargetTNA))
}

func TestRoundTripV1Model(t *testing.T) {
	// v1model programs cannot hold RegisterActions (they are expanded);
	// build a variant using register read/write statements.
	prog := small(TargetV1Model)
	prog.Ingress.RegActs = nil
	prog.Ingress.Apply = []Stmt{
		&CallStmt{Recv: "cnt", Method: "read", Args: []Expr{FR("tmp"), &IntLit{Val: 3}}},
		&Assign{LHS: FR("tmp"), RHS: &Bin{Op: "+", X: FR("tmp"), Y: &IntLit{Val: 1, Bits: 32}}},
		&CallStmt{Recv: "cnt", Method: "write", Args: []Expr{&IntLit{Val: 3}, FR("tmp")}},
	}
	roundTrip(t, prog)
}

// roundTrip checks Print → Parse → Print fixpoint.
func roundTrip(t *testing.T, prog *Program) {
	t.Helper()
	text1 := Print(prog)
	re, err := Parse(prog.Name, text1)
	if err != nil {
		t.Fatalf("parse printed program: %v\n%s", err, text1)
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("reparsed program invalid: %v", err)
	}
	text2 := Print(re)
	if text1 != text2 {
		t.Errorf("round trip not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseHandwrittenSnippet(t *testing.T) {
	src := `
#include <core.p4>
#include <tna.p4>

typedef bit<48> mac_t;

header ethernet_t {
    mac_t dst;
    mac_t src;
    bit<16> etype;
}
struct headers_t { ethernet_t ethernet; }
struct metadata_t { bit<16> nexthop; }

parser IgParser(packet_in pkt, out headers_t hdr, out metadata_t meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etype) {
            0x0800 : accept;
            default : accept;
        }
    }
}

control In(inout headers_t hdr, inout metadata_t meta) {
    bit<32> c;
    Register<bit<32>, bit<32>>(1024) hits;
    RegisterAction<bit<32>, bit<32>, bit<32>>(hits) bump = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + 1;
            rv = value;
        }
    };
    action fwd(bit<16> port) { meta.nexthop = port; }
    table l2 {
        key = { hdr.ethernet.dst : exact; }
        actions = { fwd; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        c = bump.execute((bit<32>)hdr.ethernet.etype);
        if (l2.apply().hit) {
            hdr.ethernet.etype = 16w7;
        }
    }
}

control IgDeparser(packet_out pkt, inout headers_t hdr) {
    apply { pkt.emit(hdr.ethernet); }
}

Pipeline(IgParser(), In(), IgDeparser()) pipe;
Switch(pipe) main;
`
	prog, err := Parse("snippet", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Target != TargetTNA {
		t.Errorf("target: %s", prog.Target)
	}
	if prog.HeaderByName("ethernet") == nil {
		t.Fatal("header missing")
	}
	if prog.HeaderByName("ethernet").Fields[0].Bits != 48 {
		t.Error("typedef width not applied")
	}
	ra := prog.Ingress.RegActByName("bump")
	if ra == nil {
		t.Fatal("register action missing")
	}
	// Parameter canonicalization: value/rv renamed to m/o.
	found := false
	WalkExprs(ra.Body, func(e Expr) {
		if fr, ok := e.(*FieldRef); ok && fr.String() == "m" {
			found = true
		}
	})
	if !found {
		t.Error("register action params not canonicalized to m/o")
	}
	if prog.Ingress.TableByName("l2") == nil || prog.Ingress.ActionByName("fwd") == nil {
		t.Error("table or action missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"header x_t { bit<8> }",             // missing field name
		"control In() { table t { zap } }",  // bad table property
		"parser P() { state start { ??? }}", // bad parser stmt
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}
