package p4

import (
	"fmt"
	"strings"
)

// Parse reads a P4-16 program in the subset this package models. It
// accepts both generated output (round-trip) and the handwritten
// baseline applications. The target is inferred from the include line
// style if present, else from the top-level package instantiation.
func Parse(name, src string) (*Program, error) {
	toks, err := lexP4(src)
	if err != nil {
		return nil, err
	}
	p := &pparser{toks: toks, typedefs: map[string]int{}}
	prog := &Program{Name: name, Target: TargetTNA}
	if strings.Contains(src, "v1model.p4") || strings.Contains(src, "V1Switch") {
		prog.Target = TargetV1Model
	}
	if err := p.program(prog); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return prog, nil
}

type pparser struct {
	toks     []tok
	pos      int
	typedefs map[string]int
}

func (p *pparser) tok() tok { return p.toks[p.pos] }
func (p *pparser) next() tok {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *pparser) isIdent(s string) bool { return p.tok().kind == "ident" && p.tok().text == s }
func (p *pparser) isPunct(s string) bool { return p.tok().kind == "punct" && p.tok().text == s }

func (p *pparser) accept(s string) bool {
	// Nested template closers lex as ">>" (e.g. bit<32>>); split them
	// when a single ">" is requested.
	if s == ">" && p.tok().kind == "punct" && p.tok().text == ">>" {
		p.toks[p.pos].text = ">"
		return true
	}
	if p.isPunct(s) || p.isIdent(s) {
		p.next()
		return true
	}
	return false
}

func (p *pparser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return fmt.Errorf("line %d: expected %q, found %q", p.tok().line, s, p.tok().text)
}

func (p *pparser) ident() (string, error) {
	if p.tok().kind != "ident" {
		return "", fmt.Errorf("line %d: expected identifier, found %q", p.tok().line, p.tok().text)
	}
	return p.next().text, nil
}

// skipBalanced consumes a balanced (..) or {..} group, assuming the
// opener is the current token.
func (p *pparser) skipBalanced(open, close string) error {
	if err := p.expect(open); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		if p.tok().kind == "eof" {
			return fmt.Errorf("unexpected EOF in %s%s group", open, close)
		}
		if p.isPunct(open) {
			depth++
		}
		if p.isPunct(close) {
			depth--
		}
		p.next()
	}
	return nil
}

func (p *pparser) skipToSemi() {
	for p.tok().kind != "eof" && !p.isPunct(";") {
		p.next()
	}
	p.accept(";")
}

// bitType parses bit<N> / int<N> / bool / a typedef name, returning
// the width.
func (p *pparser) bitType() (int, error) {
	if p.isIdent("bit") || p.isIdent("int") {
		p.next()
		if err := p.expect("<"); err != nil {
			return 0, err
		}
		if p.tok().kind != "int" {
			return 0, fmt.Errorf("line %d: expected width", p.tok().line)
		}
		w := int(p.next().val)
		if err := p.expect(">"); err != nil {
			return 0, err
		}
		return w, nil
	}
	if p.isIdent("bool") {
		p.next()
		return 1, nil
	}
	name, err := p.ident()
	if err != nil {
		return 0, err
	}
	if w, ok := p.typedefs[name]; ok {
		return w, nil
	}
	return 0, fmt.Errorf("line %d: unknown type %q", p.tok().line, name)
}

func (p *pparser) program(prog *Program) error {
	for p.tok().kind != "eof" {
		switch {
		case p.isIdent("header"):
			if err := p.header(prog); err != nil {
				return err
			}
		case p.isIdent("struct"):
			if err := p.structDecl(prog); err != nil {
				return err
			}
		case p.isIdent("typedef"):
			p.next()
			w, err := p.bitType()
			if err != nil {
				return err
			}
			name, err := p.ident()
			if err != nil {
				return err
			}
			p.typedefs[name] = w
			p.accept(";")
		case p.isIdent("parser"):
			if err := p.parserDecl(prog); err != nil {
				return err
			}
		case p.isIdent("control"):
			if err := p.controlDecl(prog); err != nil {
				return err
			}
		case p.isIdent("const"):
			p.skipToSemi()
		case p.isIdent("Pipeline") || p.isIdent("Switch") || p.isIdent("V1Switch"):
			p.skipToSemi()
		case p.isIdent("error") || p.isIdent("enum"):
			p.next()
			for p.tok().kind != "eof" && !p.isPunct("{") {
				p.next()
			}
			if err := p.skipBalanced("{", "}"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("line %d: unexpected top-level token %q", p.tok().line, p.tok().text)
		}
	}
	return nil
}

func (p *pparser) header(prog *Program) error {
	p.next() // header
	name, err := p.ident()
	if err != nil {
		return err
	}
	name = strings.TrimSuffix(name, "_t")
	h := &HeaderDecl{Name: name}
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		w, err := p.bitType()
		if err != nil {
			return err
		}
		fn, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		h.Fields = append(h.Fields, &Field{Name: fn, Bits: w})
	}
	prog.Headers = append(prog.Headers, h)
	return nil
}

func (p *pparser) structDecl(prog *Program) error {
	p.next() // struct
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		if name == "metadata_t" {
			w, err := p.bitType()
			if err != nil {
				return err
			}
			fn, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expect(";"); err != nil {
				return err
			}
			prog.Metadata = append(prog.Metadata, &Field{Name: fn, Bits: w})
			continue
		}
		// headers_t and friends: skip "type name;" entries.
		p.skipToSemi()
	}
	return nil
}

func (p *pparser) parserDecl(prog *Program) error {
	p.next() // parser
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.skipBalanced("(", ")"); err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	// Secondary parsers (egress) are skipped.
	if prog.Parser != nil {
		depth := 1
		for depth > 0 && p.tok().kind != "eof" {
			if p.isPunct("{") {
				depth++
			}
			if p.isPunct("}") {
				depth--
			}
			p.next()
		}
		return nil
	}
	ps := &Parser{Name: name}
	for !p.accept("}") {
		if err := p.expect("state"); err != nil {
			return err
		}
		sname, err := p.ident()
		if err != nil {
			return err
		}
		st := &ParserState{Name: sname}
		if err := p.expect("{"); err != nil {
			return err
		}
		for !p.accept("}") {
			switch {
			case p.isIdent("pkt") || p.isIdent("packet"):
				p.next()
				if err := p.expect("."); err != nil {
					return err
				}
				if err := p.expect("extract"); err != nil {
					return err
				}
				if err := p.expect("("); err != nil {
					return err
				}
				ref, err := p.fieldPath()
				if err != nil {
					return err
				}
				parts := ref.Parts
				hn := parts[len(parts)-1]
				st.Extracts = append(st.Extracts, hn)
				if err := p.expect(")"); err != nil {
					return err
				}
				p.accept(";")
			case p.isIdent("transition"):
				p.next()
				if p.isIdent("select") {
					p.next()
					if err := p.expect("("); err != nil {
						return err
					}
					key, err := p.expr()
					if err != nil {
						return err
					}
					if err := p.expect(")"); err != nil {
						return err
					}
					sel := &Select{Key: key, Default: "accept"}
					if err := p.expect("{"); err != nil {
						return err
					}
					for !p.accept("}") {
						if p.isIdent("default") {
							p.next()
							if err := p.expect(":"); err != nil {
								return err
							}
							dst, err := p.ident()
							if err != nil {
								return err
							}
							sel.Default = dst
							p.accept(";")
							continue
						}
						if p.tok().kind != "int" {
							return fmt.Errorf("line %d: expected select case value", p.tok().line)
						}
						v := p.next().val
						var mask uint64
						if p.accept("&&&") {
							if p.tok().kind != "int" {
								return fmt.Errorf("line %d: expected mask", p.tok().line)
							}
							mask = p.next().val
						}
						if err := p.expect(":"); err != nil {
							return err
						}
						dst, err := p.ident()
						if err != nil {
							return err
						}
						sel.Cases = append(sel.Cases, SelectCase{Value: v, Mask: mask, State: dst})
						p.accept(";")
					}
					st.Select = sel
				} else {
					dst, err := p.ident()
					if err != nil {
						return err
					}
					st.Next = dst
					p.accept(";")
				}
			default:
				return fmt.Errorf("line %d: unexpected parser statement %q", p.tok().line, p.tok().text)
			}
		}
		ps.States = append(ps.States, st)
	}
	prog.Parser = ps
	return nil
}

// skippedControls are boilerplate controls ignored by the parser.
var skippedControls = map[string]bool{
	"IgDeparser": true, "EgDeparser": true, "verifyChecksum": true,
	"computeChecksum": true, "EmptyEgress": true, "DeparserImpl": true,
}

func (p *pparser) controlDecl(prog *Program) error {
	p.next() // control
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.skipBalanced("(", ")"); err != nil {
		return err
	}
	if skippedControls[name] {
		return p.skipBalanced("{", "}")
	}
	c := &Control{Name: name}
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		switch {
		case p.isIdent("bit") || p.isIdent("bool") || p.isIdent("int"):
			w, err := p.bitType()
			if err != nil {
				return err
			}
			n, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expect(";"); err != nil {
				return err
			}
			c.Locals = append(c.Locals, &Field{Name: n, Bits: w})
		case p.isIdent("Register") || p.isIdent("register"):
			if err := p.registerDecl(c); err != nil {
				return err
			}
		case p.isIdent("RegisterAction"):
			if err := p.regActionDecl(c); err != nil {
				return err
			}
		case p.isIdent("Hash") || p.isIdent("Random"):
			if err := p.hashDecl(c); err != nil {
				return err
			}
		case p.isIdent("action"):
			if err := p.actionDecl(c); err != nil {
				return err
			}
		case p.isIdent("table"):
			if err := p.tableDecl(c); err != nil {
				return err
			}
		case p.isIdent("apply"):
			p.next()
			body, err := p.block()
			if err != nil {
				return err
			}
			c.Apply = body
		default:
			return fmt.Errorf("line %d: unexpected control member %q", p.tok().line, p.tok().text)
		}
	}
	if prog.Ingress == nil {
		prog.Ingress = c
	} else if prog.Egress == nil {
		prog.Egress = c
	}
	return nil
}

func (p *pparser) registerDecl(c *Control) error {
	tna := p.isIdent("Register")
	p.next()
	if err := p.expect("<"); err != nil {
		return err
	}
	bits, err := p.bitType()
	if err != nil {
		return err
	}
	if p.accept(",") {
		if _, err := p.bitType(); err != nil { // index type (TNA)
			return err
		}
	}
	if err := p.expect(">"); err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	if p.tok().kind != "int" {
		return fmt.Errorf("line %d: expected register size", p.tok().line)
	}
	size := int(p.next().val)
	// TNA allows an initial-value second argument.
	if p.accept(",") {
		p.next()
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	_ = tna
	c.Registers = append(c.Registers, &Register{Name: name, Bits: bits, Size: size})
	return nil
}

func (p *pparser) regActionDecl(c *Control) error {
	p.next() // RegisterAction
	if err := p.expect("<"); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		switch {
		case p.tok().kind == "eof":
			return fmt.Errorf("unexpected EOF in RegisterAction template arguments")
		case p.isPunct("<"):
			depth++
		case p.isPunct(">"):
			depth--
		case p.isPunct(">>"):
			depth -= 2
		}
		p.next()
	}
	if err := p.expect("("); err != nil {
		return err
	}
	regName, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	raName, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	if err := p.expect("void"); err != nil {
		return err
	}
	if err := p.expect("apply"); err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	// Parameter names: first is the cell, second (optional) the output.
	var declared []string
	for !p.accept(")") {
		if p.accept("inout") || p.accept("out") || p.accept("in") {
		}
		if _, err := p.bitType(); err != nil {
			return err
		}
		n, err := p.ident()
		if err != nil {
			return err
		}
		declared = append(declared, n)
		p.accept(",")
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	if err := p.expect("}"); err != nil {
		return err
	}
	p.accept(";")
	// Canonicalize parameter names to m/o.
	canon := map[string]string{}
	if len(declared) > 0 {
		canon[declared[0]] = "m"
	}
	if len(declared) > 1 {
		canon[declared[1]] = "o"
	}
	renameRefs(body, canon)
	c.RegActs = append(c.RegActs, &RegisterAction{Name: raName, Register: regName, Body: body})
	return nil
}

func renameRefs(body []Stmt, canon map[string]string) {
	WalkExprs(body, func(e Expr) {
		if fr, ok := e.(*FieldRef); ok && len(fr.Parts) == 1 {
			if to, ok2 := canon[fr.Parts[0]]; ok2 {
				fr.Parts[0] = to
			}
		}
	})
	Walk(body, func(s Stmt) {
		if a, ok := s.(*Assign); ok && len(a.LHS.Parts) == 1 {
			if to, ok2 := canon[a.LHS.Parts[0]]; ok2 {
				a.LHS.Parts[0] = to
			}
		}
	})
}

func (p *pparser) hashDecl(c *Control) error {
	random := p.isIdent("Random")
	p.next()
	if err := p.expect("<"); err != nil {
		return err
	}
	bits, err := p.bitType()
	if err != nil {
		return err
	}
	if err := p.expect(">"); err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	algo := "random"
	if !random {
		// HashAlgorithm_t.CRC16 or HashAlgorithm.crc16.
		if _, err := p.ident(); err != nil {
			return err
		}
		if err := p.expect("."); err != nil {
			return err
		}
		a, err := p.ident()
		if err != nil {
			return err
		}
		algo = strings.ToLower(a)
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	c.Hashes = append(c.Hashes, &HashDecl{Name: name, Algo: algo, Bits: bits})
	return nil
}

func (p *pparser) actionDecl(c *Control) error {
	p.next() // action
	name, err := p.ident()
	if err != nil {
		return err
	}
	a := &ActionDecl{Name: name}
	if err := p.expect("("); err != nil {
		return err
	}
	for !p.accept(")") {
		w, err := p.bitType()
		if err != nil {
			return err
		}
		n, err := p.ident()
		if err != nil {
			return err
		}
		a.Params = append(a.Params, &Field{Name: n, Bits: w})
		p.accept(",")
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	a.Body = body
	c.Actions = append(c.Actions, a)
	return nil
}

func (p *pparser) tableDecl(c *Control) error {
	p.next() // table
	name, err := p.ident()
	if err != nil {
		return err
	}
	t := &Table{Name: name}
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		switch {
		case p.isIdent("key"):
			p.next()
			if err := p.expect("="); err != nil {
				return err
			}
			if err := p.expect("{"); err != nil {
				return err
			}
			for !p.accept("}") {
				e, err := p.expr()
				if err != nil {
					return err
				}
				if err := p.expect(":"); err != nil {
					return err
				}
				mk, err := p.ident()
				if err != nil {
					return err
				}
				t.Keys = append(t.Keys, &TableKey{Expr: e, Match: MatchKind(mk)})
				p.accept(";")
			}
		case p.isIdent("actions"):
			p.next()
			if err := p.expect("="); err != nil {
				return err
			}
			if err := p.expect("{"); err != nil {
				return err
			}
			for !p.accept("}") {
				an, err := p.ident()
				if err != nil {
					return err
				}
				t.Actions = append(t.Actions, an)
				p.accept(";")
				p.accept(",")
			}
		case p.isIdent("const") || p.isIdent("entries"):
			if p.accept("const") {
				t.Const = true
			}
			if err := p.expect("entries"); err != nil {
				return err
			}
			if err := p.expect("="); err != nil {
				return err
			}
			if err := p.expect("{"); err != nil {
				return err
			}
			for !p.accept("}") {
				e, err := p.entry(len(t.Entries))
				if err != nil {
					return err
				}
				t.Entries = append(t.Entries, e)
			}
		case p.isIdent("default_action"):
			p.next()
			if err := p.expect("="); err != nil {
				return err
			}
			ac, err := p.actionCall()
			if err != nil {
				return err
			}
			t.Default = ac
			p.accept(";")
		case p.isIdent("size"):
			p.next()
			if err := p.expect("="); err != nil {
				return err
			}
			if p.tok().kind != "int" {
				return fmt.Errorf("line %d: expected size", p.tok().line)
			}
			t.Size = int(p.next().val)
			p.accept(";")
		default:
			return fmt.Errorf("line %d: unexpected table property %q", p.tok().line, p.tok().text)
		}
	}
	c.Tables = append(c.Tables, t)
	return nil
}

// entry parses one "keys : action(args);" entry.
func (p *pparser) entry(ordinal int) (*Entry, error) {
	e := &Entry{Priority: ordinal}
	parseKV := func() (KeyValue, error) {
		kv := KeyValue{PrefixLen: -1}
		if p.tok().kind != "int" {
			return kv, fmt.Errorf("line %d: expected entry key", p.tok().line)
		}
		t := p.next()
		kv.Value = t.val
		switch {
		case p.accept("&&&"):
			if p.tok().kind != "int" {
				return kv, fmt.Errorf("line %d: expected mask", p.tok().line)
			}
			kv.Mask = p.next().val
		case p.accept(".."):
			if p.tok().kind != "int" {
				return kv, fmt.Errorf("line %d: expected range end", p.tok().line)
			}
			kv.Hi = p.next().val
		case p.accept("/"):
			if p.tok().kind != "int" {
				return kv, fmt.Errorf("line %d: expected prefix length", p.tok().line)
			}
			kv.PrefixLen = int(p.next().val)
		}
		return kv, nil
	}
	if p.accept("(") {
		for !p.accept(")") {
			kv, err := parseKV()
			if err != nil {
				return nil, err
			}
			e.Keys = append(e.Keys, kv)
			p.accept(",")
		}
	} else {
		kv, err := parseKV()
		if err != nil {
			return nil, err
		}
		e.Keys = append(e.Keys, kv)
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	ac, err := p.actionCall()
	if err != nil {
		return nil, err
	}
	e.Action = ac
	p.accept(";")
	return e, nil
}

func (p *pparser) actionCall() (*ActionCall, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ac := &ActionCall{Name: name}
	if p.accept("(") {
		for !p.accept(")") {
			if p.tok().kind != "int" {
				return nil, fmt.Errorf("line %d: action arguments in entries must be literals", p.tok().line)
			}
			ac.Args = append(ac.Args, p.next().val)
			p.accept(",")
		}
	}
	return ac, nil
}
