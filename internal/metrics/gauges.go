package metrics

// Runtime gauges: lightweight atomic instruments the host runtime
// publishes while traffic is flowing (window occupancy, in-flight
// peaks, retransmission counts). They complement the static code
// metrics in this package: the paper's evaluation measures programs,
// the gauges measure the running system.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Gauge is an instantaneous value with a high-water mark. All methods
// are safe for concurrent use.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Add moves the gauge by delta and returns the new value, updating the
// peak.
func (g *Gauge) Add(delta int64) int64 {
	v := g.v.Add(delta)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return v
		}
	}
}

// Set stores an absolute value, updating the peak.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Peak returns the highest value ever observed.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// Set is a named collection of gauges. Lookups intern the gauge on
// first use; reads while traffic flows are lock-free on the gauge
// itself.
type Set struct {
	mu sync.Mutex
	m  map[string]*Gauge
}

// NewSet builds an empty gauge set.
func NewSet() *Set { return &Set{m: map[string]*Gauge{}} }

// Gauge returns the named gauge, creating it on first use.
func (s *Set) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.m[name]
	if g == nil {
		g = &Gauge{}
		s.m[name] = g
	}
	return g
}

// Snapshot returns the current value of every gauge, keyed by name.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for name, g := range s.m {
		out[name] = g.Value()
	}
	return out
}

// Names returns the registered gauge names, sorted.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
