// Package metrics computes the code metrics of the paper's language
// evaluation: lines of code (Table III) and the distribution of P4
// code across construct categories (Figure 12).
package metrics

import (
	"math"
	"strings"

	"netcl/internal/p4"
)

// LoC counts the lines of code in source text, excluding blank lines
// and comment-only lines — the usual convention for the paper's
// O(10)-vs-O(100) comparison.
func LoC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if inBlock {
			if i := strings.Index(s, "*/"); i >= 0 {
				s = strings.TrimSpace(s[i+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if i := strings.Index(s, "//"); i >= 0 {
			s = strings.TrimSpace(s[:i])
		}
		if strings.HasPrefix(s, "/*") {
			if !strings.Contains(s, "*/") {
				inBlock = true
			}
			continue
		}
		if s == "" {
			continue
		}
		n++
	}
	return n
}

// Category is a Figure 12 code category.
type Category string

// Figure 12 categories: packet-processing constructs (headers+parsing,
// MATs), stateful objects (RegisterActions etc.), imperative control,
// and the rest.
const (
	CatHeadersParsing Category = "headers+parsing"
	CatMATs           Category = "match-action tables"
	CatRegActions     Category = "register actions"
	CatControl        Category = "control logic"
	CatOther          Category = "other"
)

// Breakdown classifies a P4 program's lines by construct, returning
// percentages that sum to 100 (blank lines excluded). The
// classification is structural (from the AST-driven printer), so it is
// identical for parsed handwritten programs and generated ones.
func Breakdown(prog *p4.Program) map[Category]float64 {
	_, cats := p4.PrintClassified(prog)
	counts := map[Category]int{}
	total := 0
	for _, c := range cats {
		var cat Category
		switch c {
		case p4.CatHeader, p4.CatParser:
			cat = CatHeadersParsing
		case p4.CatMAT:
			cat = CatMATs
		case p4.CatRegAction:
			cat = CatRegActions
		case p4.CatControl:
			cat = CatControl
		case p4.CatBlank:
			continue
		default:
			cat = CatOther
		}
		counts[cat]++
		total++
	}
	out := map[Category]float64{}
	if total == 0 {
		return out
	}
	for cat, n := range counts {
		out[cat] = 100 * float64(n) / float64(total)
	}
	return out
}

// ComputePct returns the percentage of compute-related code: register
// actions plus control logic plus the action halves of MATs — the
// paper reports "only 52% of the P4 code is spent on compute-related
// functionality".
func ComputePct(prog *p4.Program) float64 {
	bd := Breakdown(prog)
	return bd[CatRegActions] + bd[CatControl] + bd[CatMATs]/2
}

// Geomean computes the geometric mean of positive values.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
