package metrics

import (
	"math"
	"testing"

	"netcl/internal/p4"
)

func TestLoC(t *testing.T) {
	src := `
// comment only
int a;  // trailing comment

/* block
   comment */
int b; /* inline */ int c;
`
	if got := LoC(src); got != 2 {
		t.Errorf("LoC = %d, want 2", got)
	}
	if LoC("") != 0 || LoC("\n\n") != 0 {
		t.Error("empty source should be 0")
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{2, 8})
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f", got)
	}
	if Geomean(nil) != 0 || Geomean([]float64{0, 1}) != 0 {
		t.Error("degenerate cases")
	}
}

func TestBreakdownSumsTo100(t *testing.T) {
	prog := &p4.Program{Name: "t", Target: p4.TargetTNA}
	prog.Headers = []*p4.HeaderDecl{{Name: "h", Fields: []*p4.Field{{Name: "x", Bits: 8}}}}
	prog.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{
		{Name: "start", Extracts: []string{"h"}, Next: "accept"},
	}}
	prog.Ingress = &p4.Control{Name: "In", Apply: []p4.Stmt{
		&p4.Assign{LHS: p4.FR("hdr", "h", "x"), RHS: &p4.IntLit{Val: 1, Bits: 8}},
	}}
	bd := Breakdown(prog)
	sum := 0.0
	for _, v := range bd {
		sum += v
	}
	if math.Abs(sum-100) > 0.01 {
		t.Errorf("breakdown sums to %f", sum)
	}
	if bd[CatHeadersParsing] <= 0 {
		t.Error("headers+parsing share missing")
	}
}
