package codegen

import (
	"strings"
	"testing"

	"netcl/internal/ir"
	"netcl/internal/lang"
	"netcl/internal/lower"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/sema"
)

func gen(t *testing.T, src string, target p4.Target) *p4.Program {
	t.Helper()
	var d lang.Diagnostics
	f := lang.ParseFile("t.ncl", src, nil, &d)
	prog := sema.Check(f, &d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	mod := lower.Module(prog, 1, lower.Options{}, &d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if _, err := passes.Run(mod, passes.DefaultOptions(passes.Target(target))); err != nil {
		t.Fatal(err)
	}
	out, err := Generate(mod, Options{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
	return out
}

func TestBaseProgramSkeleton(t *testing.T) {
	prog := gen(t, `_kernel(1) void k(unsigned x) {}`, p4.TargetTNA)
	for _, h := range []string{"ethernet", "ipv4", "udp", "netcl", "d1"} {
		if prog.HeaderByName(h) == nil {
			t.Errorf("missing header %s", h)
		}
	}
	for _, st := range []string{"start", "parse_ethernet", "parse_ipv4", "parse_udp", "parse_netcl", "parse_d1"} {
		if prog.Parser.StateByName(st) == nil {
			t.Errorf("missing parser state %s", st)
		}
	}
	for _, tbl := range []string{"netcl_fwd", "l2_fwd"} {
		if prog.Ingress.TableByName(tbl) == nil {
			t.Errorf("missing base table %s", tbl)
		}
	}
}

func TestMultiComputationDispatch(t *testing.T) {
	prog := gen(t, `
_kernel(1) void inc(unsigned &x) { x = x + 1; return ncl::reflect(); }
_kernel(2) void dbl(unsigned &y, unsigned &z) { y = y * 2; z = y; return ncl::reflect(); }
`, p4.TargetTNA)
	if prog.HeaderByName("d1") == nil || prog.HeaderByName("d2") == nil {
		t.Fatal("one data header per computation expected")
	}
	src := p4.Print(prog)
	if !strings.Contains(src, "hdr.netcl.comp == 8w1") || !strings.Contains(src, "hdr.netcl.comp == 8w2") {
		t.Error("computation dispatch switch missing")
	}
	// Parser must select the right data header per computation.
	st := prog.Parser.StateByName("parse_netcl")
	if st == nil || st.Select == nil || len(st.Select.Cases) != 2 {
		t.Error("parse_netcl select incomplete")
	}
}

func TestRegisterActionPerAtomic(t *testing.T) {
	prog := gen(t, `
_net_ unsigned C[8];
_kernel(1) void k(unsigned i, unsigned &a, unsigned &b) {
  if (i > 4) { a = ncl::atomic_add_new(&C[i & 7], 1); }
  else       { b = ncl::atomic_ssub_new(&C[i & 7], 1); }
}
`, p4.TargetTNA)
	if len(prog.Ingress.RegActs) != 2 {
		t.Errorf("register actions: %d, want 2 (one per access)", len(prog.Ingress.RegActs))
	}
	if prog.Ingress.RegisterByName("reg_C") == nil {
		t.Error("register missing")
	}
}

func TestV1ModelHasNoTNAConstructs(t *testing.T) {
	prog := gen(t, `
_net_ unsigned C[8];
_kernel(1) void k(unsigned i, unsigned &a) { a = ncl::atomic_add_new(&C[i & 7], 1); }
`, p4.TargetV1Model)
	if len(prog.Ingress.RegActs) != 0 {
		t.Error("v1model must not emit RegisterActions")
	}
	src := p4.Print(prog)
	if !strings.Contains(src, "reg_C.read(") || !strings.Contains(src, "reg_C.write(") {
		t.Error("v1model register primitives missing")
	}
}

func TestDynamicIndexTables(t *testing.T) {
	prog := gen(t, `
_kernel(1) void k(unsigned i, unsigned _spec(4) *v, unsigned &out) {
  out = v[i & 3];
}
`, p4.TargetTNA)
	found := false
	for _, tbl := range prog.Ingress.Tables {
		if strings.HasPrefix(tbl.Name, "idx_r") {
			found = true
			if len(tbl.Entries) != 4 {
				t.Errorf("index table entries: %d", len(tbl.Entries))
			}
		}
	}
	if !found {
		t.Error("dynamic access should emit an index table (paper Fig. 9)")
	}
}

func TestCLZEmitsLPMTable(t *testing.T) {
	prog := gen(t, `
_kernel(1) void k(unsigned x, unsigned &n) { n = ncl::clz(x); }
`, p4.TargetTNA)
	found := false
	for _, tbl := range prog.Ingress.Tables {
		if strings.HasPrefix(tbl.Name, "clz") {
			found = true
			if tbl.Keys[0].Match != p4.MatchLPM {
				t.Error("clz table should be LPM-matched")
			}
			if len(tbl.Entries) != 32 {
				t.Errorf("clz entries: %d", len(tbl.Entries))
			}
		}
	}
	if !found {
		t.Error("clz should lower to an LPM table (§VI-B)")
	}
}

func TestTargetIntrinsicRejection(t *testing.T) {
	var d lang.Diagnostics
	f := lang.ParseFile("t.ncl", `
_kernel(1) void k(unsigned x, uint64_t &h) { h = ncl::tna::crc64(x); }
`, nil, &d)
	prog := sema.Check(f, &d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	mod := lower.Module(prog, 1, lower.Options{}, &d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if _, err := passes.Run(mod, passes.DefaultOptions(passes.TargetV1Model)); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(mod, Options{Target: p4.TargetV1Model}); err == nil {
		t.Error("tna intrinsic must be rejected on v1model")
	} else if !strings.Contains(err.Error(), "not available on target") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestLookupDuplicationRequired(t *testing.T) {
	var d lang.Diagnostics
	f := lang.ParseFile("t.ncl", `
_net_ _lookup_ ncl::kv<unsigned,unsigned> tbl[8];
_kernel(1) void k(unsigned a, unsigned b, unsigned &x) {
  unsigned v = 0;
  if (a > b) { ncl::lookup(tbl, a, v); }
  else       { ncl::lookup(tbl, b, v); }
  x = v;
}
`, nil, &d)
	prog := sema.Check(f, &d)
	mod := lower.Module(prog, 1, lower.Options{}, &d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	opts := passes.DefaultOptions(passes.TargetTNA)
	opts.DuplicateLookups = false
	if _, err := passes.Run(mod, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(mod, Options{Target: p4.TargetTNA}); err == nil {
		t.Error("two accesses without duplication must fail code generation")
	}
}

func TestSinkingIntoHeaderFields(t *testing.T) {
	prog := gen(t, `
_net_ unsigned C[8];
_kernel(1) void k(unsigned i, unsigned &out) {
  out = ncl::atomic_add_new(&C[i & 7], 1);
  return ncl::reflect();
}
`, p4.TargetTNA)
	src := p4.Print(prog)
	if !strings.Contains(src, "hdr.d1.out = ra_C") {
		t.Errorf("atomic result should sink into the header field:\n%s", src)
	}
}

func TestEveryActionKindLowers(t *testing.T) {
	prog := gen(t, `
_kernel(1) void k(uint8_t a, uint16_t h) {
  if (a == 0) return ncl::drop();
  if (a == 1) return ncl::send_to_host(h);
  if (a == 2) return ncl::send_to_device(7);
  if (a == 3) return ncl::multicast(12);
  if (a == 4) return ncl::reflect();
  if (a == 5) return ncl::reflect_long();
  return ncl::pass();
}
`, p4.TargetTNA)
	src := p4.Print(prog)
	for code := 0; code <= 6; code++ {
		if !strings.Contains(src, "hdr.netcl.act = 8w"+string(rune('0'+code))) {
			t.Errorf("action code %d not emitted", code)
		}
	}
}

func TestGeneratedIRHasNoPhis(t *testing.T) {
	// Safety net: codegen assumes φ-free input.
	var d lang.Diagnostics
	f := lang.ParseFile("t.ncl", `
_kernel(1) void k(unsigned a, unsigned b, unsigned &x) {
  unsigned v = a;
  if (a > b) v = b;
  x = v;
}
`, nil, &d)
	prog := sema.Check(f, &d)
	mod := lower.Module(prog, 1, lower.Options{}, &d)
	if _, err := passes.Run(mod, passes.DefaultOptions(passes.TargetTNA)); err != nil {
		t.Fatal(err)
	}
	mod.Funcs[0].Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpPhi {
			t.Errorf("phi reached codegen: %s", i)
		}
		return true
	})
}
