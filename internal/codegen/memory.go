package codegen

import (
	"fmt"

	"netcl/internal/ir"
	"netcl/internal/p4"
)

// regName is the P4 register instance for a memory object.
func regName(m *ir.MemRef) string { return "reg_" + m.Name }

// ensureRegister declares the register backing a memory object.
func (g *generator) ensureRegister(m *ir.MemRef) *p4.Register {
	if r := g.ctl.RegisterByName(regName(m)); r != nil {
		return r
	}
	r := &p4.Register{
		Name: regName(m),
		Bits: p4Bits(m.Elem),
		Size: m.NumElems(),
		Init: append([]int64(nil), m.Init...),
	}
	g.ctl.Registers = append(g.ctl.Registers, r)
	return r
}

// flatIndex combines the leading NIdx index arguments into one linear
// register index expression.
func (g *generator) flatIndex(i *ir.Instr) p4.Expr {
	m := i.G
	if i.NIdx == 0 {
		return &p4.IntLit{Val: 0, Bits: 32}
	}
	var out p4.Expr
	for k := 0; k < i.NIdx; k++ {
		stride := 1
		for _, d := range m.Dims[k+1:] {
			stride *= d
		}
		term := p4.Expr(&p4.Cast{Bits: 32, X: g.valueExpr(i.Args[k])})
		if stride != 1 {
			term = &p4.Bin{Op: "*", X: term, Y: &p4.IntLit{Val: uint64(stride), Bits: 32}}
		}
		if out == nil {
			out = term
		} else {
			out = &p4.Bin{Op: "+", X: out, Y: term}
		}
	}
	return out
}

// atomicOperands returns (cond, operands) expressions for an atomic.
func (g *generator) atomicOperands(i *ir.Instr) (p4.Expr, []p4.Expr) {
	rest := i.Args[i.NIdx:]
	var cond p4.Expr
	if i.Cond && len(rest) > 0 {
		cond = g.condExpr(rest[0])
		rest = rest[1:]
	}
	var ops []p4.Expr
	for _, a := range rest {
		ops = append(ops, g.valueExpr(a))
	}
	return cond, ops
}

// emitAtomicTNA generates a Register + RegisterAction pair and an
// execute() call — one SALU transaction (paper Fig. 9, second column).
func (g *generator) emitAtomicTNA(ks *kernelState, i *ir.Instr) []p4.Stmt {
	g.ensureRegister(i.G)
	cond, ops := g.atomicOperands(i)
	raName := fmt.Sprintf("ra_%s_%d_%s", i.G.Name, i.ID, g.curKernelTag)
	body := salulBody(i, cond, ops)
	g.ctl.RegActs = append(g.ctl.RegActs, &p4.RegisterAction{
		Name: raName, Register: regName(i.G), Body: body,
	})
	call := &p4.CallExpr{Recv: raName, Method: "execute", Args: []p4.Expr{g.flatIndex(i)}}
	if i.AOp == "write" {
		return []p4.Stmt{&p4.CallStmt{Recv: raName, Method: "execute", Args: []p4.Expr{g.flatIndex(i)}}}
	}
	// Sink the result straight into its header field when the only use
	// is a message store (saves one PHV temporary per atomic — vital
	// for AGG's 32 per-packet aggregation results).
	if st, ok := ks.sinkTarget(i); ok {
		k := int(st.Args[0].(*ir.Const).Uint()) % maxInt(st.Param.Count, 1)
		dest := p4.FR("hdr", ks.hdr, argField(st.Param, k))
		ks.skip[st] = true
		g.vals[i] = dest
		return []p4.Stmt{&p4.Assign{LHS: dest, RHS: call}}
	}
	t := g.declTemp(i)
	return []p4.Stmt{&p4.Assign{LHS: t, RHS: call}}
}

// salulBody builds the SALU microprogram over the cell "m" with output
// "o". Conditional variants guard the update; *_new returns the
// post-operation value (old value otherwise) — exactly the semantics
// of §V-D that let condition+result fit one stage.
func salulBody(i *ir.Instr, cond p4.Expr, ops []p4.Expr) []p4.Stmt {
	m := p4.FR("m")
	o := p4.FR("o")
	var update []p4.Stmt
	opExpr := func(op string) p4.Expr {
		var v p4.Expr = &p4.IntLit{Val: 1}
		if len(ops) > 0 {
			v = ops[0]
		}
		switch op {
		case "add":
			return &p4.Bin{Op: "+", X: m, Y: v}
		case "sub":
			return &p4.Bin{Op: "-", X: m, Y: v}
		case "sadd":
			return &p4.Bin{Op: "|+|", X: m, Y: v}
		case "ssub":
			return &p4.Bin{Op: "|-|", X: m, Y: v}
		case "or":
			return &p4.Bin{Op: "|", X: m, Y: v}
		case "and":
			return &p4.Bin{Op: "&", X: m, Y: v}
		case "xor":
			return &p4.Bin{Op: "^", X: m, Y: v}
		case "inc":
			return &p4.Bin{Op: "+", X: m, Y: &p4.IntLit{Val: 1}}
		case "dec":
			return &p4.Bin{Op: "|-|", X: m, Y: &p4.IntLit{Val: 1}}
		case "swap", "write":
			return v
		case "min":
			return &p4.TernaryExpr{Cond: &p4.Bin{Op: "<", X: v, Y: m}, A: v, B: m}
		case "max":
			return &p4.TernaryExpr{Cond: &p4.Bin{Op: ">", X: v, Y: m}, A: v, B: m}
		}
		return m
	}
	switch i.AOp {
	case "read":
		return []p4.Stmt{&p4.Assign{LHS: o, RHS: m}}
	case "write":
		return []p4.Stmt{&p4.Assign{LHS: m, RHS: opExpr("write")}}
	case "cas":
		var exp, des p4.Expr = &p4.IntLit{Val: 0}, &p4.IntLit{Val: 0}
		if len(ops) >= 2 {
			exp, des = ops[0], ops[1]
		}
		return []p4.Stmt{
			&p4.Assign{LHS: o, RHS: m},
			&p4.If{Cond: &p4.Bin{Op: "==", X: m, Y: exp},
				Then: []p4.Stmt{&p4.Assign{LHS: m, RHS: des}}},
		}
	default:
		update = []p4.Stmt{&p4.Assign{LHS: m, RHS: opExpr(i.AOp)}}
	}
	guarded := update
	if cond != nil {
		guarded = []p4.Stmt{&p4.If{Cond: cond, Then: update}}
	}
	if i.RetNew {
		// Update first, then return the (possibly unchanged) value.
		return append(guarded, &p4.Assign{LHS: o, RHS: m})
	}
	// Return the old value, then update.
	return append([]p4.Stmt{&p4.Assign{LHS: o, RHS: m}}, guarded...)
}

// emitAtomicV1 expands the atomic into an @atomic read/modify/write
// block using the v1model register primitives.
func (g *generator) emitAtomicV1(ks *kernelState, i *ir.Instr) []p4.Stmt {
	g.ensureRegister(i.G)
	cond, ops := g.atomicOperands(i)
	idx := g.flatIndex(i)
	reg := regName(i.G)
	bits := p4Bits(i.G.Elem)

	old := g.fresh("rm")
	g.declLocal(old, bits)
	var out []p4.Stmt
	out = append(out, &p4.CallStmt{Recv: reg, Method: "read", Args: []p4.Expr{p4.FR(old), idx}})

	if i.AOp == "read" {
		t := g.declTemp(i)
		return append(out, &p4.Assign{LHS: t, RHS: p4.FR(old)})
	}
	if i.AOp == "write" {
		var v p4.Expr = &p4.IntLit{Val: 0}
		if len(ops) > 0 {
			v = ops[0]
		}
		return []p4.Stmt{&p4.CallStmt{Recv: reg, Method: "write", Args: []p4.Expr{idx, v}}}
	}

	upd := g.fresh("ru")
	g.declLocal(upd, bits)
	var updExpr p4.Expr
	var v p4.Expr = &p4.IntLit{Val: 1}
	if len(ops) > 0 {
		v = ops[0]
	}
	switch i.AOp {
	case "add":
		updExpr = &p4.Bin{Op: "+", X: p4.FR(old), Y: v}
	case "sub":
		updExpr = &p4.Bin{Op: "-", X: p4.FR(old), Y: v}
	case "sadd":
		updExpr = &p4.Bin{Op: "|+|", X: p4.FR(old), Y: v}
	case "ssub":
		updExpr = &p4.Bin{Op: "|-|", X: p4.FR(old), Y: v}
	case "or":
		updExpr = &p4.Bin{Op: "|", X: p4.FR(old), Y: v}
	case "and":
		updExpr = &p4.Bin{Op: "&", X: p4.FR(old), Y: v}
	case "xor":
		updExpr = &p4.Bin{Op: "^", X: p4.FR(old), Y: v}
	case "inc":
		updExpr = &p4.Bin{Op: "+", X: p4.FR(old), Y: &p4.IntLit{Val: 1}}
	case "dec":
		updExpr = &p4.Bin{Op: "|-|", X: p4.FR(old), Y: &p4.IntLit{Val: 1}}
	case "swap":
		updExpr = v
	case "min", "max":
		cmpOp := "<"
		if i.AOp == "max" {
			cmpOp = ">"
		}
		out = append(out, &p4.Assign{LHS: p4.FR(upd), RHS: p4.FR(old)},
			&p4.If{Cond: &p4.Bin{Op: cmpOp, X: v, Y: p4.FR(old)},
				Then: []p4.Stmt{&p4.Assign{LHS: p4.FR(upd), RHS: v}}})
	case "cas":
		var exp, des p4.Expr = &p4.IntLit{Val: 0}, &p4.IntLit{Val: 0}
		if len(ops) >= 2 {
			exp, des = ops[0], ops[1]
		}
		out = append(out, &p4.Assign{LHS: p4.FR(upd), RHS: p4.FR(old)},
			&p4.If{Cond: &p4.Bin{Op: "==", X: p4.FR(old), Y: exp},
				Then: []p4.Stmt{&p4.Assign{LHS: p4.FR(upd), RHS: des}}})
	default:
		g.fail("unsupported atomic op %q", i.AOp)
		return out
	}
	if updExpr != nil {
		out = append(out, &p4.Assign{LHS: p4.FR(upd), RHS: updExpr})
	}

	fin := upd
	if cond != nil {
		finv := g.fresh("rf")
		g.declLocal(finv, bits)
		out = append(out,
			&p4.Assign{LHS: p4.FR(finv), RHS: p4.FR(old)},
			&p4.If{Cond: cond, Then: []p4.Stmt{&p4.Assign{LHS: p4.FR(finv), RHS: p4.FR(upd)}}})
		fin = finv
	}
	out = append(out, &p4.CallStmt{Recv: reg, Method: "write", Args: []p4.Expr{idx, p4.FR(fin)}})
	var t *p4.FieldRef
	if st, ok := ks.sinkTarget(i); ok {
		k := int(st.Args[0].(*ir.Const).Uint()) % maxInt(st.Param.Count, 1)
		t = p4.FR("hdr", ks.hdr, argField(st.Param, k))
		ks.skip[st] = true
		g.vals[i] = t
	} else {
		t = g.declTemp(i)
	}
	if i.RetNew {
		out = append(out, &p4.Assign{LHS: t, RHS: p4.FR(fin)})
	} else {
		out = append(out, &p4.Assign{LHS: t, RHS: p4.FR(old)})
	}
	return out
}

// emitLookup generates a MAT for a _lookup_ array access (paper Fig. 9,
// third column) and binds the paired LookupVal result.
func (g *generator) emitLookup(ks *kernelState, i *ir.Instr) []p4.Stmt {
	m := i.G
	// One MAT per lookup memory object: P4 cannot apply a table twice,
	// which is precisely why the duplication pass clones the memory per
	// access (§VI-B). The stable name also lets the control plane
	// address managed tables.
	tname := "lu_" + m.Name
	if g.ctl.TableByName(tname) != nil {
		g.fail("lookup memory %q is accessed more than once on this device; enable lookup duplication (it was disabled) or restructure the kernel", m.Name)
		return nil
	}
	hit := g.declTemp(i) // bit<1>

	match := p4.MatchExact
	if m.LKind == ir.LookupRange {
		match = p4.MatchRange
	}
	// Simple keys (header fields, locals, constants) feed the match
	// crossbar directly; compound key expressions are staged through a
	// local first.
	keyExpr := g.valueExpr(i.Args[0])
	var pre []p4.Stmt
	switch keyExpr.(type) {
	case *p4.FieldRef, *p4.IntLit:
	default:
		keyLocal := tname + "_key"
		g.declLocal(keyLocal, p4Bits(m.KeyType))
		pre = append(pre, &p4.Assign{LHS: p4.FR(keyLocal), RHS: keyExpr})
		keyExpr = p4.FR(keyLocal)
	}
	tbl := &p4.Table{
		Name:    tname,
		Keys:    []*p4.TableKey{{Expr: keyExpr, Match: match}},
		Actions: []string{"NoAction"},
		Default: &p4.ActionCall{Name: "NoAction"},
		Const:   !m.Managed,
		Size:    maxInt(m.NumElems(), 1),
	}

	// The hit action writes the matched value into a local bound to the
	// companion LookupVal instruction.
	var valLocal string
	if m.LKind == ir.LookupExact || m.LKind == ir.LookupRange {
		valLocal = tname + "_val"
		g.declLocal(valLocal, p4Bits(m.Elem))
		an := tname + "_hit"
		g.ctl.Actions = append(g.ctl.Actions, &p4.ActionDecl{
			Name:   an,
			Params: []*p4.Field{{Name: "v", Bits: p4Bits(m.Elem)}},
			Body:   []p4.Stmt{&p4.Assign{LHS: p4.FR(valLocal), RHS: p4.FR("v")}},
		})
		tbl.Actions = append(tbl.Actions, an)
		switch m.LKind {
		case ir.LookupExact:
			for k := 0; k+1 < len(m.Init); k += 2 {
				tbl.Entries = append(tbl.Entries, &p4.Entry{
					Keys:   []p4.KeyValue{{Value: uint64(m.Init[k]), PrefixLen: -1}},
					Action: &p4.ActionCall{Name: an, Args: []uint64{uint64(m.Init[k+1])}},
				})
			}
		case ir.LookupRange:
			for k := 0; k+2 < len(m.Init); k += 3 {
				tbl.Entries = append(tbl.Entries, &p4.Entry{
					Keys:     []p4.KeyValue{{Value: uint64(m.Init[k]), Hi: uint64(m.Init[k+1]), PrefixLen: -1}},
					Action:   &p4.ActionCall{Name: an, Args: []uint64{uint64(m.Init[k+2])}},
					Priority: len(tbl.Entries),
				})
			}
		}
	} else {
		// Set membership: a hit action with no data.
		an := tname + "_hit"
		g.ctl.Actions = append(g.ctl.Actions, &p4.ActionDecl{Name: an})
		tbl.Actions = append(tbl.Actions, an)
		for _, k := range m.Init {
			tbl.Entries = append(tbl.Entries, &p4.Entry{
				Keys:   []p4.KeyValue{{Value: uint64(k), PrefixLen: -1}},
				Action: &p4.ActionCall{Name: an},
			})
		}
	}
	g.ctl.Tables = append(g.ctl.Tables, tbl)

	// Bind the companion LookupVal (if any) to the value local, and
	// fuse the lowering's miss-preserving select: pre-loading the value
	// local with the previous value gives the MAT action itself
	// "matched-or-old" semantics, saving a dependent select stage.
	if valLocal != "" {
		var lookupVal *ir.Instr
		ks.f.Instrs(func(b *ir.Block, lv *ir.Instr) bool {
			if lv.Op == ir.OpLookupVal && len(lv.Args) == 1 && lv.Args[0] == ir.Value(i) {
				g.vals[lv] = p4.FR(valLocal)
				lookupVal = lv
			}
			return true
		})
		if lookupVal != nil {
			if sel, prev := missSelect(ks, i, lookupVal); sel != nil {
				pre = append(pre, &p4.Assign{LHS: p4.FR(valLocal), RHS: g.valueExpr(prev)})
				g.vals[sel] = p4.FR(valLocal)
				ks.skip[sel] = true
			}
		}
	}
	return append(pre, &p4.ApplyTable{Table: tname, HitVar: hit.Parts[0]})
}

// missSelect finds the lowering pattern select(hit, lookupval, prev)
// for a lookup instruction, returning the select and the previous
// value. The previous value must be defined before the lookup (it
// always is: the lowering loads it first).
func missSelect(ks *kernelState, lk, lv *ir.Instr) (*ir.Instr, ir.Value) {
	var sel *ir.Instr
	var prev ir.Value
	ks.f.Instrs(func(b *ir.Block, s *ir.Instr) bool {
		if s.Op == ir.OpSelect && len(s.Args) == 3 &&
			s.Args[0] == ir.Value(lk) && s.Args[1] == ir.Value(lv) {
			sel = s
			prev = s.Args[2]
			return false
		}
		return true
	})
	if sel == nil {
		return nil, nil
	}
	// The previous value must not itself be produced after the lookup
	// in the same block (it never is in lowered code, but be safe).
	if pi, ok := prev.(*ir.Instr); ok {
		if pi.Block() == lk.Block() {
			after := false
			seenLk := false
			for _, x := range lk.Block().Instrs {
				if x == lk {
					seenLk = true
				}
				if x == pi && seenLk {
					after = true
				}
			}
			if after {
				return nil, nil
			}
		}
	}
	return sel, prev
}

// emitHash declares a hash extern and calls it.
func (g *generator) emitHash(ks *kernelState, i *ir.Instr) []p4.Stmt {
	if i.TargetNS != "" && i.TargetNS != string(g.tgt) {
		if !(i.TargetNS == "tna" && g.tgt == p4.TargetTNA) &&
			!(i.TargetNS == "v1" && g.tgt == p4.TargetV1Model) {
			g.fail("intrinsic ncl::%s::%s is not available on target %s", i.TargetNS, i.HashKind, g.tgt)
			return nil
		}
	}
	name := g.fresh("hx")
	g.ctl.Hashes = append(g.ctl.Hashes, &p4.HashDecl{Name: name, Algo: i.HashKind, Bits: p4Bits(i.Ty)})
	var args []p4.Expr
	for _, a := range i.Args {
		args = append(args, g.valueExpr(a))
	}
	t := g.declTemp(i)
	return []p4.Stmt{&p4.Assign{LHS: t, RHS: &p4.CallExpr{Recv: name, Method: "get", Args: args}}}
}

// emitCLZ counts leading zeros with a longest-prefix-match table
// (§VI-B: "counting leading zeros/ones can be done with an LPM
// table"); trailing zeros isolate the lowest set bit (x & -x) and use
// an exact-match table over the resulting powers of two.
func (g *generator) emitCLZ(ks *kernelState, i *ir.Instr) []p4.Stmt {
	bits := p4Bits(i.Ty)
	tname := g.fresh("clz")
	if i.Op == ir.OpCTZ {
		tname = g.fresh("ctz")
	}
	keyLocal := tname + "_key"
	g.declLocal(keyLocal, bits)
	t := g.declTemp(i)
	an := tname + "_set"
	g.ctl.Actions = append(g.ctl.Actions, &p4.ActionDecl{
		Name:   an,
		Params: []*p4.Field{{Name: "n", Bits: bits}},
		Body:   []p4.Stmt{&p4.Assign{LHS: t, RHS: p4.FR("n")}},
	})
	match := p4.MatchLPM
	if i.Op == ir.OpCTZ {
		match = p4.MatchExact
	}
	tbl := &p4.Table{
		Name:    tname,
		Keys:    []*p4.TableKey{{Expr: p4.FR(keyLocal), Match: match}},
		Actions: []string{an},
		Default: &p4.ActionCall{Name: an, Args: []uint64{uint64(bits)}},
		Const:   true,
		Size:    bits + 1,
	}
	for k := 0; k < bits; k++ {
		if i.Op == ir.OpCLZ {
			// clz == k when the leading one is at position bits-1-k.
			tbl.Entries = append(tbl.Entries, &p4.Entry{
				Keys:   []p4.KeyValue{{Value: uint64(1) << uint(bits-1-k), PrefixLen: k + 1}},
				Action: &p4.ActionCall{Name: an, Args: []uint64{uint64(k)}},
			})
		} else {
			// ctz == k when the isolated lowest bit is 1<<k.
			tbl.Entries = append(tbl.Entries, &p4.Entry{
				Keys:   []p4.KeyValue{{Value: uint64(1) << uint(k), PrefixLen: -1}},
				Action: &p4.ActionCall{Name: an, Args: []uint64{uint64(k)}},
			})
		}
	}
	g.ctl.Tables = append(g.ctl.Tables, tbl)
	key := g.valueExpr(i.Args[0])
	if i.Op == ir.OpCTZ {
		// Isolate the lowest set bit: x & (0 - x).
		key = &p4.Bin{Op: "&", X: key,
			Y: &p4.Bin{Op: "-", X: &p4.IntLit{Val: 0, Bits: bits}, Y: g.valueExpr(i.Args[0])}}
	}
	return []p4.Stmt{
		&p4.Assign{LHS: p4.FR(keyLocal), RHS: key},
		&p4.ApplyTable{Table: tname},
	}
}
