package codegen

import (
	"fmt"

	"netcl/internal/ir"
	"netcl/internal/p4"
)

// emitInstr translates one IR instruction into P4 statements, binding
// the instruction's value (if any) in g.vals.
func (g *generator) emitInstr(ks *kernelState, i *ir.Instr) []p4.Stmt {
	switch i.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpSDiv, ir.OpURem,
		ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr,
		ir.OpAShr, ir.OpSAddSat, ir.OpSSubSat:
		rhs := &p4.Bin{Op: binOp(i), X: g.valueExpr(i.Args[0]), Y: g.valueExpr(i.Args[1])}
		// Single-use operations over stable operands fold into their
		// consumer as an expression tree (like handwritten P4 writes
		// "(share >> w) & 1" inline), spending no PHV local.
		if ks.uses[ir.Value(i)] == 1 && stableExpr(rhs, 0) <= 4 {
			g.vals[i] = rhs
			return nil
		}
		t := g.sinkOrTemp(ks, i)
		return []p4.Stmt{&p4.Assign{LHS: t, RHS: rhs}}

	case ir.OpMin, ir.OpMax:
		t := g.declTemp(i)
		cmp := "<"
		if i.Op == ir.OpMax {
			cmp = ">"
		}
		if i.Ty.Signed {
			cmp = "s" + cmp
		}
		return []p4.Stmt{
			&p4.Assign{LHS: t, RHS: g.valueExpr(i.Args[0])},
			&p4.If{
				Cond: &p4.Bin{Op: cmp, X: g.valueExpr(i.Args[1]), Y: g.valueExpr(i.Args[0])},
				Then: []p4.Stmt{&p4.Assign{LHS: t, RHS: g.valueExpr(i.Args[1])}},
			},
		}

	case ir.OpICmp:
		cmp := &p4.Bin{Op: predOp(i.Pred), X: g.valueExpr(i.Args[0]), Y: g.valueExpr(i.Args[1])}
		// Compares consumed only as conditions (branches, selects,
		// atomic predicates) stay expressions: Tofino evaluates them in
		// gateways/SALU predicates for free. Only value uses (stores,
		// arithmetic) materialize a bit<1> local.
		if !cmpNeedsValue(ks, i) {
			g.vals[i] = cmp
			return nil
		}
		t := g.declTemp(i)
		return []p4.Stmt{
			&p4.Assign{LHS: t, RHS: &p4.IntLit{Val: 0, Bits: 1}},
			&p4.If{Cond: cmp, Then: []p4.Stmt{&p4.Assign{LHS: t, RHS: &p4.IntLit{Val: 1, Bits: 1}}}},
		}

	case ir.OpSelect:
		t := g.sinkOrTemp(ks, i)
		return []p4.Stmt{&p4.If{
			Cond: g.condExpr(i.Args[0]),
			Then: []p4.Stmt{&p4.Assign{LHS: t, RHS: g.valueExpr(i.Args[1])}},
			Else: []p4.Stmt{&p4.Assign{LHS: t, RHS: g.valueExpr(i.Args[2])}},
		}}

	case ir.OpTrunc, ir.OpZExt, ir.OpSExt:
		// Width conversions are free on Tofino (crossbar slicing and
		// zero-fill); alias the cast expression instead of spending a
		// VLIW slot and a dependence level on a copy.
		g.vals[i] = &p4.Cast{Bits: p4Bits(i.Ty), Signed: i.Op == ir.OpSExt, X: g.valueExpr(i.Args[0])}
		return nil

	case ir.OpAlloca:
		return g.emitAlloca(ks, i)
	case ir.OpLoad:
		return g.emitLoad(ks, i)
	case ir.OpStore:
		return g.emitStore(ks, i)
	case ir.OpLoadMsg:
		return g.emitLoadMsg(ks, i)
	case ir.OpStoreMsg:
		return g.emitStoreMsg(ks, i)

	case ir.OpMsgField:
		g.vals[i] = p4.FR("hdr", "netcl", i.Field)
		return nil

	case ir.OpAtomicRMW:
		if g.tgt == p4.TargetTNA {
			return g.emitAtomicTNA(ks, i)
		}
		return g.emitAtomicV1(ks, i)

	case ir.OpLookup:
		return g.emitLookup(ks, i)
	case ir.OpLookupVal:
		// Bound when the paired lookup was emitted.
		if _, ok := g.vals[i]; !ok {
			g.fail("lookupval before lookup")
		}
		return nil

	case ir.OpHash:
		return g.emitHash(ks, i)
	case ir.OpRand:
		name := g.fresh("rnd")
		g.ctl.Hashes = append(g.ctl.Hashes, &p4.HashDecl{Name: name, Algo: "random", Bits: p4Bits(i.Ty)})
		t := g.declTemp(i)
		return []p4.Stmt{&p4.Assign{LHS: t, RHS: &p4.CallExpr{Recv: name, Method: "get"}}}

	case ir.OpByteSwap:
		t := g.declTemp(i)
		return []p4.Stmt{&p4.Assign{LHS: t, RHS: bswapExpr(g.valueExpr(i.Args[0]), p4Bits(i.Ty))}}

	case ir.OpCLZ, ir.OpCTZ:
		return g.emitCLZ(ks, i)
	}
	g.fail("cannot generate code for %s", i)
	return nil
}

// stableExpr returns the leaf count of an expression whose leaves are
// all constants or control locals (single-assignment temps), or a
// large sentinel if any leaf is mutable header/metadata state or the
// tree is too deep to fold.
func stableExpr(e p4.Expr, depth int) int {
	if depth > 4 {
		return 1 << 10
	}
	switch x := e.(type) {
	case *p4.IntLit:
		return 1
	case *p4.FieldRef:
		if len(x.Parts) == 1 {
			return 1 // control local: written before use, never after
		}
		return 1 << 10 // header/metadata fields are mutable
	case *p4.Bin:
		return stableExpr(x.X, depth+1) + stableExpr(x.Y, depth+1)
	case *p4.Cast:
		return stableExpr(x.X, depth+1)
	case *p4.Un:
		return stableExpr(x.X, depth+1)
	}
	return 1 << 10
}

// cmpNeedsValue reports whether any use of a compare requires a
// materialized bit value (rather than a condition position).
func cmpNeedsValue(ks *kernelState, i *ir.Instr) bool {
	need := false
	ks.f.Instrs(func(b *ir.Block, u *ir.Instr) bool {
		for pos, a := range u.Args {
			if a != ir.Value(i) {
				continue
			}
			switch {
			case u.Op == ir.OpBr && pos == 0:
			case u.Op == ir.OpSelect && pos == 0:
			case u.Op == ir.OpAtomicRMW && u.Cond && pos == u.NIdx:
			default:
				need = true
				return false
			}
		}
		return true
	})
	return need
}

func binOp(i *ir.Instr) string {
	switch i.Op {
	case ir.OpAdd:
		return "+"
	case ir.OpSub:
		return "-"
	case ir.OpMul:
		return "*"
	case ir.OpUDiv:
		return "/"
	case ir.OpSDiv:
		return "s/"
	case ir.OpURem:
		return "%"
	case ir.OpSRem:
		return "s%"
	case ir.OpAnd:
		return "&"
	case ir.OpOr:
		return "|"
	case ir.OpXor:
		return "^"
	case ir.OpShl:
		return "<<"
	case ir.OpLShr:
		return ">>"
	case ir.OpAShr:
		return "s>>"
	case ir.OpSAddSat:
		return "|+|"
	case ir.OpSSubSat:
		return "|-|"
	}
	return "?"
}

func predOp(p ir.Pred) string {
	switch p {
	case ir.PredEQ:
		return "=="
	case ir.PredNE:
		return "!="
	case ir.PredULT:
		return "<"
	case ir.PredULE:
		return "<="
	case ir.PredUGT:
		return ">"
	case ir.PredUGE:
		return ">="
	case ir.PredSLT:
		return "s<"
	case ir.PredSLE:
		return "s<="
	case ir.PredSGT:
		return "s>"
	case ir.PredSGE:
		return "s>="
	}
	return "?"
}

// bswapExpr builds a shift/mask byte swap expression of the given
// width (Tofino does this in one stage; the single assignment keeps
// the resource model faithful).
func bswapExpr(x p4.Expr, bits int) p4.Expr {
	n := bits / 8
	var out p4.Expr
	for b := 0; b < n; b++ {
		// Byte b moves to position n-1-b.
		shiftIn := uint64(8 * b)
		shiftOut := uint64(8 * (n - 1 - b))
		term := p4.Expr(&p4.Bin{Op: "&", X: &p4.Bin{Op: ">>", X: x, Y: &p4.IntLit{Val: shiftIn}}, Y: &p4.IntLit{Val: 0xFF}})
		term = &p4.Bin{Op: "<<", X: term, Y: &p4.IntLit{Val: shiftOut}}
		if out == nil {
			out = term
		} else {
			out = &p4.Bin{Op: "|", X: out, Y: term}
		}
	}
	return out
}

// Local memory ---------------------------------------------------------

// allocaSlots names the locals backing an array alloca.
func (g *generator) allocaSlot(i *ir.Instr, k int) string {
	if i.Count == 1 {
		return fmt.Sprintf("v%d_%s", i.ID, g.curKernelTag)
	}
	return fmt.Sprintf("v%d_%s_%d", i.ID, g.curKernelTag, k)
}

func (g *generator) emitAlloca(ks *kernelState, i *ir.Instr) []p4.Stmt {
	for k := 0; k < i.Count; k++ {
		g.declLocal(g.allocaSlot(i, k), p4Bits(i.Elem))
	}
	g.vals[i] = p4.FR(g.allocaSlot(i, 0)) // placeholder; loads/stores resolve slots
	return nil
}

func (g *generator) emitLoad(ks *kernelState, i *ir.Instr) []p4.Stmt {
	al, ok := i.Args[0].(*ir.Instr)
	if !ok || al.Op != ir.OpAlloca {
		g.fail("load from non-alloca")
		return nil
	}
	if c, isConst := i.Args[1].(*ir.Const); isConst {
		slot := int(c.Uint()) % maxInt(al.Count, 1)
		// φ-variables are written strictly before they are read, so the
		// value can be read in place without a copy.
		if al.PhiVar {
			g.vals[i] = p4.FR(g.allocaSlot(al, slot))
			return nil
		}
		t := g.declTemp(i)
		return []p4.Stmt{&p4.Assign{LHS: t, RHS: p4.FR(g.allocaSlot(al, slot))}}
	}
	t := g.declTemp(i)
	// Dynamic index: per-element read actions selected by an index
	// table (paper Fig. 9, rightmost column).
	return g.indexTable(ks, i, al.Count, func(k int) []p4.Stmt {
		return []p4.Stmt{&p4.Assign{LHS: t, RHS: p4.FR(g.allocaSlot(al, k))}}
	}, i.Args[1], "r")
}

func (g *generator) emitStore(ks *kernelState, i *ir.Instr) []p4.Stmt {
	al, ok := i.Args[0].(*ir.Instr)
	if !ok || al.Op != ir.OpAlloca {
		g.fail("store to non-alloca")
		return nil
	}
	val := g.valueExpr(i.Args[2])
	if c, isConst := i.Args[1].(*ir.Const); isConst {
		slot := int(c.Uint()) % maxInt(al.Count, 1)
		return []p4.Stmt{&p4.Assign{LHS: p4.FR(g.allocaSlot(al, slot)), RHS: val}}
	}
	// Stage the value in a temp so index-table actions can read it.
	stage := g.fresh("stv")
	g.declLocal(stage, p4Bits(al.Elem))
	pre := []p4.Stmt{&p4.Assign{LHS: p4.FR(stage), RHS: val}}
	return append(pre, g.indexTable(ks, i, al.Count, func(k int) []p4.Stmt {
		return []p4.Stmt{&p4.Assign{LHS: p4.FR(g.allocaSlot(al, k)), RHS: p4.FR(stage)}}
	}, i.Args[1], "w")...)
}

func (g *generator) emitLoadMsg(ks *kernelState, i *ir.Instr) []p4.Stmt {
	if c, isConst := i.Args[0].(*ir.Const); isConst {
		k := int(c.Uint()) % maxInt(i.Param.Count, 1)
		// Alias the header field directly when no later store to the
		// same element can be observed by a use of this load; written
		// arguments otherwise need a copy to preserve the loaded value.
		if !ks.stored[i.Param] || loadAliasSafe(i, k) {
			g.vals[i] = p4.FR("hdr", ks.hdr, argField(i.Param, k))
			return nil
		}
		t := g.declTemp(i)
		return []p4.Stmt{&p4.Assign{LHS: t, RHS: p4.FR("hdr", ks.hdr, argField(i.Param, k))}}
	}
	t := g.declTemp(i)
	return g.indexTable(ks, i, i.Param.Count, func(k int) []p4.Stmt {
		return []p4.Stmt{&p4.Assign{LHS: t, RHS: p4.FR("hdr", ks.hdr, argField(i.Param, k))}}
	}, i.Args[0], "r")
}

// loadAliasSafe reports whether a const-index LoadMsg can read its
// header field in place: every use must sit in the load's own block
// before any store to the same message element.
func loadAliasSafe(ld *ir.Instr, elem int) bool {
	blk := ld.Block()
	if blk == nil {
		return false
	}
	// Count uses and ensure they are all in this block.
	uses := 0
	otherBlock := false
	ld.Block().Func().Instrs(func(b *ir.Block, u *ir.Instr) bool {
		for _, a := range u.Args {
			if a == ir.Value(ld) {
				uses++
				if b != blk {
					otherBlock = true
				}
			}
		}
		return true
	})
	if otherBlock {
		return false
	}
	// A store whose value may be sunk into its producer effectively
	// writes at the producer's position; treat those producers as
	// store events too.
	effStore := map[*ir.Instr]bool{}
	for _, x := range blk.Instrs {
		if x.Op != ir.OpStoreMsg || x.Param != ld.Param {
			continue
		}
		hits := false
		if c, ok := x.Args[0].(*ir.Const); ok {
			hits = int(c.Uint())%maxInt(ld.Param.Count, 1) == elem
		} else {
			hits = true
		}
		if !hits {
			continue
		}
		effStore[x] = true
		if v, ok := x.Args[1].(*ir.Instr); ok && v.Block() == blk {
			effStore[v] = true
		}
	}
	// Walk the block after the load: all uses must precede any
	// (effective) store to the same element.
	seen := false
	remaining := uses
	for _, x := range blk.Instrs {
		if x == ld {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		for _, a := range x.Args {
			if a == ir.Value(ld) {
				remaining--
			}
		}
		if effStore[x] && remaining > 0 {
			return false
		}
	}
	return remaining == 0
}

func (g *generator) emitStoreMsg(ks *kernelState, i *ir.Instr) []p4.Stmt {
	val := g.valueExpr(i.Args[1])
	if c, isConst := i.Args[0].(*ir.Const); isConst {
		k := int(c.Uint()) % maxInt(i.Param.Count, 1)
		return []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", ks.hdr, argField(i.Param, k)), RHS: val}}
	}
	stage := g.fresh("stv")
	g.declLocal(stage, p4Bits(i.Param.Ty))
	pre := []p4.Stmt{&p4.Assign{LHS: p4.FR(stage), RHS: val}}
	return append(pre, g.indexTable(ks, i, i.Param.Count, func(k int) []p4.Stmt {
		return []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", ks.hdr, argField(i.Param, k)), RHS: p4.FR(stage)}}
	}, i.Args[0], "w")...)
}

// indexTable builds a MAT keyed on a staged index local whose actions
// perform per-element accesses; this also provides runtime bounds
// checking for free (out-of-range indices miss and do nothing).
func (g *generator) indexTable(ks *kernelState, i *ir.Instr, count int, body func(k int) []p4.Stmt, idx ir.Value, mode string) []p4.Stmt {
	tname := g.fresh(fmt.Sprintf("idx_%s", mode))
	keyLocal := tname + "_key"
	g.declLocal(keyLocal, 32)
	tbl := &p4.Table{
		Name:    tname,
		Keys:    []*p4.TableKey{{Expr: p4.FR(keyLocal), Match: p4.MatchExact}},
		Actions: []string{"NoAction"},
		Default: &p4.ActionCall{Name: "NoAction"},
		Const:   true,
		Size:    count,
	}
	for k := 0; k < count; k++ {
		an := fmt.Sprintf("%s_e%d", tname, k)
		g.ctl.Actions = append(g.ctl.Actions, &p4.ActionDecl{Name: an, Body: body(k)})
		tbl.Actions = append(tbl.Actions, an)
		tbl.Entries = append(tbl.Entries, &p4.Entry{
			Keys:   []p4.KeyValue{{Value: uint64(k), PrefixLen: -1}},
			Action: &p4.ActionCall{Name: an},
		})
	}
	g.ctl.Tables = append(g.ctl.Tables, tbl)
	return []p4.Stmt{
		&p4.Assign{LHS: p4.FR(keyLocal), RHS: &p4.Cast{Bits: 32, X: g.valueExpr(idx)}},
		&p4.ApplyTable{Table: tname},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
