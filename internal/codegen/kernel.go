package codegen

import (
	"fmt"

	"netcl/internal/ir"
	"netcl/internal/p4"
	"netcl/internal/wire"
)

// kernel-emission state (reset per kernel).
type kernelState struct {
	f    *ir.Func
	pdt  *ir.PostDomTree
	uses map[ir.Value]int
	hdr  string // data header name
	// stored marks message parameters written somewhere in the kernel.
	stored map[*ir.MsgParam]bool
	// skip marks StoreMsg instructions whose value was sunk into the
	// producing instruction (result written straight to the header
	// field, saving a PHV temporary).
	skip map[*ir.Instr]bool
	// reach is strict block reachability (for join detection).
	reach map[*ir.Block]map[*ir.Block]bool
	// emitted guards against emitting side-effecting blocks twice
	// during structurization-by-duplication.
	emitted map[*ir.Block]bool
}

// sinkTarget reports whether i's only use is a constant-index StoreMsg
// in the same block with no intervening access to the same parameter;
// if so the producer can write the header field directly.
func (ks *kernelState) sinkTarget(i *ir.Instr) (*ir.Instr, bool) {
	if ks.uses[ir.Value(i)] != 1 {
		return nil, false
	}
	blk := i.Block()
	if blk == nil {
		return nil, false
	}
	seen := false
	for _, x := range blk.Instrs {
		if x == i {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		if x.Op == ir.OpStoreMsg && len(x.Args) == 2 && x.Args[1] == ir.Value(i) {
			if _, isConst := x.Args[0].(*ir.Const); isConst {
				return x, true
			}
			return nil, false
		}
		// Any other access to the same argument between producer and
		// store forbids the sink.
		if (x.Op == ir.OpLoadMsg || x.Op == ir.OpStoreMsg) && usesValue(x, i) {
			return nil, false
		}
		for _, a := range x.Args {
			if a == ir.Value(i) {
				return nil, false // used before the store
			}
		}
	}
	return nil, false
}

func usesValue(x *ir.Instr, v *ir.Instr) bool {
	for _, a := range x.Args {
		if a == ir.Value(v) {
			return true
		}
	}
	return false
}

func (g *generator) genKernel(f *ir.Func) []p4.Stmt {
	g.curKernelTag = fmt.Sprintf("c%d", f.Comp)
	ks := &kernelState{
		f:       f,
		pdt:     ir.BuildPostDomTree(f),
		uses:    useCounts(f),
		hdr:     dataHeaderName(f.Comp),
		stored:  map[*ir.MsgParam]bool{},
		skip:    map[*ir.Instr]bool{},
		reach:   blockReach(f),
		emitted: map[*ir.Block]bool{},
	}
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpStoreMsg {
			ks.stored[i.Param] = true
		}
		return true
	})
	body := []p4.Stmt{
		&p4.Comment{Text: fmt.Sprintf("kernel %s (computation %d)", f.Name, f.Comp)},
		// Predicate variable for structurization (§VI-B): early kernel
		// returns set it so continuation regions can be guarded.
		&p4.Assign{LHS: p4.FR(g.doneVar()), RHS: &p4.IntLit{Val: 0, Bits: 1}},
	}
	g.declLocal(g.doneVar(), 1)
	return append(body, g.emitRegion(ks, f.Entry(), nil)...)
}

// doneVar names the current kernel's return-predicate variable.
func (g *generator) doneVar() string { return "done_" + g.curKernelTag }

// blockReach computes strict reachability between blocks; entries
// include the block itself only if a cycle exists (never, post-DAG).
func blockReach(f *ir.Func) map[*ir.Block]map[*ir.Block]bool {
	out := map[*ir.Block]map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		seen := map[*ir.Block]bool{}
		stack := append([]*ir.Block(nil), b.Succs()...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] {
				continue
			}
			seen[x] = true
			stack = append(stack, x.Succs()...)
		}
		out[b] = seen
	}
	return out
}

func useCounts(f *ir.Func) map[ir.Value]int {
	uses := map[ir.Value]int{}
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		for _, a := range i.Args {
			uses[a]++
		}
		return true
	})
	return uses
}

// emitRegion linearizes the DAG region [b, stop) into structured P4,
// following the paper's reverse-postorder scope construction: branch
// targets open sub-scopes and the join (immediate postdominator) is
// emitted in the parent scope.
func (g *generator) emitRegion(ks *kernelState, b, stop *ir.Block) []p4.Stmt {
	var out []p4.Stmt
	for b != nil && b != stop {
		if ks.emitted[b] && blockHasSideEffects(b) {
			g.fail("kernel %s: unstructured control flow would duplicate side-effecting block %s", ks.f.Name, b.Name)
			return out
		}
		ks.emitted[b] = true
		term := b.Term()
		for _, i := range b.Instrs {
			if i == term {
				break
			}
			if ks.skip[i] {
				continue
			}
			out = append(out, g.emitInstr(ks, i)...)
		}
		switch term.Op {
		case ir.OpJmp:
			b = term.Targets[0]
		case ir.OpRetAction:
			out = append(out, g.emitRet(ks, term)...)
			return out
		case ir.OpBr:
			tTgt, fTgt := term.Targets[0], term.Targets[1]
			join := ks.pdt.IPDom(b)
			cond := g.condExpr(term.Args[0])
			guarded := false
			if join == nil {
				// Some arm exits the kernel. The continuation is the
				// target the other arm can fall through to (an
				// if-without-else shape after early returns); since the
				// exiting paths must skip it, it is guarded by the
				// kernel's return predicate.
				switch {
				case ks.reach[tTgt][fTgt]:
					join = fTgt
					guarded = true
				case ks.reach[fTgt][tTgt]:
					join = tTgt
					guarded = true
				default:
					// Disjoint arms: both end in returns (or at the
					// enclosing join).
					join = stop
				}
			}
			thenS := g.emitRegion(ks, tTgt, join)
			elseS := g.emitRegion(ks, fTgt, join)
			out = append(out, &p4.If{Cond: cond, Then: thenS, Else: elseS})
			if guarded && join != nil && join != stop {
				rest := g.emitRegion(ks, join, stop)
				out = append(out, &p4.If{
					Cond: &p4.Bin{Op: "==", X: p4.FR(g.doneVar()), Y: &p4.IntLit{Val: 0, Bits: 1}},
					Then: rest,
				})
				return out
			}
			b = join
		default:
			g.fail("kernel %s: block %s has no terminator", ks.f.Name, b.Name)
			return out
		}
	}
	return out
}

func blockHasSideEffects(b *ir.Block) bool {
	for _, i := range b.Instrs {
		if i.IsTerminator() {
			continue
		}
		if i.HasSideEffects() || i.Op == ir.OpAtomicRMW {
			return true
		}
	}
	return false
}

// emitRet records the selected action in the NetCL header and applies
// the runtime's 4-tuple update *specialized for the statically-known
// action* (instead of a generic act-dispatch chain after the kernel,
// which would cost an extra dependent stage on Tofino).
func (g *generator) emitRet(ks *kernelState, t *ir.Instr) []p4.Stmt {
	code := map[ir.ActionKind]int{
		ir.ActPass: wire.ActPass, ir.ActDrop: wire.ActDrop,
		ir.ActSendHost: wire.ActSendHost, ir.ActSendDevice: wire.ActSendDevice,
		ir.ActMulticast: wire.ActMulticast, ir.ActReflect: wire.ActReflect,
		ir.ActReflectLong: wire.ActReflectLong,
	}[t.ActionKind]
	out := []p4.Stmt{
		&p4.Assign{LHS: p4.FR(g.doneVar()), RHS: &p4.IntLit{Val: 1, Bits: 1}},
		&p4.Assign{
			LHS: p4.FR("hdr", "netcl", "act"),
			RHS: &p4.IntLit{Val: uint64(code), Bits: 8},
		},
	}
	var arg p4.Expr
	if len(t.Args) > 0 {
		arg = g.valueExpr(t.Args[0])
		out = append(out, &p4.Assign{LHS: p4.FR("hdr", "netcl", "arg"), RHS: arg})
	}
	none := &p4.IntLit{Val: wire.None, Bits: 16}
	setNH := func(e p4.Expr) p4.Stmt { return &p4.Assign{LHS: p4.FR("meta", "nexthop"), RHS: e} }
	setTo := func(e p4.Expr) p4.Stmt { return &p4.Assign{LHS: p4.FR("hdr", "netcl", "to"), RHS: e} }
	setDst := func(e p4.Expr) p4.Stmt { return &p4.Assign{LHS: p4.FR("hdr", "netcl", "dst"), RHS: e} }
	switch t.ActionKind {
	case ir.ActDrop:
		out = append(out, &p4.CallStmt{Method: "mark_drop"})
	case ir.ActSendHost:
		out = append(out, setDst(arg), setTo(none), setNH(arg))
	case ir.ActSendDevice:
		out = append(out, setTo(arg), setNH(arg))
	case ir.ActMulticast:
		out = append(out,
			setTo(&p4.IntLit{Val: wire.AnyDevice, Bits: 16}),
			&p4.Assign{LHS: p4.FR("meta", "mcast_grp"), RHS: arg})
	case ir.ActReflect:
		out = append(out, &p4.If{
			Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "netcl", "from"), Y: none},
			Then: []p4.Stmt{setDst(p4.FR("hdr", "netcl", "src")), setTo(none), setNH(p4.FR("hdr", "netcl", "src"))},
			Else: []p4.Stmt{setTo(p4.FR("hdr", "netcl", "from")), setNH(p4.FR("hdr", "netcl", "from"))},
		})
	case ir.ActReflectLong:
		out = append(out, setDst(p4.FR("hdr", "netcl", "src")), setTo(none), setNH(p4.FR("hdr", "netcl", "src")))
	default: // pass(): continue to the destination host.
		out = append(out, setTo(none), setNH(p4.FR("hdr", "netcl", "dst")))
	}
	return out
}

// Value plumbing -------------------------------------------------------

func p4Bits(t ir.Type) int {
	if t.Bits < 1 {
		return 8
	}
	return t.Bits
}

// tempName is the P4 local holding an instruction result.
func (g *generator) tempName(i *ir.Instr) string {
	return fmt.Sprintf("t%d_%s", i.ID, g.curKernelTag)
}

// sinkOrTemp returns the destination for i's result: the header field
// of a single-use message store (sunk, saving PHV) or a fresh local.
func (g *generator) sinkOrTemp(ks *kernelState, i *ir.Instr) *p4.FieldRef {
	if st, ok := ks.sinkTarget(i); ok {
		k := int(st.Args[0].(*ir.Const).Uint()) % maxInt(st.Param.Count, 1)
		dest := p4.FR("hdr", ks.hdr, argField(st.Param, k))
		ks.skip[st] = true
		g.vals[i] = dest
		return dest
	}
	return g.declTemp(i)
}

// declTemp declares (once) and returns the local for i.
func (g *generator) declTemp(i *ir.Instr) *p4.FieldRef {
	name := g.tempName(i)
	g.declLocal(name, p4Bits(i.Ty))
	fr := p4.FR(name)
	g.vals[i] = fr
	return fr
}

func (g *generator) declLocal(name string, bits int) {
	for _, l := range g.ctl.Locals {
		if l.Name == name {
			return
		}
	}
	g.ctl.Locals = append(g.ctl.Locals, &p4.Field{Name: name, Bits: bits})
}

// valueExpr returns the P4 expression for an IR value.
func (g *generator) valueExpr(v ir.Value) p4.Expr {
	switch x := v.(type) {
	case *ir.Const:
		return &p4.IntLit{Val: x.Uint(), Bits: p4Bits(x.Ty)}
	case *ir.Instr:
		if e, ok := g.vals[x]; ok {
			return e
		}
		g.fail("use of unemitted value %s", x.Ref())
		return &p4.IntLit{Val: 0, Bits: p4Bits(x.Ty)}
	}
	g.fail("unknown value kind")
	return &p4.IntLit{}
}

// condExpr renders an i1 value as a P4 boolean expression.
func (g *generator) condExpr(v ir.Value) p4.Expr {
	e := g.valueExpr(v)
	if b, ok := e.(*p4.Bin); ok && isCmpOp(b.Op) {
		return b
	}
	if c, ok := e.(*p4.IntLit); ok {
		if c.Val != 0 {
			return &p4.Bin{Op: "==", X: &p4.IntLit{Val: 0, Bits: 1}, Y: &p4.IntLit{Val: 0, Bits: 1}}
		}
		return &p4.Bin{Op: "!=", X: &p4.IntLit{Val: 0, Bits: 1}, Y: &p4.IntLit{Val: 0, Bits: 1}}
	}
	return &p4.Bin{Op: "!=", X: e, Y: &p4.IntLit{Val: 0, Bits: 1}}
}

func isCmpOp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=", "s<", "s<=", "s>", "s>=":
		return true
	}
	return false
}
