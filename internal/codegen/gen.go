// Package codegen translates IR modules into P4 programs for the TNA
// and v1model targets (§VI-B "Code generation"). The emitted program
// embeds three layers, mirroring the paper's deployment story (§VI-C):
//
//  1. the *base program*: Ethernet/IPv4/UDP parsing, link-layer
//     forwarding, and the NetCL-port classifier;
//  2. the *device runtime*: NetCL header handling, the computation
//     dispatch switch, and the action→4-tuple epilogue;
//  3. the *generated kernels*: one region per kernel, produced from IR.
package codegen

import (
	"fmt"
	"sort"

	"netcl/internal/ir"
	"netcl/internal/p4"
	"netcl/internal/wire"
)

// Options configures code generation.
type Options struct {
	Target p4.Target
	// ProgName names the generated program.
	ProgName string
	// ECMP emits the equal-cost spreader (set_ecmp_group action,
	// flow-hash bucket pick, netcl_ecmp member table) alongside
	// netcl_fwd. Fabric deployments need it so the route installer can
	// spread flows over parallel uplinks; single-box programs skip it —
	// the dependent member table costs a pipeline stage.
	ECMP bool
}

// Generate emits a complete P4 program for the module.
func Generate(mod *ir.Module, opts Options) (*p4.Program, error) {
	if opts.ProgName == "" {
		opts.ProgName = mod.Name
	}
	g := &generator{
		mod:  mod,
		tgt:  opts.Target,
		ecmp: opts.ECMP,
		prog: &p4.Program{Name: opts.ProgName, Target: opts.Target},
		vals: map[ir.Value]p4.Expr{},
	}
	g.baseHeaders()
	g.dataHeaders()
	g.buildParser()
	g.buildIngress()
	if err := g.err; err != nil {
		return nil, err
	}
	if err := g.prog.Validate(); err != nil {
		return nil, err
	}
	return g.prog, nil
}

type generator struct {
	mod  *ir.Module
	tgt  p4.Target
	ecmp bool
	prog *p4.Program
	ctl  *p4.Control
	vals map[ir.Value]p4.Expr
	err  error
	// curKernelTag disambiguates temp names across kernels.
	curKernelTag string

	// uniq provides fresh suffixes for generated objects.
	uniq int
}

func (g *generator) fresh(prefix string) string {
	g.uniq++
	return fmt.Sprintf("%s_%d", prefix, g.uniq)
}

func (g *generator) fail(format string, args ...interface{}) {
	if g.err == nil {
		g.err = fmt.Errorf(format, args...)
	}
}

// comps returns the module's computation ids in ascending order.
func (g *generator) comps() []int {
	var out []int
	seen := map[int]bool{}
	for _, f := range g.mod.Funcs {
		c := int(f.Comp)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

func dataHeaderName(comp uint8) string { return fmt.Sprintf("d%d", comp) }

// argField names the header field of a kernel argument element.
func argField(p *ir.MsgParam, k int) string {
	if p.Count == 1 {
		return p.Name
	}
	return fmt.Sprintf("%s_%d", p.Name, k)
}

func (g *generator) baseHeaders() {
	g.prog.Headers = append(g.prog.Headers,
		&p4.HeaderDecl{Name: "ethernet", Fields: []*p4.Field{
			{Name: "dst_addr", Bits: 48}, {Name: "src_addr", Bits: 48}, {Name: "ether_type", Bits: 16},
		}},
		&p4.HeaderDecl{Name: "ipv4", Fields: []*p4.Field{
			{Name: "version_ihl", Bits: 8}, {Name: "diffserv", Bits: 8},
			{Name: "total_len", Bits: 16}, {Name: "identification", Bits: 16},
			{Name: "flags_frag", Bits: 16}, {Name: "ttl", Bits: 8},
			{Name: "protocol", Bits: 8}, {Name: "hdr_checksum", Bits: 16},
			{Name: "src_addr", Bits: 32}, {Name: "dst_addr", Bits: 32},
		}},
		&p4.HeaderDecl{Name: "udp", Fields: []*p4.Field{
			{Name: "src_port", Bits: 16}, {Name: "dst_port", Bits: 16},
			{Name: "length", Bits: 16}, {Name: "checksum", Bits: 16},
		}},
		&p4.HeaderDecl{Name: "netcl", Fields: []*p4.Field{
			{Name: "src", Bits: wire.SrcBits}, {Name: "dst", Bits: wire.DstBits},
			{Name: "from", Bits: wire.FromBits}, {Name: "to", Bits: wire.ToBits},
			{Name: "comp", Bits: wire.CompBits}, {Name: "act", Bits: wire.ActBits},
			{Name: "arg", Bits: wire.ArgBits},
		}},
	)
	g.prog.Metadata = append(g.prog.Metadata,
		&p4.Field{Name: "nexthop", Bits: 16},
		&p4.Field{Name: "mcast_grp", Bits: 16},
		&p4.Field{Name: "drop_flag", Bits: 1},
		&p4.Field{Name: "egress_port", Bits: 16},
	)
	if g.ecmp {
		g.prog.Metadata = append(g.prog.Metadata,
			&p4.Field{Name: "ecmp_grp", Bits: 16},
			&p4.Field{Name: "ecmp_bkt", Bits: 16},
		)
	}
}

// dataHeaders emits one NetCL data header per computation, with the
// kernel arguments flattened into scalar fields.
func (g *generator) dataHeaders() {
	seen := map[uint8]bool{}
	for _, f := range g.mod.Funcs {
		if seen[f.Comp] {
			continue
		}
		seen[f.Comp] = true
		h := &p4.HeaderDecl{Name: dataHeaderName(f.Comp)}
		for _, p := range f.Params {
			for k := 0; k < p.Count; k++ {
				h.Fields = append(h.Fields, &p4.Field{Name: argField(p, k), Bits: p.Ty.Bits})
			}
		}
		if len(h.Fields) == 0 {
			h.Fields = append(h.Fields, &p4.Field{Name: "pad", Bits: 8})
		}
		g.prog.Headers = append(g.prog.Headers, h)
	}
}

func (g *generator) buildParser() {
	ps := &p4.Parser{Name: "IgParser"}
	ps.States = append(ps.States,
		&p4.ParserState{Name: "start", Next: "parse_ethernet"},
		&p4.ParserState{
			Name: "parse_ethernet", Extracts: []string{"ethernet"},
			Select: &p4.Select{
				Key:     p4.FR("hdr", "ethernet", "ether_type"),
				Cases:   []p4.SelectCase{{Value: 0x0800, State: "parse_ipv4"}},
				Default: "accept",
			},
		},
		&p4.ParserState{
			Name: "parse_ipv4", Extracts: []string{"ipv4"},
			Select: &p4.Select{
				Key:     p4.FR("hdr", "ipv4", "protocol"),
				Cases:   []p4.SelectCase{{Value: 17, State: "parse_udp"}},
				Default: "accept",
			},
		},
		&p4.ParserState{
			Name: "parse_udp", Extracts: []string{"udp"},
			Select: &p4.Select{
				Key:     p4.FR("hdr", "udp", "dst_port"),
				Cases:   []p4.SelectCase{{Value: wire.NetCLPort, State: "parse_netcl"}},
				Default: "accept",
			},
		},
	)
	netclState := &p4.ParserState{
		Name: "parse_netcl", Extracts: []string{"netcl"},
		Select: &p4.Select{Key: p4.FR("hdr", "netcl", "comp"), Default: "accept"},
	}
	for _, c := range g.comps() {
		st := fmt.Sprintf("parse_d%d", c)
		netclState.Select.Cases = append(netclState.Select.Cases,
			p4.SelectCase{Value: uint64(c), State: st})
		ps.States = append(ps.States, &p4.ParserState{
			Name: st, Extracts: []string{dataHeaderName(uint8(c))}, Next: "accept",
		})
	}
	ps.States = append(ps.States[:4], append([]*p4.ParserState{netclState}, ps.States[4:]...)...)
	g.prog.Parser = ps
}

func (g *generator) buildIngress() {
	ctl := &p4.Control{Name: "In"}
	g.ctl = ctl
	g.prog.Ingress = ctl

	// Base program actions and tables. netcl_fwd resolves a destination
	// either to a port directly (set_port) or, when the ECMP spreader is
	// compiled in and several equal-cost uplinks lead there, to an ECMP
	// group (set_ecmp_group); netcl_ecmp then picks the member port by
	// flow hash.
	ctl.Actions = append(ctl.Actions,
		&p4.ActionDecl{
			Name:   "set_port",
			Params: []*p4.Field{{Name: "port", Bits: 16}},
			Body:   []p4.Stmt{&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: p4.FR("port")}},
		},
		&p4.ActionDecl{
			Name: "mark_drop",
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("meta", "drop_flag"), RHS: &p4.IntLit{Val: 1, Bits: 1}}},
		},
	)
	fwdActions := []string{"set_port", "mark_drop"}
	if g.ecmp {
		ctl.Actions = append(ctl.Actions,
			&p4.ActionDecl{
				Name:   "set_ecmp_group",
				Params: []*p4.Field{{Name: "gid", Bits: 16}},
				Body:   []p4.Stmt{&p4.Assign{LHS: p4.FR("meta", "ecmp_grp"), RHS: p4.FR("gid")}},
			},
		)
		ctl.Hashes = append(ctl.Hashes,
			&p4.HashDecl{Name: "ecmp_hash", Algo: "crc16", Bits: 16},
		)
		fwdActions = append(fwdActions, "set_ecmp_group")
	}
	ctl.Tables = append(ctl.Tables,
		&p4.Table{
			Name:    "netcl_fwd",
			Keys:    []*p4.TableKey{{Expr: p4.FR("meta", "nexthop"), Match: p4.MatchExact}},
			Actions: fwdActions,
			Default: &p4.ActionCall{Name: "mark_drop"},
			Size:    256,
		},
	)
	if g.ecmp {
		ctl.Tables = append(ctl.Tables,
			&p4.Table{
				Name: "netcl_ecmp",
				Keys: []*p4.TableKey{
					{Expr: p4.FR("meta", "ecmp_grp"), Match: p4.MatchExact},
					{Expr: p4.FR("meta", "ecmp_bkt"), Match: p4.MatchExact},
				},
				Actions: []string{"set_port", "mark_drop"},
				Default: &p4.ActionCall{Name: "mark_drop"},
				Size:    256,
			},
		)
	}
	ctl.Tables = append(ctl.Tables,
		&p4.Table{
			Name:    "l2_fwd",
			Keys:    []*p4.TableKey{{Expr: p4.FR("hdr", "ethernet", "dst_addr"), Match: p4.MatchExact}},
			Actions: []string{"set_port", "mark_drop"},
			Default: &p4.ActionCall{Name: "mark_drop"},
			Size:    1024,
		},
	)

	// NetCL runtime: dispatch + kernels + epilogue, then forwarding.
	isNetCL := &p4.CallExpr{Recv: "hdr.netcl", Method: "isValid"}
	toMe := &p4.Bin{
		Op: "||",
		X: &p4.Bin{Op: "==", X: p4.FR("hdr", "netcl", "to"),
			Y: &p4.IntLit{Val: uint64(g.mod.DeviceID), Bits: 16}},
		Y: &p4.Bin{Op: "==", X: p4.FR("hdr", "netcl", "to"),
			Y: &p4.IntLit{Val: wire.AnyDevice, Bits: 16}},
	}

	var computeBody []p4.Stmt
	computeBody = append(computeBody, &p4.Comment{Text: "NetCL device runtime: computation dispatch"})
	// Defaults, overridden by the specialized per-action updates each
	// kernel exit emits: an unknown computation id behaves as pass().
	computeBody = append(computeBody,
		&p4.Assign{LHS: p4.FR("hdr", "netcl", "act"), RHS: &p4.IntLit{Val: wire.ActPass, Bits: 8}},
		&p4.Assign{LHS: p4.FR("hdr", "netcl", "to"), RHS: &p4.IntLit{Val: wire.None, Bits: 16}},
		&p4.Assign{LHS: p4.FR("meta", "nexthop"), RHS: p4.FR("hdr", "netcl", "dst")},
	)
	dispatch := g.dispatchKernels()
	computeBody = append(computeBody, dispatch...)
	computeBody = append(computeBody,
		&p4.Comment{Text: "NetCL device runtime: record this device as the previous hop"},
		&p4.Assign{LHS: p4.FR("hdr", "netcl", "from"),
			RHS: &p4.IntLit{Val: uint64(g.mod.DeviceID), Bits: 16}},
	)

	transitBody := []p4.Stmt{
		// A message not addressed to this device is a no-op in transit.
		&p4.If{
			Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "netcl", "to"), Y: &p4.IntLit{Val: wire.None, Bits: 16}},
			Then: []p4.Stmt{&p4.Assign{LHS: p4.FR("meta", "nexthop"), RHS: p4.FR("hdr", "netcl", "dst")}},
			Else: []p4.Stmt{&p4.Assign{LHS: p4.FR("meta", "nexthop"), RHS: p4.FR("hdr", "netcl", "to")}},
		},
	}

	fwdApply := []p4.Stmt{&p4.ApplyTable{Table: "netcl_fwd"}}
	if g.ecmp {
		// When netcl_fwd resolved to an ECMP group, spread by flow hash
		// over (src, dst): the pair is invariant along the path (only
		// from/to/act mutate in transit), so every hop picks the same
		// bucket for a flow.
		fwdApply = append(fwdApply, &p4.If{
			Cond: &p4.Bin{Op: "!=", X: p4.FR("meta", "ecmp_grp"), Y: &p4.IntLit{Val: 0, Bits: 16}},
			Then: []p4.Stmt{
				&p4.Assign{
					LHS: p4.FR("meta", "ecmp_bkt"),
					RHS: &p4.Bin{
						Op: "&",
						X: &p4.CallExpr{Recv: "ecmp_hash", Method: "get", Args: []p4.Expr{
							p4.FR("hdr", "netcl", "src"), p4.FR("hdr", "netcl", "dst"),
						}},
						Y: &p4.IntLit{Val: wire.ECMPBuckets - 1, Bits: 16},
					},
				},
				&p4.ApplyTable{Table: "netcl_ecmp"},
			},
		})
	}

	ctl.Apply = []p4.Stmt{
		&p4.If{
			Cond: isNetCL,
			Then: []p4.Stmt{
				&p4.If{Cond: toMe, Then: computeBody, Else: transitBody},
				&p4.If{
					Cond: &p4.Bin{Op: "==", X: p4.FR("meta", "drop_flag"), Y: &p4.IntLit{Val: 0, Bits: 1}},
					Then: []p4.Stmt{
						&p4.If{
							Cond: &p4.Bin{Op: "==", X: p4.FR("meta", "mcast_grp"), Y: &p4.IntLit{Val: 0, Bits: 16}},
							Then: fwdApply,
						},
					},
				},
			},
			Else: []p4.Stmt{&p4.ApplyTable{Table: "l2_fwd"}},
		},
	}
}

// dispatchKernels emits the top-level computation switch (§VI-B: "a
// top-level switch statement branching on a message's computation ID").
func (g *generator) dispatchKernels() []p4.Stmt {
	var funcs []*ir.Func
	funcs = append(funcs, g.mod.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Comp < funcs[j].Comp })

	var out []p4.Stmt
	cur := &out
	for _, f := range funcs {
		body := g.genKernel(f)
		iff := &p4.If{
			Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "netcl", "comp"),
				Y: &p4.IntLit{Val: uint64(f.Comp), Bits: 8}},
			Then: body,
		}
		*cur = append(*cur, iff)
		cur = &iff.Else
	}
	return out
}
