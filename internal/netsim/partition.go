package netsim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Partitioned conservative-lookahead execution (CMB-style): the
// topology is cut into device-contiguous partitions, each owning its
// own event queue, clock, buffer pool and counters. Time advances in
// global windows [t, t+L) where t is the earliest pending event
// anywhere and L is the minimum latency of any cross-partition link.
// Within a window every partition runs independently (its events
// cannot affect another partition earlier than t+L, because the only
// cross-partition influence is a packet that must traverse a cross
// link: arrival ≥ send time + L ≥ t + L). Cross-partition transmits
// land in per-destination mailboxes and are enqueued at the barrier,
// in fixed (source, append) order, stamped with times the invariant
// guarantees are at or beyond the next window's start.

// part is one partition's execution context. The network's built-in
// serial context is a part too (id 0, sim = &n.Sim), so the dispatch
// path is identical with and without partitioning.
type part struct {
	n      *Network
	id     int32
	sim    *Sim
	pool   bufPool
	ctr    *netCounters
	outbox [][]event // mailboxes, indexed by destination partition
}

// SetPartitions cuts the topology into k device-contiguous partitions
// (devices sorted by id, split into balanced blocks; hosts follow
// their device). Call it after the topology is built and before
// scheduling scenario events: pending events stay on partition 0.
//
// Any call — including k=1 — switches the network to partitioned
// semantics permanently: per-(link,direction) fault streams and
// traversal counters, so fault patterns and hash chains are
// comparable across partition counts. Networks that never call
// SetPartitions keep the original serial behavior bit for bit.
//
// k is clamped to the device count. An error is reported when a
// cross-partition link has no positive latency (the lookahead window
// would be empty).
func (n *Network) SetPartitions(k int) error {
	n.pmode = true
	if k > len(n.devs) {
		k = len(n.devs)
	}
	if k <= 1 {
		n.parts = nil
		for i := range n.hc.part {
			n.hc.part[i] = 0
		}
		for _, d := range n.devs {
			d.part = 0
		}
		return nil
	}

	// Cut the device sequence into k balanced contiguous blocks. With a
	// fabric attached, the sequence is the topology's locality order
	// (chain position, leaves-then-spines, pod-major fat-tree), so the
	// cuts fall between racks/pods instead of slicing through them by
	// device-id accident; devices wired outside the fabric follow in id
	// order. Hand-wired networks keep the historical id-order split.
	var order []*Device
	if n.topo != nil && len(n.topo.locality) > 0 {
		order = append(order, n.topo.locality...)
		inFab := map[*Device]bool{}
		for _, d := range order {
			inFab[d] = true
		}
		var rest []*Device
		for _, d := range n.devs {
			if !inFab[d] {
				rest = append(rest, d)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
		order = append(order, rest...)
	} else {
		order = append(order, n.devs...)
		sort.Slice(order, func(i, j int) bool { return order[i].ID < order[j].ID })
	}
	for i, d := range order {
		d.part = int32(i * k / len(order))
	}
	// Hosts follow the device they attach to (unattached hosts stay on
	// partition 0 — they generate no events anyway).
	for i := range n.hc.part {
		n.hc.part[i] = 0
		if li := n.hc.link[i]; li != 0 {
			peer := n.links.at(li - 1).ends[1]
			if peer.isDevice() {
				n.hc.part[i] = n.devs[peer.deviceIdx()].part
			}
		}
	}

	// Lookahead = min latency over cross-partition links.
	n.lookahead = Time(math.Inf(1))
	for i := int32(0); i < n.links.count; i++ {
		l := n.links.at(i)
		a, b := n.endPart(l.ends[0]), n.endPart(l.ends[1])
		if a == b {
			continue
		}
		if l.LatencyNs <= 0 {
			return fmt.Errorf("netsim: cross-partition link %d has latency %v; conservative lookahead needs > 0", i, l.LatencyNs)
		}
		if l.LatencyNs < n.lookahead {
			n.lookahead = l.LatencyNs
		}
	}

	n.parts = make([]*part, k)
	n.serial.id = 0
	n.serial.outbox = make([][]event, k)
	n.parts[0] = &n.serial
	for i := 1; i < k; i++ {
		p := &part{n: n, id: int32(i), sim: &Sim{}, ctr: &netCounters{}, outbox: make([][]event, k)}
		p.sim.exec = func(e *event) { p.dispatch(e) }
		p.sim.now = n.Sim.now
		n.parts[i] = p
	}
	return nil
}

// endPart returns the partition a link end belongs to.
func (n *Network) endPart(e end) int32 {
	if e.isDevice() {
		return n.devs[e.deviceIdx()].part
	}
	return n.hc.part[e.node]
}

// Lookahead reports the conservative-lookahead window width (0 when
// unpartitioned, +Inf when no link crosses partitions).
func (n *Network) Lookahead() Time {
	if len(n.parts) <= 1 {
		return 0
	}
	return n.lookahead
}

// Partitions reports the active partition count (1 when serial).
func (n *Network) Partitions() int {
	if len(n.parts) == 0 {
		return 1
	}
	return len(n.parts)
}

// PrewarmBuffers stocks the packet-buffer pools with count buffers of
// the given byte capacity, split evenly across partitions. Call it
// after SetPartitions (each partition owns its own pool): a run whose
// in-flight working set stays under the prewarmed count allocates no
// packet buffers at all.
func (n *Network) PrewarmBuffers(count, size int) {
	ps := n.parts
	if len(ps) == 0 {
		ps = []*part{&n.serial}
	}
	per := (count + len(ps) - 1) / len(ps)
	for _, p := range ps {
		p.pool.prewarm(per, size)
	}
}

// BufferPeak sums the per-partition high-water marks of checked-out
// packet buffers: the run's buffer working set.
func (n *Network) BufferPeak() int {
	if len(n.parts) == 0 {
		return n.serial.pool.peak
	}
	t := 0
	for _, p := range n.parts {
		t += p.pool.peak
	}
	return t
}

// TotalProcessed sums executed events across all partitions.
func (n *Network) TotalProcessed() uint64 {
	if len(n.parts) == 0 {
		return n.Sim.Processed
	}
	var t uint64
	for _, p := range n.parts {
		t += p.sim.Processed
	}
	return t
}

// TotalPeakQueue sums the per-partition pending-event high-water
// marks: the aggregate queue footprint of a run.
func (n *Network) TotalPeakQueue() int {
	if len(n.parts) == 0 {
		return n.Sim.PeakQueue
	}
	t := 0
	for _, p := range n.parts {
		t += p.sim.PeakQueue
	}
	return t
}

// Run processes events up to the horizon (0 = until drained),
// delegating to the partitioned engine when partitions are armed.
func (n *Network) Run(until Time) error {
	if len(n.parts) > 1 {
		return n.RunParallel(until)
	}
	err := n.Sim.Run(until)
	if n.pmode {
		n.foldLinks()
	}
	return err
}

// RunAll processes every pending event.
func (n *Network) RunAll() error { return n.Run(0) }

// RunParallel executes the partitioned simulation in conservative-
// lookahead windows until every queue is drained or the horizon is
// reached. One goroutine per partition per window; on a single-CPU
// box the rounds serialize and the win is memory locality only (the
// standing ROADMAP note — record GOMAXPROCS when benchmarking).
func (n *Network) RunParallel(until Time) error {
	if len(n.parts) <= 1 {
		return n.Run(until)
	}
	var wg sync.WaitGroup
	for {
		// Global next-event time.
		t := Time(math.Inf(1))
		for _, p := range n.parts {
			if len(p.sim.q) > 0 && p.sim.q[0].at < t {
				t = p.sim.q[0].at
			}
		}
		if math.IsInf(float64(t), 1) || (until > 0 && t > until) {
			break
		}
		wEnd := t + n.lookahead
		for _, p := range n.parts {
			wg.Add(1)
			go func(p *part) {
				defer wg.Done()
				p.sim.runWindow(wEnd, until)
			}(p)
		}
		wg.Wait()
		// Barrier: drain mailboxes in fixed (destination, source,
		// append) order so cross-partition events get deterministic
		// local scheduling numbers.
		for di, dst := range n.parts {
			for _, src := range n.parts {
				box := src.outbox[di]
				for i := range box {
					if box[i].at < wEnd && !math.IsInf(float64(wEnd), 1) {
						return fmt.Errorf("netsim: lookahead violation: cross event at %v before window end %v", box[i].at, wEnd)
					}
					dst.sim.postAbs(box[i])
				}
				src.outbox[di] = box[:0]
			}
		}
		if n.MaxEvents > 0 && n.TotalProcessed() > n.MaxEvents {
			return fmt.Errorf("netsim: event budget exceeded (%d)", n.MaxEvents)
		}
	}
	// Land every clock on a common time: the horizon, or the furthest
	// partition when running to drain.
	endT := until
	for _, p := range n.parts {
		if p.sim.now > endT {
			endT = p.sim.now
		}
	}
	for _, p := range n.parts {
		if endT > p.sim.now {
			p.sim.now = endT
		}
	}
	n.foldParallel()
	return nil
}

// foldParallel folds per-partition counters and per-direction link
// counters into the public aggregate fields.
func (n *Network) foldParallel() {
	for _, p := range n.parts {
		if p.ctr != &n.netCounters {
			n.netCounters.fold(p.ctr)
			*p.ctr = netCounters{}
		}
	}
	n.foldLinks()
}

// foldLinks rolls the partitioned regime's per-direction traversal and
// drop counters into the historical whole-link fields.
func (n *Network) foldLinks() {
	for i := int32(0); i < n.links.count; i++ {
		l := n.links.at(i)
		l.crossed += l.crossedDir[0] + l.crossedDir[1]
		l.Dropped += l.droppedDir[0] + l.droppedDir[1]
		l.crossedDir[0], l.crossedDir[1] = 0, 0
		l.droppedDir[0], l.droppedDir[1] = 0, 0
	}
}
