package netsim

import (
	"netcl/internal/bmv2"
	"netcl/internal/runtime"
)

// events.go is the closure-free packet path: the dispatch switch that
// gives typed event records their meaning, and the transmit step that
// moves pooled buffers across links. Everything here runs in the
// context of one partition (pt); unpartitioned networks use the
// network's built-in serial partition.

// dispatch executes one typed event. The per-kind scheduling order and
// timing math replicate the original closure-based path exactly, so a
// serial run is byte-identical to the pre-refactor simulator.
func (pt *part) dispatch(e *event) {
	n := pt.n
	switch e.kind {
	case evHostSend:
		// One host wakeup flushing a chain of framed packets (Send is a
		// chain of one) onto the host's uplink, in order.
		l := n.links.at(n.hc.link[e.node] - 1)
		for pb := e.buf; pb != nil; {
			next := pb.next
			pb.next = nil
			pt.transmit(l, 0, pb) // hosts are always end 0 (Connect)
			pb = next
		}
	case evArrive:
		l := n.links.at(e.link)
		to := l.ends[int(e.dir)^1]
		if to.isDevice() {
			pt.devReceive(n.devs[to.deviceIdx()], int(to.port), e.buf)
		} else {
			pt.hostDeliver(to.node, e.buf)
		}
	case evDevFwd:
		pt.devSend(n.devs[e.node], int(e.port), e.buf)
	case evDevMcast:
		d := n.devs[e.node]
		ports := d.mcast[int(e.port)]
		if len(ports) == 0 {
			pt.ctr.PacketsDropped++
			pt.pool.release(e.buf)
			return
		}
		// Every recipient shares the buffer by refcount (the closure
		// path copied per recipient; sharing changes allocations, not
		// bytes or timing). Fault draws stay in group order.
		pb := e.buf
		pb.refs += int32(len(ports) - 1)
		for _, p := range ports {
			pt.devSend(d, p, pb)
		}
	case evHostRecv:
		pb := e.buf
		if fn := n.hc.recv[e.node]; fn != nil {
			msg, _ := runtime.Deframe(pb.b)
			fn(n.hs.at(e.node), msg)
		}
		pt.pool.release(pb)
	case evTimer:
		if n.timerFn != nil {
			n.timerFn(n.hs.at(e.node))
		}
	}
}

// devReceive runs the P4 pipeline on an arriving packet and schedules
// the forwarding step after the device's pipeline latency. The output
// is deparsed into a pooled buffer (ProcessInto reuses its capacity),
// so the steady-state device path allocates nothing.
func (pt *part) devReceive(d *Device, inPort int, pb *pbuf) {
	if d.paused {
		pt.ctr.PacketsDropped++
		pt.pool.release(pb)
		return
	}
	d.Processed++
	out := pt.pool.get()
	res := bmv2.Result{Data: out.b}
	err := d.SW.ProcessInto(pb.b, inPort, &res)
	pt.pool.release(pb)
	if err != nil || res.Dropped {
		pt.ctr.PacketsDropped++
		pt.pool.put(out)
		return
	}
	out.b = res.Data
	ev := event{kind: evDevFwd, node: d.idx, port: int32(res.Port), buf: out}
	if res.Mcast != 0 {
		ev.kind, ev.port = evDevMcast, int32(res.Mcast)
	}
	pt.sim.post(d.PipelineNs, ev)
}

// devSend puts one packet (consuming one buffer reference) onto the
// device's egress port.
func (pt *part) devSend(d *Device, outPort int, pb *pbuf) {
	li := d.portLink(outPort)
	if li == 0 {
		pt.ctr.PacketsDropped++
		pt.pool.release(pb)
		return
	}
	l := pt.n.links.at(li - 1)
	dir := 0
	if l.ends[0] != (end{node: devNode(d.idx), port: int32(outPort)}) {
		dir = 1
	}
	pt.transmit(l, dir, pb)
}

// hostDeliver is the arrival half of delivery: deframe, count, fold
// the trace chain, then schedule the Receive callback after the host's
// processing delay (matching the original deliver()).
func (pt *part) hostDeliver(hi int32, pb *pbuf) {
	n := pt.n
	msg, ok := runtime.Deframe(pb.b)
	if !ok {
		pt.pool.release(pb)
		return
	}
	n.hc.recvd[hi]++
	pt.ctr.PacketsDelivered++
	if n.trace {
		n.foldTrace(hi, pt.sim.now, msg)
	}
	if n.hc.recv[hi] == nil {
		pt.pool.release(pb)
		return
	}
	pt.sim.post(n.hc.procNs[hi], event{kind: evHostRecv, node: hi, buf: pb})
}

// transmit schedules pb (consuming the caller's reference) across l in
// direction dir: fault draws, per-direction serialization against
// busyUntil, then an arrival event after the link latency plus jitter.
//
// Two regimes share the physics but differ in bookkeeping:
//   - serial (default): the traversal counter spans both directions
//     and fault randomness comes from the network's single seeded RNG
//     — bit-for-bit the original simulator.
//   - partitioned (any SetPartitions call): counters and fault RNG
//     streams are per (link, direction), so the two directions can be
//     driven by different partitions without sharing state, and the
//     draw sequence seen by a packet stream is independent of the
//     partition count — that is what makes k-partition runs hash-equal
//     to 1-partition runs.
func (pt *part) transmit(l *Link, dir int, pb *pbuf) {
	n := pt.n
	if l.down[dir] {
		// Down-direction drop happens before any traversal counter or
		// fault draw in both regimes, so the per-(link,direction) RNG
		// streams stay aligned between serial and partitioned runs.
		pt.ctr.LinkDownDrops++
		pt.ctr.PacketsDropped++
		pt.pool.release(pb)
		return
	}
	if !n.pmode {
		l.crossed++
		if l.DropNth > 0 && l.crossed%uint64(l.DropNth) == 0 {
			l.Dropped++
			pt.ctr.PacketsDropped++
			pt.pool.release(pb)
			return
		}
		if n.faults.loseOne() {
			l.Dropped++
			pt.ctr.PacketsDropped++
			pt.ctr.FaultsDropped++
			pt.pool.release(pb)
			return
		}
		s := pt.sim
		start := s.now
		if l.busyUntil[dir] > start {
			start = l.busyUntil[dir]
		}
		done := start + l.serialization(len(pb.b))
		l.busyUntil[dir] = done
		l.bytesDir[dir] += uint64(len(pb.b))
		arr := event{kind: evArrive, link: l.idx, dir: uint8(dir), buf: pb}
		s.post(done-s.now+l.LatencyNs+n.faults.jitterOne(), arr)
		if n.faults.dupOne() {
			pt.ctr.FaultsDuplicated++
			pb.refs++
			l.bytesDir[dir] += uint64(len(pb.b))
			s.post(done-s.now+l.LatencyNs+n.faults.jitterOne(), arr)
		}
		return
	}

	l.crossedDir[dir]++
	if l.DropNth > 0 && l.crossedDir[dir]%uint64(l.DropNth) == 0 {
		l.droppedDir[dir]++
		pt.ctr.PacketsDropped++
		pt.pool.release(pb)
		return
	}
	f := n.faults
	if f.loseDir(l, dir) {
		l.droppedDir[dir]++
		pt.ctr.PacketsDropped++
		pt.ctr.FaultsDropped++
		pt.pool.release(pb)
		return
	}
	s := pt.sim
	start := s.now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	done := start + l.serialization(len(pb.b))
	l.busyUntil[dir] = done
	l.bytesDir[dir] += uint64(len(pb.b))
	at1 := done + l.LatencyNs + f.jitterDir(l, dir)
	dup := f.dupDir(l, dir)
	var at2 Time
	if dup {
		pt.ctr.FaultsDuplicated++
		l.bytesDir[dir] += uint64(len(pb.b))
		at2 = done + l.LatencyNs + f.jitterDir(l, dir)
	}

	dst := pt.partOfEnd(l.ends[dir^1])
	if dst == pt {
		arr := event{kind: evArrive, link: l.idx, dir: uint8(dir), buf: pb}
		s.post(at1-s.now, arr)
		if dup {
			pb.refs++
			s.post(at2-s.now, arr)
		}
		return
	}
	// Cross-partition: hand the buffer over whole, or split off a
	// private copy when other local events still reference it, so no
	// two partitions ever share a refcount. The peer enqueues the
	// event after the window barrier (arrival ≥ its safe horizon by
	// the lookahead invariant).
	if pb.refs > 1 {
		cp := pt.pool.get()
		cp.b = append(cp.b[:0], pb.b...)
		pt.pool.release(pb)
		pb = cp
	}
	if dup {
		pb.refs++
	}
	arr := event{at: at1, kind: evArrive, link: l.idx, dir: uint8(dir), buf: pb}
	pt.outbox[dst.id] = append(pt.outbox[dst.id], arr)
	if dup {
		arr.at = at2
		pt.outbox[dst.id] = append(pt.outbox[dst.id], arr)
	}
}

// partOfEnd returns the partition owning a link end's node.
func (pt *part) partOfEnd(e end) *part {
	n := pt.n
	if len(n.parts) == 0 {
		return pt // pmode with a single serial partition
	}
	if e.isDevice() {
		return n.parts[n.devs[e.deviceIdx()].part]
	}
	return n.parts[n.hc.part[e.node]]
}

// partFor returns the execution context owning a host: the built-in
// serial partition when unpartitioned.
func (n *Network) partFor(hostIdx int32) *part {
	if len(n.parts) == 0 {
		return &n.serial
	}
	return n.parts[n.hc.part[hostIdx]]
}
