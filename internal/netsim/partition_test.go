package netsim

import (
	"testing"

	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/testutil"
)

// TestRunAdvancesToHorizon pins the unified horizon-clock semantics:
// Run(until) lands the clock exactly on the horizon whether the queue
// was empty all along or drained early — matching StepNext's timeout
// behavior.
func TestRunAdvancesToHorizon(t *testing.T) {
	var s Sim
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 100 {
		t.Errorf("empty-queue Run(100) left now at %v, want 100", s.Now())
	}
	s.At(20, func() {})
	if err := s.Run(150); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 150 {
		t.Errorf("drained Run(150) left now at %v, want 150", s.Now())
	}
	var s2 Sim
	if ran, err := s2.StepNext(70); ran || err != nil {
		t.Fatalf("StepNext on empty queue: ran=%v err=%v", ran, err)
	}
	if s2.Now() != 70 {
		t.Errorf("StepNext horizon: now %v, want 70", s2.Now())
	}
}

// TestSentNotCountedWithoutDevice pins the Host.Sent fix: frames that
// never transmit (no uplink, or an uplink whose peer is not a device)
// must not count as sent.
func TestSentNotCountedWithoutDevice(t *testing.T) {
	n := NewNetwork()
	h1 := n.AddHost(1)
	h1.Send([]byte{1, 2, 3})
	h1.SendBatch([][]byte{{1}, {2}})
	if h1.Sent() != 0 {
		t.Errorf("unconnected host counted %d sends", h1.Sent())
	}
	// Hand-build a host↔host link: the peer-is-a-device check must
	// bail before counting.
	h2 := n.AddHost(2)
	l := n.links.alloc()
	l.LatencyNs, l.BandwidthGbps = 1000, 100
	l.ends[0] = end{node: h1.idx}
	l.ends[1] = end{node: h2.idx}
	n.hc.link[h1.idx] = l.idx + 1
	h1.Send([]byte{1, 2, 3})
	h1.SendBatch([][]byte{{1}, {2}})
	if h1.Sent() != 0 {
		t.Errorf("host with non-device peer counted %d sends", h1.Sent())
	}
	if n.Pending() != 0 {
		t.Errorf("%d events scheduled for untransmittable frames", n.Pending())
	}
}

// TestAutoWireDeterministic: wiring the same diamond topology (two
// equal-cost paths between the edge devices) twice must install
// identical forwarding tables — the BFS iterates ports and devices in
// sorted order, so tie-breaks cannot vary run to run.
func TestAutoWireDeterministic(t *testing.T) {
	build := func() *Network {
		n := NewNetwork()
		progFor := func(dev int) *Device {
			prog, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, uint16(dev))
			if err != nil {
				t.Fatal(err)
			}
			return n.AddDevice(uint16(dev), prog)
		}
		d1, d2, d3, d4 := progFor(1), progFor(2), progFor(3), progFor(4)
		// Diamond: d1→{d2,d3}→d4, equal cost.
		n.ConnectDevices(d1, 1, d2, 1)
		n.ConnectDevices(d1, 2, d3, 1)
		n.ConnectDevices(d2, 2, d4, 1)
		n.ConnectDevices(d3, 2, d4, 2)
		h := n.AddHost(40)
		n.Connect(h, d4, 3)
		if err := n.AutoWire(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	na, nb := build(), build()
	for dev := uint16(1); dev <= 4; dev++ {
		ea := na.Device(dev).SW.Entries("netcl_fwd")
		eb := nb.Device(dev).SW.Entries("netcl_fwd")
		if len(ea) != len(eb) {
			t.Fatalf("device %d: %d vs %d entries", dev, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i].Keys[0].Value != eb[i].Keys[0].Value ||
				ea[i].Action.Args[0] != eb[i].Action.Args[0] {
				t.Errorf("device %d entry %d: (%d→%d) vs (%d→%d)", dev, i,
					ea[i].Keys[0].Value, ea[i].Action.Args[0],
					eb[i].Keys[0].Value, eb[i].Action.Args[0])
			}
		}
	}
}

// chainNet builds a 4-device chain, hostsPerDev hosts each, every host
// loaded with msgs echo requests aimed at the device (k+1) hops down
// the chain. Returns the network plus the per-host pending queues;
// timers drive the open-loop send schedule (closure-free, partition-
// safe). Start times and intervals are staggered per host so no two
// packets ever tie on a shared link — the determinism precondition for
// comparing partition counts.
func chainNet(t *testing.T, hostsPerDev int) (*Network, [][][]byte) {
	t.Helper()
	const devices = 4
	n := NewNetwork()
	var devs []*Device
	for dv := 0; dv < devices; dv++ {
		prog, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, uint16(dv+1))
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, n.AddDevice(uint16(dv+1), prog))
	}
	for dv := 0; dv+1 < devices; dv++ {
		l := n.ConnectDevices(devs[dv], 100, devs[dv+1], 101)
		l.LatencyNs = 2 * Microsecond // cross-partition lookahead window
	}
	var hosts []*Host
	for dv := 0; dv < devices; dv++ {
		for k := 0; k < hostsPerDev; k++ {
			h := n.AddHost(uint16(10 + dv*hostsPerDev + k))
			n.Connect(h, devs[dv], 1+k)
			hosts = append(hosts, h)
		}
	}
	if err := n.AutoWire(); err != nil {
		t.Fatal(err)
	}
	spec := &runtime.MessageSpec{Comp: 1, Args: []runtime.ArgSpec{{Name: "x", Bytes: 4, Count: 1, Out: true}}}
	pending := make([][][]byte, len(hosts))
	for i, h := range hosts {
		dv := i / hostsPerDev
		target := (dv + 1) % devices
		dst := hosts[target*hostsPerDev+i%hostsPerDev]
		for j := 0; j < 4; j++ {
			msg, err := runtime.Pack(spec,
				runtime.Message{Src: h.ID, Dst: dst.ID, Device: uint16(target + 1), Comp: 1}.Header(),
				[][]uint64{{uint64(i*1000 + j)}})
			if err != nil {
				t.Fatal(err)
			}
			pending[i] = append(pending[i], msg)
		}
	}
	n.OnTimer(func(h *Host) {
		i := h.idx
		if len(pending[i]) == 0 {
			return
		}
		h.Send(pending[i][0])
		pending[i] = pending[i][1:]
		if len(pending[i]) > 0 {
			h.StartTimer(1500*Nanosecond + Time(7*i))
		}
	})
	return n, pending
}

type chainRun struct {
	hash      uint64
	delivered uint64
	dropped   uint64
	duped     uint64
	processed uint64
	now       Time
}

// runChain executes the chain scenario under k partitions (0 = never
// touch SetPartitions: the legacy serial regime).
func runChain(t *testing.T, k int, faults FaultConfig) chainRun {
	t.Helper()
	n, _ := chainNet(t, 3)
	n.EnableTrace()
	if faults.Active() {
		n.InjectFaults(faults)
	}
	if k > 0 {
		if err := n.SetPartitions(k); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < n.hs.count; i++ {
		h := n.hs.at(i)
		h.StartTimer(100*Nanosecond + Time(137*i))
	}
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	return chainRun{
		hash:      n.TraceHash(),
		delivered: n.PacketsDelivered,
		dropped:   n.PacketsDropped,
		duped:     n.FaultsDuplicated,
		processed: n.TotalProcessed(),
		now:       n.Now(),
	}
}

// TestPartitionedMatchesSerial: the partitioned engine must deliver
// the same bytes at the same simulated times as the serial engine —
// hash-chain equality across 1, 2 and 4 partitions, and (fault-free)
// against the untouched legacy regime too.
func TestPartitionedMatchesSerial(t *testing.T) {
	legacy := runChain(t, 0, FaultConfig{})
	if legacy.delivered == 0 {
		t.Fatal("chain scenario delivered nothing")
	}
	for _, k := range []int{1, 2, 4} {
		got := runChain(t, k, FaultConfig{})
		if got != legacy {
			t.Errorf("k=%d diverged from legacy serial: %+v vs %+v", k, got, legacy)
		}
	}
}

// TestPartitionedChaosHashChain: under seeded loss/duplication/jitter,
// partitioned runs must still hash-chain-match the single-partition
// run — the per-(link,direction) fault streams make the draw sequence
// independent of the partition count.
func TestPartitionedChaosHashChain(t *testing.T) {
	cfg := FaultConfig{LossRate: 0.12, DupRate: 0.08, JitterNs: 300, Seed: 42}
	base := runChain(t, 1, cfg)
	if base.dropped == 0 || base.duped == 0 {
		t.Fatalf("chaos run injected nothing: %+v", base)
	}
	if base.delivered == 0 {
		t.Fatal("chaos run delivered nothing")
	}
	for _, k := range []int{2, 4} {
		got := runChain(t, k, cfg)
		if got != base {
			t.Errorf("k=%d chaos run diverged from k=1: %+v vs %+v", k, got, base)
		}
	}
	// Different seed, different pattern (sanity that faults do bite).
	other := runChain(t, 2, FaultConfig{LossRate: 0.12, DupRate: 0.08, JitterNs: 300, Seed: 43})
	if other.hash == base.hash {
		t.Error("different fault seeds produced identical hash chains")
	}
}

// TestSteadyStateAllocsPerEvent pins ≈0 allocations per event on the
// schedule→pop→dispatch packet path (send, transmit, device pipeline,
// deliver): buffers are pooled, events are closure-free values in the
// heap slice. Skipped under -race (the instrumentation allocates),
// like TestCompiledBurstAllocs.
func TestSteadyStateAllocsPerEvent(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	n, h, _, spec := echoNet(t)
	msg, err := runtime.Pack(spec, runtime.Message{Src: 1, Dst: 2, Device: 9, Comp: 1}.Header(),
		[][]uint64{{7}})
	if err != nil {
		t.Fatal(err)
	}
	// Warm pools, heap slice, deparse buffers.
	for i := 0; i < 16; i++ {
		h.Send(msg)
	}
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	before := n.Processed
	const rounds = 4
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < rounds; i++ {
			h.Send(msg)
		}
		if err := n.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	perEvent := allocs * 101 / float64(n.Processed-before)
	if perEvent > 0.05 {
		t.Errorf("%.3f allocs/event on the steady-state path (want ≈0)", perEvent)
	}
}

// runChainChurn is runChain plus a mid-run churn timeline: the second
// chain device crashes and restarts, and the device-2→device-1 link
// direction flaps administratively — every event at a fixed virtual
// time through the owning partition's At hook. Returns the run plus
// the admin-down drop count.
func runChainChurn(t *testing.T, k int, faults FaultConfig) (chainRun, uint64) {
	t.Helper()
	n, _ := chainNet(t, 3)
	n.EnableTrace()
	if faults.Active() {
		n.InjectFaults(faults)
	}
	if k > 0 {
		if err := n.SetPartitions(k); err != nil {
			t.Fatal(err)
		}
	}
	d1, d2 := n.devs[1], n.devs[2]
	d1.At(6*Microsecond+Time(0.3), func() { d1.Pause() })
	d1.At(11*Microsecond+Time(0.3), func() { d1.Restart() })
	// Port 101 of device 2 faces device 1 (chainNet wires dv:100 ↔
	// dv+1:101): downing it kills only the 2→1 direction, so the fault
	// streams on the reverse direction stay aligned.
	d2.At(4*Microsecond+Time(0.3), func() { d2.SetPortDown(101, true) })
	d2.At(14*Microsecond+Time(0.3), func() { d2.SetPortDown(101, false) })
	for i := int32(0); i < n.hs.count; i++ {
		n.hs.at(i).StartTimer(100*Nanosecond + Time(137*i))
	}
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	return chainRun{
		hash:      n.TraceHash(),
		delivered: n.PacketsDelivered,
		dropped:   n.PacketsDropped,
		duped:     n.FaultsDuplicated,
		processed: n.TotalProcessed(),
		now:       n.Now(),
	}, n.LinkDownDrops
}

// TestPartitionedChurnHashChain: the chaos-chain determinism witness
// extended with mid-run device crash/restore and a link flap. The
// churn events fire at fixed virtual times in their owning partitions,
// so k ∈ {2,4} must replay the k=1 run bit for bit — drops, restarts
// and all — while the timeline itself must visibly change the chain
// versus the no-churn run.
func TestPartitionedChurnHashChain(t *testing.T) {
	cfg := FaultConfig{LossRate: 0.12, DupRate: 0.08, JitterNs: 300, Seed: 42}
	base, linkDrops := runChainChurn(t, 1, cfg)
	if base.delivered == 0 {
		t.Fatal("churn run delivered nothing")
	}
	if linkDrops == 0 {
		t.Fatal("link flap dropped nothing — the timeline missed the traffic")
	}
	plain := runChain(t, 1, cfg)
	if base.hash == plain.hash {
		t.Error("churn timeline left the delivery chain unchanged")
	}
	if base.delivered >= plain.delivered {
		t.Errorf("crash+flap lost no deliveries: churn %d vs plain %d", base.delivered, plain.delivered)
	}
	for _, k := range []int{2, 4} {
		got, gotDrops := runChainChurn(t, k, cfg)
		if got != base {
			t.Errorf("k=%d churn run diverged from k=1: %+v vs %+v", k, got, base)
		}
		if gotDrops != linkDrops {
			t.Errorf("k=%d admin-down drops %d, want %d", k, gotDrops, linkDrops)
		}
	}
}
