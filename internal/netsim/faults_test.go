package netsim

import (
	"errors"
	"testing"
	"time"

	"netcl/internal/runtime"
)

// Compile-time check: both backends present the same Endpoint surface.
var _ runtime.Endpoint = (*HostEndpoint)(nil)

// TestFaultDeterminism: the same seed must reproduce the exact same
// loss pattern — identical drop counters and identical final simulated
// time across runs.
func TestFaultDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, uint64, Time, int) {
		n, h, _, spec := echoNet(t)
		n.InjectFaults(FaultConfig{LossRate: 0.3, DupRate: 0.1, JitterNs: 500, Seed: seed})
		delivered := 0
		h.SetReceive(func(h *Host, msg []byte) { delivered++ })
		for i := 0; i < 40; i++ {
			msg, err := runtime.Pack(spec, runtime.Message{Src: 1, Dst: 2, Device: 9, Comp: 1}.Header(),
				[][]uint64{{uint64(i)}})
			if err != nil {
				t.Fatal(err)
			}
			h.Send(msg)
		}
		if err := n.RunAll(); err != nil {
			t.Fatal(err)
		}
		return n.FaultsDropped, n.FaultsDuplicated, n.Now(), delivered
	}
	d1, p1, t1, n1 := run(99)
	d2, p2, t2, n2 := run(99)
	if d1 != d2 || p1 != p2 || t1 != t2 || n1 != n2 {
		t.Errorf("same seed diverged: (%d,%d,%v,%d) vs (%d,%d,%v,%d)",
			d1, p1, t1, n1, d2, p2, t2, n2)
	}
	if d1 == 0 {
		t.Error("30% loss over 40 round trips dropped nothing; injection broken")
	}
	if p1 == 0 {
		t.Error("10% duplication over 40 round trips duplicated nothing")
	}
	d3, _, _, _ := run(100)
	if d3 == d1 && func() bool { _, _, t3, _ := run(100); return t3 == t1 }() {
		t.Error("different seeds produced identical fault patterns")
	}
}

// TestEndpointCallUnderLoss drives the reliable Call path over the
// simulator under 30% loss: every call must still return the right
// echo, entirely in simulated time.
func TestEndpointCallUnderLoss(t *testing.T) {
	n, h, _, spec := echoNet(t)
	n.InjectFaults(FaultConfig{LossRate: 0.3, Seed: 7})
	ep := n.NewEndpoint(h, runtime.ReliabilityConfig{
		Timeout: 100 * time.Microsecond, MaxRetries: 24,
	})
	for i := 0; i < 8; i++ {
		x := make([]uint64, 1)
		hdr, err := runtime.CallMessage(ep, spec, runtime.Message{Src: 1, Dst: 2, Device: 9, Comp: 1},
			[][]uint64{{uint64(10 * i)}}, [][]uint64{x}, 0)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if x[0] != uint64(10*i)+1 {
			t.Errorf("call %d: echo %d, want %d", i, x[0], 10*i+1)
		}
		if hdr.From != 9 {
			t.Errorf("call %d: reflected by %d", i, hdr.From)
		}
	}
	if n.FaultsDropped == 0 {
		t.Error("lossy run dropped nothing; injection broken")
	}
	if st := ep.Stats(); st.Retransmits == 0 {
		t.Errorf("packets were dropped but nothing was retransmitted: %+v", st)
	}
}

// TestEndpointRetryBudgetOnPausedDevice pauses the simulated device:
// calls fail with ErrRetryBudget, succeed again after Restart, and
// register state survives the outage.
func TestEndpointRetryBudgetOnPausedDevice(t *testing.T) {
	n, h, d, spec := echoNet(t)
	ep := n.NewEndpoint(h, runtime.ReliabilityConfig{
		Timeout: 50 * time.Microsecond, MaxRetries: 2,
	})
	call := func() error {
		x := make([]uint64, 1)
		_, err := runtime.CallMessage(ep, spec, runtime.Message{Src: 1, Dst: 2, Device: 9, Comp: 1},
			[][]uint64{{5}}, [][]uint64{x}, 0)
		return err
	}
	if err := call(); err != nil {
		t.Fatalf("healthy device: %v", err)
	}
	d.Pause()
	if !d.Paused() {
		t.Fatal("Pause did not take")
	}
	if err := call(); !errors.Is(err, runtime.ErrRetryBudget) {
		t.Fatalf("paused device: want ErrRetryBudget, got %v", err)
	}
	d.Restart()
	if err := call(); err != nil {
		t.Fatalf("restarted device: %v", err)
	}
	if st := ep.Stats(); st.Failures != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestInjectFaultsDisarm: a zero config removes the injector, and
// deterministic per-link DropNth continues to work independently.
func TestInjectFaultsDisarm(t *testing.T) {
	n, h, _, spec := echoNet(t)
	n.InjectFaults(FaultConfig{LossRate: 1})
	n.InjectFaults(FaultConfig{}) // disarm
	delivered := 0
	h.SetReceive(func(h *Host, msg []byte) { delivered++ })
	msg, err := runtime.Pack(spec, runtime.Message{Src: 1, Dst: 2, Device: 9, Comp: 1}.Header(),
		[][]uint64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	h.Send(msg)
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 || n.FaultsDropped != 0 {
		t.Errorf("disarmed injector still active: delivered=%d dropped=%d",
			delivered, n.FaultsDropped)
	}
}
