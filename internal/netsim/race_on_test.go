//go:build race

package netsim

// raceEnabled reports that the race runtime is active: its
// instrumentation allocates, so allocation-count pins are skipped.
const raceEnabled = true
