package netsim

import (
	"testing"

	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/testutil"
	"netcl/internal/wire"
)

func TestEventOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same time: FIFO
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("final time %v", s.Now())
	}
}

func TestEventHorizonAndBudget(t *testing.T) {
	var s Sim
	fired := false
	s.At(100, func() { fired = true })
	if err := s.Run(50); err != nil {
		t.Fatal(err)
	}
	if fired || s.Now() != 50 {
		t.Error("horizon not respected")
	}
	s2 := Sim{MaxEvents: 3}
	var bomb func()
	bomb = func() { s2.At(1, bomb) }
	s2.At(1, bomb)
	if err := s2.RunAll(); err == nil {
		t.Error("event budget not enforced")
	}
}

// TestHeapStressOrdering drains a large adversarial schedule — mixed
// delays, many ties, events scheduling more events — and checks the
// 4-ary heap pops in nondecreasing (time, seq) order and tracks its
// high-water mark.
func TestHeapStressOrdering(t *testing.T) {
	var s Sim
	last := Time(-1)
	var ran int
	// Deterministic pseudo-random delays (LCG) with heavy tie density.
	x := uint64(12345)
	next := func(n uint64) uint64 { x = x*6364136223846793005 + 1442695040888963407; return (x >> 33) % n }
	var chain func()
	chain = func() {
		if s.Now() < last {
			t.Fatalf("time went backwards: %v after %v", s.Now(), last)
		}
		last = s.Now()
		ran++
		if ran < 2000 {
			s.At(Time(next(8)), chain)
		}
	}
	for i := 0; i < 500; i++ {
		s.At(Time(next(16)), chain)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran < 2000 {
		t.Fatalf("only %d events ran", ran)
	}
	if s.Processed != uint64(ran) {
		t.Errorf("Processed=%d, ran=%d", s.Processed, ran)
	}
	if s.PeakQueue < 500 {
		t.Errorf("PeakQueue=%d, want >= 500", s.PeakQueue)
	}
	if s.Pending() != 0 {
		t.Errorf("%d events left", s.Pending())
	}
	if s.EventsPerSec() <= 0 {
		t.Errorf("EventsPerSec=%v after a run", s.EventsPerSec())
	}
}

// TestSameTimeFIFOAtScale: a thousand events at the identical instant
// must run in scheduling order (the determinism contract).
func TestSameTimeFIFOAtScale(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 1000; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("position %d ran event %d", i, v)
		}
	}
}

// echoNet builds host(1) -- device(9) with the echo kernel.
func echoNet(t *testing.T) (*Network, *Host, *Device, *runtime.MessageSpec) {
	t.Helper()
	prog, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, 9)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork()
	h := n.AddHost(1)
	d := n.AddDevice(9, prog)
	n.Connect(h, d, 1)
	if err := n.AutoWire(); err != nil {
		t.Fatal(err)
	}
	spec := &runtime.MessageSpec{Comp: 1, Args: []runtime.ArgSpec{{Name: "x", Bytes: 4, Count: 1, Out: true}}}
	return n, h, d, spec
}

func TestEchoThroughSimulatedNetwork(t *testing.T) {
	n, h, _, spec := echoNet(t)
	var got []uint64
	var at []Time
	h.SetReceive(func(h *Host, msg []byte) {
		x := make([]uint64, 1)
		hdr, err := runtime.Unpack(spec, msg, [][]uint64{x})
		if err != nil {
			t.Errorf("unpack: %v", err)
			return
		}
		if hdr.Act != wire.ActReflect {
			t.Errorf("act: %s", wire.ActionName(int(hdr.Act)))
		}
		got = append(got, x[0])
		at = append(at, n.Now())
	})
	for i := 0; i < 3; i++ {
		msg, err := runtime.Pack(spec, runtime.Message{Src: 1, Dst: 2, Device: 9, Comp: 1}.Header(),
			[][]uint64{{uint64(10 * (i + 1))}})
		if err != nil {
			t.Fatal(err)
		}
		h.Send(msg)
	}
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 11 || got[1] != 21 || got[2] != 31 {
		t.Fatalf("echo results: %v", got)
	}
	// RTT sanity: two 1µs links + host processing + device pipeline.
	if at[0] < 4*Microsecond || at[0] > 50*Microsecond {
		t.Errorf("first RTT at %v ns implausible", at[0])
	}
	if h.Sent() != 3 || h.Received() != 3 {
		t.Errorf("host counters: %d/%d", h.Sent(), h.Received())
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	run := func() (Time, uint64) {
		n, h, _, spec := echoNet(t)
		var last Time
		h.SetReceive(func(h *Host, msg []byte) { last = n.Now() })
		for i := 0; i < 5; i++ {
			msg, _ := runtime.Pack(spec, runtime.Message{Src: 1, Dst: 2, Device: 9, Comp: 1}.Header(),
				[][]uint64{{uint64(i)}})
			h.Send(msg)
		}
		n.RunAll()
		return last, n.Processed
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Errorf("non-deterministic: %v/%d vs %v/%d", t1, e1, t2, e2)
	}
}

func TestTwoDeviceForwarding(t *testing.T) {
	// h1 -- d1 -- d2 -- h2: a message from h1 to h2 computing at d2.
	prog1, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog2, _, err := testutil.CompileOne(`
_kernel(1) void fwd(unsigned &x) { x = x * 2; }
`, passes.TargetTNA, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork()
	h1 := n.AddHost(100)
	h2 := n.AddHost(200)
	d1 := n.AddDevice(1, prog1)
	d2 := n.AddDevice(2, prog2)
	n.Connect(h1, d1, 1)
	n.ConnectDevices(d1, 2, d2, 1)
	n.Connect(h2, d2, 2)
	if err := n.AutoWire(); err != nil {
		t.Fatal(err)
	}
	spec := &runtime.MessageSpec{Comp: 1, Args: []runtime.ArgSpec{{Name: "x", Bytes: 4, Count: 1, Out: true}}}
	var got uint64
	h2.SetReceive(func(h *Host, msg []byte) {
		x := make([]uint64, 1)
		if _, err := runtime.Unpack(spec, msg, [][]uint64{x}); err == nil {
			got = x[0]
		}
	})
	// Request computation at device 2 only: device 1 is a no-op hop.
	msg, _ := runtime.Pack(spec, runtime.Message{Src: 100, Dst: 200, Device: 2, Comp: 1}.Header(),
		[][]uint64{{21}})
	h1.Send(msg)
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("h2 got %d, want 42 (no-implicit-computation at d1, *2 at d2)", got)
	}
	if d1.Processed != 1 || d2.Processed != 1 {
		t.Errorf("device counters: %d %d", d1.Processed, d2.Processed)
	}
}

func TestMulticastDelivery(t *testing.T) {
	prog, _, err := testutil.CompileOne(`
_kernel(1) void bcast(unsigned x) { return ncl::multicast(7); }
`, passes.TargetTNA, 9)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork()
	d := n.AddDevice(9, prog)
	var hosts []*Host
	recv := map[uint16]int{}
	for i := 0; i < 3; i++ {
		h := n.AddHost(uint16(10 + i))
		n.Connect(h, d, i+1)
		h.SetReceive(func(h *Host, msg []byte) { recv[h.ID]++ })
		hosts = append(hosts, h)
	}
	if err := n.AutoWire(); err != nil {
		t.Fatal(err)
	}
	d.SetMulticastGroup(7, []int{1, 2, 3})
	spec := &runtime.MessageSpec{Comp: 1, Args: []runtime.ArgSpec{{Name: "x", Bytes: 4, Count: 1}}}
	msg, _ := runtime.Pack(spec, runtime.Message{Src: 10, Dst: 11, Device: 9, Comp: 1}.Header(),
		[][]uint64{{1}})
	hosts[0].Send(msg)
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	if recv[10] != 1 || recv[11] != 1 || recv[12] != 1 {
		t.Fatalf("multicast delivery: %v", recv)
	}
}

func TestLinkSerialization(t *testing.T) {
	l := &Link{LatencyNs: 1000, BandwidthGbps: 100}
	// 1250 bytes at 100 Gb/s = 100ns.
	if got := l.serialization(1250); got != 100 {
		t.Errorf("serialization: %v", got)
	}
	l2 := &Link{}
	if l2.serialization(1000) != 0 {
		t.Error("zero bandwidth should not serialize")
	}
}
