package netsim

import "math/rand"

// Probabilistic fault injection for chaos testing. In the default
// serial regime all randomness comes from one seeded RNG owned by the
// network, so a given seed reproduces the exact same loss/jitter/
// duplication pattern — the simulator analogue of the UDP backend's
// runtime.FaultSpec. Once partitioning is armed (SetPartitions), each
// (link, direction) carries its own counter-seeded stream instead:
// draws then depend only on the packet order over that direction —
// which a single partition owns — so the fault pattern is identical
// whatever the partition count.

// FaultConfig describes the fault model applied to every link.
type FaultConfig struct {
	// LossRate is the per-traversal drop probability.
	LossRate float64
	// DupRate is the per-traversal duplication probability: the copy
	// takes an independently jittered path, so duplicates may also
	// arrive reordered.
	DupRate float64
	// JitterNs adds a uniform random extra latency in [0, JitterNs)
	// per traversal, which reorders packets relative to each other.
	JitterNs Time
	// Seed seeds the RNG (0 = a fixed default seed).
	Seed int64
}

// Active reports whether any fault dimension is enabled.
func (f FaultConfig) Active() bool {
	return f.LossRate > 0 || f.DupRate > 0 || f.JitterNs > 0
}

type faults struct {
	cfg FaultConfig
	rng *rand.Rand
}

// InjectFaults arms probabilistic fault injection on every link of the
// network (pass a zero FaultConfig to disarm). Deterministic per-link
// DropNth injection keeps working independently.
func (n *Network) InjectFaults(cfg FaultConfig) {
	// Any reseed restarts the per-direction streams of the partitioned
	// regime.
	for i := int32(0); i < n.links.count; i++ {
		l := n.links.at(i)
		l.rng[0], l.rng[1] = 0, 0
	}
	if !cfg.Active() {
		n.faults = nil
		return
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	n.faults = &faults{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Serial-regime draws (one global stream, legacy order).

// loseOne decides whether one traversal is dropped.
func (f *faults) loseOne() bool {
	return f != nil && f.cfg.LossRate > 0 && f.rng.Float64() < f.cfg.LossRate
}

// dupOne decides whether one traversal is duplicated.
func (f *faults) dupOne() bool {
	return f != nil && f.cfg.DupRate > 0 && f.rng.Float64() < f.cfg.DupRate
}

// jitterOne draws the extra latency for one traversal.
func (f *faults) jitterOne() Time {
	if f == nil || f.cfg.JitterNs <= 0 {
		return 0
	}
	return Time(f.rng.Float64()) * f.cfg.JitterNs
}

// Partitioned-regime draws: one splitmix64 stream per (link,
// direction), seeded from the fault seed and the link identity, lazily
// on first use. Draw order per traversal matches the serial regime
// (loss, arrival jitter, duplication, duplicate jitter).

func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (f *faults) rand01(l *Link, dir int) float64 {
	if l.rng[dir] == 0 {
		seed := uint64(1)
		if f.cfg.Seed != 0 {
			seed = uint64(f.cfg.Seed)
		}
		s := seed*0x9E3779B97F4A7C15 ^ uint64(l.idx)<<1 ^ uint64(dir)
		if s == 0 {
			s = 1
		}
		l.rng[dir] = s
	}
	return float64(splitmix64(&l.rng[dir])>>11) / (1 << 53)
}

func (f *faults) loseDir(l *Link, dir int) bool {
	return f != nil && f.cfg.LossRate > 0 && f.rand01(l, dir) < f.cfg.LossRate
}

func (f *faults) dupDir(l *Link, dir int) bool {
	return f != nil && f.cfg.DupRate > 0 && f.rand01(l, dir) < f.cfg.DupRate
}

func (f *faults) jitterDir(l *Link, dir int) Time {
	if f == nil || f.cfg.JitterNs <= 0 {
		return 0
	}
	return Time(f.rand01(l, dir)) * f.cfg.JitterNs
}

// Pause makes the device drop every packet until Restart: the
// simulated analogue of a crashed or rebooting switch. Register and
// table state is preserved across the outage.
func (d *Device) Pause() { d.paused = true }

// Restart resumes a paused device.
func (d *Device) Restart() { d.paused = false }

// Paused reports whether the device is paused.
func (d *Device) Paused() bool { return d.paused }
