package netsim

import "math/rand"

// Probabilistic fault injection for chaos testing. All randomness
// comes from one seeded RNG owned by the network, so a given seed
// reproduces the exact same loss/jitter/duplication pattern — the
// simulator analogue of the UDP backend's runtime.FaultSpec.

// FaultConfig describes the fault model applied to every link.
type FaultConfig struct {
	// LossRate is the per-traversal drop probability.
	LossRate float64
	// DupRate is the per-traversal duplication probability: the copy
	// takes an independently jittered path, so duplicates may also
	// arrive reordered.
	DupRate float64
	// JitterNs adds a uniform random extra latency in [0, JitterNs)
	// per traversal, which reorders packets relative to each other.
	JitterNs Time
	// Seed seeds the RNG (0 = a fixed default seed).
	Seed int64
}

// Active reports whether any fault dimension is enabled.
func (f FaultConfig) Active() bool {
	return f.LossRate > 0 || f.DupRate > 0 || f.JitterNs > 0
}

type faults struct {
	cfg FaultConfig
	rng *rand.Rand
}

// InjectFaults arms probabilistic fault injection on every link of the
// network (pass a zero FaultConfig to disarm). Deterministic per-link
// DropNth injection keeps working independently.
func (n *Network) InjectFaults(cfg FaultConfig) {
	if !cfg.Active() {
		n.faults = nil
		return
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	n.faults = &faults{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// loseOne decides whether one traversal is dropped.
func (f *faults) loseOne() bool {
	return f != nil && f.cfg.LossRate > 0 && f.rng.Float64() < f.cfg.LossRate
}

// dupOne decides whether one traversal is duplicated.
func (f *faults) dupOne() bool {
	return f != nil && f.cfg.DupRate > 0 && f.rng.Float64() < f.cfg.DupRate
}

// jitterOne draws the extra latency for one traversal.
func (f *faults) jitterOne() Time {
	if f == nil || f.cfg.JitterNs <= 0 {
		return 0
	}
	return Time(f.rng.Float64()) * f.cfg.JitterNs
}

// Pause makes the device drop every packet until Restart: the
// simulated analogue of a crashed or rebooting switch. Register and
// table state is preserved across the outage.
func (d *Device) Pause() { d.paused = true }

// Restart resumes a paused device.
func (d *Device) Restart() { d.paused = false }

// Paused reports whether the device is paused.
func (d *Device) Paused() bool { return d.paused }
