// Package netsim is a deterministic discrete-event network simulator:
// hosts running Go callbacks, devices running P4 programs on the bmv2
// interpreter, and links with latency and bandwidth. It substitutes
// for the paper's physical testbed (six servers and a Tofino switch,
// §VII) in the end-to-end experiments of Figure 14.
package netsim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time float64

// Microsecond/Millisecond helpers.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Sim is the event engine. Events at equal times run in scheduling
// order, so runs are reproducible.
type Sim struct {
	q   eventQueue
	now Time
	seq uint64
	// Processed counts executed events (a runaway guard for tests).
	Processed uint64
	// MaxEvents aborts runs beyond this many events (0 = no limit).
	MaxEvents uint64
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn after delay.
func (s *Sim) At(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.q, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue is empty or the given horizon
// is reached. It returns an error if MaxEvents is exceeded.
func (s *Sim) Run(until Time) error {
	for len(s.q) > 0 {
		e := s.q[0]
		if until > 0 && e.at > until {
			s.now = until
			return nil
		}
		heap.Pop(&s.q)
		s.now = e.at
		s.Processed++
		if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
			return fmt.Errorf("netsim: event budget exceeded (%d)", s.MaxEvents)
		}
		e.fn()
	}
	return nil
}

// RunAll processes every pending event.
func (s *Sim) RunAll() error { return s.Run(0) }

// StepNext executes the next pending event if it is scheduled at or
// before horizon (0 = any). It reports whether an event ran; when no
// eligible event exists and a horizon is given, the clock advances to
// the horizon so blocking receivers observe the timeout.
func (s *Sim) StepNext(horizon Time) (bool, error) {
	if len(s.q) == 0 || (horizon > 0 && s.q[0].at > horizon) {
		if horizon > s.now {
			s.now = horizon
		}
		return false, nil
	}
	e := heap.Pop(&s.q).(*event)
	s.now = e.at
	s.Processed++
	if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
		return false, fmt.Errorf("netsim: event budget exceeded (%d)", s.MaxEvents)
	}
	e.fn()
	return true, nil
}

// Pending reports queued events.
func (s *Sim) Pending() int { return len(s.q) }
