// Package netsim is a deterministic discrete-event network simulator:
// hosts running Go callbacks, devices running P4 programs on the bmv2
// interpreter, and links with latency and bandwidth. It substitutes
// for the paper's physical testbed (six servers and a Tofino switch,
// §VII) in the end-to-end experiments of Figure 14.
package netsim

import (
	"fmt"
	"time"
)

// Time is simulated time in nanoseconds.
type Time float64

// Microsecond/Millisecond helpers.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// Event kinds. evFunc is the zero value so At-scheduled closures need
// no initialization; every other kind is a closure-free record whose
// meaning lives entirely in the packed index fields, dispatched by the
// switch in events.go. The steady-state network path (send → transmit
// → device pipeline → deliver → receive) schedules only typed events,
// so a million-host run allocates nothing per event.
const (
	evFunc     uint8 = iota // fn: generic closure (timers, tests, drivers)
	evHostSend              // node: host idx; buf: chain of framed packets
	evArrive                // link+dir: packet reaches the far end of a link
	evDevFwd                // node: device idx; port: unicast egress port
	evDevMcast              // node: device idx; port: multicast group id
	evHostRecv              // node: host idx; buf: frame for the Receive callback
	evTimer                 // node: host idx; fires the network's OnTimer hook
)

// event is one scheduled occurrence: a tagged union ordered by
// (time, seq). The value is 56 bytes and lives inline in the heap
// slice — scheduling is an append plus sift-up, no boxing, no
// per-event allocation.
type event struct {
	at   Time
	seq  uint64
	buf  *pbuf  // pooled packet buffer (typed kinds)
	fn   func() // evFunc only
	link int32
	node int32
	port int32
	kind uint8
	dir  uint8
}

// Sim is the event engine. Events at equal times run in scheduling
// order, so runs are reproducible.
//
// The queue is a 4-ary min-heap of event values (not pointers, not
// container/heap): scheduling an event is one append plus a sift-up
// with no interface boxing, so the simulator hot path allocates only
// on capacity growth. The wider fan-out halves the tree depth; for
// the mostly-FIFO workloads the experiments generate, pops touch
// fewer cache lines than a binary heap would.
type Sim struct {
	q   []event
	now Time
	seq uint64
	// exec dispatches typed (non-evFunc) events; a Network binds it to
	// the owning partition's dispatch switch. A bare Sim (exec nil)
	// carries closure events only.
	exec func(*event)
	// cur is the event being dispatched. Passing &cur (not the address
	// of a loop local) through the exec func value keeps the event off
	// the heap — escape analysis cannot see through exec. Dispatch must
	// not read the event after invoking a user callback that could pump
	// the simulator recursively.
	cur event
	// Processed counts executed events (a runaway guard for tests).
	Processed uint64
	// MaxEvents aborts runs beyond this many events (0 = no limit).
	MaxEvents uint64
	// PeakQueue is the high-water mark of pending events.
	PeakQueue int
	// ExecWall accumulates real time spent inside Run/StepNext, for
	// events-per-second reporting.
	ExecWall time.Duration
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// less orders events by time, then scheduling order.
func (s *Sim) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends an event and sifts it up (parent of i is (i-1)/4).
func (s *Sim) push(e event) {
	s.q = append(s.q, e)
	i := len(s.q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(&s.q[i], &s.q[p]) {
			break
		}
		s.q[i], s.q[p] = s.q[p], s.q[i]
		i = p
	}
	if len(s.q) > s.PeakQueue {
		s.PeakQueue = len(s.q)
	}
}

// pop removes the minimum event: move the last element to the root and
// sift it down through children 4i+1..4i+4. The vacated tail slot is
// zeroed so the heap does not pin the popped closure or buffer.
func (s *Sim) pop() event {
	top := s.q[0]
	n := len(s.q) - 1
	s.q[0] = s.q[n]
	s.q[n] = event{}
	s.q = s.q[:n]
	i := 0
	for {
		min := i
		c := 4*i + 1
		last := c + 4
		if last > n {
			last = n
		}
		for ; c < last; c++ {
			if s.less(&s.q[c], &s.q[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		s.q[i], s.q[min] = s.q[min], s.q[i]
		i = min
	}
	return top
}

// At schedules fn after delay.
func (s *Sim) At(delay Time, fn func()) {
	s.post(delay, event{fn: fn})
}

// post schedules a typed event after delay, stamping time and
// scheduling order.
func (s *Sim) post(delay Time, e event) {
	if delay < 0 {
		delay = 0
	}
	e.at = s.now + delay
	s.seq++
	e.seq = s.seq
	s.push(e)
}

// postAbs enqueues an event that already carries its absolute time
// (a mailbox hand-off from another partition), assigning it the next
// local scheduling-order number.
func (s *Sim) postAbs(e event) {
	s.seq++
	e.seq = s.seq
	s.push(e)
}

// run1 pops and executes the minimum event.
func (s *Sim) run1() error {
	e := s.pop()
	s.now = e.at
	s.Processed++
	if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
		return fmt.Errorf("netsim: event budget exceeded (%d)", s.MaxEvents)
	}
	if e.kind == evFunc {
		e.fn()
	} else {
		s.cur = e
		s.exec(&s.cur)
	}
	return nil
}

// Run processes events until the queue is empty or the given horizon
// is reached; with a horizon, the clock always lands exactly on it
// (even when the queue drains early), matching StepNext's timeout
// semantics. It returns an error if MaxEvents is exceeded.
func (s *Sim) Run(until Time) error {
	start := time.Now()
	defer func() { s.ExecWall += time.Since(start) }()
	for len(s.q) > 0 {
		if until > 0 && s.q[0].at > until {
			s.now = until
			return nil
		}
		if err := s.run1(); err != nil {
			return err
		}
	}
	if until > s.now {
		s.now = until
	}
	return nil
}

// RunAll processes every pending event.
func (s *Sim) RunAll() error { return s.Run(0) }

// runWindow processes events strictly before wEnd (and not beyond
// until when until > 0): one conservative-lookahead round. Budget
// enforcement is left to the coordinator, which sums across
// partitions after each round.
func (s *Sim) runWindow(wEnd, until Time) {
	start := time.Now()
	for len(s.q) > 0 {
		at := s.q[0].at
		if at >= wEnd || (until > 0 && at > until) {
			break
		}
		e := s.pop()
		s.now = e.at
		s.Processed++
		if e.kind == evFunc {
			e.fn()
		} else {
			s.cur = e
			s.exec(&s.cur)
		}
	}
	s.ExecWall += time.Since(start)
}

// StepNext executes the next pending event if it is scheduled at or
// before horizon (0 = any). It reports whether an event ran; when no
// eligible event exists and a horizon is given, the clock advances to
// the horizon so blocking receivers observe the timeout.
func (s *Sim) StepNext(horizon Time) (bool, error) {
	if len(s.q) == 0 || (horizon > 0 && s.q[0].at > horizon) {
		if horizon > s.now {
			s.now = horizon
		}
		return false, nil
	}
	start := time.Now()
	err := s.run1()
	s.ExecWall += time.Since(start)
	if err != nil {
		return false, err
	}
	return true, nil
}

// Pending reports queued events.
func (s *Sim) Pending() int { return len(s.q) }

// EventsPerSec reports the event execution rate over the wall time
// spent inside Run/StepNext (0 until anything ran).
func (s *Sim) EventsPerSec() float64 {
	if s.ExecWall <= 0 {
		return 0
	}
	return float64(s.Processed) / s.ExecWall.Seconds()
}
