// Package netsim is a deterministic discrete-event network simulator:
// hosts running Go callbacks, devices running P4 programs on the bmv2
// interpreter, and links with latency and bandwidth. It substitutes
// for the paper's physical testbed (six servers and a Tofino switch,
// §VII) in the end-to-end experiments of Figure 14.
package netsim

import (
	"fmt"
	"time"
)

// Time is simulated time in nanoseconds.
type Time float64

// Microsecond/Millisecond helpers.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Sim is the event engine. Events at equal times run in scheduling
// order, so runs are reproducible.
//
// The queue is a 4-ary min-heap of event values (not pointers, not
// container/heap): scheduling an event is one append plus a sift-up
// with no interface boxing, so the simulator hot path allocates only
// on capacity growth. The wider fan-out halves the tree depth; for
// the mostly-FIFO workloads the experiments generate, pops touch
// fewer cache lines than a binary heap would.
type Sim struct {
	q   []event
	now Time
	seq uint64
	// Processed counts executed events (a runaway guard for tests).
	Processed uint64
	// MaxEvents aborts runs beyond this many events (0 = no limit).
	MaxEvents uint64
	// PeakQueue is the high-water mark of pending events.
	PeakQueue int
	// ExecWall accumulates real time spent inside Run/StepNext, for
	// events-per-second reporting.
	ExecWall time.Duration
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// less orders events by time, then scheduling order.
func (s *Sim) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends an event and sifts it up (parent of i is (i-1)/4).
func (s *Sim) push(e event) {
	s.q = append(s.q, e)
	i := len(s.q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(&s.q[i], &s.q[p]) {
			break
		}
		s.q[i], s.q[p] = s.q[p], s.q[i]
		i = p
	}
	if len(s.q) > s.PeakQueue {
		s.PeakQueue = len(s.q)
	}
}

// pop removes the minimum event: move the last element to the root and
// sift it down through children 4i+1..4i+4. The vacated tail slot is
// zeroed so the heap does not pin the popped closure.
func (s *Sim) pop() event {
	top := s.q[0]
	n := len(s.q) - 1
	s.q[0] = s.q[n]
	s.q[n] = event{}
	s.q = s.q[:n]
	i := 0
	for {
		min := i
		c := 4*i + 1
		last := c + 4
		if last > n {
			last = n
		}
		for ; c < last; c++ {
			if s.less(&s.q[c], &s.q[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		s.q[i], s.q[min] = s.q[min], s.q[i]
		i = min
	}
	return top
}

// At schedules fn after delay.
func (s *Sim) At(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	s.push(event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue is empty or the given horizon
// is reached. It returns an error if MaxEvents is exceeded.
func (s *Sim) Run(until Time) error {
	start := time.Now()
	defer func() { s.ExecWall += time.Since(start) }()
	for len(s.q) > 0 {
		if until > 0 && s.q[0].at > until {
			s.now = until
			return nil
		}
		e := s.pop()
		s.now = e.at
		s.Processed++
		if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
			return fmt.Errorf("netsim: event budget exceeded (%d)", s.MaxEvents)
		}
		e.fn()
	}
	return nil
}

// RunAll processes every pending event.
func (s *Sim) RunAll() error { return s.Run(0) }

// StepNext executes the next pending event if it is scheduled at or
// before horizon (0 = any). It reports whether an event ran; when no
// eligible event exists and a horizon is given, the clock advances to
// the horizon so blocking receivers observe the timeout.
func (s *Sim) StepNext(horizon Time) (bool, error) {
	if len(s.q) == 0 || (horizon > 0 && s.q[0].at > horizon) {
		if horizon > s.now {
			s.now = horizon
		}
		return false, nil
	}
	start := time.Now()
	e := s.pop()
	s.now = e.at
	s.Processed++
	if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
		s.ExecWall += time.Since(start)
		return false, fmt.Errorf("netsim: event budget exceeded (%d)", s.MaxEvents)
	}
	e.fn()
	s.ExecWall += time.Since(start)
	return true, nil
}

// Pending reports queued events.
func (s *Sim) Pending() int { return len(s.q) }

// EventsPerSec reports the event execution rate over the wall time
// spent inside Run/StepNext (0 until anything ran).
func (s *Sim) EventsPerSec() float64 {
	if s.ExecWall <= 0 {
		return 0
	}
	return float64(s.Processed) / s.ExecWall.Seconds()
}
