package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/testutil"
)

// buildLS builds a 2-leaf/2-spine fabric with echo programs and two
// hosts (100 on leaf 1, 200 on leaf 2), routed with the given options.
func buildLS(t *testing.T, opts RouteOptions) (*Network, *Topo, *runtime.MessageSpec) {
	t.Helper()
	prog := func(i int, id uint16) *p4.Program {
		p, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, id)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	n := NewNetwork()
	topo, err := BuildLeafSpine(n, LeafSpineSpec{
		LeafIDs: []uint16{1, 2}, SpineIDs: []uint16{10, 11},
		LeafProg: prog, SpineProg: prog,
	})
	if err != nil {
		t.Fatal(err)
	}
	h1 := n.AddHost(100)
	h2 := n.AddHost(200)
	topo.AttachHost(h1, topo.Tiers[0][0], LinkClass{})
	topo.AttachHost(h2, topo.Tiers[0][1], LinkClass{})
	if err := topo.InstallRoutes(opts); err != nil {
		t.Fatal(err)
	}
	spec := &runtime.MessageSpec{Comp: 1, Args: []runtime.ArgSpec{{Name: "x", Bytes: 4, Count: 1, Out: true}}}
	return n, topo, spec
}

// transitFrame builds a framed NetCL packet from src toward device dev
// / host dst, as a leaf sees it in transit.
func transitFrame(t *testing.T, spec *runtime.MessageSpec, src, dst, dev uint16) []byte {
	t.Helper()
	msg, err := runtime.Pack(spec, runtime.Message{Src: src, Dst: dst, Device: dev, Comp: 1}.Header(), [][]uint64{{7}})
	if err != nil {
		t.Fatal(err)
	}
	return runtime.Frame(msg, uint64(src), 0)
}

func TestECMPFlowHashStability(t *testing.T) {
	_, topo, spec := buildLS(t, RouteOptions{ECMP: true, HostRoutes: true})
	leaf := topo.Tiers[0][0]
	up0 := topo.PortTo(leaf, topo.Tiers[1][0])
	up1 := topo.PortTo(leaf, topo.Tiers[1][1])
	if up0 < 0 || up1 < 0 {
		t.Fatalf("leaf uplink ports: %d %d", up0, up1)
	}

	// Same flow, repeated: always the same uplink.
	used := map[int]bool{}
	for src := uint16(0); src < 64; src++ {
		frame := transitFrame(t, spec, 1000+src, 200, 2)
		var first int
		for rep := 0; rep < 3; rep++ {
			res, err := leaf.SW.Process(frame, 9)
			if err != nil {
				t.Fatal(err)
			}
			if res.Dropped {
				t.Fatalf("src %d: transit packet dropped", src)
			}
			if res.Port != up0 && res.Port != up1 {
				t.Fatalf("src %d: egress port %d is not an uplink (%d/%d)", src, res.Port, up0, up1)
			}
			if rep == 0 {
				first = res.Port
			} else if res.Port != first {
				t.Fatalf("src %d: flow moved uplinks %d → %d across repeats", src, first, res.Port)
			}
		}
		used[first] = true
	}
	// Across 64 distinct flows the hash must actually spread.
	if len(used) < 2 {
		t.Fatalf("64 flows all hashed to one uplink: %v", used)
	}
}

// entriesOf snapshots every routing table of every fabric device.
func entriesOf(topo *Topo) map[string][][]string {
	out := map[string][][]string{}
	for _, d := range topo.Devices() {
		for _, tab := range []string{"netcl_fwd", "netcl_ecmp"} {
			var rows []string
			for _, e := range d.SW.Entries(tab) {
				rows = append(rows, fmt.Sprintf("%v->%s%v", e.Keys, e.Action.Name, e.Action.Args))
			}
			out[fmt.Sprintf("dev%d/%s", d.ID, tab)] = append(out[fmt.Sprintf("dev%d/%s", d.ID, tab)], rows)
		}
	}
	return out
}

func TestTopologyRebuildDeterminism(t *testing.T) {
	// Building the same fabric twice must yield identical tables entry
	// for entry — the equal-cost tie-break determinism contract — both
	// with ECMP groups and with single-path lowest-port fallback.
	for _, ecmp := range []bool{false, true} {
		_, topoA, _ := buildLS(t, RouteOptions{ECMP: ecmp, HostRoutes: true})
		_, topoB, _ := buildLS(t, RouteOptions{ECMP: ecmp, HostRoutes: true})
		a, b := entriesOf(topoA), entriesOf(topoB)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("ecmp=%v: rebuild produced different tables:\n%v\nvs\n%v", ecmp, a, b)
		}
	}
}

func TestTopologyBuilderIdempotence(t *testing.T) {
	// The builder must be a pure function of its spec: ports, links and
	// tier shapes identical across two builds.
	shape := func() []string {
		n := NewNetwork()
		topo, err := BuildFatTree(n, FatTreeSpec{
			Pods: 2, EdgesPerPod: 2, AggsPerPod: 2,
			CoreIDs: []uint16{90, 91},
			EdgeID:  func(pod, i int) uint16 { return uint16(10 + pod*4 + i) },
			AggID:   func(pod, i int) uint16 { return uint16(12 + pod*4 + i) },
			Prog: func(id uint16) *p4.Program {
				p, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, id)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.InstallRoutes(RouteOptions{ECMP: true}); err != nil {
			t.Fatal(err)
		}
		var out []string
		for ti, tier := range topo.Tiers {
			for _, d := range tier {
				out = append(out, fmt.Sprintf("tier%d dev%d ports=%d", ti, d.ID, len(d.ports)))
			}
		}
		for _, d := range topo.Devices() {
			for _, e := range d.SW.Entries("netcl_fwd") {
				out = append(out, fmt.Sprintf("dev%d %v %s%v", d.ID, e.Keys, e.Action.Name, e.Action.Args))
			}
			for _, e := range d.SW.Entries("netcl_ecmp") {
				out = append(out, fmt.Sprintf("dev%d ecmp %v %s%v", d.ID, e.Keys, e.Action.Name, e.Action.Args))
			}
		}
		return out
	}
	a, b := shape(), shape()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fat-tree build not idempotent:\n%v\nvs\n%v", a, b)
	}
}

func TestFabricEndToEnd(t *testing.T) {
	// A message from the host on leaf 1 computes at leaf 2's device and
	// reflects back through the fabric: exercises ECMP transit both
	// directions plus host-route delivery.
	n, topo, spec := buildLS(t, RouteOptions{ECMP: true, HostRoutes: true})
	h1 := n.Host(100)
	var got uint64
	h1.SetReceive(func(h *Host, msg []byte) {
		x := make([]uint64, 1)
		if _, err := runtime.Unpack(spec, msg, [][]uint64{x}); err == nil {
			got = x[0]
		}
	})
	msg, err := runtime.Pack(spec, runtime.Message{Src: 100, Dst: 300, Device: 2, Comp: 1}.Header(), [][]uint64{{41}})
	if err != nil {
		t.Fatal(err)
	}
	h1.Send(msg)
	if err := n.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("echo through fabric: got %d, want 42", got)
	}
	// The round trip crossed the spine tier at least twice (up at leaf
	// 1, and up again on the way back from leaf 2).
	if b := topo.TierIngressBytes(1); b == 0 {
		t.Fatal("no bytes counted entering the spine tier")
	}
}
