package netsim

// locality_test.go pins the topology-locality partition split: with a
// fabric attached, SetPartitions cuts the locality order (chain
// position, leaves-then-spines, pod-major fat-tree) instead of raw
// device-id order, so the cuts fall between pods instead of slicing
// every pod in half. Hash-chain invariance of the new split is pinned
// end-to-end by the churn identity runs (the AGG failover timeline is
// a fat-tree at k ∈ {2,4}).

import (
	"testing"

	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/testutil"
)

// crossLinks counts links whose two ends land in different partitions
// under the current assignment.
func crossLinks(n *Network) int {
	c := 0
	for i := int32(0); i < n.links.count; i++ {
		l := n.links.at(i)
		if n.endPart(l.ends[0]) != n.endPart(l.ends[1]) {
			c++
		}
	}
	return c
}

func TestSetPartitionsFatTreeLocality(t *testing.T) {
	// Ids deliberately interleave the pods: edges 10,11 (pod 0) and
	// 12,13 (pod 1), aggs 50,51 / 52,53, core 100 — id order would cut
	// edges from aggs, crossing every pod-internal link.
	n := NewNetwork()
	prog := func(id uint16) *p4.Program {
		p, _, err := testutil.CompileOne(testutil.EchoKernel, passes.TargetTNA, id)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	_, err := BuildFatTree(n, FatTreeSpec{
		Pods: 2, EdgesPerPod: 2, AggsPerPod: 2,
		CoreIDs: []uint16{100},
		EdgeID:  func(p, i int) uint16 { return uint16(10 + p*2 + i) },
		AggID:   func(p, i int) uint16 { return uint16(50 + p*2 + i) },
		Prog:    prog,
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := n.SetPartitions(2); err != nil {
		t.Fatal(err)
	}
	locality := crossLinks(n)

	// The historical id-order split, imposed by hand for comparison.
	order := append([]*Device(nil), n.devs...)
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if order[j].ID < order[i].ID {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for i, d := range order {
		d.part = int32(i * 2 / len(order))
	}
	byID := crossLinks(n)

	if locality >= byID {
		t.Errorf("locality split crosses %d links, id-order split %d — locality must cut fewer", locality, byID)
	}
	// The pod-major order keeps both pods' edge↔agg meshes whole: only
	// pod-1's first edge and the core uplinks straddle the cut.
	if locality > 4 {
		t.Errorf("locality split crosses %d links, want ≤ 4", locality)
	}
}
