package netsim

// topology.go is the fabric layer: declarative builders for multi-tier
// switch topologies (chain, leaf/spine, three-tier fat-tree) with
// per-class link latency/bandwidth, plus a shortest-path route
// installer that programs every device's netcl_fwd table — spreading
// over equal-cost uplinks with ECMP groups when asked. It replaces the
// hand-keyed per-scenario transit wiring: a scenario names the shape
// and attaches hosts; ports, links and tables fall out deterministically.

import (
	"fmt"
	"sort"

	"netcl/internal/p4"
	"netcl/internal/wire"
)

// LinkClass parameterizes one class of links (host-facing, or one
// fabric tier).
type LinkClass struct {
	LatencyNs     Time
	BandwidthGbps float64
}

// or returns the class with zero fields defaulted.
func (c LinkClass) or(lat Time, bw float64) LinkClass {
	if c.LatencyNs <= 0 {
		c.LatencyNs = lat
	}
	if c.BandwidthGbps == 0 {
		c.BandwidthGbps = bw
	}
	return c
}

func (c LinkClass) apply(l *Link) {
	l.LatencyNs = c.LatencyNs
	l.BandwidthGbps = c.BandwidthGbps
}

// fabLink is one inter-switch link with its tier orientation: upDir is
// the link direction index of child→parent traversal, upperTier the
// tier of the parent end.
type fabLink struct {
	l         *Link
	upDir     int
	upperTier int
}

// Topo is a built fabric: devices grouped in tiers (0 = host-facing
// leaves, rising toward the top), the oriented inter-switch links, and
// per-device port allocators for host attachment.
type Topo struct {
	n *Network
	// Tiers holds the fabric's devices: Tiers[0] are the leaves,
	// Tiers[len-1] the top tier (a chain has a single tier).
	Tiers [][]*Device

	up       []fabLink
	portTo   map[[2]int32]int // (from idx, to idx) → egress port on from
	nextPort map[int32]int    // device idx → next free port
	// locality orders the fabric's devices so that physically adjacent
	// switches (a chain hop, a pod's edges and aggs) are neighbors in
	// the sequence: the order SetPartitions cuts into contiguous blocks,
	// so partition boundaries fall between racks/pods instead of
	// slicing through them by device-id accident.
	locality []*Device
}

func newTopo(n *Network) *Topo {
	t := &Topo{n: n, portTo: map[[2]int32]int{}, nextPort: map[int32]int{}}
	n.topo = t
	return t
}

// add registers a fabric device in locality order.
func (t *Topo) add(id uint16, prog *p4.Program) *Device {
	d := t.n.AddDevice(id, prog)
	t.locality = append(t.locality, d)
	return d
}

// Devices returns every fabric device, tier by tier.
func (t *Topo) Devices() []*Device {
	var out []*Device
	for _, tier := range t.Tiers {
		out = append(out, tier...)
	}
	return out
}

// alloc hands out the device's next free port (ports start at 1; 0 is
// never wired, matching portLink's unwired sentinel).
func (t *Topo) alloc(d *Device) int {
	p := t.nextPort[d.idx]
	if p == 0 {
		p = 1
	}
	t.nextPort[d.idx] = p + 1
	return p
}

// wire connects child (lower tier) to parent (upper tier) with the
// class applied, recording ports and orientation.
func (t *Topo) wire(child, parent *Device, upperTier int, class LinkClass) {
	cp, pp := t.alloc(child), t.alloc(parent)
	l := t.n.ConnectDevices(child, cp, parent, pp)
	class.apply(l)
	// ConnectDevices puts child at ends[0], so direction 0 is upward.
	t.up = append(t.up, fabLink{l: l, upDir: 0, upperTier: upperTier})
	t.portTo[[2]int32{child.idx, parent.idx}] = cp
	t.portTo[[2]int32{parent.idx, child.idx}] = pp
}

// SetLinkDown administratively fails (or restores) both directions of
// the fabric link between two adjacent devices. Like SetPortDown, flip
// it from a Device.At event so the change lands at a deterministic
// virtual time. Returns false when the devices are not adjacent.
func (t *Topo) SetLinkDown(a, b *Device, down bool) bool {
	pa, pb := t.PortTo(a, b), t.PortTo(b, a)
	if pa < 0 || pb < 0 {
		return false
	}
	a.SetPortDown(pa, down)
	b.SetPortDown(pb, down)
	return true
}

// PortTo returns from's egress port toward the directly-connected
// fabric neighbor to, or -1 when not adjacent.
func (t *Topo) PortTo(from, to *Device) int {
	if p, ok := t.portTo[[2]int32{from.idx, to.idx}]; ok {
		return p
	}
	return -1
}

// AttachHost connects a host to a fabric device on the next free port
// with the given link class, returning the link and the device port
// (for multicast group membership).
func (t *Topo) AttachHost(h *Host, d *Device, class LinkClass) (*Link, int) {
	p := t.alloc(d)
	l := t.n.Connect(h, d, p)
	class.or(1*Microsecond, 100).apply(l)
	return l, p
}

// TierIngressBytes sums the bytes that crossed fabric links upward
// into the given tier (1 = first aggregation tier above the leaves).
// This is the "spine-ingress bytes" of the fabric benchmark: the
// traffic hierarchical in-network reduction is supposed to cut.
func (t *Topo) TierIngressBytes(tier int) uint64 {
	var total uint64
	for _, fl := range t.up {
		if fl.upperTier == tier {
			total += fl.l.Bytes(fl.upDir)
		}
	}
	return total
}

// ChainSpec describes a single-tier line of devices (the netsimbench
// shape): device i links to device i+1.
type ChainSpec struct {
	IDs  []uint16
	Prog func(i int, id uint16) *p4.Program
	Link LinkClass
}

// BuildChain wires a device chain. Every device is tier 0.
func BuildChain(n *Network, spec ChainSpec) (*Topo, error) {
	if len(spec.IDs) == 0 {
		return nil, fmt.Errorf("netsim: chain needs at least one device")
	}
	t := newTopo(n)
	link := spec.Link.or(2*Microsecond, 100)
	tier := make([]*Device, len(spec.IDs))
	for i, id := range spec.IDs {
		tier[i] = t.add(id, spec.Prog(i, id))
	}
	t.Tiers = [][]*Device{tier}
	for i := 0; i+1 < len(tier); i++ {
		// A chain has no up/down: record links as tier-0 "ingress" so
		// byte accounting still works per hop if ever needed.
		t.wire(tier[i], tier[i+1], 0, link)
	}
	return t, nil
}

// LeafSpineSpec describes a two-tier Clos: every leaf links to every
// spine.
type LeafSpineSpec struct {
	LeafIDs   []uint16
	SpineIDs  []uint16
	LeafProg  func(i int, id uint16) *p4.Program
	SpineProg func(i int, id uint16) *p4.Program
	// Fabric is the leaf↔spine link class (default 2µs / 100G);
	// Host the default AttachHost class (default 1µs / 100G).
	Fabric LinkClass
	Host   LinkClass
}

// BuildLeafSpine wires a leaf/spine fabric: Tiers[0] the leaves,
// Tiers[1] the spines.
func BuildLeafSpine(n *Network, spec LeafSpineSpec) (*Topo, error) {
	if len(spec.LeafIDs) == 0 || len(spec.SpineIDs) == 0 {
		return nil, fmt.Errorf("netsim: leaf/spine needs leaves and spines")
	}
	t := newTopo(n)
	fabric := spec.Fabric.or(2*Microsecond, 100)
	leaves := make([]*Device, len(spec.LeafIDs))
	for i, id := range spec.LeafIDs {
		leaves[i] = t.add(id, spec.LeafProg(i, id))
	}
	spines := make([]*Device, len(spec.SpineIDs))
	for i, id := range spec.SpineIDs {
		spines[i] = t.add(id, spec.SpineProg(i, id))
	}
	t.Tiers = [][]*Device{leaves, spines}
	for _, lf := range leaves {
		for _, sp := range spines {
			t.wire(lf, sp, 1, fabric)
		}
	}
	return t, nil
}

// FatTreeSpec describes a three-tier fabric: pods of edge switches
// under pod aggregation switches, joined by a core tier. Every edge
// links to every agg of its pod; every agg links to every core.
type FatTreeSpec struct {
	Pods        int
	EdgesPerPod int
	AggsPerPod  int
	CoreIDs     []uint16
	// EdgeID/AggID name the devices per (pod, index).
	EdgeID   func(pod, i int) uint16
	AggID    func(pod, i int) uint16
	Prog     func(id uint16) *p4.Program
	Fabric   LinkClass
	CoreLink LinkClass // agg↔core class (defaults to Fabric)
}

// BuildFatTree wires the three-tier fabric: Tiers[0] edges, Tiers[1]
// pod aggs, Tiers[2] cores.
func BuildFatTree(n *Network, spec FatTreeSpec) (*Topo, error) {
	if spec.Pods <= 0 || spec.EdgesPerPod <= 0 || spec.AggsPerPod <= 0 || len(spec.CoreIDs) == 0 {
		return nil, fmt.Errorf("netsim: fat-tree needs pods, edges, aggs and cores")
	}
	t := newTopo(n)
	fabric := spec.Fabric.or(2*Microsecond, 100)
	core := spec.CoreLink.or(fabric.LatencyNs, fabric.BandwidthGbps)

	// Creation order is pod-major (a pod's edges, then its aggs): the
	// locality order partitioning cuts, keeping pods whole.
	var edges, aggs []*Device
	for p := 0; p < spec.Pods; p++ {
		for i := 0; i < spec.EdgesPerPod; i++ {
			edges = append(edges, t.add(spec.EdgeID(p, i), spec.Prog(spec.EdgeID(p, i))))
		}
		for i := 0; i < spec.AggsPerPod; i++ {
			aggs = append(aggs, t.add(spec.AggID(p, i), spec.Prog(spec.AggID(p, i))))
		}
	}
	cores := make([]*Device, len(spec.CoreIDs))
	for i, id := range spec.CoreIDs {
		cores[i] = t.add(id, spec.Prog(id))
	}
	t.Tiers = [][]*Device{edges, aggs, cores}
	for p := 0; p < spec.Pods; p++ {
		for i := 0; i < spec.EdgesPerPod; i++ {
			for j := 0; j < spec.AggsPerPod; j++ {
				t.wire(edges[p*spec.EdgesPerPod+i], aggs[p*spec.AggsPerPod+j], 1, fabric)
			}
		}
	}
	for _, ag := range aggs {
		for _, co := range cores {
			t.wire(ag, co, 2, core)
		}
	}
	return t, nil
}

// RouteOptions configures InstallRoutes.
type RouteOptions struct {
	// ECMP spreads equal-cost next hops over flow-hash buckets through
	// the generated set_ecmp_group/netcl_ecmp pair. Off, ties break to
	// the lowest port (still deterministic, single-path).
	ECMP bool
	// HostRoutes additionally installs one entry per attached host
	// (keyed by host id). Off, only device destinations are installed —
	// the transit key for computed NetCL traffic — which keeps table
	// sizes independent of host count at million-host scale.
	HostRoutes bool
}

// InstallRoutes programs every fabric device's forwarding tables with
// shortest paths over the fabric graph. Iteration is fully ordered —
// destinations by id, devices by id, candidate ports ascending, ECMP
// group ids in first-use order — so rebuilding an identical topology
// yields identical tables, entry for entry (the equal-cost tie-break
// determinism the partitioned-run hash tests rely on).
func (t *Topo) InstallRoutes(opts RouteOptions) error {
	devs := t.Devices()
	sort.Slice(devs, func(i, j int) bool { return devs[i].ID < devs[j].ID })
	n := t.n

	// dist holds, per destination, the hop count from every device
	// (indexed by device slab idx), built by one BFS from the
	// destination over the fabric adjacency.
	adj := map[int32][]int32{}
	for _, d := range devs {
		for p := range d.ports {
			li := d.ports[p]
			if li == 0 {
				continue
			}
			peer := n.links.at(li-1).peerOf(d, p)
			if peer.isDevice() {
				adj[d.idx] = append(adj[d.idx], peer.deviceIdx())
			}
		}
	}
	distTo := func(dst *Device) map[int32]int {
		dist := map[int32]int{dst.idx: 0}
		queue := []int32{dst.idx}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if _, ok := dist[nb]; !ok {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		return dist
	}

	// nexthops returns d's equal-cost egress ports toward dst (ports
	// ascending), given dst's distance field.
	nexthops := func(d *Device, dist map[int32]int) []int {
		dd, ok := dist[d.idx]
		if !ok {
			return nil
		}
		var ports []int
		for p := range d.ports {
			li := d.ports[p]
			if li == 0 {
				continue
			}
			peer := n.links.at(li-1).peerOf(d, p)
			if !peer.isDevice() {
				continue
			}
			if pd, ok := dist[peer.deviceIdx()]; ok && pd == dd-1 {
				ports = append(ports, p)
			}
		}
		return ports
	}

	type routeEntry struct {
		table string
		e     *p4.Entry
	}
	type pending struct {
		dev     *Device
		entries []routeEntry
		groups  map[string]int // port-set key → gid
		nextGid int
	}
	pend := map[int32]*pending{}
	getPend := func(d *Device) *pending {
		pd := pend[d.idx]
		if pd == nil {
			pd = &pending{dev: d, groups: map[string]int{}, nextGid: 1}
			pend[d.idx] = pd
		}
		return pd
	}

	// install resolves one (device, destination-id, ports) decision
	// into netcl_fwd (and netcl_ecmp) entries.
	install := func(d *Device, id uint16, ports []int) {
		pd := getPend(d)
		if len(ports) == 1 || !opts.ECMP {
			pd.entries = append(pd.entries, routeEntry{"netcl_fwd", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(ports[0])}},
			}})
			return
		}
		key := fmt.Sprint(ports)
		gid, ok := pd.groups[key]
		if !ok {
			gid = pd.nextGid
			pd.nextGid++
			pd.groups[key] = gid
			for b := 0; b < wire.ECMPBuckets; b++ {
				pd.entries = append(pd.entries, routeEntry{"netcl_ecmp", &p4.Entry{
					Keys: []p4.KeyValue{
						{Value: uint64(gid), PrefixLen: -1},
						{Value: uint64(b), PrefixLen: -1},
					},
					Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(ports[b%len(ports)])}},
				}})
			}
		}
		pd.entries = append(pd.entries, routeEntry{"netcl_fwd", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
			Action: &p4.ActionCall{Name: "set_ecmp_group", Args: []uint64{uint64(gid)}},
		}})
	}

	// Device destinations, ascending id.
	for _, dst := range devs {
		dist := distTo(dst)
		for _, d := range devs {
			if d == dst {
				continue
			}
			ports := nexthops(d, dist)
			if len(ports) == 0 {
				return fmt.Errorf("netsim: no route from device %d to device %d", d.ID, dst.ID)
			}
			install(d, dst.ID, ports)
		}
	}

	// Host destinations: route to the attach device, except at the
	// attach device itself where the host port wins.
	if opts.HostRoutes {
		type hostAt struct {
			id   uint16
			dev  *Device
			port int
		}
		var hosts []hostAt
		for _, d := range devs {
			for p := range d.ports {
				li := d.ports[p]
				if li == 0 {
					continue
				}
				peer := n.links.at(li-1).peerOf(d, p)
				if !peer.isDevice() {
					hosts = append(hosts, hostAt{id: n.hs.at(peer.node).ID, dev: d, port: p})
				}
			}
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i].id < hosts[j].id })
		for _, h := range hosts {
			dist := distTo(h.dev)
			for _, d := range devs {
				if d == h.dev {
					pd := getPend(d)
					pd.entries = append(pd.entries, routeEntry{"netcl_fwd", &p4.Entry{
						Keys:   []p4.KeyValue{{Value: uint64(h.id), PrefixLen: -1}},
						Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(h.port)}},
					}})
					continue
				}
				ports := nexthops(d, dist)
				if len(ports) == 0 {
					return fmt.Errorf("netsim: no route from device %d to host %d", d.ID, h.id)
				}
				install(d, h.id, ports)
			}
		}
	}

	// Commit: devices ascending, each device's entries in decision
	// order.
	for _, d := range devs {
		pd := pend[d.idx]
		if pd == nil {
			continue
		}
		for _, re := range pd.entries {
			if err := d.SW.InsertEntry(re.table, re.e); err != nil {
				return fmt.Errorf("netsim: device %d: %w", d.ID, err)
			}
		}
	}
	return nil
}
