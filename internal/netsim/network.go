package netsim

import (
	"fmt"
	"math"
	"sort"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/runtime"
)

// Network is a topology of hosts and P4 devices over links.
//
// Node state is slab-allocated: Host and Link handles come out of
// chunked slabs (stable pointers), hot per-host fields live in
// struct-of-arrays columns (slab.go), and the event loop runs typed
// event records (events.go) — the combination holds bytes-per-host
// and allocs-per-event near the floor at million-host scale.
type Network struct {
	Sim
	netCounters
	hostsByID map[uint16]*Host
	devsByID  map[uint16]*Device
	hs        hostSlab
	hc        hostCols
	links     linkSlab
	devs      []*Device
	faults    *faults
	// topo is the fabric last built on this network (nil when wired by
	// hand); SetPartitions uses its locality order to cut partitions
	// along rack/pod boundaries.
	topo *Topo

	// serial is the execution context of unpartitioned runs and
	// doubles as partition 0 when partitions are armed.
	serial    part
	parts     []*part // nil or len 1 means serial execution
	pmode     bool    // partitioned semantics armed (see SetPartitions)
	lookahead Time

	trace   bool
	timerFn func(*Host)
}

// netCounters are the delivery/drop statistics, embedded so the
// historical field names (n.PacketsDelivered etc.) keep working and so
// partitions can accumulate privately and fold at the barrier.
type netCounters struct {
	PacketsDelivered uint64
	PacketsDropped   uint64
	// FaultsDropped/FaultsDuplicated count probabilistic injections
	// (see InjectFaults); they are included in PacketsDropped.
	FaultsDropped    uint64
	FaultsDuplicated uint64
	// LinkDownDrops counts packets offered to an administratively-down
	// link direction (SetPortDown/SetLinkDown); included in
	// PacketsDropped.
	LinkDownDrops uint64
}

func (c *netCounters) fold(o *netCounters) {
	c.PacketsDelivered += o.PacketsDelivered
	c.PacketsDropped += o.PacketsDropped
	c.FaultsDropped += o.FaultsDropped
	c.FaultsDuplicated += o.FaultsDuplicated
	c.LinkDownDrops += o.LinkDownDrops
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	n := &Network{
		hostsByID: map[uint16]*Host{},
		devsByID:  map[uint16]*Device{},
	}
	n.serial = part{n: n, sim: &n.Sim, ctr: &n.netCounters}
	n.Sim.exec = func(e *event) { n.serial.dispatch(e) }
	return n
}

// Link is a full-duplex link with latency and bandwidth; each
// direction serializes independently.
type Link struct {
	LatencyNs     Time
	BandwidthGbps float64
	// DropNth deterministically drops every Nth packet crossing the
	// link (0 = lossless); used for failure injection. In partitioned
	// mode the traversal count is kept per direction (two partitions
	// may drive the two directions concurrently), so "every Nth"
	// becomes every Nth per direction there.
	DropNth int
	Dropped uint64
	crossed uint64
	// busyUntil per direction (0: ends[0]→ends[1], 1: reverse).
	busyUntil [2]Time
	ends      [2]end
	idx       int32
	// Partitioned-mode per-direction state: traversal/drop counters a
	// single partition owns (folded into crossed/Dropped after a
	// parallel run) and the per-direction fault RNG streams.
	crossedDir [2]uint64
	droppedDir [2]uint64
	rng        [2]uint64
	// bytesDir counts payload bytes actually put on the wire per
	// direction (drops excluded, duplicates included). A direction is
	// only ever driven by the partition owning its sending end, so one
	// counter serves both execution regimes without folding.
	bytesDir [2]uint64
	// down marks a direction administratively failed (FailLink events):
	// packets offered to a down direction drop before any counter or
	// fault-RNG draw, so flipping the flag at identical virtual times
	// keeps the draw streams — and therefore k-partition hash identity —
	// aligned with serial execution.
	down [2]bool
}

// Bytes returns the bytes transmitted in one direction (0: ends[0]→
// ends[1], 1: reverse).
func (l *Link) Bytes(dir int) uint64 { return l.bytesDir[dir&1] }

// end identifies one side of a link: a host index (≥ 0) or a device
// index encoded as its bitwise complement (< 0), plus the device port.
type end struct {
	node int32
	port int32
}

func devNode(idx int32) int32  { return ^idx }
func (e end) isDevice() bool   { return e.node < 0 }
func (e end) deviceIdx() int32 { return ^e.node }

// serialization returns the wire time of n bytes.
func (l *Link) serialization(n int) Time {
	if l.BandwidthGbps <= 0 {
		return 0
	}
	return Time(float64(n*8) / l.BandwidthGbps) // ns for Gbit/s
}

// Host is an end system: a thin handle over slab state. Hot fields
// (counters, processing delay, the Receive callback) live in the
// network's struct-of-arrays columns behind the accessor methods.
type Host struct {
	ID  uint16
	net *Network
	idx int32
}

// Index returns the host's slab index (stable, assigned at AddHost).
func (h *Host) Index() int { return int(h.idx) }

// SetReceive installs the callback invoked (in simulated time) for
// every delivered NetCL message, already deframed. The msg slice is
// only valid for the duration of the callback: the underlying packet
// buffer is pooled and reused — copy it to retain it.
func (h *Host) SetReceive(fn func(h *Host, msg []byte)) { h.net.hc.recv[h.idx] = fn }

// ReceiveFn returns the currently installed receive callback.
func (h *Host) ReceiveFn() func(h *Host, msg []byte) { return h.net.hc.recv[h.idx] }

// ProcessingNs returns the per-message host-side cost (socket wakeup,
// packing); applied before Receive runs and on each Send.
func (h *Host) ProcessingNs() Time { return h.net.hc.procNs[h.idx] }

// SetProcessingNs sets the per-message host-side cost.
func (h *Host) SetProcessingNs(t Time) { h.net.hc.procNs[h.idx] = t }

// Sent returns the number of frames the host transmitted.
func (h *Host) Sent() uint64 { return h.net.hc.sent[h.idx] }

// Received returns the number of frames delivered to the host.
func (h *Host) Received() uint64 { return h.net.hc.recvd[h.idx] }

// Device is a P4 switch instance.
type Device struct {
	ID    uint16
	SW    *bmv2.Switch
	net   *Network
	idx   int32
	part  int32
	ports []int32 // port number → link index + 1 (0 = unwired)
	mcast map[int][]int
	// PipelineNs is the device forwarding latency (from the p4c
	// latency model or a default).
	PipelineNs Time
	// paused devices drop every packet (see Pause/Restart).
	paused bool

	Processed uint64
}

// AddHost registers a host.
func (n *Network) AddHost(id uint16) *Host {
	h := n.hs.alloc()
	*h = Host{ID: id, net: n, idx: n.hc.add()}
	n.hostsByID[id] = h
	return h
}

// AddDevice registers a device running the given P4 program.
func (n *Network) AddDevice(id uint16, prog *p4.Program) *Device {
	d := &Device{
		ID: id, SW: bmv2.New(prog), net: n,
		idx: int32(len(n.devs)), mcast: map[int][]int{},
		PipelineNs: 400,
	}
	n.devs = append(n.devs, d)
	n.devsByID[id] = d
	return d
}

// Host returns a host by id.
func (n *Network) Host(id uint16) *Host { return n.hostsByID[id] }

// Device returns a device by id.
func (n *Network) Device(id uint16) *Device { return n.devsByID[id] }

// Hosts returns the number of hosts in the network.
func (n *Network) Hosts() int { return int(n.hs.count) }

// HostAt returns a host by slab index (insertion order).
func (n *Network) HostAt(i int) *Host { return n.hs.at(int32(i)) }

func (d *Device) setPort(p int, linkIdx int32) {
	for p >= len(d.ports) {
		d.ports = append(d.ports, 0)
	}
	d.ports[p] = linkIdx + 1
}

func (d *Device) portLink(p int) int32 {
	if p < 0 || p >= len(d.ports) {
		return 0
	}
	return d.ports[p]
}

// Connect joins a host to a device port (100G, 1µs default latency).
// The host is always end 0 of the link.
func (n *Network) Connect(h *Host, d *Device, devPort int) *Link {
	l := n.links.alloc()
	l.LatencyNs = 1 * Microsecond
	l.BandwidthGbps = 100
	l.ends[0] = end{node: h.idx}
	l.ends[1] = end{node: devNode(d.idx), port: int32(devPort)}
	n.hc.link[h.idx] = l.idx + 1
	d.setPort(devPort, l.idx)
	return l
}

// ConnectDevices joins two devices.
func (n *Network) ConnectDevices(a *Device, aPort int, b *Device, bPort int) *Link {
	l := n.links.alloc()
	l.LatencyNs = 1 * Microsecond
	l.BandwidthGbps = 100
	l.ends[0] = end{node: devNode(a.idx), port: int32(aPort)}
	l.ends[1] = end{node: devNode(b.idx), port: int32(bPort)}
	a.setPort(aPort, l.idx)
	b.setPort(bPort, l.idx)
	return l
}

// SetMulticastGroup installs a replication group on the device.
func (d *Device) SetMulticastGroup(gid int, ports []int) {
	d.mcast[gid] = append([]int(nil), ports...)
}

// AutoWire installs netcl_fwd entries on every device: each node id is
// mapped to the local egress port on the shortest path toward it. This
// plays the role of the paper's operator-managed deployment step
// (§III: "the assumed topology gets mapped to the real network").
// Iteration is fully ordered — devices by id, ports ascending, entry
// installation by node id — so equal-cost tie-breaks and the resulting
// table contents are identical run to run.
func (n *Network) AutoWire() error {
	devs := append([]*Device(nil), n.devs...)
	sort.Slice(devs, func(i, j int) bool { return devs[i].ID < devs[j].ID })
	for _, d := range devs {
		// BFS from d over the device graph, port numbers ascending.
		nexthopPort := map[uint16]int{}
		type item struct {
			dev  *Device
			port int // first-hop port at d
		}
		visited := map[*Device]bool{d: true}
		var queue []item
		expand := func(from *Device, firstHop func(p int) int) {
			for p := range from.ports {
				li := from.ports[p]
				if li == 0 {
					continue
				}
				l := n.links.at(li - 1)
				peer := l.peerOf(from, p)
				if peer.isDevice() {
					pd := n.devs[peer.deviceIdx()]
					if !visited[pd] {
						visited[pd] = true
						nexthopPort[pd.ID] = firstHop(p)
						queue = append(queue, item{dev: pd, port: firstHop(p)})
					}
				} else {
					ph := n.hs.at(peer.node)
					if _, ok := nexthopPort[ph.ID]; !ok {
						nexthopPort[ph.ID] = firstHop(p)
					}
				}
			}
		}
		expand(d, func(p int) int { return p })
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			expand(it.dev, func(int) int { return it.port })
		}
		ids := make([]int, 0, len(nexthopPort))
		for id := range nexthopPort {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			err := d.SW.InsertEntry("netcl_fwd", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(nexthopPort[uint16(id)])}},
			})
			if err != nil {
				return fmt.Errorf("device %d: %w", d.ID, err)
			}
		}
	}
	return nil
}

// peerOf returns the far end of the link as seen from device d's
// port p.
func (l *Link) peerOf(d *Device, p int) end {
	me := end{node: devNode(d.idx), port: int32(p)}
	if l.ends[0] == me {
		return l.ends[1]
	}
	return l.ends[0]
}

// Send transmits a NetCL message from the host into the network. The
// frame is built into a pooled buffer; msg itself is copied and may be
// reused by the caller immediately.
func (h *Host) Send(msg []byte) {
	n := h.net
	li := n.hc.link[h.idx]
	if li == 0 {
		return
	}
	l := n.links.at(li - 1)
	if !l.ends[1].isDevice() {
		return
	}
	n.hc.sent[h.idx]++ // counted only for frames that actually transmit
	pt := n.partFor(h.idx)
	pb := pt.pool.get()
	pb.b = frameInto(pb.b, msg, uint64(h.ID))
	pt.sim.post(n.hc.procNs[h.idx], event{kind: evHostSend, node: h.idx, buf: pb})
}

// SendBatch transmits several NetCL messages as one host operation:
// the buffered-flush analogue, paying the ProcessingNs wakeup once for
// the whole batch. Each message still frames, serializes and faults on
// the link individually, so loss and ordering behave exactly as with
// per-message Send.
func (h *Host) SendBatch(msgs [][]byte) {
	n := h.net
	li := n.hc.link[h.idx]
	if li == 0 || len(msgs) == 0 {
		return
	}
	l := n.links.at(li - 1)
	if !l.ends[1].isDevice() {
		return
	}
	n.hc.sent[h.idx] += uint64(len(msgs))
	pt := n.partFor(h.idx)
	var head, tail *pbuf
	for _, m := range msgs {
		pb := pt.pool.get()
		pb.b = frameInto(pb.b, m, uint64(h.ID))
		if tail == nil {
			head = pb
		} else {
			tail.next = pb
		}
		tail = pb
	}
	pt.sim.post(n.hc.procNs[h.idx], event{kind: evHostSend, node: h.idx, buf: head})
}

// frameInto builds the NetCL frame for msg into buf's capacity.
func frameInto(buf, msg []byte, src uint64) []byte {
	need := runtime.FrameOverhead + len(msg)
	if cap(buf) < need {
		buf = make([]byte, need)
	} else {
		buf = buf[:need]
	}
	copy(buf[runtime.FrameOverhead:], msg)
	return runtime.FrameInPlace(buf, src, 0)
}

// At schedules fn to run at now+delay in the partition owning this
// device: the scenario hook for timeline events (crash, restore,
// control-plane batches) that must mutate device state from inside the
// owning execution context. Call it after SetPartitions, like
// StartTimer. fn runs in simulated time and may itself call At to
// chain follow-up events.
func (d *Device) At(delay Time, fn func()) {
	pt := d.net.partForDev(d)
	pt.sim.post(delay, event{kind: evFunc, fn: fn})
}

// Now returns the simulated time in the host's partition: the clock a
// receive or timer callback must read (the network-wide Sim clock only
// advances for partition 0 once partitions are armed).
func (h *Host) Now() Time { return h.net.partFor(h.idx).sim.now }

// At schedules fn at now+delay in the partition owning this host —
// the host-side analogue of Device.At (per-host state swaps such as a
// workload-distribution shift).
func (h *Host) At(delay Time, fn func()) {
	pt := h.net.partFor(h.idx)
	pt.sim.post(delay, event{kind: evFunc, fn: fn})
}

// partForDev returns the execution context owning a device.
func (n *Network) partForDev(d *Device) *part {
	if len(n.parts) == 0 {
		return &n.serial
	}
	return n.parts[d.part]
}

// SetPortDown administratively fails (or restores) the outgoing
// direction of the link on one device port. Packets the device offers
// to a down direction drop at the link (LinkDownDrops); the reverse
// direction is unaffected unless failed from the peer. Flip it from a
// Device.At event so the change lands at a deterministic virtual time
// in the owning partition.
func (d *Device) SetPortDown(port int, down bool) {
	li := d.portLink(port)
	if li == 0 {
		return
	}
	l := d.net.links.at(li - 1)
	dir := 0
	if l.ends[0] != (end{node: devNode(d.idx), port: int32(port)}) {
		dir = 1
	}
	l.down[dir] = down
}

// OnTimer installs the network-wide timer callback fired by
// Host.StartTimer events: the closure-free way for scenario drivers to
// self-pace millions of senders (one registered function, zero
// allocations per armed timer).
func (n *Network) OnTimer(fn func(*Host)) { n.timerFn = fn }

// StartTimer schedules the network's OnTimer callback for this host
// after delay. In partitioned mode the timer lands in the host's own
// partition, so it is safe to arm from setup code and from callbacks
// running anywhere in that partition.
func (h *Host) StartTimer(delay Time) {
	pt := h.net.partFor(h.idx)
	pt.sim.post(delay, event{kind: evTimer, node: h.idx})
}

// EnableTrace turns on per-host delivery hash chains: every delivery
// folds (time, payload) into the host's chain, and TraceHash combines
// the chains in host order. Two runs with equal hashes delivered the
// same bytes at the same simulated times to every host — the
// determinism witness used by the partitioned-vs-serial tests.
func (n *Network) EnableTrace() { n.trace = true }

// TraceHash folds the per-host delivery chains (host slab order) into
// one digest.
func (n *Network) TraceHash() uint64 {
	h := uint64(14695981039346656037)
	for _, hh := range n.hc.hash {
		for s := 0; s < 64; s += 8 {
			h = (h ^ (hh >> s & 0xff)) * 1099511628211
		}
	}
	return h
}

func (n *Network) foldTrace(hi int32, t Time, msg []byte) {
	h := n.hc.hash[hi]
	if h == 0 {
		h = 14695981039346656037
	}
	tb := math.Float64bits(float64(t)) // exact: equal hashes need equal times
	for s := 0; s < 64; s += 8 {
		h = (h ^ (tb >> s & 0xff)) * 1099511628211
	}
	for _, b := range msg {
		h = (h ^ uint64(b)) * 1099511628211
	}
	n.hc.hash[hi] = h
}
