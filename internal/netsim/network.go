package netsim

import (
	"fmt"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/runtime"
)

// Network is a topology of hosts and P4 devices over links.
type Network struct {
	Sim
	hosts   map[uint16]*Host
	devices map[uint16]*Device
	faults  *faults
	// Stats.
	PacketsDelivered uint64
	PacketsDropped   uint64
	// FaultsDropped/FaultsDuplicated count probabilistic injections
	// (see InjectFaults); they are included in PacketsDropped.
	FaultsDropped    uint64
	FaultsDuplicated uint64
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		hosts:   map[uint16]*Host{},
		devices: map[uint16]*Device{},
	}
}

// Link is a full-duplex link with latency and bandwidth; each
// direction serializes independently.
type Link struct {
	LatencyNs     Time
	BandwidthGbps float64
	// DropNth deterministically drops every Nth packet crossing the
	// link (0 = lossless); used for failure injection.
	DropNth int
	Dropped uint64
	crossed uint64
	// busyUntil per direction (0: a->b, 1: b->a).
	busyUntil [2]Time
	ends      [2]port
}

type port struct {
	node interface{} // *Host or *Device
	port int         // device port number (hosts ignore)
}

// serialization returns the wire time of n bytes.
func (l *Link) serialization(n int) Time {
	if l.BandwidthGbps <= 0 {
		return 0
	}
	return Time(float64(n*8) / l.BandwidthGbps) // ns for Gbit/s
}

// Host is an end system. Receive is invoked (in simulated time) for
// every delivered NetCL message, already deframed.
type Host struct {
	ID  uint16
	net *Network
	lnk *Link
	// Receive gets the raw NetCL message (header + data).
	Receive func(h *Host, msg []byte)
	// ProcessingNs models per-message host-side cost (socket wakeup,
	// packing); applied before Receive runs and on each Send.
	ProcessingNs Time

	Sent, Received uint64
}

// Device is a P4 switch instance.
type Device struct {
	ID    uint16
	SW    *bmv2.Switch
	net   *Network
	ports map[int]*Link
	mcast map[int][]int
	// PipelineNs is the device forwarding latency (from the p4c
	// latency model or a default).
	PipelineNs Time
	// paused devices drop every packet (see Pause/Restart).
	paused bool

	Processed uint64
}

// AddHost registers a host.
func (n *Network) AddHost(id uint16) *Host {
	h := &Host{ID: id, net: n, ProcessingNs: 2 * Microsecond}
	n.hosts[id] = h
	return h
}

// AddDevice registers a device running the given P4 program.
func (n *Network) AddDevice(id uint16, prog *p4.Program) *Device {
	d := &Device{
		ID: id, SW: bmv2.New(prog), net: n,
		ports: map[int]*Link{}, mcast: map[int][]int{},
		PipelineNs: 400,
	}
	n.devices[id] = d
	return d
}

// Host returns a host by id.
func (n *Network) Host(id uint16) *Host { return n.hosts[id] }

// Device returns a device by id.
func (n *Network) Device(id uint16) *Device { return n.devices[id] }

// Connect joins a host to a device port (100G, 1µs default latency).
func (n *Network) Connect(h *Host, d *Device, devPort int) *Link {
	l := &Link{LatencyNs: 1 * Microsecond, BandwidthGbps: 100}
	l.ends[0] = port{node: h}
	l.ends[1] = port{node: d, port: devPort}
	h.lnk = l
	d.ports[devPort] = l
	return l
}

// ConnectDevices joins two devices.
func (n *Network) ConnectDevices(a *Device, aPort int, b *Device, bPort int) *Link {
	l := &Link{LatencyNs: 1 * Microsecond, BandwidthGbps: 100}
	l.ends[0] = port{node: a, port: aPort}
	l.ends[1] = port{node: b, port: bPort}
	a.ports[aPort] = l
	b.ports[bPort] = l
	return l
}

// SetMulticastGroup installs a replication group on the device.
func (d *Device) SetMulticastGroup(gid int, ports []int) {
	d.mcast[gid] = append([]int(nil), ports...)
}

// AutoWire installs netcl_fwd entries on every device: each node id is
// mapped to the local egress port on the shortest path toward it. This
// plays the role of the paper's operator-managed deployment step
// (§III: "the assumed topology gets mapped to the real network").
func (n *Network) AutoWire() error {
	for _, d := range n.devices {
		// BFS from d over the device graph.
		nexthopPort := map[uint16]int{}
		type item struct {
			dev  *Device
			port int // first-hop port at d
		}
		visited := map[*Device]bool{d: true}
		var queue []item
		for p, l := range d.ports {
			peerNode, _ := l.peer(port{node: d, port: p})
			switch peer := peerNode.(type) {
			case *Host:
				nexthopPort[peer.ID] = p
			case *Device:
				if !visited[peer] {
					visited[peer] = true
					nexthopPort[peer.ID] = p
					queue = append(queue, item{dev: peer, port: p})
				}
			}
		}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			for p2, l := range it.dev.ports {
				peerNode, _ := l.peer(port{node: it.dev, port: p2})
				switch peer := peerNode.(type) {
				case *Host:
					if _, ok := nexthopPort[peer.ID]; !ok {
						nexthopPort[peer.ID] = it.port
					}
				case *Device:
					if !visited[peer] {
						visited[peer] = true
						nexthopPort[peer.ID] = it.port
						queue = append(queue, item{dev: peer, port: it.port})
					}
				}
			}
		}
		for id, p := range nexthopPort {
			err := d.SW.InsertEntry("netcl_fwd", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(p)}},
			})
			if err != nil {
				return fmt.Errorf("device %d: %w", d.ID, err)
			}
		}
	}
	return nil
}

// peer returns the node on the other end of the link from p.
func (l *Link) peer(p port) (interface{}, int) {
	if l.ends[0].node == p.node && l.ends[0].port == p.port {
		return l.ends[1].node, l.ends[1].port
	}
	return l.ends[0].node, l.ends[0].port
}

func (l *Link) dirIndex(from port) int {
	if l.ends[0].node == from.node && l.ends[0].port == from.port {
		return 0
	}
	return 1
}

// transmit schedules pkt across l starting at from; deliver runs at
// the arrival time.
func (n *Network) transmit(l *Link, from port, pkt []byte, deliver func()) {
	l.crossed++
	if l.DropNth > 0 && l.crossed%uint64(l.DropNth) == 0 {
		l.Dropped++
		n.PacketsDropped++
		return
	}
	if n.faults.loseOne() {
		l.Dropped++
		n.PacketsDropped++
		n.FaultsDropped++
		return
	}
	dir := l.dirIndex(from)
	ser := l.serialization(len(pkt))
	start := n.Now()
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	done := start + ser
	l.busyUntil[dir] = done
	n.At(done-n.Now()+l.LatencyNs+n.faults.jitterOne(), deliver)
	if n.faults.dupOne() {
		n.FaultsDuplicated++
		n.At(done-n.Now()+l.LatencyNs+n.faults.jitterOne(), deliver)
	}
}

// Send transmits a NetCL message from the host into the network.
func (h *Host) Send(msg []byte) {
	if h.lnk == nil {
		return
	}
	h.Sent++
	pkt := runtime.Frame(msg, uint64(h.ID), 0)
	me := port{node: h}
	peerNode, peerPort := h.lnk.peer(me)
	dev, ok := peerNode.(*Device)
	if !ok {
		return
	}
	h.net.At(h.ProcessingNs, func() {
		h.net.transmit(h.lnk, me, pkt, func() {
			dev.receive(pkt, peerPort)
		})
	})
}

// SendBatch transmits several NetCL messages as one host operation:
// the buffered-flush analogue, paying the ProcessingNs wakeup once for
// the whole batch. Each message still frames, serializes and faults on
// the link individually, so loss and ordering behave exactly as with
// per-message Send.
func (h *Host) SendBatch(msgs [][]byte) {
	if h.lnk == nil || len(msgs) == 0 {
		return
	}
	me := port{node: h}
	peerNode, peerPort := h.lnk.peer(me)
	dev, ok := peerNode.(*Device)
	if !ok {
		return
	}
	h.Sent += uint64(len(msgs))
	pkts := make([][]byte, len(msgs))
	for i, m := range msgs {
		pkts[i] = runtime.Frame(m, uint64(h.ID), 0)
	}
	h.net.At(h.ProcessingNs, func() {
		for _, pkt := range pkts {
			pkt := pkt
			h.net.transmit(h.lnk, me, pkt, func() { dev.receive(pkt, peerPort) })
		}
	})
}

// receive runs the P4 pipeline and forwards the result.
func (d *Device) receive(pkt []byte, inPort int) {
	if d.paused {
		d.net.PacketsDropped++
		return
	}
	d.Processed++
	res, err := d.SW.Process(pkt, inPort)
	if err != nil || res.Dropped || res == nil {
		d.net.PacketsDropped++
		return
	}
	deliver := func(outPort int, data []byte) {
		l := d.ports[outPort]
		if l == nil {
			d.net.PacketsDropped++
			return
		}
		me := port{node: d, port: outPort}
		peerNode, peerPort := l.peer(me)
		d.net.transmit(l, me, data, func() {
			switch peer := peerNode.(type) {
			case *Host:
				peer.deliver(data)
			case *Device:
				peer.receive(data, peerPort)
			}
		})
	}
	d.net.At(d.PipelineNs, func() {
		if res.Mcast != 0 {
			ports := d.mcast[res.Mcast]
			for i, p := range ports {
				// Each recipient gets its own buffer; the last one can
				// take ownership of res.Data itself, like the unicast
				// path (one allocation saved per multicast).
				data := res.Data
				if i < len(ports)-1 {
					data = append([]byte(nil), res.Data...)
				}
				deliver(p, data)
			}
			if len(ports) == 0 {
				d.net.PacketsDropped++
			}
			return
		}
		deliver(res.Port, res.Data)
	})
}

// deliver hands a frame to the host callback after host processing.
func (h *Host) deliver(pkt []byte) {
	msg, ok := runtime.Deframe(pkt)
	if !ok {
		return
	}
	h.Received++
	h.net.PacketsDelivered++
	if h.Receive != nil {
		h.net.At(h.ProcessingNs, func() { h.Receive(h, msg) })
	}
}
