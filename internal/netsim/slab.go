package netsim

// Slab and struct-of-arrays storage for million-host topologies.
//
// Hosts and links live in chunked slabs: handle structs are allocated
// 8192 at a time so &chunk[i] stays stable forever (the public API
// hands out *Host and *Link), while the hot per-host fields live in
// flat struct-of-arrays columns indexed by the same integer — the
// event loop touches counters and delays without chasing a pointer
// per host, and a topology costs a handful of allocations per 8k
// nodes instead of one map entry plus one struct per node.

const (
	slabShift = 13 // 8192 entries per chunk
	slabMask  = (1 << slabShift) - 1
)

// hostCols is the struct-of-arrays half of host state: everything the
// steady-state event path reads or writes, indexed by Host.idx.
type hostCols struct {
	link   []int32 // attached link index + 1 (0 = unattached)
	part   []int32 // owning partition (0 when unpartitioned)
	procNs []Time  // per-message host-side processing cost
	sent   []uint64
	recvd  []uint64
	recv   []func(*Host, []byte)
	hash   []uint64 // per-host delivery hash chain (0 = empty)
}

func (hc *hostCols) add() int32 {
	i := int32(len(hc.link))
	hc.link = append(hc.link, 0)
	hc.part = append(hc.part, 0)
	hc.procNs = append(hc.procNs, 2*Microsecond)
	hc.sent = append(hc.sent, 0)
	hc.recvd = append(hc.recvd, 0)
	hc.recv = append(hc.recv, nil)
	hc.hash = append(hc.hash, 0)
	return i
}

// hostSlab holds the stable Host handles.
type hostSlab struct {
	chunks [][]Host
	count  int32
}

func (hs *hostSlab) alloc() *Host {
	if int(hs.count)>>slabShift == len(hs.chunks) {
		hs.chunks = append(hs.chunks, make([]Host, 1<<slabShift))
	}
	h := &hs.chunks[hs.count>>slabShift][hs.count&slabMask]
	hs.count++
	return h
}

func (hs *hostSlab) at(i int32) *Host { return &hs.chunks[i>>slabShift][i&slabMask] }

// linkSlab holds the stable Link structs.
type linkSlab struct {
	chunks [][]Link
	count  int32
}

func (ls *linkSlab) alloc() *Link {
	if int(ls.count)>>slabShift == len(ls.chunks) {
		ls.chunks = append(ls.chunks, make([]Link, 1<<slabShift))
	}
	l := &ls.chunks[ls.count>>slabShift][ls.count&slabMask]
	l.idx = ls.count
	ls.count++
	return l
}

func (ls *linkSlab) at(i int32) *Link { return &ls.chunks[i>>slabShift][i&slabMask] }

// pbuf is a pooled packet buffer flowing transmit→deliver. refs counts
// in-flight events sharing the buffer (multicast fan-out, duplication
// faults); next links send-batch chains and the pool free list. All
// refcounting is single-threaded within the owning partition —
// cross-partition hand-offs transfer or copy the buffer (see
// part.transmit) so two partitions never touch one refs field.
type pbuf struct {
	b    []byte
	next *pbuf
	refs int32
}

// bufPool is a per-partition free list of packet buffers. Buffers keep
// their backing arrays between uses, so after warm-up the packet path
// allocates nothing; PrewarmBuffers moves the warm-up into topology
// build time. live/peak track the checked-out working set.
type bufPool struct {
	free *pbuf
	live int
	peak int
}

func (p *bufPool) get() *pbuf {
	p.live++
	if p.live > p.peak {
		p.peak = p.live
	}
	if pb := p.free; pb != nil {
		p.free = pb.next
		pb.next = nil
		pb.refs = 1
		return pb
	}
	return &pbuf{refs: 1}
}

func (p *bufPool) put(pb *pbuf) {
	p.live--
	pb.next = p.free
	p.free = pb
}

// prewarm stocks the free list with n buffers of the given capacity
// (bypassing the live/peak accounting — these were never checked out).
func (p *bufPool) prewarm(n, size int) {
	for i := 0; i < n; i++ {
		p.free = &pbuf{b: make([]byte, 0, size), next: p.free}
	}
}

// release drops one reference, returning the buffer to the pool when
// the last holder lets go.
func (p *bufPool) release(pb *pbuf) {
	pb.refs--
	if pb.refs == 0 {
		p.put(pb)
	}
}
