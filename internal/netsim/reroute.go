package netsim

// reroute.go is failure re-route: recompute shortest paths over the
// surviving fabric and express the difference against each device's
// live netcl_fwd table as one transactional WriteBatch per device.
// This is the control-plane half of a failover timeline — the
// PR 9 headroom item ("routes are installed once; nothing re-routes
// around a dead device") closed. Unlike InstallRoutes, which programs
// empty tables, RerouteBatches diffs: entries already pointing the
// right way are untouched, changed next hops become Modify ops,
// destinations that vanished behind a dead device become Delete ops —
// so applying a batch mid-run disturbs only the paths that actually
// moved, under PR 6's all-or-nothing generation publish.
//
// Post-failure paths are single-path (lowest surviving port): a
// failure collapses ECMP spreading on the affected destinations by
// design, trading load balance for the simplest consistent update.

import (
	"fmt"
	"sort"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
)

// RerouteOptions configures RerouteBatches.
type RerouteOptions struct {
	// Dead lists devices to route around: they contribute no adjacency,
	// get no batch, and destinations keyed by their id are deleted —
	// unless redirected.
	Dead []*Device
	// Redirect maps a logical destination id (a dead device's compiled
	// identity) to the standby device that now answers for it: routes
	// for the key are rebuilt toward the standby. The standby must be
	// compiled with the logical id for toMe interception to work; its
	// own physical id keeps its ordinary routes.
	Redirect map[uint16]*Device
	// HostRoutes recomputes per-host entries too (match the original
	// InstallRoutes call). Hosts attached to dead devices are deleted
	// everywhere.
	HostRoutes bool
}

// DeviceBatch pairs a device with the WriteBatch that repairs its
// forwarding state.
type DeviceBatch struct {
	Dev   *Device
	Batch *bmv2.WriteBatch
}

// RerouteBatches computes per-device forwarding repairs for the fabric
// after the given failures. Links with an administratively-down
// direction (SetPortDown/SetLinkDown) and dead devices are excluded
// from the path graph. The result lists only devices whose tables
// change, devices ascending by id, each batch's ops in ascending
// destination-key order — fully deterministic, so a timeline applying
// the batches at fixed virtual times is partition-count invariant.
// Batches are returned, not applied: schedule each through its
// device's At hook so the write lands in the owning partition.
func (t *Topo) RerouteBatches(opts RerouteOptions) ([]DeviceBatch, error) {
	n := t.n
	dead := map[*Device]bool{}
	for _, d := range opts.Dead {
		dead[d] = true
	}

	// Alive fabric devices in ascending-id order (the path graph is the
	// topo's own devices, matching InstallRoutes).
	alive := make([]*Device, 0, len(t.locality))
	for _, d := range t.Devices() {
		if !dead[d] {
			alive = append(alive, d)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID < alive[j].ID })

	// Surviving adjacency (ports ascending per device), skipping dead
	// peers and links with a down direction.
	adj := map[int32][]int32{}
	for _, d := range alive {
		for p := range d.ports {
			li := d.ports[p]
			if li == 0 {
				continue
			}
			l := n.links.at(li - 1)
			if l.down[0] || l.down[1] {
				continue
			}
			peer := l.peerOf(d, p)
			if !peer.isDevice() {
				continue
			}
			pd := n.devs[peer.deviceIdx()]
			if dead[pd] {
				continue
			}
			adj[d.idx] = append(adj[d.idx], pd.idx)
		}
	}
	distTo := func(root *Device) map[int32]int {
		dist := map[int32]int{root.idx: 0}
		queue := []int32{root.idx}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if _, ok := dist[nb]; !ok {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		return dist
	}
	// nexthop returns d's lowest surviving port one hop closer to the
	// BFS root, or -1 when unreachable.
	nexthop := func(d *Device, dist map[int32]int) int {
		dd, ok := dist[d.idx]
		if !ok {
			return -1
		}
		for p := range d.ports {
			li := d.ports[p]
			if li == 0 {
				continue
			}
			l := n.links.at(li - 1)
			if l.down[0] || l.down[1] {
				continue
			}
			peer := l.peerOf(d, p)
			if !peer.isDevice() {
				continue
			}
			pd := n.devs[peer.deviceIdx()]
			if dead[pd] {
				continue
			}
			if nd, ok := dist[pd.idx]; ok && nd == dd-1 {
				return p
			}
		}
		return -1
	}

	// Destination set: (key, BFS root, root's host port or -1). Alive
	// device ids route to themselves; redirected logical ids route to
	// their standby; host ids (opt-in) route to the attach device and
	// out its host port there.
	type dest struct {
		key      uint16
		root     *Device
		hostPort int
	}
	var dests []dest
	deleted := map[uint16]bool{} // keys to delete wherever present
	for _, d := range alive {
		dests = append(dests, dest{key: d.ID, root: d, hostPort: -1})
	}
	for _, d := range opts.Dead {
		if _, ok := opts.Redirect[d.ID]; !ok {
			deleted[d.ID] = true
		}
	}
	rkeys := make([]int, 0, len(opts.Redirect))
	for k := range opts.Redirect {
		rkeys = append(rkeys, int(k))
	}
	sort.Ints(rkeys)
	for _, k := range rkeys {
		target := opts.Redirect[uint16(k)]
		if dead[target] {
			return nil, fmt.Errorf("netsim: redirect %d targets dead device %d", k, target.ID)
		}
		dests = append(dests, dest{key: uint16(k), root: target, hostPort: -1})
	}
	if opts.HostRoutes {
		type hostAt struct {
			id   uint16
			dev  *Device
			port int
		}
		var hosts []hostAt
		for _, d := range t.Devices() {
			for p := range d.ports {
				li := d.ports[p]
				if li == 0 {
					continue
				}
				peer := n.links.at(li-1).peerOf(d, p)
				if peer.isDevice() {
					continue
				}
				id := n.hs.at(peer.node).ID
				if dead[d] {
					deleted[id] = true
					continue
				}
				hosts = append(hosts, hostAt{id: id, dev: d, port: p})
			}
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i].id < hosts[j].id })
		for _, h := range hosts {
			dests = append(dests, dest{key: h.id, root: h.dev, hostPort: h.port})
		}
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i].key < dests[j].key })

	// One BFS per distinct root, shared across devices.
	distCache := map[*Device]map[int32]int{}
	distOf := func(root *Device) map[int32]int {
		d, ok := distCache[root]
		if !ok {
			d = distTo(root)
			distCache[root] = d
		}
		return d
	}

	// Diff each alive device's desired (key → port) against its live
	// table.
	var out []DeviceBatch
	for _, d := range alive {
		current := map[uint16]*p4.Entry{}
		for _, e := range d.SW.Entries("netcl_fwd") {
			if len(e.Keys) == 1 {
				current[uint16(e.Keys[0].Value)] = e
			}
		}
		b := bmv2.NewWriteBatch()
		for _, ds := range dests {
			if ds.key == d.ID {
				continue
			}
			var port int
			if ds.root == d {
				if ds.hostPort < 0 {
					// A redirected logical id terminates here via the
					// compiled toMe check; the fwd table is never
					// consulted, so leave any stale entry alone.
					continue
				}
				port = ds.hostPort
			} else {
				port = nexthop(d, distOf(ds.root))
				if port < 0 {
					return nil, fmt.Errorf("netsim: no surviving route from device %d to key %d", d.ID, ds.key)
				}
			}
			e := &p4.Entry{
				Keys:   []p4.KeyValue{{Value: uint64(ds.key), PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(port)}},
			}
			if cur, ok := current[ds.key]; ok {
				if cur.Action != nil && cur.Action.Name == "set_port" &&
					len(cur.Action.Args) == 1 && cur.Action.Args[0] == uint64(port) {
					continue // already pointing the right way
				}
				b.Modify("netcl_fwd", e)
			} else {
				b.Insert("netcl_fwd", e)
			}
		}
		dkeys := make([]int, 0, len(deleted))
		for k := range deleted {
			dkeys = append(dkeys, int(k))
		}
		sort.Ints(dkeys)
		for _, k := range dkeys {
			if _, ok := current[uint16(k)]; ok {
				b.Delete("netcl_fwd", uint64(k))
			}
		}
		if b.Len() > 0 {
			out = append(out, DeviceBatch{Dev: d, Batch: b})
		}
	}
	return out, nil
}
