package netsim

import (
	"time"

	"netcl/internal/runtime"
)

// HostEndpoint adapts a simulated host to the runtime.Endpoint
// interface: Send injects a message into the network, Recv drives the
// event loop until a message is delivered to this host (or the
// simulated-time deadline passes), and Call runs the shared
// reliability protocol — the same policy object the real-UDP HostConn
// uses, so reliability behavior is identical on both backends.
//
// The endpoint is single-threaded like the simulator itself: use it
// from the goroutine that owns the network.
type HostEndpoint struct {
	h     *Host
	n     *Network
	rel   *runtime.Reliability
	inbox [][]byte
	err   error
}

// NewEndpoint wraps host h in an Endpoint. It chains onto the host's
// Receive callback, so an existing callback keeps firing.
func (n *Network) NewEndpoint(h *Host, cfg runtime.ReliabilityConfig) *HostEndpoint {
	ep := &HostEndpoint{h: h, n: n, rel: runtime.NewReliability(cfg)}
	prev := h.ReceiveFn()
	h.SetReceive(func(hh *Host, msg []byte) {
		ep.inbox = append(ep.inbox, append([]byte(nil), msg...))
		if prev != nil {
			prev(hh, msg)
		}
	})
	return ep
}

// Stats returns the endpoint's reliability counters.
func (ep *HostEndpoint) Stats() runtime.RelStats { return ep.rel.Stats() }

// NewChannel opens a pipelined sliding-window channel over this
// endpoint's transport (see runtime.Channel). A zero cfg.Reliability
// inherits the endpoint's reliability knobs. Like the endpoint itself
// the channel is single-threaded: pump it from the goroutine that owns
// the network.
func (ep *HostEndpoint) NewChannel(cfg runtime.ChannelConfig) *runtime.Channel {
	if cfg.Reliability == (runtime.ReliabilityConfig{}) {
		cfg.Reliability = ep.rel.Config()
	}
	return runtime.NewChannel(simTransport{ep}, cfg)
}

// Transport implementation (raw, unreliable primitives).

type simTransport struct{ ep *HostEndpoint }

func (t simTransport) Send(msg []byte) error {
	t.ep.h.Send(msg)
	return nil
}

// SendBatch flushes several messages as one host operation (see
// Host.SendBatch): the per-send processing cost is amortized over the
// batch.
func (t simTransport) SendBatch(msgs [][]byte) error {
	t.ep.h.SendBatch(msgs)
	return nil
}

// Recv pops the inbox, running the simulator forward until a message
// arrives or simulated time reaches the deadline.
func (t simTransport) Recv(timeout time.Duration) ([]byte, error) {
	ep := t.ep
	deadline := ep.n.Now() + Time(timeout)
	for len(ep.inbox) == 0 {
		ran, err := ep.n.StepNext(deadline)
		if err != nil {
			ep.err = err
			return nil, err
		}
		if !ran {
			return nil, runtime.ErrTimeout
		}
	}
	msg := ep.inbox[0]
	ep.inbox = ep.inbox[1:]
	return msg, nil
}

func (t simTransport) Now() time.Duration { return time.Duration(t.ep.n.Now()) }

// Endpoint implementation.

// Send transmits one NetCL message, fire-and-forget.
func (ep *HostEndpoint) Send(msg []byte) error { return simTransport{ep}.Send(msg) }

// Recv waits up to timeout (simulated time) for one inbound message,
// with duplicate suppression and trailer stripping.
func (ep *HostEndpoint) Recv(timeout time.Duration) ([]byte, error) {
	return ep.rel.Recv(simTransport{ep}, timeout)
}

// Call sends msg and waits for the response carrying its sequence
// number, retransmitting with exponential backoff within the retry
// budget. Timeouts are simulated time.
func (ep *HostEndpoint) Call(msg []byte, timeout time.Duration) ([]byte, error) {
	return ep.rel.Call(simTransport{ep}, msg, timeout)
}

// SendReliable transmits msg with an ack request, retransmitting until
// the receiving host acknowledges it.
func (ep *HostEndpoint) SendReliable(msg []byte, timeout time.Duration) error {
	return ep.rel.SendReliable(simTransport{ep}, msg, timeout)
}

// Close detaches the endpoint from the host.
func (ep *HostEndpoint) Close() error {
	ep.h.SetReceive(nil)
	return nil
}
