// Package lower translates checked NetCL-C ASTs into IR modules, one
// per device location. Net-function calls are inlined during lowering
// and loops are fully unrolled (programs with non-unrollable loops are
// rejected), so the resulting CFG is a DAG by construction — the
// paper's first backend stage (§VI-B, "P4-compilable CFG").
package lower

import (
	"fmt"

	"netcl/internal/ir"
	"netcl/internal/lang"
	"netcl/internal/sema"
)

// Options controls lowering.
type Options struct {
	// MaxUnroll bounds total loop iterations per loop (default 4096).
	MaxUnroll int
}

// Module lowers all kernels placed at deviceID (including location-less
// kernels) into an IR module. Returns nil if diags has errors.
func Module(prog *sema.Program, deviceID uint16, opts Options, diags *lang.Diagnostics) *ir.Module {
	if opts.MaxUnroll == 0 {
		opts.MaxUnroll = 4096
	}
	l := &lowerer{
		prog:     prog,
		diags:    diags,
		deviceID: deviceID,
		opts:     opts,
		mod:      &ir.Module{Name: fmt.Sprintf("dev%d", deviceID), DeviceID: deviceID},
		memOf:    map[*sema.Global]*ir.MemRef{},
	}
	for _, g := range prog.Globals {
		if len(g.At) == 0 || g.At.Contains(deviceID) {
			l.mod.Mems = append(l.mod.Mems, l.memRef(g))
		}
	}
	for _, k := range prog.Kernels {
		if len(k.At) == 0 || k.At.Contains(deviceID) {
			if fn := l.lowerKernel(k); fn != nil {
				l.mod.Funcs = append(l.mod.Funcs, fn)
			}
		}
	}
	if diags.HasErrors() {
		return nil
	}
	return l.mod
}

type lowerer struct {
	prog     *sema.Program
	diags    *lang.Diagnostics
	deviceID uint16
	opts     Options
	mod      *ir.Module
	memOf    map[*sema.Global]*ir.MemRef
}

// irType converts a sema basic type to an IR type. bool is stored as u8.
func irType(b *sema.Basic) ir.Type {
	if b.Kind == sema.Bool {
		return ir.U8
	}
	return ir.Type{Bits: b.Bits(), Signed: b.Signed()}
}

func (l *lowerer) memRef(g *sema.Global) *ir.MemRef {
	if m, ok := l.memOf[g]; ok {
		return m
	}
	m := &ir.MemRef{Name: g.Name(), Managed: g.Managed, Dims: append([]int(nil), g.Dims...)}
	switch e := g.Elem.(type) {
	case *sema.Basic:
		m.Elem = irType(e)
		if g.Lookup {
			m.LKind = ir.LookupSet
			m.KeyType = irType(e)
		}
	case *sema.KV:
		m.LKind = ir.LookupExact
		m.KeyType = irType(e.K)
		m.Elem = irType(e.V)
	case *sema.RV:
		m.LKind = ir.LookupRange
		m.KeyType = irType(e.R)
		m.Elem = irType(e.V)
	}
	if g.Init != nil {
		m.Init = g.Init.Flatten(nil)
	}
	l.memOf[g] = m
	return m
}

// binding is what a name resolves to during lowering.
type binding interface{ isBinding() }

type constBinding struct {
	val int64
	ty  ir.Type
}

type localBinding struct {
	alloca *ir.Instr
	elem   ir.Type
	dims   []int
}

type paramBinding struct {
	p *ir.MsgParam
	// shadow is non-nil for by-value scalars: modifications are
	// device-local, so reads/writes go through an alloca initialized
	// from the message at kernel entry.
	shadow *ir.Instr
}

type globalBinding struct {
	mem *ir.MemRef
	g   *sema.Global
}

// refBinding aliases a net-function by-ref parameter to the caller's
// lvalue (established at the inlined call site).
type refBinding struct{ lv lvalue }

func (*constBinding) isBinding()  {}
func (*localBinding) isBinding()  {}
func (*paramBinding) isBinding()  {}
func (*globalBinding) isBinding() {}
func (*refBinding) isBinding()    {}

// fnLowerer lowers one kernel body (including inlined net functions).
type fnLowerer struct {
	l      *lowerer
	fn     *ir.Func
	blk    *ir.Block // current insertion block; nil after a terminator
	scopes []map[string]binding
	// inline is the active inlined net-function context, if any.
	inline *inlineCtx
	// loopDepth guards runaway nesting during unrolling.
	loopDepth int
	err       bool
}

func (fl *fnLowerer) push() { fl.scopes = append(fl.scopes, map[string]binding{}) }
func (fl *fnLowerer) pop()  { fl.scopes = fl.scopes[:len(fl.scopes)-1] }

func (fl *fnLowerer) bind(name string, b binding) {
	fl.scopes[len(fl.scopes)-1][name] = b
}

func (fl *fnLowerer) lookupName(name string) binding {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if b, ok := fl.scopes[i][name]; ok {
			return b
		}
	}
	if g := fl.l.prog.GlobalByName(name); g != nil {
		return &globalBinding{mem: fl.l.memRef(g), g: g}
	}
	if k, ok := fl.l.prog.Consts[name]; ok {
		return &constBinding{val: k.Val, ty: irType(k.Typ)}
	}
	return nil
}

func (fl *fnLowerer) errorf(pos lang.Pos, format string, args ...interface{}) {
	fl.l.diags.Errorf(pos, format, args...)
	fl.err = true
}

// emit appends an instruction to the current block.
func (fl *fnLowerer) emit(i *ir.Instr) *ir.Instr {
	if fl.blk == nil {
		// Unreachable code after a return; create a dead block so
		// lowering can continue (cleaned up later).
		fl.blk = fl.fn.NewBlock("dead")
	}
	return fl.blk.Append(i)
}

func (fl *fnLowerer) lowerKernel(k *sema.Function) *ir.Func {
	fn := ir.NewFunc(k.Name(), k.Comp)
	fl.fn = fn
	fl.push()
	defer fl.pop()

	entry := fn.NewBlock("entry")
	fl.blk = entry

	offset := 0
	for idx, p := range k.Params {
		mp := &ir.MsgParam{
			Name:  p.Name(),
			Ty:    irType(p.Elem),
			Count: p.Spec,
			Out:   p.Dir != sema.ByVal,
			Index: idx,
		}
		mp.Offset = offset
		offset += p.Spec * p.Elem.Bits() / 8
		fn.Params = append(fn.Params, mp)

		pb := &paramBinding{p: mp}
		if p.Dir == sema.ByVal {
			// Device-local shadow copy.
			al := fl.emit(&ir.Instr{Op: ir.OpAlloca, Ty: mp.Ty, Elem: mp.Ty, Count: 1, Name: p.Name()})
			v := fl.emit(&ir.Instr{Op: ir.OpLoadMsg, Ty: mp.Ty, Param: mp, Args: []ir.Value{ir.ConstOf(ir.U32, 0)}})
			fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{al, ir.ConstOf(ir.U32, 0), v}})
			pb.shadow = al
		}
		fl.bind(p.Name(), pb)
	}

	fl.stmt(k.Decl.Body)
	// Implicit pass() on fallthrough.
	if fl.blk != nil && fl.blk.Term() == nil {
		fl.emit(&ir.Instr{Op: ir.OpRetAction, ActionKind: ir.ActPass})
	}
	fl.sealDeadBlocks()
	return fn
}

// lowerKernel is the package-level entry for one kernel.
func (l *lowerer) lowerKernel(k *sema.Function) *ir.Func {
	fl := &fnLowerer{l: l}
	fn := fl.lowerKernel(k)
	if fl.err {
		return nil
	}
	return fn
}

// sealDeadBlocks gives any unterminated (dead) block a pass return so
// verification holds; unreachable blocks are pruned by DCE later.
func (fl *fnLowerer) sealDeadBlocks() {
	for _, b := range fl.fn.Blocks {
		if b.Term() == nil {
			b.Append(&ir.Instr{Op: ir.OpRetAction, ActionKind: ir.ActPass})
		}
	}
}

// constEval folds e using program constants plus in-scope constant
// bindings (loop induction variables during unrolling).
func (fl *fnLowerer) constEval(e lang.Expr) (int64, bool) {
	v, err := sema.EvalConst(e, func(name string) (int64, bool) {
		if b, ok := fl.lookupName(name).(*constBinding); ok && b != nil {
			return b.val, true
		}
		return 0, false
	})
	return v, err == nil
}

// Statements ----------------------------------------------------------

func (fl *fnLowerer) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.BlockStmt:
		fl.push()
		for _, inner := range st.Stmts {
			fl.stmt(inner)
		}
		fl.pop()
	case *lang.EmptyStmt:
	case *lang.DeclStmt:
		fl.localDecl(st.D)
	case *lang.ExprStmt:
		fl.expr(st.X)
	case *lang.IfStmt:
		fl.ifStmt(st)
	case *lang.ForStmt:
		fl.forStmt(st)
	case *lang.WhileStmt:
		fl.whileStmt(st)
	case *lang.ReturnStmt:
		fl.returnStmt(st)
	default:
		fl.errorf(s.Pos(), "statement not supported in device code")
	}
}

func (fl *fnLowerer) localDecl(d *lang.VarDecl) {
	loc := fl.l.prog.LocalOf[d]
	if loc == nil {
		// Checker rejected it; bind something to limit cascades.
		fl.bind(d.Name, &constBinding{val: 0, ty: ir.U32})
		return
	}
	elem := irType(loc.Elem)
	count := 1
	for _, dim := range loc.Dims {
		count *= dim
	}
	al := fl.emit(&ir.Instr{Op: ir.OpAlloca, Ty: elem, Elem: elem, Count: count, Name: d.Name})
	fl.bind(d.Name, &localBinding{alloca: al, elem: elem, dims: loc.Dims})
	if d.Init != nil {
		if il, ok := d.Init.(*lang.InitList); ok {
			for i, e := range il.Elems {
				v := fl.convert(fl.expr(e), elem)
				fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{al, ir.ConstOf(ir.U32, int64(i)), v}})
			}
			return
		}
		v := fl.convert(fl.expr(d.Init), elem)
		fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{al, ir.ConstOf(ir.U32, 0), v}})
	}
	// Default-initialized locals have undefined values (§V-B); we do
	// not zero them.
}

func (fl *fnLowerer) ifStmt(st *lang.IfStmt) {
	// Short-circuit &&: "if (a && b) S" nests as "if (a) if (b) S",
	// matching C semantics and letting both tests run as predicates in
	// the same pipeline stage instead of a materialized bit chain.
	if bin, ok := st.Cond.(*lang.BinaryExpr); ok && bin.Op == lang.AndAnd && st.Else == nil {
		inner := &lang.IfStmt{IfPos: st.IfPos, Cond: bin.Y, Then: st.Then}
		fl.ifStmt(&lang.IfStmt{IfPos: st.IfPos, Cond: bin.X, Then: inner})
		return
	}
	cond := fl.cond(st.Cond)
	if c, ok := cond.(*ir.Const); ok {
		// Statically decided branch: lower only the taken side.
		if c.Val != 0 {
			fl.stmt(st.Then)
		} else if st.Else != nil {
			fl.stmt(st.Else)
		}
		return
	}
	thenB := fl.fn.NewBlock("then")
	var elseB *ir.Block
	if st.Else != nil {
		elseB = fl.fn.NewBlock("else")
	}
	joinB := fl.fn.NewBlock("join")
	if elseB == nil {
		elseB = joinB
	}
	fl.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Value{cond}, Targets: []*ir.Block{thenB, elseB}})

	fl.blk = thenB
	fl.stmt(st.Then)
	if fl.blk != nil && fl.blk.Term() == nil {
		fl.emit(&ir.Instr{Op: ir.OpJmp, Targets: []*ir.Block{joinB}})
	}
	if st.Else != nil {
		fl.blk = elseB
		fl.stmt(st.Else)
		if fl.blk != nil && fl.blk.Term() == nil {
			fl.emit(&ir.Instr{Op: ir.OpJmp, Targets: []*ir.Block{joinB}})
		}
	}
	fl.blk = joinB
}

// forStmt fully unrolls the loop; non-unrollable loops are errors on
// P4 targets (§V-D).
func (fl *fnLowerer) forStmt(st *lang.ForStmt) {
	fl.loopDepth++
	defer func() { fl.loopDepth-- }()
	if fl.loopDepth > 8 {
		fl.errorf(st.ForPos, "loop nesting too deep to unroll")
		return
	}
	fl.push()
	defer fl.pop()

	// Extract the induction variable.
	var ivName string
	var ivVal int64
	switch init := st.Init.(type) {
	case *lang.DeclStmt:
		d := init.D
		if d.Init == nil {
			fl.errorf(d.DeclPos, "cannot unroll loop: induction variable %q has no constant initializer", d.Name)
			return
		}
		v, ok := fl.constEval(d.Init)
		if !ok {
			fl.errorf(d.Init.Pos(), "cannot unroll loop: initializer of %q is not compile-time constant", d.Name)
			return
		}
		ivName, ivVal = d.Name, v
	case *lang.ExprStmt:
		as, ok := init.X.(*lang.AssignExpr)
		if !ok {
			fl.errorf(init.Pos(), "cannot unroll loop: unsupported init statement")
			return
		}
		id, ok := as.LHS.(*lang.Ident)
		if !ok {
			fl.errorf(init.Pos(), "cannot unroll loop: induction variable must be a simple name")
			return
		}
		v, ok := fl.constEval(as.RHS)
		if !ok {
			fl.errorf(as.RHS.Pos(), "cannot unroll loop: initializer is not compile-time constant")
			return
		}
		ivName, ivVal = id.Name, v
	case nil:
		fl.errorf(st.ForPos, "cannot unroll loop without an induction variable")
		return
	default:
		fl.errorf(st.ForPos, "cannot unroll loop: unsupported init statement")
		return
	}

	if assignsTo(st.Body, ivName) {
		fl.errorf(st.ForPos, "cannot unroll loop: body modifies induction variable %q", ivName)
		return
	}

	iter := 0
	for {
		// Bind the induction variable to its current constant value.
		fl.push()
		fl.bind(ivName, &constBinding{val: ivVal, ty: ir.S32})
		cont := true
		if st.Cond != nil {
			c, ok := fl.constEval(st.Cond)
			if !ok {
				fl.errorf(st.Cond.Pos(), "cannot unroll loop: condition is not compile-time evaluable")
				fl.pop()
				return
			}
			cont = c != 0
		}
		if !cont {
			fl.pop()
			break
		}
		if iter++; iter > fl.l.opts.MaxUnroll {
			fl.errorf(st.ForPos, "loop exceeds the unroll limit of %d iterations", fl.l.opts.MaxUnroll)
			fl.pop()
			return
		}
		fl.stmt(st.Body)
		if st.Post != nil {
			next, ok := fl.evalPost(st.Post, ivName, ivVal)
			if !ok {
				fl.pop()
				return
			}
			ivVal = next
		} else if st.Cond != nil {
			fl.errorf(st.ForPos, "cannot unroll loop without a post statement")
			fl.pop()
			return
		}
		fl.pop()
		if fl.blk == nil {
			break // returned inside the loop
		}
	}
}

// evalPost computes the next induction value from i++, ++i, i+=k,
// i-=k, i--, or i = <const expr>.
func (fl *fnLowerer) evalPost(post lang.Stmt, ivName string, cur int64) (int64, bool) {
	es, ok := post.(*lang.ExprStmt)
	if !ok {
		fl.errorf(post.Pos(), "cannot unroll loop: unsupported post statement")
		return 0, false
	}
	switch x := es.X.(type) {
	case *lang.UnaryExpr:
		if id, ok := x.X.(*lang.Ident); ok && id.Name == ivName {
			switch x.Op {
			case lang.Inc:
				return cur + 1, true
			case lang.Dec:
				return cur - 1, true
			}
		}
	case *lang.PostfixExpr:
		if id, ok := x.X.(*lang.Ident); ok && id.Name == ivName {
			switch x.Op {
			case lang.Inc:
				return cur + 1, true
			case lang.Dec:
				return cur - 1, true
			}
		}
	case *lang.AssignExpr:
		id, ok := x.LHS.(*lang.Ident)
		if !ok || id.Name != ivName {
			break
		}
		v, ok2 := fl.constEval(x.RHS)
		if !ok2 {
			break
		}
		switch x.Op {
		case lang.Assign:
			return v, true
		case lang.PlusEq:
			return cur + v, true
		case lang.MinusEq:
			return cur - v, true
		case lang.StarEq:
			return cur * v, true
		case lang.ShlEq:
			return cur << uint(v), true
		case lang.ShrEq:
			return cur >> uint(v), true
		}
	}
	fl.errorf(post.Pos(), "cannot unroll loop: post statement must be a constant step of the induction variable")
	return 0, false
}

func (fl *fnLowerer) whileStmt(st *lang.WhileStmt) {
	// Only constant-false while loops are unrollable without an
	// induction variable; anything else cannot map to a feed-forward
	// pipeline.
	if v, ok := fl.constEval(st.Cond); ok && v == 0 {
		return
	}
	fl.errorf(st.WhilePos, "cannot unroll while loop; use a for loop with constant bounds")
}

// assignsTo reports whether body writes the named variable.
func assignsTo(body lang.Stmt, name string) bool {
	found := false
	lang.Walk(body, func(n lang.Node) bool {
		switch x := n.(type) {
		case *lang.AssignExpr:
			if id, ok := x.LHS.(*lang.Ident); ok && id.Name == name {
				found = true
			}
		case *lang.UnaryExpr:
			if x.Op == lang.Inc || x.Op == lang.Dec {
				if id, ok := x.X.(*lang.Ident); ok && id.Name == name {
					found = true
				}
			}
		case *lang.PostfixExpr:
			if id, ok := x.X.(*lang.Ident); ok && id.Name == name {
				found = true
			}
		case *lang.DeclStmt:
			// Shadowing declaration: conservatively treat as a write.
			if x.D.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

func (fl *fnLowerer) returnStmt(st *lang.ReturnStmt) {
	if fl.inline != nil {
		fl.inlineReturn(st)
		return
	}
	if st.X == nil {
		fl.emit(&ir.Instr{Op: ir.OpRetAction, ActionKind: ir.ActPass})
		fl.blk = nil
		return
	}
	fl.kernelReturnExpr(st.X)
}

// kernelReturnExpr lowers the action expression of a kernel return.
func (fl *fnLowerer) kernelReturnExpr(e lang.Expr) {
	switch x := e.(type) {
	case *lang.CondExpr:
		cond := fl.cond(x.Cond)
		if c, ok := cond.(*ir.Const); ok {
			if c.Val != 0 {
				fl.kernelReturnExpr(x.Then)
			} else {
				fl.kernelReturnExpr(x.Else)
			}
			return
		}
		thenB := fl.fn.NewBlock("ret_t")
		elseB := fl.fn.NewBlock("ret_f")
		fl.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Value{cond}, Targets: []*ir.Block{thenB, elseB}})
		fl.blk = thenB
		fl.kernelReturnExpr(x.Then)
		fl.blk = elseB
		fl.kernelReturnExpr(x.Else)
		fl.blk = nil
		return
	case *lang.CallExpr:
		if b := fl.l.prog.Builtins[x]; b != nil && b.Cat == sema.CatAction {
			var args []ir.Value
			for _, a := range x.Args {
				args = append(args, fl.convert(fl.expr(a), ir.U16))
			}
			fl.emit(&ir.Instr{Op: ir.OpRetAction, ActionKind: ir.ActionKind(b.Op), Args: args})
			fl.blk = nil
			return
		}
		// Void net-function call followed by implicit pass().
		fl.expr(x)
		if fl.blk != nil {
			fl.emit(&ir.Instr{Op: ir.OpRetAction, ActionKind: ir.ActPass})
			fl.blk = nil
		}
		return
	}
	fl.errorf(e.Pos(), "unsupported kernel return expression")
}
