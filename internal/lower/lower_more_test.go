package lower

import (
	"testing"

	"netcl/internal/ir"
)

func TestLowerSideEffectingTernary(t *testing.T) {
	// An atomic inside a ternary arm must lower as a guarded diamond,
	// not an eagerly-evaluated select.
	src := `
_net_ unsigned C[4];
_kernel(1) void k(unsigned c, unsigned &out) {
  out = c ? ncl::atomic_add_new(&C[0], 1) : 7;
}
`
	mod := lowerSrc(t, src, 1)
	f := mod.Funcs[0]
	// The atomic must be control-dependent: not in the entry block.
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpAtomicRMW && b == f.Entry() {
			t.Error("side-effecting ternary arm evaluated unconditionally")
		}
		return true
	})
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestLowerPureTernaryUsesSelect(t *testing.T) {
	mod := lowerSrc(t, `
_kernel(1) void k(unsigned a, unsigned b, unsigned &out) {
  out = a > b ? a : b;
}
`, 1)
	if countOps(mod, ir.OpSelect) != 1 {
		t.Error("pure ternary should lower to select")
	}
	if len(mod.Funcs[0].Blocks) != 1 {
		t.Error("pure ternary should not branch")
	}
}

func TestLowerCompoundAssignsAndIncDec(t *testing.T) {
	mod := lowerSrc(t, `
_kernel(1) void k(unsigned &x, unsigned y) {
  x += y;
  x -= 1;
  x *= 2;
  x /= 3;
  x %= 5;
  x &= 0xFF;
  x |= 0x10;
  x ^= 0x3;
  x <<= 1;
  x >>= 2;
  x++;
  --x;
}
`, 1)
	want := map[ir.Op]int{
		ir.OpAdd: 2, ir.OpSub: 2, ir.OpMul: 1, ir.OpUDiv: 1, ir.OpURem: 1,
		ir.OpAnd: 1, ir.OpOr: 1, ir.OpXor: 1, ir.OpShl: 1, ir.OpLShr: 1,
	}
	for op, n := range want {
		if got := countOps(mod, op); got != n {
			t.Errorf("%v: %d ops, want %d", op, got, n)
		}
	}
}

func TestLowerCastsAndWidths(t *testing.T) {
	mod := lowerSrc(t, `
_kernel(1) void k(uint8_t a, uint64_t b, uint16_t &s, uint64_t &w) {
  s = (uint16_t)b;
  w = (uint64_t)a + b;
}
`, 1)
	if countOps(mod, ir.OpTrunc) < 1 {
		t.Error("narrowing cast should truncate")
	}
	if countOps(mod, ir.OpZExt) < 1 {
		t.Error("widening should zero-extend")
	}
}

func TestLowerSignedExtension(t *testing.T) {
	mod := lowerSrc(t, `
_kernel(1) void k(char a, int &w) { w = a; }
`, 1)
	if countOps(mod, ir.OpSExt) != 1 {
		t.Errorf("signed widening should sign-extend:\n%s", mod.Funcs[0])
	}
}

func TestLowerMsgFields(t *testing.T) {
	mod := lowerSrc(t, `
_kernel(1) void k(uint16_t &a, uint16_t &b, uint16_t &c, uint16_t &d) {
  a = msg.src; b = msg.dst; c = msg.from; d = msg.to;
}
`, 1)
	if countOps(mod, ir.OpMsgField) != 4 {
		t.Errorf("msg fields: %d", countOps(mod, ir.OpMsgField))
	}
}

func TestLowerWhileFalseElided(t *testing.T) {
	mod := lowerSrc(t, `
#define NEVER 0
_kernel(1) void k(unsigned &x) {
  while (NEVER) { x = x + 1; }
  x = 5;
}
`, 1)
	if countOps(mod, ir.OpAdd) != 0 {
		t.Error("constant-false while should vanish")
	}
}

func TestLowerNestedNetFunctions(t *testing.T) {
	mod := lowerSrc(t, `
_net_ unsigned double_it(unsigned v) { return v * 2; }
_net_ unsigned quad(unsigned v) { return double_it(double_it(v)); }
_kernel(1) void k(unsigned x, unsigned &out) { out = quad(x); }
`, 1)
	if countOps(mod, ir.OpMul) != 2 {
		t.Errorf("nested inlining: %d muls, want 2", countOps(mod, ir.OpMul))
	}
}

func TestLowerNetFunctionScopeIsolation(t *testing.T) {
	// The callee must see the GLOBAL g, not the caller's local g.
	src := `
_net_ unsigned g;
_net_ unsigned readG() { return ncl::atomic_read(&g); }
_kernel(1) void k(unsigned &out) {
  unsigned g = 999;
  out = readG() + g;
}
`
	mod := lowerSrc(t, src, 1)
	found := false
	mod.Funcs[0].Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpAtomicRMW && i.G.Name == "g" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("inlined net function should read the global g")
	}
}

func TestLowerShortCircuitAndNestsIfs(t *testing.T) {
	mod := lowerSrc(t, `
_net_ unsigned C;
_kernel(1) void k(unsigned a, unsigned b) {
  if (a > 1 && b > 2) { ncl::atomic_inc(&C); }
}
`, 1)
	// Nested lowering: two conditional branches, not a bitwise AND.
	brs := 0
	mod.Funcs[0].Instrs(func(bk *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpBr {
			brs++
		}
		return true
	})
	if brs != 2 {
		t.Errorf("short-circuit && should nest: %d branches", brs)
	}
	if countOps(mod, ir.OpAnd) != 0 {
		t.Error("no bitwise AND expected for statement-level &&")
	}
}

func TestLowerOrStillBitwise(t *testing.T) {
	mod := lowerSrc(t, `
_kernel(1) void k(unsigned a, unsigned b, uint8_t &r) {
  r = (a > 1) || (b > 2);
}
`, 1)
	if countOps(mod, ir.OpOr) != 1 {
		t.Error("value-level || lowers to a bitwise i1 or")
	}
}
