package lower

import (
	"netcl/internal/ir"
	"netcl/internal/lang"
	"netcl/internal/sema"
)

// call lowers builtin and net-function calls.
func (fl *fnLowerer) call(x *lang.CallExpr) ir.Value {
	if f := fl.l.prog.CalledFns[x]; f != nil {
		return fl.inlineCall(x, f)
	}
	b := fl.l.prog.Builtins[x]
	if b == nil {
		fl.errorf(x.Fun.NamePos, "unresolved call to %q", x.Fun.Name)
		return ir.ConstOf(ir.U32, 0)
	}
	switch b.Cat {
	case sema.CatAction:
		// Only reachable on checker-rejected input; keep lowering alive.
		fl.errorf(x.Fun.NamePos, "action %q outside a return statement", b.Name)
		return ir.ConstOf(ir.U32, 0)
	case sema.CatAtomic:
		return fl.atomicCall(x, b)
	case sema.CatLookup:
		return fl.lookupCall(x)
	case sema.CatMath:
		return fl.mathCall(x, b)
	case sema.CatHash, sema.CatIntrinsic:
		return fl.hashCall(x, b)
	}
	return ir.ConstOf(ir.U32, 0)
}

// globalTarget resolves an atomic pointer argument (&G[i], G[i], or a
// bare scalar global G) to the memory object and its index values.
func (fl *fnLowerer) globalTarget(e lang.Expr) (*ir.MemRef, []ir.Value) {
	if u, ok := e.(*lang.UnaryExpr); ok && u.Op == lang.Amp {
		e = u.X
	}
	var idxExprs []lang.Expr
	base := e
	for {
		ix, ok := base.(*lang.IndexExpr)
		if !ok {
			break
		}
		idxExprs = append([]lang.Expr{ix.Index}, idxExprs...)
		base = ix.X
	}
	id, ok := base.(*lang.Ident)
	if !ok {
		return nil, nil
	}
	gb, ok := fl.lookupName(id.Name).(*globalBinding)
	if !ok {
		return nil, nil
	}
	if len(idxExprs) != len(gb.mem.Dims) {
		fl.errorf(e.Pos(), "memory %q requires %d indices, got %d", id.Name, len(gb.mem.Dims), len(idxExprs))
		return nil, nil
	}
	var idxs []ir.Value
	for _, ie := range idxExprs {
		idxs = append(idxs, fl.convert(fl.expr(ie), ir.U32))
	}
	return gb.mem, idxs
}

func (fl *fnLowerer) atomicCall(x *lang.CallExpr, b *sema.Builtin) ir.Value {
	if len(x.Args) == 0 {
		return ir.ConstOf(ir.U32, 0)
	}
	mem, idxs := fl.globalTarget(x.Args[0])
	if mem == nil {
		fl.errorf(x.Args[0].Pos(), "atomic operation requires a global memory element")
		return ir.ConstOf(ir.U32, 0)
	}
	args := append([]ir.Value{}, idxs...)
	rest := x.Args[1:]
	if b.Cond && len(rest) > 0 {
		args = append(args, fl.cond(rest[0]))
		rest = rest[1:]
	}
	for _, a := range rest {
		args = append(args, fl.convert(fl.expr(a), mem.Elem))
	}
	instr := &ir.Instr{
		Op: ir.OpAtomicRMW, Ty: mem.Elem, G: mem, AOp: b.Op,
		Cond: b.Cond, RetNew: b.New, Args: args, NIdx: len(idxs),
	}
	fl.emit(instr)
	if b.Op == "write" {
		return ir.ConstOf(mem.Elem, 0)
	}
	return instr
}

func (fl *fnLowerer) lookupCall(x *lang.CallExpr) ir.Value {
	if len(x.Args) < 2 {
		return ir.ConstOf(ir.I1, 0)
	}
	id, ok := x.Args[0].(*lang.Ident)
	if !ok {
		fl.errorf(x.Args[0].Pos(), "lookup requires a _lookup_ array name")
		return ir.ConstOf(ir.I1, 0)
	}
	gb, ok := fl.lookupName(id.Name).(*globalBinding)
	if !ok || !gb.mem.IsLookup() {
		fl.errorf(id.NamePos, "%q is not a _lookup_ array", id.Name)
		return ir.ConstOf(ir.I1, 0)
	}
	key := fl.convert(fl.expr(x.Args[1]), gb.mem.KeyType)
	hit := fl.emit(&ir.Instr{Op: ir.OpLookup, Ty: ir.I1, G: gb.mem, Args: []ir.Value{key}})
	if len(x.Args) == 3 {
		lv := fl.lvalue(x.Args[2])
		if lv == nil {
			return hit
		}
		old := lv.load(fl)
		val := fl.emit(&ir.Instr{Op: ir.OpLookupVal, Ty: gb.mem.Elem, G: gb.mem, Args: []ir.Value{hit}})
		matched := fl.convert(val, lv.elem())
		prev := fl.convert(old, lv.elem())
		sel := fl.emit(&ir.Instr{Op: ir.OpSelect, Ty: lv.elem(), Args: []ir.Value{hit, matched, prev}})
		lv.store(fl, sel)
	}
	return hit
}

func (fl *fnLowerer) mathCall(x *lang.CallExpr, b *sema.Builtin) ir.Value {
	var vals []ir.Value
	for _, a := range x.Args {
		vals = append(vals, fl.expr(a))
	}
	bin := func(op ir.Op) ir.Value {
		if len(vals) != 2 {
			return ir.ConstOf(ir.U32, 0)
		}
		ct := commonType(vals[0].Type(), vals[1].Type())
		return fl.emit(&ir.Instr{Op: op, Ty: ct, Args: []ir.Value{fl.convert(vals[0], ct), fl.convert(vals[1], ct)}})
	}
	switch b.Op {
	case "sadd":
		return bin(ir.OpSAddSat)
	case "ssub":
		return bin(ir.OpSSubSat)
	case "min":
		return bin(ir.OpMin)
	case "max":
		return bin(ir.OpMax)
	case "bit_chk":
		if len(vals) != 2 {
			return ir.ConstOf(ir.I1, 0)
		}
		t := vals[0].Type()
		sh := fl.emit(&ir.Instr{Op: ir.OpLShr, Ty: t, Args: []ir.Value{vals[0], fl.convert(vals[1], t)}})
		an := fl.emit(&ir.Instr{Op: ir.OpAnd, Ty: t, Args: []ir.Value{sh, ir.ConstOf(t, 1)}})
		return fl.emit(&ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: ir.PredNE, Args: []ir.Value{an, ir.ConstOf(t, 0)}})
	case "clz":
		return fl.emit(&ir.Instr{Op: ir.OpCLZ, Ty: vals[0].Type(), Args: vals})
	case "ctz":
		return fl.emit(&ir.Instr{Op: ir.OpCTZ, Ty: vals[0].Type(), Args: vals})
	case "bswap":
		return fl.emit(&ir.Instr{Op: ir.OpByteSwap, Ty: vals[0].Type(), Args: vals})
	case "rand":
		ty := ir.U32
		if len(x.TArgs) == 1 {
			if idt, ok := x.TArgs[0].(*lang.Ident); ok {
				switch idt.Name {
				case "u8", "uint8_t":
					ty = ir.U8
				case "u16", "uint16_t":
					ty = ir.U16
				case "u64", "uint64_t":
					ty = ir.U64
				}
			}
		}
		return fl.emit(&ir.Instr{Op: ir.OpRand, Ty: ty})
	}
	fl.errorf(x.Fun.NamePos, "unsupported math builtin %q", b.Name)
	return ir.ConstOf(ir.U32, 0)
}

func (fl *fnLowerer) hashCall(x *lang.CallExpr, b *sema.Builtin) ir.Value {
	width := 32
	switch b.Op {
	case "crc16", "xor16", "csum16", "csum16r":
		width = 16
	case "crc64":
		width = 64
	case "identity":
		width = 0 // width of the input
	}
	if len(x.TArgs) == 1 {
		if v, ok := fl.constEval(x.TArgs[0]); ok && v > 0 && v <= 64 {
			width = int(v)
		}
	}
	var vals []ir.Value
	for _, a := range x.Args {
		vals = append(vals, fl.expr(a))
	}
	ty := ir.U32
	if width == 0 && len(vals) > 0 {
		ty = vals[0].Type()
	} else {
		switch {
		case width <= 8:
			ty = ir.U8
		case width <= 16:
			ty = ir.U16
		case width <= 32:
			ty = ir.U32
		default:
			ty = ir.U64
		}
	}
	ns := ""
	if b.Cat == sema.CatIntrinsic {
		ns = b.NS
	}
	return fl.emit(&ir.Instr{Op: ir.OpHash, Ty: ty, HashKind: b.Op, Args: vals, TargetNS: ns})
}

// inlineCall lowers a net-function call by splicing its body into the
// current function — the compiler's first device-pipeline step
// ("inline all _net_ function calls", §VI-B).
func (fl *fnLowerer) inlineCall(x *lang.CallExpr, f *sema.Function) ir.Value {
	depth := 0
	for c := fl.inline; c != nil; c = c.parent {
		depth++
	}
	if depth > 16 {
		fl.errorf(x.Fun.NamePos, "net-function inlining too deep (recursion?)")
		return ir.ConstOf(ir.U32, 0)
	}
	if f.Decl.Body == nil {
		return ir.ConstOf(ir.U32, 0)
	}

	// Evaluate arguments in the caller's scope.
	type argBinding struct {
		name string
		b    binding
	}
	var binds []argBinding
	for i, p := range f.Params {
		if i >= len(x.Args) {
			break
		}
		arg := x.Args[i]
		switch p.Dir {
		case sema.ByVal:
			elem := irType(p.Elem)
			v := fl.convert(fl.expr(arg), elem)
			al := fl.emit(&ir.Instr{Op: ir.OpAlloca, Ty: elem, Elem: elem, Count: 1, Name: p.Name()})
			fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{al, ir.ConstOf(ir.U32, 0), v}})
			binds = append(binds, argBinding{p.Name(), &localBinding{alloca: al, elem: elem}})
		case sema.ByRef:
			lv := fl.lvalue(arg)
			if lv == nil {
				return ir.ConstOf(ir.U32, 0)
			}
			binds = append(binds, argBinding{p.Name(), &refBinding{lv: lv}})
		case sema.ByPtr:
			id, ok := arg.(*lang.Ident)
			if !ok {
				fl.errorf(arg.Pos(), "pointer argument must be a parameter name")
				return ir.ConstOf(ir.U32, 0)
			}
			pb, ok := fl.lookupName(id.Name).(*paramBinding)
			if !ok || pb.shadow != nil {
				fl.errorf(arg.Pos(), "pointer argument must be a message pointer parameter")
				return ir.ConstOf(ir.U32, 0)
			}
			binds = append(binds, argBinding{p.Name(), pb})
		}
	}

	// Switch to a fresh scope stack: the callee must not see the
	// caller's locals (only globals and program constants).
	saved := fl.scopes
	fl.scopes = nil
	fl.push()
	for _, ab := range binds {
		fl.bind(ab.name, ab.b)
	}

	ctx := &inlineCtx{fn: f, parent: fl.inline}
	var retTy ir.Type
	if f.Ret != sema.VoidType {
		if b, ok := f.Ret.(*sema.Basic); ok {
			retTy = irType(b)
			ctx.result = fl.emit(&ir.Instr{Op: ir.OpAlloca, Ty: retTy, Elem: retTy, Count: 1, Name: f.Name() + ".ret"})
		}
	}
	fl.inline = ctx
	fl.stmt(f.Decl.Body)
	fl.inline = ctx.parent

	if ctx.exit != nil {
		if fl.blk != nil && fl.blk.Term() == nil {
			fl.emit(&ir.Instr{Op: ir.OpJmp, Targets: []*ir.Block{ctx.exit}})
		}
		fl.blk = ctx.exit
	}
	fl.scopes = saved

	if ctx.result != nil {
		return fl.emit(&ir.Instr{Op: ir.OpLoad, Ty: retTy, Args: []ir.Value{ctx.result, ir.ConstOf(ir.U32, 0)}})
	}
	return ir.ConstOf(ir.U32, 0)
}

// inlineReturn handles a return statement inside an inlined body.
func (fl *fnLowerer) inlineReturn(st *lang.ReturnStmt) {
	ctx := fl.inline
	if st.X != nil && ctx.result != nil {
		v := fl.convert(fl.expr(st.X), ctx.result.Elem)
		fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{ctx.result, ir.ConstOf(ir.U32, 0), v}})
	} else if st.X != nil {
		fl.expr(st.X) // e.g. "return f();" in a void function
	}
	if ctx.exit == nil {
		ctx.exit = fl.fn.NewBlock("inl_exit")
	}
	if fl.blk != nil && fl.blk.Term() == nil {
		fl.emit(&ir.Instr{Op: ir.OpJmp, Targets: []*ir.Block{ctx.exit}})
	}
	fl.blk = nil
}
