package lower

import (
	"strings"
	"testing"

	"netcl/internal/ir"
	"netcl/internal/lang"
	"netcl/internal/sema"
)

func lowerSrc(t *testing.T, src string, dev uint16) *ir.Module {
	t.Helper()
	var d lang.Diagnostics
	f := lang.ParseFile("test.ncl", src, nil, &d)
	if d.HasErrors() {
		t.Fatalf("parse: %s", d.String())
	}
	prog := sema.Check(f, &d)
	if d.HasErrors() {
		t.Fatalf("sema: %s", d.String())
	}
	mod := Module(prog, dev, Options{}, &d)
	if d.HasErrors() {
		t.Fatalf("lower: %s", d.String())
	}
	if mod == nil {
		t.Fatal("nil module")
	}
	return mod
}

func lowerErr(t *testing.T, src string, wantSub string) {
	t.Helper()
	var d lang.Diagnostics
	f := lang.ParseFile("test.ncl", src, nil, &d)
	prog := sema.Check(f, &d)
	if d.HasErrors() {
		t.Fatalf("pre-lower errors: %s", d.String())
	}
	Module(prog, 1, Options{}, &d)
	if !d.HasErrors() {
		t.Fatalf("expected lowering error containing %q", wantSub)
	}
	if !strings.Contains(d.String(), wantSub) {
		t.Fatalf("want error with %q, got:\n%s", wantSub, d.String())
	}
}

func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
			if i.Op == op {
				n++
			}
			return true
		})
	}
	return n
}

const fig4 = `
#define CMS_HASHES 3
#define THRESH 512
#define GET_REQ 1

_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
`

func TestLowerFig4(t *testing.T) {
	mod := lowerSrc(t, fig4, 1)
	if len(mod.Funcs) != 1 {
		t.Fatalf("funcs: %d", len(mod.Funcs))
	}
	fn := mod.Funcs[0]
	if fn.Name != "query" || fn.Comp != 1 {
		t.Fatalf("kernel: %s comp=%d", fn.Name, fn.Comp)
	}
	if len(fn.Params) != 5 {
		t.Fatalf("params: %d", len(fn.Params))
	}
	// Message layout: op(1) k(4) v(4) hit(1) hot(4).
	if fn.Params[1].Offset != 1 || fn.Params[4].Offset != 10 {
		t.Errorf("offsets: k=%d hot=%d", fn.Params[1].Offset, fn.Params[4].Offset)
	}
	// The sketch net function is inlined: three saturating atomics.
	if n := countOps(mod, ir.OpAtomicRMW); n != 3 {
		t.Errorf("atomics: got %d, want 3 (inlined sketch)", n)
	}
	if n := countOps(mod, ir.OpLookup); n != 1 {
		t.Errorf("lookups: got %d, want 1", n)
	}
	if n := countOps(mod, ir.OpHash); n != 3 {
		t.Errorf("hashes: got %d, want 3", n)
	}
	// Memories present on this device.
	if mod.MemByName("cms") == nil || mod.MemByName("cache") == nil {
		t.Error("missing memories")
	}
	for _, f := range mod.Funcs {
		if err := ir.Verify(f); err != nil {
			t.Errorf("verify: %v", err)
		}
	}
}

func TestLowerDeviceFiltering(t *testing.T) {
	src := `
_at(10) _net_ uint32_t A;
_at(20) _net_ uint32_t B;
_at(10) _kernel(1) void ka(uint32_t &x) { x = A; }
_at(20) _kernel(1) void kb(uint32_t &x) { x = B; }
`
	mod := lowerSrc(t, src, 10)
	if len(mod.Funcs) != 1 || mod.Funcs[0].Name != "ka" {
		t.Fatalf("device 10 should only get ka: %v", mod.Funcs)
	}
	if mod.MemByName("A") == nil || mod.MemByName("B") != nil {
		t.Error("device 10 should have A only")
	}
}

func TestLowerDeviceIDMaterialized(t *testing.T) {
	src := `_kernel(1) void k(uint16_t &x) { x = device.id; }`
	mod := lowerSrc(t, src, 7)
	// The store to x must use the constant 7 directly.
	found := false
	mod.Funcs[0].Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpStoreMsg {
			if c, ok := i.Args[1].(*ir.Const); ok && c.Val == 7 {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Errorf("device.id not materialized:\n%s", mod.Funcs[0])
	}
}

func TestLowerUnrollCounts(t *testing.T) {
	src := `
_net_ uint32_t M[8][64];
_kernel(1) void k(uint32_t idx, uint32_t _spec(8) *v) {
  for (auto i = 0; i < 8; ++i)
    v[i] = ncl::atomic_add(&M[i][idx], v[i]);
}
`
	mod := lowerSrc(t, src, 1)
	if n := countOps(mod, ir.OpAtomicRMW); n != 8 {
		t.Errorf("unroll: got %d atomics, want 8", n)
	}
	// Loop induction variable is constant per iteration: first index of
	// each atomic is a constant.
	mod.Funcs[0].Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpAtomicRMW {
			if _, ok := i.Args[0].(*ir.Const); !ok {
				t.Errorf("outer index not constant: %s", i)
			}
		}
		return true
	})
}

func TestLowerUnrollDownCounting(t *testing.T) {
	src := `
_kernel(1) void k(uint32_t &x) {
  uint32_t acc = 0;
  for (int i = 4; i > 0; --i) acc = acc + i;
  x = acc;
}
`
	mod := lowerSrc(t, src, 1)
	if mod == nil {
		t.Fatal("nil")
	}
}

func TestLowerUnrollErrors(t *testing.T) {
	lowerErr(t, `
_kernel(1) void k(uint32_t n, uint32_t &x) {
  for (auto i = 0; i < n; ++i) x = x + i;
}
`, "not compile-time evaluable")

	lowerErr(t, `
_kernel(1) void k(uint32_t &x) {
  for (auto i = 0; i < 4; ++i) { i = 2; x = x + i; }
}
`, "modifies induction variable")

	lowerErr(t, `
_kernel(1) void k(uint32_t n, uint32_t &x) {
  while (n > 0) { x = x + 1; }
}
`, "cannot unroll while")
}

func TestLowerUnrollLimit(t *testing.T) {
	var d lang.Diagnostics
	f := lang.ParseFile("t", `
_kernel(1) void k(uint32_t &x) {
  for (auto i = 0; i < 100000; ++i) x = x + 1;
}
`, nil, &d)
	prog := sema.Check(f, &d)
	Module(prog, 1, Options{MaxUnroll: 64}, &d)
	if !d.HasErrors() || !strings.Contains(d.String(), "unroll limit") {
		t.Fatalf("expected unroll-limit error, got: %s", d.String())
	}
}

func TestLowerTernaryActionReturn(t *testing.T) {
	src := `_kernel(1) void k(char hit) { return hit ? ncl::reflect() : ncl::drop(); }`
	mod := lowerSrc(t, src, 1)
	kinds := map[ir.ActionKind]int{}
	mod.Funcs[0].Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpRetAction {
			kinds[i.ActionKind]++
		}
		return true
	})
	if kinds[ir.ActReflect] != 1 || kinds[ir.ActDrop] != 1 {
		t.Errorf("actions: %v", kinds)
	}
}

func TestLowerImplicitPass(t *testing.T) {
	src := `_kernel(1) void k(char op, uint32_t &v) { if (op == 1) { v = 42; return ncl::drop(); } }`
	mod := lowerSrc(t, src, 1)
	pass := 0
	mod.Funcs[0].Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpRetAction && i.ActionKind == ir.ActPass {
			pass++
		}
		return true
	})
	if pass == 0 {
		t.Error("implicit pass() missing")
	}
}

func TestLowerNetFunctionReturnValue(t *testing.T) {
	src := `
_net_ uint32_t helper(uint32_t a, uint32_t b) {
  if (a > b) return a - b;
  return b - a;
}
_kernel(1) void k(uint32_t a, uint32_t b, uint32_t &out) {
  out = helper(a, b) + helper(b, a);
}
`
	mod := lowerSrc(t, src, 1)
	for _, f := range mod.Funcs {
		if err := ir.Verify(f); err != nil {
			t.Fatalf("verify: %v\n%s", err, f)
		}
	}
}

func TestLowerByValIsDeviceLocal(t *testing.T) {
	// Writing a by-value param must not produce a StoreMsg.
	src := `_kernel(1) void k(uint32_t x, uint32_t &out) { x = x + 1; out = x; }`
	mod := lowerSrc(t, src, 1)
	mod.Funcs[0].Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpStoreMsg && i.Param.Name == "x" {
			t.Error("by-value parameter written to the message")
		}
		return true
	})
}

func TestLowerMultiDimFlattening(t *testing.T) {
	src := `
_kernel(1) void k(uint32_t i, uint32_t &out) {
  uint32_t a[2][3];
  a[1][2] = 7;
  out = a[1][2];
}
`
	mod := lowerSrc(t, src, 1)
	// Flattened: 1*3+2 = 5.
	found := false
	mod.Funcs[0].Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpStore {
			if c, ok := i.Args[1].(*ir.Const); ok && c.Val == 5 {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Errorf("expected flattened index 5:\n%s", mod.Funcs[0])
	}
}

func TestLowerLookupWithOutput(t *testing.T) {
	src := `
_net_ _lookup_ ncl::kv<unsigned, unsigned> m[] = {{1,10},{2,20}};
_kernel(1) void k(unsigned key, unsigned &v, char &hit) {
  hit = ncl::lookup(m, key, v);
}
`
	mod := lowerSrc(t, src, 1)
	if countOps(mod, ir.OpLookup) != 1 || countOps(mod, ir.OpLookupVal) != 1 {
		t.Error("lookup/lookupval pair expected")
	}
	if countOps(mod, ir.OpSelect) != 1 {
		t.Error("miss-preserving select expected")
	}
	m := mod.MemByName("m")
	if m.LKind != ir.LookupExact || len(m.Init) != 4 {
		t.Errorf("mem: %+v", m)
	}
}
