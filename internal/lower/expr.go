package lower

import (
	"netcl/internal/ir"
	"netcl/internal/lang"
	"netcl/internal/sema"
)

// inlineCtx tracks state while lowering an inlined net-function body.
type inlineCtx struct {
	fn     *sema.Function
	exit   *ir.Block
	result *ir.Instr // alloca for non-void results
	parent *inlineCtx
}

// lvalue abstracts assignable places.
type lvalue interface {
	load(fl *fnLowerer) ir.Value
	store(fl *fnLowerer, v ir.Value)
	elem() ir.Type
}

// lvLocal is an alloca slot.
type lvLocal struct {
	alloca *ir.Instr
	index  ir.Value
	ty     ir.Type
}

func (lv *lvLocal) elem() ir.Type { return lv.ty }

func (lv *lvLocal) load(fl *fnLowerer) ir.Value {
	return fl.emit(&ir.Instr{Op: ir.OpLoad, Ty: lv.ty, Args: []ir.Value{lv.alloca, lv.index}})
}

func (lv *lvLocal) store(fl *fnLowerer, v ir.Value) {
	fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{lv.alloca, lv.index, fl.convert(v, lv.ty)}})
}

// lvMsg is a message (kernel argument) slot.
type lvMsg struct {
	p     *ir.MsgParam
	index ir.Value
}

func (lv *lvMsg) elem() ir.Type { return lv.p.Ty }

func (lv *lvMsg) load(fl *fnLowerer) ir.Value {
	return fl.emit(&ir.Instr{Op: ir.OpLoadMsg, Ty: lv.p.Ty, Param: lv.p, Args: []ir.Value{lv.index}})
}

func (lv *lvMsg) store(fl *fnLowerer, v ir.Value) {
	fl.emit(&ir.Instr{Op: ir.OpStoreMsg, Param: lv.p, Args: []ir.Value{lv.index, fl.convert(v, lv.p.Ty)}})
}

// lvGlobal is a device global-memory element; plain reads and writes
// lower to atomic read/write transactions (§V-B).
type lvGlobal struct {
	mem  *ir.MemRef
	idxs []ir.Value
}

func (lv *lvGlobal) elem() ir.Type { return lv.mem.Elem }

func (lv *lvGlobal) load(fl *fnLowerer) ir.Value {
	return fl.emit(&ir.Instr{
		Op: ir.OpAtomicRMW, Ty: lv.mem.Elem, G: lv.mem, AOp: "read",
		Args: append([]ir.Value{}, lv.idxs...), NIdx: len(lv.idxs),
	})
}

func (lv *lvGlobal) store(fl *fnLowerer, v ir.Value) {
	args := append([]ir.Value{}, lv.idxs...)
	args = append(args, fl.convert(v, lv.mem.Elem))
	fl.emit(&ir.Instr{
		Op: ir.OpAtomicRMW, G: lv.mem, AOp: "write",
		Args: args, NIdx: len(lv.idxs),
	})
}

// convert adjusts v to type to (zext/sext/trunc as needed).
func (fl *fnLowerer) convert(v ir.Value, to ir.Type) ir.Value {
	from := v.Type()
	if from == to {
		return v
	}
	if c, ok := v.(*ir.Const); ok {
		return ir.ConstOf(to, c.Val)
	}
	switch {
	case from.Bits == to.Bits:
		// Same width, signedness change only: a no-op at the bit level.
		// Reuse zext/trunc-free path by emitting a zero-width op; use
		// OpZExt with equal widths as a "bitcast".
		return fl.emit(&ir.Instr{Op: ir.OpZExt, Ty: to, Args: []ir.Value{v}})
	case from.Bits < to.Bits:
		op := ir.OpZExt
		if from.Signed && from.Bits > 1 {
			op = ir.OpSExt
		}
		return fl.emit(&ir.Instr{Op: op, Ty: to, Args: []ir.Value{v}})
	default:
		return fl.emit(&ir.Instr{Op: ir.OpTrunc, Ty: to, Args: []ir.Value{v}})
	}
}

// cond lowers e to an i1 value.
func (fl *fnLowerer) cond(e lang.Expr) ir.Value {
	v := fl.expr(e)
	if v.Type() == ir.I1 {
		return v
	}
	if c, ok := v.(*ir.Const); ok {
		if c.Val != 0 {
			return ir.ConstOf(ir.I1, 1)
		}
		return ir.ConstOf(ir.I1, 0)
	}
	return fl.emit(&ir.Instr{
		Op: ir.OpICmp, Ty: ir.I1, Pred: ir.PredNE,
		Args: []ir.Value{v, ir.ConstOf(v.Type(), 0)},
	})
}

// commonType computes the arithmetic result type of two IR types.
func commonType(a, b ir.Type) ir.Type {
	if a == ir.I1 {
		a = ir.U8
	}
	if b == ir.I1 {
		b = ir.U8
	}
	switch {
	case a.Bits > b.Bits:
		return a
	case b.Bits > a.Bits:
		return b
	case !a.Signed:
		return a
	default:
		return b
	}
}

// expr lowers an expression to a value.
func (fl *fnLowerer) expr(e lang.Expr) ir.Value {
	switch x := e.(type) {
	case *lang.IntLit:
		t := ir.S32
		if x.Val > 0x7FFFFFFF {
			t = ir.S64
		}
		if x.Val > 0x7FFFFFFFFFFFFFFF {
			t = ir.U64
		}
		return ir.ConstOf(t, int64(x.Val))
	case *lang.BoolLit:
		v := int64(0)
		if x.Val {
			v = 1
		}
		return ir.ConstOf(ir.I1, v)
	case *lang.Ident:
		return fl.identValue(x)
	case *lang.MemberExpr:
		return fl.memberValue(x)
	case *lang.BinaryExpr:
		return fl.binary(x)
	case *lang.UnaryExpr:
		return fl.unary(x)
	case *lang.PostfixExpr:
		lv := fl.lvalue(x.X)
		if lv == nil {
			return ir.ConstOf(ir.U32, 0)
		}
		old := lv.load(fl)
		op := ir.OpAdd
		if x.Op == lang.Dec {
			op = ir.OpSub
		}
		nv := fl.emit(&ir.Instr{Op: op, Ty: old.Type(), Args: []ir.Value{old, ir.ConstOf(old.Type(), 1)}})
		lv.store(fl, nv)
		return old
	case *lang.AssignExpr:
		return fl.assign(x)
	case *lang.CondExpr:
		return fl.ternary(x)
	case *lang.CallExpr:
		return fl.call(x)
	case *lang.IndexExpr:
		lv := fl.lvalue(x)
		if lv == nil {
			return ir.ConstOf(ir.U32, 0)
		}
		return lv.load(fl)
	case *lang.CastExpr:
		v := fl.expr(x.X)
		b := sema.BasicByName(x.Type.Name)
		if b == nil {
			return v
		}
		return fl.convert(v, irType(b))
	}
	fl.errorf(e.Pos(), "unsupported expression in device code")
	return ir.ConstOf(ir.U32, 0)
}

func (fl *fnLowerer) identValue(x *lang.Ident) ir.Value {
	b := fl.lookupName(x.Name)
	switch bd := b.(type) {
	case *constBinding:
		return ir.ConstOf(bd.ty, bd.val)
	case *localBinding:
		if len(bd.dims) > 0 {
			fl.errorf(x.NamePos, "array %q used as a value", x.Name)
			return ir.ConstOf(ir.U32, 0)
		}
		return fl.emit(&ir.Instr{Op: ir.OpLoad, Ty: bd.elem, Args: []ir.Value{bd.alloca, ir.ConstOf(ir.U32, 0)}})
	case *paramBinding:
		if bd.shadow != nil {
			return fl.emit(&ir.Instr{Op: ir.OpLoad, Ty: bd.p.Ty, Args: []ir.Value{bd.shadow, ir.ConstOf(ir.U32, 0)}})
		}
		if bd.p.Count > 1 {
			fl.errorf(x.NamePos, "pointer parameter %q used as a scalar value", x.Name)
			return ir.ConstOf(ir.U32, 0)
		}
		return fl.emit(&ir.Instr{Op: ir.OpLoadMsg, Ty: bd.p.Ty, Param: bd.p, Args: []ir.Value{ir.ConstOf(ir.U32, 0)}})
	case *refBinding:
		return bd.lv.load(fl)
	case *globalBinding:
		if len(bd.mem.Dims) > 0 {
			fl.errorf(x.NamePos, "memory %q used as a scalar value", x.Name)
			return ir.ConstOf(ir.U32, 0)
		}
		lv := &lvGlobal{mem: bd.mem}
		return lv.load(fl)
	}
	fl.errorf(x.NamePos, "cannot lower identifier %q", x.Name)
	return ir.ConstOf(ir.U32, 0)
}

func (fl *fnLowerer) memberValue(x *lang.MemberExpr) ir.Value {
	id, _ := x.X.(*lang.Ident)
	if id == nil {
		return ir.ConstOf(ir.U16, 0)
	}
	switch id.Name {
	case "device":
		// Materialized at compile time (§VI-B).
		switch x.Sel {
		case "id":
			return ir.ConstOf(ir.U16, int64(fl.l.deviceID))
		case "kind":
			return ir.ConstOf(ir.U8, 1) // 1 = switch
		}
	case "msg":
		return fl.emit(&ir.Instr{Op: ir.OpMsgField, Ty: ir.U16, Field: x.Sel})
	}
	fl.errorf(x.Dot, "unsupported member access")
	return ir.ConstOf(ir.U16, 0)
}

func (fl *fnLowerer) binary(x *lang.BinaryExpr) ir.Value {
	a := fl.expr(x.X)
	b := fl.expr(x.Y)
	// Constant fold eagerly: unrolled loops produce heaps of constant
	// arithmetic; folding here keeps the IR small before simplify runs.
	if ca, ok := a.(*ir.Const); ok {
		if cb, ok2 := b.(*ir.Const); ok2 {
			if v, ok3 := foldBinary(x.Op, ca, cb); ok3 {
				return v
			}
		}
	}
	switch x.Op {
	case lang.AndAnd, lang.OrOr:
		ai := fl.toI1(a)
		bi := fl.toI1(b)
		op := ir.OpAnd
		if x.Op == lang.OrOr {
			op = ir.OpOr
		}
		return fl.emit(&ir.Instr{Op: op, Ty: ir.I1, Args: []ir.Value{ai, bi}})
	case lang.EqEq, lang.NotEq, lang.Lt, lang.Gt, lang.Le, lang.Ge:
		ct := commonType(a.Type(), b.Type())
		a = fl.convert(a, ct)
		b = fl.convert(b, ct)
		return fl.emit(&ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: cmpPred(x.Op, ct.Signed), Args: []ir.Value{a, b}})
	case lang.Shl, lang.Shr:
		t := a.Type()
		if t == ir.I1 {
			t = ir.U8
			a = fl.convert(a, t)
		}
		b = fl.convert(b, t)
		op := ir.OpShl
		if x.Op == lang.Shr {
			if t.Signed {
				op = ir.OpAShr
			} else {
				op = ir.OpLShr
			}
		}
		return fl.emit(&ir.Instr{Op: op, Ty: t, Args: []ir.Value{a, b}})
	default:
		ct := commonType(a.Type(), b.Type())
		a = fl.convert(a, ct)
		b = fl.convert(b, ct)
		var op ir.Op
		switch x.Op {
		case lang.Plus:
			op = ir.OpAdd
		case lang.Minus:
			op = ir.OpSub
		case lang.Star:
			op = ir.OpMul
		case lang.Slash:
			if ct.Signed {
				op = ir.OpSDiv
			} else {
				op = ir.OpUDiv
			}
		case lang.Percent:
			if ct.Signed {
				op = ir.OpSRem
			} else {
				op = ir.OpURem
			}
		case lang.Amp:
			op = ir.OpAnd
		case lang.Pipe:
			op = ir.OpOr
		case lang.Caret:
			op = ir.OpXor
		default:
			fl.errorf(x.OpPos, "unsupported binary operator %s", x.Op)
			return ir.ConstOf(ct, 0)
		}
		return fl.emit(&ir.Instr{Op: op, Ty: ct, Args: []ir.Value{a, b}})
	}
}

func foldBinary(op lang.Kind, a, b *ir.Const) (ir.Value, bool) {
	t := commonType(a.Ty, b.Ty)
	av, bv := t.Wrap(a.Val), t.Wrap(b.Val)
	bool1 := func(c bool) (ir.Value, bool) {
		v := int64(0)
		if c {
			v = 1
		}
		return ir.ConstOf(ir.I1, v), true
	}
	switch op {
	case lang.Plus:
		return ir.ConstOf(t, av+bv), true
	case lang.Minus:
		return ir.ConstOf(t, av-bv), true
	case lang.Star:
		return ir.ConstOf(t, av*bv), true
	case lang.Slash:
		if bv == 0 {
			return nil, false
		}
		if t.Signed {
			return ir.ConstOf(t, av/bv), true
		}
		return ir.ConstOf(t, int64(uint64(av)&t.Mask()/(uint64(bv)&t.Mask()))), true
	case lang.Percent:
		if bv == 0 {
			return nil, false
		}
		if t.Signed {
			return ir.ConstOf(t, av%bv), true
		}
		return ir.ConstOf(t, int64(uint64(av)&t.Mask()%(uint64(bv)&t.Mask()))), true
	case lang.Amp:
		return ir.ConstOf(t, av&bv), true
	case lang.Pipe:
		return ir.ConstOf(t, av|bv), true
	case lang.Caret:
		return ir.ConstOf(t, av^bv), true
	case lang.Shl:
		if bv < 0 || bv > 63 {
			return nil, false
		}
		return ir.ConstOf(a.Ty, a.Val<<uint(bv)), true
	case lang.Shr:
		if bv < 0 || bv > 63 {
			return nil, false
		}
		if a.Ty.Signed {
			return ir.ConstOf(a.Ty, a.Val>>uint(bv)), true
		}
		return ir.ConstOf(a.Ty, int64(a.Uint()>>uint(bv))), true
	case lang.EqEq:
		return bool1(av == bv)
	case lang.NotEq:
		return bool1(av != bv)
	case lang.Lt:
		if t.Signed {
			return bool1(av < bv)
		}
		return bool1(uint64(av)&t.Mask() < uint64(bv)&t.Mask())
	case lang.Gt:
		if t.Signed {
			return bool1(av > bv)
		}
		return bool1(uint64(av)&t.Mask() > uint64(bv)&t.Mask())
	case lang.Le:
		if t.Signed {
			return bool1(av <= bv)
		}
		return bool1(uint64(av)&t.Mask() <= uint64(bv)&t.Mask())
	case lang.Ge:
		if t.Signed {
			return bool1(av >= bv)
		}
		return bool1(uint64(av)&t.Mask() >= uint64(bv)&t.Mask())
	case lang.AndAnd:
		return bool1(av != 0 && bv != 0)
	case lang.OrOr:
		return bool1(av != 0 || bv != 0)
	}
	return nil, false
}

func cmpPred(op lang.Kind, signed bool) ir.Pred {
	switch op {
	case lang.EqEq:
		return ir.PredEQ
	case lang.NotEq:
		return ir.PredNE
	case lang.Lt:
		if signed {
			return ir.PredSLT
		}
		return ir.PredULT
	case lang.Le:
		if signed {
			return ir.PredSLE
		}
		return ir.PredULE
	case lang.Gt:
		if signed {
			return ir.PredSGT
		}
		return ir.PredUGT
	default:
		if signed {
			return ir.PredSGE
		}
		return ir.PredUGE
	}
}

func (fl *fnLowerer) toI1(v ir.Value) ir.Value {
	if v.Type() == ir.I1 {
		return v
	}
	if c, ok := v.(*ir.Const); ok {
		if c.Val != 0 {
			return ir.ConstOf(ir.I1, 1)
		}
		return ir.ConstOf(ir.I1, 0)
	}
	return fl.emit(&ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: ir.PredNE, Args: []ir.Value{v, ir.ConstOf(v.Type(), 0)}})
}

func (fl *fnLowerer) unary(x *lang.UnaryExpr) ir.Value {
	switch x.Op {
	case lang.Minus:
		v := fl.expr(x.X)
		t := v.Type()
		if t == ir.I1 {
			t = ir.U8
			v = fl.convert(v, t)
		}
		if c, ok := v.(*ir.Const); ok {
			return ir.ConstOf(t, -c.Val)
		}
		return fl.emit(&ir.Instr{Op: ir.OpSub, Ty: t, Args: []ir.Value{ir.ConstOf(t, 0), v}})
	case lang.Tilde:
		v := fl.expr(x.X)
		t := v.Type()
		if t == ir.I1 {
			t = ir.U8
			v = fl.convert(v, t)
		}
		if c, ok := v.(*ir.Const); ok {
			return ir.ConstOf(t, ^c.Val)
		}
		return fl.emit(&ir.Instr{Op: ir.OpXor, Ty: t, Args: []ir.Value{v, ir.ConstOf(t, -1)}})
	case lang.Not:
		v := fl.cond(x.X)
		if c, ok := v.(*ir.Const); ok {
			return ir.ConstOf(ir.I1, 1-(c.Val&1))
		}
		return fl.emit(&ir.Instr{Op: ir.OpXor, Ty: ir.I1, Args: []ir.Value{v, ir.ConstOf(ir.I1, 1)}})
	case lang.Inc, lang.Dec:
		lv := fl.lvalue(x.X)
		if lv == nil {
			return ir.ConstOf(ir.U32, 0)
		}
		old := lv.load(fl)
		op := ir.OpAdd
		if x.Op == lang.Dec {
			op = ir.OpSub
		}
		nv := fl.emit(&ir.Instr{Op: op, Ty: old.Type(), Args: []ir.Value{old, ir.ConstOf(old.Type(), 1)}})
		lv.store(fl, nv)
		return nv
	case lang.Star:
		// *p is p[0].
		lv := fl.ptrElem(x.X, ir.ConstOf(ir.U32, 0))
		if lv == nil {
			fl.errorf(x.OpPos, "cannot dereference this expression")
			return ir.ConstOf(ir.U32, 0)
		}
		return lv.load(fl)
	case lang.Amp:
		fl.errorf(x.OpPos, "address-of may only appear as an atomic-operation argument")
		return ir.ConstOf(ir.U32, 0)
	}
	fl.errorf(x.OpPos, "unsupported unary operator %s", x.Op)
	return ir.ConstOf(ir.U32, 0)
}

// ptrElem resolves expressions denoting pointer-parameter elements.
func (fl *fnLowerer) ptrElem(e lang.Expr, idx ir.Value) lvalue {
	id, ok := e.(*lang.Ident)
	if !ok {
		return nil
	}
	if pb, ok2 := fl.lookupName(id.Name).(*paramBinding); ok2 && pb.shadow == nil {
		return &lvMsg{p: pb.p, index: idx}
	}
	return nil
}

// sideEffecting reports whether lowering e may emit memory writes or
// atomics (used to decide select vs. branch for ternaries).
func (fl *fnLowerer) sideEffecting(e lang.Expr) bool {
	found := false
	lang.Walk(e, func(n lang.Node) bool {
		switch x := n.(type) {
		case *lang.AssignExpr, *lang.PostfixExpr:
			found = true
		case *lang.UnaryExpr:
			if x.Op == lang.Inc || x.Op == lang.Dec {
				found = true
			}
		case *lang.CallExpr:
			if b := fl.l.prog.Builtins[x]; b != nil {
				if b.Cat == sema.CatAtomic {
					found = true
				}
			} else if fl.l.prog.CalledFns[x] != nil {
				found = true // conservatively: user calls may write
			}
		}
		return !found
	})
	return found
}

func (fl *fnLowerer) ternary(x *lang.CondExpr) ir.Value {
	cond := fl.cond(x.Cond)
	if c, ok := cond.(*ir.Const); ok {
		if c.Val != 0 {
			return fl.expr(x.Then)
		}
		return fl.expr(x.Else)
	}
	if !fl.sideEffecting(x.Then) && !fl.sideEffecting(x.Else) {
		a := fl.expr(x.Then)
		b := fl.expr(x.Else)
		ct := commonType(a.Type(), b.Type())
		a = fl.convert(a, ct)
		b = fl.convert(b, ct)
		return fl.emit(&ir.Instr{Op: ir.OpSelect, Ty: ct, Args: []ir.Value{cond, a, b}})
	}
	// Side-effecting arms: lower as a diamond through a temporary.
	ty := fl.semaType(x)
	tmp := fl.emit(&ir.Instr{Op: ir.OpAlloca, Ty: ty, Elem: ty, Count: 1, Name: "ternary"})
	thenB := fl.fn.NewBlock("tern_t")
	elseB := fl.fn.NewBlock("tern_f")
	joinB := fl.fn.NewBlock("tern_j")
	fl.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Value{cond}, Targets: []*ir.Block{thenB, elseB}})
	fl.blk = thenB
	av := fl.convert(fl.expr(x.Then), ty)
	fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{tmp, ir.ConstOf(ir.U32, 0), av}})
	fl.emit(&ir.Instr{Op: ir.OpJmp, Targets: []*ir.Block{joinB}})
	fl.blk = elseB
	bv := fl.convert(fl.expr(x.Else), ty)
	fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{tmp, ir.ConstOf(ir.U32, 0), bv}})
	fl.emit(&ir.Instr{Op: ir.OpJmp, Targets: []*ir.Block{joinB}})
	fl.blk = joinB
	return fl.emit(&ir.Instr{Op: ir.OpLoad, Ty: ty, Args: []ir.Value{tmp, ir.ConstOf(ir.U32, 0)}})
}

// semaType returns the IR type the checker assigned to e.
func (fl *fnLowerer) semaType(e lang.Expr) ir.Type {
	if t, ok := fl.l.prog.Types[e]; ok {
		if b, ok2 := t.(*sema.Basic); ok2 {
			return irType(b)
		}
	}
	return ir.U32
}

func (fl *fnLowerer) assign(x *lang.AssignExpr) ir.Value {
	lv := fl.lvalue(x.LHS)
	if lv == nil {
		fl.expr(x.RHS)
		return ir.ConstOf(ir.U32, 0)
	}
	if x.Op == lang.Assign {
		v := fl.convert(fl.expr(x.RHS), lv.elem())
		lv.store(fl, v)
		return v
	}
	old := lv.load(fl)
	rhs := fl.expr(x.RHS)
	t := lv.elem()
	rhs = fl.convert(rhs, t)
	var op ir.Op
	switch x.Op {
	case lang.PlusEq:
		op = ir.OpAdd
	case lang.MinusEq:
		op = ir.OpSub
	case lang.StarEq:
		op = ir.OpMul
	case lang.SlashEq:
		if t.Signed {
			op = ir.OpSDiv
		} else {
			op = ir.OpUDiv
		}
	case lang.PercentEq:
		if t.Signed {
			op = ir.OpSRem
		} else {
			op = ir.OpURem
		}
	case lang.AmpEq:
		op = ir.OpAnd
	case lang.PipeEq:
		op = ir.OpOr
	case lang.CaretEq:
		op = ir.OpXor
	case lang.ShlEq:
		op = ir.OpShl
	case lang.ShrEq:
		if t.Signed {
			op = ir.OpAShr
		} else {
			op = ir.OpLShr
		}
	default:
		fl.errorf(x.OpPos, "unsupported compound assignment")
		return old
	}
	nv := fl.emit(&ir.Instr{Op: op, Ty: t, Args: []ir.Value{old, rhs}})
	lv.store(fl, nv)
	return nv
}

// lvalue resolves an assignable expression.
func (fl *fnLowerer) lvalue(e lang.Expr) lvalue {
	switch x := e.(type) {
	case *lang.Ident:
		switch bd := fl.lookupName(x.Name).(type) {
		case *localBinding:
			if len(bd.dims) > 0 {
				fl.errorf(x.NamePos, "cannot assign to array %q as a whole", x.Name)
				return nil
			}
			return &lvLocal{alloca: bd.alloca, index: ir.ConstOf(ir.U32, 0), ty: bd.elem}
		case *paramBinding:
			if bd.shadow != nil {
				return &lvLocal{alloca: bd.shadow, index: ir.ConstOf(ir.U32, 0), ty: bd.p.Ty}
			}
			return &lvMsg{p: bd.p, index: ir.ConstOf(ir.U32, 0)}
		case *refBinding:
			return bd.lv
		case *globalBinding:
			if len(bd.mem.Dims) > 0 {
				fl.errorf(x.NamePos, "cannot assign to memory %q as a whole", x.Name)
				return nil
			}
			return &lvGlobal{mem: bd.mem}
		}
		fl.errorf(x.NamePos, "%q is not assignable", x.Name)
		return nil
	case *lang.IndexExpr:
		return fl.indexLvalue(x)
	case *lang.UnaryExpr:
		if x.Op == lang.Star {
			return fl.ptrElem(x.X, ir.ConstOf(ir.U32, 0))
		}
	}
	fl.errorf(e.Pos(), "expression is not assignable")
	return nil
}

// indexLvalue resolves base[i]...[k] chains.
func (fl *fnLowerer) indexLvalue(x *lang.IndexExpr) lvalue {
	// Collect the index chain innermost-last.
	var idxExprs []lang.Expr
	base := lang.Expr(x)
	for {
		ix, ok := base.(*lang.IndexExpr)
		if !ok {
			break
		}
		idxExprs = append([]lang.Expr{ix.Index}, idxExprs...)
		base = ix.X
	}
	id, ok := base.(*lang.Ident)
	if !ok {
		fl.errorf(x.Pos(), "unsupported indexed expression")
		return nil
	}
	switch bd := fl.lookupName(id.Name).(type) {
	case *globalBinding:
		if len(idxExprs) != len(bd.mem.Dims) {
			fl.errorf(x.Pos(), "memory %q requires %d indices", id.Name, len(bd.mem.Dims))
			return nil
		}
		var idxs []ir.Value
		for _, ie := range idxExprs {
			idxs = append(idxs, fl.expr(ie))
		}
		return &lvGlobal{mem: bd.mem, idxs: idxs}
	case *localBinding:
		if len(idxExprs) != len(bd.dims) {
			fl.errorf(x.Pos(), "array %q requires %d indices", id.Name, len(bd.dims))
			return nil
		}
		idx := fl.flattenIndex(idxExprs, bd.dims)
		return &lvLocal{alloca: bd.alloca, index: idx, ty: bd.elem}
	case *paramBinding:
		if bd.shadow != nil || len(idxExprs) != 1 {
			fl.errorf(x.Pos(), "cannot index scalar parameter %q", id.Name)
			return nil
		}
		return &lvMsg{p: bd.p, index: fl.convert(fl.expr(idxExprs[0]), ir.U32)}
	case *refBinding:
		fl.errorf(x.Pos(), "cannot index reference parameter %q", id.Name)
		return nil
	}
	fl.errorf(x.Pos(), "cannot index %q", id.Name)
	return nil
}

// flattenIndex folds a multi-dimensional index into a single linear
// index value.
func (fl *fnLowerer) flattenIndex(idxExprs []lang.Expr, dims []int) ir.Value {
	var total ir.Value
	for i, ie := range idxExprs {
		v := fl.convert(fl.expr(ie), ir.U32)
		stride := 1
		for _, d := range dims[i+1:] {
			stride *= d
		}
		if stride != 1 {
			if c, ok := v.(*ir.Const); ok {
				v = ir.ConstOf(ir.U32, c.Val*int64(stride))
			} else {
				v = fl.emit(&ir.Instr{Op: ir.OpMul, Ty: ir.U32, Args: []ir.Value{v, ir.ConstOf(ir.U32, int64(stride))}})
			}
		}
		if total == nil {
			total = v
		} else {
			ca, aok := total.(*ir.Const)
			cb, bok := v.(*ir.Const)
			if aok && bok {
				total = ir.ConstOf(ir.U32, ca.Val+cb.Val)
			} else {
				total = fl.emit(&ir.Instr{Op: ir.OpAdd, Ty: ir.U32, Args: []ir.Value{total, v}})
			}
		}
	}
	if total == nil {
		total = ir.ConstOf(ir.U32, 0)
	}
	return total
}
