package sema

import (
	"netcl/internal/lang"
)

// Check runs semantic analysis over a parsed file. It always returns a
// Program (possibly partial); callers must consult diags.
func Check(file *lang.File, diags *lang.Diagnostics) *Program {
	c := &checker{
		diags: diags,
		prog: &Program{
			File:         file,
			Consts:       map[string]*Const{},
			Computations: map[uint8][]*Function{},
			Types:        map[lang.Expr]Type{},
			Refs:         map[*lang.Ident]Object{},
			Builtins:     map[*lang.CallExpr]*Builtin{},
			CalledFns:    map[*lang.CallExpr]*Function{},
			LocalOf:      map[*lang.VarDecl]*Local{},
			ConstVal:     map[lang.Expr]int64{},
		},
	}
	c.collect(file)
	c.checkPlacements()
	c.checkSpecs()
	for _, fd := range c.funcDecls {
		c.checkBody(fd)
	}
	c.checkRecursion()
	c.checkReferenceValidity()
	return c.prog
}

type checker struct {
	diags     *lang.Diagnostics
	prog      *Program
	funcDecls []*lang.FuncDecl
	fnOf      map[*lang.FuncDecl]*Function
}

// constEnv exposes the program's named constants to the folder.
func (c *checker) constEnv(name string) (int64, bool) {
	if k, ok := c.prog.Consts[name]; ok {
		return k.Val, true
	}
	return 0, false
}

// fold evaluates e as a compile-time constant, recording the result.
func (c *checker) fold(e lang.Expr) (int64, bool) {
	v, err := EvalConst(e, c.constEnv)
	if err != nil {
		c.diags.Errorf(e.Pos(), "%s", trimPosPrefix(err.Error()))
		return 0, false
	}
	c.prog.ConstVal[e] = v
	return v, true
}

// trimPosPrefix drops the duplicated position prefix from EvalConst
// errors (the diagnostic already carries a position).
func trimPosPrefix(s string) string {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == ':' && s[i+1] == ' ' {
			rest := s[i+2:]
			// Heuristic: EvalConst messages embed "file:line:col: ".
			// Keep stripping until the message no longer starts with a
			// position-looking token.
			if looksLikeMsg(rest) {
				return rest
			}
		}
	}
	return s
}

func looksLikeMsg(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return !(c >= '0' && c <= '9')
}

// collect builds symbol objects for all top-level declarations.
func (c *checker) collect(file *lang.File) {
	c.fnOf = map[*lang.FuncDecl]*Function{}
	for _, d := range file.Decls {
		switch decl := d.(type) {
		case *lang.VarDecl:
			c.collectVar(decl)
		case *lang.FuncDecl:
			c.collectFunc(decl)
		}
	}
}

func (c *checker) collectVar(d *lang.VarDecl) {
	if c.prog.GlobalByName(d.Name) != nil || c.prog.Consts[d.Name] != nil {
		c.diags.Errorf(d.DeclPos, "redeclaration of %q", d.Name)
		return
	}
	if d.Const && !d.IsGlobalMemory() {
		// Top-level constant usable in device and host code.
		if d.Init == nil {
			c.diags.Errorf(d.DeclPos, "const %q requires an initializer", d.Name)
			return
		}
		v, ok := c.fold(d.Init)
		if !ok {
			return
		}
		t := U32Type
		if b := BasicByName(d.Type.Name); b != nil && b.Kind != Void {
			t = b
		}
		c.prog.Consts[d.Name] = &Const{name: d.Name, Val: v, Typ: t, declPos: d.DeclPos}
		return
	}
	if !d.IsGlobalMemory() {
		c.diags.Errorf(d.DeclPos, "global %q must be declared _net_ or _managed_ (or const)", d.Name)
		return
	}
	elem := resolveType(d.Type, c.diags)
	if elem == nil {
		c.diags.Errorf(d.DeclPos, "auto is not allowed for global memory")
		return
	}
	switch elem.(type) {
	case *KV, *RV:
		if !d.Lookup {
			c.diags.Errorf(d.DeclPos, "kv/rv types are only allowed for _lookup_ arrays")
		}
	case *Basic:
		if elem == VoidType {
			c.diags.Errorf(d.DeclPos, "void is not a valid memory element type")
			return
		}
	}
	if d.Lookup && len(d.Dims) == 0 {
		c.diags.Errorf(d.DeclPos, "_lookup_ applies to arrays only")
	}
	g := &Global{
		name: d.Name, Decl: d, Elem: elem,
		Net: d.Net, Managed: d.Managed, Lookup: d.Lookup,
	}
	g.At = c.locSet(d.At)
	g.Dims = c.dims(d)
	if d.Init != nil {
		g.Init = c.foldInit(d.Init)
	}
	c.prog.Globals = append(c.prog.Globals, g)
}

// dims folds array dimensions; a nil (inferred) dimension takes the
// length of the initializer list.
func (c *checker) dims(d *lang.VarDecl) []int {
	var out []int
	for i, de := range d.Dims {
		if de == nil {
			if i != 0 {
				c.diags.Errorf(d.DeclPos, "only the outermost dimension of %q may be inferred", d.Name)
				out = append(out, 1)
				continue
			}
			il, ok := d.Init.(*lang.InitList)
			if !ok {
				c.diags.Errorf(d.DeclPos, "cannot infer dimension of %q without an initializer list", d.Name)
				out = append(out, 1)
				continue
			}
			out = append(out, len(il.Elems))
			continue
		}
		v, ok := c.fold(de)
		if !ok || v <= 0 {
			if ok {
				c.diags.Errorf(de.Pos(), "array dimension must be positive, got %d", v)
			}
			v = 1
		}
		out = append(out, int(v))
	}
	return out
}

func (c *checker) foldInit(e lang.Expr) *InitValue {
	if il, ok := e.(*lang.InitList); ok {
		iv := &InitValue{IsList: true}
		for _, el := range il.Elems {
			iv.Elems = append(iv.Elems, c.foldInit(el))
		}
		return iv
	}
	v, ok := c.fold(e)
	if !ok {
		return &InitValue{}
	}
	return &InitValue{Scalar: v}
}

func (c *checker) locSet(exprs []lang.Expr) LocSet {
	var s LocSet
	for _, e := range exprs {
		v, ok := c.fold(e)
		if !ok {
			continue
		}
		if v < 0 || v > 0xFFFF {
			c.diags.Errorf(e.Pos(), "device id %d out of range [0,65535]", v)
			continue
		}
		id := uint16(v)
		if s.Contains(id) {
			c.diags.Warnf(e.Pos(), "duplicate device id %d in _at list", id)
			continue
		}
		s = append(s, id)
	}
	return s
}

func (c *checker) collectFunc(d *lang.FuncDecl) {
	if c.prog.FuncByName(d.Name) != nil {
		c.diags.Errorf(d.DeclPos, "redeclaration of %q", d.Name)
		return
	}
	if !d.Kernel && !d.Net {
		c.diags.Errorf(d.DeclPos, "function %q must be declared _kernel(c) or _net_", d.Name)
		return
	}
	if d.Kernel && d.Net {
		c.diags.Errorf(d.DeclPos, "%q cannot be both _kernel and _net_", d.Name)
	}
	f := &Function{name: d.Name, Decl: d, Kernel: d.Kernel, Net: d.Net}
	f.At = c.locSet(d.At)
	if d.Kernel {
		v, ok := c.fold(d.Comp)
		if ok {
			if v < 0 || v > 255 {
				c.diags.Errorf(d.Comp.Pos(), "computation id %d out of range [0,255]", v)
			} else {
				f.Comp = uint8(v)
			}
		}
	}
	ret := resolveType(d.Ret, c.diags)
	if ret == nil {
		c.diags.Errorf(d.DeclPos, "auto return type is not supported")
		ret = VoidType
	}
	if d.Kernel && ret != VoidType {
		c.diags.Errorf(d.DeclPos, "kernel %q must return void", d.Name)
		ret = VoidType
	}
	f.Ret = ret
	for i, pd := range d.Params {
		f.Params = append(f.Params, c.collectParam(f, pd, i))
	}
	if d.Body == nil {
		c.diags.Errorf(d.DeclPos, "function %q requires a body", d.Name)
	}
	c.prog.Funcs = append(c.prog.Funcs, f)
	c.fnOf[d] = f
	c.funcDecls = append(c.funcDecls, d)
	if f.Kernel {
		c.prog.Kernels = append(c.prog.Kernels, f)
		c.prog.Computations[f.Comp] = append(c.prog.Computations[f.Comp], f)
	}
}

func (c *checker) collectParam(f *Function, pd *lang.Param, idx int) *Param {
	t := resolveType(pd.Type, c.diags)
	b, ok := t.(*Basic)
	if !ok || b == VoidType {
		c.diags.Errorf(pd.ParamPos, "parameter %q: kernel and net-function parameters must have fundamental scalar types", pd.Name)
		b = U32Type
	}
	p := &Param{name: pd.Name, Decl: pd, Elem: b, Spec: 1, Index: idx, Fn: f}
	switch {
	case pd.ByRef && pd.Ptr:
		c.diags.Errorf(pd.ParamPos, "parameter %q cannot be both reference and pointer", pd.Name)
		p.Dir = ByRef
	case pd.ByRef:
		p.Dir = ByRef
		if len(pd.Dims) > 0 {
			c.diags.Errorf(pd.ParamPos, "reference parameter %q cannot have array dimensions", pd.Name)
		}
	case pd.Ptr:
		p.Dir = ByPtr
		if pd.Spec != nil {
			if v, ok2 := c.fold(pd.Spec); ok2 && v > 0 {
				p.Spec = int(v)
			} else if ok2 {
				c.diags.Errorf(pd.Spec.Pos(), "_spec must be positive, got %d", v)
			}
		}
	case len(pd.Dims) > 0:
		// Array parameter: no array-to-pointer decay (§V-A); the
		// dimension is the specification.
		p.Dir = ByPtr
		if len(pd.Dims) > 1 {
			c.diags.Errorf(pd.ParamPos, "parameter %q: multi-dimensional array parameters are not supported", pd.Name)
		}
		if pd.Dims[0] == nil {
			c.diags.Errorf(pd.ParamPos, "parameter %q: array parameter requires an explicit dimension", pd.Name)
		} else if v, ok2 := c.fold(pd.Dims[0]); ok2 && v > 0 {
			p.Spec = int(v)
		}
		if pd.Spec != nil {
			c.diags.Errorf(pd.Spec.Pos(), "_spec on array parameter %q is redundant; the dimension is the specification", pd.Name)
		}
	default:
		p.Dir = ByVal
		if pd.Spec != nil {
			// "_spec ... is ignored when present" on non-pointers of
			// net functions; on kernels scalars always have spec 1.
			c.diags.Warnf(pd.Spec.Pos(), "_spec on scalar parameter %q is ignored", pd.Name)
		}
	}
	if f.Net && p.Dir == ByPtr && pd.Spec != nil {
		c.diags.Warnf(pd.Spec.Pos(), "_spec has no meaning on net-function parameters; ignored")
		p.Spec = 1
	}
	return p
}

// checkPlacements enforces equation (1): for every computation, either
// there is a single location-less kernel, or all kernels have explicit,
// pairwise-disjoint location sets.
func (c *checker) checkPlacements() {
	for comp, ks := range c.prog.Computations {
		if len(ks) == 1 {
			continue
		}
		for _, k := range ks {
			if len(k.At) == 0 {
				c.diags.Errorf(k.Pos(),
					"kernel %q of computation %d has no _at location but the computation has %d kernels; placement is ambiguous",
					k.Name(), comp, len(ks))
			}
		}
		for i := 0; i < len(ks); i++ {
			for j := i + 1; j < len(ks); j++ {
				if ks[i].At.Intersects(ks[j].At) {
					c.diags.Errorf(ks[j].Pos(),
						"kernels %q and %q of computation %d have overlapping locations %s and %s",
						ks[i].Name(), ks[j].Name(), comp, ks[i].At, ks[j].At)
				}
			}
		}
	}
}

// checkSpecs enforces matching kernel specifications within a
// computation (§V-A).
func (c *checker) checkSpecs() {
	for comp, ks := range c.prog.Computations {
		if len(ks) < 2 {
			continue
		}
		ref := ks[0].Spec()
		for _, k := range ks[1:] {
			if !k.Spec().Equal(ref) {
				c.diags.Errorf(k.Pos(),
					"kernel %q has specification %s but computation %d requires %s (from kernel %q)",
					k.Name(), k.Spec(), comp, ref, ks[0].Name())
			}
		}
	}
}

// checkRecursion rejects cycles in the user call graph.
func (c *checker) checkRecursion() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*Function]int{}
	var visit func(f *Function) bool
	visit = func(f *Function) bool {
		switch color[f] {
		case grey:
			return false
		case black:
			return true
		}
		color[f] = grey
		for _, callee := range f.Calls {
			if !visit(callee) {
				c.diags.Errorf(f.Pos(), "recursion detected: %q participates in a call cycle via %q", f.Name(), callee.Name())
				color[f] = black
				return true // report once per cycle entry
			}
		}
		color[f] = black
		return true
	}
	for _, f := range c.prog.Funcs {
		visit(f)
	}
}

// checkReferenceValidity enforces equation (2): a net function or
// global may be referenced only from code whose location set is a
// subset of the referenced entity's (or the entity is location-less).
// A location-less user is placed on every device compiled for, so its
// effective location set is "everywhere": it may only reference
// location-less entities (cf. the paper's `_kernel(2) c()` example).
func (c *checker) checkReferenceValidity() {
	covered := func(user, decl LocSet) bool {
		if len(decl) == 0 {
			return true
		}
		if len(user) == 0 {
			return false
		}
		return user.SubsetOf(decl)
	}
	for _, f := range c.prog.Funcs {
		for _, g := range f.UsesGlobals {
			if !covered(f.At, g.At) {
				c.diags.Errorf(f.Pos(),
					"function %q (at %s) references memory %q placed only at %s",
					f.Name(), f.At, g.Name(), g.At)
			}
		}
		for _, callee := range f.Calls {
			if !covered(f.At, callee.At) {
				c.diags.Errorf(f.Pos(),
					"function %q (at %s) calls net function %q placed only at %s",
					f.Name(), f.At, callee.Name(), callee.At)
			}
		}
	}
}
