// Package sema implements semantic analysis for NetCL-C: symbol
// resolution, type checking, kernel specifications (§V-A of the paper),
// placement and reference validity (§V-C, equations 1 and 2), and the
// language-level restrictions of §V-D.
package sema

import (
	"fmt"
	"strings"

	"netcl/internal/lang"
)

// BasicKind enumerates the fundamental NetCL types.
type BasicKind int

// Fundamental type kinds.
const (
	Invalid BasicKind = iota
	Void
	Bool
	I8
	U8
	I16
	U16
	I32
	U32
	I64
	U64
)

// Type is a semantic type.
type Type interface {
	String() string
	// Bits is the storage width in bits (0 for void).
	Bits() int
}

// Basic is a fundamental scalar type.
type Basic struct{ Kind BasicKind }

var basicInfo = map[BasicKind]struct {
	name   string
	bits   int
	signed bool
}{
	Invalid: {"invalid", 0, false},
	Void:    {"void", 0, false},
	Bool:    {"bool", 8, false},
	I8:      {"i8", 8, true},
	U8:      {"u8", 8, false},
	I16:     {"i16", 16, true},
	U16:     {"u16", 16, false},
	I32:     {"i32", 32, true},
	U32:     {"u32", 32, false},
	I64:     {"i64", 64, true},
	U64:     {"u64", 64, false},
}

// String implements Type.
func (b *Basic) String() string { return basicInfo[b.Kind].name }

// Bits implements Type.
func (b *Basic) Bits() int { return basicInfo[b.Kind].bits }

// Signed reports whether the type is a signed integer.
func (b *Basic) Signed() bool { return basicInfo[b.Kind].signed }

// IsInteger reports whether the type is an integer (incl. bool storage).
func (b *Basic) IsInteger() bool { return b.Kind >= Bool && b.Kind <= U64 }

// Singleton basic types, comparable by pointer.
var (
	VoidType = &Basic{Kind: Void}
	BoolType = &Basic{Kind: Bool}
	I8Type   = &Basic{Kind: I8}
	U8Type   = &Basic{Kind: U8}
	I16Type  = &Basic{Kind: I16}
	U16Type  = &Basic{Kind: U16}
	I32Type  = &Basic{Kind: I32}
	U32Type  = &Basic{Kind: U32}
	I64Type  = &Basic{Kind: I64}
	U64Type  = &Basic{Kind: U64}
)

var basicByName = map[string]*Basic{
	"void": VoidType, "bool": BoolType,
	"i8": I8Type, "u8": U8Type, "i16": I16Type, "u16": U16Type,
	"i32": I32Type, "u32": U32Type, "i64": I64Type, "u64": U64Type,
}

// BasicByName returns the basic type with the given canonical name, or
// nil if the name is not a basic type.
func BasicByName(name string) *Basic { return basicByName[name] }

// Array is a (possibly multi-dimensional, via nesting) array type.
type Array struct {
	Elem Type
	Len  int
}

// String implements Type.
func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem.String(), a.Len) }

// Bits implements Type.
func (a *Array) Bits() int { return a.Elem.Bits() * a.Len }

// KV is the exact-match lookup entry type kv<K,V>.
type KV struct{ K, V *Basic }

// String implements Type.
func (t *KV) String() string { return fmt.Sprintf("kv<%s,%s>", t.K, t.V) }

// Bits implements Type.
func (t *KV) Bits() int { return t.K.Bits() + t.V.Bits() }

// RV is the range-match lookup entry type rv<R,V>.
type RV struct{ R, V *Basic }

// String implements Type.
func (t *RV) String() string { return fmt.Sprintf("rv<%s,%s>", t.R, t.V) }

// Bits implements Type.
func (t *RV) Bits() int { return 2*t.R.Bits() + t.V.Bits() }

// Ref is a C++ reference to a basic type (kernel parameters only).
type Ref struct{ Elem *Basic }

// String implements Type.
func (t *Ref) String() string { return t.Elem.String() + "&" }

// Bits implements Type.
func (t *Ref) Bits() int { return t.Elem.Bits() }

// Ptr is a pointer to a basic type with an element-count specification
// (kernel parameters only; see §V-A "Specifications").
type Ptr struct {
	Elem *Basic
	Spec int
}

// String implements Type.
func (t *Ptr) String() string { return t.Elem.String() + "*" }

// Bits implements Type.
func (t *Ptr) Bits() int { return t.Elem.Bits() * t.Spec }

// ElemType returns the ultimate scalar element type of t (unwrapping
// arrays, refs, and pointers), or nil if t has no scalar element.
func ElemType(t Type) *Basic {
	switch x := t.(type) {
	case *Basic:
		return x
	case *Array:
		return ElemType(x.Elem)
	case *Ref:
		return x.Elem
	case *Ptr:
		return x.Elem
	}
	return nil
}

// Common computes the usual-arithmetic-conversion result of two integer
// types: the wider width wins; on equal width, unsigned wins.
func Common(a, b *Basic) *Basic {
	if a == b {
		return a
	}
	if a.Kind == Bool {
		a = U8Type
	}
	if b.Kind == Bool {
		b = U8Type
	}
	wa, wb := a.Bits(), b.Bits()
	switch {
	case wa > wb:
		return a
	case wb > wa:
		return b
	case !a.Signed():
		return a
	default:
		return b
	}
}

// resolveType converts a syntactic TypeExpr into a semantic type.
func resolveType(te *lang.TypeExpr, diags *lang.Diagnostics) Type {
	if te == nil {
		return VoidType
	}
	switch te.Name {
	case "kv", "rv":
		if len(te.Args) != 2 {
			diags.Errorf(te.TypePos, "%s requires two type arguments", te.Name)
			return VoidType
		}
		k := resolveScalar(te.Args[0], diags)
		v := resolveScalar(te.Args[1], diags)
		if te.Name == "kv" {
			return &KV{K: k, V: v}
		}
		return &RV{R: k, V: v}
	case "auto":
		// Stands for "deduced"; resolved at the use site.
		return nil
	default:
		if b := BasicByName(te.Name); b != nil {
			return b
		}
		diags.Errorf(te.TypePos, "unknown type %q", te.Name)
		return VoidType
	}
}

func resolveScalar(te *lang.TypeExpr, diags *lang.Diagnostics) *Basic {
	t := resolveType(te, diags)
	if b, ok := t.(*Basic); ok && b.Kind != Void {
		return b
	}
	diags.Errorf(te.TypePos, "expected a fundamental scalar type, got %s", te)
	return U32Type
}

// LocSet is a set of device IDs; empty means "location-less" (placed
// everywhere we compile for).
type LocSet []uint16

// Contains reports whether the set contains id.
func (s LocSet) Contains(id uint16) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// SubsetOf reports s ⊆ o.
func (s LocSet) SubsetOf(o LocSet) bool {
	for _, x := range s {
		if !o.Contains(x) {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share any element.
func (s LocSet) Intersects(o LocSet) bool {
	for _, x := range s {
		if o.Contains(x) {
			return true
		}
	}
	return false
}

// String renders the set for diagnostics.
func (s LocSet) String() string {
	if len(s) == 0 {
		return "∅"
	}
	parts := make([]string, len(s))
	for i, x := range s {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
