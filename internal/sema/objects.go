package sema

import (
	"fmt"
	"strings"

	"netcl/internal/lang"
)

// Object is a named program entity.
type Object interface {
	Name() string
	Pos() lang.Pos
}

// InitValue is a folded constant initializer: either a scalar or a
// nested list.
type InitValue struct {
	IsList bool
	Scalar int64
	Elems  []*InitValue
}

// Flatten appends all scalar leaves in order.
func (iv *InitValue) Flatten(dst []int64) []int64 {
	if iv == nil {
		return dst
	}
	if !iv.IsList {
		return append(dst, iv.Scalar)
	}
	for _, e := range iv.Elems {
		dst = e.Flatten(dst)
	}
	return dst
}

// Global is a device global-memory object (_net_ and/or _managed_,
// possibly _lookup_).
type Global struct {
	name    string
	Decl    *lang.VarDecl
	Elem    Type  // element type: *Basic, *KV, or *RV
	Dims    []int // outer-to-inner dimensions; empty for scalars
	Net     bool
	Managed bool
	Lookup  bool
	At      LocSet
	Init    *InitValue // nil if zero-initialized
}

// Name implements Object.
func (g *Global) Name() string { return g.name }

// Pos implements Object.
func (g *Global) Pos() lang.Pos { return g.Decl.DeclPos }

// NumElems returns the total element count (product of dims, 1 for a
// scalar).
func (g *Global) NumElems() int {
	n := 1
	for _, d := range g.Dims {
		n *= d
	}
	return n
}

// Type returns the full semantic type of the global.
func (g *Global) Type() Type {
	t := g.Elem
	for i := len(g.Dims) - 1; i >= 0; i-- {
		t = &Array{Elem: t, Len: g.Dims[i]}
	}
	return t
}

// Local is a function-local variable.
type Local struct {
	name string
	Decl *lang.VarDecl
	Elem *Basic
	Dims []int
	Fn   *Function
}

// Name implements Object.
func (l *Local) Name() string { return l.name }

// Pos implements Object.
func (l *Local) Pos() lang.Pos { return l.Decl.DeclPos }

// Const is a compile-time integer constant.
type Const struct {
	name    string
	Val     int64
	Typ     *Basic
	declPos lang.Pos
}

// Name implements Object.
func (c *Const) Name() string { return c.name }

// Pos implements Object.
func (c *Const) Pos() lang.Pos { return c.declPos }

// Dir is a parameter passing direction.
type Dir int

// Parameter directions.
const (
	ByVal Dir = iota // input only; device-local modifications
	ByRef            // in/out scalar
	ByPtr            // in/out array with _spec
)

// Param is a kernel or net-function parameter.
type Param struct {
	name  string
	Decl  *lang.Param
	Elem  *Basic
	Dir   Dir
	Spec  int // element count (1 for scalars)
	Index int
	Fn    *Function
}

// Name implements Object.
func (p *Param) Name() string { return p.name }

// Pos implements Object.
func (p *Param) Pos() lang.Pos { return p.Decl.ParamPos }

// Function is a kernel or net function.
type Function struct {
	name   string
	Decl   *lang.FuncDecl
	Kernel bool
	Comp   uint8
	Net    bool
	At     LocSet
	Params []*Param
	Ret    Type

	// Calls and UsesGlobals record the direct dependencies found while
	// checking the body (used for recursion and Eq. 2 validation).
	Calls       []*Function
	UsesGlobals []*Global
}

// Name implements Object.
func (f *Function) Name() string { return f.name }

// Pos implements Object.
func (f *Function) Pos() lang.Pos { return f.Decl.DeclPos }

// Spec returns the kernel specification: per-argument element counts
// and types (§V-A).
func (f *Function) Spec() Spec {
	s := Spec{}
	for _, p := range f.Params {
		s.Counts = append(s.Counts, p.Spec)
		s.Types = append(s.Types, p.Elem)
		s.Dirs = append(s.Dirs, p.Dir)
	}
	return s
}

// Spec is a kernel specification.
type Spec struct {
	Counts []int
	Types  []*Basic
	Dirs   []Dir
}

// Equal reports layout equality (counts and types); direction does not
// participate, since it does not affect the message layout.
func (s Spec) Equal(o Spec) bool {
	if len(s.Counts) != len(o.Counts) {
		return false
	}
	for i := range s.Counts {
		if s.Counts[i] != o.Counts[i] || s.Types[i] != o.Types[i] {
			return false
		}
	}
	return true
}

// Bytes returns the total message-data size in bytes.
func (s Spec) Bytes() int {
	n := 0
	for i := range s.Counts {
		n += s.Counts[i] * s.Types[i].Bits() / 8
	}
	return n
}

// String renders the specification like the paper: [1,2,1][int,int,int].
func (s Spec) String() string {
	var c, t []string
	for i := range s.Counts {
		c = append(c, fmt.Sprintf("%d", s.Counts[i]))
		t = append(t, s.Types[i].String())
	}
	return "[" + strings.Join(c, ",") + "][" + strings.Join(t, ",") + "]"
}

// builtinObj is the resolution target of the special identifiers
// "device" and "msg".
type builtinObj struct {
	name string
}

// Name implements Object.
func (b *builtinObj) Name() string { return b.name }

// Pos implements Object.
func (b *builtinObj) Pos() lang.Pos { return lang.Pos{} }

var (
	deviceObj = &builtinObj{name: "device"}
	msgObj    = &builtinObj{name: "msg"}
)

// Program is the result of semantic analysis.
type Program struct {
	File    *lang.File
	Globals []*Global
	Funcs   []*Function
	Kernels []*Function
	Consts  map[string]*Const

	// Computations groups kernels by computation ID.
	Computations map[uint8][]*Function

	// Types records the semantic type of every checked expression.
	Types map[lang.Expr]Type
	// Refs records the resolution of every identifier.
	Refs map[*lang.Ident]Object
	// Builtins records the device-library binding of each call.
	Builtins map[*lang.CallExpr]*Builtin
	// CalledFns records user-function call targets.
	CalledFns map[*lang.CallExpr]*Function
	// LocalOf maps local declarations to their objects.
	LocalOf map[*lang.VarDecl]*Local
	// ConstVal records expressions folded during checking (dims, specs,
	// computation ids, location lists).
	ConstVal map[lang.Expr]int64
}

// GlobalByName returns the named global, or nil.
func (p *Program) GlobalByName(name string) *Global {
	for _, g := range p.Globals {
		if g.name == name {
			return g
		}
	}
	return nil
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Function {
	for _, f := range p.Funcs {
		if f.name == name {
			return f
		}
	}
	return nil
}

// KernelAt returns the kernel of computation comp placed at device id
// (a kernel with an empty location set matches any device), or nil.
func (p *Program) KernelAt(comp uint8, id uint16) *Function {
	for _, k := range p.Computations[comp] {
		if len(k.At) == 0 || k.At.Contains(id) {
			return k
		}
	}
	return nil
}

// Locations returns the union of all explicit location sets in the
// program, sorted ascending; if no entity has an explicit location the
// result is empty (single-device program).
func (p *Program) Locations() []uint16 {
	seen := map[uint16]bool{}
	add := func(s LocSet) {
		for _, x := range s {
			seen[x] = true
		}
	}
	for _, g := range p.Globals {
		add(g.At)
	}
	for _, f := range p.Funcs {
		add(f.At)
	}
	var out []uint16
	for x := range seen {
		out = append(out, x)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
