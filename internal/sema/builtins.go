package sema

// The NetCL device library (paper Table I and II). Builtins are
// resolved by bare name after stripping the optional ncl:: prefix;
// target intrinsics live in the "tna" and "v1" namespaces.

// Cat classifies a builtin for checking, lowering, and code generation.
type Cat int

// Builtin categories.
const (
	CatAction    Cat = iota // declarative forwarding (Table II)
	CatAtomic               // global-memory read-modify-write
	CatLookup               // _lookup_ memory search
	CatMath                 // special arithmetic ops
	CatHash                 // hash functions
	CatIntrinsic            // target-specific externs
)

// Builtin describes one device-library function.
type Builtin struct {
	Name string
	NS   string // "" for ncl::, else "tna" or "v1"
	Cat  Cat

	// Op is the canonical operation ("add", "or", "drop", "crc32", ...).
	Op string
	// Cond marks conditional atomic variants (atomic_cond_*).
	Cond bool
	// New marks atomics returning the post-operation value (*_new).
	New bool

	// MinArgs/MaxArgs bound the argument count.
	MinArgs, MaxArgs int
}

// ActionType is the type of action calls (Table II); it may only occur
// in return statements of kernels.
type ActionType struct{}

// String implements Type.
func (*ActionType) String() string { return "action" }

// Bits implements Type.
func (*ActionType) Bits() int { return 8 }

// TheActionType is the singleton action type.
var TheActionType = &ActionType{}

// Actions in the order of the paper's Table II. Op doubles as the wire
// name used by the device runtime.
var actionArity = map[string]int{
	"drop": 0, "send_to_host": 1, "send_to_device": 1, "multicast": 1,
	"reflect": 0, "reflect_long": 0, "pass": 0,
}

// atomic ops and their operand counts (excluding the pointer and the
// condition). cas takes (ptr, expected, desired).
var atomicOps = map[string]int{
	"add": 1, "sadd": 1, "sub": 1, "ssub": 1, "or": 1, "and": 1,
	"xor": 1, "min": 1, "max": 1, "swap": 1, "inc": 0, "dec": 0,
}

// builtins is the registry, keyed by "ns::name" (ns empty for ncl).
var builtins = map[string]*Builtin{}

func register(b *Builtin) {
	key := b.Name
	if b.NS != "" {
		key = b.NS + "::" + b.Name
	}
	builtins[key] = b
}

func init() {
	for op, n := range actionArity {
		register(&Builtin{Name: op, Cat: CatAction, Op: op, MinArgs: n, MaxArgs: n})
	}
	for op, operands := range atomicOps {
		for _, cond := range []bool{false, true} {
			for _, nw := range []bool{false, true} {
				name := "atomic_"
				if cond {
					name += "cond_"
				}
				name += op
				if nw {
					name += "_new"
				}
				n := 1 + operands // pointer + operands
				if cond {
					n++
				}
				register(&Builtin{
					Name: name, Cat: CatAtomic, Op: op, Cond: cond, New: nw,
					MinArgs: n, MaxArgs: n,
				})
			}
		}
	}
	register(&Builtin{Name: "atomic_cas", Cat: CatAtomic, Op: "cas", MinArgs: 3, MaxArgs: 3})
	register(&Builtin{Name: "atomic_read", Cat: CatAtomic, Op: "read", MinArgs: 1, MaxArgs: 1})
	register(&Builtin{Name: "atomic_write", Cat: CatAtomic, Op: "write", MinArgs: 2, MaxArgs: 2})

	register(&Builtin{Name: "lookup", Cat: CatLookup, Op: "lookup", MinArgs: 2, MaxArgs: 3})

	for _, m := range []struct {
		name string
		n    int
	}{
		{"sadd", 2}, {"ssub", 2}, {"min", 2}, {"max", 2},
		{"bit_chk", 2}, {"clz", 1}, {"ctz", 1}, {"bswap", 1},
		{"rand", 0},
	} {
		register(&Builtin{Name: m.name, Cat: CatMath, Op: m.name, MinArgs: m.n, MaxArgs: m.n})
	}

	for _, h := range []string{"crc16", "crc32", "xor16", "identity", "csum16"} {
		register(&Builtin{Name: h, Cat: CatHash, Op: h, MinArgs: 1, MaxArgs: 8})
	}

	// Target intrinsics (representative set; targets reject foreign ones).
	register(&Builtin{Name: "crc64", NS: "tna", Cat: CatIntrinsic, Op: "crc64", MinArgs: 1, MaxArgs: 8})
	register(&Builtin{Name: "csum16r", NS: "v1", Cat: CatIntrinsic, Op: "csum16r", MinArgs: 1, MaxArgs: 8})
}

// LookupBuiltin finds a builtin by namespace and name.
func LookupBuiltin(ns, name string) *Builtin {
	key := name
	if ns != "" {
		key = ns + "::" + name
	}
	return builtins[key]
}

// hashWidth returns the natural result width in bits of a hash builtin.
func hashWidth(op string) int {
	switch op {
	case "crc16", "xor16", "csum16", "csum16r":
		return 16
	case "crc32":
		return 32
	case "crc64":
		return 64
	default:
		return 32
	}
}

// basicByBits returns the unsigned basic type of the given width.
func basicByBits(bits int) *Basic {
	switch {
	case bits <= 8:
		return U8Type
	case bits <= 16:
		return U16Type
	case bits <= 32:
		return U32Type
	default:
		return U64Type
	}
}
