package sema

import (
	"fmt"

	"netcl/internal/lang"
)

// ConstEnv supplies named constant values during folding.
type ConstEnv func(name string) (int64, bool)

// EvalConst folds a constant expression. It returns an error describing
// the first non-constant subexpression encountered.
func EvalConst(e lang.Expr, env ConstEnv) (int64, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return int64(x.Val), nil
	case *lang.BoolLit:
		if x.Val {
			return 1, nil
		}
		return 0, nil
	case *lang.Ident:
		if env != nil {
			if v, ok := env(x.Name); ok {
				return v, nil
			}
		}
		return 0, fmt.Errorf("%s: %q is not a compile-time constant", x.NamePos, x.Name)
	case *lang.UnaryExpr:
		v, err := EvalConst(x.X, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case lang.Minus:
			return -v, nil
		case lang.Tilde:
			return ^v, nil
		case lang.Not:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("%s: operator %s is not constant-foldable", x.OpPos, x.Op)
	case *lang.BinaryExpr:
		a, err := EvalConst(x.X, env)
		if err != nil {
			return 0, err
		}
		b, err := EvalConst(x.Y, env)
		if err != nil {
			return 0, err
		}
		return evalBinOp(x.Op, a, b, x.OpPos)
	case *lang.CondExpr:
		c, err := EvalConst(x.Cond, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return EvalConst(x.Then, env)
		}
		return EvalConst(x.Else, env)
	case *lang.CastExpr:
		v, err := EvalConst(x.X, env)
		if err != nil {
			return 0, err
		}
		if b := BasicByName(x.Type.Name); b != nil && b.Bits() > 0 && b.Bits() < 64 {
			mask := int64(1)<<uint(b.Bits()) - 1
			v &= mask
			if b.Signed() && v>>(uint(b.Bits())-1) != 0 {
				v -= 1 << uint(b.Bits())
			}
		}
		return v, nil
	}
	return 0, fmt.Errorf("%s: expression is not a compile-time constant", e.Pos())
}

func evalBinOp(op lang.Kind, a, b int64, pos lang.Pos) (int64, error) {
	bool2int := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case lang.Plus:
		return a + b, nil
	case lang.Minus:
		return a - b, nil
	case lang.Star:
		return a * b, nil
	case lang.Slash:
		if b == 0 {
			return 0, fmt.Errorf("%s: division by zero in constant expression", pos)
		}
		return a / b, nil
	case lang.Percent:
		if b == 0 {
			return 0, fmt.Errorf("%s: modulo by zero in constant expression", pos)
		}
		return a % b, nil
	case lang.Shl:
		if b < 0 || b > 63 {
			return 0, fmt.Errorf("%s: shift amount %d out of range", pos, b)
		}
		return a << uint(b), nil
	case lang.Shr:
		if b < 0 || b > 63 {
			return 0, fmt.Errorf("%s: shift amount %d out of range", pos, b)
		}
		return a >> uint(b), nil
	case lang.Amp:
		return a & b, nil
	case lang.Pipe:
		return a | b, nil
	case lang.Caret:
		return a ^ b, nil
	case lang.Lt:
		return bool2int(a < b), nil
	case lang.Gt:
		return bool2int(a > b), nil
	case lang.Le:
		return bool2int(a <= b), nil
	case lang.Ge:
		return bool2int(a >= b), nil
	case lang.EqEq:
		return bool2int(a == b), nil
	case lang.NotEq:
		return bool2int(a != b), nil
	case lang.AndAnd:
		return bool2int(a != 0 && b != 0), nil
	case lang.OrOr:
		return bool2int(a != 0 || b != 0), nil
	}
	return 0, fmt.Errorf("%s: operator %s is not constant-foldable", pos, op)
}
