package sema

import (
	"netcl/internal/lang"
)

// addrType is the internal type of "&global[...]" expressions, which
// may only flow into atomic builtins.
type addrType struct {
	elem *Basic
	g    *Global
}

// String implements Type.
func (a *addrType) String() string { return a.elem.String() + "*" }

// Bits implements Type.
func (a *addrType) Bits() int { return a.elem.Bits() }

// bodyChecker checks a single function body.
type bodyChecker struct {
	c      *checker
	fn     *Function
	scopes []map[string]Object
	seq    int
}

func (c *checker) checkBody(fd *lang.FuncDecl) {
	f := c.fnOf[fd]
	if f == nil || fd.Body == nil {
		return
	}
	bc := &bodyChecker{c: c, fn: f}
	bc.push()
	for _, p := range f.Params {
		if p.Name() != "" {
			bc.declare(p.Name(), p, p.Pos())
		}
	}
	bc.block(fd.Body)
	bc.pop()
}

func (bc *bodyChecker) push() { bc.scopes = append(bc.scopes, map[string]Object{}) }
func (bc *bodyChecker) pop()  { bc.scopes = bc.scopes[:len(bc.scopes)-1] }

func (bc *bodyChecker) declare(name string, obj Object, pos lang.Pos) {
	top := bc.scopes[len(bc.scopes)-1]
	if _, dup := top[name]; dup {
		bc.c.diags.Errorf(pos, "redeclaration of %q in the same scope", name)
	}
	top[name] = obj
}

func (bc *bodyChecker) resolve(name string) Object {
	for i := len(bc.scopes) - 1; i >= 0; i-- {
		if obj, ok := bc.scopes[i][name]; ok {
			return obj
		}
	}
	if g := bc.c.prog.GlobalByName(name); g != nil {
		return g
	}
	if k, ok := bc.c.prog.Consts[name]; ok {
		return k
	}
	if f := bc.c.prog.FuncByName(name); f != nil {
		return f
	}
	switch name {
	case "device":
		return deviceObj
	case "msg":
		return msgObj
	}
	return nil
}

func (bc *bodyChecker) useGlobal(g *Global) {
	for _, u := range bc.fn.UsesGlobals {
		if u == g {
			return
		}
	}
	bc.fn.UsesGlobals = append(bc.fn.UsesGlobals, g)
}

// Statements ----------------------------------------------------------

func (bc *bodyChecker) block(b *lang.BlockStmt) {
	bc.push()
	for _, s := range b.Stmts {
		bc.stmt(s)
	}
	bc.pop()
}

func (bc *bodyChecker) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.BlockStmt:
		bc.block(st)
	case *lang.EmptyStmt:
	case *lang.DeclStmt:
		bc.localDecl(st.D)
	case *lang.ExprStmt:
		bc.expr(st.X, false)
	case *lang.IfStmt:
		bc.scalarExpr(st.Cond)
		bc.stmt(st.Then)
		if st.Else != nil {
			bc.stmt(st.Else)
		}
	case *lang.ForStmt:
		bc.push()
		if st.Init != nil {
			bc.stmt(st.Init)
		}
		if st.Cond != nil {
			bc.scalarExpr(st.Cond)
		}
		if st.Post != nil {
			bc.stmt(st.Post)
		}
		bc.stmt(st.Body)
		bc.pop()
	case *lang.WhileStmt:
		bc.scalarExpr(st.Cond)
		bc.stmt(st.Body)
	case *lang.ReturnStmt:
		bc.returnStmt(st)
	case *lang.BreakStmt:
		bc.c.diags.Errorf(st.KwPos, "break is not supported in NetCL device code (loops must be fully unrolled)")
	case *lang.ContinueStmt:
		bc.c.diags.Errorf(st.KwPos, "continue is not supported in NetCL device code (loops must be fully unrolled)")
	}
}

func (bc *bodyChecker) localDecl(d *lang.VarDecl) {
	if d.IsGlobalMemory() || d.Lookup || len(d.At) > 0 {
		bc.c.diags.Errorf(d.DeclPos, "NetCL memory specifiers are not allowed on local variable %q", d.Name)
	}
	var elem *Basic
	if d.Type.Name == "auto" {
		if d.Init == nil {
			bc.c.diags.Errorf(d.DeclPos, "auto variable %q requires an initializer", d.Name)
			elem = U32Type
		} else {
			t := bc.expr(d.Init, false)
			b, ok := t.(*Basic)
			if !ok {
				bc.c.diags.Errorf(d.DeclPos, "cannot deduce a scalar type for %q from initializer of type %s", d.Name, typeName(t))
				b = U32Type
			}
			elem = b
		}
	} else {
		t := resolveType(d.Type, bc.c.diags)
		b, ok := t.(*Basic)
		if !ok || b == VoidType {
			bc.c.diags.Errorf(d.DeclPos, "local variable %q must have a fundamental scalar or array-of-scalar type", d.Name)
			b = U32Type
		}
		elem = b
		if d.Init != nil {
			if _, isList := d.Init.(*lang.InitList); isList {
				bc.checkLocalInitList(d)
			} else {
				bc.convertible(bc.expr(d.Init, false), elem, d.Init.Pos())
			}
		}
	}
	var dims []int
	for _, de := range d.Dims {
		if de == nil {
			bc.c.diags.Errorf(d.DeclPos, "local array %q requires explicit dimensions", d.Name)
			dims = append(dims, 1)
			continue
		}
		if v, ok := bc.c.fold(de); ok && v > 0 {
			dims = append(dims, int(v))
		} else {
			dims = append(dims, 1)
		}
	}
	l := &Local{name: d.Name, Decl: d, Elem: elem, Dims: dims, Fn: bc.fn}
	bc.c.prog.LocalOf[d] = l
	bc.declare(d.Name, l, d.DeclPos)
}

func (bc *bodyChecker) checkLocalInitList(d *lang.VarDecl) {
	il := d.Init.(*lang.InitList)
	if len(d.Dims) == 0 {
		bc.c.diags.Errorf(il.LBracePos, "initializer list requires an array variable")
		return
	}
	for _, e := range il.Elems {
		if _, isList := e.(*lang.InitList); isList {
			bc.c.diags.Errorf(e.Pos(), "nested initializer lists are not supported for local arrays")
			continue
		}
		bc.expr(e, false)
	}
}

// returnStmt validates kernel action returns and net-function value
// returns.
func (bc *bodyChecker) returnStmt(st *lang.ReturnStmt) {
	if bc.fn.Kernel {
		if st.X == nil {
			return // implicit pass()
		}
		bc.kernelReturnExpr(st.X)
		return
	}
	// Net function.
	if bc.fn.Ret == VoidType {
		if st.X != nil {
			t := bc.expr(st.X, false)
			if t != VoidType {
				bc.c.diags.Errorf(st.X.Pos(), "void function %q cannot return a value", bc.fn.Name())
			}
		}
		return
	}
	if st.X == nil {
		bc.c.diags.Errorf(st.RetPos, "function %q must return a %s value", bc.fn.Name(), bc.fn.Ret)
		return
	}
	bc.convertibleType(bc.expr(st.X, false), bc.fn.Ret, st.X.Pos())
}

// kernelReturnExpr accepts actions, void net-function calls, and
// ternaries combining them (Fig. 4: `return hit ? reflect() : sketch(...)`).
func (bc *bodyChecker) kernelReturnExpr(e lang.Expr) {
	switch x := e.(type) {
	case *lang.CondExpr:
		bc.scalarExpr(x.Cond)
		bc.kernelReturnExpr(x.Then)
		bc.kernelReturnExpr(x.Else)
	case *lang.CallExpr:
		t := bc.expr(x, true)
		if t != TheActionType && t != VoidType {
			bc.c.diags.Errorf(e.Pos(), "kernel return value must be an action or a void call, got %s", typeName(t))
		}
	default:
		bc.c.diags.Errorf(e.Pos(), "kernel return value must be an action, a void call, or a ternary of those")
	}
}

// Expressions ---------------------------------------------------------

// scalarExpr checks e and requires an integer/bool scalar.
func (bc *bodyChecker) scalarExpr(e lang.Expr) *Basic {
	t := bc.expr(e, false)
	if b, ok := t.(*Basic); ok && b != VoidType {
		return b
	}
	bc.c.diags.Errorf(e.Pos(), "expected a scalar value, got %s", typeName(t))
	return U32Type
}

func typeName(t Type) string {
	if t == nil {
		return "<error>"
	}
	return t.String()
}

// expr type-checks e and records the result. actionOK permits action
// calls (only true directly under return).
func (bc *bodyChecker) expr(e lang.Expr, actionOK bool) Type {
	t := bc.exprInner(e, actionOK)
	bc.c.prog.Types[e] = t
	return t
}

func (bc *bodyChecker) exprInner(e lang.Expr, actionOK bool) Type {
	switch x := e.(type) {
	case *lang.IntLit:
		if x.Val > 0x7FFFFFFF {
			if x.Val > 0x7FFFFFFFFFFFFFFF {
				return U64Type
			}
			return I64Type
		}
		return I32Type
	case *lang.BoolLit:
		return BoolType
	case *lang.Ident:
		return bc.identExpr(x)
	case *lang.BinaryExpr:
		return bc.binaryExpr(x)
	case *lang.UnaryExpr:
		return bc.unaryExpr(x)
	case *lang.PostfixExpr:
		t := bc.lvalueExpr(x.X)
		return t
	case *lang.AssignExpr:
		return bc.assignExpr(x)
	case *lang.CondExpr:
		bc.scalarExpr(x.Cond)
		a := bc.expr(x.Then, false)
		b := bc.expr(x.Else, false)
		ab, aok := a.(*Basic)
		bb, bok := b.(*Basic)
		if !aok || !bok {
			bc.c.diags.Errorf(x.QPos, "ternary arms must be scalar values")
			return U32Type
		}
		return Common(ab, bb)
	case *lang.CallExpr:
		return bc.callExpr(x, actionOK)
	case *lang.IndexExpr:
		return bc.indexExpr(x)
	case *lang.MemberExpr:
		return bc.memberExpr(x)
	case *lang.CastExpr:
		t := resolveType(x.Type, bc.c.diags)
		b, ok := t.(*Basic)
		if !ok || b == VoidType {
			bc.c.diags.Errorf(x.LParenPos, "casts are only supported between fundamental integer types")
			return U32Type
		}
		src := bc.expr(x.X, false)
		if _, isB := src.(*Basic); !isB {
			bc.c.diags.Errorf(x.X.Pos(), "cannot cast %s to %s (pointer casts are rejected in device code)", typeName(src), b)
		}
		return b
	case *lang.InitList:
		bc.c.diags.Errorf(x.LBracePos, "initializer lists may only appear in declarations")
		return U32Type
	}
	bc.c.diags.Errorf(e.Pos(), "unsupported expression")
	return U32Type
}

func (bc *bodyChecker) identExpr(x *lang.Ident) Type {
	if x.NS != "" {
		bc.c.diags.Errorf(x.NamePos, "qualified name %s::%s used outside a call", x.NS, x.Name)
		return U32Type
	}
	obj := bc.resolve(x.Name)
	if obj == nil {
		if LookupBuiltin("", x.Name) != nil {
			bc.c.diags.Errorf(x.NamePos, "builtin %q must be called", x.Name)
		} else {
			bc.c.diags.Errorf(x.NamePos, "undeclared identifier %q", x.Name)
		}
		return U32Type
	}
	bc.c.prog.Refs[x] = obj
	switch o := obj.(type) {
	case *Param:
		switch o.Dir {
		case ByPtr:
			return &Ptr{Elem: o.Elem, Spec: o.Spec}
		default:
			return o.Elem
		}
	case *Local:
		if len(o.Dims) > 0 {
			t := Type(o.Elem)
			for i := len(o.Dims) - 1; i >= 0; i-- {
				t = &Array{Elem: t, Len: o.Dims[i]}
			}
			return t
		}
		return o.Elem
	case *Global:
		bc.useGlobal(o)
		return o.Type()
	case *Const:
		return o.Typ
	case *Function:
		bc.c.diags.Errorf(x.NamePos, "function %q used as a value", x.Name)
		return U32Type
	case *builtinObj:
		bc.c.diags.Errorf(x.NamePos, "%q may only be used with member selection (e.g. %s.id)", o.name, o.name)
		return U32Type
	}
	return U32Type
}

func (bc *bodyChecker) binaryExpr(x *lang.BinaryExpr) Type {
	a := bc.expr(x.X, false)
	b := bc.expr(x.Y, false)
	ab, aok := a.(*Basic)
	bb, bok := b.(*Basic)
	if !aok || !bok {
		if _, isPtr := a.(*Ptr); isPtr {
			bc.c.diags.Errorf(x.OpPos, "pointer arithmetic is rejected in device code")
		} else if _, isPtr := b.(*Ptr); isPtr {
			bc.c.diags.Errorf(x.OpPos, "pointer arithmetic is rejected in device code")
		} else {
			bc.c.diags.Errorf(x.OpPos, "operator %s requires scalar operands, got %s and %s", x.Op, typeName(a), typeName(b))
		}
		return U32Type
	}
	if ab == VoidType || bb == VoidType {
		bc.c.diags.Errorf(x.OpPos, "void value in expression")
		return U32Type
	}
	switch x.Op {
	case lang.AndAnd, lang.OrOr, lang.EqEq, lang.NotEq, lang.Lt, lang.Gt, lang.Le, lang.Ge:
		return BoolType
	case lang.Shl, lang.Shr:
		if ab.Kind == Bool {
			return U8Type
		}
		return ab
	default:
		return Common(ab, bb)
	}
}

func (bc *bodyChecker) unaryExpr(x *lang.UnaryExpr) Type {
	switch x.Op {
	case lang.Amp:
		return bc.addrOf(x)
	case lang.Star:
		t := bc.expr(x.X, false)
		if p, ok := t.(*Ptr); ok {
			return p.Elem
		}
		bc.c.diags.Errorf(x.OpPos, "cannot dereference non-pointer value of type %s", typeName(t))
		return U32Type
	case lang.Not:
		bc.scalarExpr(x.X)
		return BoolType
	case lang.Minus, lang.Tilde:
		b := bc.scalarExpr(x.X)
		if b.Kind == Bool {
			return U8Type
		}
		return b
	case lang.Inc, lang.Dec:
		return bc.lvalueExpr(x.X)
	}
	bc.c.diags.Errorf(x.OpPos, "unsupported unary operator %s", x.Op)
	return U32Type
}

// addrOf checks &expr; the operand must denote a global memory element
// (possibly the whole object for scalars), yielding an address usable
// only by atomic builtins and managed-memory host calls.
func (bc *bodyChecker) addrOf(x *lang.UnaryExpr) Type {
	g, elem := bc.globalElem(x.X)
	if g == nil {
		bc.c.diags.Errorf(x.OpPos, "address-of is only supported on global memory elements (for atomic operations)")
		return U32Type
	}
	return &addrType{elem: elem, g: g}
}

// globalElem matches expressions of the form G, G[i], G[i][j]... and
// returns the global and its scalar element type; it also type-checks
// the index expressions.
func (bc *bodyChecker) globalElem(e lang.Expr) (*Global, *Basic) {
	depth := 0
	base := e
	var indices []lang.Expr
	for {
		ix, ok := base.(*lang.IndexExpr)
		if !ok {
			break
		}
		indices = append(indices, ix.Index)
		base = ix.X
		depth++
	}
	id, ok := base.(*lang.Ident)
	if !ok || id.NS != "" {
		return nil, nil
	}
	obj := bc.resolve(id.Name)
	g, ok := obj.(*Global)
	if !ok {
		return nil, nil
	}
	bc.c.prog.Refs[id] = g
	bc.useGlobal(g)
	if depth != len(g.Dims) {
		bc.c.diags.Errorf(e.Pos(), "memory %q requires %d indices, got %d", g.Name(), len(g.Dims), depth)
	}
	for _, ix := range indices {
		bc.scalarExpr(ix)
	}
	elem, _ := g.Elem.(*Basic)
	if elem == nil {
		bc.c.diags.Errorf(e.Pos(), "atomic operations require scalar memory, %q has entry type %s", g.Name(), g.Elem)
		elem = U32Type
	}
	bc.c.prog.Types[e] = elem
	return g, elem
}

// lvalueExpr checks that e is assignable and returns its scalar type.
func (bc *bodyChecker) lvalueExpr(e lang.Expr) *Basic {
	switch x := e.(type) {
	case *lang.Ident:
		t := bc.expr(x, false)
		obj := bc.c.prog.Refs[x]
		switch o := obj.(type) {
		case *Const:
			bc.c.diags.Errorf(x.NamePos, "cannot assign to constant %q", x.Name)
		case *Local:
			if len(o.Dims) > 0 {
				bc.c.diags.Errorf(x.NamePos, "array %q is not assignable as a whole", x.Name)
			}
		case *Global:
			if len(o.Dims) > 0 {
				bc.c.diags.Errorf(x.NamePos, "cannot assign to array %q as a whole", x.Name)
			}
			if o.Lookup {
				bc.c.diags.Errorf(x.NamePos, "lookup memory %q is read-only in device code", x.Name)
			}
		case *Param:
			if o.Dir == ByPtr {
				bc.c.diags.Errorf(x.NamePos, "cannot assign to pointer parameter %q as a whole", x.Name)
			}
		}
		if b, ok := t.(*Basic); ok {
			return b
		}
		return U32Type
	case *lang.IndexExpr:
		t := bc.expr(x, false)
		// Reject writes into lookup memory.
		if g, _ := bc.baseGlobal(x); g != nil && g.Lookup {
			bc.c.diags.Errorf(e.Pos(), "lookup memory %q is read-only in device code", g.Name())
		}
		if b, ok := t.(*Basic); ok {
			return b
		}
		bc.c.diags.Errorf(e.Pos(), "partial array indexing cannot be assigned")
		return U32Type
	case *lang.UnaryExpr:
		if x.Op == lang.Star {
			t := bc.expr(x, false)
			if b, ok := t.(*Basic); ok {
				return b
			}
		}
	case *lang.MemberExpr:
		bc.c.diags.Errorf(e.Pos(), "builtin struct fields are read-only")
		bc.expr(x, false)
		return U16Type
	}
	bc.c.diags.Errorf(e.Pos(), "expression is not assignable")
	bc.expr(e, false)
	return U32Type
}

// baseGlobal returns the global at the base of an index chain, if any.
func (bc *bodyChecker) baseGlobal(e lang.Expr) (*Global, int) {
	depth := 0
	for {
		ix, ok := e.(*lang.IndexExpr)
		if !ok {
			break
		}
		e = ix.X
		depth++
	}
	if id, ok := e.(*lang.Ident); ok && id.NS == "" {
		if g, ok2 := bc.resolve(id.Name).(*Global); ok2 {
			return g, depth
		}
	}
	return nil, depth
}

func (bc *bodyChecker) assignExpr(x *lang.AssignExpr) Type {
	lt := bc.lvalueExpr(x.LHS)
	rt := bc.expr(x.RHS, false)
	bc.convertible(rt, lt, x.RHS.Pos())
	return lt
}

func (bc *bodyChecker) indexExpr(x *lang.IndexExpr) Type {
	t := bc.expr(x.X, false)
	bc.scalarExpr(x.Index)
	switch b := t.(type) {
	case *Array:
		return b.Elem
	case *Ptr:
		return b.Elem
	}
	bc.c.diags.Errorf(x.LBrack, "cannot index value of type %s", typeName(t))
	return U32Type
}

func (bc *bodyChecker) memberExpr(x *lang.MemberExpr) Type {
	id, ok := x.X.(*lang.Ident)
	if !ok {
		bc.c.diags.Errorf(x.Dot, "member selection is only supported on the builtin structs device and msg")
		return U32Type
	}
	obj := bc.resolve(id.Name)
	bo, ok := obj.(*builtinObj)
	if !ok {
		bc.c.diags.Errorf(x.Dot, "member selection is only supported on the builtin structs device and msg")
		return U32Type
	}
	bc.c.prog.Refs[id] = bo
	switch bo.name {
	case "device":
		switch x.Sel {
		case "id":
			return U16Type
		case "kind":
			return U8Type
		}
	case "msg":
		switch x.Sel {
		case "src", "dst", "from", "to":
			return U16Type
		}
	}
	bc.c.diags.Errorf(x.Dot, "unknown field %q of builtin struct %q", x.Sel, bo.name)
	return U32Type
}

// convertible checks integer-to-integer implicit conversion.
func (bc *bodyChecker) convertible(src Type, dst *Basic, pos lang.Pos) {
	b, ok := src.(*Basic)
	if !ok || b == VoidType || dst == VoidType {
		bc.c.diags.Errorf(pos, "cannot convert %s to %s", typeName(src), dst)
		return
	}
	if b.Bits() > dst.Bits() {
		bc.c.diags.Warnf(pos, "implicit narrowing conversion from %s to %s", b, dst)
	}
}

func (bc *bodyChecker) convertibleType(src, dst Type, pos lang.Pos) {
	if db, ok := dst.(*Basic); ok {
		bc.convertible(src, db, pos)
		return
	}
	if src != dst {
		bc.c.diags.Errorf(pos, "cannot convert %s to %s", typeName(src), typeName(dst))
	}
}

// callExpr resolves and checks calls to builtins and net functions.
func (bc *bodyChecker) callExpr(x *lang.CallExpr, actionOK bool) Type {
	name := x.Fun.Name
	// User function?
	if x.Fun.NS == "" {
		if f := bc.c.prog.FuncByName(name); f != nil {
			return bc.userCall(x, f)
		}
	}
	b := LookupBuiltin(x.Fun.NS, name)
	if b == nil {
		bc.c.diags.Errorf(x.Fun.NamePos, "unknown function %q", qualName(x.Fun))
		for _, a := range x.Args {
			bc.expr(a, false)
		}
		return U32Type
	}
	bc.c.prog.Builtins[x] = b
	if n := len(x.Args); n < b.MinArgs || n > b.MaxArgs {
		bc.c.diags.Errorf(x.Fun.NamePos, "%q expects %d-%d arguments, got %d", qualName(x.Fun), b.MinArgs, b.MaxArgs, n)
	}
	switch b.Cat {
	case CatAction:
		if !actionOK {
			bc.c.diags.Errorf(x.Fun.NamePos, "action %q may only appear in a return statement", name)
		}
		if !bc.fn.Kernel {
			bc.c.diags.Errorf(x.Fun.NamePos, "action %q may only be used inside kernels", name)
		}
		for _, a := range x.Args {
			bc.scalarExpr(a)
		}
		return TheActionType
	case CatAtomic:
		return bc.atomicCall(x, b)
	case CatLookup:
		return bc.lookupCall(x)
	case CatMath:
		return bc.mathCall(x, b)
	case CatHash, CatIntrinsic:
		for _, a := range x.Args {
			bc.scalarExpr(a)
		}
		w := hashWidth(b.Op)
		if len(x.TArgs) == 1 {
			if v, err := EvalConst(x.TArgs[0], bc.c.constEnv); err == nil && v > 0 && v <= 64 {
				w = int(v)
			}
		}
		return basicByBits(w)
	}
	return U32Type
}

func qualName(id *lang.Ident) string {
	if id.NS != "" {
		return id.NS + "::" + id.Name
	}
	return id.Name
}

func (bc *bodyChecker) userCall(x *lang.CallExpr, f *Function) Type {
	if f.Kernel {
		bc.c.diags.Errorf(x.Fun.NamePos, "kernel %q cannot be called; kernels are invoked by messages", f.Name())
		return VoidType
	}
	bc.c.prog.CalledFns[x] = f
	// Record the call edge once.
	found := false
	for _, cf := range bc.fn.Calls {
		if cf == f {
			found = true
			break
		}
	}
	if !found {
		bc.fn.Calls = append(bc.fn.Calls, f)
	}
	if len(x.Args) != len(f.Params) {
		bc.c.diags.Errorf(x.Fun.NamePos, "%q expects %d arguments, got %d", f.Name(), len(f.Params), len(x.Args))
	}
	for i, a := range x.Args {
		if i >= len(f.Params) {
			bc.expr(a, false)
			continue
		}
		p := f.Params[i]
		switch p.Dir {
		case ByRef:
			bc.lvalueExpr(a)
		case ByPtr:
			t := bc.expr(a, false)
			if _, ok := t.(*Ptr); !ok {
				bc.c.diags.Errorf(a.Pos(), "argument %d of %q must be a pointer", i+1, f.Name())
			}
		default:
			bc.convertible(bc.expr(a, false), p.Elem, a.Pos())
		}
	}
	return f.Ret
}

func (bc *bodyChecker) atomicCall(x *lang.CallExpr, b *Builtin) Type {
	if len(x.Args) == 0 {
		return U32Type
	}
	// First argument: &G[...] or a bare global element lvalue (the
	// paper uses both spellings).
	var elem *Basic
	if u, ok := x.Args[0].(*lang.UnaryExpr); ok && u.Op == lang.Amp {
		t := bc.expr(x.Args[0], false)
		if at, ok2 := t.(*addrType); ok2 {
			elem = at.elem
		}
	} else if g, e := bc.globalElem(x.Args[0]); g != nil {
		elem = e
	}
	if elem == nil {
		bc.c.diags.Errorf(x.Args[0].Pos(), "atomic operations require a global memory element as their first argument")
		elem = U32Type
	}
	rest := x.Args[1:]
	if b.Cond && len(rest) > 0 {
		bc.scalarExpr(rest[0])
		rest = rest[1:]
	}
	for _, a := range rest {
		bc.convertible(bc.expr(a, false), elem, a.Pos())
	}
	if b.Op == "write" {
		return VoidType
	}
	return elem
}

func (bc *bodyChecker) lookupCall(x *lang.CallExpr) Type {
	if len(x.Args) < 2 {
		return BoolType
	}
	id, ok := x.Args[0].(*lang.Ident)
	if !ok {
		bc.c.diags.Errorf(x.Args[0].Pos(), "the first argument of lookup() must name a _lookup_ array")
		return BoolType
	}
	obj := bc.resolve(id.Name)
	g, ok := obj.(*Global)
	if !ok || !g.Lookup {
		bc.c.diags.Errorf(id.NamePos, "%q is not a _lookup_ array", id.Name)
		return BoolType
	}
	bc.c.prog.Refs[id] = g
	bc.useGlobal(g)
	var keyType, valType *Basic
	switch e := g.Elem.(type) {
	case *KV:
		keyType, valType = e.K, e.V
	case *RV:
		keyType, valType = e.R, e.V
	case *Basic:
		keyType = e // scalar set membership
	}
	bc.convertible(bc.expr(x.Args[1], false), keyType, x.Args[1].Pos())
	if len(x.Args) == 3 {
		if valType == nil {
			bc.c.diags.Errorf(x.Args[2].Pos(), "lookup on a scalar set %q takes no output argument", g.Name())
		} else {
			got := bc.lvalueExpr(x.Args[2])
			if got.Bits() < valType.Bits() {
				bc.c.diags.Warnf(x.Args[2].Pos(), "lookup output %s narrower than value type %s", got, valType)
			}
		}
	}
	return BoolType
}

func (bc *bodyChecker) mathCall(x *lang.CallExpr, b *Builtin) Type {
	var args []*Basic
	for _, a := range x.Args {
		args = append(args, bc.scalarExpr(a))
	}
	switch b.Op {
	case "sadd", "ssub", "min", "max":
		if len(args) == 2 {
			return Common(args[0], args[1])
		}
		return U32Type
	case "bit_chk":
		return BoolType
	case "clz", "ctz", "bswap":
		if len(args) == 1 {
			return args[0]
		}
		return U32Type
	case "rand":
		if len(x.TArgs) == 1 {
			if id, ok := x.TArgs[0].(*lang.Ident); ok {
				if canon, ok2 := map[string]string{
					"u8": "u8", "u16": "u16", "u32": "u32", "u64": "u64",
					"uint8_t": "u8", "uint16_t": "u16", "uint32_t": "u32", "uint64_t": "u64",
				}[id.Name]; ok2 {
					return BasicByName(canon)
				}
			}
			bc.c.diags.Errorf(x.TArgs[0].Pos(), "rand<T> requires an unsigned integer type argument")
		}
		return U32Type
	}
	return U32Type
}
