package sema

import (
	"strings"
	"testing"

	"netcl/internal/lang"
)

func check(t *testing.T, src string) (*Program, *lang.Diagnostics) {
	t.Helper()
	var d lang.Diagnostics
	f := lang.ParseFile("test.ncl", src, nil, &d)
	if d.HasErrors() {
		t.Fatalf("parse errors:\n%s", d.String())
	}
	p := Check(f, &d)
	return p, &d
}

func checkOK(t *testing.T, src string) *Program {
	t.Helper()
	p, d := check(t, src)
	if d.HasErrors() {
		t.Fatalf("sema errors:\n%s", d.String())
	}
	return p
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, d := check(t, src)
	if !d.HasErrors() {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(d.String(), wantSub) {
		t.Fatalf("expected error containing %q, got:\n%s", wantSub, d.String())
	}
}

const fig4 = `
#define CMS_HASHES 3
#define THRESH 512
#define GET_REQ 1

_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
`

func TestCheckFig4(t *testing.T) {
	p := checkOK(t, fig4)
	if len(p.Globals) != 2 {
		t.Fatalf("globals: got %d, want 2", len(p.Globals))
	}
	cms := p.GlobalByName("cms")
	if cms == nil || !cms.Managed || len(cms.Dims) != 2 || cms.Dims[0] != 3 || cms.Dims[1] != 65536 {
		t.Fatalf("cms: %+v", cms)
	}
	cache := p.GlobalByName("cache")
	if cache == nil || !cache.Lookup || cache.Dims[0] != 4 {
		t.Fatalf("cache: %+v", cache)
	}
	kv, ok := cache.Elem.(*KV)
	if !ok || kv.K != U32Type || kv.V != U32Type {
		t.Fatalf("cache elem: %v", cache.Elem)
	}
	q := p.FuncByName("query")
	if q == nil || !q.Kernel || q.Comp != 1 || !q.At.Contains(1) {
		t.Fatalf("query: %+v", q)
	}
	spec := q.Spec()
	wantCounts := []int{1, 1, 1, 1, 1}
	for i, c := range wantCounts {
		if spec.Counts[i] != c {
			t.Errorf("spec count %d: got %d, want %d", i, spec.Counts[i], c)
		}
	}
	if spec.Types[0] != I8Type || spec.Types[1] != U32Type {
		t.Errorf("spec types: %v", spec.Types)
	}
	if spec.Dirs[2] != ByRef || spec.Dirs[0] != ByVal {
		t.Errorf("spec dirs: %v", spec.Dirs)
	}
	if q.Spec().Bytes() != 1+4+4+1+4 {
		t.Errorf("spec bytes: got %d", q.Spec().Bytes())
	}
}

func TestCheckSpecExamples(t *testing.T) {
	// The four example kernels of §V-A.
	p := checkOK(t, `
_kernel(1) void a(int x[3]) {}
_kernel(2) void b(int x[4]) {}
_kernel(3) void c(int _spec(4) *x) {}
_kernel(4) void d(int x, int y[2], int *z) {}
`)
	a := p.FuncByName("a").Spec()
	b := p.FuncByName("b").Spec()
	cc := p.FuncByName("c").Spec()
	dd := p.FuncByName("d").Spec()
	if a.Equal(b) {
		t.Error("a [3][int] should differ from b [4][int] (no decay)")
	}
	if !b.Equal(cc) {
		t.Error("b and c should have matching specifications")
	}
	if got := dd.String(); got != "[1,2,1][i32,i32,i32]" {
		t.Errorf("d spec: %s", got)
	}
}

func TestCheckSpecMismatchSameComputation(t *testing.T) {
	checkErr(t, `
_kernel(1) _at(1) void a(int x[3]) {}
_kernel(1) _at(2) void b(int x[4]) {}
`, "specification")
}

func TestCheckPlacementEq1(t *testing.T) {
	// Paper §V-C examples: kernel b invalid because a exists for the
	// same computation without disjoint explicit locations.
	checkErr(t, `
_net_ _at(1,2) int m[42];
_kernel(1) _at(1,2) void a(int x) { m[0] = 1; }
_kernel(1) void b(int x) {}
`, "placement is ambiguous")

	checkErr(t, `
_kernel(1) _at(1,2) void a(int x) {}
_kernel(1) _at(2,3) void b(int x) {}
`, "overlapping locations")

	checkOK(t, `
_kernel(1) _at(1) void a(int x) {}
_kernel(1) _at(2) void b(int x) {}
`)
}

func TestCheckReferenceEq2(t *testing.T) {
	// m is placed at 1,2 only; a location-less kernel is everywhere,
	// so the reference is invalid (paper example).
	checkErr(t, `
_net_ _at(1,2) int m[42];
_kernel(2) void c(int x) { m[0] = 42; }
`, "placed only at")

	checkOK(t, `
_net_ _at(1,2) int m[42];
_kernel(1) _at(1,2) void a(int x) { m[0] = 1; }
`)

	checkOK(t, `
_net_ int m[42];
_kernel(1) _at(7) void a(int x) { m[0] = 1; }
`)

	checkErr(t, `
_at(3) _net_ void helper(int x) {}
_kernel(1) _at(1) void a(int x) { helper(x); }
`, "placed only at")
}

func TestCheckRecursionRejected(t *testing.T) {
	checkErr(t, `
_net_ void f(int x) { g(x); }
_net_ void g(int x) { f(x); }
_kernel(1) void k(int x) { f(x); }
`, "recursion")
}

func TestCheckKernelMustReturnVoid(t *testing.T) {
	checkErr(t, `_kernel(1) int k(int x) { return 1; }`, "must return void")
}

func TestCheckActionOnlyInReturn(t *testing.T) {
	checkErr(t, `_kernel(1) void k(int x) { ncl::drop(); }`, "return statement")
	checkOK(t, `_kernel(1) void k(int x) { if (x) return ncl::drop(); return ncl::pass(); }`)
	checkOK(t, `_kernel(1) void k(int x) { return ncl::send_to_host(2); }`)
}

func TestCheckActionInNetFunctionRejected(t *testing.T) {
	checkErr(t, `_net_ void f(int x) { return ncl::drop(); }`, "inside kernels")
}

func TestCheckLookupTypes(t *testing.T) {
	// Scalar set membership.
	checkOK(t, `
_net_ _lookup_ unsigned a[] = {1,2,3};
_kernel(1) void k(unsigned x, char &r) { r = ncl::lookup(a, x); }
`)
	// kv map with output.
	checkOK(t, `
_net_ _lookup_ ncl::kv<int,int> a[] = { {1,2}, {2,3} };
_kernel(1) void k(int x, int &v, char &r) { r = ncl::lookup(a, x, v); }
`)
	// rv range map.
	checkOK(t, `
_net_ _lookup_ ncl::rv<int,int> b[] = { {{1,10},1}, {{11,20},2} };
_kernel(1) void k(int x, int &v, char &r) { r = ncl::lookup(b, x, v); }
`)
	// Set lookup takes no output argument.
	checkErr(t, `
_net_ _lookup_ unsigned a[] = {1,2,3};
_kernel(1) void k(unsigned x, unsigned &v) { char r = ncl::lookup(a, x, v); }
`, "no output argument")
	// Non-lookup array.
	checkErr(t, `
_net_ unsigned a[4];
_kernel(1) void k(unsigned x) { char r = ncl::lookup(a, x); }
`, "not a _lookup_ array")
}

func TestCheckLookupReadOnlyInDeviceCode(t *testing.T) {
	checkErr(t, `
_net_ _lookup_ ncl::kv<int,int> a[] = { {1,2} };
_kernel(1) void k(int x) { a[0] = 1; }
`, "read-only")
}

func TestCheckPointerArithmeticRejected(t *testing.T) {
	checkErr(t, `_kernel(1) void k(int _spec(4) *v) { int x = v[0]; v = v; }`, "pointer parameter")
}

func TestCheckAtomicArgForms(t *testing.T) {
	// Both &G[i] and bare G[i] forms (the paper uses both).
	checkOK(t, `
_net_ unsigned Agg[8][16];
_net_ unsigned Count[16];
_kernel(1) void k(unsigned i, unsigned x, unsigned &o) {
  o = ncl::atomic_cond_add_new(Agg[0][i], x != 0, x);
  o = ncl::atomic_cond_dec(&Count[i], x != 0);
}
`)
	checkErr(t, `
_kernel(1) void k(unsigned x) { unsigned o = ncl::atomic_add(&x, 1); }
`, "global memory element")
}

func TestCheckDeviceAndMsgBuiltins(t *testing.T) {
	p := checkOK(t, `
_kernel(1) void k(unsigned &x) {
  if (device.id == 2) { x = msg.src; }
}
`)
	if p == nil {
		t.Fatal("nil program")
	}
	checkErr(t, `_kernel(1) void k(unsigned x) { unsigned y = device.port; }`, "unknown field")
}

func TestCheckAutoDeduction(t *testing.T) {
	p := checkOK(t, `
_net_ uint16_t Bitmap[16];
_kernel(1) void k(uint16_t mask, uint16_t i) {
  auto bitmap = ncl::atomic_or(&Bitmap[i], mask);
  auto seen = bitmap & mask;
}
`)
	k := p.FuncByName("k")
	if k == nil {
		t.Fatal("kernel not found")
	}
	var locals []*Local
	for _, l := range p.LocalOf {
		locals = append(locals, l)
	}
	if len(locals) != 2 {
		t.Fatalf("locals: got %d, want 2", len(locals))
	}
	for _, l := range locals {
		if l.Elem != U16Type {
			t.Errorf("local %s: deduced %s, want u16", l.Name(), l.Elem)
		}
	}
}

func TestCheckConstDecl(t *testing.T) {
	p := checkOK(t, `
const unsigned THRESH = 256 * 2;
_net_ unsigned m[THRESH];
_kernel(1) void k(unsigned x, char &hot) { hot = x > THRESH; }
`)
	if p.Consts["THRESH"].Val != 512 {
		t.Errorf("THRESH: got %d", p.Consts["THRESH"].Val)
	}
	if p.GlobalByName("m").Dims[0] != 512 {
		t.Errorf("m dim: got %d", p.GlobalByName("m").Dims[0])
	}
}

func TestCheckComputationAndLocations(t *testing.T) {
	p := checkOK(t, `
_at(10) _net_ uint32_t Instance;
_at(20) _net_ uint8_t VoteHistory[65536];
_at(10) _kernel(1) void leader(uint8_t t) {}
_at(20) _kernel(1) void learner(uint8_t t) {}
_at(30) _kernel(1) void acceptor(uint8_t t) {}
`)
	locs := p.Locations()
	if len(locs) != 3 || locs[0] != 10 || locs[1] != 20 || locs[2] != 30 {
		t.Errorf("locations: %v", locs)
	}
	if k := p.KernelAt(1, 20); k == nil || k.Name() != "learner" {
		t.Errorf("KernelAt(1,20): %v", k)
	}
	if k := p.KernelAt(1, 99); k != nil {
		t.Errorf("KernelAt(1,99) should be nil, got %s", k.Name())
	}
}

func TestCheckUndeclared(t *testing.T) {
	checkErr(t, `_kernel(1) void k(int x) { y = x; }`, "undeclared")
}

func TestCheckGlobalRequiresSpecifier(t *testing.T) {
	checkErr(t, `int g;`, "_net_ or _managed_")
}

func TestCheckKvRequiresLookup(t *testing.T) {
	checkErr(t, `_net_ ncl::kv<int,int> a[4];`, "_lookup_")
}

func TestCheckBreakRejected(t *testing.T) {
	checkErr(t, `_kernel(1) void k(int x) { for (int i = 0; i < 4; ++i) { break; } }`, "break")
}

func TestEvalConstBasics(t *testing.T) {
	var d lang.Diagnostics
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"1 << 10", 1024},
		{"~0 & 0xFF", 255},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"1 < 2 ? 5 : 6", 5},
		{"!0", 1},
		{"-(4)", -4},
		{"1 == 1 && 2 != 3", 1},
	}
	for _, c := range cases {
		p := lang.NewParser("t", c.src, nil, &d)
		e := p.Expr()
		got, err := EvalConst(e, nil)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q: got %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvalConstErrors(t *testing.T) {
	var d lang.Diagnostics
	for _, src := range []string{"x + 1", "1 / 0", "1 % 0", "1 << 99"} {
		p := lang.NewParser("t", src, nil, &d)
		e := p.Expr()
		if _, err := EvalConst(e, nil); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestCheckMiscErrors(t *testing.T) {
	checkErr(t, `_net_ int x; _net_ int x;`, "redeclaration")
	checkErr(t, `_net_ void f(int a) {} _net_ void f(int a) {}`, "redeclaration")
	checkErr(t, `_kernel(1) _net_ void k(int x) {}`, "cannot be both")
	checkErr(t, `void f(int x) {}`, "_kernel(c) or _net_")
	checkErr(t, `_kernel(1) void k(int m[2][2]) {}`, "multi-dimensional")
	checkErr(t, `_kernel(300) void k(int x) {}`, "out of range")
	checkErr(t, `_at(99999) _kernel(1) void k(int x) {}`, "out of range")
	checkErr(t, `_net_ int a[0];`, "must be positive")
	checkErr(t, `_managed_ void v;`, "not a valid memory element type")
	checkErr(t, `_kernel(1) void k(void x) {}`, "fundamental scalar")
	checkErr(t, `_kernel(1) void k(int &x[3]) {}`, "cannot have array dimensions")
	checkErr(t, `_kernel(1) void k(int x) { int y[2]; y = x; }`, "not assignable as a whole")
	checkErr(t, `_kernel(1) void k(int x) { device = 1; }`, "")
	checkErr(t, `const int NO_INIT;`, "requires an initializer")
	checkErr(t, `_net_ _lookup_ int s;`, "arrays only")
	checkErr(t, `_kernel(1) void k(int x) { unsigned y = ncl::crc16(); }`, "arguments")
}

func TestCheckConditionalAtomicsTyping(t *testing.T) {
	p := checkOK(t, `
_net_ uint8_t C[4];
_kernel(1) void k(unsigned i, uint8_t &old, uint8_t &nw) {
  old = ncl::atomic_cas(&C[i & 3], 0, 1);
  nw  = ncl::atomic_cond_sadd_new(&C[i & 3], i > 2, 5);
}
`)
	if p == nil {
		t.Fatal("nil program")
	}
}
