package bmv2

import (
	"testing"

	"netcl/internal/p4"
)

// prog builds a small exercising program: parse one header, apply
// tables of each match kind, run a register action.
func prog() *p4.Program {
	p4p := &p4.Program{Name: "t", Target: p4.TargetTNA}
	p4p.Headers = []*p4.HeaderDecl{{Name: "h", Fields: []*p4.Field{
		{Name: "tag", Bits: 8},
		{Name: "key", Bits: 32},
		{Name: "out", Bits: 32},
	}}}
	p4p.Metadata = []*p4.Field{
		{Name: "nexthop", Bits: 16}, {Name: "mcast_grp", Bits: 16},
		{Name: "drop_flag", Bits: 1}, {Name: "egress_port", Bits: 16},
	}
	p4p.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{
		{Name: "start", Extracts: []string{"h"}, Next: "accept"},
	}}
	ctl := &p4.Control{Name: "In"}
	ctl.Locals = []*p4.Field{{Name: "tmp", Bits: 32}}
	ctl.Registers = []*p4.Register{{Name: "r", Bits: 32, Size: 8, Init: []int64{5, 6, 7}}}
	ctl.RegActs = []*p4.RegisterAction{{
		Name: "bump", Register: "r",
		Body: []p4.Stmt{
			&p4.Assign{LHS: p4.FR("o"), RHS: p4.FR("m")},
			&p4.Assign{LHS: p4.FR("m"), RHS: &p4.Bin{Op: "+", X: p4.FR("m"), Y: &p4.IntLit{Val: 1}}},
		},
	}}
	ctl.Actions = []*p4.ActionDecl{
		{Name: "set_out", Params: []*p4.Field{{Name: "v", Bits: 32}},
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "out"), RHS: p4.FR("v")}}},
		{Name: "dflt",
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "out"), RHS: &p4.IntLit{Val: 0xDEAD, Bits: 32}}}},
	}
	ctl.Tables = []*p4.Table{
		{
			Name:    "exact_t",
			Keys:    []*p4.TableKey{{Expr: p4.FR("hdr", "h", "key"), Match: p4.MatchExact}},
			Actions: []string{"set_out", "dflt"},
			Default: &p4.ActionCall{Name: "dflt"},
			Entries: []*p4.Entry{
				{Keys: []p4.KeyValue{{Value: 10, PrefixLen: -1}}, Action: &p4.ActionCall{Name: "set_out", Args: []uint64{100}}},
			},
		},
		{
			Name:    "tern_t",
			Keys:    []*p4.TableKey{{Expr: p4.FR("hdr", "h", "key"), Match: p4.MatchTernary}},
			Actions: []string{"set_out"},
			Entries: []*p4.Entry{
				{Keys: []p4.KeyValue{{Value: 0x10, Mask: 0xF0}}, Action: &p4.ActionCall{Name: "set_out", Args: []uint64{1}}, Priority: 1},
				{Keys: []p4.KeyValue{{Value: 0x12, Mask: 0xFF}}, Action: &p4.ActionCall{Name: "set_out", Args: []uint64{2}}, Priority: 0},
			},
		},
		{
			Name:    "lpm_t",
			Keys:    []*p4.TableKey{{Expr: p4.FR("hdr", "h", "key"), Match: p4.MatchLPM}},
			Actions: []string{"set_out"},
			Entries: []*p4.Entry{
				{Keys: []p4.KeyValue{{Value: 0x80000000, PrefixLen: 1}}, Action: &p4.ActionCall{Name: "set_out", Args: []uint64{1}}},
				{Keys: []p4.KeyValue{{Value: 0xC0000000, PrefixLen: 2}}, Action: &p4.ActionCall{Name: "set_out", Args: []uint64{2}}},
			},
		},
	}
	// tag selects which table runs.
	ctl.Apply = []p4.Stmt{
		&p4.If{Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "h", "tag"), Y: &p4.IntLit{Val: 1, Bits: 8}},
			Then: []p4.Stmt{&p4.ApplyTable{Table: "exact_t"}}},
		&p4.If{Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "h", "tag"), Y: &p4.IntLit{Val: 2, Bits: 8}},
			Then: []p4.Stmt{&p4.ApplyTable{Table: "tern_t"}}},
		&p4.If{Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "h", "tag"), Y: &p4.IntLit{Val: 3, Bits: 8}},
			Then: []p4.Stmt{&p4.ApplyTable{Table: "lpm_t"}}},
		&p4.If{Cond: &p4.Bin{Op: "==", X: p4.FR("hdr", "h", "tag"), Y: &p4.IntLit{Val: 4, Bits: 8}},
			Then: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "out"),
				RHS: &p4.CallExpr{Recv: "bump", Method: "execute", Args: []p4.Expr{&p4.Cast{Bits: 32, X: p4.FR("hdr", "h", "key")}}}}}},
		&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: &p4.IntLit{Val: 9, Bits: 16}},
	}
	p4p.Ingress = ctl
	return p4p
}

// mkPkt builds a packet for header h: tag(1) key(4) out(4).
func mkPkt(tag uint8, key uint32) []byte {
	return []byte{
		tag,
		byte(key >> 24), byte(key >> 16), byte(key >> 8), byte(key),
		0, 0, 0, 0,
		0xAA, 0xBB, // payload
	}
}

// outOf extracts the out field from a processed packet.
func outOf(t *testing.T, data []byte) uint32 {
	t.Helper()
	if len(data) < 9 {
		t.Fatalf("short output: %d bytes", len(data))
	}
	return uint32(data[5])<<24 | uint32(data[6])<<16 | uint32(data[7])<<8 | uint32(data[8])
}

func TestExactMatchAndDefault(t *testing.T) {
	sw := New(prog())
	res, err := sw.Process(mkPkt(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := outOf(t, res.Data); got != 100 {
		t.Errorf("exact hit: out=%d", got)
	}
	res, err = sw.Process(mkPkt(1, 11), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := outOf(t, res.Data); got != 0xDEAD {
		t.Errorf("default action: out=%#x", got)
	}
	if res.Port != 9 {
		t.Errorf("egress port %d", res.Port)
	}
}

func TestTernaryPriority(t *testing.T) {
	sw := New(prog())
	// 0x12 matches both entries; lower priority value wins.
	res, _ := sw.Process(mkPkt(2, 0x12), 1)
	if got := outOf(t, res.Data); got != 2 {
		t.Errorf("ternary priority: out=%d, want 2", got)
	}
	// 0x15 matches only the masked entry.
	res, _ = sw.Process(mkPkt(2, 0x15), 1)
	if got := outOf(t, res.Data); got != 1 {
		t.Errorf("ternary mask: out=%d, want 1", got)
	}
}

func TestLPMLongestPrefixWins(t *testing.T) {
	sw := New(prog())
	res, _ := sw.Process(mkPkt(3, 0xC1000000), 1)
	if got := outOf(t, res.Data); got != 2 {
		t.Errorf("lpm /2: out=%d", got)
	}
	res, _ = sw.Process(mkPkt(3, 0x81000000), 1)
	if got := outOf(t, res.Data); got != 1 {
		t.Errorf("lpm /1: out=%d", got)
	}
}

func TestRegisterActionAndInit(t *testing.T) {
	sw := New(prog())
	// Initialized cell 2 = 7; bump returns the old value.
	res, _ := sw.Process(mkPkt(4, 2), 1)
	if got := outOf(t, res.Data); got != 7 {
		t.Errorf("register init/old value: out=%d", got)
	}
	v, err := sw.RegisterRead("r", 2)
	if err != nil || v != 8 {
		t.Errorf("post-bump memory: %d %v", v, err)
	}
	// Out-of-range index: cell ignored, result zero.
	res, _ = sw.Process(mkPkt(4, 100), 1)
	if got := outOf(t, res.Data); got != 0 {
		t.Errorf("oob register read: out=%d", got)
	}
}

func TestPayloadPreservedAndCounters(t *testing.T) {
	sw := New(prog())
	res, _ := sw.Process(mkPkt(1, 10), 1)
	n := len(res.Data)
	if res.Data[n-2] != 0xAA || res.Data[n-1] != 0xBB {
		t.Error("payload not preserved")
	}
	if sw.PacketsIn != 1 || sw.PacketsOut != 1 {
		t.Errorf("counters: in=%d out=%d", sw.PacketsIn, sw.PacketsOut)
	}
}

func TestShortPacketRejected(t *testing.T) {
	sw := New(prog())
	if _, err := sw.Process([]byte{1, 2}, 1); err == nil {
		t.Error("short packet must error")
	}
}

func TestRuntimeEntriesAndDefaults(t *testing.T) {
	sw := New(prog())
	if err := sw.InsertEntry("exact_t", &p4.Entry{
		Keys:   []p4.KeyValue{{Value: 42}},
		Action: &p4.ActionCall{Name: "set_out", Args: []uint64{4242}},
	}); err != nil {
		t.Fatal(err)
	}
	res, _ := sw.Process(mkPkt(1, 42), 1)
	if got := outOf(t, res.Data); got != 4242 {
		t.Errorf("runtime entry: out=%d", got)
	}
	if n := sw.DeleteEntry("exact_t", 42); n != 1 {
		t.Errorf("delete removed %d", n)
	}
	if err := sw.SetDefaultAction("exact_t", "set_out", []uint64{7}); err != nil {
		t.Fatal(err)
	}
	res, _ = sw.Process(mkPkt(1, 42), 1)
	if got := outOf(t, res.Data); got != 7 {
		t.Errorf("new default: out=%d", got)
	}
	if err := sw.InsertEntry("nosuch", &p4.Entry{}); err == nil {
		t.Error("unknown table must error")
	}
	if err := sw.SetDefaultAction("nosuch", "a", nil); err == nil {
		t.Error("unknown table default must error")
	}
}

func TestHashKnownAnswers(t *testing.T) {
	// CRC-16/ARC of "123456789" is 0xBB3D; CRC-32 is 0xCBF43926.
	data := []byte("123456789")
	if got := crc16(data); got != 0xBB3D {
		t.Errorf("crc16 = %#x", got)
	}
	if got := crc32IEEE(data); got != 0xCBF43926 {
		t.Errorf("crc32 = %#x", got)
	}
	if got := crc64ECMA(data); got != 0x6C40DF5F0B497347 {
		t.Errorf("crc64 = %#x", got)
	}
	if xor16([]byte{0x12, 0x34, 0x56, 0x78}) != 0x124C^0x0000^(0x1234^0x5678) && false {
		t.Error("unreachable")
	}
	if got := xor16([]byte{0x12, 0x34, 0x56, 0x78}); got != 0x1234^0x5678 {
		t.Errorf("xor16 = %#x", got)
	}
	if got := identityHash([]byte{1, 2}); got != 0x0102 {
		t.Errorf("identity = %#x", got)
	}
	// csum16 of zeros is all-ones complemented.
	if got := csum16([]byte{0, 0}); got != 0xFFFF {
		t.Errorf("csum16 = %#x", got)
	}
}

func TestValBitsSemantics(t *testing.T) {
	v := val{v: 0x1FF, bits: 8}
	if v.wrapped() != 0xFF {
		t.Error("wrap")
	}
	s := val{v: 0x80, bits: 8}
	if s.signed() != -128 {
		t.Errorf("signed: %d", s.signed())
	}
	u := val{v: 0x7F, bits: 8}
	if u.signed() != 127 {
		t.Error("positive signed")
	}
}
