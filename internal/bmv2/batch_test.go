package bmv2

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netcl/internal/p4"
)

func kv(v uint64) p4.KeyValue { return p4.KeyValue{Value: v, PrefixLen: -1} }

// matcherProgReg is matcherProg plus a control-plane register, so batch
// tests can mix table ops with register writes.
func matcherProgReg(entries map[string][]*p4.Entry) *p4.Program {
	pp := matcherProg(entries)
	pp.Ingress.Registers = append(pp.Ingress.Registers,
		&p4.Register{Name: "r0", Bits: 32, Size: 8})
	return pp
}

// TestBatchRollback: a batch that fails mid-way must leave every kind
// of staged state untouched — entries, registers, and default actions —
// and name the failing op.
func TestBatchRollback(t *testing.T) {
	ents := map[string][]*p4.Entry{"ex2": {
		entry("set_out", 100, 0, kv(1), kv(2)),
	}}
	sw := New(matcherProgReg(ents))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}

	b := NewWriteBatch().
		Insert("ex2", entry("set_out", 300, 0, kv(7), kv(8))).
		RegisterWrite("r0", 2, 42).
		SetDefault("ex2", "set_out", []uint64{555}).
		Delete("ex2", 1, 2).
		Insert("no_such_table", entry("set_out", 1, 0, kv(9), kv(9)))
	_, err := sw.Write(b)
	if err == nil {
		t.Fatal("batch with unknown table must fail")
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 4 {
		t.Fatalf("want BatchError index 4, got %v", err)
	}

	// Entry store rolled back: the staged insert is gone, the staged
	// delete undone.
	if got := sw.Entries("ex2"); len(got) != 1 || got[0].Action.Args[0] != 100 {
		t.Fatalf("entries after rollback: %+v", got)
	}
	// Register write never applied.
	if v, err := sw.RegisterRead("r0", 2); err != nil || v != 0 {
		t.Fatalf("register leaked through rollback: %d %v", v, err)
	}
	// Published snapshot unchanged: old entry hits, staged insert and
	// default are invisible.
	res, err := sw.Process(matcherPkt(1, 1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := matcherOut(t, res); got != 100 {
		t.Errorf("old entry lost: out=%d", got)
	}
	res, err = sw.Process(matcherPkt(1, 7, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := matcherOut(t, res); got != 0xFFFF_FFFF {
		t.Errorf("rolled-back insert visible: out=%d", got)
	}
	res, err = sw.Process(matcherPkt(1, 50, 50), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := matcherOut(t, res); got != 0xFFFF_FFFF {
		t.Errorf("rolled-back default visible: out=%d", got)
	}
}

// TestBatchModify: Modify replaces the full-tuple binding in place and
// errors (aborting the batch) when no entry matches.
func TestBatchModify(t *testing.T) {
	ents := map[string][]*p4.Entry{"ex2": {
		entry("set_out", 100, 0, kv(1), kv(2)),
		entry("set_out", 200, 0, kv(1), kv(3)),
	}}
	sw := New(matcherProgReg(ents))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}

	res, err := sw.Write(NewWriteBatch().
		Modify("ex2", entry("set_out", 111, 0, kv(1), kv(2))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0] != 1 {
		t.Fatalf("modify removed counts: %v", res.Removed)
	}
	out, err := sw.Process(matcherPkt(1, 1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := matcherOut(t, out); got != 111 {
		t.Errorf("modify not visible: out=%d", got)
	}
	if got := sw.Entries("ex2"); len(got) != 2 {
		t.Fatalf("modify changed entry count: %+v", got)
	}

	// Modify of an absent tuple is an error, and because it rides in a
	// batch the preceding insert is rolled back with it.
	_, err = sw.Write(NewWriteBatch().
		Insert("ex2", entry("set_out", 300, 0, kv(7), kv(8))).
		Modify("ex2", entry("set_out", 1, 0, kv(40), kv(40))))
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("want BatchError index 1, got %v", err)
	}
	if got := sw.Entries("ex2"); len(got) != 2 {
		t.Fatalf("failed modify leaked insert: %+v", got)
	}
}

// TestBatchRegisterCombining: duplicate register cells in one batch
// collapse to a single op (last value wins), and the surviving value is
// what commits.
func TestBatchRegisterCombining(t *testing.T) {
	sw := New(matcherProgReg(nil))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}
	b := NewWriteBatch()
	for v := uint64(1); v <= 100; v++ {
		b.RegisterWrite("r0", 3, v)
	}
	b.RegisterWrite("r0", 4, 7)
	if b.Len() != 2 {
		t.Fatalf("write-combining failed: %d ops", b.Len())
	}
	if _, err := sw.Write(b); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.RegisterRead("r0", 3); v != 100 {
		t.Errorf("combined cell: %d want 100", v)
	}
	if v, _ := sw.RegisterRead("r0", 4); v != 7 {
		t.Errorf("other cell: %d want 7", v)
	}
}

// pairProg applies two single-key exact tables to every packet; the
// atomicity test keeps their entries in lockstep and readers check the
// two outputs always agree.
func pairProg() *p4.Program {
	pp := &p4.Program{Name: "pair", Target: p4.TargetTNA}
	pp.Headers = []*p4.HeaderDecl{{Name: "h", Fields: []*p4.Field{
		{Name: "k", Bits: 32},
		{Name: "o1", Bits: 32},
		{Name: "o2", Bits: 32},
	}}}
	pp.Metadata = []*p4.Field{
		{Name: "egress_port", Bits: 16}, {Name: "mcast_grp", Bits: 16}, {Name: "drop_flag", Bits: 1},
	}
	pp.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{
		{Name: "start", Extracts: []string{"h"}, Next: "accept"},
	}}
	ctl := &p4.Control{Name: "In"}
	ctl.Actions = []*p4.ActionDecl{
		{Name: "set_o1", Params: []*p4.Field{{Name: "v", Bits: 32}},
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "o1"), RHS: p4.FR("v")}}},
		{Name: "set_o2", Params: []*p4.Field{{Name: "v", Bits: 32}},
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "o2"), RHS: p4.FR("v")}}},
		{Name: "zero_o1",
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "o1"), RHS: &p4.IntLit{Val: 0, Bits: 32}}}},
		{Name: "zero_o2",
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "o2"), RHS: &p4.IntLit{Val: 0, Bits: 32}}}},
	}
	k := p4.FR("hdr", "h", "k")
	ctl.Tables = []*p4.Table{
		{Name: "ta", Keys: []*p4.TableKey{{Expr: k, Match: p4.MatchExact}},
			Actions: []string{"set_o1", "zero_o1"}, Default: &p4.ActionCall{Name: "zero_o1"}},
		{Name: "tb", Keys: []*p4.TableKey{{Expr: k, Match: p4.MatchExact}},
			Actions: []string{"set_o2", "zero_o2"}, Default: &p4.ActionCall{Name: "zero_o2"}},
	}
	ctl.Apply = []p4.Stmt{
		&p4.ApplyTable{Table: "ta"},
		&p4.ApplyTable{Table: "tb"},
		&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: &p4.IntLit{Val: 1, Bits: 16}},
	}
	pp.Ingress = ctl
	return pp
}

// TestBatchAtomicity: while a writer commits batches that update two
// tables in lockstep, concurrent readers must always observe both
// updates or neither — never a mix of generations. Run under -race
// this also exercises the publication path for data races.
func TestBatchAtomicity(t *testing.T) {
	sw := New(pairProg())
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}
	seed := NewWriteBatch().
		Insert("ta", entry("set_o1", 0, 0, kv(1))).
		Insert("tb", entry("set_o2", 0, 0, kv(1)))
	if _, err := sw.Write(seed); err != nil {
		t.Fatal(err)
	}

	const gens = 2000
	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		for g := uint64(1); g <= gens; g++ {
			b := NewWriteBatch().
				Modify("ta", entry("set_o1", g, 0, kv(1))).
				Modify("tb", entry("set_o2", g, 0, kv(1)))
			if _, err := sw.Write(b); err != nil {
				writerErr = err
				return
			}
		}
	}()

	pkt := []byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	var wg sync.WaitGroup
	var mixed, readerErrs atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := sw.Process(pkt, 0)
				if err != nil {
					readerErrs.Add(1)
					return
				}
				o1 := binary.BigEndian.Uint32(res.Data[4:8])
				o2 := binary.BigEndian.Uint32(res.Data[8:12])
				if o1 != o2 {
					mixed.Add(1)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
	if n := readerErrs.Load(); n != 0 {
		t.Fatalf("%d readers errored", n)
	}
	if n := mixed.Load(); n != 0 {
		t.Fatalf("%d readers observed a half-applied batch", n)
	}
	// Final state: both tables on the last generation.
	res, err := sw.Process(pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o1 := binary.BigEndian.Uint32(res.Data[4:8]); o1 != gens {
		t.Errorf("final generation: %d want %d", o1, gens)
	}
}

// TestBatchODeltaGuard: the cost of a one-entry update must not scale
// with table size. A 100k-entry table may cost at most a small constant
// factor over a 2k-entry one per update (path-copying is O(depth), and
// HAMT depth grows by ~1 level); linear-rebuild behavior would show up
// as a ~50x ratio and fail loudly.
func TestBatchODeltaGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	perUpdate := func(n int) time.Duration {
		ents := make([]*p4.Entry, n)
		for i := range ents {
			ents[i] = entry("set_out", uint64(i), 0, kv(uint64(i)), kv(uint64(i&0xFFFF)))
		}
		sw := New(matcherProg(map[string][]*p4.Entry{"ex2": ents}))
		if !sw.Compiled() {
			t.Fatalf("not compiled: %v", sw.CompileErr())
		}
		const updates = 2000
		// Warm up the modify path once before timing.
		if _, err := sw.Write(NewWriteBatch().
			Modify("ex2", entry("set_out", 1, 0, kv(0), kv(0)))); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < updates; i++ {
			b := NewWriteBatch().
				Modify("ex2", entry("set_out", uint64(i), 0, kv(0), kv(0)))
			if _, err := sw.Write(b); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / updates
	}
	small := perUpdate(2_048)
	big := perUpdate(100_000)
	ratio := float64(big) / float64(small)
	t.Logf("per-update: 2k=%v 100k=%v ratio=%.2f", small, big, ratio)
	if ratio > 10 {
		t.Fatalf("per-update cost scales with table size: 2k=%v 100k=%v (ratio %.1f)",
			small, big, ratio)
	}
}

// TestRegisterDrain: RegisterNames + ReadRegisters together form the
// state-drain half of a failover (churn scenarios snapshot a crashed
// switch through them), so pin enumeration order, full-array reads
// that see batched writes, snapshot isolation, and the unknown-name
// error.
func TestRegisterDrain(t *testing.T) {
	sw := New(matcherProgReg(nil))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}

	names := sw.RegisterNames()
	if len(names) != 1 || names[0] != "r0" {
		t.Fatalf("RegisterNames = %v, want [r0]", names)
	}

	b := NewWriteBatch().
		RegisterWrite("r0", 0, 11).
		RegisterWrite("r0", 3, 44).
		RegisterWrite("r0", 7, 77)
	if _, err := sw.Write(b); err != nil {
		t.Fatal(err)
	}

	vals, err := sw.ReadRegisters("r0")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{11, 0, 0, 44, 0, 0, 0, 77}
	if len(vals) != len(want) {
		t.Fatalf("ReadRegisters returned %d cells, want %d", len(vals), len(want))
	}
	for i, v := range vals {
		if v != want[i] {
			t.Errorf("r0[%d] = %d, want %d", i, v, want[i])
		}
	}

	// The returned slice is a snapshot, not a live view.
	if _, err := sw.Write(NewWriteBatch().RegisterWrite("r0", 0, 999)); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 11 {
		t.Errorf("drained snapshot mutated: r0[0] = %d", vals[0])
	}

	if _, err := sw.ReadRegisters("no_such_reg"); err == nil {
		t.Error("ReadRegisters on unknown name did not error")
	}
}
