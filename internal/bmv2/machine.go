package bmv2

// machine.go is the execute half of the prepare/execute split: the
// per-packet state of the compiled engine. All dynamic name lookup was
// resolved to slot indices at compile time, so a packet's entire
// lifetime touches one flat []val frame plus a few flat scratch
// slices, all pooled and reused across packets. Steady-state
// allocations per packet are O(1): the Result struct and the exact-
// sized deparse buffer (which escapes into the caller and cannot be
// pooled).

import (
	"fmt"
	"sync/atomic"
)

// machine is pooled per-packet execution state.
type machine struct {
	sw      *Switch
	gen     *generation // rule-set generation pinned for this packet
	frame   []val
	valid   []bool
	emitted []bool
	ordered []int // extracted/validated header indices, in order
	emitOrd []int // deparse scratch: headers to emit, deduplicated
	keys    []val // table-apply scratch
	hashBuf []byte
	payload []byte
	exited  bool
}

// run executes a compiled statement list, honoring exit like the
// reference stmts loop (checked before every statement).
func (m *machine) run(fns []stmtFn) error {
	for _, fn := range fns {
		if m.exited {
			return nil
		}
		if err := fn(m); err != nil {
			return err
		}
	}
	return nil
}

// getMachine checks a reset machine out of the pool.
func (p *cprog) getMachine() *machine {
	m := p.pool.Get().(*machine)
	m.sw = p.sw
	// One atomic load pins the whole rule set for this packet (or for
	// the whole burst): every table applied reads the same generation,
	// so a concurrently committed batch is either fully visible or not
	// at all (the transactional consistency guarantee).
	m.gen = p.gen.Load()
	m.reset(p)
	return m
}

// reset readies the machine for the next packet of a burst without
// re-pinning the generation or touching the pool.
func (m *machine) reset(p *cprog) {
	copy(m.frame, p.initFrame)
	for i := range m.valid {
		m.valid[i] = false
		m.emitted[i] = false
	}
	m.ordered = m.ordered[:0]
	m.payload = nil
	m.exited = false
}

func (p *cprog) putMachine(m *machine) {
	m.payload = nil // do not retain the caller's packet buffer
	m.gen = nil     // do not pin a retired generation in the pool
	p.pool.Put(m)
}

// run1 executes one packet on a checked-out machine, filling res and
// reporting whether the packet was dropped. Counter updates are left
// to the caller so bursts can batch them.
func (p *cprog) run1(m *machine, data []byte, inPort int, res *Result) (bool, error) {
	m.frame[p.inPortSlot] = val{uint64(inPort), m.frame[p.inPortSlot].bits}
	if err := m.parse(p, data); err != nil {
		return false, err
	}
	if err := m.run(p.ingress.body); err != nil {
		return false, err
	}
	if p.egress != nil && !m.exited {
		if err := m.run(p.egress.body); err != nil {
			return false, err
		}
	}
	// Keep whatever capacity the caller left in res.Data so steady-state
	// callers (netsim's device hot loop, burst pumps) reuse one buffer
	// instead of allocating per packet. Dropped packets leave Data nil.
	scratch := res.Data
	*res = Result{
		Port:  int(m.frame[p.portSlot].wrapped()),
		Mcast: int(m.frame[p.mcastSlot].wrapped()),
	}
	if m.frame[p.dropSlot].wrapped() != 0 {
		res.Dropped = true
		return true, nil
	}
	res.Data = m.deparseInto(p, scratch)
	if res.Port == 0 && res.Mcast == 0 {
		res.NoMatch = true
	}
	return false, nil
}

// process runs one packet through the compiled pipeline. Counters and
// Result semantics match the reference Process exactly; counter
// updates are atomic because shards call process concurrently.
func (p *cprog) process(data []byte, inPort int) (*Result, error) {
	s := p.sw
	atomic.AddUint64(&s.PacketsIn, 1)
	m := p.getMachine()
	res := &Result{}
	dropped, err := p.run1(m, data, inPort, res)
	p.putMachine(m)
	if err != nil {
		return nil, err
	}
	if dropped {
		atomic.AddUint64(&s.PacketsDropped, 1)
	} else {
		atomic.AddUint64(&s.PacketsOut, 1)
	}
	return res, nil
}

// processInto runs one packet like process but fills a caller-owned
// Result, reusing res.Data's capacity for the deparse output. The
// zero-alloc path for callers that hold one Result per device or per
// worker (netsim's delivery loop).
func (p *cprog) processInto(data []byte, inPort int, res *Result) error {
	s := p.sw
	atomic.AddUint64(&s.PacketsIn, 1)
	m := p.getMachine()
	dropped, err := p.run1(m, data, inPort, res)
	p.putMachine(m)
	if err != nil {
		return err
	}
	if dropped {
		atomic.AddUint64(&s.PacketsDropped, 1)
	} else {
		atomic.AddUint64(&s.PacketsOut, 1)
	}
	return nil
}

// processBurst runs a burst (≤ MaxBurst packets, enforced by the
// Switch wrapper) through one machine checkout under one pinned
// generation, folding the counter updates into one atomic add per
// counter. Per-packet behavior is identical to process; only the
// *Result allocation and the per-packet pump overhead disappear.
func (p *cprog) processBurst(pkts [][]byte, ports []int, res []Result, errs []error) {
	s := p.sw
	atomic.AddUint64(&s.PacketsIn, uint64(len(pkts)))
	m := p.getMachine()
	var out, drop uint64
	for i, data := range pkts {
		if i > 0 {
			m.reset(p)
		}
		port := 0
		if ports != nil {
			port = ports[i]
		}
		dropped, err := p.run1(m, data, port, &res[i])
		if err != nil {
			res[i], errs[i] = Result{}, err
			continue
		}
		errs[i] = nil
		if dropped {
			drop++
		} else {
			out++
		}
	}
	p.putMachine(m)
	if drop != 0 {
		atomic.AddUint64(&s.PacketsDropped, drop)
	}
	if out != 0 {
		atomic.AddUint64(&s.PacketsOut, out)
	}
}

// parse walks the compiled parser FSM, replicating the reference
// semantics: floor-byte header length check, bit-level extraction that
// may read past the header into the remaining bytes for unaligned
// tails, unconditional ordered append, and the 64-step loop guard.
func (m *machine) parse(p *cprog, data []byte) error {
	rest := data
	si := p.startIdx
	for steps := 0; ; steps++ {
		if steps > 64 {
			return fmt.Errorf("parser loop")
		}
		st := &p.states[si]
		for _, hi := range st.extracts {
			h := &p.headers[hi]
			if len(rest) < h.nbytes {
				return fmt.Errorf("packet too short for header %q (%d < %d)", h.name, len(rest), h.nbytes)
			}
			for fi := range h.fields {
				f := &h.fields[fi]
				if f.aligned && f.byteOff+f.nbytes <= len(rest) {
					var v uint64
					for _, b := range rest[f.byteOff : f.byteOff+f.nbytes] {
						v = v<<8 | uint64(b)
					}
					m.frame[f.slot] = val{v, f.bits}
				} else {
					m.frame[f.slot] = val{extractBits(rest, f.bitOff, f.bits), f.bits}
				}
			}
			rest = rest[h.nbytes:]
			m.valid[hi] = true
			m.ordered = append(m.ordered, hi)
		}
		next := stateAccept
		if st.sel != nil {
			key := st.sel.key(m).wrapped()
			next = st.sel.def
			for i := range st.sel.cases {
				c := &st.sel.cases[i]
				if c.mask != 0 {
					if key&c.mask == c.value&c.mask {
						next = c.next
						break
					}
				} else if key == c.value {
					next = c.next
					break
				}
			}
		} else {
			next = st.next
		}
		switch next {
		case stateAccept:
			m.payload = rest
			return nil
		case stateReject:
			return fmt.Errorf("parser rejected packet")
		}
		si = next
	}
}

// deparseInto emits valid headers (extraction order, then program
// order) plus payload, appending into scratch[:0]. The caller owns
// scratch and must not pass a buffer aliasing the input packet (the
// payload is copied from it); a nil scratch allocates exact-sized.
func (m *machine) deparseInto(p *cprog, scratch []byte) []byte {
	m.emitOrd = m.emitOrd[:0]
	size := 0
	for _, hi := range m.ordered {
		if !m.emitted[hi] && m.valid[hi] {
			m.emitted[hi] = true
			m.emitOrd = append(m.emitOrd, hi)
			size += p.headers[hi].nbytes
		}
	}
	for hi := range p.headers {
		if !m.emitted[hi] && m.valid[hi] {
			m.emitted[hi] = true
			m.emitOrd = append(m.emitOrd, hi)
			size += p.headers[hi].nbytes
		}
	}
	out := scratch[:0]
	if cap(out) < size+len(m.payload) {
		out = make([]byte, 0, size+len(m.payload))
	}
	for _, hi := range m.emitOrd {
		h := &p.headers[hi]
		if h.allAligned {
			for fi := range h.fields {
				f := &h.fields[fi]
				v := m.frame[f.slot].wrapped()
				for i := f.nbytes - 1; i >= 0; i-- {
					out = append(out, byte(v>>(8*uint(i))))
				}
			}
			continue
		}
		// Bit-packing path, byte-for-byte the reference emit loop:
		// full bytes flush, a trailing partial byte is dropped.
		var cur uint64
		curBits := 0
		for fi := range h.fields {
			f := &h.fields[fi]
			v := m.frame[f.slot]
			remaining := f.bits
			for remaining > 0 {
				take := 8 - curBits
				if take > remaining {
					take = remaining
				}
				cur = cur<<uint(take) | (v.wrapped()>>uint(remaining-take))&((1<<uint(take))-1)
				curBits += take
				remaining -= take
				if curBits == 8 {
					out = append(out, byte(cur))
					cur, curBits = 0, 0
				}
			}
		}
	}
	return append(out, m.payload...)
}
