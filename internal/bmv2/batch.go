package bmv2

// batch.go is the transactional control plane of the switch: a
// WriteBatch groups entry inserts/modifies/deletes, register writes,
// and default-action changes into one all-or-nothing unit, and
// Switch.Write applies it with a single atomic generation publish.
// Either every op in the batch takes effect or none does (the failed
// op's index comes back in a *BatchError), and because the whole rule
// set swaps behind one pointer, a concurrently processed packet
// observes the complete pre-batch state or the complete post-batch
// state — never a mix.
//
// The op types live here (not in p4rt) because p4rt imports bmv2;
// p4rt re-exports them by alias so wire clients and the in-process
// Direct client share one vocabulary and one gob encoding.

import (
	"fmt"

	"netcl/internal/p4"
)

// OpKind discriminates batch operations.
type OpKind int

// Batch operation kinds.
const (
	// OpInsert appends a table entry (first-inserted wins on duplicate
	// exact tuples). Errors on unknown tables.
	OpInsert OpKind = iota
	// OpModify atomically replaces the entries matching Entry's full
	// key tuple with Entry. Errors when no entry matches.
	OpModify
	// OpDelete removes every entry whose key values equal Keys exactly
	// (same arity, all values equal). Unknown tables and missing tuples
	// remove zero entries without failing the batch.
	OpDelete
	// OpRegisterWrite sets one register cell. Errors on unknown
	// registers or out-of-range indices.
	OpRegisterWrite
	// OpSetDefault replaces a table's default action. Errors on
	// unknown tables.
	OpSetDefault
)

// Op is one batch operation. All fields are exported so a batch
// gob-encodes as-is onto the p4rt wire.
type Op struct {
	Kind  OpKind
	Table string     // OpInsert/OpModify/OpDelete/OpSetDefault
	Entry *p4.Entry  // OpInsert/OpModify
	Keys  []uint64   // OpDelete: full key tuple
	Reg   string     // OpRegisterWrite
	Idx   int        // OpRegisterWrite
	Val   uint64     // OpRegisterWrite
	Action string    // OpSetDefault
	Args  []uint64   // OpSetDefault
}

// regCell identifies one register cell for write-combining.
type regCell struct {
	name string
	idx  int
}

// WriteBatch accumulates ops for one transactional Write. The builder
// methods return the batch for chaining. Register writes to the same
// cell are write-combined: only the last value survives, which is
// legal because a batch applies atomically and nothing reads registers
// mid-batch — the dominant `_managed_` mirror traffic collapses to one
// op per touched cell.
type WriteBatch struct {
	Ops []Op

	rw map[regCell]int // cell -> index in Ops, for combining
}

// NewWriteBatch returns an empty batch.
func NewWriteBatch() *WriteBatch { return &WriteBatch{} }

// Len reports the number of ops in the batch.
func (b *WriteBatch) Len() int { return len(b.Ops) }

// Insert appends a table-entry insert.
func (b *WriteBatch) Insert(table string, e *p4.Entry) *WriteBatch {
	b.Ops = append(b.Ops, Op{Kind: OpInsert, Table: table, Entry: e})
	return b
}

// Modify appends a replace of the entries matching e's full key tuple.
func (b *WriteBatch) Modify(table string, e *p4.Entry) *WriteBatch {
	b.Ops = append(b.Ops, Op{Kind: OpModify, Table: table, Entry: e})
	return b
}

// Delete appends a full-tuple entry delete.
func (b *WriteBatch) Delete(table string, keys ...uint64) *WriteBatch {
	b.Ops = append(b.Ops, Op{Kind: OpDelete, Table: table, Keys: keys})
	return b
}

// RegisterWrite appends a register-cell write, combining with any
// earlier write to the same cell in this batch (last value wins).
func (b *WriteBatch) RegisterWrite(name string, idx int, v uint64) *WriteBatch {
	c := regCell{name, idx}
	if i, ok := b.rw[c]; ok {
		b.Ops[i].Val = v
		return b
	}
	if b.rw == nil {
		b.rw = map[regCell]int{}
	}
	b.rw[c] = len(b.Ops)
	b.Ops = append(b.Ops, Op{Kind: OpRegisterWrite, Reg: name, Idx: idx, Val: v})
	return b
}

// SetDefault appends a default-action change.
func (b *WriteBatch) SetDefault(table, action string, args []uint64) *WriteBatch {
	b.Ops = append(b.Ops, Op{Kind: OpSetDefault, Table: table, Action: action, Args: args})
	return b
}

// hasRegisterWrites reports whether any op touches a register (the
// sharded engine must quiesce for those; pure table batches publish
// lock-free).
func (b *WriteBatch) hasRegisterWrites() bool {
	for i := range b.Ops {
		if b.Ops[i].Kind == OpRegisterWrite {
			return true
		}
	}
	return false
}

// WriteResult reports per-op outcomes of a committed batch.
type WriteResult struct {
	// Removed has one count per op: entries removed by OpDelete (and
	// replaced by OpModify); zero for other kinds.
	Removed []int
}

// BatchError reports which op failed a Write. The batch had no effect.
type BatchError struct {
	Index int // position in WriteBatch.Ops
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("batch op %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying op error to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// Entry store ----------------------------------------------------------

// ekey buckets entries by arity plus the first maxExactKeys key
// values. Entries sharing a bucket are verified with entryKeysEqual,
// so wider tuples stay correct — the bucket only bounds the candidate
// scan.
type ekey struct {
	k [maxExactKeys]uint64
	n int
}

func ekeyOf(e *p4.Entry) ekey {
	var k ekey
	k.n = len(e.Keys)
	for i := 0; i < len(e.Keys) && i < maxExactKeys; i++ {
		k.k[i] = e.Keys[i].Value
	}
	return k
}

func ekeyOfVals(vals []uint64) ekey {
	var k ekey
	k.n = len(vals)
	for i := 0; i < len(vals) && i < maxExactKeys; i++ {
		k.k[i] = vals[i]
	}
	return k
}

// entrySet is one table's runtime entry store: an append-only slice
// (nil = tombstone) preserving insertion order — the order entry
// priority ties resolve by — plus a key-tuple index making insert O(1)
// and delete O(candidates) instead of O(table). Tombstones are
// reclaimed by compaction after successful commits, never mid-batch,
// so undo closures can restore deleted slots by index.
type entrySet struct {
	ents  []*p4.Entry // insertion order; nil slots are tombstones
	live  int
	dead  int
	byKey map[ekey][]int // bucket -> candidate indices (may be stale)
}

// insert appends an entry, returning its slot and bucket for undo.
func (es *entrySet) insert(e *p4.Entry) (int, ekey) {
	if es.byKey == nil {
		es.byKey = map[ekey][]int{}
	}
	idx := len(es.ents)
	es.ents = append(es.ents, e)
	k := ekeyOf(e)
	es.byKey[k] = append(es.byKey[k], idx)
	es.live++
	return idx, k
}

// unInsert reverts an insert (rollback path).
func (es *entrySet) unInsert(idx int, k ekey) {
	es.ents[idx] = nil
	es.live--
	es.dead++
	lst := es.byKey[k]
	for j := len(lst) - 1; j >= 0; j-- {
		if lst[j] == idx {
			es.byKey[k] = append(lst[:j], lst[j+1:]...)
			break
		}
	}
}

// removedEntry remembers one tombstoned slot for undo.
type removedEntry struct {
	idx int
	e   *p4.Entry
}

// deleteKey tombstones every entry whose key values equal keyVals
// exactly, appending the removed slots for undo onto dst (a batch-
// scoped arena; callers keep the appended tail). The candidate list is
// filtered in place as it is scanned — removed and stale indices drop
// out — so repeated churn on one key (the managed-lookup replace
// pattern) keeps the bucket short instead of growing it per delete.
func (es *entrySet) deleteKey(dst []removedEntry, keyVals []uint64) []removedEntry {
	if len(keyVals) == 0 {
		return dst
	}
	k := ekeyOfVals(keyVals)
	lst := es.byKey[k]
	kept := lst[:0]
	for _, idx := range lst {
		e := es.ents[idx]
		if e == nil {
			continue // stale tombstone: prune in passing
		}
		if entryKeysEqual(e, keyVals) {
			dst = append(dst, removedEntry{idx, e})
			es.ents[idx] = nil
			es.live--
			es.dead++
			continue // unDelete re-indexes on rollback
		}
		kept = append(kept, idx)
	}
	if len(lst) > 0 {
		if len(kept) == 0 {
			delete(es.byKey, k)
		} else {
			es.byKey[k] = kept
		}
	}
	return dst
}

// unDelete restores tombstoned slots (rollback path), re-adding them
// to the key index deleteKey dropped them from.
func (es *entrySet) unDelete(rm []removedEntry) {
	for _, r := range rm {
		es.ents[r.idx] = r.e
		es.live++
		es.dead--
		k := ekeyOf(r.e)
		es.byKey[k] = append(es.byKey[k], r.idx)
	}
}

// maybeCompact reclaims tombstones once they dominate the slice.
// Amortized O(1) per delete; called only after successful commits.
func (es *entrySet) maybeCompact() {
	if es.dead > 16 && es.dead > es.live {
		es.compact()
	}
}

// compact drops tombstones and rebuilds the key index. Entry order
// among live entries is preserved.
func (es *entrySet) compact() {
	kept := es.ents[:0]
	for _, e := range es.ents {
		if e != nil {
			kept = append(kept, e)
		}
	}
	es.ents = kept
	es.live = len(kept)
	es.dead = 0
	es.byKey = map[ekey][]int{}
	for i, e := range es.ents {
		k := ekeyOf(e)
		es.byKey[k] = append(es.byKey[k], i)
	}
}

// appendKeyVals appends an entry's key values onto dst as a delete
// tuple; dst is typically a reusable scratch buffer.
func appendKeyVals(dst []uint64, e *p4.Entry) []uint64 {
	for i := range e.Keys {
		dst = append(dst, e.Keys[i].Value)
	}
	return dst
}

// entryKeyVals extracts an entry's key values as a fresh delete tuple.
func entryKeyVals(e *p4.Entry) []uint64 {
	return appendKeyVals(make([]uint64, 0, len(e.Keys)), e)
}

// Transactional apply ---------------------------------------------------

// staging tracks one compiled table's pending snapshot during a batch.
// Exact tables accumulate O(delta) persistent-map updates in snap;
// kinds that cannot delta (LPM/linear) set dirty and get one full
// build at commit.
type staging struct {
	snap  *tsnap
	dirty bool
}

// Undo-record kinds. A batch logs one flat record per reversible op
// instead of a heap-allocated closure; on failure the log replays in
// reverse.
const (
	uInsert = iota // unInsert(idx, k)
	uDelete        // unDelete(rm)
	uDefault       // t.Default = old
)

// undoRec reverses one applied op on rollback.
type undoRec struct {
	kind int8
	es   *entrySet
	idx  int
	k    ekey
	rm   []removedEntry
	t    *p4.Table
	old  *p4.ActionCall
}

// Write applies a batch transactionally. On success every op took
// effect and the new rule set was published as one generation: a
// concurrent packet sees all of the batch or none of it. On failure
// the returned error is a *BatchError naming the eject op, the store
// is rolled back, registers are untouched, and nothing is published.
//
// Safe to call concurrently with packet processing on the compiled
// engine. Batches containing register writes additionally require the
// data path to be quiesced when packets are in flight (Sharded.Write
// does this), because register cells are plain memory.
func (s *Switch) Write(b *WriteBatch) (*WriteResult, error) {
	if b == nil || len(b.Ops) == 0 {
		return &WriteResult{}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	res := &WriteResult{Removed: make([]int, len(b.Ops))}

	type regWrite struct {
		rf  *regfile
		idx int
		val uint64
	}
	var regWrites []regWrite
	undo := make([]undoRec, 0, len(b.Ops))
	var rmArena []removedEntry // backing store for undoRec.rm tails
	var kvBuf []uint64         // scratch key tuple, reused across ops
	var stage map[int]*staging
	var touched map[string]bool
	// One transient token for the whole batch: trie nodes copied by an
	// earlier op are edited in place by later ops, so a k-op batch
	// copies each touched node once, not k times. The token dies with
	// this call, freezing the published nodes.
	owner := &powner{}

	// stageTables folds one mutation into the pending snapshot of every
	// compiled table sharing the name. delta returns the new snapshot or
	// nil to demand a full rebuild at commit.
	stageTables := func(table string, delta func(tb *ctable, old *tsnap) *tsnap) {
		if s.prog == nil {
			return
		}
		tbs := s.prog.tablesByName[table]
		if len(tbs) == 0 {
			return
		}
		if stage == nil {
			stage = map[int]*staging{}
		}
		cur := s.prog.gen.Load()
		for _, tb := range tbs {
			st := stage[tb.gslot]
			if st == nil {
				st = &staging{snap: cur.snaps[tb.gslot]}
				stage[tb.gslot] = st
			}
			if st.dirty {
				continue // a full build at commit covers this op too
			}
			if ns := delta(tb, st.snap); ns != nil {
				st.snap = ns
			} else {
				st.dirty = true
			}
		}
	}
	touch := func(table string) {
		if touched == nil {
			touched = map[string]bool{}
		}
		touched[table] = true
	}
	fail := func(i int, err error) (*WriteResult, error) {
		for j := len(undo) - 1; j >= 0; j-- {
			switch r := &undo[j]; r.kind {
			case uInsert:
				r.es.unInsert(r.idx, r.k)
			case uDelete:
				r.es.unDelete(r.rm)
			default:
				r.t.Default = r.old
			}
		}
		return nil, &BatchError{Index: i, Err: err}
	}

	for i := range b.Ops {
		op := &b.Ops[i]
		switch op.Kind {
		case OpInsert:
			if op.Entry == nil {
				return fail(i, fmt.Errorf("insert into %q: nil entry", op.Table))
			}
			es := s.entries[op.Table]
			if es == nil {
				if s.findTable(op.Table) == nil {
					return fail(i, fmt.Errorf("no table %q", op.Table))
				}
				es = &entrySet{}
				s.entries[op.Table] = es
			}
			e := op.Entry
			idx, k := es.insert(e)
			undo = append(undo, undoRec{kind: uInsert, es: es, idx: idx, k: k})
			touch(op.Table)
			stageTables(op.Table, func(tb *ctable, old *tsnap) *tsnap {
				return tb.deltaInsert(old, e, owner)
			})

		case OpModify:
			if op.Entry == nil {
				return fail(i, fmt.Errorf("modify in %q: nil entry", op.Table))
			}
			es := s.entries[op.Table]
			if es == nil {
				return fail(i, fmt.Errorf("no table %q", op.Table))
			}
			e := op.Entry
			kvBuf = appendKeyVals(kvBuf[:0], e)
			start := len(rmArena)
			rmArena = es.deleteKey(rmArena, kvBuf)
			rm := rmArena[start:len(rmArena):len(rmArena)]
			if len(rm) == 0 {
				return fail(i, fmt.Errorf("modify in %q: no entry matches key tuple %v", op.Table, kvBuf))
			}
			idx, k := es.insert(e)
			// Two records so reverse replay un-inserts before un-deleting.
			undo = append(undo,
				undoRec{kind: uDelete, es: es, rm: rm},
				undoRec{kind: uInsert, es: es, idx: idx, k: k})
			res.Removed[i] = len(rm)
			touch(op.Table)
			stageTables(op.Table, func(tb *ctable, old *tsnap) *tsnap {
				return tb.deltaReplace(old, e, owner)
			})

		case OpDelete:
			es := s.entries[op.Table]
			if es == nil {
				continue // deleting from an unknown table removes nothing
			}
			start := len(rmArena)
			rmArena = es.deleteKey(rmArena, op.Keys)
			rm := rmArena[start:len(rmArena):len(rmArena)]
			if len(rm) == 0 {
				continue
			}
			undo = append(undo, undoRec{kind: uDelete, es: es, rm: rm})
			res.Removed[i] = len(rm)
			keys := op.Keys
			touch(op.Table)
			stageTables(op.Table, func(tb *ctable, old *tsnap) *tsnap {
				return tb.deltaDelete(old, keys, owner)
			})

		case OpRegisterWrite:
			rf, ok := s.regs[op.Reg]
			if !ok {
				return fail(i, fmt.Errorf("no register %q", op.Reg))
			}
			if op.Idx < 0 || op.Idx >= rf.size {
				return fail(i, fmt.Errorf("register %q index %d out of range", op.Reg, op.Idx))
			}
			// Staged: register memory is touched only once the whole
			// batch has validated.
			regWrites = append(regWrites, regWrite{rf, op.Idx, op.Val})

		case OpSetDefault:
			t := s.findTable(op.Table)
			if t == nil {
				return fail(i, fmt.Errorf("no table %q", op.Table))
			}
			old := t.Default
			t.Default = &p4.ActionCall{Name: op.Action, Args: op.Args}
			undo = append(undo, undoRec{kind: uDefault, t: t, old: old})
			stageTables(op.Table, func(tb *ctable, old *tsnap) *tsnap {
				return tb.deltaDefault(old)
			})

		default:
			return fail(i, fmt.Errorf("unknown op kind %d", op.Kind))
		}
	}

	// Commit: registers first (plain memory; Sharded quiesces around the
	// whole call when packets are in flight), then reclaim dominant
	// tombstones, then publish every touched table in one generation.
	for _, rw := range regWrites {
		rw.rf.store(rw.idx, rw.val)
	}
	for name := range touched {
		if es := s.entries[name]; es != nil {
			es.maybeCompact()
		}
	}
	if stage != nil {
		cur := s.prog.gen.Load()
		snaps := append([]*tsnap(nil), cur.snaps...)
		for gslot, st := range stage {
			if st.dirty {
				snaps[gslot] = s.prog.tabs[gslot].build()
			} else {
				snaps[gslot] = st.snap
			}
		}
		s.prog.gen.Store(&generation{snaps: snaps})
	}
	return res, nil
}
