package bmv2

// pmap.go is a persistent (path-copying) hash-array-mapped trie from
// exact-match key tuples to compiled entries. It is the data structure
// behind O(delta) control-plane updates: inserting or deleting one
// entry in a published matcher snapshot copies only the O(log64 n)
// nodes on the key's path and shares everything else with the previous
// snapshot, so a 1-entry update into a million-entry table costs
// microseconds instead of a full-table rebuild. Published roots are
// immutable; every mutation returns a new root.
//
// Mutations carry an ownership token (the transient pattern): a node
// created under the active token is private to the mutation batch and
// edited in place, while nodes from published snapshots — owned by an
// older token or none — are copied first. A batch of k updates then
// copies each touched node once, not once per update, and a bulk
// build() constructs the whole trie with no intermediate garbage.
// Tokens are dropped when the root is published, freezing the nodes.

import "math/bits"

const (
	pbits = 6  // branching factor 2^6 = 64
	pmask = 63 // chunk mask
)

// powner is a mutation batch's identity. Must not be zero-sized: two
// distinct tokens have to compare unequal by pointer.
type powner struct{ _ byte }

// pleaf binds one tuple to its compiled entry (embedded by value: one
// allocation per insert, one fewer pointer chase per lookup). Leaves
// whose hashes are fully equal (a true 64-bit collision) chain through
// next. Leaves are immutable once linked into a root; chains are
// rebuilt, never edited.
type pleaf struct {
	hash  uint64
	tuple [maxExactKeys]uint64
	ce    centry
	next  *pleaf
}

// pchild is one slot of a node: an interior node or a leaf chain.
type pchild struct {
	n *pnode
	l *pleaf
}

// pnode is an interior trie node: a 64-bit occupancy bitmap plus a
// dense child array (popcount indexing).
type pnode struct {
	bitmap uint64
	kids   []pchild
	owner  *powner // mutation batch that may still edit this node
}

// phash mixes a key tuple into the 64-bit trie hash. Zero-padded
// positions beyond the table's arity hash deterministically, so tuples
// of any arity up to maxExactKeys share one code path.
func phash(t [maxExactKeys]uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range t {
		h = mix64(h ^ v)
	}
	return h
}

// pget returns the compiled entry bound to tuple, or nil.
func pget(n *pnode, hash uint64, tuple [maxExactKeys]uint64) *centry {
	shift := uint(0)
	for n != nil {
		bit := uint64(1) << ((hash >> shift) & pmask)
		if n.bitmap&bit == 0 {
			return nil
		}
		c := &n.kids[bits.OnesCount64(n.bitmap&(bit-1))]
		if c.n != nil {
			n = c.n
			shift += pbits
			continue
		}
		for l := c.l; l != nil; l = l.next {
			if l.hash == hash && l.tuple == tuple {
				return &l.ce
			}
		}
		return nil
	}
	return nil
}

// psplit pushes two leaf chains with distinct hashes down until their
// hash chunks diverge, building the intermediate single-child nodes.
func psplit(a, b *pleaf, shift uint, o *powner) *pnode {
	ai := (a.hash >> shift) & pmask
	bi := (b.hash >> shift) & pmask
	if ai == bi {
		child := psplit(a, b, shift+pbits, o)
		return &pnode{bitmap: 1 << ai, kids: []pchild{{n: child}}, owner: o}
	}
	n := &pnode{bitmap: 1<<ai | 1<<bi, owner: o}
	if ai < bi {
		n.kids = []pchild{{l: a}, {l: b}}
	} else {
		n.kids = []pchild{{l: b}, {l: a}}
	}
	return n
}

// kidsWith copies the child array with slot i replaced.
func kidsWith(kids []pchild, i int, c pchild) []pchild {
	out := make([]pchild, len(kids))
	copy(out, kids)
	out[i] = c
	return out
}

// setKid replaces slot i, in place when n is owned by o.
func setKid(n *pnode, i int, c pchild, o *powner) *pnode {
	if o != nil && n.owner == o {
		n.kids[i] = c
		return n
	}
	return &pnode{bitmap: n.bitmap, kids: kidsWith(n.kids, i, c), owner: o}
}

// addKid inserts a new slot for bit at position i, in place when n is
// owned by o.
func addKid(n *pnode, bit uint64, i int, c pchild, o *powner) *pnode {
	if o != nil && n.owner == o {
		n.kids = append(n.kids, pchild{})
		copy(n.kids[i+1:], n.kids[i:])
		n.kids[i] = c
		n.bitmap |= bit
		return n
	}
	kids := make([]pchild, len(n.kids)+1)
	copy(kids, n.kids[:i])
	kids[i] = c
	copy(kids[i+1:], n.kids[i:])
	return &pnode{bitmap: n.bitmap | bit, kids: kids, owner: o}
}

// pinsert binds nl.tuple to nl.ce under token o, path-copying nodes
// not owned by o. With replace=false an existing binding wins (the
// exact matcher's first-inserted-wins rule) and the original root is
// returned with changed=false; with replace=true the binding is
// overwritten.
func pinsert(n *pnode, shift uint, nl *pleaf, replace bool, o *powner) (root *pnode, changed bool) {
	if n == nil {
		return &pnode{bitmap: 1 << ((nl.hash >> shift) & pmask), kids: []pchild{{l: nl}}, owner: o}, true
	}
	bit := uint64(1) << ((nl.hash >> shift) & pmask)
	i := bits.OnesCount64(n.bitmap & (bit - 1))
	if n.bitmap&bit == 0 {
		return addKid(n, bit, i, pchild{l: nl}, o), true
	}
	c := n.kids[i]
	if c.n != nil {
		sub, changed := pinsert(c.n, shift+pbits, nl, replace, o)
		if !changed {
			return n, false
		}
		return setKid(n, i, pchild{n: sub}, o), true
	}
	if c.l.hash == nl.hash {
		// Same full hash: replace within the chain or prepend. Chains are
		// rebuilt rather than edited — leaves stay shared across roots.
		var prefix []*pleaf
		for l := c.l; l != nil; l = l.next {
			if l.tuple == nl.tuple {
				if !replace {
					return n, false
				}
				head := &pleaf{hash: nl.hash, tuple: nl.tuple, ce: nl.ce, next: l.next}
				for j := len(prefix) - 1; j >= 0; j-- {
					p := prefix[j]
					head = &pleaf{hash: p.hash, tuple: p.tuple, ce: p.ce, next: head}
				}
				return setKid(n, i, pchild{l: head}, o), true
			}
			prefix = append(prefix, l)
		}
		nl2 := &pleaf{hash: nl.hash, tuple: nl.tuple, ce: nl.ce, next: c.l}
		return setKid(n, i, pchild{l: nl2}, o), true
	}
	sub := psplit(c.l, nl, shift+pbits, o)
	return setKid(n, i, pchild{n: sub}, o), true
}

// pdelete removes the binding for tuple under token o, path-copying
// nodes not owned by o. The original root is returned with
// removed=false when the tuple is absent. An emptied subtree collapses
// to its parent's missing bit.
func pdelete(n *pnode, shift uint, hash uint64, tuple [maxExactKeys]uint64, o *powner) (root *pnode, removed bool) {
	if n == nil {
		return nil, false
	}
	bit := uint64(1) << ((hash >> shift) & pmask)
	if n.bitmap&bit == 0 {
		return n, false
	}
	i := bits.OnesCount64(n.bitmap & (bit - 1))
	c := n.kids[i]
	if c.n != nil {
		sub, removed := pdelete(c.n, shift+pbits, hash, tuple, o)
		if !removed {
			return n, false
		}
		if sub == nil {
			return pdrop(n, bit, i, o), true
		}
		return setKid(n, i, pchild{n: sub}, o), true
	}
	var prefix []*pleaf
	for l := c.l; l != nil; l = l.next {
		if l.hash == hash && l.tuple == tuple {
			head := l.next
			for j := len(prefix) - 1; j >= 0; j-- {
				p := prefix[j]
				head = &pleaf{hash: p.hash, tuple: p.tuple, ce: p.ce, next: head}
			}
			if head == nil {
				return pdrop(n, bit, i, o), true
			}
			return setKid(n, i, pchild{l: head}, o), true
		}
		prefix = append(prefix, l)
	}
	return n, false
}

// pdrop removes child slot i (in place when owned by o); an emptied
// node becomes nil so parents collapse the path.
func pdrop(n *pnode, bit uint64, i int, o *powner) *pnode {
	if len(n.kids) == 1 {
		return nil
	}
	if o != nil && n.owner == o {
		copy(n.kids[i:], n.kids[i+1:])
		n.kids = n.kids[:len(n.kids)-1]
		n.bitmap &^= bit
		return n
	}
	kids := make([]pchild, len(n.kids)-1)
	copy(kids, n.kids[:i])
	copy(kids[i:], n.kids[i+1:])
	return &pnode{bitmap: n.bitmap &^ bit, kids: kids, owner: o}
}
