package bmv2

// fdd.go compiles a table's rule set into a forwarding decision
// diagram (the "A Fast Compiler for NetKAT" technique): one level per
// key field, each node a sorted list of disjoint intervals covering
// the field's whole domain, each leaf the precomputed winning entry.
// A match is then one walk — a binary search per key — instead of the
// per-entry linear scan or the prefix-by-prefix lpmIdx walk, so
// ternary/range/LPM/priority tables match in O(levels · log edges)
// regardless of entry count.
//
// The diagram can be built ahead of time because the winner of the
// reference scoring loop depends only on WHICH rules match, never on
// the packet's key values: an LPM key contributes its prefix length,
// ternary/range keys subtract the entry's priority, and ties go to
// the earliest-inserted entry (the scan's strict > comparison). Each
// rule therefore carries one static score, and a leaf's winner is the
// best-scoring rule alive there.
//
// Eligibility is conservative and checked twice: at build time every
// key expression must have a statically-known width (staticBits
// mirrors the ops.go width rules) and every rule must expand to a
// bounded set of intervals per field (ternary masks with many
// free high bits explode combinatorially); at match time the runtime
// key widths must equal the assumed ones, else the walk bails and the
// caller falls back to the scan/lpmIdx paths, which stay materialized
// in every snapshot as the semantic safety net.

import (
	"math/bits"
	"sort"

	"netcl/internal/p4"
)

const (
	// fddMaxWork bounds total interval edges examined during a build;
	// overflow abandons the diagram (scan fallback), never the table.
	fddMaxWork = 1 << 16
	// fddMaxFreeBits bounds non-contiguous ternary masks: a rule may
	// enumerate at most 2^fddMaxFreeBits intervals per field.
	fddMaxFreeBits = 6
)

// Leaf codes share the child namespace with node indices: child >= 0
// is a node, fddMiss is "no entry matched", and any other negative
// value encodes a winning entry index as -(idx)-2.
const fddMiss = int32(-1)

// fnode is one decision level: starts[i] opens the half-open
// elementary interval [starts[i], starts[i+1]) (the last runs to the
// end of the field's domain), and next[i] is its child or leaf code.
// starts[0] is always 0, so every key value lands in some interval.
type fnode struct {
	starts []uint64
	next   []int32
}

// fdd is the compiled diagram of one table's rule set.
type fdd struct {
	kbits []int // assumed static width per key level
	nodes []fnode
	root  int32 // node index or leaf code (rule-free tables)
}

// match walks the diagram. The bool result distinguishes an
// authoritative answer (true; *centry may still be nil = miss) from a
// bail because a runtime key width diverged from the build-time
// assumption (false; caller must fall back).
func (f *fdd) match(keys []val, ents []centry) (*centry, bool) {
	n := f.root
	for lvl := 0; n >= 0; lvl++ {
		if keys[lvl].bits != f.kbits[lvl] {
			return nil, false
		}
		nd := &f.nodes[n]
		v := keys[lvl].wrapped()
		lo, hi := 0, len(nd.starts)-1
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if nd.starts[mid] <= v {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		n = nd.next[lo]
	}
	if n == fddMiss {
		return nil, true
	}
	return &ents[-n-2], true
}

// fddIval is one closed interval [lo, hi] of key values.
type fddIval struct{ lo, hi uint64 }

// fddRule is one diagram-eligible entry: its store index, the static
// score the reference loop would assign it, and its per-level interval
// expansion.
type fddRule struct {
	ent   int32
	score int
	iv    [][]fddIval
}

type fddBuilder struct {
	kbits []int
	dmask []uint64
	rules []fddRule
	nodes []fnode
	work  int
	memo  map[string]int32
}

// buildFDD compiles sn.ents into a diagram, or returns nil when the
// table is ineligible (dynamic key widths, unrepresentable masks,
// work-budget overflow). Called from ctable.build under the writer
// mutex; the result is immutable once published.
func buildFDD(tb *ctable, sn *tsnap) *fdd {
	if !tb.kstatic {
		return nil
	}
	b := &fddBuilder{
		kbits: tb.kbits,
		dmask: make([]uint64, len(tb.kbits)),
		memo:  map[string]int32{},
	}
	for i, kb := range tb.kbits {
		b.dmask[i] = maskOf(kb)
	}
	for i := range sn.ents {
		ce := &sn.ents[i]
		if !ce.eligible {
			continue
		}
		r := fddRule{ent: int32(i), iv: make([][]fddIval, len(tb.kbits))}
		dead := false
		for ki := range ce.e.Keys {
			ivs, ok := projIvals(tb.kinds[ki], &ce.e.Keys[ki], tb.kbits[ki], ce.e.Priority, &r.score)
			if !ok {
				return nil // unrepresentable: whole table falls back
			}
			if len(ivs) == 0 {
				dead = true // this rule can never match
				break
			}
			r.iv[ki] = ivs
		}
		if !dead {
			b.rules = append(b.rules, r)
		}
	}
	alive := make([]int32, len(b.rules))
	for i := range alive {
		alive[i] = int32(i)
	}
	root, ok := b.node(0, alive)
	if !ok {
		return nil
	}
	return &fdd{kbits: b.kbits, nodes: b.nodes, root: root}
}

// projIvals projects one rule key onto its field domain as disjoint
// intervals, folding the key's score contribution into *score exactly
// like the reference loop (ternary/range subtract the priority, LPM
// overwrites with the prefix length, exact is neutral). ok=false means
// the key cannot be represented (too many intervals); an empty result
// with ok=true means the key can never match.
func projIvals(kind p4.MatchKind, kv *p4.KeyValue, kbits, prio int, score *int) ([]fddIval, bool) {
	dmask := maskOf(kbits)
	switch kind {
	case p4.MatchExact:
		if kv.Value > dmask {
			return nil, true
		}
		return []fddIval{{kv.Value, kv.Value}}, true
	case p4.MatchLPM:
		plen := kv.PrefixLen
		if plen < 0 {
			plen = 0
		}
		if plen > kbits {
			return nil, true // reference: plen wider than the key never matches
		}
		*score = plen
		if plen == 0 {
			return []fddIval{{0, dmask}}, true
		}
		shift := uint(kbits - plen)
		hb := kv.Value >> shift
		if hb > dmask>>shift {
			return nil, true // prefix lies outside the key domain
		}
		lo := hb << shift
		return []fddIval{{lo, lo | (uint64(1)<<shift - 1)}}, true
	case p4.MatchTernary:
		*score -= prio
		c := kv.Value & kv.Mask
		if c&^dmask != 0 {
			return nil, true // required bits outside the key domain
		}
		me := kv.Mask & dmask
		if me == 0 {
			return []fddIval{{0, dmask}}, true
		}
		low := bits.TrailingZeros64(me)
		lowMask := uint64(1)<<uint(low) - 1
		freeHigh := ^me & dmask &^ lowMask
		if bits.OnesCount64(freeHigh) > fddMaxFreeBits {
			return nil, false
		}
		var ivs []fddIval
		s := uint64(0)
		for {
			base := c | s
			ivs = append(ivs, fddIval{base, base | lowMask})
			if s == freeHigh {
				return ivs, true
			}
			s = (s - freeHigh) & freeHigh
		}
	case p4.MatchRange:
		*score -= prio
		if kv.Value > dmask || kv.Hi < kv.Value {
			return nil, true
		}
		hi := kv.Hi
		if hi > dmask {
			hi = dmask
		}
		return []fddIval{{kv.Value, hi}}, true
	}
	return nil, false
}

// node builds (or reuses, via the memo) the decision node for the
// alive rule set at one level. Memoization on (level, alive) merges
// isomorphic subtrees into a DAG, which is what keeps diagrams of
// overlapping rules compact.
func (b *fddBuilder) node(level int, alive []int32) (int32, bool) {
	if level == len(b.kbits) {
		return b.leaf(alive), true
	}
	key := memoKey(level, alive)
	if id, ok := b.memo[key]; ok {
		return id, true
	}
	// Elementary interval boundaries: 0 plus every alive endpoint.
	starts := []uint64{0}
	for _, r := range alive {
		for _, iv := range b.rules[r].iv[level] {
			starts = append(starts, iv.lo)
			if iv.hi < b.dmask[level] {
				starts = append(starts, iv.hi+1)
			}
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	starts = dedupU64(starts)
	b.work += len(starts)
	if b.work > fddMaxWork {
		return 0, false
	}
	var cs []uint64
	var cn []int32
	var sub []int32
	for _, s := range starts {
		sub = sub[:0]
		for _, r := range alive {
			if ivalsContain(b.rules[r].iv[level], s) {
				sub = append(sub, r)
			}
		}
		child, ok := b.node(level+1, sub)
		if !ok {
			return 0, false
		}
		if len(cn) > 0 && cn[len(cn)-1] == child {
			continue // merge adjacent intervals with identical children
		}
		cs = append(cs, s)
		cn = append(cn, child)
	}
	id := int32(len(b.nodes))
	b.nodes = append(b.nodes, fnode{starts: cs, next: cn})
	b.memo[key] = id
	return id, true
}

// leaf picks the winner among the alive rules: best static score,
// earliest store index on ties — exactly the scan's matched-flag loop
// with its strict > comparison.
func (b *fddBuilder) leaf(alive []int32) int32 {
	win := fddMiss
	best := 0
	matched := false
	for _, r := range alive {
		if sc := b.rules[r].score; !matched || sc > best {
			matched = true
			best = sc
			win = -b.rules[r].ent - 2
		}
	}
	return win
}

func ivalsContain(ivs []fddIval, v uint64) bool {
	for _, iv := range ivs {
		if v >= iv.lo && v <= iv.hi {
			return true
		}
	}
	return false
}

func dedupU64(s []uint64) []uint64 {
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// memoKey encodes (level, alive set) compactly.
func memoKey(level int, alive []int32) string {
	buf := make([]byte, 0, 1+4*len(alive))
	buf = append(buf, byte(level))
	for _, r := range alive {
		buf = append(buf, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(buf)
}

// Static key widths -----------------------------------------------------

// staticBits computes the statically-known width of a table-key
// expression, mirroring the runtime width rules of ops.go and the
// evaluators: comparisons/logicals yield bit<1>, shifts keep the left
// operand's width, other binary operators widen to the larger operand
// (0 promoting to 64), casts fix their width, field references take
// their declared width. ok=false means the width can depend on runtime
// state (undeclared names pick up the width of whatever was last
// assigned), which makes the table FDD-ineligible; match-time width
// checks make any residual misjudgment here harmless.
func (cc *compiler) staticBits(e p4.Expr) (int, bool) {
	switch x := e.(type) {
	case *p4.IntLit:
		if x.Bits == 0 {
			return 64, true
		}
		return x.Bits, true
	case *p4.FieldRef:
		// Table keys compile at apply-level scope (no action frames),
		// so the name is a global; declared widths are sticky on every
		// assignment path, undeclared names are dynamically typed.
		if b := cc.s.fields[x.String()]; b != 0 {
			return b, true
		}
		return 0, false
	case *p4.Bin:
		switch x.Op {
		case "==", "!=", "<", "<=", ">", ">=", "s<", "s<=", "s>", "s>=", "&&", "||":
			return 1, true
		case "<<", ">>", "s>>":
			return cc.staticBits(x.X)
		default:
			xb, xok := cc.staticBits(x.X)
			yb, yok := cc.staticBits(x.Y)
			if !xok || !yok {
				return 0, false
			}
			return combinedBits(val{bits: xb}, val{bits: yb}), true
		}
	case *p4.Un:
		if x.Op == "!" {
			return 1, true
		}
		return cc.staticBits(x.X)
	case *p4.Cast:
		return x.Bits, true
	case *p4.TernaryExpr:
		ab, aok := cc.staticBits(x.A)
		bb, bok := cc.staticBits(x.B)
		if aok && bok && ab == bb {
			return ab, true
		}
		return 0, false
	case *p4.CallExpr:
		if x.Method == "isValid" {
			return 1, true
		}
		// Hash gets always yield the declared width; every other call
		// has an error path of a different width (val{0,32}).
		if h := cc.hashDecl(x.Recv); h != nil && x.Method == "get" {
			return h.Bits, true
		}
		return 0, false
	}
	return 0, false
}
