package bmv2

// Hash algorithm implementations used by the Hash externs. They hash
// the concatenated big-endian byte representation of the input fields,
// matching how P4 hash externs consume field lists.

// crc16 implements CRC-16/ARC (poly 0x8005, reflected), the default
// "crc16" of P4 targets.
func crc16(data []byte) uint64 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xA001
			} else {
				crc >>= 1
			}
		}
	}
	return uint64(crc)
}

// crc32IEEE implements the standard reflected CRC-32.
func crc32IEEE(data []byte) uint64 {
	crc := ^uint32(0)
	for _, b := range data {
		crc ^= uint32(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	return uint64(^crc)
}

// crc64ECMA implements CRC-64/ECMA-182 (unreflected).
func crc64ECMA(data []byte) uint64 {
	const poly = 0x42F0E1EBA9EA3693
	var crc uint64
	for _, b := range data {
		crc ^= uint64(b) << 56
		for i := 0; i < 8; i++ {
			if crc&(1<<63) != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// xor16 folds the input into 16 bits by xor.
func xor16(data []byte) uint64 {
	var h uint16
	for i := 0; i < len(data); i += 2 {
		v := uint16(data[i]) << 8
		if i+1 < len(data) {
			v |= uint16(data[i+1])
		}
		h ^= v
	}
	return uint64(h)
}

// csum16 is the ones-complement 16-bit checksum.
func csum16(data []byte) uint64 {
	var sum uint32
	for i := 0; i < len(data); i += 2 {
		v := uint32(data[i]) << 8
		if i+1 < len(data) {
			v |= uint32(data[i+1])
		}
		sum += v
		sum = (sum & 0xFFFF) + sum>>16
	}
	return uint64(^uint16(sum))
}

// identityHash concatenates the low bytes of the input.
func identityHash(data []byte) uint64 {
	var h uint64
	for _, b := range data {
		h = h<<8 | uint64(b)
	}
	return h
}

// hashBytes dispatches by algorithm name.
func hashBytes(algo string, data []byte) uint64 {
	switch algo {
	case "crc16":
		return crc16(data)
	case "crc32":
		return crc32IEEE(data)
	case "crc64":
		return crc64ECMA(data)
	case "xor16":
		return xor16(data)
	case "csum16", "csum16r":
		return csum16(data)
	case "identity":
		return identityHash(data)
	}
	// Unknown algorithms degrade to crc32 (mirrors target permissiveness).
	return crc32IEEE(data)
}
