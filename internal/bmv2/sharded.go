package bmv2

// sharded.go runs one compiled Switch on many cores: an RSS-style
// dispatcher hashes each packet's flow identity onto N worker shards,
// each draining a bounded FIFO with a pooled machine. The model
// mirrors an RMT ASIC's parallel pipes:
//
//   - Packets with equal flow keys serialize on one shard, so every
//     stateful register slot a flow touches is accessed by exactly one
//     goroutine and per-flow results are byte-identical to a
//     single-shard run (the shard-by-flow invariant).
//   - Packets of disjoint flows run in parallel; their relative order
//     is load-dependent, exactly as on hardware pipes.
//   - Table state is read through RCU snapshots (table.go), so the
//     control plane can mutate tables mid-traffic without stalling any
//     shard. Register reads/writes from the control plane instead
//     quiesce all shards (a stop-the-world barrier), because registers
//     are written by the data path and cannot be snapshotted.
//
// The flow key function is the caller's contract: two packets that may
// touch the same register cell must map to the same key. A nil key
// function serializes everything on shard 0, which is always safe.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"netcl/internal/p4"
)

// FlowKeyFunc extracts a packet's flow identity — the header fields
// that select its register/lookup slots (e.g. AGG's pool index, the
// CACHE key). Packets that can touch the same stateful slot MUST map
// to the same key.
type FlowKeyFunc func(pkt []byte) uint64

// ShardedConfig parameterizes a sharded engine.
type ShardedConfig struct {
	// Shards is the number of worker goroutines (default 1).
	Shards int
	// QueueDepth bounds each shard's FIFO (default 256). A full queue
	// makes Submit fail fast — open-loop backpressure.
	QueueDepth int
	// FlowKey maps a packet to its flow identity. nil sends every
	// packet to shard 0 (safe, serial).
	FlowKey FlowKeyFunc
	// Burst caps how many queued jobs a worker drains per channel
	// wakeup and runs through one ProcessBurst (default MaxBurst;
	// 1 disables bursting). Per-flow FIFO order is unaffected.
	Burst int
}

// ShardStats are one shard's counters.
type ShardStats struct {
	Processed uint64 // packets fully processed by this shard
	QueueFull uint64 // Submit rejections while this shard's queue was full
}

// ShardedStats aggregates engine counters.
type ShardedStats struct {
	Shards    []ShardStats
	Processed uint64
	QueueFull uint64
}

type shardJob struct {
	data []byte
	port int
	done func(*Result, error)
	ctl  func() // control token: quiesce barrier
}

type shard struct {
	ch        chan shardJob
	processed uint64
	queueFull uint64
}

// Sharded is the flow-parallel front end of one compiled Switch.
type Sharded struct {
	sw     *Switch
	key    FlowKeyFunc
	burst  int
	shards []*shard

	// mu serializes quiesce operations (control-plane register access,
	// Drain) against each other and against Close.
	mu     sync.Mutex
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewSharded wraps a compiled switch in an n-shard dispatcher. The
// reference engine shares per-packet state maps across calls, so only
// the compiled engine may be sharded.
func NewSharded(sw *Switch, cfg ShardedConfig) (*Sharded, error) {
	if !sw.Compiled() {
		return nil, fmt.Errorf("sharded: switch is not on the compiled engine (compile error: %v)", sw.CompileErr())
	}
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	burst := cfg.Burst
	if burst <= 0 || burst > MaxBurst {
		burst = MaxBurst
	}
	sh := &Sharded{sw: sw, key: cfg.FlowKey, burst: burst}
	for i := 0; i < n; i++ {
		s := &shard{ch: make(chan shardJob, depth)}
		sh.shards = append(sh.shards, s)
		sh.wg.Add(1)
		go sh.worker(s)
	}
	return sh, nil
}

// Switch returns the underlying switch (e.g. for reading counters
// after Close).
func (sh *Sharded) Switch() *Switch { return sh.sw }

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// worker drains its FIFO in opportunistic bursts: each channel wakeup
// collects up to sh.burst already-queued jobs (never blocking for
// more) and runs them through one ProcessBurst — one machine checkout,
// one generation pin, batched counters. Channel FIFO order is
// preserved, so per-flow ordering and the quiesce barrier semantics
// are exactly those of the one-job-at-a-time loop: a control token
// encountered mid-drain stops the fill, the collected burst flushes
// first (those jobs were queued before the token), then the token
// parks the worker. Result/error slots live in worker-local arrays
// reused across bursts — a done callback may use its *Result only
// until it returns, which every existing caller already honors.
func (sh *Sharded) worker(s *shard) {
	defer sh.wg.Done()
	var (
		jobs  = make([]shardJob, 0, sh.burst)
		data  = make([][]byte, sh.burst)
		ports = make([]int, sh.burst)
		res   = make([]Result, sh.burst)
		errs  = make([]error, sh.burst)
	)
	for j := range s.ch {
		if j.ctl != nil {
			j.ctl()
			continue
		}
		jobs = append(jobs[:0], j)
		var ctl func()
	fill:
		for len(jobs) < sh.burst {
			select {
			case j2, ok := <-s.ch:
				if !ok {
					break fill
				}
				if j2.ctl != nil {
					ctl = j2.ctl
					break fill
				}
				jobs = append(jobs, j2)
			default:
				break fill
			}
		}
		n := len(jobs)
		for i := range jobs {
			data[i], ports[i] = jobs[i].data, jobs[i].port
		}
		sh.sw.ProcessBurst(data[:n], ports[:n], res[:n], errs[:n])
		atomic.AddUint64(&s.processed, uint64(n))
		for i := range jobs {
			data[i] = nil // release the caller's buffer reference
			if jobs[i].done == nil {
				continue
			}
			if errs[i] != nil {
				jobs[i].done(nil, errs[i])
			} else {
				jobs[i].done(&res[i], nil)
			}
		}
		if ctl != nil {
			ctl()
		}
	}
}

// mix64 is the splitmix64 finalizer: flow keys are often small dense
// integers (pool indices), and the mixer spreads them evenly over
// shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf reports which shard a packet would run on.
func (sh *Sharded) ShardOf(pkt []byte) int {
	if sh.key == nil || len(sh.shards) == 1 {
		return 0
	}
	return int(mix64(sh.key(pkt)) % uint64(len(sh.shards)))
}

// Submit enqueues a packet on its flow's shard without blocking. done
// (optional) runs on the shard goroutine after processing — it must be
// fast and must not call back into Sharded. The packet buffer is
// retained until done returns. Submit reports false — and counts a
// queue-full drop — when the shard's queue is full or the engine is
// closed; the caller decides whether to drop or retry (open loop vs
// closed loop).
//
// Per-flow FIFO order is guaranteed only among packets submitted from
// one goroutine; submitting one flow from many goroutines makes the
// arrival order itself ambiguous.
func (sh *Sharded) Submit(pkt []byte, done func(*Result, error)) bool {
	return sh.SubmitPort(pkt, 0, done)
}

// SubmitPort is Submit with an explicit ingress port, published to the
// program as meta.ingress_port.
func (sh *Sharded) SubmitPort(pkt []byte, inPort int, done func(*Result, error)) bool {
	if sh.closed.Load() {
		return false
	}
	s := sh.shards[sh.ShardOf(pkt)]
	select {
	case s.ch <- shardJob{data: pkt, port: inPort, done: done}:
		return true
	default:
		atomic.AddUint64(&s.queueFull, 1)
		return false
	}
}

// quiesce parks every shard at a barrier, runs fn with exclusive
// access to all switch state, then releases the shards. Queued packets
// submitted before the call are processed first (channel FIFO), so
// quiesce doubles as a drain barrier.
func (sh *Sharded) quiesce(fn func()) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed.Load() {
		// Workers are gone; the caller already has exclusive access.
		fn()
		return
	}
	var parked, release sync.WaitGroup
	release.Add(1)
	parked.Add(len(sh.shards))
	tok := shardJob{ctl: func() {
		parked.Done()
		release.Wait()
	}}
	for _, s := range sh.shards {
		s.ch <- tok
	}
	parked.Wait()
	fn()
	release.Done()
}

// Drain blocks until every packet submitted before the call has been
// processed.
func (sh *Sharded) Drain() { sh.quiesce(func() {}) }

// Close drains the queues, stops the workers, and marks the engine
// closed. Submit must not race with Close from another goroutine
// unless the submitter tolerates false.
func (sh *Sharded) Close() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed.Swap(true) {
		return
	}
	for _, s := range sh.shards {
		close(s.ch)
	}
	sh.wg.Wait()
}

// Stats snapshots the per-shard counters. Call after Drain (or Close)
// for totals consistent with submissions.
func (sh *Sharded) Stats() ShardedStats {
	st := ShardedStats{}
	for _, s := range sh.shards {
		ss := ShardStats{
			Processed: atomic.LoadUint64(&s.processed),
			QueueFull: atomic.LoadUint64(&s.queueFull),
		}
		st.Shards = append(st.Shards, ss)
		st.Processed += ss.Processed
		st.QueueFull += ss.QueueFull
	}
	return st
}

// Control plane --------------------------------------------------------
//
// Table mutations go straight to the switch: they publish RCU
// snapshots and never disturb the shards. Register access quiesces the
// data path first, because register cells are plain memory owned by
// whichever shard the flow hashes to.

// Write applies a batch transactionally. Pure table batches publish
// their generation lock-free; a batch containing register writes
// quiesces the shards first, so the registers and the rule set change
// in one atomic step with respect to the data path.
func (sh *Sharded) Write(b *WriteBatch) (res *WriteResult, err error) {
	if b != nil && b.hasRegisterWrites() {
		sh.quiesce(func() { res, err = sh.sw.Write(b) })
		return res, err
	}
	return sh.sw.Write(b)
}

// RegisterRead reads a register cell with the data path quiesced.
func (sh *Sharded) RegisterRead(name string, idx int) (v uint64, err error) {
	sh.quiesce(func() { v, err = sh.sw.RegisterRead(name, idx) })
	return v, err
}

// RegisterWrite writes a register cell with the data path quiesced.
func (sh *Sharded) RegisterWrite(name string, idx int, v uint64) (err error) {
	sh.quiesce(func() { err = sh.sw.RegisterWrite(name, idx, v) })
	return err
}

// InsertEntry publishes a table entry (lock-free for the data path).
func (sh *Sharded) InsertEntry(table string, e *p4.Entry) error {
	return sh.sw.InsertEntry(table, e)
}

// DeleteEntry removes entries matching the full key tuple.
func (sh *Sharded) DeleteEntry(table string, keyVals ...uint64) int {
	return sh.sw.DeleteEntry(table, keyVals...)
}

// SetDefaultAction replaces a table's default action.
func (sh *Sharded) SetDefaultAction(table, action string, args []uint64) error {
	return sh.sw.SetDefaultAction(table, action, args)
}
