package bmv2

// ops.go holds the operator semantics of the P4 subset as a table of
// pure functions over typed vals. Both engines — the reference
// tree-walker's evalBin/eval and the compiled engine's closure trees —
// dispatch through this single table, so arithmetic behavior cannot
// diverge between them.

// maskOf returns the value mask of a width (bits<=0 or >=64: full).
func maskOf(bits int) uint64 {
	if bits >= 64 || bits <= 0 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(bits)) - 1
}

// combinedBits is the result-width rule of binary operators: the wider
// operand, with width 0 promoting to 64.
func combinedBits(a, b val) int {
	bits := a.bits
	if b.bits > bits {
		bits = b.bits
	}
	if bits == 0 {
		bits = 64
	}
	return bits
}

func boolVal(c bool) val {
	if c {
		return val{1, 1}
	}
	return val{0, 1}
}

// binOps maps a P4 binary operator token to its semantics. Division
// and modulo by zero yield zero (the interpreter's total semantics);
// shifts keep the left operand's width; comparisons yield bit<1>.
var binOps = map[string]func(a, b val) val{
	"+": func(a, b val) val {
		bits := combinedBits(a, b)
		return val{(a.wrapped() + b.wrapped()) & maskOf(bits), bits}
	},
	"-": func(a, b val) val {
		bits := combinedBits(a, b)
		return val{(a.wrapped() - b.wrapped()) & maskOf(bits), bits}
	},
	"*": func(a, b val) val {
		bits := combinedBits(a, b)
		return val{(a.wrapped() * b.wrapped()) & maskOf(bits), bits}
	},
	"/": func(a, b val) val {
		bits := combinedBits(a, b)
		bu := b.wrapped()
		if bu == 0 {
			return val{0, bits}
		}
		return val{(a.wrapped() / bu) & maskOf(bits), bits}
	},
	"s/": func(a, b val) val {
		bits := combinedBits(a, b)
		bs := b.signed()
		if bs == 0 {
			return val{0, bits}
		}
		return val{uint64(a.signed()/bs) & maskOf(bits), bits}
	},
	"%": func(a, b val) val {
		bits := combinedBits(a, b)
		bu := b.wrapped()
		if bu == 0 {
			return val{0, bits}
		}
		return val{(a.wrapped() % bu) & maskOf(bits), bits}
	},
	"s%": func(a, b val) val {
		bits := combinedBits(a, b)
		bs := b.signed()
		if bs == 0 {
			return val{0, bits}
		}
		return val{uint64(a.signed()%bs) & maskOf(bits), bits}
	},
	"&": func(a, b val) val {
		return val{a.wrapped() & b.wrapped(), combinedBits(a, b)}
	},
	"|": func(a, b val) val {
		return val{a.wrapped() | b.wrapped(), combinedBits(a, b)}
	},
	"^": func(a, b val) val {
		return val{a.wrapped() ^ b.wrapped(), combinedBits(a, b)}
	},
	"<<": func(a, b val) val {
		bu := b.wrapped()
		if bu > 63 {
			return val{0, a.bits}
		}
		return val{(a.wrapped() << bu) & a.mask(), a.bits}
	},
	">>": func(a, b val) val {
		bu := b.wrapped()
		if bu > 63 {
			return val{0, a.bits}
		}
		return val{a.wrapped() >> bu, a.bits}
	},
	"s>>": func(a, b val) val {
		sh := b.wrapped()
		if sh > 63 {
			sh = 63
		}
		return val{uint64(a.signed()>>sh) & a.mask(), a.bits}
	},
	"|+|": func(a, b val) val {
		bits := combinedBits(a, b)
		mask := maskOf(bits)
		au := a.wrapped()
		sum := au + b.wrapped()
		if sum > mask || sum < au {
			sum = mask
		}
		return val{sum & mask, bits}
	},
	"|-|": func(a, b val) val {
		bits := combinedBits(a, b)
		au, bu := a.wrapped(), b.wrapped()
		if bu > au {
			return val{0, bits}
		}
		return val{au - bu, bits}
	},
	"==":  func(a, b val) val { return boolVal(a.wrapped() == b.wrapped()) },
	"!=":  func(a, b val) val { return boolVal(a.wrapped() != b.wrapped()) },
	"<":   func(a, b val) val { return boolVal(a.wrapped() < b.wrapped()) },
	"<=":  func(a, b val) val { return boolVal(a.wrapped() <= b.wrapped()) },
	">":   func(a, b val) val { return boolVal(a.wrapped() > b.wrapped()) },
	">=":  func(a, b val) val { return boolVal(a.wrapped() >= b.wrapped()) },
	"s<":  func(a, b val) val { return boolVal(a.signed() < b.signed()) },
	"s<=": func(a, b val) val { return boolVal(a.signed() <= b.signed()) },
	"s>":  func(a, b val) val { return boolVal(a.signed() > b.signed()) },
	"s>=": func(a, b val) val { return boolVal(a.signed() >= b.signed()) },
	"&&":  func(a, b val) val { return boolVal(a.wrapped() != 0 && b.wrapped() != 0) },
	"||":  func(a, b val) val { return boolVal(a.wrapped() != 0 || b.wrapped() != 0) },
}

// unOps maps a unary operator token to its semantics; unknown tokens
// pass the operand through unchanged.
var unOps = map[string]func(v val) val{
	"~": func(v val) val { return val{^v.wrapped() & v.mask(), v.bits} },
	"-": func(v val) val { return val{(0 - v.wrapped()) & v.mask(), v.bits} },
	"!": func(v val) val { return boolVal(v.wrapped() == 0) },
}
