// Package bmv2 executes P4 AST programs on packets, in the spirit of
// the p4lang behavioral model: a software switch that runs any valid
// program of our P4 subset. It serves as the testbed substrate for the
// paper's end-to-end experiments (§VII) — both generated and
// handwritten P4 run on this same interpreter.
package bmv2

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"netcl/internal/p4"
)

// val is a typed interpreter value.
type val struct {
	v    uint64
	bits int
}

func (x val) mask() uint64 {
	if x.bits >= 64 || x.bits <= 0 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(x.bits)) - 1
}

func (x val) wrapped() uint64 { return x.v & x.mask() }

func (x val) signed() int64 {
	u := x.wrapped()
	if x.bits > 0 && x.bits < 64 && u>>(uint(x.bits)-1) != 0 {
		return int64(u | ^x.mask())
	}
	return int64(u)
}

// Engine selects the packet-processing implementation of a Switch.
type Engine int

// Engines. EngineCompiled is the slot-indexed prepare/execute engine
// (compile.go); EngineReference is the original tree-walking
// interpreter, kept both as the semantic oracle for differential tests
// and as the fallback for programs the compiler refuses.
const (
	EngineCompiled Engine = iota
	EngineReference
)

// Switch is an executable P4 switch instance with mutable runtime
// state (registers, table entries, multicast groups).
//
// Concurrency: on the compiled engine, control-plane table mutations
// (Write batches and the single-op wrappers InsertEntry/DeleteEntry/
// ClearEntries/SetDefaultAction/SortEntriesByPriority) are safe to
// call concurrently with packet processing — they serialize on the
// writer mutex and publish immutable rule-set generations the data
// path reads lock-free (RCU, see table.go and batch.go); a packet
// pins one generation, so a batch is observed all-or-nothing.
// Register cells are plain memory: concurrent packet processing is
// safe only when packets touching the same cell run on the same
// goroutine (the shard-by-flow invariant; see Sharded), and
// control-plane register access against in-flight packets must
// quiesce the data path (Sharded does). The reference engine is
// single-goroutine only.
type Switch struct {
	Prog *p4.Program

	// mu is the control-plane writer lock: it serializes mutations of
	// the entry lists and register cells against each other. The data
	// path never takes it.
	mu sync.Mutex

	regs    map[string]*regfile
	entries map[string]*entrySet
	fields  map[string]int // field path -> bits (headers, metadata, locals, params)
	rng     uint64         // updated via CAS: the random extern must stay race-free under sharding

	prog       *cprog // compiled form; nil when compilation was refused
	compileErr error
	engine     Engine
	fddOff     bool // disables decision-diagram matchers (bench knob)

	// Counters for observability and tests, updated atomically.
	PacketsIn, PacketsOut, PacketsDropped uint64
}

// Result reports the outcome of processing one packet.
type Result struct {
	Data    []byte
	Port    int
	Mcast   int
	Dropped bool
	NoMatch bool // no egress selected
}

// New instantiates a switch for a program.
func New(prog *p4.Program) *Switch {
	s := &Switch{
		Prog:    prog,
		regs:    map[string]*regfile{},
		entries: map[string]*entrySet{},
		fields:  map[string]int{},
		rng:     0x9E3779B97F4A7C15,
	}
	controls := []*p4.Control{prog.Ingress}
	if prog.Egress != nil {
		controls = append(controls, prog.Egress)
	}
	for _, c := range controls {
		for _, r := range c.Registers {
			s.regs[r.Name] = newRegfile(r.Size, r.Bits, r.Init)
		}
		for _, t := range c.Tables {
			es := s.entries[t.Name]
			if es == nil {
				es = &entrySet{}
				s.entries[t.Name] = es
			}
			for _, e := range t.Entries {
				es.insert(e)
			}
		}
		for _, l := range c.Locals {
			s.fields[l.Name] = l.Bits
		}
	}
	for _, h := range prog.Headers {
		for _, f := range h.Fields {
			s.fields["hdr."+h.Name+"."+f.Name] = f.Bits
		}
	}
	for _, f := range prog.Metadata {
		s.fields["meta."+f.Name] = f.Bits
	}
	// Prepare step: compile the program to its slot-indexed form. On
	// refusal (constructs needing dynamic scoping, malformed graphs)
	// the switch silently runs the reference engine instead.
	s.prog, s.compileErr = compileProgram(s)
	return s
}

// SetEngine selects the processing engine. Selecting EngineCompiled on
// a switch whose program failed to compile keeps the reference engine.
func (s *Switch) SetEngine(e Engine) { s.engine = e }

// Compiled reports whether packets run on the compiled engine.
func (s *Switch) Compiled() bool { return s.prog != nil && s.engine == EngineCompiled }

// SetFDD enables or disables the decision-diagram matchers (fdd.go)
// and republishes every table snapshot accordingly. Diagrams are on by
// default; the knob exists so benchmarks can isolate the FDD delta.
// Safe to call concurrently with packet processing (RCU publication).
func (s *Switch) SetFDD(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fddOff == !on {
		return
	}
	s.fddOff = !on
	if s.prog == nil {
		return
	}
	snaps := make([]*tsnap, len(s.prog.tabs))
	for i, tb := range s.prog.tabs {
		snaps[i] = tb.build()
	}
	s.prog.gen.Store(&generation{snaps: snaps})
}

// CompileErr returns the reason compilation was refused, or nil.
func (s *Switch) CompileErr() error { return s.compileErr }

// Control plane --------------------------------------------------------

// RegisterRead returns a register cell. Serialized against other
// control-plane calls; concurrent in-flight packets must be quiesced
// by the caller (Sharded.RegisterRead does).
func (s *Switch) RegisterRead(name string, idx int) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rf, ok := s.regs[name]
	if !ok {
		return 0, fmt.Errorf("no register %q", name)
	}
	if idx < 0 || idx >= rf.size {
		return 0, fmt.Errorf("register %q index %d out of range", name, idx)
	}
	return rf.load(idx), nil
}

// RegisterWrite sets a register cell. Serialized against other
// control-plane calls; concurrent in-flight packets must be quiesced
// by the caller (Sharded.RegisterWrite does).
func (s *Switch) RegisterWrite(name string, idx int, v uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rf, ok := s.regs[name]
	if !ok {
		return fmt.Errorf("no register %q", name)
	}
	if idx < 0 || idx >= rf.size {
		return fmt.Errorf("register %q index %d out of range", name, idx)
	}
	rf.store(idx, v)
	return nil
}

// ReadRegisters returns a snapshot of every cell of one register file:
// the bulk drain used by failover (read the crashed device's pool
// state once, replay it into a standby via one WriteBatch) instead of
// one RegisterRead round trip per cell. Unmaterialized pages read as
// zero, exactly like the data path. Serialized against other
// control-plane calls; concurrent in-flight packets must be quiesced
// by the caller.
func (s *Switch) ReadRegisters(name string) ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rf, ok := s.regs[name]
	if !ok {
		return nil, fmt.Errorf("no register %q", name)
	}
	out := make([]uint64, rf.size)
	for i := range out {
		out[i] = rf.load(i)
	}
	return out, nil
}

// RegisterNames returns the switch's register names in sorted order:
// the enumeration half of a full state drain.
func (s *Switch) RegisterNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.regs))
	for name := range s.regs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RegisterSize returns the number of cells, or -1.
func (s *Switch) RegisterSize(name string) int {
	if rf, ok := s.regs[name]; ok {
		return rf.size
	}
	return -1
}

// InsertEntry adds a runtime table entry: a single-op batch, kept for
// callers that don't need transactions.
func (s *Switch) InsertEntry(table string, e *p4.Entry) error {
	_, err := s.Write(NewWriteBatch().Insert(table, e))
	return unwrapBatch(err)
}

// DeleteEntry removes entries whose key values equal the given tuple:
// an entry is deleted only when every key value matches, so multi-key
// tables are no longer mass-deleted by a first-key collision. A
// single-op batch, kept for callers that don't need transactions.
func (s *Switch) DeleteEntry(table string, keyVals ...uint64) int {
	res, err := s.Write(NewWriteBatch().Delete(table, keyVals...))
	if err != nil {
		return 0 // delete ops never fail a batch; defensive only
	}
	return res.Removed[0]
}

// unwrapBatch strips the op index off a single-op batch failure, so
// deprecated wrappers keep returning their historical error text.
func unwrapBatch(err error) error {
	if be, ok := err.(*BatchError); ok {
		return be.Err
	}
	return err
}

// entryKeysEqual reports whether the entry's key values equal the
// tuple exactly (same arity, all values equal).
func entryKeysEqual(e *p4.Entry, keyVals []uint64) bool {
	if len(keyVals) == 0 || len(e.Keys) != len(keyVals) {
		return false
	}
	for i, kv := range keyVals {
		if e.Keys[i].Value != kv {
			return false
		}
	}
	return true
}

// ClearEntries removes all runtime entries of a table.
func (s *Switch) ClearEntries(table string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if es := s.entries[table]; es != nil {
		*es = entrySet{}
	}
	s.republishTables(table)
}

// SetDefaultAction overrides a table's default action (the control
// plane configures e.g. the AGG baseline's worker count this way). A
// single-op batch, kept for callers that don't need transactions.
func (s *Switch) SetDefaultAction(table, action string, args []uint64) error {
	_, err := s.Write(NewWriteBatch().SetDefault(table, action, args))
	return unwrapBatch(err)
}

// republishTables fully rebuilds the snapshot of every compiled table
// sharing the name and publishes one new generation. The O(table)
// path, reserved for whole-table mutations (clear, sort); incremental
// changes go through Write's O(delta) staging instead. Callers hold
// s.mu (or run single-threaded at construction time).
func (s *Switch) republishTables(table string) {
	if s.prog == nil {
		return
	}
	tbs := s.prog.tablesByName[table]
	if len(tbs) == 0 {
		return
	}
	cur := s.prog.gen.Load()
	snaps := append([]*tsnap(nil), cur.snaps...)
	for _, tb := range tbs {
		snaps[tb.gslot] = tb.build()
	}
	s.prog.gen.Store(&generation{snaps: snaps})
}

// Entries returns a copy of a table's current entries (live entries
// in insertion order).
func (s *Switch) Entries(table string) []*p4.Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	es := s.entries[table]
	if es == nil {
		return nil
	}
	out := make([]*p4.Entry, 0, es.live)
	for _, e := range es.ents {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// nextRand steps the random-extern LCG with a CAS loop: single-
// threaded runs produce the exact reference sequence, while sharded
// runs stay race-free (cross-shard draw order is load-dependent, like
// hardware RNG externs).
func (s *Switch) nextRand() uint64 {
	for {
		old := atomic.LoadUint64(&s.rng)
		next := old*6364136223846793005 + 1442695040888963407
		if atomic.CompareAndSwapUint64(&s.rng, old, next) {
			return next
		}
	}
}

func (s *Switch) findTable(name string) *p4.Table {
	if t := s.Prog.Ingress.TableByName(name); t != nil {
		return t
	}
	if s.Prog.Egress != nil {
		return s.Prog.Egress.TableByName(name)
	}
	return nil
}

// Packet processing ----------------------------------------------------

// exec carries per-packet state.
type exec struct {
	s       *Switch
	env     map[string]val
	valid   map[string]bool
	ordered []string // extracted header order
	payload []byte
	exited  bool
	frames  []map[string]val // action parameter frames
}

// Process runs one packet through parser, ingress, (egress,) deparser
// on the selected engine. inPort is published to the program as
// meta.ingress_port before parsing (both engines, identical widths).
func (s *Switch) Process(data []byte, inPort int) (*Result, error) {
	if s.prog != nil && s.engine == EngineCompiled {
		return s.prog.process(data, inPort)
	}
	return s.processReference(data, inPort)
}

// ProcessInto runs one packet like Process but fills a caller-owned
// Result in place, reusing res.Data's capacity for the deparse output
// instead of allocating a fresh buffer per packet. res.Data must not
// alias the input packet (headers are rewritten before the payload is
// copied out of the input). Dropped packets leave res.Data nil; error
// returns leave res unspecified. Semantics and counters otherwise
// match Process exactly.
func (s *Switch) ProcessInto(data []byte, inPort int, res *Result) error {
	if s.prog != nil && s.engine == EngineCompiled {
		return s.prog.processInto(data, inPort, res)
	}
	r, err := s.processReference(data, inPort)
	if err != nil {
		return err
	}
	d := res.Data
	*res = *r
	if r.Data != nil {
		res.Data = append(d[:0], r.Data...)
	} else {
		res.Data = nil
	}
	return nil
}

// MaxBurst is the largest batch ProcessBurst handles per machine
// checkout; Sharded workers drain up to this many queued jobs per
// channel wakeup.
const MaxBurst = 32

// ProcessBurst runs len(pkts) packets through the pipeline, writing
// outcome i into res[i]/errs[i] (res[i] is zeroed when errs[i] is
// non-nil). ports may be nil (all packets enter on port 0). res and
// errs must be at least len(pkts) long; bursts beyond MaxBurst are
// processed in chunks. On the compiled engine a burst shares one
// machine checkout and one rule-set generation pin and folds counter
// updates into one atomic add per counter — per-packet semantics are
// byte-identical to calling Process in a loop. Result slots belong to
// the caller: reusing the slices across bursts is the zero-alloc
// pattern (see Sharded's worker loop).
func (s *Switch) ProcessBurst(pkts [][]byte, ports []int, res []Result, errs []error) {
	if s.prog != nil && s.engine == EngineCompiled {
		for len(pkts) > MaxBurst {
			s.prog.processBurst(pkts[:MaxBurst], ports, res[:MaxBurst], errs[:MaxBurst])
			pkts, res, errs = pkts[MaxBurst:], res[MaxBurst:], errs[MaxBurst:]
			if ports != nil {
				ports = ports[MaxBurst:]
			}
		}
		s.prog.processBurst(pkts, ports, res, errs)
		return
	}
	for i, pkt := range pkts {
		port := 0
		if ports != nil {
			port = ports[i]
		}
		r, err := s.processReference(pkt, port)
		if err != nil {
			res[i], errs[i] = Result{}, err
			continue
		}
		res[i], errs[i] = *r, nil
	}
}

// processReference is the original tree-walking interpreter: the
// semantic oracle the compiled engine must match byte for byte.
func (s *Switch) processReference(data []byte, inPort int) (*Result, error) {
	atomic.AddUint64(&s.PacketsIn, 1)
	ex := &exec{s: s, env: map[string]val{}, valid: map[string]bool{}}
	for _, f := range s.Prog.Metadata {
		ex.env["meta."+f.Name] = val{0, f.Bits}
	}
	// The ingress port is program-visible metadata, set before parsing
	// (a parser select may read it). Width rules match the compiled
	// engine exactly: the declared width, or dynamic when undeclared.
	ex.env["meta.ingress_port"] = val{uint64(inPort), s.fields["meta.ingress_port"]}
	if err := ex.parse(data); err != nil {
		return nil, err
	}
	if err := ex.control(s.Prog.Ingress); err != nil {
		return nil, err
	}
	if s.Prog.Egress != nil && !ex.exited {
		if err := ex.control(s.Prog.Egress); err != nil {
			return nil, err
		}
	}
	res := &Result{
		Port:  int(ex.env["meta.egress_port"].wrapped()),
		Mcast: int(ex.env["meta.mcast_grp"].wrapped()),
	}
	if ex.env["meta.drop_flag"].wrapped() != 0 {
		res.Dropped = true
		atomic.AddUint64(&s.PacketsDropped, 1)
		return res, nil
	}
	res.Data = ex.deparse()
	if res.Port == 0 && res.Mcast == 0 {
		res.NoMatch = true
	}
	atomic.AddUint64(&s.PacketsOut, 1)
	return res, nil
}

// parse walks the parser FSM.
func (ex *exec) parse(data []byte) error {
	rest := data
	state := ex.s.Prog.Parser.StateByName("start")
	for steps := 0; state != nil; steps++ {
		if steps > 64 {
			return fmt.Errorf("parser loop")
		}
		for _, hn := range state.Extracts {
			h := ex.s.Prog.HeaderByName(hn)
			if h == nil {
				return fmt.Errorf("parser extracts unknown header %q", hn)
			}
			nbytes := h.Bits() / 8
			if len(rest) < nbytes {
				return fmt.Errorf("packet too short for header %q (%d < %d)", hn, len(rest), nbytes)
			}
			bitOff := 0
			for _, f := range h.Fields {
				v := extractBits(rest, bitOff, f.Bits)
				ex.env["hdr."+hn+"."+f.Name] = val{v, f.Bits}
				bitOff += f.Bits
			}
			rest = rest[nbytes:]
			ex.valid[hn] = true
			ex.ordered = append(ex.ordered, hn)
		}
		next := ""
		if state.Select != nil {
			key := ex.eval(state.Select.Key)
			next = state.Select.Default
			for _, c := range state.Select.Cases {
				if c.Mask != 0 {
					if key.wrapped()&c.Mask == c.Value&c.Mask {
						next = c.State
						break
					}
				} else if key.wrapped() == c.Value {
					next = c.State
					break
				}
			}
		} else {
			next = state.Next
			if next == "" {
				next = "accept"
			}
		}
		switch next {
		case "accept":
			ex.payload = rest
			return nil
		case "reject":
			return fmt.Errorf("parser rejected packet")
		}
		state = ex.s.Prog.Parser.StateByName(next)
		if state == nil {
			return fmt.Errorf("parser transition to unknown state %q", next)
		}
	}
	return nil
}

func extractBits(b []byte, bitOff, bits int) uint64 {
	var v uint64
	for i := 0; i < bits; i++ {
		byteIdx := (bitOff + i) / 8
		bitIdx := 7 - (bitOff+i)%8
		v <<= 1
		if byteIdx < len(b) && b[byteIdx]>>(uint(bitIdx))&1 != 0 {
			v |= 1
		}
	}
	return v
}

// deparse emits valid headers in extraction order plus payload.
func (ex *exec) deparse() []byte {
	var out []byte
	emitted := map[string]bool{}
	emit := func(hn string) {
		if emitted[hn] || !ex.valid[hn] {
			return
		}
		emitted[hn] = true
		h := ex.s.Prog.HeaderByName(hn)
		var cur uint64
		curBits := 0
		for _, f := range h.Fields {
			v := ex.env["hdr."+hn+"."+f.Name]
			remaining := f.Bits
			for remaining > 0 {
				take := 8 - curBits
				if take > remaining {
					take = remaining
				}
				cur = cur<<uint(take) | (v.wrapped()>>(uint(remaining-take)))&((1<<uint(take))-1)
				curBits += take
				remaining -= take
				if curBits == 8 {
					out = append(out, byte(cur))
					cur, curBits = 0, 0
				}
			}
		}
	}
	for _, hn := range ex.ordered {
		emit(hn)
	}
	// Headers made valid by the control (not extracted) follow program
	// order.
	for _, h := range ex.s.Prog.Headers {
		emit(h.Name)
	}
	return append(out, ex.payload...)
}

// control runs a control block's apply body.
func (ex *exec) control(c *p4.Control) error {
	return ex.stmts(c, c.Apply)
}

func (ex *exec) stmts(c *p4.Control, body []p4.Stmt) error {
	for _, st := range body {
		if ex.exited {
			return nil
		}
		if err := ex.stmt(c, st); err != nil {
			return err
		}
	}
	return nil
}

func (ex *exec) stmt(c *p4.Control, st p4.Stmt) error {
	switch x := st.(type) {
	case *p4.Comment:
		return nil
	case *p4.Assign:
		v := ex.eval(x.RHS)
		ex.assign(x.LHS, v)
		return nil
	case *p4.If:
		if ex.eval(x.Cond).wrapped() != 0 {
			return ex.stmts(c, x.Then)
		}
		return ex.stmts(c, x.Else)
	case *p4.ApplyTable:
		hit, err := ex.applyTable(c, x.Table)
		if err != nil {
			return err
		}
		if x.HitVar != "" {
			hv := uint64(0)
			if hit {
				hv = 1
			}
			ex.assign(p4.FR(x.HitVar), val{hv, 1})
		}
		return nil
	case *p4.CallStmt:
		return ex.callStmt(c, x)
	case *p4.SetValid:
		ex.valid[x.Header] = x.Valid
		if x.Valid {
			found := false
			for _, hn := range ex.ordered {
				if hn == x.Header {
					found = true
				}
			}
			if !found {
				ex.ordered = append(ex.ordered, x.Header)
			}
		}
		return nil
	case *p4.Exit:
		ex.exited = true
		return nil
	}
	return fmt.Errorf("unsupported statement %T", st)
}

// assign writes a value through action frames, locals, or fields.
func (ex *exec) assign(fr *p4.FieldRef, v val) {
	name := fr.String()
	if len(ex.frames) > 0 {
		if _, ok := ex.frames[len(ex.frames)-1][name]; ok {
			ex.frames[len(ex.frames)-1][name] = v
			return
		}
	}
	bits := ex.s.fields[name]
	if bits == 0 {
		bits = v.bits
	}
	ex.env[name] = val{v.wrapped(), bits}
}

func (ex *exec) callStmt(c *p4.Control, x *p4.CallStmt) error {
	if x.Recv == "" {
		// Plain action invocation.
		a := c.ActionByName(x.Method)
		if a == nil {
			return fmt.Errorf("unknown action %q", x.Method)
		}
		var args []val
		for _, e := range x.Args {
			args = append(args, ex.eval(e))
		}
		return ex.runAction(c, a, args)
	}
	// Register primitives (v1model style).
	if rf, ok := ex.s.regs[x.Recv]; ok {
		switch x.Method {
		case "read":
			dst, ok := x.Args[0].(*p4.FieldRef)
			if !ok {
				return fmt.Errorf("register read destination must be a field")
			}
			idx := int(ex.eval(x.Args[1]).wrapped())
			var v uint64
			if idx >= 0 && idx < rf.size {
				v = rf.load(idx)
			}
			ex.assign(dst, val{v, ex.s.fields[dst.String()]})
			return nil
		case "write":
			idx := int(ex.eval(x.Args[0]).wrapped())
			v := ex.eval(x.Args[1])
			if idx >= 0 && idx < rf.size {
				rf.store(idx, v.wrapped())
			}
			return nil
		}
	}
	// RegisterAction.execute used as a statement (result discarded).
	if ra := c.RegActByName(x.Recv); ra != nil && x.Method == "execute" {
		_, err := ex.execRegAction(c, ra, x.Args)
		return err
	}
	return fmt.Errorf("unsupported call %s.%s", x.Recv, x.Method)
}

func (ex *exec) runAction(c *p4.Control, a *p4.ActionDecl, args []val) error {
	frame := map[string]val{}
	for i, p := range a.Params {
		var v val
		if i < len(args) {
			v = val{args[i].wrapped(), p.Bits}
		} else {
			v = val{0, p.Bits}
		}
		frame[p.Name] = v
	}
	ex.frames = append(ex.frames, frame)
	err := ex.stmts(c, a.Body)
	ex.frames = ex.frames[:len(ex.frames)-1]
	return err
}

// applyTable matches and executes a table.
func (ex *exec) applyTable(c *p4.Control, name string) (bool, error) {
	t := c.TableByName(name)
	if t == nil {
		return false, fmt.Errorf("unknown table %q", name)
	}
	var keys []val
	for _, k := range t.Keys {
		keys = append(keys, ex.eval(k.Expr))
	}
	var entries []*p4.Entry
	if es := ex.s.entries[name]; es != nil {
		entries = es.ents
	}
	var best *p4.Entry
	// "no match" is tracked explicitly rather than with a sentinel
	// score: ternary/range priorities are subtracted from the score and
	// a large priority would underflow any sentinel, making a matching
	// entry lose to nothing.
	bestScore := 0
	matched := false
	for _, e := range entries {
		if e == nil || len(e.Keys) != len(keys) {
			continue
		}
		ok := true
		score := 0
		for i, kv := range e.Keys {
			kval := keys[i].wrapped()
			switch t.Keys[i].Match {
			case p4.MatchExact:
				if kval != kv.Value {
					ok = false
				}
			case p4.MatchTernary:
				if kval&kv.Mask != kv.Value&kv.Mask {
					ok = false
				}
				score -= e.Priority
			case p4.MatchLPM:
				bits := keys[i].bits
				plen := kv.PrefixLen
				if plen < 0 {
					plen = 0
				}
				if plen > bits {
					ok = false
					break
				}
				shift := uint(bits - plen)
				if plen == 0 || kval>>shift == kv.Value>>shift {
					score = plen
				} else {
					ok = false
				}
			case p4.MatchRange:
				if kval < kv.Value || kval > kv.Hi {
					ok = false
				}
				score -= e.Priority
			}
			if !ok {
				break
			}
		}
		if ok && (!matched || score > bestScore) {
			best = e
			bestScore = score
			matched = true
		}
	}
	if best == nil {
		if t.Default != nil && t.Default.Name != "NoAction" {
			a := c.ActionByName(t.Default.Name)
			if a == nil {
				return false, fmt.Errorf("unknown default action %q", t.Default.Name)
			}
			var args []val
			for _, v := range t.Default.Args {
				args = append(args, val{v, 64})
			}
			if err := ex.runAction(c, a, args); err != nil {
				return false, err
			}
		}
		return false, nil
	}
	if best.Action.Name != "NoAction" {
		a := c.ActionByName(best.Action.Name)
		if a == nil {
			return false, fmt.Errorf("unknown action %q", best.Action.Name)
		}
		var args []val
		for _, v := range best.Action.Args {
			args = append(args, val{v, 64})
		}
		if err := ex.runAction(c, a, args); err != nil {
			return false, err
		}
	}
	return true, nil
}

// execRegAction runs a SALU microprogram.
func (ex *exec) execRegAction(c *p4.Control, ra *p4.RegisterAction, idxArgs []p4.Expr) (val, error) {
	rf := ex.s.regs[ra.Register]
	if rf == nil {
		return val{}, fmt.Errorf("register action %q over unknown register", ra.Name)
	}
	reg := c.RegisterByName(ra.Register)
	idx := 0
	if len(idxArgs) > 0 {
		idx = int(ex.eval(idxArgs[0]).wrapped())
	}
	var m uint64
	if idx >= 0 && idx < rf.size {
		m = rf.load(idx)
	}
	frame := map[string]val{
		"m": {m, reg.Bits},
		"o": {0, reg.Bits},
	}
	ex.frames = append(ex.frames, frame)
	err := ex.stmts(c, ra.Body)
	out := ex.frames[len(ex.frames)-1]
	ex.frames = ex.frames[:len(ex.frames)-1]
	if err != nil {
		return val{}, err
	}
	if idx >= 0 && idx < rf.size {
		rf.store(idx, out["m"].wrapped())
	}
	return out["o"], nil
}

// eval evaluates an expression.
func (ex *exec) eval(e p4.Expr) val {
	switch x := e.(type) {
	case *p4.IntLit:
		b := x.Bits
		if b == 0 {
			b = 64
		}
		return val{x.Val, b}
	case *p4.FieldRef:
		name := x.String()
		// Innermost action frame first (params, m/o of reg actions).
		for i := len(ex.frames) - 1; i >= 0; i-- {
			if v, ok := ex.frames[i][name]; ok {
				return v
			}
		}
		if v, ok := ex.env[name]; ok {
			return v
		}
		return val{0, ex.s.fields[name]}
	case *p4.Bin:
		return ex.evalBin(x)
	case *p4.Un:
		v := ex.eval(x.X)
		if op, ok := unOps[x.Op]; ok {
			return op(v)
		}
		return v
	case *p4.Cast:
		v := ex.eval(x.X)
		if x.Signed && v.bits < x.Bits {
			return val{uint64(v.signed()) & (val{bits: x.Bits}).mask(), x.Bits}
		}
		return val{v.wrapped() & (val{bits: x.Bits}).mask(), x.Bits}
	case *p4.TernaryExpr:
		if ex.eval(x.Cond).wrapped() != 0 {
			return ex.eval(x.A)
		}
		return ex.eval(x.B)
	case *p4.CallExpr:
		v, err := ex.evalCall(x)
		if err != nil {
			// Errors inside expressions surface as zero; callers that
			// care route through callStmt which propagates errors.
			return val{0, 32}
		}
		return v
	}
	return val{}
}

func (ex *exec) evalCall(x *p4.CallExpr) (val, error) {
	// Header validity.
	if x.Method == "isValid" {
		name := x.Recv
		if len(name) > 4 && name[:4] == "hdr." {
			name = name[4:]
		}
		if ex.valid[name] {
			return val{1, 1}, nil
		}
		return val{0, 1}, nil
	}
	c := ex.s.Prog.Ingress
	if ra := c.RegActByName(x.Recv); ra != nil && x.Method == "execute" {
		return ex.execRegAction(c, ra, x.Args)
	}
	// Hash/random externs.
	for _, h := range ex.hashDecls() {
		if h.Name == x.Recv && x.Method == "get" {
			if h.Algo == "random" {
				r := ex.s.nextRand()
				return val{r >> 17 & (val{bits: h.Bits}).mask(), h.Bits}, nil
			}
			var data []byte
			for _, a := range x.Args {
				v := ex.eval(a)
				nb := (v.bits + 7) / 8
				if nb == 0 {
					nb = 4
				}
				for i := nb - 1; i >= 0; i-- {
					data = append(data, byte(v.wrapped()>>(8*uint(i))))
				}
			}
			hv := hashBytes(h.Algo, data)
			return val{hv & (val{bits: h.Bits}).mask(), h.Bits}, nil
		}
	}
	if x.Method == "apply_hit" {
		hit, err := ex.applyTable(c, x.Recv)
		if err != nil {
			return val{}, err
		}
		if hit {
			return val{1, 1}, nil
		}
		return val{0, 1}, nil
	}
	return val{}, fmt.Errorf("unsupported call expression %s.%s", x.Recv, x.Method)
}

func (ex *exec) hashDecls() []*p4.HashDecl {
	if ex.s.Prog.Egress == nil {
		return ex.s.Prog.Ingress.Hashes
	}
	// Copy: never append into the program's own backing array.
	out := make([]*p4.HashDecl, 0, len(ex.s.Prog.Ingress.Hashes)+len(ex.s.Prog.Egress.Hashes))
	out = append(out, ex.s.Prog.Ingress.Hashes...)
	return append(out, ex.s.Prog.Egress.Hashes...)
}

func (ex *exec) evalBin(x *p4.Bin) val {
	a := ex.eval(x.X)
	b := ex.eval(x.Y)
	if op, ok := binOps[x.Op]; ok {
		return op(a, b)
	}
	return val{0, combinedBits(a, b)}
}

// SortEntriesByPriority orders a table's runtime entries (lowest
// priority value first); useful after bulk inserts of ternary entries.
func (s *Switch) SortEntriesByPriority(table string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	es := s.entries[table]
	if es != nil {
		es.compact() // drop tombstones so the sort sees only live entries
		sort.SliceStable(es.ents, func(i, j int) bool { return es.ents[i].Priority < es.ents[j].Priority })
		es.compact() // reindex byKey for the new order
	}
	s.republishTables(table)
}
