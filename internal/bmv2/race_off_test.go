//go:build !race

package bmv2

const raceEnabled = false
