package bmv2

import "sync/atomic"

// Register files are allocated lazily, in fixed-size pages: a declared
// register costs only its page-pointer directory until some cell is
// written, and a program that touches a narrow band of a wide array
// (Paxos instance logs, NetCache sketches, per-rack slot spaces on a
// fabric leaf) materializes just the pages it writes. Unwritten cells
// read as their declared initial value; pages carrying nonzero Init
// values are materialized at construction so the lazy default is
// always zero.
//
// Concurrency follows the shard-by-flow contract for cell data (two
// packets touching one cell run on one goroutine), but page
// installation can race across cells of the same page, so the
// directory is atomic and installs go through a CAS: every racer ends
// up on the same zero-filled page, and a concurrent reader of another
// cell sees either nil (reads the zero default) or the published page
// (reads the same zero) — never a torn state.

// regPageShift sizes a page at 1024 cells = 8 KiB.
const (
	regPageShift = 10
	regPageSize  = 1 << regPageShift
	regPageMask  = regPageSize - 1
)

type regPage [regPageSize]uint64

// regfile is one register's lazily-paged cell array.
type regfile struct {
	size  int // declared cell count
	bits  int // declared cell width
	pages []atomic.Pointer[regPage]
	live  atomic.Int64 // pages materialized (stats)
}

// newRegfile builds the page directory and materializes only the pages
// covered by nonzero initial values.
func newRegfile(size, bits int, init []int64) *regfile {
	rf := &regfile{size: size, bits: bits}
	rf.pages = make([]atomic.Pointer[regPage], (size+regPageSize-1)/regPageSize)
	m := val{bits: bits}.mask()
	for i, v := range init {
		if i >= size {
			break
		}
		if uint64(v)&m == 0 {
			continue
		}
		rf.store(i, uint64(v)&m)
	}
	return rf
}

// load reads a cell; an unmaterialized page reads as zero. The caller
// bounds-checks idx against rf.size.
func (rf *regfile) load(idx int) uint64 {
	p := rf.pages[idx>>regPageShift].Load()
	if p == nil {
		return 0
	}
	return p[idx&regPageMask]
}

// page returns the page covering idx, materializing it on first touch.
func (rf *regfile) page(idx int) *regPage {
	slot := &rf.pages[idx>>regPageShift]
	p := slot.Load()
	if p == nil {
		np := new(regPage)
		if slot.CompareAndSwap(nil, np) {
			rf.live.Add(1)
			return np
		}
		p = slot.Load()
	}
	return p
}

// store writes a cell, materializing its page. The caller
// bounds-checks idx against rf.size.
func (rf *regfile) store(idx int, v uint64) {
	rf.page(idx)[idx&regPageMask] = v
}

// cell returns the address of a cell for read-modify-write sequences
// (register actions), materializing its page: an RMW always writes the
// memory operand back, so the page is needed regardless.
func (rf *regfile) cell(idx int) *uint64 {
	return &rf.page(idx)[idx&regPageMask]
}

// bytes reports (declared, allocated) cell bytes: declared is the full
// architectural size, allocated what lazy paging actually materialized
// (page granularity).
func (rf *regfile) bytes() (declared, allocated uint64) {
	return uint64(rf.size) * 8, uint64(rf.live.Load()) * regPageSize * 8
}

// RegisterFileBytes sums the declared and actually-allocated register
// memory across every register of the switch: the headroom ROADMAP
// item 2 noted ("register files dominate memory long before host state
// does") made measurable.
func (s *Switch) RegisterFileBytes() (declared, allocated uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rf := range s.regs {
		d, a := rf.bytes()
		declared += d
		allocated += a
	}
	return declared, allocated
}
