package bmv2

// burst_test.go pins the burst execution path (machine.go
// processBurst, sharded.go worker drain) to the single-packet path:
// byte-identical results, identical error behavior, identical counter
// totals, and the ≤1 allocation/packet budget that makes bursting a
// pure win. Packet streams include seeded garbage and truncations so
// the error paths inside a burst are exercised, and results fold into
// an FNV-1a hash chain so any divergence anywhere in the stream
// changes the final digest.

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"netcl/internal/p4"
)

// chainResult folds one packet's outcome into the hash chain.
func chainResult(h64 interface{ Write([]byte) (int, error) }, res *Result, err error) {
	if err != nil {
		h64.Write([]byte{0xEE})
		return
	}
	h64.Write([]byte{
		byte(res.Port >> 8), byte(res.Port),
		byte(res.Mcast >> 8), byte(res.Mcast),
	})
	if res.Dropped {
		h64.Write([]byte{0xDD})
	}
	h64.Write(res.Data)
}

// chaosStream builds a packet stream of valid matcher packets salted
// with truncated and garbage datagrams.
func chaosStream(rng *rand.Rand, n int) [][]byte {
	pkts := make([][]byte, n)
	for i := range pkts {
		switch rng.Intn(8) {
		case 0: // truncated: parse must fail identically in both modes
			pkts[i] = matcherPkt(uint8(rng.Intn(5)), rng.Uint32(), 0)[:rng.Intn(11)]
		case 1: // garbage bytes of header size
			b := make([]byte, 11+rng.Intn(16))
			rng.Read(b)
			pkts[i] = b
		default:
			pkts[i] = matcherPkt(uint8(1+rng.Intn(4)), rng.Uint32(), uint16(rng.Intn(1<<16)))
		}
	}
	return pkts
}

// TestBurstMatchesSingle: the same chaos stream processed packet-at-a-
// time and in random-size bursts (including > MaxBurst, exercising the
// chunk loop) must produce identical hash chains and counters.
func TestBurstMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(0xb0b))
	ents := randMatcherEntries(rng)
	single := New(matcherProg(ents))
	burst := New(matcherProg(ents))
	if !single.Compiled() || !burst.Compiled() {
		t.Fatalf("not compiled: %v", single.CompileErr())
	}

	stream := chaosStream(rng, 4096)
	ports := make([]int, len(stream))
	for i := range ports {
		ports[i] = rng.Intn(4)
	}

	h1 := fnv.New64a()
	for i, pkt := range stream {
		res, err := single.Process(pkt, ports[i])
		chainResult(h1, res, err)
	}

	h2 := fnv.New64a()
	res := make([]Result, 40)
	errs := make([]error, 40)
	mutated := false
	for off := 0; off < len(stream); {
		n := 1 + rng.Intn(40) // sizes above MaxBurst hit the chunk loop
		if off+n > len(stream) {
			n = len(stream) - off
		}
		burst.ProcessBurst(stream[off:off+n], ports[off:off+n], res[:n], errs[:n])
		for i := 0; i < n; i++ {
			r := res[i]
			chainResult(h2, &r, errs[i])
		}
		off += n
		if !mutated && off > len(stream)/2 {
			// A mid-stream control-plane write must not perturb the
			// data path: the inserted entry can never match (empty
			// range), so outputs stay comparable, but the insert still
			// forces a diagram rebuild under live bursts.
			mutated = true
			if err := burst.InsertEntry("rng1", entry("set_out", 9999, 0,
				p4.KeyValue{Value: 5, Hi: 1})); err != nil {
				t.Fatal(err)
			}
		}
	}

	if h1.Sum64() != h2.Sum64() {
		t.Fatalf("burst processing diverged from single-packet: %x vs %x", h1.Sum64(), h2.Sum64())
	}
	if single.PacketsIn != burst.PacketsIn || single.PacketsOut != burst.PacketsOut ||
		single.PacketsDropped != burst.PacketsDropped {
		t.Fatalf("counter mismatch: single in/out/drop %d/%d/%d, burst %d/%d/%d",
			single.PacketsIn, single.PacketsOut, single.PacketsDropped,
			burst.PacketsIn, burst.PacketsOut, burst.PacketsDropped)
	}
}

// portEchoProg writes meta.ingress_port into the packet, making the
// ingress port observable in the output bytes.
func portEchoProg() *p4.Program {
	pp := matcherProg(nil)
	pp.Metadata = append(pp.Metadata, &p4.Field{Name: "ingress_port", Bits: 16})
	pp.Ingress.Apply = []p4.Stmt{
		&p4.Assign{LHS: p4.FR("hdr", "h", "out"), RHS: p4.FR("meta", "ingress_port")},
		&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: &p4.IntLit{Val: 9, Bits: 16}},
	}
	return pp
}

// TestIngressPortVisible: both engines must expose the same
// meta.ingress_port to the program — the compiled engine used to
// silently drop it. Covers Process, ProcessBurst, and the sharded
// SubmitPort path.
func TestIngressPortVisible(t *testing.T) {
	comp := New(portEchoProg())
	if !comp.Compiled() {
		t.Fatalf("not compiled: %v", comp.CompileErr())
	}
	ref := New(portEchoProg())
	ref.SetEngine(EngineReference)

	for _, port := range []int{0, 1, 7, 300, 65535} {
		for _, sw := range []*Switch{comp, ref} {
			res, err := sw.Process(matcherPkt(1, 0, 0), port)
			if err != nil {
				t.Fatal(err)
			}
			if got := matcherOut(t, res); got != uint32(port) {
				t.Fatalf("engine compiled=%v: port %d echoed as %d", sw.Compiled(), port, got)
			}
		}
	}

	// Burst path: per-packet ports, not one port for the burst.
	pkts := [][]byte{matcherPkt(1, 0, 0), matcherPkt(1, 0, 0), matcherPkt(1, 0, 0)}
	ports := []int{3, 1, 4}
	res := make([]Result, 3)
	errs := make([]error, 3)
	comp.ProcessBurst(pkts, ports, res, errs)
	for i := range pkts {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got := matcherOut(t, &res[i]); got != uint32(ports[i]) {
			t.Fatalf("burst pkt %d: port %d echoed as %d", i, ports[i], got)
		}
	}

	// Sharded path: SubmitPort must carry the port to the worker.
	sh, err := NewSharded(New(portEchoProg()), ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	got := make(chan uint32, 64)
	for i := 0; i < 64; i++ {
		port := i % 5
		for !sh.SubmitPort(matcherPkt(1, uint32(i), 0), port, func(r *Result, err error) {
			if err != nil {
				t.Error(err)
				got <- 0xFFFF_FFFF
				return
			}
			got <- matcherOut(t, r)
		}) {
		}
	}
	sh.Drain()
	seen := map[uint32]int{}
	for i := 0; i < 64; i++ {
		seen[<-got]++
	}
	for p := 0; p < 5; p++ {
		want := 64/5 + b2i(p < 64%5)
		if seen[uint32(p)] != want {
			t.Fatalf("port %d echoed %d times, want %d (all: %v)", p, seen[uint32(p)], want, seen)
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestShardedBurstEquivalence: a sharded engine with burst draining
// enabled must agree packet-for-packet with the inline compiled
// engine. Flow-keyed submission keeps per-flow order deterministic, so
// outputs are comparable flow by flow.
func TestShardedBurstEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5a5a))
	ents := randMatcherEntries(rng)

	inline := New(matcherProg(ents))
	shSw := New(matcherProg(ents))
	sh, err := NewSharded(shSw, ShardedConfig{
		Shards: 4,
		// Flow identity: the full match key, so identical packets
		// serialize and per-flow results are comparable.
		FlowKey: func(pkt []byte) uint64 {
			var k uint64
			for _, b := range pkt {
				k = k<<8 | uint64(b)
			}
			return k
		},
		Burst: MaxBurst,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	type outcome struct {
		port int
		data string
		err  bool
	}
	flows := make([][]byte, 64)
	for i := range flows {
		flows[i] = matcherPkt(uint8(1+rng.Intn(4)), rng.Uint32(), uint16(rng.Intn(1<<16)))
	}
	want := make([]outcome, len(flows))
	for i, pkt := range flows {
		res, err := inline.Process(pkt, 1)
		if err != nil {
			want[i] = outcome{err: true}
			continue
		}
		want[i] = outcome{port: res.Port, data: string(res.Data)}
	}

	gotCh := make(chan [2]int, len(flows)*8) // (flow, ok)
	gotOut := make([]outcome, len(flows))
	var submitted int
	for rep := 0; rep < 8; rep++ {
		for i, pkt := range flows {
			i := i
			for !sh.SubmitPort(pkt, 1, func(r *Result, err error) {
				if err != nil {
					gotOut[i] = outcome{err: true}
				} else {
					gotOut[i] = outcome{port: r.Port, data: string(r.Data)}
				}
				gotCh <- [2]int{i, 1}
			}) {
			}
			submitted++
		}
	}
	sh.Drain()
	for n := 0; n < submitted; n++ {
		<-gotCh
	}
	for i := range flows {
		if gotOut[i] != want[i] {
			t.Fatalf("flow %d: sharded burst %+v, inline %+v", i, gotOut[i], want[i])
		}
	}
	if got := sh.Stats().Processed; got != uint64(submitted) {
		t.Fatalf("processed %d, submitted %d", got, submitted)
	}
}

// TestCompiledBurstAllocs pins the burst-mode allocation budget: at
// most one allocation per packet (the escaping deparse buffer).
// Wired into `make bench` so perf regressions surface outside CI too.
func TestCompiledBurstAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime perturbs allocation accounting")
	}
	rng := rand.New(rand.NewSource(7))
	ents := randMatcherEntries(rng)
	sw := New(matcherProg(ents))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}
	pkts := make([][]byte, MaxBurst)
	ports := make([]int, MaxBurst)
	for i := range pkts {
		pkts[i] = matcherPkt(uint8(1+i%4), rng.Uint32(), uint16(rng.Intn(1<<16)))
	}
	res := make([]Result, MaxBurst)
	errs := make([]error, MaxBurst)
	sw.ProcessBurst(pkts, ports, res, errs) // warm the machine pool
	avg := testing.AllocsPerRun(200, func() {
		sw.ProcessBurst(pkts, ports, res, errs)
	})
	perPkt := avg / MaxBurst
	if perPkt > 1.0 {
		t.Fatalf("burst mode allocates %.2f/packet, budget is 1 (deparse buffer)", perPkt)
	}
}
