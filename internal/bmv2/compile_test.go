package bmv2

import (
	"bytes"
	"math/rand"
	"testing"

	"netcl/internal/p4"
)

// TestCompiledEngineSelected: the shared test program must compile and
// run on the slot-indexed engine (the rest of interp_test.go then
// exercises it implicitly).
func TestCompiledEngineSelected(t *testing.T) {
	sw := New(prog())
	if err := sw.CompileErr(); err != nil {
		t.Fatalf("compile refused: %v", err)
	}
	if !sw.Compiled() {
		t.Fatal("compiled engine not selected")
	}
	sw.SetEngine(EngineReference)
	if sw.Compiled() {
		t.Fatal("reference engine not selected")
	}
}

// matcherProg builds a program exercising every matcher kind: a
// two-key exact table (hash index), a single-key LPM table
// (sorted-prefix), and ternary/range tables (linear scan). The sel
// field picks the table; each action writes a distinct out value.
func matcherProg(entries map[string][]*p4.Entry) *p4.Program {
	pp := &p4.Program{Name: "m", Target: p4.TargetTNA}
	pp.Headers = []*p4.HeaderDecl{{Name: "h", Fields: []*p4.Field{
		{Name: "sel", Bits: 8},
		{Name: "k1", Bits: 32},
		{Name: "k2", Bits: 16},
		{Name: "out", Bits: 32},
	}}}
	pp.Metadata = []*p4.Field{
		{Name: "egress_port", Bits: 16}, {Name: "mcast_grp", Bits: 16}, {Name: "drop_flag", Bits: 1},
	}
	pp.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{
		{Name: "start", Extracts: []string{"h"}, Next: "accept"},
	}}
	ctl := &p4.Control{Name: "In"}
	ctl.Actions = []*p4.ActionDecl{
		{Name: "set_out", Params: []*p4.Field{{Name: "v", Bits: 32}},
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "out"), RHS: p4.FR("v")}}},
		{Name: "miss_out",
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("hdr", "h", "out"), RHS: &p4.IntLit{Val: 0xFFFF_FFFF, Bits: 32}}}},
	}
	k1 := p4.FR("hdr", "h", "k1")
	k2 := p4.FR("hdr", "h", "k2")
	ctl.Tables = []*p4.Table{
		{Name: "ex2", Keys: []*p4.TableKey{{Expr: k1, Match: p4.MatchExact}, {Expr: k2, Match: p4.MatchExact}},
			Actions: []string{"set_out", "miss_out"}, Default: &p4.ActionCall{Name: "miss_out"}, Entries: entries["ex2"]},
		{Name: "lpm1", Keys: []*p4.TableKey{{Expr: k1, Match: p4.MatchLPM}},
			Actions: []string{"set_out", "miss_out"}, Default: &p4.ActionCall{Name: "miss_out"}, Entries: entries["lpm1"]},
		{Name: "tern1", Keys: []*p4.TableKey{{Expr: k1, Match: p4.MatchTernary}},
			Actions: []string{"set_out", "miss_out"}, Default: &p4.ActionCall{Name: "miss_out"}, Entries: entries["tern1"]},
		{Name: "rng1", Keys: []*p4.TableKey{{Expr: k2, Match: p4.MatchRange}},
			Actions: []string{"set_out", "miss_out"}, Default: &p4.ActionCall{Name: "miss_out"}, Entries: entries["rng1"]},
	}
	sel := p4.FR("hdr", "h", "sel")
	eq := func(v uint64) p4.Expr { return &p4.Bin{Op: "==", X: sel, Y: &p4.IntLit{Val: v, Bits: 8}} }
	ctl.Apply = []p4.Stmt{
		&p4.If{Cond: eq(1), Then: []p4.Stmt{&p4.ApplyTable{Table: "ex2"}}},
		&p4.If{Cond: eq(2), Then: []p4.Stmt{&p4.ApplyTable{Table: "lpm1"}}},
		&p4.If{Cond: eq(3), Then: []p4.Stmt{&p4.ApplyTable{Table: "tern1"}}},
		&p4.If{Cond: eq(4), Then: []p4.Stmt{&p4.ApplyTable{Table: "rng1"}}},
		&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: &p4.IntLit{Val: 9, Bits: 16}},
	}
	pp.Ingress = ctl
	return pp
}

func matcherPkt(sel uint8, k1 uint32, k2 uint16) []byte {
	return []byte{
		sel,
		byte(k1 >> 24), byte(k1 >> 16), byte(k1 >> 8), byte(k1),
		byte(k2 >> 8), byte(k2),
		0, 0, 0, 0,
	}
}

func matcherOut(t *testing.T, res *Result) uint32 {
	t.Helper()
	if len(res.Data) < 11 {
		t.Fatalf("short output: %d bytes", len(res.Data))
	}
	return uint32(res.Data[7])<<24 | uint32(res.Data[8])<<16 | uint32(res.Data[9])<<8 | uint32(res.Data[10])
}

func entry(action string, arg uint64, prio int, keys ...p4.KeyValue) *p4.Entry {
	return &p4.Entry{Keys: keys, Action: &p4.ActionCall{Name: action, Args: []uint64{arg}}, Priority: prio}
}

func TestExactIndexHitMiss(t *testing.T) {
	ents := map[string][]*p4.Entry{"ex2": {
		entry("set_out", 100, 0, p4.KeyValue{Value: 1, PrefixLen: -1}, p4.KeyValue{Value: 2, PrefixLen: -1}),
		entry("set_out", 200, 0, p4.KeyValue{Value: 1, PrefixLen: -1}, p4.KeyValue{Value: 3, PrefixLen: -1}),
		// Duplicate tuple: first-inserted must keep winning.
		entry("set_out", 999, 0, p4.KeyValue{Value: 1, PrefixLen: -1}, p4.KeyValue{Value: 2, PrefixLen: -1}),
		// Wrong arity: never matches.
		entry("set_out", 888, 0, p4.KeyValue{Value: 1, PrefixLen: -1}),
	}}
	sw := New(matcherProg(ents))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}
	check := func(k1 uint32, k2 uint16, want uint32) {
		t.Helper()
		res, err := sw.Process(matcherPkt(1, k1, k2), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := matcherOut(t, res); got != want {
			t.Errorf("ex2(%d,%d): out=%d want %d", k1, k2, got, want)
		}
	}
	check(1, 2, 100) // hit, first of duplicate tuple
	check(1, 3, 200) // hit on full tuple
	check(2, 2, 0xFFFF_FFFF)
	check(1, 4, 0xFFFF_FFFF) // second key differs -> miss

	// Runtime insert must land in the hash index without a rebuild.
	if err := sw.InsertEntry("ex2", entry("set_out", 300, 0,
		p4.KeyValue{Value: 7, PrefixLen: -1}, p4.KeyValue{Value: 8, PrefixLen: -1})); err != nil {
		t.Fatal(err)
	}
	check(7, 8, 300)
	// Full-tuple delete must drop it again (and only it).
	if n := sw.DeleteEntry("ex2", 7, 8); n != 1 {
		t.Fatalf("delete removed %d", n)
	}
	check(7, 8, 0xFFFF_FFFF)
	check(1, 2, 100)
}

func TestDeleteEntryFullTuple(t *testing.T) {
	ents := map[string][]*p4.Entry{"ex2": {
		entry("set_out", 1, 0, p4.KeyValue{Value: 5, PrefixLen: -1}, p4.KeyValue{Value: 1, PrefixLen: -1}),
		entry("set_out", 2, 0, p4.KeyValue{Value: 5, PrefixLen: -1}, p4.KeyValue{Value: 2, PrefixLen: -1}),
	}}
	sw := New(matcherProg(ents))
	// A bare first-key delete must not wipe every entry sharing k1=5.
	if n := sw.DeleteEntry("ex2", 5); n != 0 {
		t.Errorf("first-key-only delete removed %d entries", n)
	}
	if n := sw.DeleteEntry("ex2", 5, 2); n != 1 {
		t.Errorf("tuple delete removed %d", n)
	}
	res, err := sw.Process(matcherPkt(1, 5, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := matcherOut(t, res); got != 1 {
		t.Errorf("surviving entry: out=%d", got)
	}
}

func TestLPMLongestPrefixTieBreak(t *testing.T) {
	ents := map[string][]*p4.Entry{"lpm1": {
		entry("set_out", 8, 0, p4.KeyValue{Value: 0x0A000000, PrefixLen: 8}),
		entry("set_out", 24, 0, p4.KeyValue{Value: 0x0A000100, PrefixLen: 24}),
		// Same prefix length as the /24: the earlier entry must win.
		entry("set_out", 25, 0, p4.KeyValue{Value: 0x0A000100, PrefixLen: 24}),
		entry("set_out", 0, 0, p4.KeyValue{Value: 0, PrefixLen: 0}),
		// Prefix longer than the 32-bit key: can never match.
		entry("set_out", 40, 0, p4.KeyValue{Value: 0x0A000100, PrefixLen: 40}),
	}}
	sw := New(matcherProg(ents))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}
	check := func(k1 uint32, want uint32) {
		t.Helper()
		res, err := sw.Process(matcherPkt(2, k1, 0), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := matcherOut(t, res); got != want {
			t.Errorf("lpm(%#x): out=%d want %d", k1, got, want)
		}
	}
	check(0x0A000105, 24) // /24 wins over /8 and /0; first of the tie
	check(0x0A000205, 8)  // /8 wins over /0
	check(0x0B000000, 0)  // only the default route matches
}

func TestTernaryPriorityOrdering(t *testing.T) {
	ents := map[string][]*p4.Entry{"tern1": {
		entry("set_out", 1, 5, p4.KeyValue{Value: 0x10, Mask: 0xF0}),
		entry("set_out", 2, 1, p4.KeyValue{Value: 0x12, Mask: 0xFF}),
		// A priority past 2^30 used to underflow the old sentinel and
		// lose to "nothing matched"; it must still beat a miss.
		entry("set_out", 3, 1 << 31, p4.KeyValue{Value: 0x80, Mask: 0xFF}),
	}}
	sw := New(matcherProg(ents))
	check := func(k1 uint32, want uint32) {
		t.Helper()
		res, err := sw.Process(matcherPkt(3, k1, 0), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := matcherOut(t, res); got != want {
			t.Errorf("tern(%#x): out=%d want %d", k1, got, want)
		}
	}
	check(0x12, 2) // both match; lower priority value wins
	check(0x15, 1)
	check(0x80, 3) // huge-priority entry must hit, not fall to default
	check(0x81, 0xFFFF_FFFF)
}

func TestRangeBounds(t *testing.T) {
	ents := map[string][]*p4.Entry{"rng1": {
		entry("set_out", 1, 1, p4.KeyValue{Value: 10, Hi: 20}),
		entry("set_out", 2, 0, p4.KeyValue{Value: 20, Hi: 30}),
	}}
	sw := New(matcherProg(ents))
	check := func(k2 uint16, want uint32) {
		t.Helper()
		res, err := sw.Process(matcherPkt(4, 0, k2), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := matcherOut(t, res); got != want {
			t.Errorf("range(%d): out=%d want %d", k2, got, want)
		}
	}
	check(9, 0xFFFF_FFFF) // below low bound
	check(10, 1)          // inclusive low
	check(20, 2)          // overlap: lower priority value wins
	check(30, 2)          // inclusive high
	check(31, 0xFFFF_FFFF)
}

// TestMatcherDifferentialFuzz drives random entries and keys through
// the specialized matchers and the reference linear scan, asserting
// byte-identical outputs. Entries include wrong arity, duplicate
// tuples, out-of-range prefix lengths, overlapping masks and ranges,
// and extreme priorities.
func TestMatcherDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	kv := func(v uint64) p4.KeyValue { return p4.KeyValue{Value: v, PrefixLen: -1} }
	for trial := 0; trial < 20; trial++ {
		ents := map[string][]*p4.Entry{}
		for i := 0; i < 12; i++ {
			e := entry("set_out", uint64(1000+i), 0, kv(uint64(rng.Intn(8))), kv(uint64(rng.Intn(4))))
			if rng.Intn(6) == 0 {
				e.Keys = e.Keys[:1] // wrong arity
			}
			ents["ex2"] = append(ents["ex2"], e)
		}
		for i := 0; i < 12; i++ {
			plen := rng.Intn(41) // includes > key width
			ents["lpm1"] = append(ents["lpm1"],
				entry("set_out", uint64(2000+i), 0, p4.KeyValue{Value: uint64(rng.Uint32()), PrefixLen: plen}))
		}
		for i := 0; i < 12; i++ {
			prio := rng.Intn(8)
			if rng.Intn(5) == 0 {
				prio = 1<<30 + rng.Intn(1<<10)
			}
			ents["tern1"] = append(ents["tern1"],
				entry("set_out", uint64(3000+i), prio,
					p4.KeyValue{Value: uint64(rng.Intn(64)), Mask: uint64(rng.Intn(256))}))
		}
		for i := 0; i < 12; i++ {
			lo := uint64(rng.Intn(64))
			ents["rng1"] = append(ents["rng1"],
				entry("set_out", uint64(4000+i), rng.Intn(8),
					p4.KeyValue{Value: lo, Hi: lo + uint64(rng.Intn(32))}))
		}
		pp := matcherProg(ents)
		fast := New(pp)
		slow := New(pp)
		slow.SetEngine(EngineReference)
		if !fast.Compiled() {
			t.Fatalf("trial %d not compiled: %v", trial, fast.CompileErr())
		}
		for i := 0; i < 300; i++ {
			sel := uint8(1 + rng.Intn(4))
			k1 := uint32(rng.Intn(16))
			if sel == 2 {
				k1 = rng.Uint32() // wide keys for LPM
			}
			k2 := uint16(rng.Intn(80))
			pkt := matcherPkt(sel, k1, k2)
			fr, ferr := fast.Process(pkt, 0)
			sr, serr := slow.Process(pkt, 0)
			if (ferr == nil) != (serr == nil) {
				t.Fatalf("trial %d pkt %d: error mismatch %v vs %v", trial, i, ferr, serr)
			}
			if ferr != nil {
				continue
			}
			if !bytes.Equal(fr.Data, sr.Data) || fr.Port != sr.Port || fr.Mcast != sr.Mcast ||
				fr.Dropped != sr.Dropped || fr.NoMatch != sr.NoMatch {
				t.Fatalf("trial %d pkt sel=%d k1=%#x k2=%d: compiled %+v != reference %+v",
					trial, sel, k1, k2, fr, sr)
			}
		}
		// Mutate entries at runtime and re-verify coherence on both.
		for i := 0; i < 6; i++ {
			e := entry("set_out", uint64(5000+i), rng.Intn(4), kv(uint64(rng.Intn(8))), kv(uint64(rng.Intn(4))))
			if err := fast.InsertEntry("ex2", e); err != nil {
				t.Fatal(err)
			}
			if err := slow.InsertEntry("ex2", e); err != nil {
				t.Fatal(err)
			}
		}
		delK1, delK2 := uint64(rng.Intn(8)), uint64(rng.Intn(4))
		if nf, ns := fast.DeleteEntry("ex2", delK1, delK2), slow.DeleteEntry("ex2", delK1, delK2); nf != ns {
			t.Fatalf("trial %d: delete count %d vs %d", trial, nf, ns)
		}
		for i := 0; i < 100; i++ {
			pkt := matcherPkt(1, uint32(rng.Intn(16)), uint16(rng.Intn(8)))
			fr, ferr := fast.Process(pkt, 0)
			sr, serr := slow.Process(pkt, 0)
			if ferr != nil || serr != nil {
				t.Fatalf("trial %d post-mutate errors: %v %v", trial, ferr, serr)
			}
			if !bytes.Equal(fr.Data, sr.Data) {
				t.Fatalf("trial %d post-mutate divergence", trial)
			}
		}
	}
}

// TestDynamicScopingFallsBack: a table applied inside an action whose
// parameter name is read by the table's own actions needs dynamic
// scoping; the compiler must refuse and the switch must still process
// packets on the reference engine.
func TestDynamicScopingFallsBack(t *testing.T) {
	pp := &p4.Program{Name: "dyn", Target: p4.TargetTNA}
	pp.Headers = []*p4.HeaderDecl{{Name: "h", Fields: []*p4.Field{{Name: "x", Bits: 8}}}}
	pp.Metadata = []*p4.Field{{Name: "egress_port", Bits: 16}, {Name: "mcast_grp", Bits: 16}, {Name: "drop_flag", Bits: 1}}
	pp.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{{Name: "start", Extracts: []string{"h"}, Next: "accept"}}}
	ctl := &p4.Control{Name: "In"}
	ctl.Actions = []*p4.ActionDecl{
		{Name: "leaf", Body: []p4.Stmt{
			// Reads "p": under the reference engine this resolves to the
			// calling action's parameter through the frame stack.
			&p4.Assign{LHS: p4.FR("hdr", "h", "x"), RHS: p4.FR("p")},
		}},
		{Name: "outer", Params: []*p4.Field{{Name: "p", Bits: 8}}, Body: []p4.Stmt{
			&p4.ApplyTable{Table: "t"},
		}},
	}
	ctl.Tables = []*p4.Table{{
		Name:    "t",
		Keys:    []*p4.TableKey{{Expr: p4.FR("hdr", "h", "x"), Match: p4.MatchExact}},
		Actions: []string{"leaf"},
		Default: &p4.ActionCall{Name: "leaf"},
	}}
	ctl.Apply = []p4.Stmt{
		&p4.CallStmt{Method: "outer", Args: []p4.Expr{&p4.IntLit{Val: 7, Bits: 8}}},
		&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: &p4.IntLit{Val: 1, Bits: 16}},
	}
	pp.Ingress = ctl
	sw := New(pp)
	if sw.Compiled() {
		t.Fatal("dynamic-scoping program must not compile")
	}
	res, err := sw.Process([]byte{0x00}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 1 || res.Data[0] != 7 {
		t.Fatalf("reference fallback produced %v", res.Data)
	}
}

// TestCompiledAllocsPerPacket: steady-state allocations per packet are
// O(1) — the Result struct and its exact-sized data buffer.
func TestCompiledAllocsPerPacket(t *testing.T) {
	sw := New(prog())
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}
	pkt := mkPkt(1, 10)
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := sw.Process(pkt, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Errorf("allocs/packet = %.1f, want <= 3", allocs)
	}
}
