package bmv2

// compile.go implements the prepare half of the interpreter's
// prepare/execute split. A one-time compile step resolves every
// p4.FieldRef path to an integer slot in a flat []val frame, every
// action/table/register name to a direct pointer, and every expression
// to a closure tree, so the per-packet execute step touches no maps
// and performs no name resolution. The approach follows the NetKAT
// compiler lineage: stop re-interpreting the program per packet and
// run a pre-compiled form instead.
//
// Compilation is conservative: any construct whose compiled semantics
// could diverge from the reference tree-walker (see interp.go) aborts
// with an error and the Switch falls back to the reference engine, so
// observable behavior is always identical to the seed interpreter.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"netcl/internal/p4"
)

// evalFn is a compiled expression: it reads machine state and yields a
// typed value. Expression-level errors were already folded to
// val{0,32} by the reference semantics, so evalFn needs no error path.
type evalFn func(m *machine) val

// stmtFn is a compiled statement.
type stmtFn func(m *machine) error

// Parser transition sentinels (real state indices are >= 0).
const (
	stateAccept = -1
	stateReject = -2
)

// cfield is a header field resolved to its frame slot plus the
// bit-layout data needed by the parser and deparser fast paths.
type cfield struct {
	slot    int
	bits    int
	bitOff  int
	aligned bool // starts on a byte boundary and spans whole bytes
	byteOff int
	nbytes  int
}

// chdr is a compiled header declaration.
type chdr struct {
	name       string
	fields     []cfield
	nbytes     int
	allAligned bool
}

// ccase is one compiled select case.
type ccase struct {
	value, mask uint64
	next        int
}

// cselect is a compiled parser select.
type cselect struct {
	key   evalFn
	cases []ccase
	def   int
}

// cstate is a compiled parser state.
type cstate struct {
	extracts []int // header indices
	sel      *cselect
	next     int // used when sel == nil
}

// caction is a compiled action instance: parameter slots plus body.
// Instances are compiled per invocation context, so free names resolve
// exactly as the reference interpreter's dynamic frame search would.
type caction struct {
	name   string
	params []int
	bits   []int
	body   []stmtFn
}

// invoke binds constant args (table entries, defaults) and runs the body.
func (a *caction) invoke(m *machine, args []val) error {
	for i, slot := range a.params {
		if i < len(args) {
			m.frame[slot] = val{args[i].wrapped(), a.bits[i]}
		} else {
			m.frame[slot] = val{0, a.bits[i]}
		}
	}
	return m.run(a.body)
}

// cctl is a compiled control block.
type cctl struct {
	c       *p4.Control
	actions map[string]*caction // apply-level instances (table entries resolve here)
	tables  map[string]*ctable
	body    []stmtFn
	// refNames holds every field path referenced anywhere in the
	// control's action bodies, register-action bodies, or table keys.
	// Applying a table under a scope that binds one of these names
	// would need dynamic scoping, which slot indexing cannot
	// reproduce, so such programs are rejected (see applyGuard).
	refNames map[string]bool
}

// cprog is the compiled program.
type cprog struct {
	sw        *Switch
	initFrame []val
	slotOf    map[string]int
	headers   []chdr
	hdrIdx    map[string]int
	states    []cstate
	startIdx  int
	ingress   *cctl
	egress    *cctl // nil when the program has no egress control
	// tablesByName maps a table name to every compiled table sharing
	// that entry list (s.entries is keyed by name across controls).
	tablesByName map[string][]*ctable
	// tabs indexes every compiled table by its gslot; gen holds the
	// published rule-set generation — one snapshot per table — swapped
	// as a whole so multi-table batches commit atomically (table.go).
	tabs       []*ctable
	gen        atomic.Pointer[generation]
	portSlot   int
	mcastSlot  int
	dropSlot   int
	inPortSlot int // meta.ingress_port, written per packet before parse
	pool       sync.Pool
}

// compiler carries compile-time state.
type compiler struct {
	p     *cprog
	s     *Switch
	depth int // action-nesting guard (P4 forbids recursion)
}

// cscope is a compile-time frame: action params or register-action
// m/o, chained exactly like the reference interpreter's frame stack.
type cscope struct {
	parent *cscope
	names  map[string]int
}

func (sc *cscope) lookup(name string) (int, bool) {
	for s := sc; s != nil; s = s.parent {
		if slot, ok := s.names[name]; ok {
			return slot, true
		}
	}
	return 0, false
}

func (sc *cscope) lookupInner(name string) (int, bool) {
	if sc == nil {
		return 0, false
	}
	slot, ok := sc.names[name]
	return slot, ok
}

// compileProgram builds the slot-indexed form of s.Prog. A nil error
// guarantees the compiled engine reproduces the reference interpreter
// exactly; any doubt returns an error and the Switch falls back.
func compileProgram(s *Switch) (*cprog, error) {
	prog := s.Prog
	if prog.Ingress == nil || prog.Parser == nil {
		return nil, fmt.Errorf("compile: program lacks ingress or parser")
	}
	p := &cprog{
		sw:           s,
		slotOf:       map[string]int{},
		hdrIdx:       map[string]int{},
		tablesByName: map[string][]*ctable{},
	}
	cc := &compiler{p: p, s: s}

	// Global slots in deterministic program order: control locals,
	// header fields, metadata — mirroring how New populated s.fields.
	for _, c := range prog.Controls() {
		for _, l := range c.Locals {
			cc.globalSlot(l.Name)
		}
	}
	for hi, h := range prog.Headers {
		if _, dup := p.hdrIdx[h.Name]; dup {
			return nil, fmt.Errorf("compile: duplicate header %q", h.Name)
		}
		p.hdrIdx[h.Name] = hi
		ch := chdr{name: h.Name, nbytes: h.Bits() / 8, allAligned: true}
		bitOff := 0
		for _, f := range h.Fields {
			cf := cfield{
				slot:   cc.globalSlot("hdr." + h.Name + "." + f.Name),
				bits:   f.Bits,
				bitOff: bitOff,
			}
			if bitOff%8 == 0 && f.Bits%8 == 0 {
				cf.aligned = true
				cf.byteOff = bitOff / 8
				cf.nbytes = f.Bits / 8
			} else {
				ch.allAligned = false
			}
			ch.fields = append(ch.fields, cf)
			bitOff += f.Bits
		}
		p.headers = append(p.headers, ch)
	}
	for _, f := range prog.Metadata {
		cc.globalSlot("meta." + f.Name)
	}
	p.portSlot = cc.globalSlot("meta.egress_port")
	p.mcastSlot = cc.globalSlot("meta.mcast_grp")
	p.dropSlot = cc.globalSlot("meta.drop_flag")
	p.inPortSlot = cc.globalSlot("meta.ingress_port")

	// Controls: skeletons first (tables exist before bodies reference
	// them, refNames fully populated before any guard runs), then
	// apply-level action instances (table entries resolve into these),
	// then bodies.
	var err error
	p.ingress, err = cc.controlSkeleton(prog.Ingress)
	if err != nil {
		return nil, err
	}
	if prog.Egress != nil {
		p.egress, err = cc.controlSkeleton(prog.Egress)
		if err != nil {
			return nil, err
		}
	}
	for _, ctl := range p.controls() {
		for _, a := range ctl.c.Actions {
			inst, err := cc.action(ctl.c, nil, a)
			if err != nil {
				return nil, err
			}
			ctl.actions[a.Name] = inst
		}
	}
	for _, ctl := range p.controls() {
		ctl.body, err = cc.stmts(ctl.c, nil, ctl.c.Apply)
		if err != nil {
			return nil, err
		}
	}

	if err := cc.parser(prog.Parser); err != nil {
		return nil, err
	}

	// Eager initial generation (static entries are already in
	// s.entries; action instances resolved above).
	snaps := make([]*tsnap, len(p.tabs))
	for i, tb := range p.tabs {
		snaps[i] = tb.build()
	}
	p.gen.Store(&generation{snaps: snaps})

	p.pool.New = func() any {
		return &machine{
			frame:   make([]val, len(p.initFrame)),
			valid:   make([]bool, len(p.headers)),
			emitted: make([]bool, len(p.headers)),
		}
	}
	return p, nil
}

func (p *cprog) controls() []*cctl {
	if p.egress == nil {
		return []*cctl{p.ingress}
	}
	return []*cctl{p.ingress, p.egress}
}

// globalSlot returns (allocating on first use) the slot of a global
// name: header field, metadata, control local, or a dynamically-typed
// env name the reference interpreter would create on first write.
func (cc *compiler) globalSlot(name string) int {
	if i, ok := cc.p.slotOf[name]; ok {
		return i
	}
	i := len(cc.p.initFrame)
	cc.p.slotOf[name] = i
	cc.p.initFrame = append(cc.p.initFrame, val{0, cc.s.fields[name]})
	return i
}

// newSlot allocates an anonymous frame slot (action params, m/o).
func (cc *compiler) newSlot() int {
	i := len(cc.p.initFrame)
	cc.p.initFrame = append(cc.p.initFrame, val{})
	return i
}

// controlSkeleton creates the cctl with compiled tables (key closures,
// matcher specialization) and the full referenced-name set, but no
// action bodies yet.
func (cc *compiler) controlSkeleton(c *p4.Control) (*cctl, error) {
	ctl := &cctl{c: c, actions: map[string]*caction{}, tables: map[string]*ctable{}, refNames: map[string]bool{}}
	collect := func(body []p4.Stmt) {
		p4.WalkExprs(body, func(e p4.Expr) {
			if fr, ok := e.(*p4.FieldRef); ok {
				ctl.refNames[fr.String()] = true
			}
		})
		p4.Walk(body, func(st p4.Stmt) {
			if at, ok := st.(*p4.ApplyTable); ok && at.HitVar != "" {
				ctl.refNames[at.HitVar] = true
			}
		})
	}
	for _, a := range c.Actions {
		collect(a.Body)
	}
	for _, ra := range c.RegActs {
		collect(ra.Body)
	}
	for _, t := range c.Tables {
		for _, k := range t.Keys {
			p4.ExprRefs(k.Expr, func(fr *p4.FieldRef) {
				ctl.refNames[fr.String()] = true
			})
		}
		tb, err := cc.table(ctl, t)
		if err != nil {
			return nil, err
		}
		ctl.tables[t.Name] = tb
		cc.p.tablesByName[t.Name] = append(cc.p.tablesByName[t.Name], tb)
	}
	return ctl, nil
}

// action compiles one action instance in the given invocation context.
func (cc *compiler) action(c *p4.Control, sc *cscope, a *p4.ActionDecl) (*caction, error) {
	if cc.depth > 32 {
		return nil, fmt.Errorf("compile: action nesting too deep at %q", a.Name)
	}
	inst := &caction{name: a.Name}
	child := &cscope{parent: sc, names: map[string]int{}}
	for _, prm := range a.Params {
		slot := cc.newSlot()
		inst.params = append(inst.params, slot)
		inst.bits = append(inst.bits, prm.Bits)
		child.names[prm.Name] = slot
	}
	cc.depth++
	body, err := cc.stmts(c, child, a.Body)
	cc.depth--
	if err != nil {
		return nil, err
	}
	inst.body = body
	return inst, nil
}

// regact compiles a register-action invocation at one call site. The
// body is compiled against the caller's scope chain so free names
// resolve exactly like the reference interpreter's dynamic frames.
func (cc *compiler) regact(c *p4.Control, sc *cscope, ra *p4.RegisterAction, idxArgs []p4.Expr) (func(m *machine) (val, error), error) {
	rf := cc.s.regs[ra.Register]
	if rf == nil {
		raName := ra.Name
		return func(m *machine) (val, error) {
			return val{}, fmt.Errorf("register action %q over unknown register", raName)
		}, nil
	}
	reg := c.RegisterByName(ra.Register)
	if reg == nil {
		return nil, fmt.Errorf("compile: register action %q register %q not declared in control %q", ra.Name, ra.Register, c.Name)
	}
	if cc.depth > 32 {
		return nil, fmt.Errorf("compile: register action nesting too deep at %q", ra.Name)
	}
	mSlot, oSlot := cc.newSlot(), cc.newSlot()
	child := &cscope{parent: sc, names: map[string]int{"m": mSlot, "o": oSlot}}
	cc.depth++
	body, err := cc.stmts(c, child, ra.Body)
	cc.depth--
	if err != nil {
		return nil, err
	}
	var idxFn evalFn
	if len(idxArgs) > 0 {
		idxFn, err = cc.expr(c, sc, idxArgs[0])
		if err != nil {
			return nil, err
		}
	}
	bits := reg.Bits
	return func(m *machine) (val, error) {
		idx := 0
		if idxFn != nil {
			idx = int(idxFn(m).wrapped())
		}
		// An in-bounds RMW always writes the memory operand back, so
		// materialize the cell's page up front and hold its address.
		var cp *uint64
		var mem uint64
		if idx >= 0 && idx < rf.size {
			cp = rf.cell(idx)
			mem = *cp
		}
		m.frame[mSlot] = val{mem, bits}
		m.frame[oSlot] = val{0, bits}
		if err := m.run(body); err != nil {
			return val{}, err
		}
		if cp != nil {
			*cp = m.frame[mSlot].wrapped()
		}
		return m.frame[oSlot], nil
	}, nil
}

// parser compiles the parse graph to indexed states.
func (cc *compiler) parser(ps *p4.Parser) error {
	idxOf := map[string]int{}
	for i, st := range ps.States {
		idxOf[st.Name] = i
	}
	// resolve maps a transition target; the empty string is legal only
	// for an unconditional Next (the reference treats that as accept —
	// an empty select default, by contrast, is a runtime error there,
	// so compilation is refused in that position).
	resolve := func(name string, emptyIsAccept bool) (int, error) {
		switch name {
		case "":
			if emptyIsAccept {
				return stateAccept, nil
			}
			return 0, fmt.Errorf("compile: empty select transition")
		case "accept":
			return stateAccept, nil
		case "reject":
			return stateReject, nil
		}
		i, ok := idxOf[name]
		if !ok {
			return 0, fmt.Errorf("compile: parser transition to unknown state %q", name)
		}
		return i, nil
	}
	for _, st := range ps.States {
		var cs cstate
		for _, hn := range st.Extracts {
			hi, ok := cc.p.hdrIdx[hn]
			if !ok {
				return fmt.Errorf("compile: parser extracts unknown header %q", hn)
			}
			cs.extracts = append(cs.extracts, hi)
		}
		if st.Select != nil {
			key, err := cc.expr(cc.s.Prog.Ingress, nil, st.Select.Key)
			if err != nil {
				return err
			}
			def, err := resolve(st.Select.Default, false)
			if err != nil {
				return err
			}
			sel := &cselect{key: key, def: def}
			for _, c := range st.Select.Cases {
				next, err := resolve(c.State, false)
				if err != nil {
					return err
				}
				sel.cases = append(sel.cases, ccase{value: c.Value, mask: c.Mask, next: next})
			}
			cs.sel = sel
		} else {
			next, err := resolve(st.Next, true)
			if err != nil {
				return err
			}
			cs.next = next
		}
		cc.p.states = append(cc.p.states, cs)
	}
	start, ok := idxOf["start"]
	if !ok {
		return fmt.Errorf("compile: parser has no start state")
	}
	cc.p.startIdx = start
	return nil
}

// Statements -----------------------------------------------------------

func (cc *compiler) stmts(c *p4.Control, sc *cscope, body []p4.Stmt) ([]stmtFn, error) {
	var out []stmtFn
	for _, st := range body {
		fn, err := cc.stmt(c, sc, st)
		if err != nil {
			return nil, err
		}
		if fn != nil {
			out = append(out, fn)
		}
	}
	return out, nil
}

// assignTarget compiles a write destination, reproducing the reference
// assign: the innermost frame if it binds the name, else the global
// env with the declared width (or the value's own width when unknown).
func (cc *compiler) assignTarget(sc *cscope, fr *p4.FieldRef) func(m *machine, v val) {
	name := fr.String()
	if slot, ok := sc.lookupInner(name); ok {
		return func(m *machine, v val) { m.frame[slot] = v }
	}
	slot := cc.globalSlot(name)
	if db := cc.s.fields[name]; db != 0 {
		return func(m *machine, v val) { m.frame[slot] = val{v.wrapped(), db} }
	}
	return func(m *machine, v val) { m.frame[slot] = val{v.wrapped(), v.bits} }
}

func (cc *compiler) stmt(c *p4.Control, sc *cscope, st p4.Stmt) (stmtFn, error) {
	switch x := st.(type) {
	case *p4.Comment:
		return nil, nil
	case *p4.Assign:
		rhs, err := cc.expr(c, sc, x.RHS)
		if err != nil {
			return nil, err
		}
		dst := cc.assignTarget(sc, x.LHS)
		return func(m *machine) error {
			dst(m, rhs(m))
			return nil
		}, nil
	case *p4.If:
		cond, err := cc.expr(c, sc, x.Cond)
		if err != nil {
			return nil, err
		}
		thenFns, err := cc.stmts(c, sc, x.Then)
		if err != nil {
			return nil, err
		}
		elseFns, err := cc.stmts(c, sc, x.Else)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			if cond(m).wrapped() != 0 {
				return m.run(thenFns)
			}
			return m.run(elseFns)
		}, nil
	case *p4.ApplyTable:
		tb, err := cc.applyGuard(c, sc, x.Table)
		if err != nil {
			return nil, err
		}
		if x.HitVar == "" {
			return func(m *machine) error {
				_, err := tb.apply(m)
				return err
			}, nil
		}
		dst := cc.assignTarget(sc, p4.FR(x.HitVar))
		return func(m *machine) error {
			hit, err := tb.apply(m)
			if err != nil {
				return err
			}
			hv := uint64(0)
			if hit {
				hv = 1
			}
			dst(m, val{hv, 1})
			return nil
		}, nil
	case *p4.CallStmt:
		return cc.callStmt(c, sc, x)
	case *p4.SetValid:
		hi, ok := cc.p.hdrIdx[x.Header]
		if !ok {
			return nil, fmt.Errorf("compile: setValid of unknown header %q", x.Header)
		}
		valid := x.Valid
		return func(m *machine) error {
			m.valid[hi] = valid
			if valid {
				for _, o := range m.ordered {
					if o == hi {
						return nil
					}
				}
				m.ordered = append(m.ordered, hi)
			}
			return nil
		}, nil
	case *p4.Exit:
		return func(m *machine) error {
			m.exited = true
			return nil
		}, nil
	}
	return nil, fmt.Errorf("compile: unsupported statement %T", st)
}

// applyGuard resolves a table application site. When the site sits
// inside an action/register-action scope, nothing referenced by the
// control's actions, register actions, or table keys may be bound in
// the enclosing scope chain: the reference interpreter would resolve
// such names through its dynamic frame stack, which apply-level slot
// resolution cannot reproduce, so we refuse to compile and the whole
// switch falls back to the reference engine.
func (cc *compiler) applyGuard(c *p4.Control, sc *cscope, name string) (*ctable, error) {
	ctl := cc.ctlOf(c)
	tb, ok := ctl.tables[name]
	if !ok {
		return nil, fmt.Errorf("compile: unknown table %q", name)
	}
	if sc != nil {
		for ref := range ctl.refNames {
			if _, bound := sc.lookup(ref); bound {
				return nil, fmt.Errorf("compile: table %q applied under a scope binding %q (dynamic scoping)", name, ref)
			}
		}
	}
	return tb, nil
}

func (cc *compiler) ctlOf(c *p4.Control) *cctl {
	if cc.p.egress != nil && cc.p.egress.c == c {
		return cc.p.egress
	}
	return cc.p.ingress
}

func (cc *compiler) callStmt(c *p4.Control, sc *cscope, x *p4.CallStmt) (stmtFn, error) {
	if x.Recv == "" {
		a := c.ActionByName(x.Method)
		if a == nil {
			return nil, fmt.Errorf("compile: unknown action %q", x.Method)
		}
		inst, err := cc.action(c, sc, a)
		if err != nil {
			return nil, err
		}
		argFns, err := cc.exprs(c, sc, x.Args)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			// Every argument is evaluated first (side effects included),
			// matching the reference call sequence.
			var buf [8]val
			vals := buf[:0]
			if len(argFns) > len(buf) {
				vals = make([]val, 0, len(argFns))
			}
			for _, f := range argFns {
				vals = append(vals, f(m))
			}
			for i, slot := range inst.params {
				if i < len(vals) {
					m.frame[slot] = val{vals[i].wrapped(), inst.bits[i]}
				} else {
					m.frame[slot] = val{0, inst.bits[i]}
				}
			}
			return m.run(inst.body)
		}, nil
	}
	// Register primitives (v1model style) take precedence over
	// register actions, mirroring the reference dispatch order.
	if rf, ok := cc.s.regs[x.Recv]; ok {
		switch x.Method {
		case "read":
			if len(x.Args) < 2 {
				return nil, fmt.Errorf("compile: register read needs destination and index")
			}
			dst, ok := x.Args[0].(*p4.FieldRef)
			if !ok {
				return nil, fmt.Errorf("compile: register read destination must be a field")
			}
			idxFn, err := cc.expr(c, sc, x.Args[1])
			if err != nil {
				return nil, err
			}
			dbits := cc.s.fields[dst.String()]
			store := cc.assignTarget(sc, dst)
			return func(m *machine) error {
				idx := int(idxFn(m).wrapped())
				var v uint64
				if idx >= 0 && idx < rf.size {
					v = rf.load(idx)
				}
				store(m, val{v, dbits})
				return nil
			}, nil
		case "write":
			if len(x.Args) < 2 {
				return nil, fmt.Errorf("compile: register write needs index and value")
			}
			idxFn, err := cc.expr(c, sc, x.Args[0])
			if err != nil {
				return nil, err
			}
			valFn, err := cc.expr(c, sc, x.Args[1])
			if err != nil {
				return nil, err
			}
			return func(m *machine) error {
				idx := int(idxFn(m).wrapped())
				v := valFn(m)
				if idx >= 0 && idx < rf.size {
					rf.store(idx, v.wrapped())
				}
				return nil
			}, nil
		}
	}
	if ra := c.RegActByName(x.Recv); ra != nil && x.Method == "execute" {
		exec, err := cc.regact(c, sc, ra, x.Args)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			_, err := exec(m)
			return err
		}, nil
	}
	return nil, fmt.Errorf("compile: unsupported call %s.%s", x.Recv, x.Method)
}

// Expressions ----------------------------------------------------------

func (cc *compiler) exprs(c *p4.Control, sc *cscope, es []p4.Expr) ([]evalFn, error) {
	var out []evalFn
	for _, e := range es {
		f, err := cc.expr(c, sc, e)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func (cc *compiler) expr(c *p4.Control, sc *cscope, e p4.Expr) (evalFn, error) {
	switch x := e.(type) {
	case *p4.IntLit:
		b := x.Bits
		if b == 0 {
			b = 64
		}
		v := val{x.Val, b}
		return func(m *machine) val { return v }, nil
	case *p4.FieldRef:
		name := x.String()
		if slot, ok := sc.lookup(name); ok {
			return func(m *machine) val { return m.frame[slot] }, nil
		}
		slot := cc.globalSlot(name)
		return func(m *machine) val { return m.frame[slot] }, nil
	case *p4.Bin:
		xf, err := cc.expr(c, sc, x.X)
		if err != nil {
			return nil, err
		}
		yf, err := cc.expr(c, sc, x.Y)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[x.Op]
		if !ok {
			// The reference evalBin yields a zero of the combined width
			// for unknown operators.
			return func(m *machine) val {
				a, b := xf(m), yf(m)
				return val{0, combinedBits(a, b)}
			}, nil
		}
		return func(m *machine) val { return op(xf(m), yf(m)) }, nil
	case *p4.Un:
		xf, err := cc.expr(c, sc, x.X)
		if err != nil {
			return nil, err
		}
		op, ok := unOps[x.Op]
		if !ok {
			return xf, nil
		}
		return func(m *machine) val { return op(xf(m)) }, nil
	case *p4.Cast:
		xf, err := cc.expr(c, sc, x.X)
		if err != nil {
			return nil, err
		}
		bits := x.Bits
		mask := maskOf(bits)
		if x.Signed {
			return func(m *machine) val {
				v := xf(m)
				if v.bits < bits {
					return val{uint64(v.signed()) & mask, bits}
				}
				return val{v.wrapped() & mask, bits}
			}, nil
		}
		return func(m *machine) val {
			v := xf(m)
			return val{v.wrapped() & mask, bits}
		}, nil
	case *p4.TernaryExpr:
		condF, err := cc.expr(c, sc, x.Cond)
		if err != nil {
			return nil, err
		}
		aF, err := cc.expr(c, sc, x.A)
		if err != nil {
			return nil, err
		}
		bF, err := cc.expr(c, sc, x.B)
		if err != nil {
			return nil, err
		}
		return func(m *machine) val {
			if condF(m).wrapped() != 0 {
				return aF(m)
			}
			return bF(m)
		}, nil
	case *p4.CallExpr:
		return cc.callExpr(c, sc, x)
	}
	return nil, fmt.Errorf("compile: unsupported expression %T", e)
}

func (cc *compiler) callExpr(c *p4.Control, sc *cscope, x *p4.CallExpr) (evalFn, error) {
	if x.Method == "isValid" {
		name := x.Recv
		if len(name) > 4 && name[:4] == "hdr." {
			name = name[4:]
		}
		hi, ok := cc.p.hdrIdx[name]
		if !ok {
			// Never-declared headers are never valid.
			return func(m *machine) val { return val{0, 1} }, nil
		}
		return func(m *machine) val {
			if m.valid[hi] {
				return val{1, 1}
			}
			return val{0, 1}
		}, nil
	}
	// Register actions and apply_hit resolve against the ingress
	// control in expression position, mirroring the reference evalCall.
	ing := cc.s.Prog.Ingress
	if ra := ing.RegActByName(x.Recv); ra != nil && x.Method == "execute" {
		exec, err := cc.regact(ing, sc, ra, x.Args)
		if err != nil {
			return nil, err
		}
		return func(m *machine) val {
			v, err := exec(m)
			if err != nil {
				return val{0, 32}
			}
			return v
		}, nil
	}
	if h := cc.hashDecl(x.Recv); h != nil && x.Method == "get" {
		bits := h.Bits
		mask := maskOf(bits)
		if h.Algo == "random" {
			return func(m *machine) val {
				return val{m.sw.nextRand() >> 17 & mask, bits}
			}, nil
		}
		argFns, err := cc.exprs(c, sc, x.Args)
		if err != nil {
			return nil, err
		}
		hf := hashFn(h.Algo)
		return func(m *machine) val {
			// Evaluate every argument before touching the shared hash
			// buffer: an argument may itself hash (nested get), and the
			// buffer must not alias across nesting levels.
			var buf [8]val
			vals := buf[:0]
			if len(argFns) > len(buf) {
				vals = make([]val, 0, len(argFns))
			}
			for _, af := range argFns {
				vals = append(vals, af(m))
			}
			data := m.hashBuf[:0]
			for _, v := range vals {
				nb := (v.bits + 7) / 8
				if nb == 0 {
					nb = 4
				}
				for i := nb - 1; i >= 0; i-- {
					data = append(data, byte(v.wrapped()>>(8*uint(i))))
				}
			}
			m.hashBuf = data
			return val{hf(data) & mask, bits}
		}, nil
	}
	if x.Method == "apply_hit" {
		if ing.TableByName(x.Recv) != nil {
			tb, err := cc.applyGuard(ing, sc, x.Recv)
			if err != nil {
				return nil, err
			}
			return func(m *machine) val {
				hit, err := tb.apply(m)
				if err != nil {
					return val{0, 32}
				}
				if hit {
					return val{1, 1}
				}
				return val{0, 1}
			}, nil
		}
		// Unknown table: the reference errored inside applyTable and
		// eval folded that to val{0,32}.
		return func(m *machine) val { return val{0, 32} }, nil
	}
	// The reference evalCall errors here; eval folds it to val{0,32}.
	return func(m *machine) val { return val{0, 32} }, nil
}

// hashDecl finds a hash extern by name, ingress declarations first.
func (cc *compiler) hashDecl(name string) *p4.HashDecl {
	for _, h := range cc.s.Prog.Ingress.Hashes {
		if h.Name == name {
			return h
		}
	}
	if cc.s.Prog.Egress != nil {
		for _, h := range cc.s.Prog.Egress.Hashes {
			if h.Name == name {
				return h
			}
		}
	}
	return nil
}

// hashFn resolves an algorithm name to its implementation once, so the
// per-packet path skips the string dispatch of hashBytes.
func hashFn(algo string) func([]byte) uint64 {
	switch algo {
	case "crc16":
		return crc16
	case "crc32":
		return crc32IEEE
	case "crc64":
		return crc64ECMA
	case "xor16":
		return xor16
	case "csum16", "csum16r":
		return csum16
	case "identity":
		return identityHash
	}
	return crc32IEEE
}
