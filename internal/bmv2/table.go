package bmv2

// table.go specializes each match-action table into a matcher at
// compile time: a hash index for all-exact-key tables (the CACHE and
// CALC dispatch pattern), a sorted-prefix walk for single-key LPM
// tables, and the reference linear scan for everything else (ternary,
// range, mixed). The materialized matcher lives in an immutable
// snapshot (tsnap) behind an atomic pointer, RCU style: the data path
// loads the snapshot with a single atomic read and never takes a lock,
// while control-plane mutations (insert/delete/clear/sort/default
// change) rebuild a fresh snapshot under the switch's writer mutex and
// publish it atomically. Readers mid-packet keep the snapshot they
// loaded; the next packet sees the new one.

import (
	"fmt"
	"sort"
	"sync/atomic"

	"netcl/internal/p4"
)

// tkind selects the matcher specialization.
type tkind int

const (
	tLinear tkind = iota
	tExact
	tLPM
)

// maxExactKeys bounds the width of the exact-index tuple key.
const maxExactKeys = 4

// centry is a compiled table entry: the action resolved to an
// apply-level instance and the argument vals materialized once.
type centry struct {
	e        *p4.Entry
	act      *caction // nil for NoAction / missing action call
	args     []val
	unknown  string // non-empty: action name that failed to resolve
	eligible bool   // len(e.Keys) matches the table's key count
	plen     int    // clamped prefix length (LPM sort key)
}

// tsnap is one immutable published matcher state. Everything the data
// path needs to match and act is in here; nothing in a published tsnap
// is ever mutated again.
type tsnap struct {
	ents   []centry
	exact  map[[maxExactKeys]uint64]int // key tuple -> first entry index
	lpmIdx []int                        // entry indices, prefix length descending (stable)

	defAct     *caction
	defArgs    []val
	defUnknown string
}

// ctable is a compiled match-action table.
type ctable struct {
	name   string
	sw     *Switch
	ctl    *cctl
	t      *p4.Table
	keyFns []evalFn
	kinds  []p4.MatchKind
	kind   tkind

	snap atomic.Pointer[tsnap]
}

// table compiles the static shape of one table (key closures at
// apply-level scope, matcher choice). Entries are materialized later
// by rebuild, once action instances exist.
func (cc *compiler) table(ctl *cctl, t *p4.Table) (*ctable, error) {
	tb := &ctable{name: t.Name, sw: cc.s, ctl: ctl, t: t}
	for _, k := range t.Keys {
		f, err := cc.expr(ctl.c, nil, k.Expr)
		if err != nil {
			return nil, err
		}
		tb.keyFns = append(tb.keyFns, f)
		tb.kinds = append(tb.kinds, k.Match)
	}
	switch {
	case len(t.Keys) >= 1 && len(t.Keys) <= maxExactKeys && t.AllExact():
		tb.kind = tExact
	case t.SingleLPM():
		tb.kind = tLPM
	default:
		tb.kind = tLinear
	}
	return tb, nil
}

// tupleOf extracts the exact-index map key of an entry.
func tupleOf(e *p4.Entry) [maxExactKeys]uint64 {
	var k [maxExactKeys]uint64
	for i := 0; i < len(e.Keys) && i < maxExactKeys; i++ {
		k[i] = e.Keys[i].Value
	}
	return k
}

// compileEntry resolves one entry against the control's apply-level
// action instances.
func (tb *ctable) compileEntry(e *p4.Entry) centry {
	ce := centry{e: e, eligible: len(e.Keys) == len(tb.keyFns)}
	if tb.kind == tLPM && ce.eligible {
		plen := e.Keys[0].PrefixLen
		if plen < 0 {
			plen = 0
		}
		ce.plen = plen
	}
	if e.Action != nil && e.Action.Name != "NoAction" {
		a := tb.ctl.actions[e.Action.Name]
		if a == nil {
			ce.unknown = e.Action.Name
		} else {
			ce.act = a
			for _, v := range e.Action.Args {
				ce.args = append(ce.args, val{v, 64})
			}
		}
	}
	return ce
}

// rebuild materializes a fresh snapshot from the switch's current entry
// list and the table's current default action, and publishes it. Called
// at compile time and, under the switch's writer mutex, on every
// control-plane mutation — never from the data path.
func (tb *ctable) rebuild() {
	sn := &tsnap{}
	entries := tb.sw.entries[tb.name]
	for _, e := range entries {
		sn.ents = append(sn.ents, tb.compileEntry(e))
	}
	switch tb.kind {
	case tExact:
		sn.exact = make(map[[maxExactKeys]uint64]int, len(sn.ents))
		for i := range sn.ents {
			if !sn.ents[i].eligible {
				continue
			}
			k := tupleOf(sn.ents[i].e)
			// First-inserted entry wins on duplicate tuples, like the
			// strict score comparison of the linear scan.
			if _, dup := sn.exact[k]; !dup {
				sn.exact[k] = i
			}
		}
	case tLPM:
		for i := range sn.ents {
			if sn.ents[i].eligible {
				sn.lpmIdx = append(sn.lpmIdx, i)
			}
		}
		// Stable: equal prefix lengths keep insertion order, so the
		// walk finds the same winner the scan's strict > would.
		sort.SliceStable(sn.lpmIdx, func(a, b int) bool {
			return sn.ents[sn.lpmIdx[a]].plen > sn.ents[sn.lpmIdx[b]].plen
		})
	}
	if d := tb.t.Default; d != nil && d.Name != "NoAction" {
		a := tb.ctl.actions[d.Name]
		if a == nil {
			sn.defUnknown = d.Name
		} else {
			sn.defAct = a
			for _, v := range d.Args {
				sn.defArgs = append(sn.defArgs, val{v, 64})
			}
		}
	}
	tb.snap.Store(sn)
}

// apply matches and executes the table on the current machine state.
func (tb *ctable) apply(m *machine) (bool, error) {
	sn := tb.snap.Load()
	keys := m.keys[:0]
	for _, kf := range tb.keyFns {
		keys = append(keys, kf(m))
	}
	m.keys = keys

	var ce *centry
	switch tb.kind {
	case tExact:
		var tk [maxExactKeys]uint64
		for i := range keys {
			tk[i] = keys[i].wrapped()
		}
		if idx, ok := sn.exact[tk]; ok {
			ce = &sn.ents[idx]
		}
	case tLPM:
		kval := keys[0].wrapped()
		bits := keys[0].bits
		for _, idx := range sn.lpmIdx {
			e := &sn.ents[idx]
			plen := e.plen
			if plen > bits {
				continue
			}
			shift := uint(bits - plen)
			if plen == 0 || kval>>shift == e.e.Keys[0].Value>>shift {
				ce = e
				break
			}
		}
	default:
		ce = tb.scan(sn, keys)
	}

	if ce == nil {
		if sn.defUnknown != "" {
			return false, fmt.Errorf("unknown default action %q", sn.defUnknown)
		}
		if sn.defAct != nil {
			if err := sn.defAct.invoke(m, sn.defArgs); err != nil {
				return false, err
			}
		}
		return false, nil
	}
	if ce.unknown != "" {
		return false, fmt.Errorf("unknown action %q", ce.unknown)
	}
	if ce.act != nil {
		if err := ce.act.invoke(m, ce.args); err != nil {
			return false, err
		}
	}
	return true, nil
}

// scan is the fallback linear matcher — semantically identical to the
// reference applyTable loop, including the explicit matched flag that
// separates "no match" from "matched with score 0".
func (tb *ctable) scan(sn *tsnap, keys []val) *centry {
	var best *centry
	bestScore := 0
	matched := false
	for i := range sn.ents {
		ce := &sn.ents[i]
		if !ce.eligible {
			continue
		}
		ok := true
		score := 0
		for ki := range ce.e.Keys {
			kv := &ce.e.Keys[ki]
			kval := keys[ki].wrapped()
			switch tb.kinds[ki] {
			case p4.MatchExact:
				if kval != kv.Value {
					ok = false
				}
			case p4.MatchTernary:
				if kval&kv.Mask != kv.Value&kv.Mask {
					ok = false
				}
				score -= ce.e.Priority
			case p4.MatchLPM:
				bits := keys[ki].bits
				plen := kv.PrefixLen
				if plen < 0 {
					plen = 0
				}
				if plen > bits {
					ok = false
					break
				}
				shift := uint(bits - plen)
				if plen == 0 || kval>>shift == kv.Value>>shift {
					score = plen
				} else {
					ok = false
				}
			case p4.MatchRange:
				if kval < kv.Value || kval > kv.Hi {
					ok = false
				}
				score -= ce.e.Priority
			}
			if !ok {
				break
			}
		}
		if ok && (!matched || score > bestScore) {
			best = ce
			bestScore = score
			matched = true
		}
	}
	return best
}
