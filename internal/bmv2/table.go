package bmv2

// table.go specializes each match-action table into a matcher at
// compile time: a persistent hash trie for all-exact-key tables (the
// CACHE and CALC dispatch pattern) and a forwarding decision diagram
// (fdd.go) for everything else — LPM, ternary, range, mixed — with
// the sorted-prefix walk and the reference linear scan kept as the
// fallback for FDD-ineligible tables and diverging runtime key
// widths. The materialized matcher lives in an
// immutable snapshot (tsnap) inside a program-wide generation behind
// one atomic pointer, RCU style: the data path pins the generation
// with a single atomic read at packet start and never takes a lock,
// while control-plane mutations build fresh snapshots under the
// switch's writer mutex and publish one new generation atomically.
// Because the whole rule set swaps in a single pointer store, a packet
// observes either the pre-batch or the post-batch rules of every table
// — never a mix (the transactional guarantee of Switch.Write).
//
// Exact tables are updated incrementally: their snapshot holds a
// persistent map (pmap.go), so applying a one-entry delta costs
// O(log n) path copies instead of an O(table) rebuild. LPM and linear
// tables — small in practice — rebuild from the entry store.

import (
	"fmt"
	"sort"
	"sync/atomic"

	"netcl/internal/p4"
)

// tkind selects the matcher specialization.
type tkind int

const (
	tLinear tkind = iota
	tExact
	tLPM
)

// maxExactKeys bounds the width of the exact-index tuple key.
const maxExactKeys = 4

// centry is a compiled table entry: the action resolved to an
// apply-level instance and the argument vals materialized once.
type centry struct {
	e        *p4.Entry
	act      *caction // nil for NoAction / missing action call
	args     []val
	unknown  string // non-empty: action name that failed to resolve
	eligible bool   // len(e.Keys) matches the table's key count
	plen     int    // clamped prefix length (LPM sort key)
}

// tsnap is one immutable published matcher state. Everything the data
// path needs to match and act is in here; nothing in a published tsnap
// is ever mutated again. Exact tables use the persistent map pm;
// LPM/linear tables use the materialized entry slice.
//
// Before publication a snapshot staged by a batch carries that batch's
// ownership token, letting later ops of the same batch update it in
// place instead of re-copying the struct per op. Publication drops the
// token reference on the caller side, so the next batch sees a foreign
// owner and copies.
type tsnap struct {
	pm     *pnode   // exact: tuple -> compiled entry (persistent)
	ents   []centry // LPM/linear: compiled entries in store order
	lpmIdx []int    // entry indices, prefix length descending (stable)
	dd     *fdd     // decision diagram over ents (fdd.go); nil = walk/scan

	defAct     *caction
	defArgs    []val
	defUnknown string

	owner *powner // batch that may still edit this snapshot
}

// withPM rebinds the matcher root, copying the snapshot unless it is
// already privately owned by token o.
func (sn *tsnap) withPM(pm *pnode, o *powner) *tsnap {
	if o != nil && sn.owner == o {
		sn.pm = pm
		return sn
	}
	cp := *sn
	cp.pm = pm
	cp.owner = o
	return &cp
}

// generation is the program-wide rule-set version: one snapshot per
// compiled table, indexed by the table's gslot. Published as a whole
// behind cprog.gen, so multi-table batches swap atomically.
type generation struct {
	snaps []*tsnap
}

// ctable is a compiled match-action table.
type ctable struct {
	name   string
	sw     *Switch
	ctl    *cctl
	t      *p4.Table
	keyFns []evalFn
	kinds  []p4.MatchKind
	kind   tkind
	gslot  int // index of this table's snapshot in a generation

	// kbits/kstatic: statically inferred key widths (fdd.go). The
	// decision diagram is built only when every key width is static.
	kbits   []int
	kstatic bool
	// builds counts snapshot materializations — the amortization guard:
	// a WriteBatch must cost one build per touched LPM/linear table, not
	// one per op (pinned by TestBatchRebuildAmortized).
	builds uint64
}

// table compiles the static shape of one table (key closures at
// apply-level scope, matcher choice). Entries are materialized later
// by build, once action instances exist.
func (cc *compiler) table(ctl *cctl, t *p4.Table) (*ctable, error) {
	tb := &ctable{name: t.Name, sw: cc.s, ctl: ctl, t: t, kstatic: true}
	for _, k := range t.Keys {
		f, err := cc.expr(ctl.c, nil, k.Expr)
		if err != nil {
			return nil, err
		}
		tb.keyFns = append(tb.keyFns, f)
		tb.kinds = append(tb.kinds, k.Match)
		kb, ok := cc.staticBits(k.Expr)
		tb.kbits = append(tb.kbits, kb)
		tb.kstatic = tb.kstatic && ok
	}
	switch {
	case len(t.Keys) >= 1 && len(t.Keys) <= maxExactKeys && t.AllExact():
		tb.kind = tExact
	case t.SingleLPM():
		tb.kind = tLPM
	default:
		tb.kind = tLinear
	}
	tb.gslot = len(cc.p.tabs)
	cc.p.tabs = append(cc.p.tabs, tb)
	return tb, nil
}

// tupleOf extracts the exact-index map key of an entry.
func tupleOf(e *p4.Entry) [maxExactKeys]uint64 {
	var k [maxExactKeys]uint64
	for i := 0; i < len(e.Keys) && i < maxExactKeys; i++ {
		k[i] = e.Keys[i].Value
	}
	return k
}

// tupleOfVals zero-pads a key-value tuple into the exact-index key.
func tupleOfVals(vals []uint64) [maxExactKeys]uint64 {
	var k [maxExactKeys]uint64
	for i := 0; i < len(vals) && i < maxExactKeys; i++ {
		k[i] = vals[i]
	}
	return k
}

// compileEntry resolves one entry against the control's apply-level
// action instances.
func (tb *ctable) compileEntry(e *p4.Entry) centry {
	ce := centry{e: e, eligible: len(e.Keys) == len(tb.keyFns)}
	if tb.kind == tLPM && ce.eligible {
		plen := e.Keys[0].PrefixLen
		if plen < 0 {
			plen = 0
		}
		ce.plen = plen
	}
	if e.Action != nil && e.Action.Name != "NoAction" {
		a := tb.ctl.actions[e.Action.Name]
		if a == nil {
			ce.unknown = e.Action.Name
		} else {
			ce.act = a
			for _, v := range e.Action.Args {
				ce.args = append(ce.args, val{v, 64})
			}
		}
	}
	return ce
}

// compileDefault resolves the table's current default action into sn.
func (tb *ctable) compileDefault(sn *tsnap) {
	sn.defAct, sn.defArgs, sn.defUnknown = nil, nil, ""
	if d := tb.t.Default; d != nil && d.Name != "NoAction" {
		a := tb.ctl.actions[d.Name]
		if a == nil {
			sn.defUnknown = d.Name
		} else {
			sn.defAct = a
			for _, v := range d.Args {
				sn.defArgs = append(sn.defArgs, val{v, 64})
			}
		}
	}
}

// build materializes a fresh snapshot from the switch's current entry
// store and the table's current default action. Called at compile
// time and, under the switch's writer mutex, for O(table)-shaped
// mutations (clear, sort, LPM/linear deltas) — never from the data
// path. The caller publishes the result.
func (tb *ctable) build() *tsnap {
	atomic.AddUint64(&tb.builds, 1)
	sn := &tsnap{}
	es := tb.sw.entries[tb.name]
	switch tb.kind {
	case tExact:
		if es != nil {
			// One token for the whole build: every trie node is owned by
			// this loop, so inserts edit in place instead of path-copying
			// n times. The token goes out of scope with the build, freezing
			// the result.
			o := &powner{}
			for _, e := range es.ents {
				if e == nil {
					continue
				}
				ce := tb.compileEntry(e)
				if !ce.eligible {
					continue
				}
				// First-inserted entry wins on duplicate tuples, like the
				// strict score comparison of the linear scan.
				t := tupleOf(e)
				sn.pm, _ = pinsert(sn.pm, 0, &pleaf{hash: phash(t), tuple: t, ce: ce}, false, o)
			}
		}
	case tLPM:
		if es != nil {
			for _, e := range es.ents {
				if e == nil {
					continue
				}
				sn.ents = append(sn.ents, tb.compileEntry(e))
			}
		}
		for i := range sn.ents {
			if sn.ents[i].eligible {
				sn.lpmIdx = append(sn.lpmIdx, i)
			}
		}
		// Stable: equal prefix lengths keep insertion order, so the
		// walk finds the same winner the scan's strict > would.
		sort.SliceStable(sn.lpmIdx, func(a, b int) bool {
			return sn.ents[sn.lpmIdx[a]].plen > sn.ents[sn.lpmIdx[b]].plen
		})
	default:
		if es != nil {
			for _, e := range es.ents {
				if e == nil {
					continue
				}
				sn.ents = append(sn.ents, tb.compileEntry(e))
			}
		}
	}
	if tb.kind != tExact && !tb.sw.fddOff {
		// The lpmIdx/ents fallback stays materialized alongside the
		// diagram: match-time width checks may still reject the walk.
		sn.dd = buildFDD(tb, sn)
	}
	tb.compileDefault(sn)
	return sn
}

// deltaInsert returns the snapshot after adding one entry. Exact
// tables path-copy the persistent map in O(log n); other kinds report
// needing a full build by returning nil.
func (tb *ctable) deltaInsert(old *tsnap, e *p4.Entry, o *powner) *tsnap {
	if tb.kind != tExact {
		return nil
	}
	ce := tb.compileEntry(e)
	if !ce.eligible {
		return old // can never match an exact table; snapshot unchanged
	}
	t := tupleOf(e)
	pm, changed := pinsert(old.pm, 0, &pleaf{hash: phash(t), tuple: t, ce: ce}, false, o)
	if !changed {
		return old // duplicate tuple: first-inserted keeps winning
	}
	return old.withPM(pm, o)
}

// deltaDelete returns the snapshot after removing every entry matching
// the full key tuple. Exact tables path-copy in O(log n); other kinds
// return nil to request a full build.
func (tb *ctable) deltaDelete(old *tsnap, keyVals []uint64, o *powner) *tsnap {
	if tb.kind != tExact {
		return nil
	}
	if len(keyVals) != len(tb.keyFns) {
		return old // arity mismatch only ever hits ineligible entries
	}
	t := tupleOfVals(keyVals)
	pm, removed := pdelete(old.pm, 0, phash(t), t, o)
	if !removed {
		return old
	}
	return old.withPM(pm, o)
}

// deltaReplace rebinds a tuple to a fresh entry (the modify op). Exact
// only; other kinds return nil to request a full build.
func (tb *ctable) deltaReplace(old *tsnap, e *p4.Entry, o *powner) *tsnap {
	if tb.kind != tExact {
		return nil
	}
	ce := tb.compileEntry(e)
	if !ce.eligible {
		// The replacement cannot match; drop the old binding.
		return tb.deltaDelete(old, entryKeyVals(e), o)
	}
	t := tupleOf(e)
	pm, _ := pinsert(old.pm, 0, &pleaf{hash: phash(t), tuple: t, ce: ce}, true, o)
	return old.withPM(pm, o)
}

// deltaDefault returns the snapshot with the default action recompiled
// from the table's (already updated) declaration — O(1) for every
// kind, sharing the matcher state.
func (tb *ctable) deltaDefault(old *tsnap) *tsnap {
	sn := *old
	tb.compileDefault(&sn)
	return &sn
}

// apply matches and executes the table on the current machine state,
// reading the matcher snapshot pinned in the machine's generation.
func (tb *ctable) apply(m *machine) (bool, error) {
	sn := m.gen.snaps[tb.gslot]
	keys := m.keys[:0]
	for _, kf := range tb.keyFns {
		keys = append(keys, kf(m))
	}
	m.keys = keys

	var ce *centry
	switch tb.kind {
	case tExact:
		var tk [maxExactKeys]uint64
		for i := range keys {
			tk[i] = keys[i].wrapped()
		}
		ce = pget(sn.pm, phash(tk), tk)
	default:
		authoritative := false
		if sn.dd != nil {
			ce, authoritative = sn.dd.match(keys, sn.ents)
		}
		if !authoritative && tb.kind == tLPM {
			kval := keys[0].wrapped()
			bits := keys[0].bits
			for _, idx := range sn.lpmIdx {
				e := &sn.ents[idx]
				plen := e.plen
				if plen > bits {
					continue
				}
				shift := uint(bits - plen)
				if plen == 0 || kval>>shift == e.e.Keys[0].Value>>shift {
					ce = e
					break
				}
			}
		} else if !authoritative {
			ce = tb.scan(sn, keys)
		}
	}

	if ce == nil {
		if sn.defUnknown != "" {
			return false, fmt.Errorf("unknown default action %q", sn.defUnknown)
		}
		if sn.defAct != nil {
			if err := sn.defAct.invoke(m, sn.defArgs); err != nil {
				return false, err
			}
		}
		return false, nil
	}
	if ce.unknown != "" {
		return false, fmt.Errorf("unknown action %q", ce.unknown)
	}
	if ce.act != nil {
		if err := ce.act.invoke(m, ce.args); err != nil {
			return false, err
		}
	}
	return true, nil
}

// scan is the fallback linear matcher — semantically identical to the
// reference applyTable loop, including the explicit matched flag that
// separates "no match" from "matched with score 0".
func (tb *ctable) scan(sn *tsnap, keys []val) *centry {
	var best *centry
	bestScore := 0
	matched := false
	for i := range sn.ents {
		ce := &sn.ents[i]
		if !ce.eligible {
			continue
		}
		ok := true
		score := 0
		for ki := range ce.e.Keys {
			kv := &ce.e.Keys[ki]
			kval := keys[ki].wrapped()
			switch tb.kinds[ki] {
			case p4.MatchExact:
				if kval != kv.Value {
					ok = false
				}
			case p4.MatchTernary:
				if kval&kv.Mask != kv.Value&kv.Mask {
					ok = false
				}
				score -= ce.e.Priority
			case p4.MatchLPM:
				bits := keys[ki].bits
				plen := kv.PrefixLen
				if plen < 0 {
					plen = 0
				}
				if plen > bits {
					ok = false
					break
				}
				shift := uint(bits - plen)
				if plen == 0 || kval>>shift == kv.Value>>shift {
					score = plen
				} else {
					ok = false
				}
			case p4.MatchRange:
				if kval < kv.Value || kval > kv.Hi {
					ok = false
				}
				score -= ce.e.Priority
			}
			if !ok {
				break
			}
		}
		if ok && (!matched || score > bestScore) {
			best = ce
			bestScore = score
			matched = true
		}
	}
	return best
}
