package bmv2

// fdd_test.go proves the decision-diagram matcher (fdd.go) equivalent
// to both fallbacks: the linear scan / sorted-prefix walk of the
// compiled engine and the reference interpreter's applyTable. Entry
// sets and probe keys are fuzzed across every non-exact match kind,
// priorities, sloppy prefixes, and holed masks; runtime mutations are
// applied mid-fuzz so rebuilt diagrams are exercised too. The tests
// assert that diagrams actually materialized (sn.dd != nil), so a
// regression that silently stops building them fails loudly instead of
// passing vacuously through the scan fallback.

import (
	"bytes"
	"math/rand"
	"testing"

	"netcl/internal/p4"
)

// snapFor returns the published snapshot of the named table.
func snapFor(t *testing.T, sw *Switch, name string) *tsnap {
	t.Helper()
	tb := tableFor(t, sw, name)
	return sw.prog.gen.Load().snaps[tb.gslot]
}

func tableFor(t *testing.T, sw *Switch, name string) *ctable {
	t.Helper()
	if sw.prog == nil {
		t.Fatal("switch has no compiled program")
	}
	for _, tb := range sw.prog.tabs {
		if tb.name == name {
			return tb
		}
	}
	t.Fatalf("table %q not compiled", name)
	return nil
}

// randLPMEntry builds a k1 (32-bit) LPM entry; one in four keeps junk
// bits below the prefix, which every matcher must ignore identically.
func randLPMEntry(rng *rand.Rand, out uint64) *p4.Entry {
	plen := rng.Intn(33)
	v := uint64(rng.Uint32())
	if plen < 32 && rng.Intn(4) != 0 {
		v &^= 1<<(32-uint(plen)) - 1
	}
	return entry("set_out", out, 0, p4.KeyValue{Value: v, PrefixLen: plen})
}

// randTernEntry builds a k1 ternary entry whose mask is a prefix with
// up to three holes punched into it — few enough free high bits that
// the diagram stays eligible, varied enough to exercise the subset
// enumeration. Values occasionally keep bits outside the mask.
func randTernEntry(rng *rand.Rand, out uint64) *p4.Entry {
	plen := rng.Intn(33)
	mask := uint64(0)
	if plen > 0 {
		mask = (1<<uint(plen) - 1) << (32 - uint(plen))
	}
	for h := rng.Intn(4); h > 0 && plen > 0; h-- {
		mask &^= 1 << (32 - uint(1+rng.Intn(plen)))
	}
	v := uint64(rng.Uint32())
	if rng.Intn(3) != 0 {
		v &= mask
	}
	return entry("set_out", out, rng.Intn(8), p4.KeyValue{Value: v, Mask: mask})
}

// randRangeEntry builds a k2 (16-bit) range entry; some are empty
// (hi < lo) and some overflow the key domain.
func randRangeEntry(rng *rand.Rand, out uint64) *p4.Entry {
	lo := uint64(rng.Intn(1 << 16))
	hi := lo + uint64(rng.Intn(1<<12)) - 8
	return entry("set_out", out, rng.Intn(8), p4.KeyValue{Value: lo, Hi: hi})
}

func randMatcherEntries(rng *rand.Rand) map[string][]*p4.Entry {
	ents := map[string][]*p4.Entry{}
	for i, n := 0, 1+rng.Intn(24); i < n; i++ {
		ents["lpm1"] = append(ents["lpm1"], randLPMEntry(rng, uint64(1000+i)))
	}
	for i, n := 0, 1+rng.Intn(24); i < n; i++ {
		ents["tern1"] = append(ents["tern1"], randTernEntry(rng, uint64(2000+i)))
	}
	for i, n := 0, 1+rng.Intn(16); i < n; i++ {
		ents["rng1"] = append(ents["rng1"], randRangeEntry(rng, uint64(3000+i)))
	}
	for i, n := 0, rng.Intn(6); i < n; i++ {
		ents["ex2"] = append(ents["ex2"], entry("set_out", uint64(4000+i), 0,
			p4.KeyValue{Value: uint64(rng.Intn(8)), PrefixLen: -1},
			p4.KeyValue{Value: uint64(rng.Intn(8)), PrefixLen: -1}))
	}
	return ents
}

// probeKeys biases fuzz probes toward rule boundaries: every entry
// endpoint, its neighbors, and uniform random fill.
func probeKeys(rng *rand.Rand, ents map[string][]*p4.Entry) (k1s []uint32, k2s []uint16) {
	for _, e := range append(ents["lpm1"], ents["tern1"]...) {
		v := uint32(e.Keys[0].Value)
		k1s = append(k1s, v, v-1, v+1, v|uint32(rng.Intn(256)))
	}
	for _, e := range ents["rng1"] {
		lo, hi := uint16(e.Keys[0].Value), uint16(e.Keys[0].Hi)
		k2s = append(k2s, lo, lo-1, lo+1, hi, hi+1)
	}
	for i := 0; i < 32; i++ {
		k1s = append(k1s, rng.Uint32())
		k2s = append(k2s, uint16(rng.Intn(1<<16)))
	}
	return k1s, k2s
}

// diffOne runs one packet through every engine variant and demands
// byte-identical results.
func diffOne(t *testing.T, stage string, sws []*Switch, pkt []byte) {
	t.Helper()
	var ref *Result
	var refErr error
	for i, sw := range sws {
		res, err := sw.Process(append([]byte(nil), pkt...), 1)
		if i == 0 {
			ref, refErr = res, err
			continue
		}
		if (err == nil) != (refErr == nil) {
			t.Fatalf("%s: engine %d error mismatch: %v vs %v (pkt %x)", stage, i, err, refErr, pkt)
		}
		if err != nil {
			continue
		}
		if !bytes.Equal(res.Data, ref.Data) || res.Port != ref.Port ||
			res.Dropped != ref.Dropped || res.Mcast != ref.Mcast {
			t.Fatalf("%s: engine %d diverged on pkt %x:\n  fdd: %+v\n  got: %+v", stage, i, pkt, ref, res)
		}
	}
}

// TestFDDDifferentialFuzz: FDD-on vs FDD-off (scan / prefix walk) vs
// the reference interpreter over random single-key rule sets of every
// non-exact kind, before and after runtime mutations.
func TestFDDDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eedf))
	rounds := 12
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		ents := randMatcherEntries(rng)
		fddSw := New(matcherProg(ents))
		scanSw := New(matcherProg(ents))
		scanSw.SetFDD(false)
		refSw := New(matcherProg(ents))
		refSw.SetEngine(EngineReference)
		if !fddSw.Compiled() {
			t.Fatalf("not compiled: %v", fddSw.CompileErr())
		}
		for _, name := range []string{"lpm1", "tern1", "rng1"} {
			if snapFor(t, fddSw, name).dd == nil {
				t.Fatalf("round %d: %s: no decision diagram built", round, name)
			}
			if snapFor(t, scanSw, name).dd != nil {
				t.Fatalf("round %d: %s: SetFDD(false) left a diagram", round, name)
			}
		}
		sws := []*Switch{fddSw, scanSw, refSw}

		fuzz := func(stage string) {
			k1s, k2s := probeKeys(rng, ents)
			for i := 0; i < 300; i++ {
				sel := uint8(1 + rng.Intn(4))
				k1 := k1s[rng.Intn(len(k1s))]
				k2 := k2s[rng.Intn(len(k2s))]
				diffOne(t, stage, sws, matcherPkt(sel, k1, k2))
			}
		}
		fuzz("static")

		// Runtime mutations rebuild the diagrams; replay the fuzz after.
		for i := 0; i < 6; i++ {
			var table string
			var e *p4.Entry
			switch rng.Intn(3) {
			case 0:
				table, e = "lpm1", randLPMEntry(rng, uint64(5000+i))
			case 1:
				table, e = "tern1", randTernEntry(rng, uint64(6000+i))
			default:
				table, e = "rng1", randRangeEntry(rng, uint64(7000+i))
			}
			ents[table] = append(ents[table], e)
			for _, sw := range sws {
				if err := sw.InsertEntry(table, e); err != nil {
					t.Fatal(err)
				}
			}
		}
		if n := len(ents["lpm1"]); n > 0 {
			victim := ents["lpm1"][rng.Intn(n)]
			for _, sw := range sws {
				sw.DeleteEntry("lpm1", victim.Keys[0].Value)
			}
		}
		fuzz("mutated")
	}
}

// mixProg exercises one table whose key tuple mixes all four match
// kinds over shared fields — the order (exact, lpm, range, ternary)
// makes the reference's order-dependent score fold maximally awkward:
// the LPM assignment clobbers nothing, then range and ternary each
// subtract the priority.
func mixProg(entries []*p4.Entry) *p4.Program {
	pp := matcherProg(nil)
	ctl := pp.Ingress
	sel := p4.FR("hdr", "h", "sel")
	k1 := p4.FR("hdr", "h", "k1")
	k2 := p4.FR("hdr", "h", "k2")
	ctl.Tables = append(ctl.Tables, &p4.Table{
		Name: "mix4",
		Keys: []*p4.TableKey{
			{Expr: sel, Match: p4.MatchExact},
			{Expr: k1, Match: p4.MatchLPM},
			{Expr: k2, Match: p4.MatchRange},
			{Expr: k1, Match: p4.MatchTernary},
		},
		Actions: []string{"set_out", "miss_out"},
		Default: &p4.ActionCall{Name: "miss_out"},
		Entries: entries,
	})
	ctl.Apply = []p4.Stmt{
		&p4.ApplyTable{Table: "mix4"},
		&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: &p4.IntLit{Val: 9, Bits: 16}},
	}
	return pp
}

// TestFDDMixedKeysDifferential fuzzes the four-kind mixed table.
func TestFDDMixedKeysDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0517))
	rounds := 8
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		var ents []*p4.Entry
		for i, n := 0, 1+rng.Intn(16); i < n; i++ {
			le := randLPMEntry(rng, 0)
			re := randRangeEntry(rng, 0)
			te := randTernEntry(rng, 0)
			ents = append(ents, entry("set_out", uint64(100+i), rng.Intn(8),
				p4.KeyValue{Value: uint64(rng.Intn(4)), PrefixLen: -1},
				le.Keys[0], re.Keys[0], te.Keys[0]))
		}
		fddSw := New(mixProg(ents))
		scanSw := New(mixProg(ents))
		scanSw.SetFDD(false)
		refSw := New(mixProg(ents))
		refSw.SetEngine(EngineReference)
		if !fddSw.Compiled() {
			t.Fatalf("not compiled: %v", fddSw.CompileErr())
		}
		if snapFor(t, fddSw, "mix4").dd == nil {
			t.Fatalf("round %d: mix4: no decision diagram built", round)
		}
		sws := []*Switch{fddSw, scanSw, refSw}
		k1s := []uint32{}
		k2s := []uint16{}
		for _, e := range ents {
			k1s = append(k1s, uint32(e.Keys[1].Value), uint32(e.Keys[1].Value)+1, uint32(e.Keys[3].Value))
			k2s = append(k2s, uint16(e.Keys[2].Value), uint16(e.Keys[2].Hi), uint16(e.Keys[2].Hi)+1)
		}
		for i := 0; i < 400; i++ {
			sel := uint8(rng.Intn(5))
			k1 := k1s[rng.Intn(len(k1s))]
			if rng.Intn(3) == 0 {
				k1 = rng.Uint32()
			}
			k2 := k2s[rng.Intn(len(k2s))]
			if rng.Intn(3) == 0 {
				k2 = uint16(rng.Intn(1 << 16))
			}
			diffOne(t, "mix4", sws, matcherPkt(sel, k1, k2))
		}
	}
}

// TestFDDIneligibleFallsBack: a ternary mask with too many scattered
// free bits must refuse the diagram (subset enumeration would explode)
// and run on the scan fallback — still correctly.
func TestFDDIneligibleFallsBack(t *testing.T) {
	ents := map[string][]*p4.Entry{"tern1": {
		// 0xAAAAAAAA: 16 free high bits above the lowest set bit.
		entry("set_out", 77, 0, p4.KeyValue{Value: 0x2AAA_AAAA, Mask: 0xAAAA_AAAA}),
		entry("set_out", 88, 1, p4.KeyValue{Value: 0, Mask: 0}),
	}}
	sw := New(matcherProg(ents))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}
	if snapFor(t, sw, "tern1").dd != nil {
		t.Fatal("scattered-mask table unexpectedly built a diagram")
	}
	ref := New(matcherProg(ents))
	ref.SetEngine(EngineReference)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		k1 := rng.Uint32()
		if i%2 == 0 {
			k1 = (k1 & 0xAAAA_AAAA) | 0x2AAA_AAAA&0xAAAA_AAAA // force rule-0 hits
		}
		diffOne(t, "ineligible", []*Switch{sw, ref}, matcherPkt(3, k1, 0))
	}
}

// TestBatchRebuildAmortized pins the control-plane cost model: one
// WriteBatch touching a non-exact table N times materializes exactly
// one snapshot (and one diagram) for it, while N single-op inserts
// cost N builds. A regression to per-op rebuilds turns control-plane
// bursts quadratic and fails here.
func TestBatchRebuildAmortized(t *testing.T) {
	const n = 16
	sw := New(matcherProg(nil))
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}
	tb := tableFor(t, sw, "lpm1")
	rng := rand.New(rand.NewSource(42))

	before := tb.builds
	b := NewWriteBatch()
	for i := 0; i < n; i++ {
		b.Insert("lpm1", randLPMEntry(rng, uint64(i)))
	}
	if _, err := sw.Write(b); err != nil {
		t.Fatal(err)
	}
	if got := tb.builds - before; got != 1 {
		t.Fatalf("batched %d inserts cost %d builds, want 1", n, got)
	}
	if snapFor(t, sw, "lpm1").dd == nil {
		t.Fatal("batch commit did not build the diagram")
	}

	before = tb.builds
	for i := 0; i < n; i++ {
		if err := sw.InsertEntry("lpm1", randLPMEntry(rng, uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.builds - before; got != n {
		t.Fatalf("%d single inserts cost %d builds, want %d", n, got, n)
	}
}
