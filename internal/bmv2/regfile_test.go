package bmv2

import (
	"testing"

	"netcl/internal/p4"
)

// progWithRegister builds a minimal program declaring one ingress
// register plus a register action incrementing cell [index arg].
func progWithRegister(size int, init []int64) *p4.Program {
	ing := &p4.Control{
		Name: "MyIngress",
		Registers: []*p4.Register{
			{Name: "reg_r", Bits: 32, Size: size, Init: init},
		},
		RegActs: []*p4.RegisterAction{
			{
				Name: "ra_inc", Register: "reg_r",
				Body: []p4.Stmt{
					&p4.Assign{
						LHS: &p4.FieldRef{Parts: []string{"m"}},
						RHS: &p4.Bin{
							Op: "+",
							X:  &p4.FieldRef{Parts: []string{"m"}},
							Y:  &p4.IntLit{Val: 1, Bits: 32},
						},
					},
				},
			},
		},
		Apply: []p4.Stmt{},
	}
	return &p4.Program{Name: "regtest", Ingress: ing}
}

func TestRegfileLazyAllocation(t *testing.T) {
	// A big declared register must not materialize cell pages until a
	// write touches one.
	const size = 1 << 20
	s := New(progWithRegister(size, nil))
	decl, alloc := s.RegisterFileBytes()
	if decl != size*8 {
		t.Fatalf("declared bytes = %d, want %d", decl, size*8)
	}
	if alloc != 0 {
		t.Fatalf("allocated %d bytes before any write, want 0", alloc)
	}
	// Unwritten cells read as zero, even far beyond any page.
	if v, err := s.RegisterRead("reg_r", size-1); err != nil || v != 0 {
		t.Fatalf("read of untouched cell = %d, %v; want 0, nil", v, err)
	}
	if _, alloc = s.RegisterFileBytes(); alloc != 0 {
		t.Fatalf("read materialized %d bytes, want 0", alloc)
	}

	// One write materializes exactly one page.
	if err := s.RegisterWrite("reg_r", size/2, 7); err != nil {
		t.Fatal(err)
	}
	if _, alloc = s.RegisterFileBytes(); alloc != regPageSize*8 {
		t.Fatalf("allocated %d bytes after one write, want %d", alloc, regPageSize*8)
	}
	if v, _ := s.RegisterRead("reg_r", size/2); v != 7 {
		t.Fatalf("read back %d, want 7", v)
	}
	// A neighbor on the same page stays zero and costs nothing extra.
	if v, _ := s.RegisterRead("reg_r", size/2+1); v != 0 {
		t.Fatalf("same-page neighbor = %d, want 0", v)
	}
	if _, alloc = s.RegisterFileBytes(); alloc != regPageSize*8 {
		t.Fatalf("allocated %d bytes, want still %d", alloc, regPageSize*8)
	}
}

func TestRegfileInitValues(t *testing.T) {
	// Nonzero init values are visible immediately; zero init entries do
	// not force pages.
	init := make([]int64, regPageSize+3)
	init[regPageSize+2] = 99 // second page
	s := New(progWithRegister(4*regPageSize, init))
	if v, _ := s.RegisterRead("reg_r", regPageSize+2); v != 99 {
		t.Fatalf("init cell = %d, want 99", v)
	}
	if v, _ := s.RegisterRead("reg_r", 0); v != 0 {
		t.Fatalf("zero-init cell = %d, want 0", v)
	}
	// Only the page holding the nonzero value was materialized.
	if _, alloc := s.RegisterFileBytes(); alloc != regPageSize*8 {
		t.Fatalf("allocated %d bytes, want %d", alloc, regPageSize*8)
	}
}

func TestRegfileOddSize(t *testing.T) {
	// A register smaller than one page still works edge to edge.
	s := New(progWithRegister(3, nil))
	if err := s.RegisterWrite("reg_r", 2, 5); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.RegisterRead("reg_r", 2); v != 5 {
		t.Fatalf("read back %d, want 5", v)
	}
	if err := s.RegisterWrite("reg_r", 3, 1); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if _, err := s.RegisterRead("reg_r", -1); err == nil {
		t.Fatal("negative-index read succeeded")
	}
}

func TestRegfileBatchWrite(t *testing.T) {
	s := New(progWithRegister(1<<16, nil))
	b := NewWriteBatch().
		RegisterWrite("reg_r", 10, 3).
		RegisterWrite("reg_r", regPageSize+1, 4)
	if _, err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.RegisterRead("reg_r", 10); v != 3 {
		t.Fatalf("cell 10 = %d, want 3", v)
	}
	if v, _ := s.RegisterRead("reg_r", regPageSize+1); v != 4 {
		t.Fatalf("cell %d = %d, want 4", regPageSize+1, v)
	}
	if _, alloc := s.RegisterFileBytes(); alloc != 2*regPageSize*8 {
		t.Fatalf("allocated %d bytes, want %d", alloc, 2*regPageSize*8)
	}
	// A batch failing validation must stage nothing: the failing op
	// aborts the whole batch, including the valid first write.
	bad := NewWriteBatch().
		RegisterWrite("reg_r", 20, 9).
		RegisterWrite("reg_r", 1<<20, 1) // out of range
	if _, err := s.Write(bad); err == nil {
		t.Fatal("out-of-range batch write succeeded")
	}
	if v, _ := s.RegisterRead("reg_r", 20); v != 0 {
		t.Fatalf("failed batch leaked a write: cell 20 = %d, want 0", v)
	}
}
