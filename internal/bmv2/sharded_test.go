package bmv2

import (
	"runtime"
	"sync"
	"testing"

	"netcl/internal/p4"
)

// shardProg builds a small stateful program: a per-flow accumulator
// register driven by a register action, plus an exact-match forwarding
// table — the shape of every NetCL app (stateful slot + MAT dispatch).
func shardProg() *p4.Program {
	pp := &p4.Program{Name: "s", Target: p4.TargetTNA}
	pp.Headers = []*p4.HeaderDecl{{Name: "h", Fields: []*p4.Field{
		{Name: "flow", Bits: 16},
		{Name: "seq", Bits: 16},
		{Name: "delta", Bits: 32},
		{Name: "out", Bits: 32},
	}}}
	pp.Metadata = []*p4.Field{
		{Name: "egress_port", Bits: 16}, {Name: "mcast_grp", Bits: 16}, {Name: "drop_flag", Bits: 1},
	}
	pp.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{
		{Name: "start", Extracts: []string{"h"}, Next: "accept"},
	}}
	ctl := &p4.Control{Name: "In"}
	ctl.Registers = []*p4.Register{{Name: "acc", Bits: 32, Size: 1 << 10}}
	ctl.RegActs = []*p4.RegisterAction{{
		Name: "accum", Register: "acc",
		Body: []p4.Stmt{
			&p4.Assign{LHS: p4.FR("m"), RHS: &p4.Bin{Op: "+", X: p4.FR("m"), Y: p4.FR("hdr", "h", "delta")}},
			&p4.Assign{LHS: p4.FR("o"), RHS: p4.FR("m")},
		},
	}}
	ctl.Actions = []*p4.ActionDecl{
		{Name: "set_port", Params: []*p4.Field{{Name: "p", Bits: 16}},
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: p4.FR("p")}}},
	}
	ctl.Tables = []*p4.Table{{
		Name:    "fwd",
		Keys:    []*p4.TableKey{{Expr: p4.FR("hdr", "h", "flow"), Match: p4.MatchExact}},
		Actions: []string{"set_port"},
		Default: &p4.ActionCall{Name: "set_port", Args: []uint64{9}},
	}}
	ctl.Apply = []p4.Stmt{
		&p4.Assign{LHS: p4.FR("hdr", "h", "out"),
			RHS: &p4.CallExpr{Recv: "accum", Method: "execute",
				Args: []p4.Expr{&p4.Cast{Bits: 32, X: p4.FR("hdr", "h", "flow")}}}},
		&p4.ApplyTable{Table: "fwd"},
	}
	pp.Ingress = ctl
	return pp
}

func shardPkt(flow, seq uint16, delta uint32) []byte {
	return []byte{
		byte(flow >> 8), byte(flow),
		byte(seq >> 8), byte(seq),
		byte(delta >> 24), byte(delta >> 16), byte(delta >> 8), byte(delta),
		0, 0, 0, 0,
	}
}

func shardFlowKey(pkt []byte) uint64 {
	return uint64(pkt[0])<<8 | uint64(pkt[1])
}

// resultHash folds one processing outcome into a flow's running hash
// chain (FNV-1a over the result bytes and egress decision).
func resultHash(h uint64, res *Result, err error) uint64 {
	const prime = 1099511628211
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	if err != nil {
		step(0xEE)
		return h
	}
	for _, b := range res.Data {
		step(b)
	}
	step(byte(res.Port))
	step(byte(res.Port >> 8))
	step(byte(res.Mcast))
	if res.Dropped {
		step(1)
	}
	if res.NoMatch {
		step(2)
	}
	return h
}

// TestShardedPerFlowDeterminism: interleaved flows on 4 shards must
// produce, per flow, byte-identical results to a fresh single-shard
// run of the same per-flow packet sequence.
func TestShardedPerFlowDeterminism(t *testing.T) {
	const flows, perFlow = 32, 64
	sw := New(shardProg())
	if !sw.Compiled() {
		t.Fatalf("compile refused: %v", sw.CompileErr())
	}
	sh, err := NewSharded(sw, ShardedConfig{Shards: 4, QueueDepth: 16, FlowKey: shardFlowKey})
	if err != nil {
		t.Fatal(err)
	}

	hashes := make([]uint64, flows) // hashes[f] written only by f's shard
	var pkts [][]byte
	for seq := 0; seq < perFlow; seq++ {
		for f := 0; f < flows; f++ {
			pkts = append(pkts, shardPkt(uint16(f), uint16(seq), uint32(f*1000+seq)))
		}
	}
	for _, pkt := range pkts {
		f := shardFlowKey(pkt)
		cb := func(res *Result, err error) { hashes[f] = resultHash(hashes[f], res, err) }
		for !sh.Submit(pkt, cb) {
			runtime.Gosched() // closed-loop test: retry on backpressure
		}
	}
	sh.Drain()

	// Replay the same per-flow sequences on a fresh single-shard
	// switch: flows are disjoint in register state, so flow-major
	// order reproduces what each flow observed.
	ref := New(shardProg())
	want := make([]uint64, flows)
	for f := 0; f < flows; f++ {
		for seq := 0; seq < perFlow; seq++ {
			res, err := ref.Process(shardPkt(uint16(f), uint16(seq), uint32(f*1000+seq)), 0)
			want[f] = resultHash(want[f], res, err)
		}
	}
	for f := 0; f < flows; f++ {
		if hashes[f] != want[f] {
			t.Errorf("flow %d: sharded hash %x != single-shard hash %x", f, hashes[f], want[f])
		}
	}

	// Register state must agree cell by cell too.
	for f := 0; f < flows; f++ {
		got, err := sh.RegisterRead("acc", f)
		if err != nil {
			t.Fatal(err)
		}
		wantV, err := ref.RegisterRead("acc", f)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantV {
			t.Errorf("acc[%d] = %d, want %d", f, got, wantV)
		}
	}

	st := sh.Stats()
	if st.Processed != uint64(len(pkts)) {
		t.Errorf("processed %d packets, submitted %d", st.Processed, len(pkts))
	}
	sh.Close()
}

// TestShardedConcurrentControlPlane hammers every control-plane
// mutation against in-flight packet processing: run under -race, this
// is the proof that table RCU snapshots and register quiescing keep
// the engine data-race-free.
func TestShardedConcurrentControlPlane(t *testing.T) {
	sw := New(shardProg())
	sh, err := NewSharded(sw, ShardedConfig{Shards: 4, QueueDepth: 32, FlowKey: shardFlowKey})
	if err != nil {
		t.Fatal(err)
	}

	const producers, perProducer = 3, 400
	var submitted uint64
	var wg sync.WaitGroup
	var mu sync.Mutex // guards submitted across producers
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := uint64(0)
			for i := 0; i < perProducer; i++ {
				// Each producer owns a disjoint flow range, so per-flow
				// FIFO submission order is well defined.
				pkt := shardPkt(uint16(p*100+i%50), uint16(i), uint32(i))
				for !sh.Submit(pkt, nil) {
					runtime.Gosched()
				}
				n++
			}
			mu.Lock()
			submitted += n
			mu.Unlock()
		}(p)
	}

	// Control-plane hammer: register reads/writes (quiesced), table
	// insert/delete and default changes (RCU), interleaved with the
	// producers above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			flow := uint64(i % 50)
			if err := sh.InsertEntry("fwd", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: flow, PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "set_port", Args: []uint64{flow + 1}},
			}); err != nil {
				t.Error(err)
				return
			}
			if _, err := sh.RegisterRead("acc", int(flow)); err != nil {
				t.Error(err)
				return
			}
			if err := sh.RegisterWrite("acc", 900+i%10, uint64(i)); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				sh.DeleteEntry("fwd", flow)
			}
			if i%7 == 0 {
				if err := sh.SetDefaultAction("fwd", "set_port", []uint64{uint64(7 + i%2)}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	wg.Wait()
	sh.Drain()
	st := sh.Stats()
	if st.Processed != submitted {
		t.Errorf("processed %d != submitted %d", st.Processed, submitted)
	}
	if got := sw.PacketsIn; got != submitted {
		t.Errorf("switch counted %d packets in, want %d", got, submitted)
	}
	sh.Close()
}

// TestShardedBackpressure: a full shard queue makes Submit fail fast
// and count the rejection.
func TestShardedBackpressure(t *testing.T) {
	sw := New(shardProg())
	sh, err := NewSharded(sw, ShardedConfig{Shards: 1, QueueDepth: 1, FlowKey: shardFlowKey})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	blocker := func(*Result, error) {
		once.Do(func() { close(entered) })
		<-gate
	}
	for !sh.Submit(shardPkt(1, 0, 1), blocker) {
		runtime.Gosched()
	}
	<-entered // worker is parked in the callback
	// Fill the 1-deep queue, then observe rejection.
	for !sh.Submit(shardPkt(1, 1, 1), nil) {
		runtime.Gosched()
	}
	rejected := false
	for i := 0; i < 100 && !rejected; i++ {
		rejected = !sh.Submit(shardPkt(1, 2, 1), nil)
	}
	if !rejected {
		t.Error("Submit never reported backpressure on a full queue")
	}
	close(gate)
	sh.Drain()
	if st := sh.Stats(); st.QueueFull == 0 {
		t.Error("queue-full counter not incremented")
	}
	sh.Close()
}

// TestShardedRefusesReference: the reference engine shares per-packet
// state and must not be sharded.
func TestShardedRefusesReference(t *testing.T) {
	sw := New(shardProg())
	sw.SetEngine(EngineReference)
	if _, err := NewSharded(sw, ShardedConfig{Shards: 2}); err == nil {
		t.Fatal("NewSharded accepted a reference-engine switch")
	}
}
