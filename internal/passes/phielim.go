package passes

import (
	"netcl/internal/ir"
)

// PhiElim demotes φ-nodes to memory: each φ gets a fresh local
// variable (alloca), a store before the terminator of every incoming
// block, and a load at the φ's position (§VI-B: "we eliminate φ-nodes
// by introducing a fresh variable for each"). The resulting allocas
// become plain P4 local variables in code generation.
func PhiElim(f *ir.Func) int {
	entry := f.Entry()
	if entry == nil {
		return 0
	}
	n := 0
	for _, b := range f.Blocks {
		for _, phi := range append([]*ir.Instr(nil), b.Instrs...) {
			if phi.Op != ir.OpPhi {
				continue
			}
			name := phi.Name
			if name == "" {
				name = "phi"
			}
			al := &ir.Instr{Op: ir.OpAlloca, Ty: phi.Ty, Elem: phi.Ty, Count: 1, Name: name, PhiVar: true}
			prependInstr(entry, al)
			for k, in := range phi.In {
				st := &ir.Instr{
					Op:   ir.OpStore,
					Args: []ir.Value{al, ir.ConstOf(ir.U32, 0), phi.Args[k]},
				}
				in.InsertBeforeTerm(st)
			}
			ld := &ir.Instr{Op: ir.OpLoad, Ty: phi.Ty, Args: []ir.Value{al, ir.ConstOf(ir.U32, 0)}, Name: name}
			// The load takes the φ's slot.
			replaceInPlace(b, phi, ld)
			f.ReplaceAllUses(phi, ld)
			n++
		}
	}
	return n
}
