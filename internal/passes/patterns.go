package passes

import (
	"netcl/internal/ir"
)

// DetectByteSwaps recognizes byte swaps written as bit-slice shifts and
// ors and replaces them with OpByteSwap, which Tofino can do in a
// single stage (§VI-B). Handles the 16-bit form
//
//	(x << 8) | (x >> 8)            (width 16)
//
// and the masked 32-bit form built from two 16-bit halves. Returns the
// number of replacements.
func DetectByteSwaps(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, i := range append([]*ir.Instr(nil), b.Instrs...) {
			if i.Op != ir.OpOr || i.Ty.Bits != 16 {
				continue
			}
			x := matchBswap16(i)
			if x == nil {
				continue
			}
			sw := &ir.Instr{Op: ir.OpByteSwap, Ty: i.Ty, Args: []ir.Value{x}}
			replaceInPlace(b, i, sw)
			f.ReplaceAllUses(i, sw)
			n++
		}
	}
	return n
}

// matchBswap16 matches or(shl(x,8), lshr(x,8)) in either order.
func matchBswap16(i *ir.Instr) ir.Value {
	a, aok := i.Args[0].(*ir.Instr)
	b, bok := i.Args[1].(*ir.Instr)
	if !aok || !bok {
		return nil
	}
	if a.Op == ir.OpLShr && b.Op == ir.OpShl {
		a, b = b, a
	}
	if a.Op != ir.OpShl || b.Op != ir.OpLShr {
		return nil
	}
	ca, okA := a.Args[1].(*ir.Const)
	cb, okB := b.Args[1].(*ir.Const)
	if !okA || !okB || ca.Val != 8 || cb.Val != 8 {
		return nil
	}
	if a.Args[0] != b.Args[0] {
		return nil
	}
	return a.Args[0]
}

// replaceInPlace swaps new into old's slot within block b.
func replaceInPlace(b *ir.Block, old, new *ir.Instr) {
	for n, x := range b.Instrs {
		if x == old {
			b.Append(new) // assign ID/block
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
			b.Instrs[n] = new
			return
		}
	}
}

// CmpToSubMSB rewrites ordered comparisons whose operands are both
// dynamic into a subtraction followed by an MSB check (§VI-B: "direct
// translation of some icmp predicates with dynamic operands may
// produce code that does not compile for Tofino"). Unsigned compares
// are widened by one power-of-two width first so the borrow lands in
// the MSB. Returns the number of rewrites.
func CmpToSubMSB(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for pos := 0; pos < len(b.Instrs); pos++ {
			i := b.Instrs[pos]
			if i.Op != ir.OpICmp {
				continue
			}
			_, aConst := i.Args[0].(*ir.Const)
			_, bConst := i.Args[1].(*ir.Const)
			if aConst || bConst {
				continue // constant-operand compares translate fine
			}
			var lhs, rhs ir.Value
			signed := false
			switch i.Pred {
			case ir.PredSLT:
				lhs, rhs, signed = i.Args[0], i.Args[1], true
			case ir.PredSGT:
				lhs, rhs, signed = i.Args[1], i.Args[0], true
			case ir.PredULT:
				lhs, rhs = i.Args[0], i.Args[1]
			case ir.PredUGT:
				lhs, rhs = i.Args[1], i.Args[0]
			default:
				continue
			}
			t := lhs.Type()
			work := t
			var ext ir.Op
			if !signed {
				// Widen so that a borrow is observable in the MSB.
				if t.Bits >= 64 {
					continue
				}
				work = ir.Type{Bits: t.Bits * 2}
				ext = ir.OpZExt
			}
			var seq []*ir.Instr
			a, bb := lhs, rhs
			if ext != 0 {
				ea := &ir.Instr{Op: ext, Ty: work, Args: []ir.Value{lhs}}
				eb := &ir.Instr{Op: ext, Ty: work, Args: []ir.Value{rhs}}
				seq = append(seq, ea, eb)
				a, bb = ea, eb
			}
			sub := &ir.Instr{Op: ir.OpSub, Ty: work, Args: []ir.Value{a, bb}}
			msb := &ir.Instr{Op: ir.OpLShr, Ty: work, Args: []ir.Value{sub, ir.ConstOf(work, int64(work.Bits-1))}}
			cmp := &ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: ir.PredNE, Args: []ir.Value{msb, ir.ConstOf(work, 0)}}
			seq = append(seq, sub, msb, cmp)
			// Splice the sequence where the compare was.
			for _, s := range seq {
				b.Append(s)
				b.Instrs = b.Instrs[:len(b.Instrs)-1]
			}
			rest := append([]*ir.Instr(nil), b.Instrs[pos+1:]...)
			b.Instrs = append(b.Instrs[:pos], seq...)
			b.Instrs = append(b.Instrs, rest...)
			for _, s := range seq {
				b.Adopt(s)
			}
			f.ReplaceAllUses(i, cmp)
			n++
			pos += len(seq) - 1
		}
	}
	return n
}
