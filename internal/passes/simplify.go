package passes

import (
	"fmt"
	"strings"

	"netcl/internal/ir"
)

// Simplify runs constant folding, algebraic simplification, CFG
// cleanup, dead-code elimination, and dominance-scoped CSE to a
// fixpoint. It corresponds to the paper's "peephole optimization,
// instruction simplification and DCE passes" stage.
func Simplify(f *ir.Func) {
	for iter := 0; iter < 16; iter++ {
		changed := foldAll(f)
		changed = simplifyCFG(f) || changed
		changed = DCE(f) || changed
		changed = CSE(f) || changed
		if !changed {
			return
		}
	}
}

// foldAll folds constants and applies algebraic identities.
func foldAll(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, i := range append([]*ir.Instr(nil), b.Instrs...) {
			if v := foldInstr(i); v != nil && v != ir.Value(i) {
				f.ReplaceAllUses(i, v)
				b.Remove(i)
				changed = true
			}
		}
	}
	return changed
}

func constArg(i *ir.Instr, n int) (*ir.Const, bool) {
	if n >= len(i.Args) {
		return nil, false
	}
	c, ok := i.Args[n].(*ir.Const)
	return c, ok
}

// foldInstr returns a replacement value for i, or nil.
func foldInstr(i *ir.Instr) ir.Value {
	switch i.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpSDiv, ir.OpURem,
		ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr,
		ir.OpAShr, ir.OpSAddSat, ir.OpSSubSat, ir.OpMin, ir.OpMax:
		a, aok := constArg(i, 0)
		b, bok := constArg(i, 1)
		if aok && bok {
			if v, ok := evalBinConst(i.Op, i.Ty, a, b); ok {
				return v
			}
		}
		// !(a cmp b) → inverted compare (shortens condition chains).
		if i.Op == ir.OpXor && i.Ty == ir.I1 && bok && b.Val == 1 {
			if cmp, ok2 := i.Args[0].(*ir.Instr); ok2 && cmp.Op == ir.OpICmp {
				inv := &ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: cmp.Pred.Invert(),
					Args: []ir.Value{cmp.Args[0], cmp.Args[1]}}
				if blk := i.Block(); blk != nil {
					replaceInPlace(blk, i, inv)
					return inv
				}
			}
		}
		return foldIdentity(i, a, aok, b, bok)
	case ir.OpICmp:
		a, aok := constArg(i, 0)
		b, bok := constArg(i, 1)
		if aok && bok {
			return ir.ConstOf(ir.I1, boolToInt(evalPred(i.Pred, i.Args[0].Type(), a.Val, b.Val)))
		}
		if i.Args[0] == i.Args[1] {
			switch i.Pred {
			case ir.PredEQ, ir.PredULE, ir.PredUGE, ir.PredSLE, ir.PredSGE:
				return ir.ConstOf(ir.I1, 1)
			default:
				return ir.ConstOf(ir.I1, 0)
			}
		}
	case ir.OpSelect:
		if c, ok := constArg(i, 0); ok {
			if c.Val != 0 {
				return i.Args[1]
			}
			return i.Args[2]
		}
		if i.Args[1] == i.Args[2] {
			return i.Args[1]
		}
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc:
		if c, ok := constArg(i, 0); ok {
			v := c.Val
			if i.Op == ir.OpZExt {
				v = int64(c.Uint())
			}
			return ir.ConstOf(i.Ty, v)
		}
		if i.Args[0].Type().Bits == i.Ty.Bits {
			// Same-width conversion: a bit-level no-op.
			return i.Args[0]
		}
		// Collapse ext-of-ext chains.
		if inner, ok := i.Args[0].(*ir.Instr); ok && inner.Op == i.Op &&
			(i.Op == ir.OpZExt || i.Op == ir.OpSExt) {
			i.Args[0] = inner.Args[0]
		}
	case ir.OpByteSwap:
		if c, ok := constArg(i, 0); ok {
			return ir.ConstOf(i.Ty, int64(bswapBits(c.Uint(), i.Ty.Bits)))
		}
	case ir.OpCLZ:
		if c, ok := constArg(i, 0); ok {
			return ir.ConstOf(i.Ty, int64(clzBits(c.Uint(), i.Ty.Bits)))
		}
	case ir.OpCTZ:
		if c, ok := constArg(i, 0); ok {
			return ir.ConstOf(i.Ty, int64(ctzBits(c.Uint(), i.Ty.Bits)))
		}
	}
	return nil
}

func foldIdentity(i *ir.Instr, a *ir.Const, aok bool, b *ir.Const, bok bool) ir.Value {
	x, y := i.Args[0], i.Args[1]
	allOnes := int64(i.Ty.Mask())
	switch i.Op {
	case ir.OpAdd:
		if bok && b.Val == 0 {
			return x
		}
		if aok && a.Val == 0 {
			return y
		}
	case ir.OpSub:
		if bok && b.Val == 0 {
			return x
		}
		if x == y {
			return ir.ConstOf(i.Ty, 0)
		}
	case ir.OpMul:
		if bok && b.Val == 1 {
			return x
		}
		if aok && a.Val == 1 {
			return y
		}
		if (bok && b.Val == 0) || (aok && a.Val == 0) {
			return ir.ConstOf(i.Ty, 0)
		}
	case ir.OpUDiv, ir.OpSDiv:
		if bok && b.Val == 1 {
			return x
		}
	case ir.OpAnd:
		if (bok && b.Val == 0) || (aok && a.Val == 0) {
			return ir.ConstOf(i.Ty, 0)
		}
		if bok && i.Ty.Wrap(b.Val) == allOnes {
			return x
		}
		if aok && i.Ty.Wrap(a.Val) == allOnes {
			return y
		}
		if x == y {
			return x
		}
	case ir.OpOr:
		if bok && b.Val == 0 {
			return x
		}
		if aok && a.Val == 0 {
			return y
		}
		if x == y {
			return x
		}
	case ir.OpXor:
		if bok && b.Val == 0 {
			return x
		}
		if aok && a.Val == 0 {
			return y
		}
		if x == y {
			return ir.ConstOf(i.Ty, 0)
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if bok && b.Val == 0 {
			return x
		}
	case ir.OpMin, ir.OpMax:
		if x == y {
			return x
		}
	}
	return nil
}

// evalBinConst folds a binary op over constants.
func evalBinConst(op ir.Op, t ir.Type, a, b *ir.Const) (ir.Value, bool) {
	av, bv := t.Wrap(a.Val), t.Wrap(b.Val)
	au, bu := uint64(av)&t.Mask(), uint64(bv)&t.Mask()
	switch op {
	case ir.OpAdd:
		return ir.ConstOf(t, av+bv), true
	case ir.OpSub:
		return ir.ConstOf(t, av-bv), true
	case ir.OpMul:
		return ir.ConstOf(t, av*bv), true
	case ir.OpUDiv:
		if bu == 0 {
			return nil, false
		}
		return ir.ConstOf(t, int64(au/bu)), true
	case ir.OpSDiv:
		if bv == 0 {
			return nil, false
		}
		return ir.ConstOf(t, av/bv), true
	case ir.OpURem:
		if bu == 0 {
			return nil, false
		}
		return ir.ConstOf(t, int64(au%bu)), true
	case ir.OpSRem:
		if bv == 0 {
			return nil, false
		}
		return ir.ConstOf(t, av%bv), true
	case ir.OpAnd:
		return ir.ConstOf(t, av&bv), true
	case ir.OpOr:
		return ir.ConstOf(t, av|bv), true
	case ir.OpXor:
		return ir.ConstOf(t, av^bv), true
	case ir.OpShl:
		if bu > 63 {
			return ir.ConstOf(t, 0), true
		}
		return ir.ConstOf(t, av<<bu), true
	case ir.OpLShr:
		if bu > 63 {
			return ir.ConstOf(t, 0), true
		}
		return ir.ConstOf(t, int64(au>>bu)), true
	case ir.OpAShr:
		if bu > 63 {
			bu = 63
		}
		return ir.ConstOf(t, av>>bu), true
	case ir.OpSAddSat:
		s := au + bu
		if s > t.Mask() {
			s = t.Mask()
		}
		return ir.ConstOf(t, int64(s)), true
	case ir.OpSSubSat:
		if bu > au {
			return ir.ConstOf(t, 0), true
		}
		return ir.ConstOf(t, int64(au-bu)), true
	case ir.OpMin:
		if t.Signed {
			if av < bv {
				return ir.ConstOf(t, av), true
			}
			return ir.ConstOf(t, bv), true
		}
		if au < bu {
			return ir.ConstOf(t, int64(au)), true
		}
		return ir.ConstOf(t, int64(bu)), true
	case ir.OpMax:
		if t.Signed {
			if av > bv {
				return ir.ConstOf(t, av), true
			}
			return ir.ConstOf(t, bv), true
		}
		if au > bu {
			return ir.ConstOf(t, int64(au)), true
		}
		return ir.ConstOf(t, int64(bu)), true
	}
	return nil, false
}

// evalPred evaluates a comparison over already-wrapped constants.
func evalPred(p ir.Pred, t ir.Type, a, b int64) bool {
	av, bv := t.Wrap(a), t.Wrap(b)
	au, bu := uint64(av)&t.Mask(), uint64(bv)&t.Mask()
	switch p {
	case ir.PredEQ:
		return av == bv
	case ir.PredNE:
		return av != bv
	case ir.PredULT:
		return au < bu
	case ir.PredULE:
		return au <= bu
	case ir.PredUGT:
		return au > bu
	case ir.PredUGE:
		return au >= bu
	case ir.PredSLT:
		return av < bv
	case ir.PredSLE:
		return av <= bv
	case ir.PredSGT:
		return av > bv
	case ir.PredSGE:
		return av >= bv
	}
	return false
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func bswapBits(v uint64, bits int) uint64 {
	n := bits / 8
	var out uint64
	for i := 0; i < n; i++ {
		out = out<<8 | (v>>(8*uint(i)))&0xFF
	}
	return out
}

func clzBits(v uint64, bits int) uint64 {
	for i := bits - 1; i >= 0; i-- {
		if v>>(uint(i))&1 != 0 {
			return uint64(bits - 1 - i)
		}
	}
	return uint64(bits)
}

func ctzBits(v uint64, bits int) uint64 {
	for i := 0; i < bits; i++ {
		if v>>(uint(i))&1 != 0 {
			return uint64(i)
		}
	}
	return uint64(bits)
}

// simplifyCFG folds constant branches, threads trivial jumps, and
// merges straight-line blocks, keeping φ-nodes consistent.
func simplifyCFG(f *ir.Func) bool {
	changed := false
	// Fold constant and degenerate branches.
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		if c, ok := t.Args[0].(*ir.Const); ok {
			keep, drop := t.Targets[0], t.Targets[1]
			if c.Val == 0 {
				keep, drop = drop, keep
			}
			if drop != keep {
				removePhiEntries(drop, b)
			}
			t.Op = ir.OpJmp
			t.Args = nil
			t.Targets = []*ir.Block{keep}
			changed = true
		} else if t.Targets[0] == t.Targets[1] {
			dedupePhiEntries(t.Targets[0], b)
			t.Op = ir.OpJmp
			t.Args = nil
			t.Targets = t.Targets[:1]
			changed = true
		}
	}
	// Remove unreachable blocks.
	reach := map[*ir.Block]bool{}
	for _, b := range ir.RPO(f) {
		reach[b] = true
	}
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		if !reach[b] {
			for _, s := range b.Succs() {
				if reach[s] {
					removePhiEntries(s, b)
				}
			}
			f.RemoveBlock(b)
			changed = true
		}
	}
	// Merge single-pred/single-succ pairs.
	for {
		merged := false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpJmp {
				continue
			}
			s := t.Targets[0]
			if s == b || s == f.Entry() {
				continue
			}
			if len(s.Preds()) != 1 {
				continue
			}
			// Single predecessor: φ-nodes in s are trivial.
			for _, i := range append([]*ir.Instr(nil), s.Instrs...) {
				if i.Op == ir.OpPhi {
					var v ir.Value = ir.ConstOf(i.Ty, 0)
					if len(i.Args) > 0 {
						v = i.Args[0]
					}
					f.ReplaceAllUses(i, v)
					s.Remove(i)
				}
			}
			b.Remove(t)
			for _, i := range s.Instrs {
				b.Instrs = append(b.Instrs, i)
				b.Adopt(i)
			}
			// φ-nodes in s's successors now flow from b.
			for _, ss := range s.Succs() {
				retargetPhiEntries(ss, s, b)
			}
			s.Instrs = nil
			f.RemoveBlock(s)
			merged = true
			changed = true
			break
		}
		if !merged {
			break
		}
	}
	return changed
}

func removePhiEntries(b *ir.Block, pred *ir.Block) {
	for _, i := range b.Instrs {
		if i.Op != ir.OpPhi {
			continue
		}
		for n := 0; n < len(i.In); n++ {
			if i.In[n] == pred {
				i.In = append(i.In[:n], i.In[n+1:]...)
				i.Args = append(i.Args[:n], i.Args[n+1:]...)
				n--
			}
		}
	}
}

func dedupePhiEntries(b *ir.Block, pred *ir.Block) {
	for _, i := range b.Instrs {
		if i.Op != ir.OpPhi {
			continue
		}
		seen := false
		for n := 0; n < len(i.In); n++ {
			if i.In[n] == pred {
				if seen {
					i.In = append(i.In[:n], i.In[n+1:]...)
					i.Args = append(i.Args[:n], i.Args[n+1:]...)
					n--
				}
				seen = true
			}
		}
	}
}

func retargetPhiEntries(b *ir.Block, from, to *ir.Block) {
	for _, i := range b.Instrs {
		if i.Op != ir.OpPhi {
			continue
		}
		for n := range i.In {
			if i.In[n] == from {
				i.In[n] = to
			}
		}
	}
}

// DCE removes instructions whose results are unused and that have no
// side effects, plus empty φ-nodes. Returns whether anything changed.
func DCE(f *ir.Func) bool {
	used := map[ir.Value]bool{}
	var mark func(v ir.Value)
	mark = func(v ir.Value) {
		if used[v] {
			return
		}
		used[v] = true
		if i, ok := v.(*ir.Instr); ok {
			for _, a := range i.Args {
				mark(a)
			}
		}
	}
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.HasSideEffects() {
			mark(i)
		}
		return true
	})
	changed := false
	for _, b := range f.Blocks {
		var keep []*ir.Instr
		for _, i := range b.Instrs {
			if i.HasSideEffects() || used[i] {
				keep = append(keep, i)
				continue
			}
			// Unused value-producing instruction. Atomic reads and
			// rand are droppable; atomic RMWs are not (side effects).
			changed = true
		}
		if len(keep) != len(b.Instrs) {
			b.Instrs = keep
		}
	}
	if changed {
		simplifyPhis(f)
	}
	return changed
}

// CSE performs dominator-scoped common-subexpression elimination over
// pure instructions. The paper's hoisting stage builds on this.
func CSE(f *ir.Func) bool {
	dt := ir.BuildDomTree(f)
	avail := map[string]*ir.Instr{}
	changed := false
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		var added []string
		for _, i := range append([]*ir.Instr(nil), b.Instrs...) {
			if !i.Pure() {
				continue
			}
			key := cseKey(i)
			if prev, ok := avail[key]; ok {
				f.ReplaceAllUses(i, prev)
				b.Remove(i)
				changed = true
				continue
			}
			avail[key] = i
			added = append(added, key)
		}
		for _, kid := range dt.Children(b) {
			walk(kid)
		}
		for _, k := range added {
			delete(avail, k)
		}
	}
	if f.Entry() != nil {
		walk(f.Entry())
	}
	return changed
}

func cseKey(i *ir.Instr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%v|%s|%s|%d", i.Op, i.Pred, i.Ty, i.HashKind, i.Field, i.Count)
	for _, a := range i.Args {
		switch v := a.(type) {
		case *ir.Const:
			fmt.Fprintf(&b, "|c%d:%v", v.Val, v.Ty)
		default:
			fmt.Fprintf(&b, "|p%p", a)
		}
	}
	return b.String()
}
