// Package passes implements the NetCL device-pipeline transformations
// of the paper (§VI-B): SSA promotion, simplification and DCE, the
// Tofino memory legality checks, access-based memory partitioning,
// lookup-memory duplication, hoisting and speculation, IR pattern
// intrinsics, and φ-elimination before code generation.
package passes

import (
	"netcl/internal/ir"
)

// Mem2Reg promotes scalar allocas (single-element, constant-index
// accesses only) to SSA values, inserting φ-nodes at dominance
// frontiers. Array allocas and dynamically indexed locals are left in
// memory form (they become P4 header stacks).
func Mem2Reg(f *ir.Func) {
	promotable := map[*ir.Instr]bool{}
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpAlloca && i.Count == 1 {
			promotable[i] = true
		}
		return true
	})
	// An alloca is demoted if any use is not a simple load/store slot.
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		switch i.Op {
		case ir.OpLoad, ir.OpStore:
			al, ok := i.Args[0].(*ir.Instr)
			if !ok || al.Op != ir.OpAlloca {
				return true
			}
			idx, ok := i.Args[1].(*ir.Const)
			if !ok || idx.Val != 0 {
				delete(promotable, al)
			}
			// A store whose *value* is the alloca would escape it.
			if i.Op == ir.OpStore {
				if v, ok2 := i.Args[2].(*ir.Instr); ok2 && v.Op == ir.OpAlloca {
					delete(promotable, v)
				}
			}
		default:
			for _, a := range i.Args {
				if ai, ok := a.(*ir.Instr); ok && ai.Op == ir.OpAlloca {
					delete(promotable, ai)
				}
			}
		}
		return true
	})
	if len(promotable) == 0 {
		return
	}

	dt := ir.BuildDomTree(f)
	df := dt.Frontiers()

	// Insert φ-nodes at the iterated dominance frontier of each
	// alloca's definition blocks.
	phiFor := map[*ir.Instr]*ir.Instr{} // phi -> alloca
	phisIn := map[*ir.Block]map[*ir.Instr]*ir.Instr{}
	for al := range promotable {
		var work []*ir.Block
		seen := map[*ir.Block]bool{}
		f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
			if i.Op == ir.OpStore && i.Args[0] == al && !seen[b] {
				seen[b] = true
				work = append(work, b)
			}
			return true
		})
		placed := map[*ir.Block]bool{}
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			for _, fb := range df[b] {
				if placed[fb] {
					continue
				}
				placed[fb] = true
				phi := &ir.Instr{Op: ir.OpPhi, Ty: al.Elem, Name: al.Name}
				// Insert at block start; assign an ID via a prepend.
				prependInstr(fb, phi)
				phiFor[phi] = al
				if phisIn[fb] == nil {
					phisIn[fb] = map[*ir.Instr]*ir.Instr{}
				}
				phisIn[fb][al] = phi
				if !seen[fb] {
					seen[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Rename along the dominator tree.
	stacks := map[*ir.Instr][]ir.Value{}
	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		var pushed []*ir.Instr
		var toRemove []*ir.Instr
		for _, i := range b.Instrs {
			switch i.Op {
			case ir.OpPhi:
				if al, ok := phiFor[i]; ok {
					stacks[al] = append(stacks[al], i)
					pushed = append(pushed, al)
				}
			case ir.OpLoad:
				al, ok := i.Args[0].(*ir.Instr)
				if ok && promotable[al] {
					f.ReplaceAllUses(i, currentVal(stacks, al, i.Ty))
					toRemove = append(toRemove, i)
				}
			case ir.OpStore:
				al, ok := i.Args[0].(*ir.Instr)
				if ok && promotable[al] {
					stacks[al] = append(stacks[al], i.Args[2])
					pushed = append(pushed, al)
					toRemove = append(toRemove, i)
				}
			}
		}
		// Fill φ operands in successors.
		for _, s := range b.Succs() {
			for al, phi := range phisIn[s] {
				phi.Args = append(phi.Args, currentVal(stacks, al, phi.Ty))
				phi.In = append(phi.In, b)
			}
		}
		for _, kid := range dt.Children(b) {
			rename(kid)
		}
		for _, i := range toRemove {
			b.Remove(i)
		}
		for _, al := range pushed {
			stacks[al] = stacks[al][:len(stacks[al])-1]
		}
	}
	rename(f.Entry())

	// Remove the allocas themselves.
	for _, b := range f.Blocks {
		var keep []*ir.Instr
		for _, i := range b.Instrs {
			if i.Op == ir.OpAlloca && promotable[i] {
				continue
			}
			keep = append(keep, i)
		}
		b.Instrs = keep
	}

	// Drop trivial φ-nodes (single distinct operand).
	simplifyPhis(f)
}

// currentVal returns the reaching definition of al, or a zero constant
// for reads of uninitialized locals (their value is undefined, §V-B).
func currentVal(stacks map[*ir.Instr][]ir.Value, al *ir.Instr, ty ir.Type) ir.Value {
	s := stacks[al]
	if len(s) == 0 {
		return ir.ConstOf(ty, 0)
	}
	return s[len(s)-1]
}

// prependInstr inserts i at the start of block b, assigning an ID.
func prependInstr(b *ir.Block, i *ir.Instr) {
	b.Append(i) // assigns ID and block
	copy(b.Instrs[1:], b.Instrs[:len(b.Instrs)-1])
	b.Instrs[0] = i
}

// simplifyPhis removes φ-nodes whose incoming values are all identical
// (or the φ itself), iterating to a fixpoint.
func simplifyPhis(f *ir.Func) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, i := range append([]*ir.Instr(nil), b.Instrs...) {
				if i.Op != ir.OpPhi {
					continue
				}
				var uniq ir.Value
				trivial := true
				for _, a := range i.Args {
					if a == i {
						continue
					}
					if uniq == nil {
						uniq = a
					} else if uniq != a {
						trivial = false
						break
					}
				}
				if trivial {
					if uniq == nil {
						uniq = ir.ConstOf(i.Ty, 0)
					}
					f.ReplaceAllUses(i, uniq)
					b.Remove(i)
					changed = true
				}
			}
		}
	}
}
