package passes

import (
	"testing"
	"testing/quick"

	"netcl/internal/ir"
)

// TestFoldMatchesInterpretation cross-checks the optimizer's constant
// folder against direct evaluation for every binary op and width: for
// random operands, fold(op, a, b) must equal the wrapped arithmetic the
// bmv2 interpreter performs. This pins the compile-time and run-time
// semantics together.
func TestFoldMatchesInterpretation(t *testing.T) {
	types := []ir.Type{ir.U8, ir.U16, ir.U32, ir.S8, ir.S16, ir.S32}
	ops := []ir.Op{
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpSAddSat, ir.OpSSubSat, ir.OpMin, ir.OpMax,
	}
	ref := func(op ir.Op, t ir.Type, a, b int64) (int64, bool) {
		au := uint64(a) & t.Mask()
		bu := uint64(b) & t.Mask()
		switch op {
		case ir.OpAdd:
			return t.Wrap(int64(au + bu)), true
		case ir.OpSub:
			return t.Wrap(int64(au - bu)), true
		case ir.OpMul:
			return t.Wrap(int64(au * bu)), true
		case ir.OpUDiv:
			if bu == 0 {
				return 0, false
			}
			return t.Wrap(int64(au / bu)), true
		case ir.OpURem:
			if bu == 0 {
				return 0, false
			}
			return t.Wrap(int64(au % bu)), true
		case ir.OpAnd:
			return t.Wrap(int64(au & bu)), true
		case ir.OpOr:
			return t.Wrap(int64(au | bu)), true
		case ir.OpXor:
			return t.Wrap(int64(au ^ bu)), true
		case ir.OpShl:
			if bu > 63 {
				return 0, true
			}
			return t.Wrap(int64(au << bu)), true
		case ir.OpLShr:
			if bu > 63 {
				return 0, true
			}
			return t.Wrap(int64(au >> bu)), true
		case ir.OpAShr:
			sh := bu
			if sh > 63 {
				sh = 63
			}
			return t.Wrap(t.Wrap(a) >> sh), true
		case ir.OpSAddSat:
			s := au + bu
			if s > t.Mask() {
				s = t.Mask()
			}
			return t.Wrap(int64(s)), true
		case ir.OpSSubSat:
			if bu > au {
				return 0, true
			}
			return t.Wrap(int64(au - bu)), true
		case ir.OpMin:
			if t.Signed {
				if t.Wrap(a) < t.Wrap(b) {
					return t.Wrap(a), true
				}
				return t.Wrap(b), true
			}
			if au < bu {
				return int64(au), true
			}
			return int64(bu), true
		case ir.OpMax:
			if t.Signed {
				if t.Wrap(a) > t.Wrap(b) {
					return t.Wrap(a), true
				}
				return t.Wrap(b), true
			}
			if au > bu {
				return int64(au), true
			}
			return int64(bu), true
		}
		return 0, false
	}
	f := func(aRaw, bRaw int64, opPick, tyPick uint8) bool {
		op := ops[int(opPick)%len(ops)]
		ty := types[int(tyPick)%len(types)]
		a := ir.ConstOf(ty, aRaw)
		b := ir.ConstOf(ty, bRaw)
		got, gotOK := evalBinConst(op, ty, a, b)
		want, wantOK := ref(op, ty, aRaw, bRaw)
		if gotOK != wantOK {
			t.Logf("op=%v ty=%v a=%d b=%d: ok mismatch (%v vs %v)", op, ty, aRaw, bRaw, gotOK, wantOK)
			return false
		}
		if !gotOK {
			return true
		}
		gc := got.(*ir.Const)
		if gc.Val != want {
			t.Logf("op=%v ty=%v a=%d b=%d: %d vs %d", op, ty, aRaw, bRaw, gc.Val, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPredEvalProperties checks comparison trichotomy and inversion on
// random operands.
func TestPredEvalProperties(t *testing.T) {
	f := func(a, b int64, signedPick bool) bool {
		ty := ir.U16
		if signedPick {
			ty = ir.S16
		}
		lt, gt, eq := ir.PredULT, ir.PredUGT, ir.PredEQ
		if signedPick {
			lt, gt = ir.PredSLT, ir.PredSGT
		}
		nLt := evalPred(lt, ty, a, b)
		nGt := evalPred(gt, ty, a, b)
		nEq := evalPred(eq, ty, a, b)
		// Exactly one of <, >, == holds.
		count := 0
		for _, v := range []bool{nLt, nGt, nEq} {
			if v {
				count++
			}
		}
		if count != 1 {
			return false
		}
		// Inversion: p(a,b) == !invert(p)(a,b).
		return evalPred(lt.Invert(), ty, a, b) == !nLt &&
			evalPred(gt.Swap(), ty, b, a) == nGt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
