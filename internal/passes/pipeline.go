package passes

import (
	"fmt"

	"netcl/internal/ir"
)

// Target identifies a code-generation backend.
type Target string

// Supported targets (§VI): the Tofino Native Architecture and the
// v1model software switch.
const (
	TargetTNA     Target = "tna"
	TargetV1Model Target = "v1model"
)

// Options control the device pass pipeline. The toggles correspond to
// the compiler flags described in §VI-B: programmers can disable
// speculation or lookup duplication and recompile when the P4 compiler
// cannot fit the result.
type Options struct {
	Target Target
	// Speculate enables aggressive speculation of pure instructions
	// (default on; turning it off reduces PHV pressure).
	Speculate bool
	// DuplicateLookups enables per-access duplication of non-managed
	// lookup memory (default on; costs SRAM/TCAM, saves stages).
	DuplicateLookups bool
	// CmpToSubMSB rewrites dynamic ordered compares into sub+MSB
	// checks (default off; a fitting workaround, see §VI-B).
	CmpToSubMSB bool
	// CondDepthThreshold for the memory distance check (default 3).
	CondDepthThreshold int
}

// DefaultOptions returns the default pipeline configuration for a
// target.
func DefaultOptions(t Target) Options {
	return Options{
		Target:             t,
		Speculate:          t == TargetTNA,
		DuplicateLookups:   t == TargetTNA,
		CmpToSubMSB:        false,
		CondDepthThreshold: 3,
	}
}

// Stats reports what the pipeline did (consumed by ablation benches
// and the compiler's -v output).
type Stats struct {
	MemPartitions  int
	LookupDups     int
	Hoisted        int
	Speculated     int
	ByteSwaps      int
	CmpRewrites    int
	PhisEliminated int
	ScalarReplaced int
}

// Run executes the device pass pipeline on a module. The common stage
// (mem2reg, simplification, DAG verification) applies to all targets;
// the Tofino stage adds memory partitioning, lookup duplication,
// legality checks, hoisting, and speculation. φ-elimination runs last
// for all targets so code generation never sees φ-nodes.
func Run(mod *ir.Module, opts Options) (Stats, error) {
	var st Stats
	if opts.CondDepthThreshold == 0 {
		opts.CondDepthThreshold = 3
	}

	// Common stage: guarantees the program compiles for v1model.
	for _, f := range mod.Funcs {
		st.ScalarReplaced += SROA(f)
		Mem2Reg(f)
		Simplify(f)
		if err := ir.Verify(f); err != nil {
			return st, err
		}
	}

	if opts.Target == TargetTNA {
		st.MemPartitions = PartitionMemory(mod)
		if opts.DuplicateLookups {
			st.LookupDups = DuplicateLookups(mod)
		}
		for _, f := range mod.Funcs {
			st.ByteSwaps += DetectByteSwaps(f)
			if opts.CmpToSubMSB {
				st.CmpRewrites += CmpToSubMSB(f)
			}
			st.Hoisted += HoistCommon(f)
			if opts.Speculate {
				st.Speculated += Speculate(f)
			}
			Simplify(f)
		}
		if errs := CheckMemory(mod, MemCheckOptions{CondDepthThreshold: opts.CondDepthThreshold}); len(errs) > 0 {
			return st, fmt.Errorf("%s", errs[0].Msg)
		}
	}

	// φ-elimination and final cleanup for code generation.
	for _, f := range mod.Funcs {
		st.PhisEliminated += PhiElim(f)
		foldAll(f)
		DCE(f)
		if err := ir.Verify(f); err != nil {
			return st, err
		}
	}
	return st, nil
}
