package passes

import (
	"strings"
	"testing"

	"netcl/internal/ir"
	"netcl/internal/lang"
	"netcl/internal/lower"
	"netcl/internal/sema"
)

func buildModule(t *testing.T, src string, dev uint16, defs map[string]uint64) *ir.Module {
	t.Helper()
	var d lang.Diagnostics
	f := lang.ParseFile("test.ncl", src, defs, &d)
	if d.HasErrors() {
		t.Fatalf("parse: %s", d.String())
	}
	prog := sema.Check(f, &d)
	if d.HasErrors() {
		t.Fatalf("sema: %s", d.String())
	}
	mod := lower.Module(prog, dev, lower.Options{}, &d)
	if d.HasErrors() || mod == nil {
		t.Fatalf("lower: %s", d.String())
	}
	return mod
}

func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
			if i.Op == op {
				n++
			}
			return true
		})
	}
	return n
}

// fig7 is the reliable AllReduce kernel of the paper (Figure 7), with
// small sizes so tests stay fast.
const fig7 = `
#define NUM_SLOTS 16
#define SLOT_SIZE 4
#define NUM_WORKERS 4

_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce( uint8_t ver, uint16_t bmp_idx,
                           uint16_t agg_idx, uint16_t mask,
                           uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }

  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(&Agg[i][agg_idx], !seen, v[i]);

    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
`

func TestPipelineFig7TNA(t *testing.T) {
	mod := buildModule(t, fig7, 1, nil)
	st, err := Run(mod, DefaultOptions(TargetTNA))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	// Bitmap splits into 2, Agg splits into SLOT_SIZE=4.
	if st.MemPartitions != 2 {
		t.Errorf("partitions: got %d, want 2", st.MemPartitions)
	}
	for _, name := range []string{"Bitmap__0", "Bitmap__1", "Agg__0", "Agg__3", "Count"} {
		if mod.MemByName(name) == nil {
			t.Errorf("missing partitioned memory %s", name)
		}
	}
	if mod.MemByName("Bitmap") != nil || mod.MemByName("Agg") != nil {
		t.Error("original arrays should be replaced by partitions")
	}
	// No φ-nodes may survive.
	if countOps(mod, ir.OpPhi) != 0 {
		t.Error("φ-nodes remain after pipeline")
	}
	for _, f := range mod.Funcs {
		if err := ir.Verify(f); err != nil {
			t.Errorf("verify: %v", err)
		}
	}
}

func TestPipelineFig7V1Model(t *testing.T) {
	mod := buildModule(t, fig7, 1, nil)
	st, err := Run(mod, DefaultOptions(TargetV1Model))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	// v1model performs no partitioning.
	if st.MemPartitions != 0 {
		t.Errorf("v1model should not partition, got %d", st.MemPartitions)
	}
	if mod.MemByName("Bitmap") == nil {
		t.Error("Bitmap should be intact on v1model")
	}
	if countOps(mod, ir.OpPhi) != 0 {
		t.Error("φ-nodes remain")
	}
}

func TestMem2RegPromotesScalars(t *testing.T) {
	mod := buildModule(t, `
_kernel(1) void k(uint32_t a, uint32_t b, uint32_t &out) {
  uint32_t x = a;
  if (b > 10) { x = x + b; } else { x = x - b; }
  out = x;
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	phis := 0
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpPhi {
			phis++
		}
		if i.Op == ir.OpAlloca {
			t.Errorf("alloca survived mem2reg: %s", i)
		}
		return true
	})
	if phis != 1 {
		t.Errorf("phis: got %d, want 1", phis)
	}
}

func TestMem2RegKeepsDynamicArrays(t *testing.T) {
	mod := buildModule(t, `
_kernel(1) void k(uint32_t i, uint32_t &out) {
  uint32_t a[4];
  a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
  out = a[i];
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	allocas := 0
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpAlloca {
			allocas++
			if i.Count != 4 {
				t.Errorf("array alloca count: %d", i.Count)
			}
		}
		return true
	})
	if allocas != 1 {
		t.Errorf("dynamic array should remain in memory form, allocas=%d", allocas)
	}
}

func TestSimplifyFoldsUnrolledMin(t *testing.T) {
	// Constant folding should collapse a fully-constant computation.
	mod := buildModule(t, `
_kernel(1) void k(uint32_t &out) {
  uint32_t x = 0;
  for (auto i = 1; i <= 4; ++i) x = x + i;
  out = x;
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	Simplify(f)
	// out = 10 should be a single StoreMsg of the constant.
	found := false
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpStoreMsg {
			if c, ok := i.Args[1].(*ir.Const); ok && c.Val == 10 {
				found = true
			}
		}
		if i.Op == ir.OpAdd {
			t.Errorf("unfolded add remains: %s", i)
		}
		return true
	})
	if !found {
		t.Errorf("constant sum not folded:\n%s", f)
	}
}

func TestSimplifyBranchFolding(t *testing.T) {
	mod := buildModule(t, `
_kernel(1) void k(uint32_t &out) {
  if (2 > 1) { out = 1; } else { out = 2; }
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	Simplify(f)
	if len(f.Blocks) != 1 {
		t.Errorf("constant branch not folded: %d blocks\n%s", len(f.Blocks), f)
	}
}

func TestCSEMergesHashes(t *testing.T) {
	mod := buildModule(t, `
_net_ uint32_t A[256], B[256];
_kernel(1) void k(uint32_t key, uint32_t &x, uint32_t &y) {
  x = ncl::atomic_add(&A[ncl::crc16(key)], 1);
  y = ncl::atomic_add(&B[ncl::crc16(key)], 1);
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	Simplify(f)
	hashes := 0
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpHash {
			hashes++
		}
		return true
	})
	if hashes != 1 {
		t.Errorf("identical hashes not CSEd: %d", hashes)
	}
}

func TestPartitionRequiresConstOuter(t *testing.T) {
	mod := buildModule(t, `
_net_ uint32_t M[4][16];
_kernel(1) void k(uint32_t i, uint32_t j, uint32_t &out) {
  out = ncl::atomic_add(&M[i][j], 1);
}
`, 1, nil)
	for _, f := range mod.Funcs {
		Mem2Reg(f)
		Simplify(f)
	}
	if n := PartitionMemory(mod); n != 0 {
		t.Errorf("dynamic outer index must not partition, got %d splits", n)
	}
}

func TestPartitionSlicesInit(t *testing.T) {
	mod := buildModule(t, `
_net_ uint32_t M[2][2];
_kernel(1) void k(uint32_t j, uint32_t &a, uint32_t &b) {
  a = ncl::atomic_read(&M[0][j]);
  b = ncl::atomic_read(&M[1][j]);
}
`, 1, nil)
	// Give M an initializer by hand (globals are zero-initialized in
	// NetCL; this exercises the slicing logic directly).
	mod.MemByName("M").Init = []int64{1, 2, 3, 4}
	for _, f := range mod.Funcs {
		Mem2Reg(f)
		Simplify(f)
	}
	if n := PartitionMemory(mod); n != 1 {
		t.Fatalf("splits: %d", n)
	}
	m0, m1 := mod.MemByName("M__0"), mod.MemByName("M__1")
	if m0 == nil || m1 == nil {
		t.Fatal("partitions missing")
	}
	if m0.Init[0] != 1 || m0.Init[1] != 2 || m1.Init[0] != 3 || m1.Init[1] != 4 {
		t.Errorf("init slicing wrong: %v %v", m0.Init, m1.Init)
	}
}

func TestDuplicateLookups(t *testing.T) {
	mod := buildModule(t, `
_net_ _lookup_ ncl::kv<unsigned,unsigned> tbl[] = {{1,2},{3,4}};
_kernel(1) void k(unsigned a, unsigned b, unsigned &x, unsigned &y) {
  if (a > 10) { unsigned v = 0; char h = ncl::lookup(tbl, a, v); x = v; }
  else        { unsigned v = 0; char h = ncl::lookup(tbl, b, v); y = v; }
}
`, 1, nil)
	for _, f := range mod.Funcs {
		Mem2Reg(f)
		Simplify(f)
	}
	if n := DuplicateLookups(mod); n != 1 {
		t.Fatalf("dups: %d", n)
	}
	if mod.MemByName("tbl__dup1") == nil {
		t.Error("duplicate memory missing")
	}
	// The two lookups must now reference different objects.
	var refs []*ir.MemRef
	for _, f := range mod.Funcs {
		f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
			if i.Op == ir.OpLookup {
				refs = append(refs, i.G)
			}
			return true
		})
	}
	if len(refs) != 2 || refs[0] == refs[1] {
		t.Errorf("lookup refs: %v", refs)
	}
}

func TestMemCheckMultiAccessSamePath(t *testing.T) {
	// Paper §V-D kernel 2: x = m[0] + m[1] is invalid.
	mod := buildModule(t, `
_net_ int m[42];
_kernel(1) void a(int x, int &out) { out = ncl::atomic_read(&m[0]) + ncl::atomic_read(&m[1]); }
`, 1, nil)
	for _, f := range mod.Funcs {
		Mem2Reg(f)
		Simplify(f)
	}
	errs := CheckMemory(mod, MemCheckOptions{})
	if len(errs) == 0 || errs[0].Kind != "multi-access" {
		t.Fatalf("expected multi-access error, got %v", errs)
	}
}

func TestMemCheckMutuallyExclusiveOK(t *testing.T) {
	// Paper §V-D kernel 1: ternary access is valid.
	mod := buildModule(t, `
_net_ int m[42];
_kernel(1) void b(int x, int &out) {
  if (x > 10) { out = ncl::atomic_read(&m[0]); }
  else        { out = ncl::atomic_read(&m[1]); }
}
`, 1, nil)
	for _, f := range mod.Funcs {
		Mem2Reg(f)
		Simplify(f)
	}
	if errs := CheckMemory(mod, MemCheckOptions{}); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs[0])
	}
}

func TestMemCheckOrderConflict(t *testing.T) {
	// Paper §V-D kernel "a": dependent accesses in reverse order.
	mod := buildModule(t, `
_net_ int m1[42], m2[42];
_kernel(1) void a(int x, int &out) {
  if (x > 10) { int t = ncl::atomic_read(&m1[0]); out = ncl::atomic_read(&m2[t]); }
  else        { int t = ncl::atomic_read(&m2[0]); out = ncl::atomic_read(&m1[t]); }
}
`, 1, nil)
	for _, f := range mod.Funcs {
		Mem2Reg(f)
		Simplify(f)
	}
	errs := CheckMemory(mod, MemCheckOptions{})
	found := false
	for _, e := range errs {
		if e.Kind == "order" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected order conflict, got %v", errs)
	}
}

func TestMemCheckReorderableOK(t *testing.T) {
	// Paper §V-D kernel "b": independent accesses can be reordered.
	mod := buildModule(t, `
_net_ int m1[42], m2[42];
_kernel(1) void b(int x, int &out) {
  if (x > 10) { out = ncl::atomic_read(&m1[0]) + ncl::atomic_read(&m2[x]); }
  else        { out = ncl::atomic_read(&m2[x]) + ncl::atomic_read(&m1[0]); }
}
`, 1, nil)
	for _, f := range mod.Funcs {
		Mem2Reg(f)
		Simplify(f)
	}
	for _, e := range CheckMemory(mod, MemCheckOptions{}) {
		if e.Kind == "order" {
			t.Fatalf("reorderable accesses flagged: %v", e)
		}
	}
}

func TestSpeculationMovesCode(t *testing.T) {
	mod := buildModule(t, `
_kernel(1) void k(uint32_t a, uint32_t b, uint32_t c, uint32_t &out) {
  if (c > 10) {
    out = a * 2 + b;
  }
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	Simplify(f)
	n := Speculate(f)
	if n == 0 {
		t.Errorf("speculation moved nothing:\n%s", f)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify after speculation: %v", err)
	}
}

func TestPhiElimRemovesAllPhis(t *testing.T) {
	mod := buildModule(t, `
_kernel(1) void k(uint32_t a, uint32_t b, uint32_t &out) {
  uint32_t x = 0;
  if (a > b) { x = a; } else { x = b; }
  out = x;
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	Simplify(f)
	PhiElim(f)
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpPhi {
			t.Errorf("phi remains: %s", i)
		}
		return true
	})
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestDetectByteSwap16(t *testing.T) {
	mod := buildModule(t, `
_kernel(1) void k(uint16_t x, uint16_t &out) {
  out = (uint16_t)((x << 8) | (x >> 8));
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	Simplify(f)
	if n := DetectByteSwaps(f); n != 1 {
		t.Errorf("byteswap not detected (%d):\n%s", n, f)
	}
}

func TestCmpToSubMSB(t *testing.T) {
	mod := buildModule(t, `
_kernel(1) void k(uint16_t a, uint16_t b, char &out) {
  out = a < b;
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	Simplify(f)
	if n := CmpToSubMSB(f); n != 1 {
		t.Fatalf("rewrites: %d", n)
	}
	// The resulting compare must be against a constant.
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpICmp {
			_, c0 := i.Args[0].(*ir.Const)
			_, c1 := i.Args[1].(*ir.Const)
			if !c0 && !c1 {
				t.Errorf("dynamic compare remains: %s", i)
			}
		}
		return true
	})
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestPipelineStatsAblation(t *testing.T) {
	// Speculation off must not move instructions.
	mod := buildModule(t, fig7, 1, nil)
	opts := DefaultOptions(TargetTNA)
	opts.Speculate = false
	opts.DuplicateLookups = false
	st, err := Run(mod, opts)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if st.Speculated != 0 || st.LookupDups != 0 {
		t.Errorf("ablation flags ignored: %+v", st)
	}
}

func TestMemCheckDistance(t *testing.T) {
	// Accesses many conditional levels apart violate the distance rule.
	src := `
_net_ int m[4];
_kernel(1) void k(int a, int b, int c, int d, int e, int &out) {
  if (a > 0) {
    out = ncl::atomic_read(&m[0]);
  } else {
    if (b > 0) { if (c > 0) { if (d > 0) { if (e > 0) {
      out = ncl::atomic_read(&m[1]);
    } } } }
  }
}
`
	mod := buildModule(t, src, 1, nil)
	for _, f := range mod.Funcs {
		Mem2Reg(f)
		Simplify(f)
	}
	errs := CheckMemory(mod, MemCheckOptions{CondDepthThreshold: 2})
	found := false
	for _, e := range errs {
		if e.Kind == "distance" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected distance error, got %v", errs)
	}
}

func TestStrEnumsNonEmpty(t *testing.T) {
	if strings.TrimSpace(ir.OpAtomicRMW.String()) == "" {
		t.Error("op name missing")
	}
}
