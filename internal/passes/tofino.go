package passes

import (
	"fmt"
	"sort"

	"netcl/internal/ir"
)

// PartitionMemory applies the coarse-grained access-based partitioning
// of §VI-B: a global array is split on its outer dimension when every
// access uses a constant on that dimension, removing the single-stage
// placement constraint. Returns the number of splits performed.
func PartitionMemory(mod *ir.Module) int {
	splits := 0
	for again := true; again; {
		again = false
		for _, mem := range mod.Mems {
			if mem.IsLookup() || len(mem.Dims) < 2 {
				continue
			}
			accesses := memAccesses(mod, mem)
			if len(accesses) == 0 {
				continue
			}
			allConst := true
			for _, a := range accesses {
				if a.NIdx < 1 {
					allConst = false
					break
				}
				if _, ok := a.Args[0].(*ir.Const); !ok {
					allConst = false
					break
				}
			}
			if !allConst {
				continue
			}
			// Split.
			outer := mem.Dims[0]
			inner := 1
			for _, d := range mem.Dims[1:] {
				inner *= d
			}
			parts := make([]*ir.MemRef, outer)
			for k := 0; k < outer; k++ {
				p := &ir.MemRef{
					Name:    fmt.Sprintf("%s__%d", mem.Name, k),
					Elem:    mem.Elem,
					Dims:    append([]int(nil), mem.Dims[1:]...),
					Managed: mem.Managed,
				}
				if len(mem.Init) > 0 {
					lo := k * inner
					hi := lo + inner
					if lo < len(mem.Init) {
						if hi > len(mem.Init) {
							hi = len(mem.Init)
						}
						p.Init = append([]int64(nil), mem.Init[lo:hi]...)
					}
				}
				parts[k] = p
			}
			for _, a := range accesses {
				k := int(a.Args[0].(*ir.Const).Uint()) % outer
				a.G = parts[k]
				a.Args = a.Args[1:]
				a.NIdx--
			}
			// Replace mem with its parts in the module.
			var newMems []*ir.MemRef
			for _, m := range mod.Mems {
				if m == mem {
					newMems = append(newMems, parts...)
				} else {
					newMems = append(newMems, m)
				}
			}
			mod.Mems = newMems
			splits++
			again = true
			break
		}
	}
	return splits
}

// memAccesses collects all global-memory instructions touching mem.
func memAccesses(mod *ir.Module, mem *ir.MemRef) []*ir.Instr {
	var out []*ir.Instr
	for _, f := range mod.Funcs {
		f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
			if (i.Op == ir.OpAtomicRMW || i.Op == ir.OpLookup) && i.G == mem {
				out = append(out, i)
			}
			return true
		})
	}
	return out
}

// DuplicateLookups clones non-managed lookup memory once per access
// (§VI-B "memory duplication"): since the data plane cannot update
// MATs, each access gets a private copy, removing the dependence on a
// single stage. Returns the number of duplicates created.
func DuplicateLookups(mod *ir.Module) int {
	dups := 0
	var newMems []*ir.MemRef
	for _, mem := range mod.Mems {
		newMems = append(newMems, mem)
		if !mem.IsLookup() || mem.Managed {
			continue
		}
		accesses := lookupAccesses(mod, mem)
		for n, a := range accesses[1:] {
			clone := *mem
			clone.Name = fmt.Sprintf("%s__dup%d", mem.Name, n+1)
			clone.Init = append([]int64(nil), mem.Init...)
			cp := &clone
			newMems = append(newMems, cp)
			a.G = cp
			retargetLookupVals(mod, a, cp)
			dups++
		}
	}
	mod.Mems = newMems
	return dups
}

func lookupAccesses(mod *ir.Module, mem *ir.MemRef) []*ir.Instr {
	var out []*ir.Instr
	for _, f := range mod.Funcs {
		f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
			if i.Op == ir.OpLookup && i.G == mem {
				out = append(out, i)
			}
			return true
		})
	}
	return out
}

// retargetLookupVals updates LookupVal companions of a retargeted
// Lookup instruction.
func retargetLookupVals(mod *ir.Module, lk *ir.Instr, mem *ir.MemRef) {
	for _, f := range mod.Funcs {
		f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
			if i.Op == ir.OpLookupVal && len(i.Args) == 1 && i.Args[0] == ir.Value(lk) {
				i.G = mem
			}
			return true
		})
	}
}

// MemCheckOptions tunes the Tofino memory legality checks.
type MemCheckOptions struct {
	// CondDepthThreshold is the maximum difference in conditional-branch
	// depth between two accesses of the same object (§VI-B's
	// "approximate distance check").
	CondDepthThreshold int
}

// MemCheckError describes a Tofino memory legality violation.
type MemCheckError struct {
	Func string
	Mem  string
	Mem2 string
	Kind string // "multi-access", "distance", "order", "managed-lookup"
	Msg  string
}

// Error implements error.
func (e *MemCheckError) Error() string { return e.Msg }

// CheckMemory enforces the Tofino stage-local memory restrictions of
// §V-D on every kernel in the module:
//
//  1. a global object may be accessed at most once per execution path
//     (accesses must be mutually exclusive);
//  2. mutually exclusive accesses must be close enough (conditional
//     depth) to share one pipeline stage;
//  3. different objects must be accessed in a consistent relative
//     order across all paths (after independent same-block accesses
//     are normalized to a canonical order);
//  4. managed lookup memory cannot be duplicated, so it admits only a
//     single access.
func CheckMemory(mod *ir.Module, opts MemCheckOptions) []*MemCheckError {
	if opts.CondDepthThreshold == 0 {
		opts.CondDepthThreshold = 3
	}
	var errs []*MemCheckError
	for _, f := range mod.Funcs {
		errs = append(errs, checkFuncMemory(f, opts)...)
	}
	// Managed lookup objects: one access per module.
	for _, mem := range mod.Mems {
		if mem.IsLookup() && mem.Managed {
			if n := len(lookupAccesses(mod, mem)); n > 1 {
				errs = append(errs, &MemCheckError{
					Mem: mem.Name, Kind: "managed-lookup",
					Msg: fmt.Sprintf("managed lookup memory %q is accessed %d times; duplication is not available for managed MATs (one access allowed)", mem.Name, n),
				})
			}
		}
	}
	return errs
}

// access is one global-memory touch with its position.
type access struct {
	instr *ir.Instr
	blk   *ir.Block
	pos   int // canonical position within the block
}

func checkFuncMemory(f *ir.Func, opts MemCheckOptions) []*MemCheckError {
	var errs []*MemCheckError
	depth := condDepths(f)
	reach := blockReach(f)

	// Collect accesses per object, with canonically normalized
	// same-block positions.
	byMem := map[*ir.MemRef][]access{}
	for _, b := range f.Blocks {
		poss := canonicalPositions(b)
		for n, i := range b.Instrs {
			if i.Op == ir.OpAtomicRMW || i.Op == ir.OpLookup {
				p := n
				if cp, ok := poss[i]; ok {
					p = cp
				}
				byMem[i.G] = append(byMem[i.G], access{instr: i, blk: b, pos: p})
			}
		}
	}

	ordered := func(a, b access) bool { // a strictly before b on some path
		if a.blk == b.blk {
			return a.pos < b.pos
		}
		return reach[a.blk][b.blk]
	}

	// Rules 1+2: same object.
	var mems []*ir.MemRef
	for m := range byMem {
		mems = append(mems, m)
	}
	sort.Slice(mems, func(i, j int) bool { return mems[i].Name < mems[j].Name })
	for _, m := range mems {
		as := byMem[m]
		for i := 0; i < len(as); i++ {
			for j := i + 1; j < len(as); j++ {
				a, b := as[i], as[j]
				if ordered(a, b) || ordered(b, a) {
					errs = append(errs, &MemCheckError{
						Func: f.Name, Mem: m.Name, Kind: "multi-access",
						Msg: fmt.Sprintf("kernel %q: global memory %q is accessed more than once on the same path; Tofino stateful memory is stage-local (make the accesses mutually exclusive)", f.Name, m.Name),
					})
					continue
				}
				d := depth[a.blk] - depth[b.blk]
				if d < 0 {
					d = -d
				}
				if d > opts.CondDepthThreshold {
					errs = append(errs, &MemCheckError{
						Func: f.Name, Mem: m.Name, Kind: "distance",
						Msg: fmt.Sprintf("kernel %q: accesses to %q are %d conditional levels apart (max %d); they cannot share a pipeline stage", f.Name, m.Name, d, opts.CondDepthThreshold),
					})
				}
			}
		}
	}

	// Rule 3: cross-object ordering consistency.
	for i := 0; i < len(mems); i++ {
		for j := i + 1; j < len(mems); j++ {
			ma, mb := mems[i], mems[j]
			var abFirst, baFirst bool
			for _, a := range byMem[ma] {
				for _, b := range byMem[mb] {
					if ordered(a, b) {
						abFirst = true
					}
					if ordered(b, a) {
						baFirst = true
					}
				}
			}
			if abFirst && baFirst {
				errs = append(errs, &MemCheckError{
					Func: f.Name, Mem: ma.Name, Mem2: mb.Name, Kind: "order",
					Msg: fmt.Sprintf("kernel %q: objects %q and %q are accessed in different orders on different paths and the accesses cannot be reordered", f.Name, ma.Name, mb.Name),
				})
			}
		}
	}
	return errs
}

// condDepths computes, per block, the minimum number of conditional
// branches on any path from the entry — the paper's approximation of a
// block's pipeline position.
func condDepths(f *ir.Func) map[*ir.Block]int {
	const inf = 1 << 30
	d := map[*ir.Block]int{}
	for _, b := range f.Blocks {
		d[b] = inf
	}
	if f.Entry() == nil {
		return d
	}
	d[f.Entry()] = 0
	for _, b := range ir.RPO(f) {
		t := b.Term()
		if t == nil {
			continue
		}
		step := 0
		if t.Op == ir.OpBr {
			step = 1
		}
		for _, s := range t.Targets {
			if d[b]+step < d[s] {
				d[s] = d[b] + step
			}
		}
	}
	return d
}

// blockReach computes strict reachability between blocks.
func blockReach(f *ir.Func) map[*ir.Block]map[*ir.Block]bool {
	reach := map[*ir.Block]map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		seen := map[*ir.Block]bool{}
		var stack []*ir.Block
		stack = append(stack, b.Succs()...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] {
				continue
			}
			seen[x] = true
			stack = append(stack, x.Succs()...)
		}
		reach[b] = seen
	}
	return reach
}

// canonicalPositions tries to renumber a block's independent global
// accesses into a canonical order (by object name) so that reorderable
// access sequences compare equal across branches — the paper allows
// reordering when no data dependence forces the order.
func canonicalPositions(b *ir.Block) map[*ir.Instr]int {
	var accs []*ir.Instr
	index := map[*ir.Instr]int{}
	for n, i := range b.Instrs {
		index[i] = n
		if i.Op == ir.OpAtomicRMW || i.Op == ir.OpLookup {
			accs = append(accs, i)
		}
	}
	if len(accs) < 2 {
		return nil
	}
	// dependsOn reports whether y transitively uses x within the block.
	var dependsOn func(y *ir.Instr, x *ir.Instr, seen map[*ir.Instr]bool) bool
	dependsOn = func(y, x *ir.Instr, seen map[*ir.Instr]bool) bool {
		if seen[y] {
			return false
		}
		seen[y] = true
		for _, a := range y.Args {
			ai, ok := a.(*ir.Instr)
			if !ok {
				continue
			}
			if ai == x {
				return true
			}
			if _, inBlk := index[ai]; inBlk && dependsOn(ai, x, seen) {
				return true
			}
		}
		return false
	}
	// Topological sort of accesses with name-order tie-breaking.
	remaining := append([]*ir.Instr(nil), accs...)
	var orderResult []*ir.Instr
	for len(remaining) > 0 {
		// Candidates: accesses not depended on... pick the access with
		// the smallest name whose predecessors (accesses it depends on)
		// are already emitted.
		best := -1
		for k, cand := range remaining {
			ready := true
			for _, other := range remaining {
				if other == cand {
					continue
				}
				if dependsOn(cand, other, map[*ir.Instr]bool{}) {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if best == -1 || nameLess(cand, remaining[best]) {
				best = k
			}
		}
		if best == -1 {
			// Cyclic (impossible in a block) — bail to source order.
			return nil
		}
		orderResult = append(orderResult, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	out := map[*ir.Instr]int{}
	for n, i := range orderResult {
		out[i] = n
	}
	return out
}

func nameLess(a, b *ir.Instr) bool {
	an, bn := "", ""
	if a.G != nil {
		an = a.G.Name
	}
	if b.G != nil {
		bn = b.G.Name
	}
	return an < bn
}
