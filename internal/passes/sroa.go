package passes

import "netcl/internal/ir"

// SROA (scalar replacement of aggregates) splits array allocas whose
// every access uses a constant index into per-element scalar allocas.
// After full loop unrolling most local arrays qualify, and mem2reg
// then promotes the scalars to SSA — eliminating the load/store
// copies that would otherwise lengthen Tofino dependence chains.
func SROA(f *ir.Func) int {
	entry := f.Entry()
	if entry == nil {
		return 0
	}
	split := 0
	for {
		var target *ir.Instr
		f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
			if i.Op == ir.OpAlloca && i.Count > 1 && sroaEligible(f, i) {
				target = i
				return false
			}
			return true
		})
		if target == nil {
			return split
		}
		// Create per-element scalars in the entry block.
		elems := make([]*ir.Instr, target.Count)
		for k := range elems {
			al := &ir.Instr{Op: ir.OpAlloca, Ty: target.Elem, Elem: target.Elem, Count: 1, Name: target.Name}
			prependInstr(entry, al)
			elems[k] = al
		}
		for _, b := range f.Blocks {
			for _, i := range b.Instrs {
				switch i.Op {
				case ir.OpLoad, ir.OpStore:
					if i.Args[0] == ir.Value(target) {
						idx := int(i.Args[1].(*ir.Const).Uint()) % target.Count
						i.Args[0] = elems[idx]
						i.Args[1] = ir.ConstOf(ir.U32, 0)
					}
				}
			}
		}
		// Remove the aggregate alloca.
		if blk := target.Block(); blk != nil {
			blk.Remove(target)
		}
		split++
	}
}

// sroaEligible reports whether every access to the alloca is a
// constant-index load or store.
func sroaEligible(f *ir.Func, al *ir.Instr) bool {
	ok := true
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		switch i.Op {
		case ir.OpLoad, ir.OpStore:
			if i.Args[0] == ir.Value(al) {
				if _, isConst := i.Args[1].(*ir.Const); !isConst {
					ok = false
					return false
				}
			}
			// The alloca used as a stored value would escape.
			if i.Op == ir.OpStore && i.Args[2] == ir.Value(al) {
				ok = false
				return false
			}
		default:
			for _, a := range i.Args {
				if a == ir.Value(al) {
					ok = false
					return false
				}
			}
		}
		return true
	})
	return ok
}
