package passes

import (
	"testing"

	"netcl/internal/ir"
)

// TestHoistCommonMergesSiblings: the same pure computation in two
// exclusive branches is hoisted to their common dominator and
// deduplicated (§VI-B "hoist instructions computing the same value to
// a common dominator").
func TestHoistCommonMergesSiblings(t *testing.T) {
	mod := buildModule(t, `
_net_ unsigned A[256], B[256];
_kernel(1) void k(unsigned key, unsigned sel, unsigned &x) {
  if (sel > 0) { x = ncl::atomic_add(&A[key * 31], 1); }
  else         { x = ncl::atomic_add(&B[key * 31], 1); }
}
`, 1, nil)
	f := mod.Funcs[0]
	Mem2Reg(f)
	Simplify(f)
	if n := HoistCommon(f); n == 0 {
		t.Fatalf("no sibling computations hoisted:\n%s", f)
	}
	// After hoisting + CSE, exactly one multiply remains.
	CSE(f)
	muls := 0
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpMul {
			muls++
			if b != f.Entry() {
				t.Errorf("hoisted multiply not in a dominator block")
			}
		}
		return true
	})
	if muls != 1 {
		t.Errorf("multiplies after hoist+CSE: %d", muls)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

// TestSROAEligibility: dynamic indices block scalar replacement.
func TestSROAEligibility(t *testing.T) {
	mod := buildModule(t, `
_kernel(1) void k(unsigned i, unsigned &a, unsigned &b) {
  unsigned cs[4];
  cs[0] = 1; cs[1] = 2; cs[2] = 3; cs[3] = 4;
  a = cs[2];
  unsigned dyn[4];
  dyn[0] = 5; dyn[1] = 6; dyn[2] = 7; dyn[3] = 8;
  b = dyn[i & 3];
}
`, 1, nil)
	f := mod.Funcs[0]
	n := SROA(f)
	if n != 1 {
		t.Fatalf("SROA split %d arrays, want exactly the const-indexed one", n)
	}
	// The dynamic array must keep its 4-element alloca.
	bigAllocas := 0
	f.Instrs(func(b *ir.Block, i *ir.Instr) bool {
		if i.Op == ir.OpAlloca && i.Count == 4 {
			bigAllocas++
		}
		return true
	})
	if bigAllocas != 1 {
		t.Errorf("dynamic array allocas: %d", bigAllocas)
	}
}
