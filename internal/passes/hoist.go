package passes

import (
	"netcl/internal/ir"
)

// HoistCommon moves pure instructions that compute the same value in
// sibling blocks up to their nearest common dominator, provided their
// operands are available there (§VI-B "hoist instructions computing
// the same value to a common dominator"). Returns hoisted count.
func HoistCommon(f *ir.Func) int {
	dt := ir.BuildDomTree(f)
	moved := 0
	for again := true; again; {
		again = false
		keyed := map[string][]*ir.Instr{}
		blockOf := map[*ir.Instr]*ir.Block{}
		for _, b := range f.Blocks {
			for _, i := range b.Instrs {
				if i.Pure() {
					k := cseKey(i)
					keyed[k] = append(keyed[k], i)
					blockOf[i] = b
				}
			}
		}
		for _, group := range keyed {
			if len(group) < 2 {
				continue
			}
			a, b := group[0], group[1]
			ba, bb := blockOf[a], blockOf[b]
			if ba == bb || dt.Dominates(ba, bb) || dt.Dominates(bb, ba) {
				continue // CSE's job
			}
			nca := dt.NCA(ba, bb)
			if !operandsAvailable(a, nca, dt) {
				continue
			}
			// Move a to the NCA, replace b with a.
			ba.Remove(a)
			nca.InsertBeforeTerm(a)
			nca.Adopt(a)
			f.ReplaceAllUses(b, a)
			bb.Remove(b)
			moved++
			again = true
			break
		}
	}
	return moved
}

// Speculate aggressively hoists pure instructions to the earliest
// block where their operands are available (§VI-B "aggressive
// speculation ... hoisting them to the earliest possible block").
// It may execute instructions on paths that do not need them — that is
// the point: it shortens dependence chains and thus stage counts, at
// the cost of PHV pressure. Returns the number of moved instructions.
func Speculate(f *ir.Func) int {
	dt := ir.BuildDomTree(f)
	moved := 0
	for _, b := range dt.RPO() {
		for _, i := range append([]*ir.Instr(nil), b.Instrs...) {
			if !i.Pure() {
				continue
			}
			dest := earliestBlock(i, dt, f)
			if dest == nil || dest == b || !dt.Dominates(dest, b) {
				continue
			}
			b.Remove(i)
			dest.InsertBeforeTerm(i)
			dest.Adopt(i)
			moved++
		}
	}
	return moved
}

// earliestBlock returns the deepest dominator-tree block among the
// defining blocks of i's operands (entry for all-constant operands).
func earliestBlock(i *ir.Instr, dt *ir.DomTree, f *ir.Func) *ir.Block {
	dest := f.Entry()
	for _, a := range i.Args {
		ai, ok := a.(*ir.Instr)
		if !ok {
			continue
		}
		ab := ai.Block()
		if ab == nil {
			return nil
		}
		if dt.Dominates(dest, ab) {
			dest = ab
		} else if !dt.Dominates(ab, dest) {
			return nil // operands on divergent paths
		}
	}
	return dest
}

// operandsAvailable reports whether every instruction operand of i is
// defined in a block dominating dst.
func operandsAvailable(i *ir.Instr, dst *ir.Block, dt *ir.DomTree) bool {
	for _, a := range i.Args {
		ai, ok := a.(*ir.Instr)
		if !ok {
			continue
		}
		if ai.Block() == nil || !dt.Dominates(ai.Block(), dst) {
			return false
		}
	}
	return true
}
