// Package apps contains the paper's evaluation applications (§VII,
// Table III): SwitchML-style streaming aggregation (AGG), NetCache
// (CACHE), P4xos (PACC/PLRN/PLDR), and the P4-tutorial calculator
// (CALC) — each as NetCL-C device code plus a handwritten P4-16
// baseline, with host-side drivers for the end-to-end experiments.
package apps

import "embed"

//go:embed baseline/*.p4
var baselineFS embed.FS

// App describes one evaluation application.
type App struct {
	// Name is the short name used in the paper's tables.
	Name string
	// NetCL is the device source code.
	NetCL string
	// Defines are compile-time parameters.
	Defines map[string]uint64
	// Devices are the locations compiled for.
	Devices []uint16
	// BaselineFile names the handwritten P4 program in baseline/.
	BaselineFile string
}

// Baseline returns the handwritten P4 source text.
func (a *App) Baseline() (string, error) {
	b, err := baselineFS.ReadFile("baseline/" + a.BaselineFile)
	return string(b), err
}

// Paxos device locations.
const (
	PaxosLeader    = 1
	PaxosAcceptor1 = 2
	PaxosAcceptor2 = 3
	PaxosAcceptor3 = 4
	PaxosLearner   = 5
)

// AGG parameters (paper §VII: 32 values per packet).
const (
	AggSlotSize   = 32
	AggNumSlots   = 256
	AggNumWorkers = 6
)

// Cache parameters (paper: 8-byte keys, up to 128-byte values; we use
// 16 four-byte words = 64-byte cache lines so the value registers,
// sketch, bloom filter and counters together still fit 12 stages).
const (
	CacheWords   = 16
	CacheEntries = 1024
)

// All returns the application registry in Table III order. P4xos is a
// single NetCL program with three kernels at three locations; the
// per-role rows (PACC/PLRN/PLDR) are derived by compiling each device.
func All() []*App {
	return []*App{
		{
			Name:  "AGG",
			NetCL: AggSource,
			Defines: map[string]uint64{
				"NUM_SLOTS":   AggNumSlots,
				"SLOT_SIZE":   AggSlotSize,
				"NUM_WORKERS": AggNumWorkers,
			},
			Devices:      []uint16{1},
			BaselineFile: "agg.p4",
		},
		{
			Name:  "CACHE",
			NetCL: CacheSource,
			Defines: map[string]uint64{
				"CACHE_WORDS":   CacheWords,
				"CACHE_ENTRIES": CacheEntries,
			},
			Devices:      []uint16{1},
			BaselineFile: "cache.p4",
		},
		{
			Name:         "PAXOS",
			NetCL:        PaxosSource,
			Defines:      map[string]uint64{},
			Devices:      []uint16{PaxosLeader, PaxosAcceptor1, PaxosLearner},
			BaselineFile: "pacc.p4", // representative; see RoleBaseline
		},
		{
			Name:         "CALC",
			NetCL:        CalcSource,
			Defines:      map[string]uint64{},
			Devices:      []uint16{1},
			BaselineFile: "calc.p4",
		},
	}
}

// ByName returns an application from the registry.
func ByName(name string) *App {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// PaxosRoleBaselines maps the per-role Table III rows to their
// baseline files and device IDs.
var PaxosRoleBaselines = []struct {
	Row      string
	File     string
	DeviceID uint16
}{
	{"PACC", "pacc.p4", PaxosAcceptor1},
	{"PLRN", "plrn.p4", PaxosLearner},
	{"PLDR", "pldr.p4", PaxosLeader},
}
