package apps

// churn_test.go pins the production-churn suite: each scenario's
// correctness invariants (zero corrupted results, bounded loss,
// recovery to baseline), the partition-count invariance of the
// stateful timelines, and the rule-consistency of failover updates —
// no packet may observe a half-applied forwarding swap, even mid-burst
// under concurrent control-plane writes (run with -race).

import (
	"sync"
	"sync/atomic"
	"testing"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
)

func TestChurnAggFailover(t *testing.T) {
	res, err := RunChurnAggFailover(ChurnConfig{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("failover corrupted %d rounds (pool state did not move)", res.Errors)
	}
	if res.Completed+res.Lost != res.Requests {
		t.Fatalf("accounting: %d+%d != %d", res.Completed, res.Lost, res.Requests)
	}
	if res.Lost == 0 {
		t.Error("link outage lost no rounds — the timeline missed the traffic")
	}
	slo := res.SLO
	if !slo.Recovered {
		t.Error("never recovered to baseline p99")
	}
	if slo.AfterAvailability < slo.BaselineAvailability-0.01 {
		t.Errorf("after-availability %.3f below baseline %.3f", slo.AfterAvailability, slo.BaselineAvailability)
	}
	if slo.DuringAvailability >= slo.BaselineAvailability {
		t.Errorf("no availability dip during the event: %.3f vs %.3f", slo.DuringAvailability, slo.BaselineAvailability)
	}
}

func TestChurnPaxosReelect(t *testing.T) {
	res, err := RunChurnPaxosReelect(ChurnConfig{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors: duplicate instances or bad values (allocator did not move)", res.Errors)
	}
	if res.Lost > 2 {
		t.Errorf("lost %d commands, want ≤ 2 (only the dead-coordinator gap)", res.Lost)
	}
	if res.Completed < res.Requests-2 {
		t.Errorf("completed %d/%d", res.Completed, res.Requests)
	}
	if !res.SLO.Recovered {
		t.Error("never recovered")
	}
}

func TestChurnCacheChurn(t *testing.T) {
	res, err := RunChurnCacheChurn(ChurnConfig{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d wrong values under churn", res.Errors)
	}
	if res.Lost != 0 {
		t.Errorf("cache churn lost %d requests (misses must serve from the store)", res.Lost)
	}
	if res.Hits+res.Misses != res.Completed {
		t.Errorf("hit/miss accounting: %d+%d != %d", res.Hits, res.Misses, res.Completed)
	}
	slo := res.SLO
	if slo.DuringAvailability >= slo.BaselineAvailability {
		t.Errorf("hot-set shift caused no dip: %.3f vs %.3f", slo.DuringAvailability, slo.BaselineAvailability)
	}
	if !slo.Recovered {
		t.Error("cache repopulation never recovered the SLO")
	}
}

func TestChurnRolling(t *testing.T) {
	res, err := RunChurnRolling(ChurnConfig{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d torn or stale responses during rolling reconfig", res.Errors)
	}
	if res.Lost != 0 {
		t.Errorf("rolling reconfig lost %d requests", res.Lost)
	}
	// The whole point: one-switch-at-a-time transactional rewrites are
	// invisible to the availability SLO.
	if res.SLO.DuringAvailability != 1 {
		t.Errorf("rolling reconfig dipped availability to %.3f", res.SLO.DuringAvailability)
	}
	if !res.SLO.Recovered {
		t.Error("not recovered")
	}
}

// TestChurnPartitionIdentity: the two register-stateful timelines must
// replay hash-chain-identical under k ∈ {2,4} partitions — crash,
// drain, cross-partition restore and re-route included.
func TestChurnPartitionIdentity(t *testing.T) {
	for _, sc := range []struct {
		name string
		run  func(ChurnConfig) (*ChurnResult, error)
	}{
		{"agg-failover", RunChurnAggFailover},
		{"cache-churn", RunChurnCacheChurn},
	} {
		serial, err := sc.run(ChurnConfig{Smoke: true, Trace: true})
		if err != nil {
			t.Fatalf("%s serial: %v", sc.name, err)
		}
		if serial.TraceHash == 0 {
			t.Fatalf("%s: empty trace", sc.name)
		}
		for _, k := range []int{2, 4} {
			got, err := sc.run(ChurnConfig{Smoke: true, Trace: true, Partitions: k})
			if err != nil {
				t.Fatalf("%s k=%d: %v", sc.name, k, err)
			}
			if got.TraceHash != serial.TraceHash {
				t.Errorf("%s k=%d: trace %#x != serial %#x", sc.name, k, got.TraceHash, serial.TraceHash)
			}
			if got.Completed != serial.Completed || got.Lost != serial.Lost || got.Errors != serial.Errors {
				t.Errorf("%s k=%d: counters diverged: %+v vs %+v", sc.name, k, got, serial)
			}
		}
	}
}

// TestChurnFailoverRuleConsistency: the failover re-route swaps
// netcl_fwd entries for the primary and standby ids in one WriteBatch.
// While a writer flips the swap back and forth, every two-packet burst
// (one probe per id) must observe a single table generation — the
// ports are always a consistent pair, never both pointing the same
// way. Run under -race this also exercises the publication path.
func TestChurnFailoverRuleConsistency(t *testing.T) {
	// A transit switch from the failover fabric: neither probe id is
	// local, so both packets take the netcl_fwd path.
	prog, specs, err := fabricAggProg(aggNode{id: 10, fanin: 4, parent: 50}, 8, passes.TargetTNA)
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[1]
	sw := bmv2.New(prog)
	if !sw.Compiled() {
		t.Fatalf("not compiled: %v", sw.CompileErr())
	}

	fwd := func(key uint64, port int) *p4.Entry {
		return &p4.Entry{
			Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
			Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(port)}},
		}
	}
	const pA, pB = 2, 3
	seed := bmv2.NewWriteBatch().
		Insert("netcl_fwd", fwd(50, pA)).
		Insert("netcl_fwd", fwd(51, pB))
	if _, err := sw.Write(seed); err != nil {
		t.Fatal(err)
	}

	probe := func(dev uint16) []byte {
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: 0x100, Dst: 0x200, Device: dev, Comp: 1}.Header(),
			[][]uint64{{0}, {1}, {0}, make([]uint64, fabricSlotSize)})
		if err != nil {
			t.Fatal(err)
		}
		return runtime.Frame(msg, 0x100, 0x200)
	}
	t50, t51 := probe(50), probe(51)

	const flips = 1500
	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		for g := 0; g < flips; g++ {
			a, b := pA, pB
			if g%2 == 0 {
				a, b = pB, pA
			}
			batch := bmv2.NewWriteBatch().
				Modify("netcl_fwd", fwd(50, a)).
				Modify("netcl_fwd", fwd(51, b))
			if _, err := sw.Write(batch); err != nil {
				writerErr = err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var mixed, readerErrs atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pkts := make([][]byte, 2)
			ports := []int{1, 1}
			res := make([]bmv2.Result, 2)
			errs := make([]error, 2)
			for {
				select {
				case <-done:
					return
				default:
				}
				pkts[0] = append(pkts[0][:0], t50...)
				pkts[1] = append(pkts[1][:0], t51...)
				sw.ProcessBurst(pkts, ports, res, errs)
				if errs[0] != nil || errs[1] != nil {
					readerErrs.Add(1)
					return
				}
				ok := (res[0].Port == pA && res[1].Port == pB) ||
					(res[0].Port == pB && res[1].Port == pA)
				if !ok {
					mixed.Add(1)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
	if n := readerErrs.Load(); n != 0 {
		t.Fatalf("%d reader bursts errored", n)
	}
	if n := mixed.Load(); n != 0 {
		t.Fatalf("%d bursts observed a mixed-generation forwarding swap", n)
	}
}
