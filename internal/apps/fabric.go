package apps

// fabric.go runs the evaluation applications ACROSS a multi-tier
// switch fabric instead of around a single device: hierarchical
// in-network aggregation (leaf switches partially reduce their rack,
// upper tiers complete), per-rack caches backed by a shared server
// across the spine, and Paxos with the coordinator and acceptors on
// distinct switches. The topologies come from the netsim builders
// (BuildLeafSpine/BuildFatTree) and the tables from InstallRoutes —
// no scenario wires ports or transit entries by hand.

import (
	"fmt"

	"netcl/internal/netsim"
	"netcl/internal/p4"
	"netcl/internal/p4rt"
	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// FabricAggConfig parameterizes one hierarchical-aggregation run.
type FabricAggConfig struct {
	// Tiers is the aggregation depth: 1 = host-direct-to-root (every
	// worker packet crosses the fabric to the root, the flat baseline),
	// 2 = leaves partially reduce their rack, 3 = edge→group→root.
	Tiers int
	// Leaves is the number of host-facing switches (default 4).
	Leaves int
	// WorkersPerLeaf is the rack size (default 4).
	WorkersPerLeaf int
	// Groups is the mid-tier width for Tiers=3 (default 2; must divide
	// Leaves).
	Groups int
	// Rounds is the number of aggregation rounds (default 8). Each
	// round owns one slot.
	Rounds int
	// Partitions arms partitioned execution (0 = serial).
	Partitions int
	// Trace enables the delivery hash chains (determinism witness).
	Trace  bool
	Target passes.Target
}

// FabricAggResult reports one hierarchical-aggregation run.
type FabricAggResult struct {
	Tiers      int `json:"tiers"`
	Workers    int `json:"workers"`
	Rounds     int `json:"rounds"`
	Devices    int `json:"devices"`
	Partitions int `json:"partitions"`
	// Completed counts collector deliveries (= Rounds when correct);
	// Mismatches counts wrong sums/rounds.
	Completed  int     `json:"completed"`
	Expected   int     `json:"expected"`
	Mismatches int     `json:"mismatches"`
	DurationNs float64 `json:"duration_ns"`
	// GoodputElems is aggregated tensor elements per second across the
	// whole job (Workers × Rounds × slot elements / duration).
	GoodputElems float64 `json:"goodput_elems_per_sec"`
	// RootIngressBytes counts bytes entering the top tier upward: the
	// traffic hierarchical reduction cuts by ~fan-in× per tier.
	RootIngressBytes uint64 `json:"root_ingress_bytes"`
	// TierIngressBytes[i] is the upward traffic into tier i+1.
	TierIngressBytes []uint64 `json:"tier_ingress_bytes"`
	Events           uint64   `json:"events"`
	TraceHash        uint64   `json:"trace_hash,omitempty"`
}

// aggNode is one switch's position in the aggregation tree.
type aggNode struct {
	id       uint16
	fanin    int
	parent   uint16
	levelIdx int
	isRoot   bool
}

const fabricSlotSize = 4

// fabricAggProg compiles the hierarchical AGG kernel for one tree
// position.
func fabricAggProg(node aggNode, rounds int, target passes.Target) (*p4.Program, map[uint8]*runtime.MessageSpec, error) {
	isRoot := uint64(0)
	if node.isRoot {
		isRoot = 1
	}
	app := &App{
		Name:  "HIERAGG",
		NetCL: HierAggSource,
		Defines: map[string]uint64{
			"NUM_SLOTS":   uint64(rounds),
			"SLOT_SIZE":   fabricSlotSize,
			"FANIN":       uint64(node.fanin),
			"IS_ROOT":     isRoot,
			"PARENT":      uint64(node.parent),
			"LEVEL_INDEX": uint64(node.levelIdx),
		},
	}
	return CompileApp(app, target, node.id)
}

// RunFabricAgg builds the fabric, places the aggregation tree across
// it, and runs the open-loop rounds.
func RunFabricAgg(cfg FabricAggConfig) (*FabricAggResult, error) {
	if cfg.Target == "" {
		cfg.Target = passes.TargetTNA
	}
	if cfg.Tiers == 0 {
		cfg.Tiers = 2
	}
	if cfg.Tiers < 1 || cfg.Tiers > 3 {
		return nil, fmt.Errorf("fabric agg: tiers must be 1..3, got %d", cfg.Tiers)
	}
	if cfg.Leaves <= 0 {
		cfg.Leaves = 4
	}
	if cfg.WorkersPerLeaf <= 0 {
		cfg.WorkersPerLeaf = 4
	}
	if cfg.Groups <= 0 {
		cfg.Groups = 2
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 8
	}
	workers := cfg.Leaves * cfg.WorkersPerLeaf
	const rootID = 100

	// The aggregation tree: who reduces whom. The contribution bitmap
	// is 16 bits wide, so every level's fan-in is capped at 16 — in
	// the flat baseline that cap applies to the whole worker set,
	// which is exactly the scaling wall hierarchical reduction removes.
	nodes := map[uint16]aggNode{}
	leafIDs := make([]uint16, cfg.Leaves)
	for l := 0; l < cfg.Leaves; l++ {
		leafIDs[l] = uint16(10 + l)
	}
	switch cfg.Tiers {
	case 1:
		if workers > 16 {
			return nil, fmt.Errorf("fabric agg: flat baseline caps at 16 workers (bitmap width), got %d", workers)
		}
		nodes[rootID] = aggNode{id: rootID, fanin: workers, isRoot: true}
		for _, id := range leafIDs {
			// Pure transit: the kernel never runs at a leaf because no
			// packet is addressed to it.
			nodes[id] = aggNode{id: id, fanin: cfg.WorkersPerLeaf, parent: rootID}
		}
	case 2:
		if cfg.Leaves > 16 || cfg.WorkersPerLeaf > 16 {
			return nil, fmt.Errorf("fabric agg: per-level fan-in caps at 16")
		}
		nodes[rootID] = aggNode{id: rootID, fanin: cfg.Leaves, isRoot: true}
		for l, id := range leafIDs {
			nodes[id] = aggNode{id: id, fanin: cfg.WorkersPerLeaf, parent: rootID, levelIdx: l}
		}
	case 3:
		if cfg.Leaves%cfg.Groups != 0 {
			return nil, fmt.Errorf("fabric agg: groups (%d) must divide leaves (%d)", cfg.Groups, cfg.Leaves)
		}
		perGroup := cfg.Leaves / cfg.Groups
		if cfg.Groups > 16 || perGroup > 16 || cfg.WorkersPerLeaf > 16 {
			return nil, fmt.Errorf("fabric agg: per-level fan-in caps at 16")
		}
		nodes[rootID] = aggNode{id: rootID, fanin: cfg.Groups, isRoot: true}
		for g := 0; g < cfg.Groups; g++ {
			gid := uint16(50 + g)
			nodes[gid] = aggNode{id: gid, fanin: perGroup, parent: rootID, levelIdx: g}
			for i := 0; i < perGroup; i++ {
				id := leafIDs[g*perGroup+i]
				nodes[id] = aggNode{id: id, fanin: cfg.WorkersPerLeaf, parent: gid, levelIdx: i}
			}
		}
	}

	var spec *runtime.MessageSpec
	progFor := func(id uint16) *p4.Program {
		prog, specs, err := fabricAggProg(nodes[id], cfg.Rounds, cfg.Target)
		if err != nil {
			panic(fmt.Sprintf("fabric agg: device %d: %v", id, err))
		}
		spec = specs[1]
		return prog
	}

	n := netsim.NewNetwork()
	n.MaxEvents = 50_000_000
	var topo *netsim.Topo
	var err error
	if cfg.Tiers == 3 {
		perGroup := cfg.Leaves / cfg.Groups
		topo, err = netsim.BuildFatTree(n, netsim.FatTreeSpec{
			Pods: cfg.Groups, EdgesPerPod: perGroup, AggsPerPod: 1,
			CoreIDs: []uint16{rootID},
			EdgeID:  func(pod, i int) uint16 { return leafIDs[pod*perGroup+i] },
			AggID:   func(pod, i int) uint16 { return uint16(50 + pod) },
			Prog:    progFor,
		})
	} else {
		topo, err = netsim.BuildLeafSpine(n, netsim.LeafSpineSpec{
			LeafIDs: leafIDs, SpineIDs: []uint16{rootID},
			LeafProg:  func(i int, id uint16) *p4.Program { return progFor(id) },
			SpineProg: func(i int, id uint16) *p4.Program { return progFor(id) },
		})
	}
	if err != nil {
		return nil, err
	}
	if err := topo.InstallRoutes(netsim.RouteOptions{ECMP: true}); err != nil {
		return nil, err
	}

	root := n.Device(rootID)
	topTier := len(topo.Tiers) - 1

	// Collector host behind the root; group 42 is the completion
	// multicast the root kernel emits.
	const collectorID = 0xF000
	collector := n.AddHost(collectorID)
	_, collPort := topo.AttachHost(collector, root, netsim.LinkClass{})
	root.SetMulticastGroup(42, []int{collPort})

	// Workers, racks in order. In the flat baseline every worker
	// targets the root with its global bit; hierarchically it targets
	// its leaf with its rack-local bit.
	type workerMeta struct {
		target uint16
		mask   uint16
		home   uint8 // leaf ordinal (scratch selector)
		next   int   // next round to send
	}
	meta := make([]workerMeta, 0, workers+1)
	meta = append(meta, workerMeta{next: cfg.Rounds}) // collector never sends
	for l := 0; l < cfg.Leaves; l++ {
		leaf := n.Device(leafIDs[l])
		for w := 0; w < cfg.WorkersPerLeaf; w++ {
			global := l*cfg.WorkersPerLeaf + w
			h := n.AddHost(uint16(1000 + global))
			topo.AttachHost(h, leaf, netsim.LinkClass{})
			m := workerMeta{target: leafIDs[l], mask: 1 << uint(w), home: uint8(l)}
			if cfg.Tiers == 1 {
				m = workerMeta{target: rootID, mask: 1 << uint(global), home: uint8(l)}
			}
			meta = append(meta, m)
		}
	}

	res := &FabricAggResult{
		Tiers: cfg.Tiers, Workers: workers, Rounds: cfg.Rounds,
		Devices: len(nodes), Expected: cfg.Rounds,
	}

	// Collector: verify each completed round's sum. Worker w sends
	// v[i] = r + i + w, so the full reduction over W workers is
	// W*(r+i) + W*(W-1)/2, with exp carrying the round via max.
	vals := make([]uint64, fabricSlotSize)
	slot := make([]uint64, 1)
	exp := make([]uint64, 1)
	argv := [][]uint64{slot, nil, exp, vals}
	collector.SetReceive(func(h *netsim.Host, msg []byte) {
		if _, err := runtime.UnpackInto(spec, msg, argv); err != nil {
			res.Mismatches++
			return
		}
		res.Completed++
		r := exp[0]
		if slot[0] != r {
			res.Mismatches++
			return
		}
		w := uint64(workers)
		for i := 0; i < fabricSlotSize; i++ {
			if vals[i] != w*(r+uint64(i))+w*(w-1)/2 {
				res.Mismatches++
				return
			}
		}
	})

	// Open-loop senders: each worker is paced by the network timer with
	// a per-host staggered interval, so no two events tie on a shared
	// queue and the event order is independent of the partition count.
	// The packing scratch is per leaf: all hosts of one leaf run in the
	// leaf's partition, so each scratch has a single concurrent user.
	type aggScratch struct {
		buf                   []byte
		argv                  [][]uint64
		slot, mask, exp, vals []uint64
	}
	scratch := make([]aggScratch, cfg.Leaves)
	for l := range scratch {
		sc := &scratch[l]
		sc.buf = make([]byte, 0, spec.Size())
		sc.slot, sc.mask, sc.exp = make([]uint64, 1), make([]uint64, 1), make([]uint64, 1)
		sc.vals = make([]uint64, fabricSlotSize)
		sc.argv = [][]uint64{sc.slot, sc.mask, sc.exp, sc.vals}
	}
	interval := func(i int) netsim.Time {
		return 20*netsim.Microsecond + netsim.Time(float64(i%1009)*0.125)
	}
	n.OnTimer(func(h *netsim.Host) {
		i := h.Index()
		m := &meta[i]
		if m.next >= cfg.Rounds {
			return
		}
		r := m.next
		m.next++
		global := i - 1 // host 0 is the collector
		sc := &scratch[m.home]
		sc.slot[0] = uint64(r)
		sc.mask[0] = uint64(m.mask)
		sc.exp[0] = uint64(r)
		for j := range sc.vals {
			sc.vals[j] = uint64(r) + uint64(j) + uint64(global)
		}
		hdr := runtime.Message{Src: h.ID, Dst: collectorID, Device: m.target, Comp: 1}.Header()
		msg, err := runtime.PackAppend(sc.buf[:0], spec, hdr, sc.argv)
		if err != nil {
			return
		}
		sc.buf = msg[:0]
		h.Send(msg)
		if m.next < cfg.Rounds {
			h.StartTimer(interval(i))
		}
	})

	if cfg.Trace {
		n.EnableTrace()
	}
	if cfg.Partitions > 0 {
		if err := n.SetPartitions(cfg.Partitions); err != nil {
			return nil, err
		}
		res.Partitions = n.Partitions()
	}
	for i := 1; i < len(meta); i++ {
		n.HostAt(i).StartTimer(100*netsim.Nanosecond + netsim.Time(float64(i)*0.125))
	}
	if err := n.RunAll(); err != nil {
		return nil, err
	}

	res.DurationNs = float64(n.Now())
	res.Events = n.TotalProcessed()
	if res.DurationNs > 0 {
		res.GoodputElems = float64(workers*cfg.Rounds*fabricSlotSize) / (res.DurationNs / 1e9)
	}
	for tier := 1; tier <= topTier; tier++ {
		res.TierIngressBytes = append(res.TierIngressBytes, topo.TierIngressBytes(tier))
	}
	res.RootIngressBytes = topo.TierIngressBytes(topTier)
	if cfg.Trace {
		res.TraceHash = n.TraceHash()
	}
	return res, nil
}

// FabricCacheConfig parameterizes the per-rack cache run.
type FabricCacheConfig struct {
	// Racks is the number of leaf switches, each with one client host
	// and its own cache (default 3).
	Racks int
	// Spines is the spine count — >1 exercises ECMP transit (default 2).
	Spines int
	// CachedKeys per rack cache; TotalKeys the uniform key universe.
	CachedKeys int
	TotalKeys  int
	// RequestsPerClient is the closed-loop request count per rack.
	RequestsPerClient int
	Target            passes.Target
}

// FabricCacheResult reports the per-rack cache run.
type FabricCacheResult struct {
	Racks          int     `json:"racks"`
	Requests       int     `json:"requests"`
	Hits           int     `json:"hits"`
	Misses         int     `json:"misses"`
	HitRate        float64 `json:"hit_rate"`
	WrongValues    int     `json:"wrong_values"`
	MeanResponseNs float64 `json:"mean_response_ns"`
	// SpineIngressBytes counts upward fabric traffic: only misses and
	// their server round trips cross the spine — rack-local hits never
	// leave the leaf.
	SpineIngressBytes uint64 `json:"spine_ingress_bytes"`
}

// RunFabricCache places one cache per rack leaf, all backed by a
// single KVS server host homed behind the last leaf: hits reflect at
// the rack switch, misses cross the spine (ECMP over the uplinks) to
// the server and return.
func RunFabricCache(cfg FabricCacheConfig) (*FabricCacheResult, error) {
	if cfg.Target == "" {
		cfg.Target = passes.TargetTNA
	}
	if cfg.Racks <= 0 {
		cfg.Racks = 3
	}
	if cfg.Spines <= 0 {
		cfg.Spines = 2
	}
	if cfg.TotalKeys <= 0 {
		cfg.TotalKeys = 32
	}
	if cfg.CachedKeys <= 0 {
		cfg.CachedKeys = cfg.TotalKeys / 2
	}
	if cfg.CachedKeys > cfg.TotalKeys {
		return nil, fmt.Errorf("fabric cache: cached keys %d out of range", cfg.CachedKeys)
	}
	if cfg.RequestsPerClient <= 0 {
		cfg.RequestsPerClient = 64
	}

	app := ByName("CACHE")
	var spec *runtime.MessageSpec
	prog := func(i int, id uint16) *p4.Program {
		p, specs, err := CompileApp(app, cfg.Target, id)
		if err != nil {
			panic(fmt.Sprintf("fabric cache: device %d: %v", id, err))
		}
		spec = specs[1]
		return p
	}

	n := netsim.NewNetwork()
	n.MaxEvents = 10_000_000
	leafIDs := make([]uint16, cfg.Racks+1) // racks + the server's home leaf
	for i := range leafIDs {
		leafIDs[i] = uint16(10 + i)
	}
	spineIDs := make([]uint16, cfg.Spines)
	for i := range spineIDs {
		spineIDs[i] = uint16(80 + i)
	}
	topo, err := netsim.BuildLeafSpine(n, netsim.LeafSpineSpec{
		LeafIDs: leafIDs, SpineIDs: spineIDs,
		LeafProg: prog, SpineProg: prog,
	})
	if err != nil {
		return nil, err
	}

	const serverID = 0x2000
	server := n.AddHost(serverID)
	home := n.Device(leafIDs[cfg.Racks])
	topo.AttachHost(server, home, netsim.LinkClass{})
	clients := make([]*netsim.Host, cfg.Racks)
	for r := 0; r < cfg.Racks; r++ {
		clients[r] = n.AddHost(uint16(0x1000 + r))
		topo.AttachHost(clients[r], n.Device(leafIDs[r]), netsim.LinkClass{})
	}
	if err := topo.InstallRoutes(netsim.RouteOptions{ECMP: true, HostRoutes: true}); err != nil {
		return nil, err
	}

	// Populate every rack cache with the hot keys through the control
	// plane (one transaction per device).
	valueOf := func(key uint64, w int) uint64 { return key*1000 + uint64(w) }
	for r := 0; r < cfg.Racks; r++ {
		if err := populateCache(n.Device(leafIDs[r]), cfg.CachedKeys, valueOf); err != nil {
			return nil, err
		}
	}

	words := CacheWords
	server.SetProcessingNs(7600 * netsim.Nanosecond)
	server.SetReceive(func(h *netsim.Host, msg []byte) {
		key := make([]uint64, 1)
		op := make([]uint64, 1)
		hdr, err := runtime.Unpack(spec, msg, [][]uint64{op, key, nil, nil, nil})
		if err != nil || op[0] != 1 {
			return
		}
		vals := make([]uint64, words)
		for w := range vals {
			vals[w] = valueOf(key[0], w)
		}
		// Respond without requesting computation (to = none): the reply
		// transits the fabric on host routes only.
		reply, err := runtime.Pack(spec, wire.Header{
			Src: serverID, Dst: hdr.Src, From: wire.None, To: wire.None, Comp: 1,
		}, [][]uint64{op, key, vals, {0}, nil})
		if err != nil {
			return
		}
		h.Send(reply)
	})

	res := &FabricCacheResult{Racks: cfg.Racks}
	var totalRT float64
	for r := 0; r < cfg.Racks; r++ {
		r := r
		client := clients[r]
		sent := 0
		var sentAt netsim.Time
		issue := func() {
			if sent >= cfg.RequestsPerClient {
				return
			}
			// Stagger racks so no two clients tie on the spine.
			key := uint64((sent*7+r)%cfg.TotalKeys) + 1
			sentAt = n.Now()
			sent++
			msg, err := runtime.Pack(spec,
				runtime.Message{Src: client.ID, Dst: serverID, Device: leafIDs[r], Comp: 1}.Header(),
				[][]uint64{{1}, {key}, nil, nil, nil})
			if err != nil {
				return
			}
			client.Send(msg)
		}
		client.SetReceive(func(h *netsim.Host, msg []byte) {
			key := make([]uint64, 1)
			vals := make([]uint64, words)
			hit := make([]uint64, 1)
			if _, err := runtime.Unpack(spec, msg, [][]uint64{nil, key, vals, hit, nil}); err != nil {
				return
			}
			res.Requests++
			totalRT += float64(n.Now() - sentAt)
			if hit[0] != 0 {
				res.Hits++
			} else {
				res.Misses++
			}
			for w := 0; w < words; w++ {
				if vals[w] != valueOf(key[0], w) {
					res.WrongValues++
					break
				}
			}
			issue()
		})
		// Stagger initial issue per rack.
		n.At(netsim.Time(r)*netsim.Microsecond, issue)
	}

	if err := n.RunAll(); err != nil {
		return nil, err
	}
	if res.Requests > 0 {
		res.MeanResponseNs = totalRT / float64(res.Requests)
		res.HitRate = float64(res.Hits) / float64(res.Requests)
	}
	res.SpineIngressBytes = topo.TierIngressBytes(1)
	return res, nil
}

// populateCache installs keys 1..cached into one rack switch's cache
// through the control plane, as a single transaction per device.
func populateCache(dev *netsim.Device, cached int, valueOf func(key uint64, w int) uint64) error {
	cp := &p4rt.Direct{SW: dev.SW}
	batch := p4rt.NewWriteBatch()
	for k := 0; k < cached; k++ {
		key := uint64(k + 1)
		idx := uint64(k)
		batch.Insert("lu_Index", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
			Action: &p4.ActionCall{Name: "lu_Index_hit", Args: []uint64{idx}},
		})
		batch.Insert("lu_Share", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
			Action: &p4.ActionCall{Name: "lu_Share_hit", Args: []uint64{(1 << uint(CacheWords)) - 1}},
		})
		for w := 0; w < CacheWords; w++ {
			batch.RegisterWrite(fmt.Sprintf("reg_Vals__%d", w), int(idx), valueOf(key, w))
		}
		batch.RegisterWrite("reg_Valid", int(idx), 1)
	}
	_, err := cp.Write(batch)
	return err
}

// FabricPaxosConfig parameterizes consensus across the fabric.
type FabricPaxosConfig struct {
	Commands int
	Target   passes.Target
}

// RunFabricPaxos places the P4xos roles on distinct fabric switches:
// the leader and learner as spines, the three acceptors as leaves of
// a leaf/spine Clos — every role reachable from every other in one
// fabric hop, with multicast groups derived from the topology instead
// of hand-numbered ports.
func RunFabricPaxos(cfg FabricPaxosConfig) (*PaxosResult, error) {
	if cfg.Target == "" {
		cfg.Target = passes.TargetTNA
	}
	if cfg.Commands <= 0 {
		cfg.Commands = 16
	}
	app := ByName("PAXOS")

	var specs map[uint8]*runtime.MessageSpec
	prog := func(i int, id uint16) *p4.Program {
		p, sp, err := CompileApp(app, cfg.Target, id)
		if err != nil {
			panic(fmt.Sprintf("fabric paxos: device %d: %v", id, err))
		}
		specs = sp
		return p
	}

	n := netsim.NewNetwork()
	n.MaxEvents = 10_000_000
	// Leader (1) and learner (5) as spines; acceptors (2,3,4) as
	// leaves: the PaxosSource placement ids, on fabric switches.
	topo, err := netsim.BuildLeafSpine(n, netsim.LeafSpineSpec{
		LeafIDs:  []uint16{PaxosAcceptor1, PaxosAcceptor2, PaxosAcceptor3},
		SpineIDs: []uint16{PaxosLeader, PaxosLearner},
		LeafProg: prog, SpineProg: prog,
	})
	if err != nil {
		return nil, err
	}
	leader := n.Device(PaxosLeader)
	learner := n.Device(PaxosLearner)

	client := n.AddHost(100)
	appHost := n.AddHost(101)
	topo.AttachHost(client, leader, netsim.LinkClass{})
	topo.AttachHost(appHost, learner, netsim.LinkClass{})
	if err := topo.InstallRoutes(netsim.RouteOptions{ECMP: true, HostRoutes: true}); err != nil {
		return nil, err
	}

	// Multicast groups from topology adjacency: the leader's acceptor
	// group fans out to the three leaves; each acceptor's learner
	// group is its direct spine port.
	var accPorts []int
	for _, acc := range topo.Tiers[0] {
		accPorts = append(accPorts, topo.PortTo(leader, acc))
	}
	leader.SetMulticastGroup(20, accPorts)
	for _, acc := range topo.Tiers[0] {
		acc.SetMulticastGroup(30, []int{topo.PortTo(acc, learner)})
	}

	spec := specs[1]
	res := &PaxosResult{}
	delivered := map[uint64]bool{}
	appHost.SetReceive(func(h *netsim.Host, msg []byte) {
		typ := make([]uint64, 1)
		inst := make([]uint64, 1)
		v := make([]uint64, 8)
		if _, err := runtime.Unpack(spec, msg, [][]uint64{typ, inst, nil, nil, nil, v}); err != nil {
			return
		}
		if typ[0] != 4 { // DELIVER
			return
		}
		if delivered[inst[0]] {
			res.Duplicates++
			return
		}
		delivered[inst[0]] = true
		res.Delivered++
		if v[0] != 1000+inst[0]-1 {
			res.WrongValue++
		}
	})

	for c := 0; c < cfg.Commands; c++ {
		vals := make([]uint64, 8)
		vals[0] = uint64(1000 + c)
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: 100, Dst: 101, Device: PaxosLeader, Comp: 1}.Header(),
			[][]uint64{{1}, {0}, {0}, {0}, {0}, vals})
		if err != nil {
			return nil, err
		}
		client.Send(msg)
		res.Submitted++
	}
	if err := n.RunAll(); err != nil {
		return nil, err
	}
	res.Undelivered = res.Submitted - res.Delivered
	return res, nil
}
