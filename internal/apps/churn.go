package apps

// churn.go is the production-churn suite: timeline-driven failure
// scenarios run against live open-loop load and scored with the SLO
// machinery in slo.go. A timeline is a set of discrete events —
// CrashDevice (Pause), RestoreDevice, FailLink (SetPortDown),
// ShiftZipf (per-client popularity swap), ApplyBatch (a transactional
// WriteBatch on one switch), ReelectCoordinator (drain + standby
// restore + re-route) — scheduled at fixed virtual times through the
// netsim At hooks, so every event fires at the same simulated instant
// regardless of the partition count and the runs stay hash-chain
// identical to serial execution.
//
// Four scenarios ship (ROADMAP item 5):
//   1. AGG aggregator crash with pool-state failover: drain the dead
//      switch's slot registers via ReadRegisters, replay into a
//      standby (compiled with the primary's logical device id) as one
//      WriteBatch, and re-route around the corpse with RerouteBatches
//      — plus a transient fabric-link failure later in the run.
//   2. P4xos coordinator loss and re-election: the instance counter
//      moves to a standby spine, multicast groups are rebuilt from the
//      surviving adjacency, and routes to the logical coordinator id
//      are rewritten transactionally.
//   3. NetCache hot-key churn: the Zipf popularity shifts mid-run, the
//      control plane repopulates every rack cache in one batch per
//      switch while misses keep serving from the backing store.
//   4. Rolling reconfig: every rack cache's values are rewritten one
//      switch at a time under live load; PR 6's generation pin means
//      no response may mix old and new words.

import (
	"fmt"
	"math"
	"sort"

	"netcl/internal/bmv2"
	"netcl/internal/netsim"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
	"netcl/internal/wire"
)

// ChurnConfig parameterizes one churn scenario run.
type ChurnConfig struct {
	// Partitions arms partitioned execution (0 = serial).
	Partitions int
	// Trace enables delivery hash chains (the determinism witness).
	Trace bool
	// Smoke shrinks the run for CI.
	Smoke  bool
	Target passes.Target
}

func (c *ChurnConfig) defaults() {
	if c.Target == "" {
		c.Target = passes.TargetTNA
	}
}

// ChurnEvent is one timeline entry, recorded for the report.
type ChurnEvent struct {
	Name string  `json:"name"`
	AtNs float64 `json:"at_ns"`
}

// ChurnResult is one scored scenario run.
type ChurnResult struct {
	Name       string  `json:"name"`
	Partitions int     `json:"partitions"`
	DurationNs float64 `json:"duration_ns"`
	// Requests/Completed/Lost count the scenario's request unit
	// (aggregation rounds, consensus commands, cache GETs).
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Lost      int `json:"lost"`
	// Errors counts wrong results: bad sums, torn values, duplicate
	// deliveries. Must be zero — churn may lose requests, never corrupt
	// them.
	Errors    int          `json:"errors"`
	Hits      int          `json:"hits,omitempty"`
	Misses    int          `json:"misses,omitempty"`
	Events    []ChurnEvent `json:"events"`
	SLO       *SLOReport   `json:"slo"`
	TraceHash uint64       `json:"trace_hash,omitempty"`
	SimEvents uint64       `json:"sim_events"`
}

// drainRegisters snapshots the named register files of a switch: the
// bulk read half of pool-state failover.
func drainRegisters(sw *bmv2.Switch, names []string) (map[string][]uint64, error) {
	snap := map[string][]uint64{}
	for _, name := range names {
		cells, err := sw.ReadRegisters(name)
		if err != nil {
			return nil, err
		}
		snap[name] = cells
	}
	return snap, nil
}

// restoreBatch turns a register snapshot into one transactional
// WriteBatch, skipping zero cells (unwritten pages read as zero on the
// standby anyway, so replaying them would only materialize pages).
func restoreBatch(snap map[string][]uint64) *bmv2.WriteBatch {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	b := bmv2.NewWriteBatch()
	for _, name := range names {
		for idx, v := range snap[name] {
			if v != 0 {
				b.RegisterWrite(name, idx, v)
			}
		}
	}
	return b
}

// ---------------------------------------------------------------------
// Scenario 1: AGG aggregator crash → pool-state failover to a standby.
// ---------------------------------------------------------------------

// RunChurnAggFailover runs hierarchical aggregation on a two-pod
// fat-tree where each pod has a primary aggregator and a cold standby
// compiled with the primary's logical device id. Mid-run the pod-0
// primary crashes; its slot registers are drained, replayed into the
// standby in one WriteBatch, and the fabric re-routes the logical id
// to the standby — a round whose contributions straddle the crash
// completes with the correct sum only because the partial aggregation
// state moved. Later a fabric link fails transiently, losing the
// rounds issued across it until it restores.
func RunChurnAggFailover(cfg ChurnConfig) (*ChurnResult, error) {
	cfg.defaults()
	rounds := 40
	if cfg.Smoke {
		rounds = 14
	}
	const (
		rootID      = 100
		collectorID = 0xF000
		pods        = 2
		edgesPerPod = 2
		perEdge     = 2 // workers per edge switch
	)
	workers := pods * edgesPerPod * perEdge
	podWorkers := edgesPerPod * perEdge

	edgeID := func(p, i int) uint16 { return uint16(10 + p*edgesPerPod + i) }
	aggID := func(p, i int) uint16 { return uint16(50 + p*2 + i) }
	primary := [pods]uint16{aggID(0, 0), aggID(1, 0)}
	standby := [pods]uint16{aggID(0, 1), aggID(1, 1)}

	// The logical aggregation tree: pod primaries reduce their pod's
	// workers, the core completes. Standbys compile as their primary
	// (same logical id, same tree position); edges are pure transit.
	nodes := map[uint16]aggNode{
		rootID: {id: rootID, fanin: pods, isRoot: true},
	}
	for p := 0; p < pods; p++ {
		nodes[primary[p]] = aggNode{id: primary[p], fanin: podWorkers, parent: rootID, levelIdx: p}
		for i := 0; i < edgesPerPod; i++ {
			nodes[edgeID(p, i)] = aggNode{id: edgeID(p, i), fanin: podWorkers, parent: primary[p]}
		}
	}
	logical := map[uint16]uint16{standby[0]: primary[0], standby[1]: primary[1]}

	var spec *runtime.MessageSpec
	progFor := func(id uint16) *p4.Program {
		lid := id
		if l, ok := logical[id]; ok {
			lid = l
		}
		prog, specs, err := fabricAggProg(nodes[lid], rounds, cfg.Target)
		if err != nil {
			panic(fmt.Sprintf("churn agg: device %d: %v", id, err))
		}
		spec = specs[1]
		return prog
	}

	n := netsim.NewNetwork()
	n.MaxEvents = 50_000_000
	topo, err := netsim.BuildFatTree(n, netsim.FatTreeSpec{
		Pods: pods, EdgesPerPod: edgesPerPod, AggsPerPod: 2,
		CoreIDs: []uint16{rootID},
		EdgeID:  edgeID, AggID: aggID, Prog: progFor,
	})
	if err != nil {
		return nil, err
	}
	if err := topo.InstallRoutes(netsim.RouteOptions{ECMP: true}); err != nil {
		return nil, err
	}

	root := n.Device(rootID)
	collector := n.AddHost(collectorID)
	_, collPort := topo.AttachHost(collector, root, netsim.LinkClass{})
	root.SetMulticastGroup(42, []int{collPort})

	// Workers: two per edge, targeting their pod primary with their
	// pod-local contribution bit. Worker g's sends for round r are
	// spread across the round by the pod-local phase j·6µs, so a crash
	// can land between two contributions of the same round.
	type workerMeta struct {
		target uint16
		mask   uint16
		home   uint8
		next   int
	}
	meta := make([]workerMeta, 0, workers+1)
	meta = append(meta, workerMeta{next: rounds}) // collector never sends
	for p := 0; p < pods; p++ {
		for i := 0; i < edgesPerPod; i++ {
			edge := n.Device(edgeID(p, i))
			for w := 0; w < perEdge; w++ {
				j := i*perEdge + w // pod-local position 0..podWorkers-1
				h := n.AddHost(uint16(1000 + p*podWorkers + j))
				topo.AttachHost(h, edge, netsim.LinkClass{})
				meta = append(meta, workerMeta{
					target: primary[p], mask: 1 << uint(j), home: uint8(p*edgesPerPod + i),
				})
			}
		}
	}
	phase := func(g int) netsim.Time {
		j := g % podWorkers
		return 100*netsim.Nanosecond + netsim.Time(float64(j)*6000) + netsim.Time(float64(g)*0.125)
	}
	interval := func(g int) netsim.Time {
		return 24*netsim.Microsecond + netsim.Time(float64(g%1009)*0.125)
	}

	res := &ChurnResult{Name: "agg-failover", Requests: rounds}
	complete := make([]float64, rounds)
	for r := range complete {
		complete[r] = -1
	}
	vals := make([]uint64, fabricSlotSize)
	slot := make([]uint64, 1)
	exp := make([]uint64, 1)
	argv := [][]uint64{slot, nil, exp, vals}
	collector.SetReceive(func(h *netsim.Host, msg []byte) {
		if _, err := runtime.UnpackInto(spec, msg, argv); err != nil {
			res.Errors++
			return
		}
		r := exp[0]
		if slot[0] != r || r >= uint64(rounds) {
			res.Errors++
			return
		}
		w := uint64(workers)
		for i := 0; i < fabricSlotSize; i++ {
			if vals[i] != w*(r+uint64(i))+w*(w-1)/2 {
				res.Errors++
				return
			}
		}
		if complete[r] < 0 {
			complete[r] = float64(h.Now())
		}
	})

	type aggScratch struct {
		buf                   []byte
		argv                  [][]uint64
		slot, mask, exp, vals []uint64
	}
	scratch := make([]aggScratch, pods*edgesPerPod)
	for l := range scratch {
		sc := &scratch[l]
		sc.buf = make([]byte, 0, spec.Size())
		sc.slot, sc.mask, sc.exp = make([]uint64, 1), make([]uint64, 1), make([]uint64, 1)
		sc.vals = make([]uint64, fabricSlotSize)
		sc.argv = [][]uint64{sc.slot, sc.mask, sc.exp, sc.vals}
	}
	n.OnTimer(func(h *netsim.Host) {
		i := h.Index()
		m := &meta[i]
		if m.next >= rounds {
			return
		}
		r := m.next
		m.next++
		g := i - 1
		sc := &scratch[m.home]
		sc.slot[0] = uint64(r)
		sc.mask[0] = uint64(m.mask)
		sc.exp[0] = uint64(r)
		for j := range sc.vals {
			sc.vals[j] = uint64(r) + uint64(j) + uint64(g)
		}
		hdr := runtime.Message{Src: h.ID, Dst: collectorID, Device: m.target, Comp: 1}.Header()
		msg, err := runtime.PackAppend(sc.buf[:0], spec, hdr, sc.argv)
		if err != nil {
			return
		}
		sc.buf = msg[:0]
		h.Send(msg)
		if m.next < rounds {
			h.StartTimer(interval(i))
		}
	})

	// Timeline. The crash lands just after pod-0 worker j=1's round-r*
	// contribution is processed at the primary (send + ~3.4µs of
	// transit): workers j∈{0,1} live in the primary's registers, the
	// drain and the standby restore finish inside the 6µs gap before
	// j=2 sends, so round r* completes on the standby with the correct
	// sum — if and only if the partial pool state was replayed.
	dev50 := n.Device(primary[0])
	dev51 := n.Device(standby[0])
	rStar := 2 * rounds / 5
	base := float64(phase(1)) + float64(rStar)*float64(interval(1)) // j=1's round-r* send
	tc := base + 3700 + 0.3
	td := tc + 200
	// tr − td ≥ the 2µs lookahead: the drain and the restore are in
	// different partitions when k > 1, and the window barrier between
	// them is what publishes the snapshot.
	tr := td + 2000.3

	// Later, the edge-13↔pod-1-primary link fails transiently: the
	// rounds whose contributions cross it during the outage are lost
	// (the availability dip), then service recovers on restore.
	edge13 := n.Device(edgeID(1, 1))
	agg52 := n.Device(primary[1])
	portTo52 := topo.PortTo(edge13, agg52)
	tl := 100 + float64(rStar+3)*24000 + 10000 + 0.3
	tl2 := tl + 28000

	// Re-route around the dead primary: computed against the live
	// tables at setup (they do not change before tr), applied per
	// device in its own partition at tr.
	reroute, err := topo.RerouteBatches(netsim.RerouteOptions{
		Dead:     []*netsim.Device{dev50},
		Redirect: map[uint16]*netsim.Device{primary[0]: dev51},
	})
	if err != nil {
		return nil, err
	}

	if cfg.Trace {
		n.EnableTrace()
	}
	if cfg.Partitions > 0 {
		if err := n.SetPartitions(cfg.Partitions); err != nil {
			return nil, err
		}
	}
	res.Partitions = n.Partitions()

	poolRegs := []string{"reg_Bitmap", "reg_Count", "reg_Exp"}
	for i := 0; i < fabricSlotSize; i++ {
		poolRegs = append(poolRegs, fmt.Sprintf("reg_Agg__%d", i))
	}
	var snap map[string][]uint64
	var drainErr error
	dev50.At(netsim.Time(tc), func() { dev50.Pause() })
	dev50.At(netsim.Time(td), func() { snap, drainErr = drainRegisters(dev50.SW, poolRegs) })
	dev51.At(netsim.Time(tr), func() {
		if drainErr != nil || snap == nil {
			return
		}
		if b := restoreBatch(snap); b.Len() > 0 {
			if _, err := dev51.SW.Write(b); err != nil {
				drainErr = err
			}
		}
	})
	for _, db := range reroute {
		db := db
		db.Dev.At(netsim.Time(tr), func() { db.Dev.SW.Write(db.Batch) })
	}
	edge13.At(netsim.Time(tl), func() { edge13.SetPortDown(portTo52, true) })
	edge13.At(netsim.Time(tl2), func() { edge13.SetPortDown(portTo52, false) })
	res.Events = []ChurnEvent{
		{Name: "CrashDevice(50)", AtNs: tc},
		{Name: "DrainRegisters(50)", AtNs: td},
		{Name: "RestoreDevice(51)+Reroute", AtNs: tr},
		{Name: "FailLink(13-52)", AtNs: tl},
		{Name: "RestoreLink(13-52)", AtNs: tl2},
	}

	for i := 1; i < len(meta); i++ {
		n.HostAt(i).StartTimer(phase(i - 1))
	}
	if err := n.RunAll(); err != nil {
		return nil, err
	}
	if drainErr != nil {
		return nil, fmt.Errorf("churn agg: failover: %w", drainErr)
	}

	// Score: a round's issue time is its last contribution's send time
	// (closed form — the timer schedule is deterministic).
	samples := make([]Sample, 0, rounds)
	for r := 0; r < rounds; r++ {
		var issue float64
		for g := 0; g < workers; g++ {
			t := float64(phase(g)) + float64(r)*float64(interval(g+1))
			if t > issue {
				issue = t
			}
		}
		s := Sample{IssueNs: issue}
		if complete[r] >= 0 {
			s.OK = true
			s.RTTNs = complete[r] - issue
			res.Completed++
		} else {
			res.Lost++
		}
		samples = append(samples, s)
	}
	res.SLO = ScoreSLO(samples, tc, tl2, SLOConfig{
		WindowNs: 48e3, DeadlineNs: 15e3, AvailFrac: 0.9, EpsilonP99: 0.25,
	})
	res.DurationNs = float64(n.Now())
	res.SimEvents = n.TotalProcessed()
	if cfg.Trace {
		res.TraceHash = n.TraceHash()
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Scenario 2: P4xos coordinator loss → re-election onto a standby.
// ---------------------------------------------------------------------

// paxosStandby is the physical id of the spare spine that takes over
// the coordinator role (compiled with PaxosLeader's logical id).
const paxosStandby = 6

// RunChurnPaxosReelect runs consensus on a leaf/spine fabric — leader
// and learner as spines, acceptors as leaves, plus a standby spine
// compiled with the leader's logical id — and kills the coordinator
// mid-stream. Re-election is a timeline: drain the dead leader's
// registers (the Instance allocator), replay them into the standby in
// one WriteBatch, and re-route the logical coordinator id. Instance
// numbering must continue where the dead leader stopped: without the
// counter replay the standby would reissue instance numbers the
// learner has already marked Done and silently swallow every
// subsequent command.
func RunChurnPaxosReelect(cfg ChurnConfig) (*ChurnResult, error) {
	cfg.defaults()
	commands := 90
	if cfg.Smoke {
		commands = 30
	}
	app := ByName("PAXOS")
	var specs map[uint8]*runtime.MessageSpec
	prog := func(i int, id uint16) *p4.Program {
		lid := id
		if lid == paxosStandby {
			lid = PaxosLeader
		}
		p, sp, err := CompileApp(app, cfg.Target, lid)
		if err != nil {
			panic(fmt.Sprintf("churn paxos: device %d: %v", id, err))
		}
		specs = sp
		return p
	}

	n := netsim.NewNetwork()
	n.MaxEvents = 10_000_000
	topo, err := netsim.BuildLeafSpine(n, netsim.LeafSpineSpec{
		LeafIDs:  []uint16{PaxosAcceptor1, PaxosAcceptor2, PaxosAcceptor3},
		SpineIDs: []uint16{PaxosLeader, PaxosLearner, paxosStandby},
		LeafProg: prog, SpineProg: prog,
	})
	if err != nil {
		return nil, err
	}
	leader := n.Device(PaxosLeader)
	learner := n.Device(PaxosLearner)
	standby := n.Device(paxosStandby)

	// The client homes on an acceptor leaf, not the leader: its uplink
	// must survive the coordinator's death, so requests transit the
	// fabric on the logical id and can be re-routed.
	client := n.AddHost(100)
	appHost := n.AddHost(101)
	topo.AttachHost(client, n.Device(PaxosAcceptor1), netsim.LinkClass{})
	topo.AttachHost(appHost, learner, netsim.LinkClass{})
	if err := topo.InstallRoutes(netsim.RouteOptions{ECMP: true, HostRoutes: true}); err != nil {
		return nil, err
	}

	// Acceptor multicast groups on both coordinators: the standby's
	// group is static config (it only fires once leader traffic is
	// re-routed here), so it is set at build time, not during failover.
	for _, coord := range []*netsim.Device{leader, standby} {
		var accPorts []int
		for _, acc := range topo.Tiers[0] {
			accPorts = append(accPorts, topo.PortTo(coord, acc))
		}
		coord.SetMulticastGroup(20, accPorts)
	}
	for _, acc := range topo.Tiers[0] {
		acc.SetMulticastGroup(30, []int{topo.PortTo(acc, learner)})
	}

	spec := specs[1]
	res := &ChurnResult{Name: "paxos-reelect", Requests: commands}
	complete := make([]float64, commands)
	for c := range complete {
		complete[c] = -1
	}
	seenInst := map[uint64]bool{}
	appHost.SetReceive(func(h *netsim.Host, msg []byte) {
		typ := make([]uint64, 1)
		inst := make([]uint64, 1)
		v := make([]uint64, 8)
		if _, err := runtime.Unpack(spec, msg, [][]uint64{typ, inst, nil, nil, nil, v}); err != nil {
			res.Errors++
			return
		}
		if typ[0] != 4 { // DELIVER
			return
		}
		// Drops shift instance numbering, so the command index rides in
		// the value. A reused instance number is corruption: the standby
		// restarted the allocator instead of inheriting it.
		if seenInst[inst[0]] {
			res.Errors++
			return
		}
		seenInst[inst[0]] = true
		c := int(v[0]) - 1000
		if c < 0 || c >= commands || complete[c] >= 0 {
			res.Errors++
			return
		}
		complete[c] = float64(h.Now())
	})

	const start = 500
	const step = 15000.25
	issueAt := func(c int) float64 { return start + float64(c)*step }
	sent := 0
	n.OnTimer(func(h *netsim.Host) {
		if sent >= commands {
			return
		}
		c := sent
		sent++
		vals := make([]uint64, 8)
		vals[0] = uint64(1000 + c)
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: 100, Dst: 101, Device: PaxosLeader, Comp: 1}.Header(),
			[][]uint64{{1}, {0}, {0}, {0}, {0}, vals})
		if err != nil {
			return
		}
		h.Send(msg)
		if sent < commands {
			h.StartTimer(netsim.Time(step))
		}
	})

	// Timeline: crash lands after command c*'s request cleared the
	// leader but before the next one arrives; detection + drain takes
	// 1µs, the new coordinator is serving 20µs later.
	cStar := 2 * commands / 5
	tc := issueAt(cStar) + 7000.3
	td := tc + 1000.125
	tre := td + 20000.25

	reroute, err := topo.RerouteBatches(netsim.RerouteOptions{
		Dead:       []*netsim.Device{leader},
		Redirect:   map[uint16]*netsim.Device{PaxosLeader: standby},
		HostRoutes: true,
	})
	if err != nil {
		return nil, err
	}

	if cfg.Trace {
		n.EnableTrace()
	}
	if cfg.Partitions > 0 {
		if err := n.SetPartitions(cfg.Partitions); err != nil {
			return nil, err
		}
	}
	res.Partitions = n.Partitions()

	var snap map[string][]uint64
	var drainErr error
	leader.At(netsim.Time(tc), func() { leader.Pause() })
	leader.At(netsim.Time(td), func() { snap, drainErr = drainRegisters(leader.SW, leader.SW.RegisterNames()) })
	standby.At(netsim.Time(tre), func() {
		if drainErr != nil || snap == nil {
			return
		}
		if b := restoreBatch(snap); b.Len() > 0 {
			if _, err := standby.SW.Write(b); err != nil {
				drainErr = err
			}
		}
	})
	for _, db := range reroute {
		db := db
		db.Dev.At(netsim.Time(tre), func() { db.Dev.SW.Write(db.Batch) })
	}
	res.Events = []ChurnEvent{
		{Name: fmt.Sprintf("CrashDevice(%d)", PaxosLeader), AtNs: tc},
		{Name: fmt.Sprintf("DrainRegisters(%d)", PaxosLeader), AtNs: td},
		{Name: fmt.Sprintf("ReelectCoordinator(%d)+Reroute", paxosStandby), AtNs: tre},
	}

	client.StartTimer(netsim.Time(float64(start)))
	if err := n.RunAll(); err != nil {
		return nil, err
	}
	if drainErr != nil {
		return nil, fmt.Errorf("churn paxos: re-election: %w", drainErr)
	}

	samples := make([]Sample, 0, commands)
	for c := 0; c < commands; c++ {
		s := Sample{IssueNs: issueAt(c)}
		if complete[c] >= 0 {
			s.OK = true
			s.RTTNs = complete[c] - s.IssueNs
			res.Completed++
		} else {
			res.Lost++
		}
		samples = append(samples, s)
	}
	res.SLO = ScoreSLO(samples, tc, tre, SLOConfig{
		WindowNs: 60e3, DeadlineNs: 15e3, AvailFrac: 0.7, EpsilonP99: 0.25,
	})
	res.DurationNs = float64(n.Now())
	res.SimEvents = n.TotalProcessed()
	if cfg.Trace {
		res.TraceHash = n.TraceHash()
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Scenarios 3 & 4: NetCache under hot-key churn / rolling reconfig.
// ---------------------------------------------------------------------

// splitmix64 steps a per-client deterministic RNG: partition-count
// invariance needs every random draw tied to the client, never to a
// shared stream.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// zipfCDF precomputes the cumulative Zipf(s) distribution over n ranks
// for inverse-transform sampling.
func zipfCDF(n int, s float64) []float64 {
	w := make([]float64, n)
	tot := 0.0
	for r := 0; r < n; r++ {
		w[r] = math.Pow(float64(r+1), -s)
		tot += w[r]
	}
	c := 0.0
	for r := range w {
		c += w[r] / tot
		w[r] = c
	}
	w[n-1] = 1
	return w
}

// churnClient is one open-loop cache client's private state: an RNG, a
// popularity epoch, per-key FIFO queues of in-flight issue times, and
// the scored samples. All of it is single-writer (the client's own
// timer/receive/At callbacks), so partitioned runs race on nothing.
type churnClient struct {
	rng      uint64
	epoch    int
	sent     int
	inflight map[uint64][]float64
	samples  []Sample
	hits     int
	misses   int
	errors   int
}

// cacheChurnFabric is the shared scenario 3/4 test bed: a leaf/spine
// Clos with one cache per rack leaf, a backing-store server behind an
// extra home leaf, and one open-loop client per rack.
type cacheChurnFabric struct {
	n       *netsim.Network
	topo    *netsim.Topo
	spec    *runtime.MessageSpec
	leafIDs []uint16
	clients []*netsim.Host
	cs      []churnClient // indexed by host index
}

const (
	cacheChurnRacks  = 3
	cacheChurnTotal  = 32 // key space
	cacheChurnCached = 16 // cache capacity per rack
)

// cacheValueOf is the backing store's truth: generation g of key's
// word w. The server always serves generation 0; rolling reconfig
// rewrites caches to generation 1, and a response is torn if its words
// disagree on g.
func cacheValueOf(key uint64, w, g int) uint64 {
	return key*1000 + uint64(w) + uint64(g)*1_000_000
}

func buildCacheChurnFabric(target passes.Target) (*cacheChurnFabric, error) {
	app := ByName("CACHE")
	f := &cacheChurnFabric{}
	prog := func(i int, id uint16) *p4.Program {
		p, specs, err := CompileApp(app, target, id)
		if err != nil {
			panic(fmt.Sprintf("churn cache: device %d: %v", id, err))
		}
		f.spec = specs[1]
		return p
	}

	n := netsim.NewNetwork()
	n.MaxEvents = 50_000_000
	f.n = n
	f.leafIDs = make([]uint16, cacheChurnRacks+1) // racks + server home
	for i := range f.leafIDs {
		f.leafIDs[i] = uint16(10 + i)
	}
	topo, err := netsim.BuildLeafSpine(n, netsim.LeafSpineSpec{
		LeafIDs: f.leafIDs, SpineIDs: []uint16{80, 81},
		LeafProg: prog, SpineProg: prog,
	})
	if err != nil {
		return nil, err
	}
	f.topo = topo

	const serverID = 0x2000
	server := n.AddHost(serverID)
	topo.AttachHost(server, n.Device(f.leafIDs[cacheChurnRacks]), netsim.LinkClass{})
	f.clients = make([]*netsim.Host, cacheChurnRacks)
	for r := 0; r < cacheChurnRacks; r++ {
		f.clients[r] = n.AddHost(uint16(0x1000 + r))
		topo.AttachHost(f.clients[r], n.Device(f.leafIDs[r]), netsim.LinkClass{})
	}
	if err := topo.InstallRoutes(netsim.RouteOptions{ECMP: true, HostRoutes: true}); err != nil {
		return nil, err
	}
	for r := 0; r < cacheChurnRacks; r++ {
		if err := populateCache(n.Device(f.leafIDs[r]), cacheChurnCached,
			func(key uint64, w int) uint64 { return cacheValueOf(key, w, 0) }); err != nil {
			return nil, err
		}
	}

	server.SetProcessingNs(7600 * netsim.Nanosecond)
	server.SetReceive(func(h *netsim.Host, msg []byte) {
		key := make([]uint64, 1)
		op := make([]uint64, 1)
		hdr, err := runtime.Unpack(f.spec, msg, [][]uint64{op, key, nil, nil, nil})
		if err != nil || op[0] != 1 {
			return
		}
		vals := make([]uint64, CacheWords)
		for w := range vals {
			vals[w] = cacheValueOf(key[0], w, 0)
		}
		reply, err := runtime.Pack(f.spec, wire.Header{
			Src: serverID, Dst: hdr.Src, From: wire.None, To: wire.None, Comp: 1,
		}, [][]uint64{op, key, vals, {0}, nil})
		if err != nil {
			return
		}
		h.Send(reply)
	})

	f.cs = make([]churnClient, n.Hosts())
	for r := 0; r < cacheChurnRacks; r++ {
		c := &f.cs[f.clients[r].Index()]
		c.rng = 0x9E3779B97F4A7C15 * uint64(r+3)
		c.inflight = map[uint64][]float64{}
	}
	return f, nil
}

// cacheKeyOf maps a popularity rank to a key under the given epoch:
// epoch 0's hot head is keys 1..16 (exactly the cached set), epoch 1
// rotates the head onto keys 17..32 — all misses until the control
// plane repopulates.
func cacheKeyOf(epoch, rank int) uint64 {
	if epoch == 0 {
		return uint64(rank + 1)
	}
	return uint64((rank+cacheChurnCached)%cacheChurnTotal) + 1
}

// startCacheClients arms the open-loop per-rack load: client r issues
// perClient GETs on its own deterministic schedule, sampling keys from
// Zipf(1.2) through its epoch. maxGen bounds the accepted value
// generation (0 = only the base values, 1 = rolling upgrade allowed).
func (f *cacheChurnFabric) startCacheClients(perClient, maxGen int) (startAt func(r int) float64, stepOf func(r int) float64) {
	cdf := zipfCDF(cacheChurnTotal, 1.2)
	startAt = func(r int) float64 { return 300 + 700*float64(r) }
	stepOf = func(r int) float64 { return 5000 + 97*float64(r) + 0.375 }
	f.n.OnTimer(func(h *netsim.Host) {
		c := &f.cs[h.Index()]
		if c.inflight == nil || c.sent >= perClient {
			return
		}
		c.sent++
		u := float64(splitmix64(&c.rng)>>11) / (1 << 53)
		rank := 0
		for rank < len(cdf)-1 && cdf[rank] <= u {
			rank++
		}
		key := cacheKeyOf(c.epoch, rank)
		r := int(h.ID) - 0x1000
		c.inflight[key] = append(c.inflight[key], float64(h.Now()))
		msg, err := runtime.Pack(f.spec,
			runtime.Message{Src: h.ID, Dst: 0x2000, Device: f.leafIDs[r], Comp: 1}.Header(),
			[][]uint64{{1}, {key}, nil, nil, nil})
		if err == nil {
			h.Send(msg)
		}
		if c.sent < perClient {
			h.StartTimer(netsim.Time(stepOf(r)))
		}
	})
	for r, cl := range f.clients {
		cl.SetReceive(func(h *netsim.Host, msg []byte) {
			c := &f.cs[h.Index()]
			key := make([]uint64, 1)
			vals := make([]uint64, CacheWords)
			hit := make([]uint64, 1)
			if _, err := runtime.Unpack(f.spec, msg, [][]uint64{nil, key, vals, hit, nil}); err != nil {
				c.errors++
				return
			}
			q := c.inflight[key[0]]
			if len(q) == 0 {
				c.errors++ // a response nobody asked for
				return
			}
			issue := q[0]
			c.inflight[key[0]] = q[1:]
			c.samples = append(c.samples, Sample{IssueNs: issue, RTTNs: float64(h.Now()) - issue, OK: true})
			if hit[0] != 0 {
				c.hits++
			} else {
				c.misses++
			}
			// Torn-value detector: infer the generation from word 0, then
			// every word must agree — PR 6's generation pin under test.
			g := int(vals[0] / 1_000_000)
			ok := g >= 0 && g <= maxGen
			for w := 0; ok && w < CacheWords; w++ {
				if vals[w] != cacheValueOf(key[0], w, g) {
					ok = false
				}
			}
			if !ok {
				c.errors++
			}
		})
		_ = r
	}
	return startAt, stepOf
}

// finishCacheRun folds per-client state into the result and scores the
// merged sample set.
func (f *cacheChurnFabric) finishCacheRun(res *ChurnResult, eventStart, eventEnd float64, trace bool) {
	var samples []Sample
	for i := range f.cs {
		c := &f.cs[i]
		if c.inflight == nil {
			continue
		}
		res.Requests += c.sent
		res.Hits += c.hits
		res.Misses += c.misses
		res.Errors += c.errors
		samples = append(samples, c.samples...)
		res.Completed += len(c.samples)
		keys := make([]int, 0, len(c.inflight))
		for k := range c.inflight {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		for _, k := range keys {
			for _, issue := range c.inflight[uint64(k)] {
				samples = append(samples, Sample{IssueNs: issue})
				res.Lost++
			}
		}
	}
	// AvailFrac 0.6: the Zipf(1.2) head covers ~86% of draws, so a
	// healthy window misses ~14% of the time — the bar sits ~3σ under
	// that, while the shifted-hotset regime (~14% hits) fails it hard.
	res.SLO = ScoreSLO(samples, eventStart, eventEnd, SLOConfig{
		WindowNs: 50e3, DeadlineNs: 12e3, AvailFrac: 0.6, EpsilonP99: 0.25,
	})
	res.DurationNs = float64(f.n.Now())
	res.SimEvents = f.n.TotalProcessed()
	if trace {
		res.TraceHash = f.n.TraceHash()
	}
}

// RunChurnCacheChurn shifts the Zipf head off the cached key set
// mid-run: every hot GET turns into a backing-store miss (availability
// collapses under the latency SLO), then the control plane repopulates
// all rack caches — one transactional batch per switch — and service
// recovers.
func RunChurnCacheChurn(cfg ChurnConfig) (*ChurnResult, error) {
	cfg.defaults()
	perClient := 220
	if cfg.Smoke {
		perClient = 70
	}
	f, err := buildCacheChurnFabric(cfg.Target)
	if err != nil {
		return nil, err
	}
	res := &ChurnResult{Name: "cache-churn"}
	startAt, _ := f.startCacheClients(perClient, 0)

	// The shift lands 40% through the run; the cache repair follows
	// 30µs later (detection + batch build in control-plane time).
	ts := 300 + 0.4*float64(perClient)*5000
	tb := ts + 30000.25

	// The repair batch swaps the cached set: evict keys 1..16, install
	// 17..32 into the freed slots, one transaction per rack switch.
	repair := bmv2.NewWriteBatch()
	for k := 1; k <= cacheChurnCached; k++ {
		repair.Delete("lu_Index", uint64(k))
		repair.Delete("lu_Share", uint64(k))
	}
	for i := 0; i < cacheChurnCached; i++ {
		key := uint64(cacheChurnCached + i + 1)
		idx := uint64(i)
		repair.Insert("lu_Index", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
			Action: &p4.ActionCall{Name: "lu_Index_hit", Args: []uint64{idx}},
		})
		repair.Insert("lu_Share", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
			Action: &p4.ActionCall{Name: "lu_Share_hit", Args: []uint64{(1 << uint(CacheWords)) - 1}},
		})
		for w := 0; w < CacheWords; w++ {
			repair.RegisterWrite(fmt.Sprintf("reg_Vals__%d", w), int(idx), cacheValueOf(key, w, 0))
		}
		repair.RegisterWrite("reg_Valid", int(idx), 1)
	}

	if cfg.Trace {
		f.n.EnableTrace()
	}
	if cfg.Partitions > 0 {
		if err := f.n.SetPartitions(cfg.Partitions); err != nil {
			return nil, err
		}
	}
	res.Partitions = f.n.Partitions()

	for r, cl := range f.clients {
		c := &f.cs[cl.Index()]
		cl.At(netsim.Time(ts+0.5*float64(r)), func() { c.epoch = 1 })
	}
	for r := 0; r < cacheChurnRacks; r++ {
		dev := f.n.Device(f.leafIDs[r])
		dev.At(netsim.Time(tb), func() { dev.SW.Write(repair) })
	}
	res.Events = []ChurnEvent{
		{Name: "ShiftZipf(s=1.2,hotset+16)", AtNs: ts},
		{Name: "ApplyBatch(leaves,repopulate)", AtNs: tb},
	}

	for r, cl := range f.clients {
		cl.StartTimer(netsim.Time(startAt(r)))
	}
	if err := f.n.RunAll(); err != nil {
		return nil, err
	}
	f.finishCacheRun(res, ts, tb, cfg.Trace)
	return res, nil
}

// RunChurnRolling rewrites every rack cache's values to the next
// generation one switch at a time, 40µs apart, under live load — a
// rolling data-plane reconfig. The SLO shows zero downtime (each write
// is one transactional generation publish) and the torn-value detector
// in the clients proves no response ever mixes generations.
func RunChurnRolling(cfg ChurnConfig) (*ChurnResult, error) {
	cfg.defaults()
	perClient := 160
	if cfg.Smoke {
		perClient = 60
	}
	f, err := buildCacheChurnFabric(cfg.Target)
	if err != nil {
		return nil, err
	}
	res := &ChurnResult{Name: "rolling-reconfig"}
	startAt, _ := f.startCacheClients(perClient, 1)

	t0 := 300 + 0.35*float64(perClient)*5000
	const gap = 40000.25

	upgrade := bmv2.NewWriteBatch()
	for i := 0; i < cacheChurnCached; i++ {
		key := uint64(i + 1)
		for w := 0; w < CacheWords; w++ {
			upgrade.RegisterWrite(fmt.Sprintf("reg_Vals__%d", w), i, cacheValueOf(key, w, 1))
		}
	}

	if cfg.Trace {
		f.n.EnableTrace()
	}
	if cfg.Partitions > 0 {
		if err := f.n.SetPartitions(cfg.Partitions); err != nil {
			return nil, err
		}
	}
	res.Partitions = f.n.Partitions()

	res.Events = make([]ChurnEvent, 0, cacheChurnRacks)
	for r := 0; r < cacheChurnRacks; r++ {
		dev := f.n.Device(f.leafIDs[r])
		at := t0 + float64(r)*gap
		dev.At(netsim.Time(at), func() { dev.SW.Write(upgrade) })
		res.Events = append(res.Events, ChurnEvent{
			Name: fmt.Sprintf("ApplyBatch(%d,gen=1)", f.leafIDs[r]), AtNs: at,
		})
	}
	eventEnd := t0 + float64(cacheChurnRacks-1)*gap + 1000

	for r, cl := range f.clients {
		cl.StartTimer(netsim.Time(startAt(r)))
	}
	if err := f.n.RunAll(); err != nil {
		return nil, err
	}
	f.finishCacheRun(res, t0, eventEnd, cfg.Trace)
	return res, nil
}
