package apps

import (
	"fmt"
	"sync"
	"time"

	"netcl/internal/p4rt"
	"netcl/internal/passes"
	"netcl/internal/runtime"
)

// UDP drivers: the AGG and PAXOS experiments over the real-UDP backend
// (§VI-C) instead of the discrete-event simulator. The protocols are
// the same — the SwitchML slot scheme and the P4xos pipeline tolerate
// retransmission by construction — but timeouts are wall clock and the
// workers run as concurrent goroutines over real sockets, so these
// drivers double as an end-to-end check that loss recovery works
// outside simulated time.
//
// Both drivers ride the pipelined runtime.Channel: each worker posts
// its outstanding messages into a sliding window under an application
// token (the chunk or command value) and resolves them with Complete
// when it observes the protocol-level effect, so the Window knobs map
// directly onto the channel's window while retransmission timing,
// backoff and the retry budget live in one place.

// AggUDPConfig parameterizes the aggregation run over UDP.
type AggUDPConfig struct {
	Workers  int
	Chunks   int // chunks (slots' worth of data) per worker
	Window   int // outstanding slots per worker
	Target   passes.Target
	Baseline bool // run the handwritten P4 instead of generated code
	// Faults injects seeded probabilistic loss/duplication at the
	// device (zero value = faultless).
	Faults runtime.FaultSpec
	// RetransmitTimeout is the per-worker receive timeout that triggers
	// retransmission of outstanding chunks (default 15ms).
	RetransmitTimeout time.Duration
	// RetryBudget bounds retransmissions per chunk (default 64).
	RetryBudget int
}

// RunAggUDP drives the SwitchML-style aggregation over real UDP
// sockets: one UDPDevice runs the switch program; each worker is a
// goroutine with its own HostConn running the slot protocol, resending
// outstanding chunks on timeout (the two-version scheme makes resends
// safe, §V-E).
func RunAggUDP(cfg AggUDPConfig) (*AggResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Chunks <= 0 {
		cfg.Chunks = 32
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = 15 * time.Millisecond
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 64
	}
	app := ByName("AGG")
	defines := map[string]uint64{}
	for k, v := range app.Defines {
		defines[k] = v
	}
	defines["NUM_WORKERS"] = uint64(cfg.Workers)
	app = &App{Name: app.Name, NetCL: app.NetCL, Defines: defines,
		Devices: app.Devices, BaselineFile: app.BaselineFile}

	prog, specs, err := loadProgram(app, cfg.Target, 1, cfg.Baseline)
	if err != nil {
		return nil, err
	}
	spec := specs[1]
	numSlots := int(defines["NUM_SLOTS"])
	slotSize := int(defines["SLOT_SIZE"])

	dev, err := runtime.ServeDevice(runtime.DeviceConfig{
		ID: 1, Addr: "127.0.0.1:0", Prog: prog, Faults: cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Baseline {
		cfgBatch := p4rt.NewWriteBatch().
			SetDefault("cfg_workers", "set_target", []uint64{uint64(cfg.Workers - 1)})
		if _, err := dev.Write(cfgBatch); err != nil {
			dev.Close()
			return nil, err
		}
	}
	conns := make([]*runtime.HostConn, cfg.Workers)
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		dev.Close()
	}
	var members []uint16
	for w := 0; w < cfg.Workers; w++ {
		id := uint16(10 + w)
		conns[w], err = runtime.Dial(runtime.DialConfig{
			ID: id, Local: "127.0.0.1:0", Device: dev.Addr(),
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		if err := dev.SetNodeAddr(id, conns[w].Addr()); err != nil {
			closeAll()
			return nil, err
		}
		members = append(members, id)
	}
	dev.SetMulticastGroup(42, members)

	res := &AggResult{}
	var chunkHist Hist
	var mu sync.Mutex
	start := time.Now()
	errCh := make(chan error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- aggUDPWorker(cfg, conns[w], spec, w, numSlots, slotSize, res, &chunkHist, &mu)
		}()
	}
	wg.Wait()
	close(errCh)
	res.DurationNs = float64(time.Since(start).Nanoseconds())
	closeAll()
	if res.DurationNs > 0 {
		totalPerWorker := float64(res.Completed/cfg.Workers) * float64(slotSize)
		res.ATEPerWorker = totalPerWorker / (res.DurationNs / 1e9)
	}
	if res.Completed > 0 {
		res.MeanChunkNs /= float64(res.Completed)
		res.P50ChunkNs = float64(chunkHist.Quantile(0.50))
		res.P99ChunkNs = float64(chunkHist.Quantile(0.99))
	}
	// Close() joins the device loop, so the fault counters are settled.
	res.PacketsLost = dev.FaultDropped
	for e := range errCh {
		if e != nil {
			return res, e
		}
	}
	return res, nil
}

// aggUDPWorker runs one worker's slot protocol until its chunks all
// complete. Outstanding chunks are posted into a pipelined Channel
// whose window is the slot window: the channel retransmits stalled
// chunks on its shared timer (fixed cadence, preserving the old resend
// rhythm) and enforces the retry budget, while the worker keeps the
// protocol semantics — it resolves a chunk with Complete only when the
// matching slot completion arrives.
func aggUDPWorker(cfg AggUDPConfig, conn *runtime.HostConn, spec *runtime.MessageSpec,
	w, numSlots, slotSize int, res *AggResult, hist *Hist, mu *sync.Mutex) error {
	ch := conn.NewChannel(runtime.ChannelConfig{
		Window: cfg.Window,
		Name:   fmt.Sprintf("agg.w%d", w),
		Reliability: runtime.ReliabilityConfig{
			Timeout:    cfg.RetransmitTimeout,
			MaxRetries: cfg.RetryBudget,
			Backoff:    1, // the slot protocol resends at a fixed cadence
		},
	})
	defer func() {
		st := ch.Stats()
		mu.Lock()
		res.Retransmissions += int(st.Retransmits)
		mu.Unlock()
		ch.Close()
	}()
	outstanding := map[int]bool{}
	sentAt := map[int]time.Time{}
	contrib := make([]uint64, slotSize)

	send := func(chunk int) error {
		slot := chunk % cfg.Window
		ver := uint64(chunk/cfg.Window) % 2
		for i := range contrib {
			contrib[i] = uint64(chunk + i + w)
		}
		aggIdx := uint64(slot) + ver*uint64(numSlots)
		buf := runtime.GetBuf()
		defer runtime.PutBuf(buf)
		msg, err := runtime.PackAppend(*buf, spec,
			runtime.Message{Src: uint16(10 + w), Dst: 100, Device: 1, Comp: 1}.Header(),
			[][]uint64{{ver}, {uint64(slot)}, {aggIdx}, {1 << uint(w)}, {uint64(chunk)}, contrib})
		if err != nil {
			return err
		}
		*buf = msg
		outstanding[chunk] = true
		sentAt[chunk] = time.Now()
		return ch.Post(uint64(chunk), msg)
	}

	for c := 0; c < cfg.Window && c < cfg.Chunks; c++ {
		if err := send(c); err != nil {
			return err
		}
	}
	done := 0
	ver := make([]uint64, 1)
	slot := make([]uint64, 1)
	vals := make([]uint64, slotSize)
	for done < cfg.Chunks {
		msg, err := ch.Recv(cfg.RetransmitTimeout)
		if err != nil {
			if runtime.IsTimeout(err) {
				continue // the channel retransmits; keep waiting
			}
			return fmt.Errorf("agg-udp: worker %d: %w; %d/%d slots completed",
				w, err, done, cfg.Chunks)
		}
		if _, err := runtime.UnpackInto(spec, msg, [][]uint64{ver, slot, nil, nil, nil, vals}); err != nil {
			continue
		}
		chunk := -1
		for c := range outstanding {
			if uint64(c%cfg.Window) == slot[0] && uint64(c/cfg.Window)%2 == ver[0] {
				chunk = c
				break
			}
		}
		if chunk < 0 {
			mu.Lock()
			res.Duplicates++ // duplicate completion (multicast + reflect)
			mu.Unlock()
			continue
		}
		delete(outstanding, chunk)
		ch.Complete(uint64(chunk))
		mismatch := false
		for i := 0; i < slotSize; i++ {
			want := uint64(cfg.Workers*(chunk+i)) + uint64(cfg.Workers*(cfg.Workers-1)/2)
			if vals[i] != want {
				mismatch = true
				break
			}
		}
		mu.Lock()
		lat := time.Since(sentAt[chunk]).Nanoseconds()
		res.MeanChunkNs += float64(lat)
		hist.Record(uint64(lat))
		if mismatch {
			res.Mismatches++
		}
		res.Completed++
		mu.Unlock()
		done++
		if next := chunk + cfg.Window; next < cfg.Chunks {
			if err := send(next); err != nil {
				return err
			}
		}
	}
	return nil
}

// PaxosUDPConfig parameterizes the consensus run over UDP.
type PaxosUDPConfig struct {
	Commands int
	// Window is how many commands the client keeps in flight at once
	// (default 1: serial submission, the pre-pipelining behavior).
	Window int
	Target passes.Target
	// Faults injects seeded probabilistic loss/duplication at every
	// device; each device derives its own RNG stream from Seed.
	Faults runtime.FaultSpec
	// RetransmitTimeout is the client's wait before resending an
	// undelivered command (default 20ms).
	RetransmitTimeout time.Duration
	// RetryBudget bounds retransmissions per command (default 32).
	RetryBudget int
}

// RunPaxosUDP runs the five-device P4xos deployment as five UDPDevice
// processes chained over loopback sockets: client → leader →
// acceptors (multicast) → learner → application host. The client
// resends commands the learner has not delivered; a resent command is
// chosen under a fresh instance, so delivery is deduplicated by
// command value.
func RunPaxosUDP(cfg PaxosUDPConfig) (*PaxosResult, error) {
	if cfg.Commands <= 0 {
		cfg.Commands = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = 20 * time.Millisecond
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 32
	}
	lossy := cfg.Faults.LossRate > 0 || cfg.Faults.DupRate > 0
	app := ByName("PAXOS")

	var spec *runtime.MessageSpec
	ids := []uint16{PaxosLeader, PaxosAcceptor1, PaxosAcceptor2, PaxosAcceptor3, PaxosLearner}
	devs := map[uint16]*runtime.UDPDevice{}
	closeDevs := func() {
		for _, d := range devs {
			d.Close()
		}
	}
	for _, id := range ids {
		prog, sp, err := CompileApp(app, cfg.Target, id)
		if err != nil {
			closeDevs()
			return nil, fmt.Errorf("device %d: %w", id, err)
		}
		spec = sp[1]
		faults := cfg.Faults
		if faults.LossRate > 0 || faults.DupRate > 0 {
			// Decorrelate the per-device RNG streams.
			faults.Seed = faults.Seed + int64(id)
		}
		devs[id], err = runtime.ServeDevice(runtime.DeviceConfig{
			ID: id, Addr: "127.0.0.1:0", Prog: prog, Faults: faults,
		})
		if err != nil {
			closeDevs()
			return nil, err
		}
	}

	client, err := runtime.Dial(runtime.DialConfig{
		ID: 100, Local: "127.0.0.1:0", Device: devs[PaxosLeader].Addr(),
	})
	if err != nil {
		closeDevs()
		return nil, err
	}
	appHost, err := runtime.Dial(runtime.DialConfig{
		ID: 101, Local: "127.0.0.1:0", Device: devs[PaxosLearner].Addr(),
	})
	if err != nil {
		client.Close()
		closeDevs()
		return nil, err
	}

	// Operator wiring: leader multicasts to the acceptors, acceptors to
	// the learner, the learner delivers to the application host.
	wire := func() error {
		for _, acc := range []uint16{PaxosAcceptor1, PaxosAcceptor2, PaxosAcceptor3} {
			if err := devs[PaxosLeader].SetNodeAddr(acc, devs[acc].Addr()); err != nil {
				return err
			}
			if err := devs[acc].SetNodeAddr(PaxosLearner, devs[PaxosLearner].Addr()); err != nil {
				return err
			}
			devs[acc].SetMulticastGroup(30, []uint16{PaxosLearner})
		}
		devs[PaxosLeader].SetMulticastGroup(20, []uint16{PaxosAcceptor1, PaxosAcceptor2, PaxosAcceptor3})
		return devs[PaxosLearner].SetNodeAddr(101, appHost.Addr())
	}
	if err := wire(); err != nil {
		appHost.Close()
		client.Close()
		closeDevs()
		return nil, err
	}

	res := &PaxosResult{}
	var mu sync.Mutex
	delivered := map[uint64]bool{}    // by instance
	deliveredVal := map[uint64]bool{} // by command value (app-level dedup)

	// The client submits through a pipelined channel: up to Window
	// commands ride as posted entries that the channel retransmits on
	// its timer (fixed cadence), and the listener below resolves them by
	// command value when the learner delivers — a cross-socket
	// completion, which is exactly what Post/Complete exists for.
	ch := client.NewChannel(runtime.ChannelConfig{
		Window: cfg.Window,
		Name:   "paxos.client",
		Reliability: runtime.ReliabilityConfig{
			Timeout:    cfg.RetransmitTimeout,
			MaxRetries: cfg.RetryBudget,
			Backoff:    1,
		},
	})
	defer ch.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			msg, err := appHost.Recv(2 * time.Millisecond)
			if err != nil {
				if runtime.IsTimeout(err) {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				return // socket closed
			}
			typ := make([]uint64, 1)
			inst := make([]uint64, 1)
			v := make([]uint64, 8)
			if _, err := runtime.Unpack(spec, msg, [][]uint64{typ, inst, nil, nil, nil, v}); err != nil {
				continue
			}
			if typ[0] != 4 { // DELIVER
				continue
			}
			mu.Lock()
			fresh := false
			switch {
			case delivered[inst[0]]:
				res.Duplicates++ // at-most-once per instance
			case deliveredVal[v[0]]:
				delivered[inst[0]] = true
				res.Duplicates++ // retried command, fresh instance
			default:
				delivered[inst[0]] = true
				deliveredVal[v[0]] = true
				res.Delivered++
				fresh = true
				// Serial submission chooses instances in command order;
				// pipelined submission does not guarantee arrival order at
				// the leader, so the check only applies at Window 1.
				if !lossy && cfg.Window <= 1 && v[0] != 1000+inst[0]-1 {
					res.WrongValue++
				}
			}
			mu.Unlock()
			if fresh {
				ch.Complete(v[0])
			}
		}
	}()

	var firstErr error
	vals := make([]uint64, 8)
	for c := 0; c < cfg.Commands; c++ {
		val := uint64(1000 + c)
		res.Submitted++
		for i := range vals {
			vals[i] = 0
		}
		vals[0] = val
		buf := runtime.GetBuf()
		msg, err := runtime.PackAppend(*buf, spec,
			runtime.Message{Src: 100, Dst: 101, Device: PaxosLeader, Comp: 1}.Header(),
			[][]uint64{{1}, {0}, {0}, {0}, {0}, vals})
		if err == nil {
			*buf = msg
			// Post blocks (retransmitting as it waits) until a window
			// slot frees up; a command that exhausts its budget frees its
			// slot and is counted below as undelivered.
			err = ch.Post(val, msg)
		}
		runtime.PutBuf(buf)
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		// Wait out the window: every posted command either completes via
		// the listener or exhausts its retry budget. Budget exhaustion is
		// accounted as Undelivered below, not surfaced as the run error.
		ch.Drain(0)
	}
	st := ch.Stats()
	mu.Lock()
	res.Retries += int(st.Retransmits)
	mu.Unlock()
	close(stop)
	appHost.Close()
	wg.Wait()
	client.Close()
	mu.Lock()
	for c := 0; c < cfg.Commands; c++ {
		if !deliveredVal[uint64(1000+c)] {
			res.Undelivered++
		}
	}
	mu.Unlock()
	// Close() joins each device loop, so the fault counters are settled.
	for _, d := range devs {
		d.Close()
	}
	for _, d := range devs {
		res.PacketsLost += d.FaultDropped
	}
	if firstErr != nil {
		return res, firstErr
	}
	if res.Undelivered > 0 {
		return res, fmt.Errorf("paxos-udp: %d/%d commands undelivered after retry budget (%d)",
			res.Undelivered, cfg.Commands, cfg.RetryBudget)
	}
	return res, nil
}
