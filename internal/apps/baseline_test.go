package apps

import (
	"testing"

	"netcl/internal/p4"
	"netcl/internal/p4c"
	"netcl/internal/passes"
)

// baselineFiles lists every handwritten program.
var baselineFiles = []string{"agg.p4", "cache.p4", "pacc.p4", "plrn.p4", "pldr.p4", "calc.p4"}

// TestBaselinesParseAndFit parses every handwritten baseline with the
// P4-16 parser, validates it, and fits it on the Tofino model (Table V
// requires all handwritten programs to fit 12 stages too).
func TestBaselinesParseAndFit(t *testing.T) {
	for _, f := range baselineFiles {
		src, err := baselineFS.ReadFile("baseline/" + f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		prog, err := p4.Parse(f, string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		rep := p4c.Fit(prog, p4c.Tofino1())
		if !rep.Fits {
			t.Errorf("%s does not fit Tofino: %s", f, rep.Reason)
		}
		if rep.LatencyNs >= 1000 {
			t.Errorf("%s: latency %.0fns", f, rep.LatencyNs)
		}
	}
}

// TestAggEquivalence runs the identical workload against the generated
// and the handwritten AGG programs: same completions, same aggregates,
// same per-worker throughput shape (paper Fig. 14 left: "no difference
// between NetCL and handwritten P4").
func TestAggEquivalence(t *testing.T) {
	gen, err := RunAgg(AggConfig{Workers: 4, Chunks: 12, Window: 2, Target: passes.TargetTNA})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunAgg(AggConfig{Workers: 4, Chunks: 12, Window: 2, Target: passes.TargetTNA, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Mismatches != 0 || base.Mismatches != 0 {
		t.Fatalf("mismatches: gen=%d base=%d", gen.Mismatches, base.Mismatches)
	}
	if gen.Completed != base.Completed {
		t.Errorf("completions differ: gen=%d base=%d", gen.Completed, base.Completed)
	}
	// Same host/network model: throughput should be within 2%.
	ratio := gen.ATEPerWorker / base.ATEPerWorker
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("throughput ratio %0.3f; NetCL and handwritten should match", ratio)
	}
}

// TestCacheEquivalence mirrors Fig. 14 right for generated vs
// handwritten NetCache.
func TestCacheEquivalence(t *testing.T) {
	for _, cached := range []int{0, 8, 16} {
		gen, err := RunCache(CacheConfig{CachedKeys: cached, TotalKeys: 16, Requests: 48, Target: passes.TargetTNA})
		if err != nil {
			t.Fatal(err)
		}
		base, err := RunCache(CacheConfig{CachedKeys: cached, TotalKeys: 16, Requests: 48, Target: passes.TargetTNA, Baseline: true})
		if err != nil {
			t.Fatal(err)
		}
		if gen.WrongValues != 0 || base.WrongValues != 0 {
			t.Fatalf("cached=%d wrong values: gen=%d base=%d", cached, gen.WrongValues, base.WrongValues)
		}
		if gen.HitRate != base.HitRate {
			t.Errorf("cached=%d hit rates differ: gen=%.2f base=%.2f", cached, gen.HitRate, base.HitRate)
		}
		ratio := gen.MeanResponseNs / base.MeanResponseNs
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("cached=%d response-time ratio %.3f", cached, ratio)
		}
	}
}
