package apps

// netsimbench.go is the million-host scale scenario for the network
// simulator: a chain of AGG devices, each aggregating rounds from
// thousands of locally attached sender pairs (NUM_WORKERS=2 SwitchML
// protocol, SLOT_SIZE=4) and multicasting completed slots to two
// collector hosts per device. A fraction of pairs aggregate at the
// next device in the chain instead, so partitioned runs carry real
// cross-partition traffic through the conservative-lookahead windows.
//
// The send schedule is open loop and closure-free: every sender is
// driven by the network-wide timer callback (Host.StartTimer), packs
// into a per-device scratch buffer with runtime.PackAppend, and
// staggers its start and interval so no two packets tie on a shared
// queue — which keeps the steady state at zero allocations per event
// and makes the event order independent of the partition count.

import (
	"fmt"
	gort "runtime"
	"time"

	"netcl/internal/netsim"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
)

// NetsimConfig parameterizes one scale run.
type NetsimConfig struct {
	// Hosts is the target total host count (senders + collectors);
	// rounded down so every device carries the same even sender count.
	Hosts int
	// Devices is the chain length (default 16; at most 16, the wiring
	// table budget).
	Devices int
	// Partitions arms partitioned execution with SetPartitions (0 =
	// legacy serial regime).
	Partitions int
	// Rounds is the aggregation rounds per sender pair (default 2).
	Rounds int
	// RemoteEvery makes every Nth pair of a device aggregate at the
	// next device in the chain (default 64, 0 disables): the
	// cross-partition traffic source.
	RemoteEvery int
	// Faults injects seeded loss/jitter/duplication on every link.
	Faults netsim.FaultConfig
	// Trace enables per-host delivery hash chains (the determinism
	// witness; costs time at large scales).
	Trace bool
	// Target selects the compile target (default TNA).
	Target passes.Target
}

// NetsimResult reports one scale run.
type NetsimResult struct {
	Hosts       int     `json:"hosts"`
	Devices     int     `json:"devices"`
	Partitions  int     `json:"partitions"`
	Pairs       int     `json:"pairs"`
	RemotePairs int     `json:"remote_pairs"`
	Rounds      int     `json:"rounds"`
	LookaheadNs float64 `json:"lookahead_ns,omitempty"`
	// Events/WallNs/EventsPerSec measure the run (timer arming
	// included); BytesPerHost is the heap cost of the built topology
	// and AllocsPerEvent the steady-state allocation rate.
	Events         uint64  `json:"events"`
	WallNs         float64 `json:"wall_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerHost   float64 `json:"bytes_per_host"`
	PeakQueue      int     `json:"peak_queue"`
	// BufferPeak is the packet-buffer working set (high-water mark of
	// checked-out pooled buffers, summed over partitions).
	BufferPeak int     `json:"buffer_peak"`
	SimEndNs   float64 `json:"sim_end_ns"`
	// Completed counts collector deliveries of completed slots
	// (Expected = 2 collectors × pairs × rounds when faultless).
	Completed  uint64 `json:"completed"`
	Expected   uint64 `json:"expected"`
	Mismatches uint64 `json:"mismatches"`
	TraceHash  uint64 `json:"trace_hash,omitempty"`
}

// senderMeta is one sender's precomputed role (8 bytes; indexed by
// host slab index). half 0xFF marks a collector.
type senderMeta struct {
	slot    uint16 // agg slot at the target device
	target  uint16 // target device id (header to/device field)
	dst     uint16 // a collector id at the target device (header dst)
	half    uint8  // worker index within the pair (0 or 1)
	homeDev uint8  // chain position of the attached device
}

// sendScratch is a device's reusable packing state. Timer callbacks of
// all hosts on one device run in that device's partition, so each
// scratch has a single concurrent user.
type sendScratch struct {
	buf                             []byte
	argv                            [][]uint64
	ver, slot, agg, mask, exp, vals []uint64
}

// collState is one collector's verification state, folded after the
// run (each collector is written only by its own partition).
type collState struct {
	completed  uint64
	mismatches uint64
	exp        []uint64
	vals       []uint64
	argv       [][]uint64
}

// readMem returns settled heap stats (forces a GC so HeapAlloc
// reflects live bytes, not float).
func readMem() (heapAlloc, mallocs uint64) {
	gort.GC()
	var ms gort.MemStats
	gort.ReadMemStats(&ms)
	return ms.HeapAlloc, ms.Mallocs
}

// RunNetsimScale builds and runs one scale scenario.
func RunNetsimScale(cfg NetsimConfig) (*NetsimResult, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 10_000
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 16
	}
	if cfg.Devices > 256 {
		// homeDev (the per-device scratch selector) is a uint8.
		return nil, fmt.Errorf("netsimbench: %d devices exceed the chain budget (256)", cfg.Devices)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2
	}
	devices := cfg.Devices
	hostsPerDev := cfg.Hosts / devices
	pairs := (hostsPerDev - 2) / 2 // two hosts per device are collectors
	if pairs < 1 {
		return nil, fmt.Errorf("netsimbench: %d hosts spread over %d devices leaves no sender pairs", cfg.Hosts, devices)
	}
	remoteIncoming := 0
	if cfg.RemoteEvery > 0 {
		remoteIncoming = (pairs + cfg.RemoteEvery - 1) / cfg.RemoteEvery
	}
	numSlots := pairs + remoteIncoming
	if numSlots*2 > 65536 {
		return nil, fmt.Errorf("netsimbench: %d slots per device overflow the 16-bit agg index (max %d)", numSlots, 65536/2)
	}

	const slotSize = 4
	app := ByName("AGG")
	defines := map[string]uint64{
		"NUM_SLOTS": uint64(numSlots), "SLOT_SIZE": slotSize, "NUM_WORKERS": 2,
	}
	app = &App{Name: app.Name, NetCL: app.NetCL, Defines: defines,
		Devices: app.Devices, BaselineFile: app.BaselineFile}
	progs := make([]*p4.Program, devices)
	var spec *runtime.MessageSpec
	for dv := 0; dv < devices; dv++ {
		prog, specs, err := CompileApp(app, cfg.Target, uint16(dv+1))
		if err != nil {
			return nil, fmt.Errorf("netsimbench: device %d: %w", dv+1, err)
		}
		progs[dv] = prog
		spec = specs[1]
	}

	res := &NetsimResult{
		Hosts: devices * (2 + 2*pairs), Devices: devices,
		Partitions: cfg.Partitions, Pairs: devices * pairs, Rounds: cfg.Rounds,
	}

	// Chain interconnect at 2µs latency (the conservative-lookahead
	// window) from the topology builder; shortest-path transit routes
	// from the route installer. In transit the fwd key is the target
	// DEVICE id (computed packets multicast or reflect, never pass), so
	// the installed device-destination routes — one entry per other
	// device, not per host — are the complete table.
	n := netsim.NewNetwork()
	ids := make([]uint16, devices)
	for dv := range ids {
		ids[dv] = uint16(dv + 1)
	}
	topo, err := netsim.BuildChain(n, netsim.ChainSpec{
		IDs:  ids,
		Prog: func(i int, id uint16) *p4.Program { return progs[i] },
		Link: netsim.LinkClass{LatencyNs: 2 * netsim.Microsecond},
	})
	if err != nil {
		return nil, err
	}
	devs := topo.Tiers[0]
	if err := topo.InstallRoutes(netsim.RouteOptions{}); err != nil {
		return nil, err
	}

	// Hosts: collectors on ports 3 and 4 (multicast group 42, the group
	// id the AGG kernel emits), senders from port 5. Scenario-side state
	// (meta, round counters) is preallocated before the heap snapshot so
	// BytesPerHost measures the simulator's per-host cost — host and
	// link slabs, SoA columns, id map — not the driver's bookkeeping or
	// the devices' register files.
	meta := make([]senderMeta, 0, res.Hosts)
	next := make([]uint16, res.Hosts)
	colls := make([]*collState, 0, 2*devices)
	heapBefore, _ := readMem()
	collID := func(dv, c int) uint16 { return uint16(0xF000 + dv*2 + c) }
	remotePairs := 0
	for dv := 0; dv < devices; dv++ {
		for c := 0; c < 2; c++ {
			col := n.AddHost(collID(dv, c))
			// Collector links are latency-only: at 100G every completed
			// slot of a device serializes onto two shared links, and the
			// modeled congestion backlog — not the engine — would dominate
			// both the buffer working set and the simulated end time.
			n.Connect(col, devs[dv], 3+c).BandwidthGbps = 0
			cs := &collState{exp: make([]uint64, 1), vals: make([]uint64, slotSize)}
			cs.argv = [][]uint64{nil, nil, nil, nil, cs.exp, cs.vals}
			colls = append(colls, cs)
			col.SetReceive(func(h *netsim.Host, msg []byte) {
				if _, err := runtime.UnpackInto(spec, msg, cs.argv); err != nil {
					cs.mismatches++
					return
				}
				cs.completed++
				r := cs.exp[0]
				for j := 0; j < slotSize; j++ {
					if cs.vals[j] != 2*r+2*uint64(j)+1 {
						cs.mismatches++
						break
					}
				}
			})
			meta = append(meta, senderMeta{half: 0xFF})
		}
		devs[dv].SetMulticastGroup(42, []int{3, 4})
		for p := 0; p < pairs; p++ {
			target, slot := dv, p
			if cfg.RemoteEvery > 0 && p%cfg.RemoteEvery == 0 {
				target = (dv + 1) % devices
				slot = pairs + p/cfg.RemoteEvery
				remotePairs++
			}
			for half := 0; half < 2; half++ {
				h := n.AddHost(uint16(len(meta)))
				n.Connect(h, devs[dv], 5+2*p+half)
				meta = append(meta, senderMeta{
					slot: uint16(slot), target: uint16(target + 1),
					dst: collID(target, 0), half: uint8(half), homeDev: uint8(dv),
				})
			}
		}
	}
	res.RemotePairs = remotePairs

	// Per-device packing scratch (exclusive to the device's partition).
	scratch := make([]sendScratch, devices)
	for dv := range scratch {
		sc := &scratch[dv]
		sc.buf = make([]byte, 0, spec.Size())
		sc.ver, sc.slot, sc.agg = make([]uint64, 1), make([]uint64, 1), make([]uint64, 1)
		sc.mask, sc.exp = make([]uint64, 1), make([]uint64, 1)
		sc.vals = make([]uint64, slotSize)
		sc.argv = [][]uint64{sc.ver, sc.slot, sc.agg, sc.mask, sc.exp, sc.vals}
	}
	interval := func(i int) netsim.Time {
		return 5*netsim.Microsecond + netsim.Time(float64(i%1009)*0.125)
	}
	n.OnTimer(func(h *netsim.Host) {
		i := h.Index()
		m := &meta[i]
		if m.half == 0xFF {
			return
		}
		r := next[i]
		if int(r) >= cfg.Rounds {
			return
		}
		next[i]++
		sc := &scratch[m.homeDev]
		ver := uint64(r) & 1
		sc.ver[0] = ver
		sc.slot[0] = uint64(m.slot)
		sc.agg[0] = uint64(m.slot) + ver*uint64(numSlots)
		sc.mask[0] = 1 << m.half
		sc.exp[0] = uint64(r)
		for j := range sc.vals {
			sc.vals[j] = uint64(r) + uint64(j) + uint64(m.half)
		}
		hdr := runtime.Message{Src: h.ID, Dst: m.dst, Device: m.target, Comp: 1}.Header()
		msg, err := runtime.PackAppend(sc.buf[:0], spec, hdr, sc.argv)
		if err != nil {
			return
		}
		sc.buf = msg[:0]
		h.Send(msg)
		if int(next[i]) < cfg.Rounds {
			h.StartTimer(interval(i))
		}
	})

	if cfg.Trace {
		n.EnableTrace()
	}
	n.InjectFaults(cfg.Faults)
	if cfg.Partitions > 0 {
		if err := n.SetPartitions(cfg.Partitions); err != nil {
			return nil, err
		}
		res.Partitions = n.Partitions()
		res.LookaheadNs = float64(n.Lookahead())
	}
	heapBuilt, _ := readMem()
	res.BytesPerHost = float64(heapBuilt-heapBefore) / float64(res.Hosts)

	// Prewarm the packet-buffer pools to the expected in-flight working
	// set so the run itself allocates no buffers. The set is bounded by
	// the send rate times the flight time, not by the host count: the
	// timer stagger paces one send per 0.125 ns no matter the scale, so
	// beyond ~10^5 senders the cap is what matters. Prewarm happens
	// after the BytesPerHost snapshot (it is working set, not topology)
	// and before the allocation baseline (it is build-time, not
	// steady-state); BufferPeak reports the actual high-water mark.
	senders := res.Hosts - 2*devices
	warm := senders + devices*pairs + 1024
	if warm > 98304 {
		warm = 98304
	}
	n.PrewarmBuffers(warm, runtime.FrameOverhead+spec.Size()+16)
	_, mallocsBuilt := readMem()

	start := time.Now()
	for i := range meta {
		if meta[i].half == 0xFF {
			continue
		}
		n.HostAt(i).StartTimer(100*netsim.Nanosecond + netsim.Time(float64(i)*0.125))
	}
	if err := n.RunAll(); err != nil {
		return nil, err
	}
	res.WallNs = float64(time.Since(start))
	var ms gort.MemStats
	gort.ReadMemStats(&ms)

	res.Events = n.TotalProcessed()
	res.PeakQueue = n.TotalPeakQueue()
	res.BufferPeak = n.BufferPeak()
	res.SimEndNs = float64(n.Now())
	if res.WallNs > 0 {
		res.EventsPerSec = float64(res.Events) / (res.WallNs / 1e9)
	}
	if res.Events > 0 {
		res.AllocsPerEvent = float64(ms.Mallocs-mallocsBuilt) / float64(res.Events)
	}
	for _, cs := range colls {
		res.Completed += cs.completed
		res.Mismatches += cs.mismatches
	}
	res.Expected = 2 * uint64(res.Pairs) * uint64(cfg.Rounds)
	if cfg.Trace {
		res.TraceHash = n.TraceHash()
	}
	return res, nil
}

// seed-layout model for the bytes-per-host comparison: the pre-slab
// simulator kept one map entry, one Host struct and one Link struct
// (with interface{}-boxed ends) per host. The map key was uint16, so
// the seed could not even address more than 65536 hosts — size the
// baseline at min(hosts, 65536).

type seedEnd struct {
	node interface{}
	port int
}

type seedLink struct {
	LatencyNs, BandwidthGbps float64
	DropNth                  int
	Dropped, crossed         uint64
	busyUntil                [2]float64
	ends                     [2]seedEnd
}

type seedHost struct {
	ID           uint16
	net          *seedLink // stand-ins with the seed's pointer sizes
	lnk          *seedLink
	Receive      func(*seedHost, []byte)
	ProcessingNs float64
	Sent, Recvd  uint64
}

// BaselineBytesPerHost measures the seed's per-host heap footprint
// (host struct + uplink + map entry) at min(hosts, 65536) hosts.
func BaselineBytesPerHost(hosts int) (bytesPerHost float64, measuredHosts int) {
	if hosts > 65536 {
		hosts = 65536
	}
	before, _ := readMem()
	m := make(map[uint16]*seedHost, hosts)
	for i := 0; i < hosts; i++ {
		l := &seedLink{LatencyNs: 1000, BandwidthGbps: 100}
		h := &seedHost{ID: uint16(i), lnk: l, ProcessingNs: 2000}
		l.ends[0] = seedEnd{node: h}
		m[uint16(i)] = h
	}
	after, _ := readMem()
	if len(m) == 0 {
		return 0, hosts
	}
	return float64(after-before) / float64(hosts), hosts
}
