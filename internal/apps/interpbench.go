package apps

// interpbench.go measures the bmv2 interpreter hot path: the same
// per-app packet stream driven through the reference tree-walking
// engine and the compiled slot-indexed engine, reporting packets per
// second and allocation cost per packet. `nclbench -interp` writes the
// result as BENCH_interp.json.

import (
	"fmt"
	"math/rand"
	gort "runtime"
	"time"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
)

// InterpWorkload is one app's interpreter benchmark input: a compiled
// program, control-plane setup, and a deterministic packet stream.
type InterpWorkload struct {
	App     string
	Device  uint16
	Prog    *p4.Program
	Spec    *runtime.MessageSpec
	Packets [][]byte
	// Entries, when non-nil, replaces the NetCL-app control-plane
	// setup: the named tables are populated verbatim (the synthetic
	// ACL workload, whose program has no netcl_fwd table).
	Entries map[string][]*p4.Entry
}

// interpRows lists the benchmarked Table III rows (one device each).
var interpRows = []struct {
	app    string
	device uint16
}{
	{"AGG", 1},
	{"CACHE", 1},
	{"PACC", PaxosAcceptor1},
	{"CALC", 1},
	// ACL is a synthetic route+firewall pipeline: the one row whose
	// tables are LPM/ternary/range, so the decision-diagram column is
	// exercised (the NetCL apps dispatch on exact tables only).
	{"ACL", 1},
}

// NewInterpWorkload compiles the app's generated program and builds a
// seeded stream of wire messages: valid headers with randomized kernel
// arguments (the opcode-like first scalar kept small so the dispatch
// branches are all exercised).
func NewInterpWorkload(appName string, device uint16, packets int) (*InterpWorkload, error) {
	if appName == "ACL" {
		return newACLWorkload(packets)
	}
	reg := appName
	if appName == "PACC" || appName == "PLRN" || appName == "PLDR" {
		reg = "PAXOS"
	}
	app := ByName(reg)
	if app == nil {
		return nil, fmt.Errorf("unknown app %q", appName)
	}
	prog, specs, err := CompileApp(app, passes.TargetTNA, device)
	if err != nil {
		return nil, err
	}
	spec := specs[1]
	w := &InterpWorkload{App: appName, Device: device, Prog: prog, Spec: spec}
	rng := rand.New(rand.NewSource(0x1234 + int64(device)))
	args := make([][]uint64, len(spec.Args))
	for i, a := range spec.Args {
		args[i] = make([]uint64, a.Count)
	}
	for p := 0; p < packets; p++ {
		for i, a := range spec.Args {
			mask := ^uint64(0)
			if a.Bytes < 8 {
				mask = uint64(1)<<(uint(a.Bytes)*8) - 1
			}
			for k := range args[i] {
				if i == 0 && a.Count == 1 {
					args[i][k] = uint64(rng.Intn(8))
				} else {
					args[i][k] = rng.Uint64() & mask
				}
			}
		}
		src := uint16(rng.Intn(4) + 1)
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: src, Dst: uint16(rng.Intn(4) + 1),
				Device: device, Comp: spec.Comp}.Header(), args)
		if err != nil {
			return nil, err
		}
		// Frame the message as the device would receive it: without the
		// Ethernet/IPv4/UDP encapsulation the generated parser rejects
		// every packet at the ethertype check and both engines measure an
		// identical no-op parse path (identical per-app columns in the
		// old BENCH_interp.json).
		w.Packets = append(w.Packets, runtime.Frame(msg, uint64(src), 0))
	}
	return w, nil
}

// aclProg is a synthetic route-and-firewall pipeline: an LPM route
// table picks the next hop by destination, then a ternary/range ACL
// permits or drops by source, destination port, and protocol. It is
// the workload whose match work dominates per-packet cost, so it
// isolates the decision-diagram matcher delta that the NetCL apps
// (exact-table dispatch) cannot show.
func aclProg() *p4.Program {
	pp := &p4.Program{Name: "acl", Target: p4.TargetTNA}
	pp.Headers = []*p4.HeaderDecl{{Name: "f", Fields: []*p4.Field{
		{Name: "dip", Bits: 32},
		{Name: "sip", Bits: 32},
		{Name: "sport", Bits: 16},
		{Name: "dport", Bits: 16},
		{Name: "proto", Bits: 8},
		{Name: "hop", Bits: 8},
	}}}
	pp.Metadata = []*p4.Field{
		{Name: "egress_port", Bits: 16}, {Name: "mcast_grp", Bits: 16}, {Name: "drop_flag", Bits: 1},
	}
	pp.Parser = &p4.Parser{Name: "P", States: []*p4.ParserState{
		{Name: "start", Extracts: []string{"f"}, Next: "accept"},
	}}
	ctl := &p4.Control{Name: "In"}
	ctl.Actions = []*p4.ActionDecl{
		{Name: "set_hop", Params: []*p4.Field{{Name: "h", Bits: 8}},
			Body: []p4.Stmt{
				&p4.Assign{LHS: p4.FR("hdr", "f", "hop"), RHS: p4.FR("h")},
				&p4.Assign{LHS: p4.FR("meta", "egress_port"), RHS: &p4.IntLit{Val: 9, Bits: 16}},
			}},
		{Name: "deny",
			Body: []p4.Stmt{&p4.Assign{LHS: p4.FR("meta", "drop_flag"), RHS: &p4.IntLit{Val: 1, Bits: 1}}}},
		{Name: "permit", Body: nil},
	}
	ctl.Tables = []*p4.Table{
		{Name: "route", Keys: []*p4.TableKey{{Expr: p4.FR("hdr", "f", "dip"), Match: p4.MatchLPM}},
			Actions: []string{"set_hop", "deny"}, Default: &p4.ActionCall{Name: "deny"}},
		{Name: "fw", Keys: []*p4.TableKey{
			{Expr: p4.FR("hdr", "f", "sip"), Match: p4.MatchTernary},
			{Expr: p4.FR("hdr", "f", "dport"), Match: p4.MatchRange},
			{Expr: p4.FR("hdr", "f", "proto"), Match: p4.MatchTernary},
		}, Actions: []string{"permit", "deny"}, Default: &p4.ActionCall{Name: "permit"}},
	}
	ctl.Apply = []p4.Stmt{
		&p4.ApplyTable{Table: "route"},
		&p4.ApplyTable{Table: "fw"},
	}
	pp.Ingress = ctl
	return pp
}

// newACLWorkload builds the synthetic ACL row: 128 route prefixes, 64
// firewall rules with mixed priorities, and a packet stream biased so
// most packets traverse deep into both tables.
func newACLWorkload(packets int) (*InterpWorkload, error) {
	rng := rand.New(rand.NewSource(0xac1))
	w := &InterpWorkload{App: "ACL", Device: 1, Prog: aclProg(),
		Entries: map[string][]*p4.Entry{}}
	var prefixes []uint64
	for i := 0; i < 128; i++ {
		plen := 8 + rng.Intn(25)
		dip := uint64(rng.Uint32()) &^ (1<<(32-uint(plen)) - 1)
		prefixes = append(prefixes, dip)
		w.Entries["route"] = append(w.Entries["route"], &p4.Entry{
			Keys:   []p4.KeyValue{{Value: dip, PrefixLen: plen}},
			Action: &p4.ActionCall{Name: "set_hop", Args: []uint64{uint64(1 + i%250)}},
		})
	}
	for i := 0; i < 64; i++ {
		splen := rng.Intn(25)
		smask := uint64(0)
		if splen > 0 {
			smask = (1<<uint(splen) - 1) << (32 - uint(splen))
		}
		lo := uint64(rng.Intn(1 << 15))
		act := "permit"
		if i%3 == 0 {
			act = "deny"
		}
		w.Entries["fw"] = append(w.Entries["fw"], &p4.Entry{
			Keys: []p4.KeyValue{
				{Value: uint64(rng.Uint32()) & smask, Mask: smask},
				{Value: lo, Hi: lo + uint64(rng.Intn(1<<10))},
				{Value: uint64(rng.Intn(4)), Mask: 0x3},
			},
			Action:   &p4.ActionCall{Name: act},
			Priority: rng.Intn(16),
		})
	}
	for p := 0; p < packets; p++ {
		dip := uint32(prefixes[rng.Intn(len(prefixes))]) | uint32(rng.Intn(1<<10))
		pkt := []byte{
			byte(dip >> 24), byte(dip >> 16), byte(dip >> 8), byte(dip),
			byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)),
			byte(rng.Intn(256)), byte(rng.Intn(256)), // sport
			byte(rng.Intn(1 << 7)), byte(rng.Intn(256)), // dport
			byte(rng.Intn(4)), // proto
			0,                 // hop
		}
		w.Packets = append(w.Packets, pkt)
	}
	return w, nil
}

// Switch builds a fresh switch with the workload's control-plane state
// (forwarding entries; cached keys for CACHE) on the given engine.
func (w *InterpWorkload) Switch(engine bmv2.Engine) (*bmv2.Switch, error) {
	sw := bmv2.New(w.Prog)
	sw.SetEngine(engine)
	b := bmv2.NewWriteBatch()
	if w.Entries != nil {
		for table, ents := range w.Entries {
			for _, e := range ents {
				b.Insert(table, e)
			}
		}
		if _, err := sw.Write(b); err != nil {
			return nil, err
		}
		return sw, nil
	}
	for id := 1; id <= 4; id++ {
		b.Insert("netcl_fwd", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
			Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(id)}},
		})
	}
	if w.App == "CACHE" {
		for k := 0; k < 4; k++ {
			key, idx := uint64(k+1), uint64(k)
			b.Insert("lu_Index", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "lu_Index_hit", Args: []uint64{idx}},
			})
			b.Insert("lu_Share", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "lu_Share_hit", Args: []uint64{(1 << CacheWords) - 1}},
			})
			for word := 0; word < CacheWords; word++ {
				b.RegisterWrite(fmt.Sprintf("reg_Vals__%d", word), int(idx), key*100+uint64(word))
			}
			b.RegisterWrite("reg_Valid", int(idx), 1)
		}
	}
	if _, err := sw.Write(b); err != nil {
		return nil, err
	}
	return sw, nil
}

// Run drives every packet through the switch once.
func (w *InterpWorkload) Run(sw *bmv2.Switch) error {
	for _, pkt := range w.Packets {
		if _, err := sw.Process(pkt, 1); err != nil {
			return err
		}
	}
	return nil
}

// RunBurst drives the packet stream through ProcessBurst in chunks of
// the given size, reusing caller-free result arrays.
func (w *InterpWorkload) RunBurst(sw *bmv2.Switch, burst int, res []bmv2.Result, errs []error) error {
	ports := make([]int, burst)
	for i := range ports {
		ports[i] = 1
	}
	for off := 0; off < len(w.Packets); off += burst {
		n := burst
		if off+n > len(w.Packets) {
			n = len(w.Packets) - off
		}
		sw.ProcessBurst(w.Packets[off:off+n], ports[:n], res[:n], errs[:n])
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return errs[i]
			}
		}
	}
	return nil
}

// InterpPoint is one app's interpreter comparison: reference vs
// compiled, plus the compiled engine's own deltas — decision-diagram
// matchers on/off (at burst 1) and burst sizes {1, 8, 32} (diagrams
// on) — so each optimization's contribution is measured independently.
type InterpPoint struct {
	App                string  `json:"app"`
	Packets            int     `json:"packets"`
	ReferencePPS       float64 `json:"reference_pkts_per_sec"`
	CompiledPPS        float64 `json:"compiled_pkts_per_sec"`
	Speedup            float64 `json:"speedup"`
	ReferenceBytesPkt  float64 `json:"reference_bytes_per_pkt"`
	CompiledBytesPkt   float64 `json:"compiled_bytes_per_pkt"`
	ReferenceAllocsPkt float64 `json:"reference_allocs_per_pkt"`
	CompiledAllocsPkt  float64 `json:"compiled_allocs_per_pkt"`
	// CompiledScanPPS is the compiled engine with SetFDD(false): the
	// sorted-prefix walk / linear scan matchers, burst 1.
	CompiledScanPPS float64 `json:"compiled_scan_pkts_per_sec"`
	// FDDSpeedup = CompiledPPS / CompiledScanPPS.
	FDDSpeedup float64 `json:"fdd_speedup"`
	// Burst sweeps (diagrams on).
	Burst8PPS  float64 `json:"compiled_burst8_pkts_per_sec"`
	Burst32PPS float64 `json:"compiled_burst32_pkts_per_sec"`
	// Burst32Speedup = Burst32PPS / CompiledPPS.
	Burst32Speedup  float64 `json:"burst32_speedup"`
	Burst32BytesPkt float64 `json:"burst32_bytes_per_pkt"`
	Burst32Allocs   float64 `json:"burst32_allocs_per_pkt"`
}

// interpMode selects one measured configuration.
type interpMode struct {
	engine bmv2.Engine
	fdd    bool
	burst  int // <= 1: per-packet Process
}

// measure runs the workload repeatedly in one mode and returns
// packets/sec, heap bytes/packet, and allocations/packet.
func (w *InterpWorkload) measure(mode interpMode, totalPkts int) (pps, bytesPkt, allocsPkt float64, err error) {
	sw, err := w.Switch(mode.engine)
	if err != nil {
		return 0, 0, 0, err
	}
	sw.SetFDD(mode.fdd)
	res := make([]bmv2.Result, bmv2.MaxBurst)
	errs := make([]error, bmv2.MaxBurst)
	run := func() error {
		if mode.burst > 1 {
			return w.RunBurst(sw, mode.burst, res, errs)
		}
		return w.Run(sw)
	}
	if err := run(); err != nil { // warmup: JIT caches, pool, maps
		return 0, 0, 0, err
	}
	rounds := totalPkts / len(w.Packets)
	if rounds < 1 {
		rounds = 1
	}
	n := rounds * len(w.Packets)
	gort.GC()
	var m0, m1 gort.MemStats
	gort.ReadMemStats(&m0)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if err := run(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	gort.ReadMemStats(&m1)
	pps = float64(n) / elapsed.Seconds()
	bytesPkt = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n)
	allocsPkt = float64(m1.Mallocs-m0.Mallocs) / float64(n)
	return pps, bytesPkt, allocsPkt, nil
}

// Measure benchmarks the workload across every mode: both engines at
// burst 1, the compiled engine with diagrams off, and the burst sweep.
func (w *InterpWorkload) Measure(totalPkts int) (*InterpPoint, error) {
	pt := &InterpPoint{App: w.App, Packets: totalPkts}
	var err error
	pt.ReferencePPS, pt.ReferenceBytesPkt, pt.ReferenceAllocsPkt, err =
		w.measure(interpMode{engine: bmv2.EngineReference, fdd: true}, totalPkts)
	if err != nil {
		return nil, err
	}
	pt.CompiledPPS, pt.CompiledBytesPkt, pt.CompiledAllocsPkt, err =
		w.measure(interpMode{engine: bmv2.EngineCompiled, fdd: true}, totalPkts)
	if err != nil {
		return nil, err
	}
	pt.CompiledScanPPS, _, _, err =
		w.measure(interpMode{engine: bmv2.EngineCompiled, fdd: false}, totalPkts)
	if err != nil {
		return nil, err
	}
	pt.Burst8PPS, _, _, err =
		w.measure(interpMode{engine: bmv2.EngineCompiled, fdd: true, burst: 8}, totalPkts)
	if err != nil {
		return nil, err
	}
	pt.Burst32PPS, pt.Burst32BytesPkt, pt.Burst32Allocs, err =
		w.measure(interpMode{engine: bmv2.EngineCompiled, fdd: true, burst: 32}, totalPkts)
	if err != nil {
		return nil, err
	}
	if pt.ReferencePPS > 0 {
		pt.Speedup = pt.CompiledPPS / pt.ReferencePPS
	}
	if pt.CompiledScanPPS > 0 {
		pt.FDDSpeedup = pt.CompiledPPS / pt.CompiledScanPPS
	}
	if pt.CompiledPPS > 0 {
		pt.Burst32Speedup = pt.Burst32PPS / pt.CompiledPPS
	}
	return pt, nil
}

// SimStats reports the netsim event-engine counters of one end-to-end
// AGG run, so the simulator hot path shows up in the bench report too.
type SimStats struct {
	Events       uint64  `json:"events"`
	PeakQueue    int     `json:"peak_queue"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// BenchInterpApps measures every benchmarked row with totalPkts
// packets per engine (0 = a quick default).
func BenchInterpApps(totalPkts int) ([]*InterpPoint, error) {
	if totalPkts <= 0 {
		totalPkts = 20000
	}
	var out []*InterpPoint
	for _, r := range interpRows {
		w, err := NewInterpWorkload(r.app, r.device, 256)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.app, err)
		}
		pt, err := w.Measure(totalPkts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.app, err)
		}
		out = append(out, pt)
	}
	return out, nil
}
