package apps

// interpbench.go measures the bmv2 interpreter hot path: the same
// per-app packet stream driven through the reference tree-walking
// engine and the compiled slot-indexed engine, reporting packets per
// second and allocation cost per packet. `nclbench -interp` writes the
// result as BENCH_interp.json.

import (
	"fmt"
	"math/rand"
	gort "runtime"
	"time"

	"netcl/internal/bmv2"
	"netcl/internal/p4"
	"netcl/internal/passes"
	"netcl/internal/runtime"
)

// InterpWorkload is one app's interpreter benchmark input: a compiled
// program, control-plane setup, and a deterministic packet stream.
type InterpWorkload struct {
	App     string
	Device  uint16
	Prog    *p4.Program
	Spec    *runtime.MessageSpec
	Packets [][]byte
}

// interpRows lists the benchmarked Table III rows (one device each).
var interpRows = []struct {
	app    string
	device uint16
}{
	{"AGG", 1},
	{"CACHE", 1},
	{"PACC", PaxosAcceptor1},
	{"CALC", 1},
}

// NewInterpWorkload compiles the app's generated program and builds a
// seeded stream of wire messages: valid headers with randomized kernel
// arguments (the opcode-like first scalar kept small so the dispatch
// branches are all exercised).
func NewInterpWorkload(appName string, device uint16, packets int) (*InterpWorkload, error) {
	reg := appName
	if appName == "PACC" || appName == "PLRN" || appName == "PLDR" {
		reg = "PAXOS"
	}
	app := ByName(reg)
	if app == nil {
		return nil, fmt.Errorf("unknown app %q", appName)
	}
	prog, specs, err := CompileApp(app, passes.TargetTNA, device)
	if err != nil {
		return nil, err
	}
	spec := specs[1]
	w := &InterpWorkload{App: appName, Device: device, Prog: prog, Spec: spec}
	rng := rand.New(rand.NewSource(0x1234 + int64(device)))
	args := make([][]uint64, len(spec.Args))
	for i, a := range spec.Args {
		args[i] = make([]uint64, a.Count)
	}
	for p := 0; p < packets; p++ {
		for i, a := range spec.Args {
			mask := ^uint64(0)
			if a.Bytes < 8 {
				mask = uint64(1)<<(uint(a.Bytes)*8) - 1
			}
			for k := range args[i] {
				if i == 0 && a.Count == 1 {
					args[i][k] = uint64(rng.Intn(8))
				} else {
					args[i][k] = rng.Uint64() & mask
				}
			}
		}
		src := uint16(rng.Intn(4) + 1)
		msg, err := runtime.Pack(spec,
			runtime.Message{Src: src, Dst: uint16(rng.Intn(4) + 1),
				Device: device, Comp: spec.Comp}.Header(), args)
		if err != nil {
			return nil, err
		}
		// Frame the message as the device would receive it: without the
		// Ethernet/IPv4/UDP encapsulation the generated parser rejects
		// every packet at the ethertype check and both engines measure an
		// identical no-op parse path (identical per-app columns in the
		// old BENCH_interp.json).
		w.Packets = append(w.Packets, runtime.Frame(msg, uint64(src), 0))
	}
	return w, nil
}

// Switch builds a fresh switch with the workload's control-plane state
// (forwarding entries; cached keys for CACHE) on the given engine.
func (w *InterpWorkload) Switch(engine bmv2.Engine) (*bmv2.Switch, error) {
	sw := bmv2.New(w.Prog)
	sw.SetEngine(engine)
	b := bmv2.NewWriteBatch()
	for id := 1; id <= 4; id++ {
		b.Insert("netcl_fwd", &p4.Entry{
			Keys:   []p4.KeyValue{{Value: uint64(id), PrefixLen: -1}},
			Action: &p4.ActionCall{Name: "set_port", Args: []uint64{uint64(id)}},
		})
	}
	if w.App == "CACHE" {
		for k := 0; k < 4; k++ {
			key, idx := uint64(k+1), uint64(k)
			b.Insert("lu_Index", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "lu_Index_hit", Args: []uint64{idx}},
			})
			b.Insert("lu_Share", &p4.Entry{
				Keys:   []p4.KeyValue{{Value: key, PrefixLen: -1}},
				Action: &p4.ActionCall{Name: "lu_Share_hit", Args: []uint64{(1 << CacheWords) - 1}},
			})
			for word := 0; word < CacheWords; word++ {
				b.RegisterWrite(fmt.Sprintf("reg_Vals__%d", word), int(idx), key*100+uint64(word))
			}
			b.RegisterWrite("reg_Valid", int(idx), 1)
		}
	}
	if _, err := sw.Write(b); err != nil {
		return nil, err
	}
	return sw, nil
}

// Run drives every packet through the switch once.
func (w *InterpWorkload) Run(sw *bmv2.Switch) error {
	for _, pkt := range w.Packets {
		if _, err := sw.Process(pkt, 1); err != nil {
			return err
		}
	}
	return nil
}

// InterpPoint is one app's old-vs-new interpreter comparison.
type InterpPoint struct {
	App                string  `json:"app"`
	Packets            int     `json:"packets"`
	ReferencePPS       float64 `json:"reference_pkts_per_sec"`
	CompiledPPS        float64 `json:"compiled_pkts_per_sec"`
	Speedup            float64 `json:"speedup"`
	ReferenceBytesPkt  float64 `json:"reference_bytes_per_pkt"`
	CompiledBytesPkt   float64 `json:"compiled_bytes_per_pkt"`
	ReferenceAllocsPkt float64 `json:"reference_allocs_per_pkt"`
	CompiledAllocsPkt  float64 `json:"compiled_allocs_per_pkt"`
}

// measureEngine runs the workload repeatedly on one engine and returns
// packets/sec, heap bytes/packet, and allocations/packet.
func (w *InterpWorkload) measureEngine(engine bmv2.Engine, totalPkts int) (pps, bytesPkt, allocsPkt float64, err error) {
	sw, err := w.Switch(engine)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := w.Run(sw); err != nil { // warmup: JIT caches, pool, maps
		return 0, 0, 0, err
	}
	rounds := totalPkts / len(w.Packets)
	if rounds < 1 {
		rounds = 1
	}
	n := rounds * len(w.Packets)
	gort.GC()
	var m0, m1 gort.MemStats
	gort.ReadMemStats(&m0)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if err := w.Run(sw); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	gort.ReadMemStats(&m1)
	pps = float64(n) / elapsed.Seconds()
	bytesPkt = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n)
	allocsPkt = float64(m1.Mallocs-m0.Mallocs) / float64(n)
	return pps, bytesPkt, allocsPkt, nil
}

// Measure benchmarks the workload on both engines.
func (w *InterpWorkload) Measure(totalPkts int) (*InterpPoint, error) {
	pt := &InterpPoint{App: w.App, Packets: totalPkts}
	var err error
	pt.ReferencePPS, pt.ReferenceBytesPkt, pt.ReferenceAllocsPkt, err =
		w.measureEngine(bmv2.EngineReference, totalPkts)
	if err != nil {
		return nil, err
	}
	pt.CompiledPPS, pt.CompiledBytesPkt, pt.CompiledAllocsPkt, err =
		w.measureEngine(bmv2.EngineCompiled, totalPkts)
	if err != nil {
		return nil, err
	}
	if pt.ReferencePPS > 0 {
		pt.Speedup = pt.CompiledPPS / pt.ReferencePPS
	}
	return pt, nil
}

// SimStats reports the netsim event-engine counters of one end-to-end
// AGG run, so the simulator hot path shows up in the bench report too.
type SimStats struct {
	Events       uint64  `json:"events"`
	PeakQueue    int     `json:"peak_queue"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// BenchInterpApps measures every benchmarked row with totalPkts
// packets per engine (0 = a quick default).
func BenchInterpApps(totalPkts int) ([]*InterpPoint, error) {
	if totalPkts <= 0 {
		totalPkts = 20000
	}
	var out []*InterpPoint
	for _, r := range interpRows {
		w, err := NewInterpWorkload(r.app, r.device, 256)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.app, err)
		}
		pt, err := w.Measure(totalPkts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.app, err)
		}
		out = append(out, pt)
	}
	return out, nil
}
