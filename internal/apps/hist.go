package apps

import "math/bits"

// Hist is a log-linear latency histogram: 64 power-of-two major
// buckets, each split into 16 linear minor buckets (~6% relative
// resolution), the classic HDR layout. The zero value is ready to use.
// Record and Quantile cost O(1)/O(buckets) with no allocation, so a
// histogram can live on a hot path (one per flow, merged at the end).
type Hist struct {
	counts [64 * 16]uint64
	n      uint64
}

// bucket maps a value to its bucket index.
func histBucket(v uint64) int {
	if v < 16 {
		return int(v) // exact for tiny values
	}
	exp := bits.Len64(v) - 1        // position of the top bit, >= 4
	minor := (v >> (uint(exp) - 4)) // top 5 bits, high bit set
	return (exp-3)*16 + int(minor&15)
}

// histValue returns a representative value (the bucket's lower bound)
// for a bucket index.
func histValue(b int) uint64 {
	if b < 16 {
		return uint64(b)
	}
	exp := b/16 + 3
	minor := uint64(b%16) | 16
	return minor << (uint(exp) - 4)
}

// Record adds one observation.
func (h *Hist) Record(v uint64) {
	h.counts[histBucket(v)]++
	h.n++
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.n }

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
}

// Quantile returns the value at quantile q in [0, 1] (0 when empty).
func (h *Hist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.n-1))
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if c > 0 && seen > rank {
			return histValue(b)
		}
	}
	return histValue(len(h.counts) - 1)
}

// Max returns the lower bound of the highest occupied bucket.
func (h *Hist) Max() uint64 {
	for b := len(h.counts) - 1; b >= 0; b-- {
		if h.counts[b] > 0 {
			return histValue(b)
		}
	}
	return 0
}
