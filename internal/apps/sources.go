package apps

// NetCL-C sources for the evaluation applications. Line counts are in
// the ballpark of the paper's Table III NetCL column; the LoC metrics
// in the benchmark harness are computed from these exact strings.

// AggSource implements the SwitchML streaming-aggregation protocol
// (paper Figure 7) plus the maximum-exponent tracking used for
// quantized aggregation (§VII: "with the addition of finding a maximum
// exponent for quantization").
const AggSource = `
_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];
_net_ uint32_t Exp[NUM_SLOTS * 2];

_kernel(1) void allreduce(uint8_t ver, uint16_t bmp_idx, uint16_t agg_idx,
                          uint16_t mask, uint32_t &exp,
                          uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }

  // Count and Exp precede the value loop: the completion decision
  // depends only on them, letting the forwarding logic settle in an
  // early stage while the 32 value aggregations fill later stages.
  if (bitmap == 0) {
    Count[agg_idx] = NUM_WORKERS - 1;
    ncl::atomic_write(&Exp[agg_idx], exp);
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
  } else {
    auto seen = bitmap & mask;
    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    exp = ncl::atomic_cond_max_new(&Exp[agg_idx], !seen, exp);
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(&Agg[i][agg_idx], !seen, v[i]);
    // cnt is the count BEFORE the conditional decrement: a completion
    // multicast requires this packet to have performed the decrement
    // (1 -> 0); a seen retransmission of an already-completed slot
    // (count stuck at 0) gets the stored result reflected back.
    if (seen) {
      if (cnt == 0)
        return ncl::reflect();
    } else {
      if (cnt == 1)
        return ncl::multicast(42);
    }
  }
  return ncl::drop();
}
`

// HierAggSource is the fabric variant of the SwitchML protocol: the
// same slot state machine, parameterized per device so an aggregation
// TREE spans the fabric. A leaf switch reduces its rack's FANIN
// workers; on slot completion it rewrites the contribution mask to its
// own position under its parent (1 << LEVEL_INDEX) and sends the
// partial aggregate one tier up with send_to_device(PARENT); the root
// completes and multicasts the result to the collector group. Each
// round owns one slot (the bench is open-loop and lossless), so the
// two-version scheme of AggSource is unnecessary here.
const HierAggSource = `
_net_ uint16_t Bitmap[NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS];
_net_ uint8_t Count[NUM_SLOTS];
_net_ uint32_t Exp[NUM_SLOTS];

_kernel(1) void treduce(uint16_t slot, uint16_t &mask, uint32_t &exp,
                        uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap = ncl::atomic_or(&Bitmap[slot], mask);
  if (bitmap == 0) {
    Count[slot] = FANIN - 1;
    ncl::atomic_write(&Exp[slot], exp);
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][slot] = v[i];
    // A single-child level completes on its only contribution.
    if (FANIN == 1) {
      mask = 1 << LEVEL_INDEX;
      if (IS_ROOT)
        return ncl::multicast(42);
      return ncl::send_to_device(PARENT);
    }
  } else {
    auto seen = bitmap & mask;
    auto cnt = ncl::atomic_cond_dec(&Count[slot], !seen);
    exp = ncl::atomic_cond_max_new(&Exp[slot], !seen, exp);
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(&Agg[i][slot], !seen, v[i]);
    if (!seen) {
      if (cnt == 1) {
        mask = 1 << LEVEL_INDEX;
        if (IS_ROOT)
          return ncl::multicast(42);
        return ncl::send_to_device(PARENT);
      }
    }
  }
  return ncl::drop();
}
`

// CacheSource implements NetCache (§VII): GET/PUT/DEL with a validity
// bit (write-back policy), two-step cache-line access (a MAT maps the
// key to an index), cache-line sharing via a per-key word bitmap, hit
// counting, and a count-min sketch plus bloom filter that marks missed
// keys as hot in an extra header field before they continue to the
// KVS server.
const CacheSource = `
#define GET_REQ 1
#define PUT_REQ 2
#define DEL_REQ 3
#define THRESH 128

_managed_ _lookup_ ncl::kv<uint64_t, unsigned> Index[CACHE_ENTRIES];
_managed_ _lookup_ ncl::kv<uint64_t, unsigned> Share[CACHE_ENTRIES];
_managed_ uint8_t Valid[CACHE_ENTRIES];
_managed_ unsigned Vals[CACHE_WORDS][CACHE_ENTRIES];
_managed_ unsigned HitCount[CACHE_ENTRIES];
_managed_ unsigned cms[3][65536];
_managed_ uint8_t Bloom[3][65536];

_net_ void sketch(uint64_t k, unsigned &hot) {
  unsigned c[3];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < 3; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  if (c[0] > THRESH) {
    uint8_t b0 = ncl::atomic_swap(&Bloom[0][ncl::xor16(k)], 1);
    uint8_t b1 = ncl::atomic_swap(&Bloom[1][ncl::crc32<16>(k)], 1);
    uint8_t b2 = ncl::atomic_swap(&Bloom[2][ncl::crc16(k)], 1);
    hot = c[0];
    // Nested predicates instead of b0 & b1 & b2: all three test in one
    // stage, suppressing keys the bloom filter already reported.
    if (b0) if (b1) if (b2) hot = 0;
  }
}

_kernel(1) void query(uint8_t op, uint64_t key,
                      unsigned _spec(CACHE_WORDS) *val,
                      uint8_t &hit, unsigned &hot) {
  unsigned idx = 0, share = 0;
  uint8_t have = ncl::lookup(Index, key, idx);
  ncl::lookup(Share, key, share);
  if (op == GET_REQ) {
    // Read the validity bit unconditionally (idx defaults to 0 on a
    // miss, which is harmless) to keep the dependence chain short.
    uint8_t valid = ncl::atomic_read(&Valid[idx]);
    if (have && valid) {
      for (auto w = 0; w < CACHE_WORDS; ++w)
        if (ncl::bit_chk(share, w))
          val[w] = ncl::atomic_read(&Vals[w][idx]);
      hit = 1;
      ncl::atomic_inc(&HitCount[idx]);
      return ncl::reflect();
    }
    sketch(key, hot);
    return ncl::pass();
  }
  if (op == PUT_REQ) {
    if (have) {
      ncl::atomic_write(&Valid[idx], 1);
      for (auto w = 0; w < CACHE_WORDS; ++w)
        if (ncl::bit_chk(share, w))
          ncl::atomic_write(&Vals[w][idx], val[w]);
      hit = 1;
    }
    return ncl::pass();
  }
  if (op == DEL_REQ) {
    if (have)
      ncl::atomic_write(&Valid[idx], 0);
    return ncl::pass();
  }
}
`

// PaxosSource implements the in-network Paxos of P4xos (§VII, Figure
// 11): three kernels of one computation placed at the leader, the
// acceptor group, and the learner.
const PaxosSource = `
#define REQUEST 1
#define PHASE2A 2
#define PHASE2B 3
#define DELIVER 4
#define LEADER 1
#define ACC1 2
#define ACC2 3
#define ACC3 4
#define LEARNER 5
#define ACCEPTOR_GROUP 20
#define LEARNER_GROUP 30
#define APP_HOST 101
#define MAXINST 16384

_at(LEADER) _net_ uint32_t Instance;
_at(ACC1,ACC2,ACC3) _net_ uint16_t Round[MAXINST];
_at(ACC1,ACC2,ACC3) _net_ uint16_t VRound[MAXINST];
_at(ACC1,ACC2,ACC3) _net_ uint32_t AccValue[8][MAXINST];
_at(LEARNER) _net_ uint8_t VoteHistory[MAXINST];
_at(LEARNER) _net_ uint8_t Done[MAXINST];
_at(LEARNER) _net_ uint32_t LrnValue[8][MAXINST];

_at(LEADER) _kernel(1) void leader(uint8_t &type, uint32_t &instance,
                                   uint16_t round, uint16_t &vround,
                                   uint8_t &vote, uint32_t v[8]) {
  if (type == REQUEST) {
    instance = ncl::atomic_inc_new(&Instance) & (MAXINST - 1);
    type = PHASE2A;
    return ncl::multicast(ACCEPTOR_GROUP);
  }
  return ncl::drop();
}

_at(ACC1,ACC2,ACC3) _kernel(1) void acceptor(uint8_t &type, uint32_t &instance,
                                             uint16_t round, uint16_t &vround,
                                             uint8_t &vote, uint32_t v[8]) {
  if (type == PHASE2A) {
    uint16_t r = ncl::atomic_max_new(&Round[instance], round);
    if (r == round) {
      ncl::atomic_write(&VRound[instance], round);
      for (auto i = 0; i < 8; ++i)
        ncl::atomic_write(&AccValue[i][instance], v[i]);
      type = PHASE2B;
      vround = round;
      vote = 1 << (device.id - ACC1);
      return ncl::multicast(LEARNER_GROUP);
    }
  }
  return ncl::drop();
}

_at(LEARNER) _kernel(1) void learner(uint8_t &type, uint32_t &instance,
                                     uint16_t round, uint16_t &vround,
                                     uint8_t &vote, uint32_t v[8]) {
  if (type == PHASE2B) {
    uint8_t hist = ncl::atomic_or(&VoteHistory[instance], vote);
    if (hist == 0) {
      for (auto i = 0; i < 8; ++i)
        ncl::atomic_write(&LrnValue[i][instance], v[i]);
      return ncl::drop();
    }
    if (hist != vote) {
      uint8_t was = ncl::atomic_cas(&Done[instance], 0, 1);
      if (was == 0) {
        type = DELIVER;
        return ncl::send_to_host(APP_HOST);
      }
    }
  }
  return ncl::drop();
}
`

// CalcSource is the P4-tutorial calculator (§VII): a stateless kernel
// computing one of five operations and reflecting the result.
const CalcSource = `
#define OP_ADD 1
#define OP_SUB 2
#define OP_AND 3
#define OP_OR  4
#define OP_XOR 5

_kernel(1) void calc(uint8_t op, uint32_t a, uint32_t b, uint32_t &res) {
  if (op == OP_ADD)      res = a + b;
  else if (op == OP_SUB) res = a - b;
  else if (op == OP_AND) res = a & b;
  else if (op == OP_OR)  res = a | b;
  else if (op == OP_XOR) res = a ^ b;
  return ncl::reflect();
}
`
