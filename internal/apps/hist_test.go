package apps

import (
	"math/rand"
	"testing"
)

func TestHistExactSmall(t *testing.T) {
	var h Hist
	for v := uint64(0); v < 16; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Errorf("p100 = %d", got)
	}
	if h.Count() != 16 {
		t.Errorf("count %d", h.Count())
	}
}

// TestHistQuantileAccuracy: quantiles of a known distribution land
// within the layout's ~6% relative error.
func TestHistQuantileAccuracy(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Record(uint64(rng.Intn(1_000_000)))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(h.Quantile(q))
		want := q * 1_000_000
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("q%.2f = %.0f, want within 10%% of %.0f", q, got, want)
		}
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count %d", a.Count())
	}
	if p50 := a.Quantile(0.49); p50 != 10 {
		t.Errorf("p49 = %d, want 10", p50)
	}
	if p99 := a.Quantile(0.99); p99 < 900 {
		t.Errorf("p99 = %d, want ~1000", p99)
	}
	if m := a.Max(); m < 900 || m > 1100 {
		t.Errorf("max = %d", m)
	}
}

// TestHistBucketMonotone: bucket index and representative value are
// monotone, and the representative never exceeds the recorded value's
// bucket bound.
func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1 << 20, 1 << 40, 1 << 62} {
		b := histBucket(v)
		if b < prev {
			t.Errorf("bucket(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
		if rep := histValue(b); rep > v {
			t.Errorf("value(bucket(%d)) = %d > %d", v, rep, v)
		}
	}
}

// TestHistLogLinearBoundaries pins the representative value at the
// log-linear bucket edges: exact through 31, floored to the bucket's
// lower bound above, with the sub-bucket width doubling per octave.
func TestHistLogLinearBoundaries(t *testing.T) {
	cases := []struct{ v, want uint64 }{
		{0, 0}, {1, 1}, {15, 15},
		{16, 16}, {31, 31}, // second octave still exact (width 1)
		{32, 32}, {33, 32}, {34, 34}, {63, 62}, // width-2 sub-buckets
		{64, 64}, {100, 100}, {127, 124}, // width-4 sub-buckets
		{1023, 992},
		{1 << 20, 1 << 20},
		{(1 << 20) + 1, 1 << 20},
		{1 << 40, 1 << 40},
	}
	for _, c := range cases {
		if got := histValue(histBucket(c.v)); got != c.want {
			t.Errorf("value(bucket(%d)) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistP999 pins the tail quantile the churn SLO reports: a
// 999-to-1 split must put p999 at the common value and p100 in the
// outlier's bucket (floored to its lower bound), with Max exact.
func TestHistP999(t *testing.T) {
	var h Hist
	for i := 0; i < 999; i++ {
		h.Record(100)
	}
	h.Record(10000)
	if got := h.Quantile(0.999); got != 100 {
		t.Errorf("p999 = %d, want 100", got)
	}
	if got := h.Quantile(1); got != 9728 {
		t.Errorf("p100 = %d, want 9728 (bucket floor of 10000)", got)
	}
	if got := h.Max(); got != 9728 {
		t.Errorf("max = %d, want 9728 (Max floors to the top bucket)", got)
	}
	// One more outlier shifts p999 into the outlier bucket.
	for i := 0; i < 9; i++ {
		h.Record(10000)
	}
	if got := h.Quantile(0.999); got != 9728 {
		t.Errorf("p999 after 10 outliers = %d, want 9728", got)
	}
}
