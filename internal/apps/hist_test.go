package apps

import (
	"math/rand"
	"testing"
)

func TestHistExactSmall(t *testing.T) {
	var h Hist
	for v := uint64(0); v < 16; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Errorf("p100 = %d", got)
	}
	if h.Count() != 16 {
		t.Errorf("count %d", h.Count())
	}
}

// TestHistQuantileAccuracy: quantiles of a known distribution land
// within the layout's ~6% relative error.
func TestHistQuantileAccuracy(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Record(uint64(rng.Intn(1_000_000)))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(h.Quantile(q))
		want := q * 1_000_000
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("q%.2f = %.0f, want within 10%% of %.0f", q, got, want)
		}
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count %d", a.Count())
	}
	if p50 := a.Quantile(0.49); p50 != 10 {
		t.Errorf("p49 = %d, want 10", p50)
	}
	if p99 := a.Quantile(0.99); p99 < 900 {
		t.Errorf("p99 = %d, want ~1000", p99)
	}
	if m := a.Max(); m < 900 || m > 1100 {
		t.Errorf("max = %d", m)
	}
}

// TestHistBucketMonotone: bucket index and representative value are
// monotone, and the representative never exceeds the recorded value's
// bucket bound.
func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1 << 20, 1 << 40, 1 << 62} {
		b := histBucket(v)
		if b < prev {
			t.Errorf("bucket(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
		if rep := histValue(b); rep > v {
			t.Errorf("value(bucket(%d)) = %d > %d", v, rep, v)
		}
	}
}
