// calc.p4 — handwritten TNA baseline of the P4-tutorial calculator
// (paper §VII, CALC row of Table III): a stateless in-network ALU
// reflecting op(a, b) back to the sender.
#include <core.p4>
#include <tna.p4>

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}
header ipv4_t {
    bit<8> version_ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}
header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}
header netcl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> act;
    bit<16> arg;
}
header d1_t {
    bit<8> op;
    bit<32> a;
    bit<32> b;
    bit<32> res;
}
struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    udp_t udp;
    netcl_t netcl;
    d1_t d1;
}
struct metadata_t {
    bit<16> nexthop;
    bit<16> mcast_grp;
    bit<1> drop_flag;
    bit<16> egress_port;
}

parser IgParser(packet_in pkt, out headers_t hdr, out metadata_t meta,
                out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800 : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            17 : parse_udp;
            default : accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            20035 : parse_netcl;
            default : accept;
        }
    }
    state parse_netcl {
        pkt.extract(hdr.netcl);
        transition select(hdr.netcl.comp) {
            1 : parse_d1;
            default : accept;
        }
    }
    state parse_d1 {
        pkt.extract(hdr.d1);
        transition accept;
    }
}

control In(inout headers_t hdr, inout metadata_t meta,
        in ingress_intrinsic_metadata_t ig_intr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    action do_add() {
        hdr.d1.res = (hdr.d1.a + hdr.d1.b);
    }
    action do_sub() {
        hdr.d1.res = (hdr.d1.a - hdr.d1.b);
    }
    action do_and() {
        hdr.d1.res = (hdr.d1.a & hdr.d1.b);
    }
    action do_or() {
        hdr.d1.res = (hdr.d1.a | hdr.d1.b);
    }
    action do_xor() {
        hdr.d1.res = (hdr.d1.a ^ hdr.d1.b);
    }
    table calculate {
        key = {
            hdr.d1.op : exact;
        }
        actions = { do_add; do_sub; do_and; do_or; do_xor; NoAction; }
        const entries = {
            1 : do_add();
            2 : do_sub();
            3 : do_and();
            4 : do_or();
            5 : do_xor();
        }
        default_action = NoAction();
        size = 8;
    }
    action set_port(bit<16> port) {
        meta.egress_port = port;
    }
    action mark_drop() {
        meta.drop_flag = 1w1;
    }
    table netcl_fwd {
        key = {
            meta.nexthop : exact;
        }
        actions = { set_port; mark_drop; }
        default_action = mark_drop();
        size = 256;
    }
    table l2_fwd {
        key = {
            hdr.ethernet.dst_addr : exact;
        }
        actions = { set_port; mark_drop; }
        default_action = mark_drop();
        size = 1024;
    }
    apply {
        if (hdr.netcl.isValid()) {
            if ((hdr.netcl.to == 16w1 || hdr.netcl.to == 16w65534)) {
                calculate.apply();
                hdr.netcl.act = 8w5;
                if ((hdr.netcl.from == 16w65535)) {
                    hdr.netcl.dst = hdr.netcl.src;
                    hdr.netcl.to = 16w65535;
                    meta.nexthop = hdr.netcl.src;
                } else {
                    hdr.netcl.to = hdr.netcl.from;
                    meta.nexthop = hdr.netcl.from;
                }
                hdr.netcl.from = 16w1;
            } else {
                if ((hdr.netcl.to == 16w65535)) {
                    meta.nexthop = hdr.netcl.dst;
                } else {
                    meta.nexthop = hdr.netcl.to;
                }
            }
            if ((meta.drop_flag == 1w0)) {
                if ((meta.mcast_grp == 16w0)) {
                    netcl_fwd.apply();
                }
            }
        } else {
            l2_fwd.apply();
        }
    }
}

control IgDeparser(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.netcl);
        pkt.emit(hdr.d1);
    }
}

Pipeline(IgParser(), In(), IgDeparser()) pipe;
Switch(pipe) main;
