// pacc.p4 — handwritten TNA baseline of a P4xos acceptor (paper §VII,
// PACC row of Table III): accepts phase-2A messages with a round at
// least as high as the highest seen, records the vote, and multicasts
// phase-2B messages to the learner group.
#include <core.p4>
#include <tna.p4>

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}
header ipv4_t {
    bit<8> version_ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}
header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}
header netcl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> act;
    bit<16> arg;
}
header d1_t {
    bit<8> type;
    bit<32> instance;
    bit<16> round;
    bit<16> vround;
    bit<8> vote;
    bit<32> v_0;
    bit<32> v_1;
    bit<32> v_2;
    bit<32> v_3;
    bit<32> v_4;
    bit<32> v_5;
    bit<32> v_6;
    bit<32> v_7;
}
struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    udp_t udp;
    netcl_t netcl;
    d1_t d1;
}
struct metadata_t {
    bit<16> nexthop;
    bit<16> mcast_grp;
    bit<1> drop_flag;
    bit<16> egress_port;
    bit<16> rnd;
}

parser IgParser(packet_in pkt, out headers_t hdr, out metadata_t meta,
                out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800 : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            17 : parse_udp;
            default : accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            20035 : parse_netcl;
            default : accept;
        }
    }
    state parse_netcl {
        pkt.extract(hdr.netcl);
        transition select(hdr.netcl.comp) {
            1 : parse_d1;
            default : accept;
        }
    }
    state parse_d1 {
        pkt.extract(hdr.d1);
        transition accept;
    }
}

control In(inout headers_t hdr, inout metadata_t meta,
        in ingress_intrinsic_metadata_t ig_intr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    Register<bit<16>, bit<32>>(16384) rounds;
    Register<bit<16>, bit<32>>(16384) vrounds;
    Register<bit<32>, bit<32>>(16384) values_0;
    Register<bit<32>, bit<32>>(16384) values_1;
    Register<bit<32>, bit<32>>(16384) values_2;
    Register<bit<32>, bit<32>>(16384) values_3;
    Register<bit<32>, bit<32>>(16384) values_4;
    Register<bit<32>, bit<32>>(16384) values_5;
    Register<bit<32>, bit<32>>(16384) values_6;
    Register<bit<32>, bit<32>>(16384) values_7;
    RegisterAction<bit<16>, bit<32>, bit<16>>(rounds) round_max = {
        void apply(inout bit<16> m, out bit<16> o) {
            m = (hdr.d1.round > m ? hdr.d1.round : m);
            o = m;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(vrounds) vround_write = {
        void apply(inout bit<16> m, out bit<16> o) {
            m = hdr.d1.round;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(values_0) value_0_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_0;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(values_1) value_1_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_1;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(values_2) value_2_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_2;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(values_3) value_3_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_3;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(values_4) value_4_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_4;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(values_5) value_5_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_5;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(values_6) value_6_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_6;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(values_7) value_7_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.v_7;
            o = m;
        }
    };
    action set_port(bit<16> port) {
        meta.egress_port = port;
    }
    action mark_drop() {
        meta.drop_flag = 1w1;
    }
    table netcl_fwd {
        key = {
            meta.nexthop : exact;
        }
        actions = { set_port; mark_drop; }
        default_action = mark_drop();
        size = 256;
    }
    table l2_fwd {
        key = {
            hdr.ethernet.dst_addr : exact;
        }
        actions = { set_port; mark_drop; }
        default_action = mark_drop();
        size = 1024;
    }
    apply {
        if (hdr.netcl.isValid()) {
            if ((hdr.netcl.to == 16w2 || hdr.netcl.to == 16w65534)) {
                if ((hdr.d1.type == 8w2)) {
                    meta.rnd = round_max.execute(hdr.d1.instance);
                    if ((meta.rnd == hdr.d1.round)) {
                        vround_write.execute(hdr.d1.instance);
                        value_0_write.execute(hdr.d1.instance);
                        value_1_write.execute(hdr.d1.instance);
                        value_2_write.execute(hdr.d1.instance);
                        value_3_write.execute(hdr.d1.instance);
                        value_4_write.execute(hdr.d1.instance);
                        value_5_write.execute(hdr.d1.instance);
                        value_6_write.execute(hdr.d1.instance);
                        value_7_write.execute(hdr.d1.instance);
                        hdr.d1.type = 8w3;
                        hdr.d1.vround = hdr.d1.round;
                        hdr.d1.vote = 8w1;
                        hdr.netcl.act = 8w4;
                        hdr.netcl.arg = 16w30;
                        hdr.netcl.to = 16w65534;
                        meta.mcast_grp = 16w30;
                    } else {
                        hdr.netcl.act = 8w1;
                        mark_drop();
                    }
                } else {
                    hdr.netcl.act = 8w1;
                    mark_drop();
                }
                hdr.netcl.from = 16w2;
            } else {
                if ((hdr.netcl.to == 16w65535)) {
                    meta.nexthop = hdr.netcl.dst;
                } else {
                    meta.nexthop = hdr.netcl.to;
                }
            }
            if ((meta.drop_flag == 1w0)) {
                if ((meta.mcast_grp == 16w0)) {
                    netcl_fwd.apply();
                }
            }
        } else {
            l2_fwd.apply();
        }
    }
}

control IgDeparser(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.netcl);
        pkt.emit(hdr.d1);
    }
}

Pipeline(IgParser(), In(), IgDeparser()) pipe;
Switch(pipe) main;
