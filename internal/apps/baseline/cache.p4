// cache.p4 — handwritten TNA baseline of NetCache (paper §VII, CACHE
// row of Table III): GET/PUT/DEL, validity bit (write-back), two-step
// key-to-index lookup, per-key word-sharing bitmap, hit counters, and
// a count-min sketch + bloom filter marking hot missed keys.
#include <core.p4>
#include <tna.p4>

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}
header ipv4_t {
    bit<8> version_ihl;
    bit<8> diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}
header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}
header netcl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> act;
    bit<16> arg;
}
header d1_t {
    bit<8> op;
    bit<64> key;
    bit<32> val_0;
    bit<32> val_1;
    bit<32> val_2;
    bit<32> val_3;
    bit<32> val_4;
    bit<32> val_5;
    bit<32> val_6;
    bit<32> val_7;
    bit<32> val_8;
    bit<32> val_9;
    bit<32> val_10;
    bit<32> val_11;
    bit<32> val_12;
    bit<32> val_13;
    bit<32> val_14;
    bit<32> val_15;
    bit<8> hit;
    bit<32> hot;
}
struct headers_t {
    ethernet_t ethernet;
    ipv4_t ipv4;
    udp_t udp;
    netcl_t netcl;
    d1_t d1;
}
struct metadata_t {
    bit<16> nexthop;
    bit<16> mcast_grp;
    bit<1> drop_flag;
    bit<16> egress_port;
    bit<32> idx;
    bit<32> share;
    bit<8> valid;
    bit<16> h0;
    bit<16> h1;
    bit<16> h2;
    bit<32> c0;
    bit<32> c1;
    bit<32> c2;
    bit<32> cmin;
    bit<8> b0;
    bit<8> b1;
    bit<8> b2;
}

parser IgParser(packet_in pkt, out headers_t hdr, out metadata_t meta,
                out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800 : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            17 : parse_udp;
            default : accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            20035 : parse_netcl;
            default : accept;
        }
    }
    state parse_netcl {
        pkt.extract(hdr.netcl);
        transition select(hdr.netcl.comp) {
            1 : parse_d1;
            default : accept;
        }
    }
    state parse_d1 {
        pkt.extract(hdr.d1);
        transition accept;
    }
}

control In(inout headers_t hdr, inout metadata_t meta,
        in ingress_intrinsic_metadata_t ig_intr_md,
        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    Hash<bit<16>>(HashAlgorithm_t.XOR16) hash0;
    Hash<bit<16>>(HashAlgorithm_t.CRC32) hash1;
    Hash<bit<16>>(HashAlgorithm_t.CRC16) hash2;
    Register<bit<8>, bit<32>>(1024) valid_bit;
    Register<bit<32>, bit<32>>(1024) hit_count;
    Register<bit<32>, bit<32>>(65536) cms0;
    Register<bit<32>, bit<32>>(65536) cms1;
    Register<bit<32>, bit<32>>(65536) cms2;
    Register<bit<8>, bit<32>>(65536) bloom0;
    Register<bit<8>, bit<32>>(65536) bloom1;
    Register<bit<8>, bit<32>>(65536) bloom2;
    RegisterAction<bit<8>, bit<32>, bit<8>>(valid_bit) valid_read = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(valid_bit) valid_set = {
        void apply(inout bit<8> m, out bit<8> o) {
            m = 8w1;
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(valid_bit) valid_clear = {
        void apply(inout bit<8> m, out bit<8> o) {
            m = 8w0;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(hit_count) hits_inc = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = (m + 32w1);
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms0) cms0_bump = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = (m |+| 32w1);
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms1) cms1_bump = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = (m |+| 32w1);
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms2) cms2_bump = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = (m |+| 32w1);
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(bloom0) bloom0_swap = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w1;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(bloom1) bloom1_swap = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w1;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(bloom2) bloom2_swap = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w1;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_00;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_00) vals_00_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_00) vals_00_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_0;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_01;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_01) vals_01_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_01) vals_01_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_1;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_02;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_02) vals_02_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_02) vals_02_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_2;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_03;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_03) vals_03_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_03) vals_03_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_3;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_04;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_04) vals_04_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_04) vals_04_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_4;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_05;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_05) vals_05_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_05) vals_05_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_5;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_06;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_06) vals_06_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_06) vals_06_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_6;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_07;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_07) vals_07_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_07) vals_07_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_7;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_08;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_08) vals_08_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_08) vals_08_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_8;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_09;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_09) vals_09_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_09) vals_09_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_9;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_10;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_10) vals_10_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_10) vals_10_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_10;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_11;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_11) vals_11_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_11) vals_11_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_11;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_12;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_12) vals_12_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_12) vals_12_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_12;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_13;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_13) vals_13_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_13) vals_13_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_13;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_14;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_14) vals_14_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_14) vals_14_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_14;
            o = m;
        }
    };
    Register<bit<32>, bit<32>>(1024) vals_15;
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_15) vals_15_read = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(vals_15) vals_15_write = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = hdr.d1.val_15;
            o = m;
        }
    };
    action idx_hit(bit<32> index) {
        meta.idx = index;
    }
    table lu_Index {
        key = {
            hdr.d1.key : exact;
        }
        actions = { idx_hit; NoAction; }
        default_action = NoAction();
        size = 1024;
    }
    action share_hit(bit<32> bmp) {
        meta.share = bmp;
    }
    table lu_Share {
        key = {
            hdr.d1.key : exact;
        }
        actions = { share_hit; NoAction; }
        default_action = NoAction();
        size = 1024;
    }
    action set_port(bit<16> port) {
        meta.egress_port = port;
    }
    action mark_drop() {
        meta.drop_flag = 1w1;
    }
    table netcl_fwd {
        key = {
            meta.nexthop : exact;
        }
        actions = { set_port; mark_drop; }
        default_action = mark_drop();
        size = 256;
    }
    table l2_fwd {
        key = {
            hdr.ethernet.dst_addr : exact;
        }
        actions = { set_port; mark_drop; }
        default_action = mark_drop();
        size = 1024;
    }
    apply {
        if (hdr.netcl.isValid()) {
            if ((hdr.netcl.to == 16w1 || hdr.netcl.to == 16w65534)) {
                meta.h0 = hash0.get(hdr.d1.key);
                meta.h1 = hash1.get(hdr.d1.key);
                meta.h2 = hash2.get(hdr.d1.key);
                if (lu_Index.apply().hit) {
                    lu_Share.apply();
                    if ((hdr.d1.op == 8w1)) {
                        meta.valid = valid_read.execute(meta.idx);
                        if ((meta.valid != 8w0)) {
                            if (((meta.share >> 32w0) & 32w1) != 32w0) {
                                hdr.d1.val_0 = vals_00_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w1) & 32w1) != 32w0) {
                                hdr.d1.val_1 = vals_01_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w2) & 32w1) != 32w0) {
                                hdr.d1.val_2 = vals_02_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w3) & 32w1) != 32w0) {
                                hdr.d1.val_3 = vals_03_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w4) & 32w1) != 32w0) {
                                hdr.d1.val_4 = vals_04_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w5) & 32w1) != 32w0) {
                                hdr.d1.val_5 = vals_05_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w6) & 32w1) != 32w0) {
                                hdr.d1.val_6 = vals_06_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w7) & 32w1) != 32w0) {
                                hdr.d1.val_7 = vals_07_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w8) & 32w1) != 32w0) {
                                hdr.d1.val_8 = vals_08_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w9) & 32w1) != 32w0) {
                                hdr.d1.val_9 = vals_09_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w10) & 32w1) != 32w0) {
                                hdr.d1.val_10 = vals_10_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w11) & 32w1) != 32w0) {
                                hdr.d1.val_11 = vals_11_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w12) & 32w1) != 32w0) {
                                hdr.d1.val_12 = vals_12_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w13) & 32w1) != 32w0) {
                                hdr.d1.val_13 = vals_13_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w14) & 32w1) != 32w0) {
                                hdr.d1.val_14 = vals_14_read.execute(meta.idx);
                            }
                            if (((meta.share >> 32w15) & 32w1) != 32w0) {
                                hdr.d1.val_15 = vals_15_read.execute(meta.idx);
                            }
                            hdr.d1.hit = 8w1;
                            hits_inc.execute(meta.idx);
                            hdr.netcl.act = 8w5;
                            if ((hdr.netcl.from == 16w65535)) {
                                hdr.netcl.dst = hdr.netcl.src;
                                hdr.netcl.to = 16w65535;
                                meta.nexthop = hdr.netcl.src;
                            } else {
                                hdr.netcl.to = hdr.netcl.from;
                                meta.nexthop = hdr.netcl.from;
                            }
                        } else {
                            meta.c0 = cms0_bump.execute((bit<32>)meta.h0);
                            meta.c1 = cms1_bump.execute((bit<32>)meta.h1);
                            meta.c2 = cms2_bump.execute((bit<32>)meta.h2);
                            meta.cmin = meta.c0;
                            if ((meta.c1 < meta.cmin)) {
                                meta.cmin = meta.c1;
                            }
                            if ((meta.c2 < meta.cmin)) {
                                meta.cmin = meta.c2;
                            }
                            if ((meta.cmin > 32w128)) {
                                meta.b0 = bloom0_swap.execute((bit<32>)meta.h0);
                                meta.b1 = bloom1_swap.execute((bit<32>)meta.h1);
                                meta.b2 = bloom2_swap.execute((bit<32>)meta.h2);
                                hdr.d1.hot = meta.cmin;
                                if ((meta.b0 != 8w0)) {
                                    if ((meta.b1 != 8w0)) {
                                        if ((meta.b2 != 8w0)) {
                                            hdr.d1.hot = 32w0;
                                        }
                                    }
                                }
                            }
                            hdr.netcl.act = 8w0;
                            hdr.netcl.to = 16w65535;
                            meta.nexthop = hdr.netcl.dst;
                        }
                    } else {
                        if ((hdr.d1.op == 8w2)) {
                            valid_set.execute(meta.idx);
                            if (((meta.share >> 32w0) & 32w1) != 32w0) {
                                vals_00_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w1) & 32w1) != 32w0) {
                                vals_01_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w2) & 32w1) != 32w0) {
                                vals_02_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w3) & 32w1) != 32w0) {
                                vals_03_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w4) & 32w1) != 32w0) {
                                vals_04_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w5) & 32w1) != 32w0) {
                                vals_05_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w6) & 32w1) != 32w0) {
                                vals_06_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w7) & 32w1) != 32w0) {
                                vals_07_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w8) & 32w1) != 32w0) {
                                vals_08_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w9) & 32w1) != 32w0) {
                                vals_09_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w10) & 32w1) != 32w0) {
                                vals_10_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w11) & 32w1) != 32w0) {
                                vals_11_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w12) & 32w1) != 32w0) {
                                vals_12_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w13) & 32w1) != 32w0) {
                                vals_13_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w14) & 32w1) != 32w0) {
                                vals_14_write.execute(meta.idx);
                            }
                            if (((meta.share >> 32w15) & 32w1) != 32w0) {
                                vals_15_write.execute(meta.idx);
                            }
                            hdr.d1.hit = 8w1;
                        } else {
                            if ((hdr.d1.op == 8w3)) {
                                valid_clear.execute(meta.idx);
                            }
                        }
                        hdr.netcl.act = 8w0;
                        hdr.netcl.to = 16w65535;
                        meta.nexthop = hdr.netcl.dst;
                    }
                } else {
                    if ((hdr.d1.op == 8w1)) {
                        meta.c0 = cms0_bump.execute((bit<32>)meta.h0);
                        meta.c1 = cms1_bump.execute((bit<32>)meta.h1);
                        meta.c2 = cms2_bump.execute((bit<32>)meta.h2);
                        meta.cmin = meta.c0;
                        if ((meta.c1 < meta.cmin)) {
                            meta.cmin = meta.c1;
                        }
                        if ((meta.c2 < meta.cmin)) {
                            meta.cmin = meta.c2;
                        }
                        if ((meta.cmin > 32w128)) {
                            meta.b0 = bloom0_swap.execute((bit<32>)meta.h0);
                            meta.b1 = bloom1_swap.execute((bit<32>)meta.h1);
                            meta.b2 = bloom2_swap.execute((bit<32>)meta.h2);
                            hdr.d1.hot = meta.cmin;
                            if ((meta.b0 != 8w0)) {
                                if ((meta.b1 != 8w0)) {
                                    if ((meta.b2 != 8w0)) {
                                        hdr.d1.hot = 32w0;
                                    }
                                }
                            }
                        }
                    }
                    hdr.netcl.act = 8w0;
                    hdr.netcl.to = 16w65535;
                    meta.nexthop = hdr.netcl.dst;
                }
                hdr.netcl.from = 16w1;
            } else {
                if ((hdr.netcl.to == 16w65535)) {
                    meta.nexthop = hdr.netcl.dst;
                } else {
                    meta.nexthop = hdr.netcl.to;
                }
            }
            if ((meta.drop_flag == 1w0)) {
                if ((meta.mcast_grp == 16w0)) {
                    netcl_fwd.apply();
                }
            }
        } else {
            l2_fwd.apply();
        }
    }
}

control IgDeparser(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.netcl);
        pkt.emit(hdr.d1);
    }
}

Pipeline(IgParser(), In(), IgDeparser()) pipe;
Switch(pipe) main;
